package repro

// One benchmark per table/figure in the paper's evaluation. The
// simulated-cycle metrics (cycles/block) are the paper's own units;
// wall-clock ns/op additionally measures the simulator itself.
//
//	E1  BenchmarkE1_CompiledAES, BenchmarkE1_AsmAES
//	E2  BenchmarkE2_OptSweep/<config>
//	E3  BenchmarkE3_CodeSize (reports bytes as metrics)
//	E4  BenchmarkE4_PlainRedirect, BenchmarkE4_SecureRedirect
//	E5  exercised by TestE5 in internal/redirector (not a throughput
//	    experiment; nothing to time)

import (
	"net"
	"testing"

	"repro/internal/aesasm"
	"repro/internal/aesc"
	"repro/internal/core"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/rsa"
	"repro/internal/dcc"
	"repro/internal/issl"
)

// benchAESChain runs b.N chained encryptions on the given machine kind
// and reports simulated cycles/block.
func BenchmarkE1_CompiledAES(b *testing.B) {
	m, err := aesc.Build(dcc.Options{Debug: true})
	if err != nil {
		b.Fatal(err)
	}
	var key, blk [16]byte
	for i := range key {
		key[i] = byte(i)
		blk[i] = byte(i * 3)
	}
	b.SetBytes(16)
	b.ResetTimer()
	_, cycles, err := m.EncryptChain(key, blk, b.N)
	if err != nil {
		b.Fatal(err)
	}
	record(b, map[string]float64{
		"simcycles/block": float64(cycles) / float64(b.N),
		"KB/s@30MHz":      core.KBPerSecond(float64(cycles) / float64(b.N)),
	})
}

func BenchmarkE1_AsmAES(b *testing.B) {
	m, err := aesasm.Load()
	if err != nil {
		b.Fatal(err)
	}
	var key, blk [16]byte
	for i := range key {
		key[i] = byte(i)
		blk[i] = byte(i * 3)
	}
	b.SetBytes(16)
	b.ResetTimer()
	_, cycles, err := m.EncryptChain(key, blk, b.N)
	if err != nil {
		b.Fatal(err)
	}
	record(b, map[string]float64{
		"simcycles/block": float64(cycles) / float64(b.N),
		"KB/s@30MHz":      core.KBPerSecond(float64(cycles) / float64(b.N)),
	})
}

func BenchmarkE2_OptSweep(b *testing.B) {
	for _, cfg := range core.E2Configs {
		cfg := cfg
		b.Run(cfg.Name, func(b *testing.B) {
			m, err := aesc.Build(cfg.Opt)
			if err != nil {
				b.Fatal(err)
			}
			var key, blk [16]byte
			b.SetBytes(16)
			b.ResetTimer()
			_, cycles, err := m.EncryptChain(key, blk, b.N)
			if err != nil {
				b.Fatal(err)
			}
			record(b, map[string]float64{
				"simcycles/block": float64(cycles) / float64(b.N),
				"code-bytes":      float64(m.CodeSize()),
			})
		})
	}
}

func BenchmarkE3_CodeSize(b *testing.B) {
	// Code size is a static property; the benchmark exists so the
	// `-bench` run prints the E3 row alongside the timing tables.
	res, err := core.RunE3()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		_ = res
	}
	record(b, map[string]float64{
		"asm-bytes":     float64(res.AsmSize),
		"c-bytes":       float64(res.CSizeBase),
		"asm-smaller-%": res.AsmSmallerBy * 100,
	})
}

func BenchmarkE4_PlainRedirect(b *testing.B) {
	benchRedirect(b, false)
}

func BenchmarkE4_SecureRedirect(b *testing.B) {
	benchRedirect(b, true)
}

func benchRedirect(b *testing.B, secure bool) {
	// Each iteration pumps a fixed payload; throughput comes from
	// SetBytes. Keep payload big enough to amortize the handshake.
	const payload = 128 * 1024
	b.SetBytes(payload)
	var last float64
	for i := 0; i < b.N; i++ {
		kbps, err := core.RedirectorThroughput(secure, payload)
		if err != nil {
			b.Fatal(err)
		}
		last = kbps
	}
	record(b, map[string]float64{"KB/s": last})
}

// --- E9 (extension): session resumption, the Goldberg et al. mechanism ----

func BenchmarkE9_FullHandshake(b *testing.B) {
	benchHandshake(b, false)
}

func BenchmarkE9_ResumedHandshake(b *testing.B) {
	benchHandshake(b, true)
}

func benchHandshake(b *testing.B, resumed bool) {
	key, err := rsa.GenerateKey(prng.NewXorshift(0xBE9C), 512)
	if err != nil {
		b.Fatal(err)
	}
	cache := issl.NewSessionCache(4)
	var sess *issl.Session
	do := func(resume *issl.Session, seed uint64) *issl.Conn {
		ct, st := net.Pipe()
		done := make(chan error, 1)
		go func() {
			_, err := issl.BindServer(st, issl.Config{Profile: issl.ProfileUnix,
				ServerKey: key, Rand: prng.NewXorshift(seed + 1), Cache: cache})
			done <- err
		}()
		conn, err := issl.BindClient(ct, issl.Config{Profile: issl.ProfileUnix,
			Rand: prng.NewXorshift(seed), Resume: resume})
		if err != nil {
			b.Fatal(err)
		}
		if err := <-done; err != nil {
			b.Fatal(err)
		}
		return conn
	}
	if resumed {
		sess = do(nil, 1).Session()
		if sess == nil {
			b.Fatal("no session issued")
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn := do(sess, uint64(100+i))
		if resumed && !conn.Resumed() {
			b.Fatal("handshake not resumed")
		}
	}
	record(b, nil)
}

// --- Ablation: per-access cost of xmem vs root data placement -------------

// BenchmarkAblation_DataPlacement isolates the mechanism behind the
// "moving data to root memory" optimization: the same array-hammering
// program compiled with data in the bank-switched window (per-access
// XPC programming) vs in root memory (direct addressing).
func BenchmarkAblation_DataPlacement(b *testing.B) {
	const src = `
int out;
char buf[64];
void main() {
    int pass; int i; int acc;
    acc = 0;
    for (pass = 0; pass < 50; pass = pass + 1) {
        for (i = 0; i < 64; i = i + 1) buf[i] = i;
        for (i = 0; i < 64; i = i + 1) acc = acc + buf[i];
    }
    out = acc;
}`
	for _, tc := range []struct {
		name string
		opt  dcc.Options
	}{
		{"xmem", dcc.Options{}},
		{"root", dcc.Options{RootData: true}},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			comp, err := dcc.Compile(src, tc.opt)
			if err != nil {
				b.Fatal(err)
			}
			var total uint64
			for i := 0; i < b.N; i++ {
				m := dcc.NewMachine(comp)
				if err := m.Run(100_000_000); err != nil {
					b.Fatal(err)
				}
				total = m.CPU.Cycles
			}
			// 50 passes x 128 accesses.
			record(b, map[string]float64{"simcycles/access": float64(total) / (50 * 128)})
		})
	}
}
