package repro

// Machine-readable benchmark output. `go test -bench=. -benchjson
// FILE` writes one JSON document with every benchmark's iterations,
// ns/op, and custom metrics (simcycles/block, KB/s, code bytes), so
// perf runs accumulate as BENCH_<date>.json files that later PRs can
// diff against. Passing `-benchjson auto` names the file from the
// current date. The collector rides on the benchmarks' existing
// record() calls; without the flag it is inert.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"
)

var benchJSON = flag.String("benchjson", "", "write benchmark results as JSON to this file (\"auto\" = BENCH_<date>.json)")

type benchResult struct {
	Name    string             `json:"name"`
	N       int                `json:"n"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type benchReport struct {
	Date      string        `json:"date"`
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	Results   []benchResult `json:"results"`
}

var (
	benchMu      sync.Mutex
	benchResults []benchResult
)

// record mirrors b.ReportMetric into the JSON collector. Every
// benchmark in this package reports through it; keys iterate in any
// order because ReportMetric keys are independent.
func record(b *testing.B, metrics map[string]float64) {
	for k, v := range metrics {
		b.ReportMetric(v, k)
	}
	if *benchJSON == "" {
		return
	}
	res := benchResult{Name: b.Name(), N: b.N}
	if b.N > 0 {
		res.NsPerOp = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	}
	if len(metrics) > 0 {
		res.Metrics = make(map[string]float64, len(metrics))
		for k, v := range metrics {
			res.Metrics[k] = v
		}
	}
	benchMu.Lock()
	benchResults = append(benchResults, res)
	benchMu.Unlock()
}

func TestMain(m *testing.M) {
	flag.Parse()
	code := m.Run()
	if code == 0 && *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			code = 1
		}
	}
	os.Exit(code)
}

func writeBenchJSON(path string) error {
	if path == "auto" {
		path = "BENCH_" + time.Now().Format("2006-01-02") + ".json"
	}
	benchMu.Lock()
	results := append([]benchResult(nil), benchResults...)
	benchMu.Unlock()
	// A benchmark runs several times while the harness calibrates b.N;
	// keep the largest-N run of each name. Among equal-N repeats (a
	// -count=K run), keep the fastest: min-of-K is the noise-robust
	// statistic, so CI can gate single-iteration timings by running
	// `-benchtime=1x -count=5` and comparing the best of five.
	byName := map[string]benchResult{}
	var order []string
	for _, r := range results {
		prev, ok := byName[r.Name]
		if !ok {
			order = append(order, r.Name)
		}
		if !ok || r.N > prev.N || (r.N == prev.N && r.NsPerOp < prev.NsPerOp) {
			byName[r.Name] = r
		}
	}
	sort.Strings(order)
	report := benchReport{
		Date:      time.Now().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	for _, name := range order {
		report.Results = append(report.Results, byName[name])
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
