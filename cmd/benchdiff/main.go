// Command benchdiff compares two benchmark JSON reports (the format
// written by `go test -benchjson`, see benchjson_test.go) and fails
// when any benchmark regressed beyond a threshold. CI uses it to gate
// the crypto hot-path kernels against the committed baseline:
//
//	go test -run '^$' -bench 'BenchmarkKernel' -benchtime=1x -benchjson BENCH_head.json .
//	go run ./cmd/benchdiff -old BENCH_baseline.json -new BENCH_head.json \
//	    -filter '^BenchmarkKernel' -max-regress 25
//
// Only benchmarks present in both reports are compared; names that
// appear on one side only are listed but never fail the run (adding a
// benchmark should not require regenerating the baseline in the same
// change). The threshold applies to ns/op; results faster than -min-ns
// are skipped as too small to time reliably at -benchtime=1x.
//
// -trend switches to history mode: the positional arguments are dated
// reports (the BENCH_head_<date>.json artifacts CI uploads per run),
// and the output is one row per benchmark with its ns/op across every
// report in date order plus the latest-vs-first drift — the
// multi-release view the single-pair gate cannot show:
//
//	go run ./cmd/benchdiff -trend -filter '^BenchmarkKernel' BENCH_head_*.json
//
// Trend mode is informational and always exits 0 when the reports
// parse.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
)

type benchResult struct {
	Name    string             `json:"name"`
	N       int                `json:"n"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type benchReport struct {
	Date      string        `json:"date"`
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	Results   []benchResult `json:"results"`
}

func readReport(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r benchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func main() {
	var (
		oldPath    = flag.String("old", "", "baseline report (required)")
		newPath    = flag.String("new", "", "candidate report (required)")
		filter     = flag.String("filter", "", "regexp; only matching benchmark names are compared")
		maxRegress = flag.Float64("max-regress", 25, "fail when ns/op grows more than this percent")
		minNs      = flag.Float64("min-ns", 10_000, "skip results faster than this (too noisy at one iteration)")
		trend      = flag.Bool("trend", false, "history mode: positional args are dated reports; print per-benchmark ns/op trend")
	)
	flag.Parse()
	var re *regexp.Regexp
	if *filter != "" {
		var err error
		if re, err = regexp.Compile(*filter); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
	}
	if *trend {
		if err := runTrend(flag.Args(), re); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		return
	}
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old and -new are both required")
		os.Exit(2)
	}
	oldRep, err := readReport(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newRep, err := readReport(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	oldBy := map[string]benchResult{}
	for _, r := range oldRep.Results {
		oldBy[r.Name] = r
	}
	var names []string
	newBy := map[string]benchResult{}
	for _, r := range newRep.Results {
		newBy[r.Name] = r
		names = append(names, r.Name)
	}
	sort.Strings(names)

	fmt.Printf("benchdiff: %s (%s) vs %s (%s), max regression %.0f%%\n",
		*oldPath, oldRep.Date, *newPath, newRep.Date, *maxRegress)
	failed := 0
	compared := 0
	for _, name := range names {
		if re != nil && !re.MatchString(name) {
			continue
		}
		nw := newBy[name]
		od, ok := oldBy[name]
		if !ok {
			fmt.Printf("  %-44s %12.0f ns/op  (new — no baseline)\n", name, nw.NsPerOp)
			continue
		}
		if od.NsPerOp <= 0 || nw.NsPerOp <= 0 {
			fmt.Printf("  %-44s (no timing on one side, skipped)\n", name)
			continue
		}
		pct := (nw.NsPerOp - od.NsPerOp) / od.NsPerOp * 100
		status := "ok"
		if od.NsPerOp < *minNs && nw.NsPerOp < *minNs {
			status = "skipped (below -min-ns)"
		} else if pct > *maxRegress {
			status = "REGRESSION"
			failed++
		}
		if status != "skipped (below -min-ns)" {
			compared++
		}
		fmt.Printf("  %-44s %12.0f -> %-12.0f ns/op  %+7.1f%%  %s\n",
			name, od.NsPerOp, nw.NsPerOp, pct, status)
	}
	for name := range oldBy {
		if re != nil && !re.MatchString(name) {
			continue
		}
		if _, ok := newBy[name]; !ok {
			fmt.Printf("  %-44s (baseline only — missing from new report)\n", name)
		}
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmarks compared (filter too narrow, or empty reports)")
		os.Exit(2)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed beyond %.0f%%\n", failed, *maxRegress)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d benchmark(s) within threshold\n", compared)
}

// runTrend renders the history table: one column per dated report
// (sorted by the report's own date stamp, filename as tiebreaker), one
// row per benchmark, ns/op in each cell, and the latest-vs-first drift
// at the end of the row. A benchmark missing from a report (added or
// retired mid-history) renders as "-".
func runTrend(paths []string, re *regexp.Regexp) error {
	if len(paths) < 1 {
		return fmt.Errorf("-trend needs at least one report argument (e.g. BENCH_head_*.json)")
	}
	type dated struct {
		path string
		rep  *benchReport
	}
	reports := make([]dated, 0, len(paths))
	for _, p := range paths {
		r, err := readReport(p)
		if err != nil {
			return err
		}
		reports = append(reports, dated{p, r})
	}
	sort.SliceStable(reports, func(i, j int) bool {
		if reports[i].rep.Date != reports[j].rep.Date {
			return reports[i].rep.Date < reports[j].rep.Date
		}
		return reports[i].path < reports[j].path
	})

	// Column headers: the date stamp, disambiguated by filename when two
	// reports share a date.
	heads := make([]string, len(reports))
	seen := map[string]int{}
	for i, d := range reports {
		h := d.rep.Date
		if h == "" {
			h = d.path
		}
		seen[h]++
		if seen[h] > 1 {
			h = fmt.Sprintf("%s#%d", h, seen[h])
		}
		heads[i] = h
	}

	byName := make([]map[string]benchResult, len(reports))
	nameSet := map[string]bool{}
	for i, d := range reports {
		byName[i] = map[string]benchResult{}
		for _, r := range d.rep.Results {
			if re != nil && !re.MatchString(r.Name) {
				continue
			}
			byName[i][r.Name] = r
			nameSet[r.Name] = true
		}
	}
	var names []string
	for n := range nameSet {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return fmt.Errorf("no benchmarks matched across %d report(s)", len(reports))
	}

	fmt.Printf("benchdiff trend: %d report(s), ns/op per benchmark\n", len(reports))
	fmt.Printf("  %-44s", "")
	for _, h := range heads {
		fmt.Printf(" %14s", h)
	}
	fmt.Printf("  %10s\n", "drift")
	for _, name := range names {
		fmt.Printf("  %-44s", name)
		var first, last float64
		cells := 0
		for i := range reports {
			r, ok := byName[i][name]
			if !ok || r.NsPerOp <= 0 {
				fmt.Printf(" %14s", "-")
				continue
			}
			fmt.Printf(" %14.0f", r.NsPerOp)
			if first == 0 {
				first = r.NsPerOp
			}
			last = r.NsPerOp
			cells++
		}
		if cells > 1 {
			fmt.Printf("  %+9.1f%%\n", (last-first)/first*100)
		} else {
			fmt.Printf("  %10s\n", "-")
		}
	}
	return nil
}
