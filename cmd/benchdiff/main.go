// Command benchdiff compares two benchmark JSON reports (the format
// written by `go test -benchjson`, see benchjson_test.go) and fails
// when any benchmark regressed beyond a threshold. CI uses it to gate
// the crypto hot-path kernels against the committed baseline:
//
//	go test -run '^$' -bench 'BenchmarkKernel' -benchtime=1x -benchjson BENCH_head.json .
//	go run ./cmd/benchdiff -old BENCH_baseline.json -new BENCH_head.json \
//	    -filter '^BenchmarkKernel' -max-regress 25
//
// Only benchmarks present in both reports are compared; names that
// appear on one side only are listed but never fail the run (adding a
// benchmark should not require regenerating the baseline in the same
// change). The threshold applies to ns/op; results faster than -min-ns
// are skipped as too small to time reliably at -benchtime=1x.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
)

type benchResult struct {
	Name    string             `json:"name"`
	N       int                `json:"n"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type benchReport struct {
	Date      string        `json:"date"`
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	Results   []benchResult `json:"results"`
}

func readReport(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r benchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func main() {
	var (
		oldPath    = flag.String("old", "", "baseline report (required)")
		newPath    = flag.String("new", "", "candidate report (required)")
		filter     = flag.String("filter", "", "regexp; only matching benchmark names are compared")
		maxRegress = flag.Float64("max-regress", 25, "fail when ns/op grows more than this percent")
		minNs      = flag.Float64("min-ns", 10_000, "skip results faster than this (too noisy at one iteration)")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old and -new are both required")
		os.Exit(2)
	}
	var re *regexp.Regexp
	if *filter != "" {
		var err error
		if re, err = regexp.Compile(*filter); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
	}
	oldRep, err := readReport(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newRep, err := readReport(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	oldBy := map[string]benchResult{}
	for _, r := range oldRep.Results {
		oldBy[r.Name] = r
	}
	var names []string
	newBy := map[string]benchResult{}
	for _, r := range newRep.Results {
		newBy[r.Name] = r
		names = append(names, r.Name)
	}
	sort.Strings(names)

	fmt.Printf("benchdiff: %s (%s) vs %s (%s), max regression %.0f%%\n",
		*oldPath, oldRep.Date, *newPath, newRep.Date, *maxRegress)
	failed := 0
	compared := 0
	for _, name := range names {
		if re != nil && !re.MatchString(name) {
			continue
		}
		nw := newBy[name]
		od, ok := oldBy[name]
		if !ok {
			fmt.Printf("  %-44s %12.0f ns/op  (new — no baseline)\n", name, nw.NsPerOp)
			continue
		}
		if od.NsPerOp <= 0 || nw.NsPerOp <= 0 {
			fmt.Printf("  %-44s (no timing on one side, skipped)\n", name)
			continue
		}
		pct := (nw.NsPerOp - od.NsPerOp) / od.NsPerOp * 100
		status := "ok"
		if od.NsPerOp < *minNs && nw.NsPerOp < *minNs {
			status = "skipped (below -min-ns)"
		} else if pct > *maxRegress {
			status = "REGRESSION"
			failed++
		}
		if status != "skipped (below -min-ns)" {
			compared++
		}
		fmt.Printf("  %-44s %12.0f -> %-12.0f ns/op  %+7.1f%%  %s\n",
			name, od.NsPerOp, nw.NsPerOp, pct, status)
	}
	for name := range oldBy {
		if re != nil && !re.MatchString(name) {
			continue
		}
		if _, ok := newBy[name]; !ok {
			fmt.Printf("  %-44s (baseline only — missing from new report)\n", name)
		}
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmarks compared (filter too narrow, or empty reports)")
		os.Exit(2)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed beyond %.0f%%\n", failed, *maxRegress)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d benchmark(s) within threshold\n", compared)
}
