// Command conform runs the differential conformance matrix: every
// hand-rolled kernel in this repo (crypto, the Rabbit AES in assembly
// and compiled C, the protocol parsers) cross-checked against
// independent oracles. Same seed, same verdict.
//
// Usage:
//
//	conform -seed 1                       # full matrix, text verdict
//	conform -seed 1 -json report.json     # also write the CI artifact
//	conform -vectors 500 -proto 200       # quick smoke sizing
//
// Exit status 0 iff every check passed.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/conform"
)

func main() {
	var (
		seed     = flag.Uint64("seed", 1, "seed for all generated vectors (same seed, same run)")
		vectors  = flag.Int("vectors", 0, "differential vectors per crypto kernel (default 10000)")
		isaPairs = flag.Int("isa-pairs", 0, "key/plaintext pairs for the asm/C/Go AES cosimulation (default 8)")
		isaChain = flag.Int("isa-chain", 0, "chained-block depth midpoint per cosim pair (default 3)")
		proto    = flag.Int("proto", 0, "inputs per protocol sweep (default 2000)")
		jsonPath = flag.String("json", "", "also write the JSON report to this file")
	)
	flag.Parse()

	rep := conform.Run(conform.Options{
		Seed:          *seed,
		CryptoVectors: *vectors,
		ISAPairs:      *isaPairs,
		ISAChain:      *isaChain,
		ProtoVectors:  *proto,
	})
	rep.WriteText(os.Stdout)

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "conform: %v\n", err)
			os.Exit(2)
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "conform: %v\n", err)
			os.Exit(2)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "conform: %v\n", err)
			os.Exit(2)
		}
	}
	if !rep.Passed {
		os.Exit(1)
	}
}
