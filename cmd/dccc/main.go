// Command dccc compiles Dynamic C subset source for the Rabbit 2000
// simulator, exposing the optimization knobs the paper's §6 swept.
//
// Usage:
//
//	dccc [-g] [-unroll] [-rootdata] [-O] [-S] [-o out.bin] prog.dc
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/dcc"
)

func main() {
	debug := flag.Bool("g", false, "enable per-statement debug instrumentation (Dynamic C default)")
	unroll := flag.Bool("unroll", false, "unroll constant-trip-count loops")
	rootdata := flag.Bool("rootdata", false, "place arrays in root memory instead of xmem")
	peep := flag.Bool("O", false, "enable the peephole optimizer")
	asmOut := flag.Bool("S", false, "write the generated assembly next to the output")
	out := flag.String("o", "", "output image path (default: input with .bin)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dccc [-g] [-unroll] [-rootdata] [-O] [-S] [-o out.bin] prog.dc")
		os.Exit(2)
	}
	in := flag.Arg(0)
	src, err := os.ReadFile(in)
	if err != nil {
		fatal(err)
	}
	opt := dcc.Options{Debug: *debug, Unroll: *unroll, RootData: *rootdata, Peephole: *peep}
	comp, err := dcc.Compile(string(src), opt)
	if err != nil {
		fatal(err)
	}
	dst := *out
	if dst == "" {
		dst = strings.TrimSuffix(in, ".dc") + ".bin"
	}
	if err := os.WriteFile(dst, comp.Program.Code, 0o644); err != nil {
		fatal(err)
	}
	if *asmOut {
		asmPath := strings.TrimSuffix(dst, ".bin") + ".asm"
		if err := os.WriteFile(asmPath, []byte(comp.Asm), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("assembly listing -> %s\n", asmPath)
	}
	fmt.Printf("%s: code %d bytes, image %d bytes -> %s\n",
		in, comp.CodeSize(), comp.Program.Size(), dst)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dccc:", err)
	os.Exit(1)
}
