// Command experiments regenerates every table in the paper's
// evaluation (§6) plus the service-level results, printing them in the
// layout EXPERIMENTS.md records.
//
// Usage:
//
//	experiments [-e4bytes N] [e1|e2|e3|e4|e5 ...]
//
// With no arguments, all experiments run in order.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	e4bytes := flag.Int("e4bytes", 256*1024, "payload size for the E4 throughput runs")
	flag.Parse()
	which := flag.Args()
	if len(which) == 0 {
		which = []string{"e1", "e2", "e3", "e4", "e5"}
	}
	for _, w := range which {
		var err error
		switch w {
		case "e1":
			err = runE1()
		case "e2":
			err = runE2()
		case "e3":
			err = runE3()
		case "e4":
			err = runE4(*e4bytes)
		case "e5":
			err = runE5()
		default:
			err = fmt.Errorf("unknown experiment %q", w)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func runE1() error {
	r, err := core.RunE1()
	if err != nil {
		return err
	}
	fmt.Println("E1 — AES-128 on the Rabbit 2000: hand assembly vs compiled C (§6)")
	fmt.Println("  implementation        cycles/block    KB/s @30MHz")
	fmt.Printf("  C (Dynamic C build)   %12.0f    %11.1f\n", r.CCyclesPerBlock, r.CKBps)
	fmt.Printf("  hand assembly         %12.0f    %11.1f\n", r.AsmCyclesPerBlock, r.AsmKBps)
	fmt.Printf("  assembly faster by    %11.1fx    (paper: 15-20x)\n", r.Factor)
	return nil
}

func runE2() error {
	rows, err := core.RunE2()
	if err != nil {
		return err
	}
	fmt.Println("E2 — optimizations tried on the C port (§6: \"improved run time by perhaps 20%\")")
	fmt.Println("  configuration           cycles/block   code bytes   gain")
	for _, r := range rows {
		fmt.Printf("  %-22s %13.0f   %10d   %+5.1f%%\n",
			r.Name, r.CyclesPerBlock, r.CodeSize, r.GainVsBaseline*100)
	}
	return nil
}

func runE3() error {
	r, err := core.RunE3()
	if err != nil {
		return err
	}
	fmt.Println("E3 — code size vs speed (§6: size \"uncorrelated to execution speed\")")
	fmt.Println("  build                       code bytes   cycles/block")
	for _, row := range r.Rows {
		fmt.Printf("  %-26s %10d   %12.0f\n", row.Name, row.CodeSize, row.CyclesPerBlock)
	}
	fmt.Printf("  assembly smaller than baseline C by %.1f%% (paper: 9%%)\n", r.AsmSmallerBy*100)
	return nil
}

func runE4(payload int) error {
	r, err := core.RunE4(payload)
	if err != nil {
		return err
	}
	fmt.Println("E4 — redirector throughput, plaintext vs issl-secured (§2, after Goldberg et al.)")
	fmt.Printf("  plaintext   %10.0f KB/s\n", r.PlainKBps)
	fmt.Printf("  issl        %10.0f KB/s\n", r.SecureKBps)
	fmt.Printf("  slowdown    %10.1fx   (paper cites ~an order of magnitude)\n", r.Slowdown)
	return nil
}

func runE5() error {
	r, err := core.RunE5()
	if err != nil {
		return err
	}
	fmt.Println("E5 — Fig. 3 connection-slot limit on the embedded server")
	fmt.Printf("  slots: %d, served simultaneously: %d\n", r.Slots, r.ServedAtOnce)
	fmt.Printf("  connection %d refused while slots busy: %v\n", r.Slots+1, r.ExtraRefused)
	fmt.Printf("  freed slot accepts a new connection:   %v\n", r.SlotReusable)
	return nil
}
