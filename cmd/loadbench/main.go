// Command loadbench drives the capacity-testing fleet (internal/
// loadgen) against the full secure-redirector vertical and emits the
// SLO report as text plus BENCH_load.json.
//
// The acceptance workload — a thousand returning clients at the
// Goldberg et al. 95% session-cache hit rate:
//
//	go run ./cmd/loadbench -seed 1 -clients 1000 -resume 0.95
//
// The Virtual section of the output is bit-identical across runs with
// one seed (see internal/loadgen); -smoke runs a small fixed workload
// as a CI gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/chaos"
	"repro/internal/loadgen"
)

func main() {
	var (
		seed        = flag.Uint64("seed", 1, "workload seed (drives every random decision)")
		clients     = flag.Int("clients", 100, "virtual client population")
		requests    = flag.Int("requests", 2, "requests per client")
		resume      = flag.Float64("resume", 0.5, "session-resumption probability on reconnect (0..1)")
		churn       = flag.Int("churn", 1, "reconnect every N requests (0 = one connection per client)")
		rate        = flag.Float64("rate", 0, "open-loop arrival rate in req/s (0 = closed loop)")
		concurrency = flag.Int("concurrency", 32, "closed-loop width / open-loop in-flight cap")
		payloads    = flag.String("payloads", "64:60,512:30,4096:10", "payload distribution size:weight,...")
		inflight    = flag.Int("inflight", 0, "redirector admission bound (0 = unbounded)")
		cache       = flag.Int("cache", 0, "session cache bound (0 = 2x clients)")
		shards      = flag.Int("shards", 0, "session cache shards (0 = default)")
		latency     = flag.Duration("latency", 0, "one-way hub latency")
		faults      = flag.Bool("faults", false, "degrade the wire with the chaos soak fault plan")
		plain       = flag.Bool("plain", false, "plaintext baseline (no issl layer)")
		wall        = flag.Bool("wall", false, "also record wall-clock latency percentiles (not replayable)")
		jsonPath    = flag.String("json", "BENCH_load.json", "report output path (empty = skip)")
		baseline    = flag.String("baseline", "", "prior report to diff against (empty = the -json path's current contents, if any)")
		smoke       = flag.Bool("smoke", false, "small fixed workload for CI (overrides sizing flags)")
		virtual     = flag.Bool("virtual", false, "virtual-SLO section only: skip the live run (scales to very large -clients)")

		instances    = flag.Int("instances", 1, "redirector instances behind the L4 balancer (1 = no cluster)")
		policy       = flag.String("policy", "hash", "balancer policy: hash | least")
		killNode     = flag.Int("kill-node", 0, "cluster node to kill mid-load (with -kill-at)")
		killAt       = flag.Duration("kill-at", 0, "kill -kill-node this long into the run (0 = no kill)")
		restartAfter = flag.Duration("restart-after", 0, "restart the killed node this long after the kill (0 = stays down)")
		retries      = flag.Int("request-retries", 0, "per-request transport-failure retries (fresh connection each)")

		stampede = flag.Bool("stampede", false, "reconnect-stampede scenario: all clients dial at once, 0% resumption (forces -resume 0 -churn 1)")
		signpool = flag.Int("signpool", 0, "RSA sign/decrypt worker-pool size (0 = key ops inline)")
		keyBits  = flag.Int("keybits", 0, "server RSA key size (0 = 512; stampede runs want 1024)")
	)
	flag.Parse()

	dist, err := loadgen.ParsePayloads(*payloads)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *clients <= 0 || *clients > loadgen.MaxClients {
		fmt.Fprintf(os.Stderr, "loadbench: -clients %d out of range (1..%d)\n", *clients, loadgen.MaxClients)
		os.Exit(2)
	}
	cfg := loadgen.Config{
		Seed:          *seed,
		Clients:       *clients,
		Requests:      *requests,
		Resume:        *resume,
		ChurnEvery:    *churn,
		Concurrency:   *concurrency,
		Payloads:      dist,
		MaxInflight:   *inflight,
		CacheSessions: *cache,
		CacheShards:   *shards,
		HubLatency:    *latency,
		Plain:         *plain,
		Wall:          *wall,
		Stampede:      *stampede,
		SignWorkers:   *signpool,
		KeyBits:       *keyBits,
	}
	if *instances > 1 {
		cfg.Instances = *instances
		cfg.Policy = *policy
		cfg.RequestRetries = *retries
		if *killAt > 0 {
			cfg.KillNode = *killNode
			cfg.KillAfter = *killAt
			cfg.RestartAfter = *restartAfter
		}
	}
	if *churn == 0 {
		cfg.KeepConnections()
	}
	if *rate > 0 {
		cfg.Mode = loadgen.ModeOpen
		cfg.RatePerSec = *rate
	}
	if *faults {
		cfg.Faults = chaos.SoakPlan(*seed)
	}
	if *smoke {
		cfg.Clients, cfg.Requests, cfg.Resume, cfg.Concurrency = 32, 2, 0.5, 16
	}
	cfg.VirtualOnly = *virtual

	// Capture the baseline before the run (and before -json truncates
	// it — by default they are the same file): the committed
	// BENCH_load.json from the last perf PR is the "before" axis.
	basePath := *baseline
	if basePath == "" {
		basePath = *jsonPath
	}
	var base *loadgen.Report
	if basePath != "" {
		if f, err := os.Open(basePath); err == nil {
			base, err = loadgen.ReadReport(f)
			f.Close()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		} else if *baseline != "" {
			// An explicit -baseline that does not exist is an error; a
			// missing default (first run) just skips the delta.
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	start := time.Now()
	rep, err := loadgen.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if base != nil {
		rep.AttachBaseline(base)
	}
	if err := rep.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\ntotal run time %.1fs\n", time.Since(start).Seconds())

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("report written to %s\n", *jsonPath)
	}
}
