// Command rasm assembles Rabbit 2000 assembly source into a binary
// image, printing the symbol table and section size.
//
// Usage:
//
//	rasm [-o out.bin] prog.asm
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/rasm"
)

func main() {
	out := flag.String("o", "", "output image path (default: input with .bin)")
	quiet := flag.Bool("q", false, "suppress the symbol listing")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rasm [-o out.bin] [-q] prog.asm")
		os.Exit(2)
	}
	in := flag.Arg(0)
	src, err := os.ReadFile(in)
	if err != nil {
		fatal(err)
	}
	prog, err := rasm.Assemble(string(src))
	if err != nil {
		fatal(err)
	}
	dst := *out
	if dst == "" {
		dst = strings.TrimSuffix(in, ".asm") + ".bin"
	}
	if err := os.WriteFile(dst, prog.Code, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d bytes at origin %04x -> %s\n", in, prog.Size(), prog.Origin, dst)
	if !*quiet {
		names := make([]string, 0, len(prog.Symbols))
		for n := range prog.Symbols {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool {
			return prog.Symbols[names[i]] < prog.Symbols[names[j]]
		})
		for _, n := range names {
			fmt.Printf("  %04x  %s\n", prog.Symbols[n], n)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rasm:", err)
	os.Exit(1)
}
