// Command rmcprof formats folded-stack profiles produced by the Rabbit
// cycle profiler (rmcsim -folded, rabbit.Profiler.WriteFolded). The
// input is flamegraph collapsed format — "frame;frame;frame cycles"
// per line — read from the named files or stdin.
//
// The report gives each symbol two numbers, the same split pprof
// makes: SELF (cycles attributed while the symbol's own code ran,
// stack-leaf attribution) and CUM (cycles while it was anywhere on the
// stack). SELF sums to the profile total; CUM does not.
//
// Usage:
//
//	rmcprof [-top N] [-cum] [profile.folded ...]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	top := flag.Int("top", 0, "show only the top N symbols (0 = all)")
	byCum := flag.Bool("cum", false, "sort by cumulative cycles instead of self")
	flag.Parse()

	self := map[string]uint64{}
	cum := map[string]uint64{}
	var total uint64
	readOne := func(name string, r io.Reader) error {
		sc := bufio.NewScanner(r)
		line := 0
		for sc.Scan() {
			line++
			text := strings.TrimSpace(sc.Text())
			if text == "" {
				continue
			}
			sp := strings.LastIndexByte(text, ' ')
			if sp < 0 {
				return fmt.Errorf("%s:%d: no cycle count: %q", name, line, text)
			}
			n, err := strconv.ParseUint(text[sp+1:], 10, 64)
			if err != nil {
				return fmt.Errorf("%s:%d: bad cycle count: %v", name, line, err)
			}
			frames := strings.Split(text[:sp], ";")
			total += n
			self[frames[len(frames)-1]] += n
			// Count each symbol once per stack so recursion does not
			// double-bill its cumulative time.
			seen := map[string]bool{}
			for _, f := range frames {
				if !seen[f] {
					seen[f] = true
					cum[f] += n
				}
			}
		}
		return sc.Err()
	}

	if flag.NArg() == 0 {
		if err := readOne("stdin", os.Stdin); err != nil {
			fatal(err)
		}
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		err = readOne(path, f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}

	syms := make([]string, 0, len(cum))
	for s := range cum {
		syms = append(syms, s)
	}
	sort.Slice(syms, func(i, j int) bool {
		a, b := syms[i], syms[j]
		ka, kb := self[a], self[b]
		if *byCum {
			ka, kb = cum[a], cum[b]
		}
		if ka != kb {
			return ka > kb
		}
		return a < b
	})
	shown := len(syms)
	if *top > 0 && *top < shown {
		shown = *top
	}

	fmt.Printf("%-24s %12s %7s %12s %7s\n", "SYMBOL", "SELF", "PCT", "CUM", "PCT")
	for _, s := range syms[:shown] {
		fmt.Printf("%-24s %12d %6.2f%% %12d %6.2f%%\n",
			s, self[s], pct(self[s], total), cum[s], pct(cum[s], total))
	}
	fmt.Printf("%-24s %12d %6.2f%%", "TOTAL", total, 100.0)
	if shown < len(syms) {
		fmt.Printf(" (top %d of %d)", shown, len(syms))
	}
	fmt.Println()
}

func pct(n, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rmcprof:", err)
	os.Exit(1)
}
