// Command rmcsim runs a binary image on the simulated RMC2000 board.
// Bytes given with -serial are fed to serial port A before execution;
// anything the program transmits on port A is printed afterward.
//
// Usage:
//
//	rmcsim [-cycles N] [-serial "text"] [-d] prog.bin
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/netsim"
	"repro/internal/rasm"
	"repro/internal/rmc2000"
)

func main() {
	budget := flag.Uint64("cycles", 100_000_000, "cycle budget")
	serial := flag.String("serial", "", "bytes to queue on serial port A")
	disasm := flag.Bool("d", false, "print a disassembly listing instead of running")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rmcsim [-cycles N] [-serial text] prog.bin")
		os.Exit(2)
	}
	img, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if *disasm {
		fmt.Print(rasm.Listing(img, 0))
		return
	}
	board, err := rmc2000.New(nil, netsim.MAC{})
	if err != nil {
		fatal(err)
	}
	board.LoadProgram(0, img)
	if *serial != "" {
		board.Serial[0].HostSend([]byte(*serial)...)
	}
	runErr := board.Run(*budget)
	cpu := board.CPU
	fmt.Printf("halted=%v instructions=%d cycles=%d (%.3f ms at 30 MHz)\n",
		cpu.Halted, cpu.Instructions, cpu.Cycles, float64(cpu.Cycles)/30000.0)
	fmt.Printf("registers: %s\n", cpu)
	if out := board.Serial[0].HostRecv(); len(out) > 0 {
		fmt.Printf("serial A output: %q\n", out)
	}
	if runErr != nil {
		fatal(runErr)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rmcsim:", err)
	os.Exit(1)
}
