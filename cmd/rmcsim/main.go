// Command rmcsim runs a binary image on the simulated RMC2000 board.
// Bytes given with -serial are fed to serial port A before execution;
// anything the program transmits on port A is printed afterward.
//
// Usage:
//
//	rmcsim [-cycles N] [-serial "text"] [-d] [-profile] [-folded FILE] [-top N] prog.bin|prog.asm
//	rmcsim -e1 [-blocks N] [-profile] [-folded PREFIX]
//
// A .asm argument is assembled with rasm first, which gives the
// profiler a symbol table; a raw .bin profiles as one "(orphan)" span.
//
// -e1 runs the paper's §6 experiment — AES-128 in hand assembly vs.
// compiled C — and, with -profile, attributes the cycles per routine,
// answering "where did the cycles go" for the C-vs-asm gap. With
// -folded PREFIX it writes PREFIX-asm.folded and PREFIX-c.folded,
// both renderable by standard flamegraph tools.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/aesasm"
	"repro/internal/aesc"
	"repro/internal/dcc"
	"repro/internal/netsim"
	"repro/internal/rabbit"
	"repro/internal/rasm"
	"repro/internal/rmc2000"
)

func main() {
	budget := flag.Uint64("cycles", 100_000_000, "cycle budget")
	serial := flag.String("serial", "", "bytes to queue on serial port A")
	disasm := flag.Bool("d", false, "print a disassembly listing instead of running")
	profile := flag.Bool("profile", false, "attribute cycles to rasm symbols; print a flat report")
	folded := flag.String("folded", "", "write folded call stacks (flamegraph format) to this file")
	top := flag.Int("top", 0, "limit the flat report to the top N symbols (0 = all)")
	e1 := flag.Bool("e1", false, "run the E1 AES experiment (C vs. assembly) instead of an image")
	blocks := flag.Int("blocks", 16, "blocks to encrypt per variant in -e1 mode")
	flag.Parse()

	if *e1 {
		if err := runE1(*blocks, *profile, *folded, *top); err != nil {
			fatal(err)
		}
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rmcsim [-cycles N] [-serial text] [-profile] [-folded FILE] prog.bin|prog.asm")
		fmt.Fprintln(os.Stderr, "       rmcsim -e1 [-blocks N] [-profile] [-folded PREFIX]")
		os.Exit(2)
	}
	path := flag.Arg(0)
	raw, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}

	// An assembly source carries its symbol table with it; a raw image
	// runs (and profiles) without one.
	origin := uint16(0)
	img := raw
	var symbols map[string]uint16
	if strings.HasSuffix(path, ".asm") || strings.HasSuffix(path, ".s") {
		prog, err := rasm.Assemble(string(raw))
		if err != nil {
			fatal(err)
		}
		origin, img, symbols = prog.Origin, prog.Code, prog.Symbols
	}

	if *disasm {
		fmt.Print(rasm.Listing(img, origin))
		return
	}
	board, err := rmc2000.New(nil, netsim.MAC{})
	if err != nil {
		fatal(err)
	}
	board.LoadProgram(origin, img)
	var prof *rabbit.Profiler
	if *profile || *folded != "" {
		prof = rabbit.NewProgramProfiler(origin, img, symbols)
		prof.Attach(board.CPU)
	}
	if *serial != "" {
		board.Serial[0].HostSend([]byte(*serial)...)
	}
	runErr := board.Run(*budget)
	cpu := board.CPU
	fmt.Printf("halted=%v instructions=%d cycles=%d (%.3f ms at 30 MHz)\n",
		cpu.Halted, cpu.Instructions, cpu.Cycles, float64(cpu.Cycles)/30000.0)
	fmt.Printf("registers: %s\n", cpu)
	if out := board.Serial[0].HostRecv(); len(out) > 0 {
		fmt.Printf("serial A output: %q\n", out)
	}
	if prof != nil {
		if err := report(prof, "", *profile, *folded, *top); err != nil {
			fatal(err)
		}
	}
	if runErr != nil {
		fatal(runErr)
	}
}

// runE1 profiles the §6 C-vs-assembly AES comparison.
func runE1(blocks int, profile bool, foldedPrefix string, top int) error {
	var key, block [16]byte
	for i := range key {
		key[i] = byte(i)
		block[i] = byte(i * 17)
	}

	asm, err := aesasm.Load()
	if err != nil {
		return err
	}
	var asmProf *rabbit.Profiler
	if profile || foldedPrefix != "" {
		asmProf = asm.EnableProfiler()
	}
	_, asmCycles, err := asm.EncryptChain(key, block, blocks)
	if err != nil {
		return err
	}

	cc, err := aesc.Build(dcc.Options{})
	if err != nil {
		return err
	}
	var cProf *rabbit.Profiler
	if profile || foldedPrefix != "" {
		cProf = cc.EnableProfiler()
	}
	_, cCycles, err := cc.EncryptChain(key, block, blocks)
	if err != nil {
		return err
	}

	fmt.Printf("E1: AES-128, %d chained blocks\n", blocks)
	fmt.Printf("  assembly: %d cycles (%.0f cycles/block)\n", asmCycles, float64(asmCycles)/float64(blocks))
	fmt.Printf("  C:        %d cycles (%.0f cycles/block)\n", cCycles, float64(cCycles)/float64(blocks))
	fmt.Printf("  ratio:    %.2fx\n", float64(cCycles)/float64(asmCycles))

	foldedFor := func(suffix string) string {
		if foldedPrefix == "" {
			return ""
		}
		return foldedPrefix + "-" + suffix + ".folded"
	}
	fmt.Printf("\n--- assembly profile ---\n")
	if err := report(asmProf, "", profile, foldedFor("asm"), top); err != nil {
		return err
	}
	fmt.Printf("\n--- C profile ---\n")
	return report(cProf, "", profile, foldedFor("c"), top)
}

// report prints the flat table and/or writes the folded-stack file.
func report(p *rabbit.Profiler, indent string, flat bool, foldedPath string, top int) error {
	if p == nil {
		return nil
	}
	if flat {
		if err := writeFlat(p, os.Stdout, top); err != nil {
			return err
		}
	}
	if foldedPath != "" {
		f, err := os.Create(foldedPath)
		if err != nil {
			return err
		}
		if err := p.WriteFolded(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("%sfolded stacks written to %s\n", indent, foldedPath)
	}
	return nil
}

// writeFlat renders the flat report, optionally truncated to top rows.
func writeFlat(p *rabbit.Profiler, w *os.File, top int) error {
	if top <= 0 {
		return p.WriteFlat(w)
	}
	rows := p.Flat()
	if top < len(rows) {
		rows = rows[:top]
	}
	total := p.TotalCycles()
	fmt.Fprintf(w, "%-24s %12s %7s %12s\n", "SYMBOL", "CYCLES", "PCT", "INSTRS")
	for _, r := range rows {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(r.Cycles) / float64(total)
		}
		fmt.Fprintf(w, "%-24s %12d %6.2f%% %12d\n", r.Symbol, r.Cycles, pct, r.Instrs)
	}
	fmt.Fprintf(w, "%-24s %12d %6.2f%% (top %d of %d)\n", "TOTAL", total, 100.0, top, len(p.Flat()))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rmcsim:", err)
	os.Exit(1)
}
