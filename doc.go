// Package repro reproduces "Porting a Network Cryptographic Service to
// the RMC2000: A Case Study in Embedded Software Development" (Jan,
// de Dios, Edwards; DATE 2003) as a complete simulated system:
//
//   - internal/crypto/{aes,bignum,rsa,sha1,prng}: the cryptographic
//     primitives the issl library is built from, all from scratch;
//   - internal/{netsim,tcpip,bsdsock,dcsock}: the wire, a TCP/IP
//     stack, and the two socket APIs of the paper's Fig. 2;
//   - internal/{costate,embedded}: Dynamic C's cooperative
//     multitasking model and the §5 porting workarounds;
//   - internal/issl and internal/redirector: the cryptographic
//     service in both its Unix and its ported embedded form;
//   - internal/{rabbit,rasm,dcc,rmc2000}: the Rabbit 2000 CPU
//     simulator, an assembler, a Dynamic C subset compiler with the
//     §6 optimization knobs, and the development board;
//   - internal/{aesasm,aesc}: the two AES implementations of the
//     paper's headline experiment;
//   - internal/core: the harness that regenerates every result.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured numbers. The benchmarks in bench_test.go drive the
// same harness under `go test -bench`.
package repro
