// Embedded example: the ported service with the paper's Fig. 3
// structure — three costatement-driven connection slots plus a TCP
// driver, AES-128-only issl with a pre-shared key instead of RSA.
// Three clients occupy all slots; a fourth is refused until one slot
// frees up, demonstrating the hard concurrency limit the port
// introduced.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/crypto/prng"
	"repro/internal/dcsock"
	"repro/internal/issl"
	"repro/internal/netsim"
	"repro/internal/redirector"
	"repro/internal/tcpip"
)

func main() {
	hub := netsim.NewHub()
	defer hub.Close()
	newHost := func(last byte) *tcpip.Stack {
		s, err := tcpip.NewStack(hub, tcpip.IP4(10, 2, 0, last))
		if err != nil {
			log.Fatal(err)
		}
		return s
	}
	workstation := newHost(1)
	defer workstation.Close()
	board := newHost(2) // the RMC2000
	defer board.Close()
	backend := newHost(3)
	defer backend.Close()

	// Backend echo.
	echoL, err := backend.Listen(8000, 8)
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		for {
			conn, err := echoL.Accept(10 * time.Second)
			if err != nil {
				return
			}
			go func(c *tcpip.TCB) {
				buf := make([]byte, 1024)
				for {
					n, err := c.ReadDeadline(buf, time.Now().Add(10*time.Second))
					if n > 0 {
						c.Write(buf[:n])
					}
					if err != nil {
						c.Close()
						return
					}
				}
			}(conn)
		}
	}()

	psk := []byte("board-psk-no-rsa-on-8-bits")
	srv, err := redirector.NewEmbeddedServer(dcsock.NewEnv(board), redirector.Config{
		ListenPort: 443,
		Target:     backend.Addr(),
		TargetPort: 8000,
		Secure:     true,
		PSK:        psk,
		Slots:      3, // Fig. 3: "at most three requests"
		RandSeed:   7,
	})
	if err != nil {
		log.Fatal(err)
	}
	go srv.Run()
	defer srv.Close()
	time.Sleep(50 * time.Millisecond)

	dial := func(id int) (*issl.Conn, *tcpip.TCB, error) {
		tcb, err := workstation.Connect(board.Addr(), 443, 3*time.Second)
		if err != nil {
			return nil, nil, err
		}
		conn, err := issl.BindClient(tcb, issl.Config{
			Profile: issl.ProfileEmbedded, PSK: psk,
			Rand: prng.NewXorshift(uint64(500 + id)),
		})
		if err != nil {
			tcb.Close()
			return nil, nil, err
		}
		return conn, tcb, nil
	}

	// Fill every slot with a live session.
	var conns []*issl.Conn
	var tcbs []*tcpip.TCB
	for i := 0; i < 3; i++ {
		conn, tcb, err := dial(i)
		if err != nil {
			log.Fatalf("client %d: %v", i, err)
		}
		conn.Write([]byte(fmt.Sprintf("slot %d busy", i)))
		buf := make([]byte, 64)
		n, err := conn.Read(buf)
		if err != nil {
			log.Fatalf("client %d echo: %v", i, err)
		}
		fmt.Printf("client %d served: %q\n", i, buf[:n])
		conns = append(conns, conn)
		tcbs = append(tcbs, tcb)
	}

	// Fourth client: all costatement slots are occupied.
	if _, _, err := dial(3); err != nil {
		fmt.Printf("client 3 refused while all slots busy: %v\n", err)
	} else {
		fmt.Println("UNEXPECTED: fourth client served with all slots busy")
	}

	// Free slot 0 and retry.
	conns[0].Close()
	tcbs[0].Close()
	fmt.Println("client 0 disconnected; slot re-listens...")
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		conn, tcb, err := dial(4)
		if err != nil {
			continue
		}
		conn.Write([]byte("finally in"))
		buf := make([]byte, 64)
		n, err := conn.Read(buf)
		if err != nil {
			log.Fatalf("late client echo: %v", err)
		}
		fmt.Printf("client 4 served after slot freed: %q\n", buf[:n])
		conn.Close()
		tcb.Close()
		break
	}
	for i := 1; i < 3; i++ {
		conns[i].Close()
		tcbs[i].Close()
	}
	time.Sleep(100 * time.Millisecond)
	st := srv.Stats()
	fmt.Printf("\nembedded redirector stats: %d accepted, %d refused\n",
		st.Accepted.Value(), st.Refused.Value())
}
