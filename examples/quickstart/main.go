// Quickstart: bring up two hosts on a simulated wire, open a TCP
// connection, bind the issl cryptographic layer to it (embedded
// profile, as the RMC2000 port would), and exchange a message — the
// minimal end-to-end use of the library.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/crypto/prng"
	"repro/internal/issl"
	"repro/internal/netsim"
	"repro/internal/tcpip"
)

func main() {
	// One hub, two hosts — a workstation and "the board".
	hub := netsim.NewHub()
	defer hub.Close()
	workstation, err := tcpip.NewStack(hub, tcpip.IP4(10, 0, 0, 1))
	if err != nil {
		log.Fatal(err)
	}
	defer workstation.Close()
	board, err := tcpip.NewStack(hub, tcpip.IP4(10, 0, 0, 2))
	if err != nil {
		log.Fatal(err)
	}
	defer board.Close()

	// Both ends share the pre-shared key (the embedded port dropped
	// RSA, so the session key derives from a PSK).
	psk := []byte("quickstart-preshared-key")

	// Server side: listen, accept, bind issl, echo one message.
	listener, err := board.Listen(443, 1)
	if err != nil {
		log.Fatal(err)
	}
	serverDone := make(chan error, 1)
	go func() {
		tcb, err := listener.Accept(5 * time.Second)
		if err != nil {
			serverDone <- err
			return
		}
		conn, err := issl.BindServer(tcb, issl.Config{
			Profile: issl.ProfileEmbedded,
			PSK:     psk,
			Rand:    prng.NewXorshift(2),
		})
		if err != nil {
			serverDone <- err
			return
		}
		buf := make([]byte, 256)
		n, err := conn.Read(buf)
		if err != nil {
			serverDone <- err
			return
		}
		fmt.Printf("server decrypted: %q\n", buf[:n])
		_, err = conn.Write(buf[:n])
		serverDone <- err
	}()

	// Client side: connect, bind issl, send, read the echo.
	tcb, err := workstation.Connect(board.Addr(), 443, 5*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	conn, err := issl.BindClient(tcb, issl.Config{
		Profile: issl.ProfileEmbedded,
		PSK:     psk,
		Rand:    prng.NewXorshift(1),
	})
	if err != nil {
		log.Fatal(err)
	}
	kb, bb := conn.CipherInfo()
	fmt.Printf("handshake complete: %s profile, AES %d-bit key / %d-bit block\n",
		conn.Profile(), kb, bb)

	msg := []byte("hello through the cryptographic service")
	if _, err := conn.Write(msg); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 256)
	n, err := conn.Read(buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client got echo:  %q\n", buf[:n])
	if err := <-serverDone; err != nil {
		log.Fatal(err)
	}
	in, out, rin, rout := conn.Stats()
	fmt.Printf("client record stats: %d B in / %d B out, %d / %d records\n", in, out, rin, rout)
}
