// Redirector example: the original Unix-flavor service — a secure
// redirector terminating issl connections (full RSA key exchange) and
// forwarding plaintext to a backend, one handler per connection like
// the fork-based original. Several clients hit it concurrently; the
// run ends with the service counters.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/crypto/prng"
	"repro/internal/crypto/rsa"
	"repro/internal/issl"
	"repro/internal/netsim"
	"repro/internal/redirector"
	"repro/internal/tcpip"
)

func main() {
	hub := netsim.NewHub()
	defer hub.Close()
	newHost := func(last byte) *tcpip.Stack {
		s, err := tcpip.NewStack(hub, tcpip.IP4(10, 1, 0, last))
		if err != nil {
			log.Fatal(err)
		}
		return s
	}
	client := newHost(1)
	defer client.Close()
	accel := newHost(2) // the "SSL accelerator" box
	defer accel.Close()
	backend := newHost(3)
	defer backend.Close()

	// Backend: a plain echo server that never speaks crypto — the
	// accelerator shields it.
	echoL, err := backend.Listen(8000, 8)
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		for {
			conn, err := echoL.Accept(10 * time.Second)
			if err != nil {
				return
			}
			go func(c *tcpip.TCB) {
				buf := make([]byte, 2048)
				for {
					n, err := c.ReadDeadline(buf, time.Now().Add(10*time.Second))
					if n > 0 {
						c.Write(buf[:n])
					}
					if err != nil {
						c.Close()
						return
					}
				}
			}(conn)
		}
	}()

	// The accelerator's RSA identity.
	fmt.Println("generating 512-bit RSA key for the redirector...")
	key, err := rsa.GenerateKey(prng.NewXorshift(0xACCE1), 512)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := redirector.NewUnixServer(accel, redirector.Config{
		ListenPort: 443,
		Target:     backend.Addr(),
		TargetPort: 8000,
		Secure:     true,
		ServerKey:  key,
		RandSeed:   99,
	})
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	const clients = 5
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tcb, err := client.Connect(accel.Addr(), 443, 10*time.Second)
			if err != nil {
				log.Printf("client %d: connect: %v", id, err)
				return
			}
			conn, err := issl.BindClient(tcb, issl.Config{
				Profile: issl.ProfileUnix,
				Rand:    prng.NewXorshift(uint64(1000 + id)),
			})
			if err != nil {
				log.Printf("client %d: handshake: %v", id, err)
				return
			}
			msg := fmt.Sprintf("client %d says: encrypt me end to end", id)
			if _, err := conn.Write([]byte(msg)); err != nil {
				log.Printf("client %d: write: %v", id, err)
				return
			}
			buf := make([]byte, 256)
			var got []byte
			for len(got) < len(msg) {
				n, err := conn.Read(buf)
				if err != nil {
					log.Printf("client %d: read: %v", id, err)
					return
				}
				got = append(got, buf[:n]...)
			}
			fmt.Printf("client %d round trip ok: %q\n", id, got)
			conn.Close()
			tcb.Close()
		}(i)
	}
	wg.Wait()
	time.Sleep(100 * time.Millisecond) // let handler teardown finish
	st := srv.Stats()
	fmt.Printf("\nredirector stats: %d accepted, %d refused, %d B forward, %d B backward\n",
		st.Accepted.Value(), st.Refused.Value(), st.BytesForward.Value(), st.BytesBackward.Value())
}
