// Secure web example: the paper's motivating scenario — SSL "layers on
// top of TCP/IP to provide secure communications, e.g., to encrypt web
// pages with sensitive information" (§2). The board serves a public
// page and a sensitive page over issl; a workstation fetches both; a
// third port on the hub plays packet sniffer and demonstrates the
// sensitive content never crosses the wire in the clear.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"repro/internal/crypto/prng"
	"repro/internal/httpmin"
	"repro/internal/issl"
	"repro/internal/netsim"
	"repro/internal/tcpip"
)

const secretMarker = "ACCT-8842-BALANCE"

func main() {
	hub := netsim.NewHub()
	defer hub.Close()
	workstation, err := tcpip.NewStack(hub, tcpip.IP4(10, 3, 0, 1))
	if err != nil {
		log.Fatal(err)
	}
	defer workstation.Close()
	board, err := tcpip.NewStack(hub, tcpip.IP4(10, 3, 0, 2))
	if err != nil {
		log.Fatal(err)
	}
	defer board.Close()

	// The sniffer: a promiscuous port capturing every frame on the hub.
	sniffer, err := hub.AttachPromiscuous(netsim.MAC{0x02, 0xBA, 0xD0, 0, 0, 1})
	if err != nil {
		log.Fatal(err)
	}
	var captured bytes.Buffer
	go func() {
		for f := range sniffer.Recv() {
			captured.Write(f.Payload)
		}
	}()

	pages := func(req httpmin.Request) httpmin.Response {
		switch req.Path {
		case "/":
			return httpmin.Text(200, "RMC2000 secure gateway — public index\n")
		case "/account":
			return httpmin.Text(200, secretMarker+": 1,234,567.89\n")
		default:
			return httpmin.NotFound()
		}
	}

	psk := []byte("board-web-psk")
	listener, err := board.Listen(443, 4)
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		for i := 0; ; i++ {
			tcb, err := listener.Accept(10 * time.Second)
			if err != nil {
				return
			}
			go func(id int, tcb *tcpip.TCB) {
				defer tcb.Close()
				sc, err := issl.BindServer(tcb, issl.Config{
					Profile: issl.ProfileEmbedded, PSK: psk,
					Rand: prng.NewXorshift(uint64(40 + id)),
				})
				if err != nil {
					log.Printf("server handshake: %v", err)
					return
				}
				if err := httpmin.Serve(sc, pages); err != nil {
					log.Printf("serve: %v", err)
				}
				sc.Close()
			}(i, tcb)
		}
	}()

	fetch := func(path string, seed uint64) httpmin.Response {
		tcb, err := workstation.Connect(board.Addr(), 443, 5*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		defer tcb.Close()
		sc, err := issl.BindClient(tcb, issl.Config{
			Profile: issl.ProfileEmbedded, PSK: psk, Rand: prng.NewXorshift(seed)})
		if err != nil {
			log.Fatal(err)
		}
		resp, err := httpmin.Get(sc, path)
		if err != nil {
			log.Fatal(err)
		}
		sc.Close()
		return resp
	}

	index := fetch("/", 1)
	fmt.Printf("GET /        -> %d %q\n", index.Status, index.Body)
	account := fetch("/account", 2)
	fmt.Printf("GET /account -> %d %q\n", account.Status, account.Body)
	missing := fetch("/nothing", 3)
	fmt.Printf("GET /nothing -> %d\n", missing.Status)

	time.Sleep(100 * time.Millisecond) // let the sniffer drain
	if bytes.Contains(captured.Bytes(), []byte(secretMarker)) {
		fmt.Println("\n!!! the sensitive marker crossed the wire IN THE CLEAR")
	} else {
		fmt.Printf("\nsniffer captured %d bytes off the hub; the marker %q appears nowhere in them\n",
			captured.Len(), secretMarker)
	}
}
