// Serial monitor example: the paper's §5.1 debugging setup, end to
// end. A program on the simulated RMC2000 configures serial port A to
// interrupt on input and installs an ISR (the SetVectExtern2000 +
// WrPortI(I0CR,...) sequence from the paper); the "host" side then
// sends status ('s') and reset ('r') commands and prints the board's
// replies — the status-or-reset protocol the authors used because
// debugging over the network connection "would have made it impossible
// to debug a system having network communication problems".
package main

import (
	"fmt"
	"log"

	"repro/internal/netsim"
	"repro/internal/rasm"
	"repro/internal/rmc2000"
)

const monitor = `
SADR equ 0xC0
SACR equ 0xC4
I0CR equ 0x98

        org 0
start:
        ld a, 0x01
        ioi ld (SACR), a      ; serial A: interrupt on receive
        ld a, 0x2B
        ioi ld (I0CR), a      ; WrPortI(I0CR, NULL, 0x2B): enable INT0
        ei
        ld hl, 0
        ld (uptime), hl
main_loop:                    ; the "application": counts uptime ticks
        ld hl, (uptime)
        inc hl
        ld (uptime), hl
        jr main_loop

        org 0x80
isr:                          ; my_isr: decode one command byte
        ioi ld a, (SADR)
        cp 's'
        jr z, cmd_status
        cp 'r'
        jr z, cmd_reset
        ei
        reti

cmd_status:                   ; reply "UP:" + low uptime byte (hex-ish)
        ld a, 'U'
        ioi ld (SADR), a
        ld a, 'P'
        ioi ld (SADR), a
        ld a, ':'
        ioi ld (SADR), a
        ld a, (uptime)
        and 0x0F
        add a, 'A'            ; crude nibble-to-letter encoding
        ioi ld (SADR), a
        ei
        reti

cmd_reset:                    ; "reset the application, possibly
        ld hl, 0              ;  maintaining program state": zero the
        ld (uptime), hl       ;  counter, acknowledge, resume
        ld a, 'R'
        ioi ld (SADR), a
        ld a, '!'
        ioi ld (SADR), a
        ei
        reti

uptime: ds 2
`

func main() {
	board, err := rmc2000.New(nil, netsim.MAC{})
	if err != nil {
		log.Fatal(err)
	}
	prog, err := rasm.Assemble(monitor)
	if err != nil {
		log.Fatal(err)
	}
	board.LoadProgram(prog.Origin, prog.Code)
	board.SetIntVector(0x80)
	fmt.Printf("monitor loaded: %d bytes, ISR at 0x80, uptime at %#04x\n",
		prog.Size(), prog.Symbols["uptime"])

	step := func(n int) {
		for i := 0; i < n; i++ {
			if err := board.Step(); err != nil {
				log.Fatal(err)
			}
		}
	}
	step(2000) // let the app configure interrupts and run a while

	send := func(cmd byte) {
		board.Serial[0].HostSend(cmd)
		step(500)
		reply := board.Serial[0].HostRecv()
		fmt.Printf("host> %c    board> %q   (uptime=%d, cycles=%d)\n",
			cmd, reply, board.CPU.Mem.Read16(prog.Symbols["uptime"]), board.CPU.Cycles)
	}

	send('s') // status
	step(5000)
	send('s') // uptime has advanced
	send('r') // reset the application state
	send('s') // uptime restarted near zero
	send('x') // unknown command: ignored, no reply
	fmt.Println("done: interrupt-driven serial monitor behaved like §5.1 describes")
}
