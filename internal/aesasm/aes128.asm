; aes128.asm — hand-optimized AES-128 (Rijndael) block encryption for
; the Rabbit 2000, in the style of the assembly implementation Rabbit
; Semiconductor supplied, which the paper benchmarked against the
; ported C code (§6: "the assembly implementation ran faster than the
; C port by a factor of 15-20").
;
; Optimization techniques on display (and why the compiler can't match
; them): state bytes live in registers across whole MixColumns columns;
; the S-box and xtime tables sit on 256-byte-aligned pages so a lookup
; is "ld l,a / ld a,(hl)" with H preloaded; SubBytes+ShiftRows fuse
; into one unrolled pass; all loops over columns are fully unrolled.
;
; Memory map (root RAM, all static — there is no malloc here either):
;   KEY     0x0E00  16 bytes   input key
;   STATE   0x0E10  16 bytes   block, in place (column-major)
;   TMPB    0x0E20  16 bytes   scratch block
;   RCONV   0x0E30  1          round constant
;   TVAR    0x0E31  1          MixColumns column xor
;   RKPTR   0x0E32  2          current round key pointer
;   NBLOCKS 0x0E36  2          encryptions to run (driver loop)
;   RKEYS   0x0F00  176 bytes  expanded key
;   SBOX    0x0C00  256        S-box (page aligned)
;   XTIME   0x0D00  256        GF(2^8) double table (page aligned)

KEY     equ 0x0E00
STATE   equ 0x0E10
TMPB    equ 0x0E20
RCONV   equ 0x0E30
TVAR    equ 0x0E31
RKPTR   equ 0x0E32
NBLOCKS equ 0x0E36
RKEYS   equ 0x0F00
SBOX    equ 0x0C00
XTIME   equ 0x0D00
SBOXH   equ 0x0C
XTIMEH  equ 0x0D

        org 0

; driver: expand the key, then encrypt STATE in place NBLOCKS times
; (chained, so the testbench "pumps keys through" like the paper's).
main:
        call expand_key
mainlp:
        call encrypt_block
        ld hl, (NBLOCKS)
        dec hl
        ld (NBLOCKS), hl
        ld a, h
        or l
        jr nz, mainlp
        halt

; ---------------------------------------------------------------- key schedule
; RKEYS[0:16] = KEY; then 10 rounds of 4 words each.
expand_key:
        ld hl, KEY
        ld de, RKEYS
        ld bc, 16
        ldir
        ld a, 1
        ld (RCONV), a
        ld ix, RKEYS+16
        ld b, 10
ekround:
        ; word 0: dest[k] = prev[k] ^ sbox[prev[12 + (k+1)%4]] (^rcon for k=0)
        ld h, SBOXH
        ld a, (ix-3)
        ld l, a
        ld a, (hl)
        ld c, a
        ld a, (RCONV)
        xor c
        ld c, a
        ld a, (ix-16)
        xor c
        ld (ix+0), a
        ld a, (ix-2)
        ld l, a
        ld a, (hl)
        ld c, a
        ld a, (ix-15)
        xor c
        ld (ix+1), a
        ld a, (ix-1)
        ld l, a
        ld a, (hl)
        ld c, a
        ld a, (ix-14)
        xor c
        ld (ix+2), a
        ld a, (ix-4)
        ld l, a
        ld a, (hl)
        ld c, a
        ld a, (ix-13)
        xor c
        ld (ix+3), a
        ; words 1..3: dest[j] = prev[j] ^ dest[j-4], unrolled
        ld a, (ix-12)
        xor (ix+0)
        ld (ix+4), a
        ld a, (ix-11)
        xor (ix+1)
        ld (ix+5), a
        ld a, (ix-10)
        xor (ix+2)
        ld (ix+6), a
        ld a, (ix-9)
        xor (ix+3)
        ld (ix+7), a
        ld a, (ix-8)
        xor (ix+4)
        ld (ix+8), a
        ld a, (ix-7)
        xor (ix+5)
        ld (ix+9), a
        ld a, (ix-6)
        xor (ix+6)
        ld (ix+10), a
        ld a, (ix-5)
        xor (ix+7)
        ld (ix+11), a
        ld a, (ix-4)
        xor (ix+8)
        ld (ix+12), a
        ld a, (ix-3)
        xor (ix+9)
        ld (ix+13), a
        ld a, (ix-2)
        xor (ix+10)
        ld (ix+14), a
        ld a, (ix-1)
        xor (ix+11)
        ld (ix+15), a
        ; rcon = xtime(rcon); ix += 16
        ld h, XTIMEH
        ld a, (RCONV)
        ld l, a
        ld a, (hl)
        ld (RCONV), a
        ld de, 16
        add ix, de
        dec b
        jp nz, ekround
        ret

; ---------------------------------------------------------------- encryption
encrypt_block:
        ; round 0: AddRoundKey(STATE, RKEYS)
        ld hl, STATE
        ld de, RKEYS
        call ark16
        ld hl, RKEYS+16
        ld (RKPTR), hl
        ld b, 9
encround:
        push bc
        call subshift         ; STATE -> TMPB (SubBytes + ShiftRows)
        call mixcols          ; TMPB -> STATE (MixColumns)
        ld hl, STATE
        ld de, (RKPTR)
        call ark16            ; AddRoundKey
        ld hl, (RKPTR)
        ld de, 16
        add hl, de
        ld (RKPTR), hl
        pop bc
        djnz encround
        ; final round: SubBytes+ShiftRows, copy back, AddRoundKey
        call subshift
        ld hl, TMPB
        ld de, STATE
        ld bc, 16
        ldir
        ld hl, STATE
        ld de, (RKPTR)
        call ark16
        ret

; ark16: (hl)[0:16] ^= (de)[0:16]
ark16:
        ld b, 16
arklp:
        ld a, (de)
        xor (hl)
        ld (hl), a
        inc hl
        inc de
        djnz arklp
        ret

; subshift: TMPB[i] = SBOX[STATE[shiftmap[i]]], fully unrolled.
; Column-major state; row r rotates left by r.
subshift:
        ld ix, STATE
        ld iy, TMPB
        ld h, SBOXH
        ld a, (ix+0)
        ld l, a
        ld a, (hl)
        ld (iy+0), a
        ld a, (ix+5)
        ld l, a
        ld a, (hl)
        ld (iy+1), a
        ld a, (ix+10)
        ld l, a
        ld a, (hl)
        ld (iy+2), a
        ld a, (ix+15)
        ld l, a
        ld a, (hl)
        ld (iy+3), a
        ld a, (ix+4)
        ld l, a
        ld a, (hl)
        ld (iy+4), a
        ld a, (ix+9)
        ld l, a
        ld a, (hl)
        ld (iy+5), a
        ld a, (ix+14)
        ld l, a
        ld a, (hl)
        ld (iy+6), a
        ld a, (ix+3)
        ld l, a
        ld a, (hl)
        ld (iy+7), a
        ld a, (ix+8)
        ld l, a
        ld a, (hl)
        ld (iy+8), a
        ld a, (ix+13)
        ld l, a
        ld a, (hl)
        ld (iy+9), a
        ld a, (ix+2)
        ld l, a
        ld a, (hl)
        ld (iy+10), a
        ld a, (ix+7)
        ld l, a
        ld a, (hl)
        ld (iy+11), a
        ld a, (ix+12)
        ld l, a
        ld a, (hl)
        ld (iy+12), a
        ld a, (ix+1)
        ld l, a
        ld a, (hl)
        ld (iy+13), a
        ld a, (ix+6)
        ld l, a
        ld a, (hl)
        ld (iy+14), a
        ld a, (ix+11)
        ld l, a
        ld a, (hl)
        ld (iy+15), a
        ret

; mixcols: STATE[col] = MixColumn(TMPB[col]) for all four columns,
; fully unrolled (the hand-optimizer's loop unrolling the paper
; mentions). Per column: t = a0^a1^a2^a3; a_i' = a_i ^ t ^
; xtime(a_i ^ a_{i+1}). B,C,D,E hold a0..a3; H stays on the xtime
; page; TVAR holds t.
mixcols:
        ld ix, TMPB
        ld iy, STATE
        ld h, XTIMEH
        ; ---- column 0
        ld b, (ix+0)
        ld c, (ix+1)
        ld d, (ix+2)
        ld e, (ix+3)
        ld a, b
        xor c
        xor d
        xor e
        ld (TVAR), a
        ld a, b
        xor c
        ld l, a
        ld a, (hl)
        xor b
        ld l, a
        ld a, (TVAR)
        xor l
        ld (iy+0), a
        ld a, c
        xor d
        ld l, a
        ld a, (hl)
        xor c
        ld l, a
        ld a, (TVAR)
        xor l
        ld (iy+1), a
        ld a, d
        xor e
        ld l, a
        ld a, (hl)
        xor d
        ld l, a
        ld a, (TVAR)
        xor l
        ld (iy+2), a
        ld a, e
        xor b
        ld l, a
        ld a, (hl)
        xor e
        ld l, a
        ld a, (TVAR)
        xor l
        ld (iy+3), a
        ; ---- column 1
        ld b, (ix+4)
        ld c, (ix+5)
        ld d, (ix+6)
        ld e, (ix+7)
        ld a, b
        xor c
        xor d
        xor e
        ld (TVAR), a
        ld a, b
        xor c
        ld l, a
        ld a, (hl)
        xor b
        ld l, a
        ld a, (TVAR)
        xor l
        ld (iy+4), a
        ld a, c
        xor d
        ld l, a
        ld a, (hl)
        xor c
        ld l, a
        ld a, (TVAR)
        xor l
        ld (iy+5), a
        ld a, d
        xor e
        ld l, a
        ld a, (hl)
        xor d
        ld l, a
        ld a, (TVAR)
        xor l
        ld (iy+6), a
        ld a, e
        xor b
        ld l, a
        ld a, (hl)
        xor e
        ld l, a
        ld a, (TVAR)
        xor l
        ld (iy+7), a
        ; ---- column 2
        ld b, (ix+8)
        ld c, (ix+9)
        ld d, (ix+10)
        ld e, (ix+11)
        ld a, b
        xor c
        xor d
        xor e
        ld (TVAR), a
        ld a, b
        xor c
        ld l, a
        ld a, (hl)
        xor b
        ld l, a
        ld a, (TVAR)
        xor l
        ld (iy+8), a
        ld a, c
        xor d
        ld l, a
        ld a, (hl)
        xor c
        ld l, a
        ld a, (TVAR)
        xor l
        ld (iy+9), a
        ld a, d
        xor e
        ld l, a
        ld a, (hl)
        xor d
        ld l, a
        ld a, (TVAR)
        xor l
        ld (iy+10), a
        ld a, e
        xor b
        ld l, a
        ld a, (hl)
        xor e
        ld l, a
        ld a, (TVAR)
        xor l
        ld (iy+11), a
        ; ---- column 3
        ld b, (ix+12)
        ld c, (ix+13)
        ld d, (ix+14)
        ld e, (ix+15)
        ld a, b
        xor c
        xor d
        xor e
        ld (TVAR), a
        ld a, b
        xor c
        ld l, a
        ld a, (hl)
        xor b
        ld l, a
        ld a, (TVAR)
        xor l
        ld (iy+12), a
        ld a, c
        xor d
        ld l, a
        ld a, (hl)
        xor c
        ld l, a
        ld a, (TVAR)
        xor l
        ld (iy+13), a
        ld a, d
        xor e
        ld l, a
        ld a, (hl)
        xor d
        ld l, a
        ld a, (TVAR)
        xor l
        ld (iy+14), a
        ld a, e
        xor b
        ld l, a
        ld a, (hl)
        xor e
        ld l, a
        ld a, (TVAR)
        xor l
        ld (iy+15), a
        ret
code_end:

; ---------------------------------------------------------------- tables
        org SBOX
        db 0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76
        db 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0
        db 0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15
        db 0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75
        db 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84
        db 0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf
        db 0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8
        db 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2
        db 0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73
        db 0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb
        db 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79
        db 0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08
        db 0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a
        db 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e
        db 0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf
        db 0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16
        org XTIME

        db 0x00, 0x02, 0x04, 0x06, 0x08, 0x0a, 0x0c, 0x0e, 0x10, 0x12, 0x14, 0x16, 0x18, 0x1a, 0x1c, 0x1e
        db 0x20, 0x22, 0x24, 0x26, 0x28, 0x2a, 0x2c, 0x2e, 0x30, 0x32, 0x34, 0x36, 0x38, 0x3a, 0x3c, 0x3e
        db 0x40, 0x42, 0x44, 0x46, 0x48, 0x4a, 0x4c, 0x4e, 0x50, 0x52, 0x54, 0x56, 0x58, 0x5a, 0x5c, 0x5e
        db 0x60, 0x62, 0x64, 0x66, 0x68, 0x6a, 0x6c, 0x6e, 0x70, 0x72, 0x74, 0x76, 0x78, 0x7a, 0x7c, 0x7e
        db 0x80, 0x82, 0x84, 0x86, 0x88, 0x8a, 0x8c, 0x8e, 0x90, 0x92, 0x94, 0x96, 0x98, 0x9a, 0x9c, 0x9e
        db 0xa0, 0xa2, 0xa4, 0xa6, 0xa8, 0xaa, 0xac, 0xae, 0xb0, 0xb2, 0xb4, 0xb6, 0xb8, 0xba, 0xbc, 0xbe
        db 0xc0, 0xc2, 0xc4, 0xc6, 0xc8, 0xca, 0xcc, 0xce, 0xd0, 0xd2, 0xd4, 0xd6, 0xd8, 0xda, 0xdc, 0xde
        db 0xe0, 0xe2, 0xe4, 0xe6, 0xe8, 0xea, 0xec, 0xee, 0xf0, 0xf2, 0xf4, 0xf6, 0xf8, 0xfa, 0xfc, 0xfe
        db 0x1b, 0x19, 0x1f, 0x1d, 0x13, 0x11, 0x17, 0x15, 0x0b, 0x09, 0x0f, 0x0d, 0x03, 0x01, 0x07, 0x05
        db 0x3b, 0x39, 0x3f, 0x3d, 0x33, 0x31, 0x37, 0x35, 0x2b, 0x29, 0x2f, 0x2d, 0x23, 0x21, 0x27, 0x25
        db 0x5b, 0x59, 0x5f, 0x5d, 0x53, 0x51, 0x57, 0x55, 0x4b, 0x49, 0x4f, 0x4d, 0x43, 0x41, 0x47, 0x45
        db 0x7b, 0x79, 0x7f, 0x7d, 0x73, 0x71, 0x77, 0x75, 0x6b, 0x69, 0x6f, 0x6d, 0x63, 0x61, 0x67, 0x65
        db 0x9b, 0x99, 0x9f, 0x9d, 0x93, 0x91, 0x97, 0x95, 0x8b, 0x89, 0x8f, 0x8d, 0x83, 0x81, 0x87, 0x85
        db 0xbb, 0xb9, 0xbf, 0xbd, 0xb3, 0xb1, 0xb7, 0xb5, 0xab, 0xa9, 0xaf, 0xad, 0xa3, 0xa1, 0xa7, 0xa5
        db 0xdb, 0xd9, 0xdf, 0xdd, 0xd3, 0xd1, 0xd7, 0xd5, 0xcb, 0xc9, 0xcf, 0xcd, 0xc3, 0xc1, 0xc7, 0xc5
        db 0xfb, 0xf9, 0xff, 0xfd, 0xf3, 0xf1, 0xf7, 0xf5, 0xeb, 0xe9, 0xef, 0xed, 0xe3, 0xe1, 0xe7, 0xe5
