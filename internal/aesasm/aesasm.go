// Package aesasm loads and drives the hand-written Rabbit assembly
// AES-128 (aes128.asm) on the CPU simulator. It is one side of the
// paper's §6 experiment; the other side is the same algorithm in C,
// compiled by internal/dcc. The Go reference implementation
// (internal/crypto/aes) adjudicates correctness for both.
package aesasm

import (
	_ "embed"
	"fmt"

	"repro/internal/rabbit"
	"repro/internal/rasm"
)

//go:embed aes128.asm
var source string

// Source returns the assembly source text (for the listing tools).
func Source() string { return source }

// Machine is a Rabbit with the assembly AES loaded.
type Machine struct {
	cpu  *rabbit.CPU
	prog *rasm.Program
}

// Buffer addresses fixed by the assembly source.
const (
	addrKey     = 0x0E00
	addrState   = 0x0E10
	addrNBlocks = 0x0E36
)

// Load assembles the source and prepares a machine.
func Load() (*Machine, error) {
	prog, err := rasm.Assemble(source)
	if err != nil {
		return nil, fmt.Errorf("aesasm: %w", err)
	}
	m := &Machine{cpu: rabbit.New(), prog: prog}
	m.cpu.Mem.LoadPhysical(uint32(prog.Origin), prog.Code)
	return m, nil
}

// EnableProfiler attaches a cycle profiler to the machine's CPU and
// returns it. The profiler survives the Reset inside EncryptChain
// (its totals restart with CPU.Cycles), so read reports after the run.
func (m *Machine) EnableProfiler() *rabbit.Profiler {
	p := rabbit.NewProgramProfiler(m.prog.Origin, m.prog.Code, m.prog.Symbols)
	p.Attach(m.cpu)
	return p
}

// CodeSize returns the size in bytes of the code section only
// (tables and buffers excluded) — the paper's E3 metric.
func (m *Machine) CodeSize() int {
	end, ok := m.prog.Symbols["code_end"]
	if !ok {
		return m.prog.Size()
	}
	return int(end - m.prog.Origin)
}

// EncryptChain loads key and block, then runs blocks chained
// encryptions on the simulator (output feeding input, the "pump keys
// through" workload). It returns the final state and the cycle count.
func (m *Machine) EncryptChain(key, block [16]byte, blocks int) ([16]byte, uint64, error) {
	c := m.cpu
	c.Reset()
	c.PC = m.prog.Origin
	for i, b := range key {
		c.Mem.Write(addrKey+uint16(i), b)
	}
	for i, b := range block {
		c.Mem.Write(addrState+uint16(i), b)
	}
	c.Mem.Write16(addrNBlocks, uint16(blocks))
	// Budget: generous per block plus key-schedule overhead.
	budget := uint64(blocks)*200_000 + 2_000_000
	if err := c.Run(budget); err != nil {
		return [16]byte{}, 0, fmt.Errorf("aesasm: %w", err)
	}
	var out [16]byte
	for i := range out {
		out[i] = c.Mem.Read(addrState + uint16(i))
	}
	return out, c.Cycles, nil
}

// Encrypt runs a single block (key schedule included in the cycle count).
func (m *Machine) Encrypt(key, block [16]byte) ([16]byte, uint64, error) {
	return m.EncryptChain(key, block, 1)
}

// CyclesPerBlock measures the marginal per-block cost by running 1 and
// n+1 blocks and differencing, removing the key-schedule overhead.
func (m *Machine) CyclesPerBlock(n int) (float64, error) {
	var key, block [16]byte
	for i := range key {
		key[i] = byte(i)
		block[i] = byte(i * 17)
	}
	_, c1, err := m.EncryptChain(key, block, 1)
	if err != nil {
		return 0, err
	}
	_, cN, err := m.EncryptChain(key, block, n+1)
	if err != nil {
		return 0, err
	}
	return float64(cN-c1) / float64(n), nil
}
