package aesasm

import (
	"bytes"
	"testing"

	"repro/internal/crypto/aes"
)

func TestMatchesFIPSVector(t *testing.T) {
	m, err := Load()
	if err != nil {
		t.Fatal(err)
	}
	key := [16]byte{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
		0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f}
	block := [16]byte{0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
		0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff}
	want := []byte{0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
		0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a}
	got, cycles, err := m.Encrypt(key, block)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:], want) {
		t.Fatalf("asm AES = %x, want %x", got, want)
	}
	if cycles == 0 {
		t.Error("no cycles counted")
	}
	t.Logf("single block incl. key schedule: %d cycles", cycles)
}

// TestChainMatchesReference cross-checks chained encryption against the
// Go reference for several keys.
func TestChainMatchesReference(t *testing.T) {
	m, err := Load()
	if err != nil {
		t.Fatal(err)
	}
	for seed := 0; seed < 4; seed++ {
		var key, block [16]byte
		for i := range key {
			key[i] = byte(i*7 + seed*13 + 1)
			block[i] = byte(i*31 + seed*5 + 2)
		}
		const n = 5
		got, _, err := m.EncryptChain(key, block, n)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := aes.NewAES(key[:])
		if err != nil {
			t.Fatal(err)
		}
		want := block
		for i := 0; i < n; i++ {
			ref.Encrypt(want[:], want[:])
		}
		if got != want {
			t.Errorf("seed %d: chain = %x, want %x", seed, got, want)
		}
	}
}

func TestCyclesPerBlockStable(t *testing.T) {
	m, err := Load()
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.CyclesPerBlock(4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.CyclesPerBlock(16)
	if err != nil {
		t.Fatal(err)
	}
	if a <= 0 || b <= 0 {
		t.Fatalf("cycles/block: %f, %f", a, b)
	}
	// Marginal cost should be independent of chain length.
	ratio := a / b
	if ratio < 0.98 || ratio > 1.02 {
		t.Errorf("cycles/block varies with chain length: %f vs %f", a, b)
	}
	t.Logf("asm AES: %.0f cycles/block", a)
}

func TestCodeSizeSane(t *testing.T) {
	m, err := Load()
	if err != nil {
		t.Fatal(err)
	}
	size := m.CodeSize()
	// The code section should be a few hundred bytes to ~2 KB —
	// definitely smaller than the whole image with its tables.
	if size < 100 || size > 4096 {
		t.Errorf("code size = %d bytes", size)
	}
	t.Logf("asm AES code size: %d bytes", size)
}
