// Package aesc compiles and drives the C implementation of AES-128
// (aes128.dc, written in the Dynamic C subset) on the Rabbit simulator.
// It is the "C port" side of the paper's §6 experiment; internal/aesasm
// is the hand-assembly side; internal/crypto/aes adjudicates both.
package aesc

import (
	_ "embed"
	"fmt"

	"repro/internal/dcc"
	"repro/internal/rabbit"
)

//go:embed aes128.dc
var source string

// Source returns the C source text.
func Source() string { return source }

// Build compiles the AES C source under the given options.
func Build(opt dcc.Options) (*Machine, error) {
	comp, err := dcc.Compile(source, opt)
	if err != nil {
		return nil, fmt.Errorf("aesc: %w", err)
	}
	return &Machine{comp: comp, m: dcc.NewMachine(comp)}, nil
}

// Machine wraps a compiled AES image.
type Machine struct {
	comp *dcc.Compilation
	m    *dcc.Machine
}

// CodeSize returns the compiled code size in bytes (data excluded).
func (a *Machine) CodeSize() int { return a.comp.CodeSize() }

// EnableProfiler attaches a cycle profiler to the underlying machine
// and returns it. Attach before EncryptChain; read reports after.
func (a *Machine) EnableProfiler() *rabbit.Profiler { return a.m.EnableProfiler() }

// Asm returns the generated assembly listing.
func (a *Machine) Asm() string { return a.comp.Asm }

// EncryptChain runs `blocks` chained encryptions and returns the final
// state and total cycles (including key schedule), like the asm driver.
func (a *Machine) EncryptChain(key, block [16]byte, blocks int) ([16]byte, uint64, error) {
	a.m.Reset()
	if err := a.m.PokeBytes("key", key[:]); err != nil {
		return [16]byte{}, 0, err
	}
	if err := a.m.PokeBytes("state", block[:]); err != nil {
		return [16]byte{}, 0, err
	}
	if err := a.m.PokeInt("nblocks", uint16(blocks)); err != nil {
		return [16]byte{}, 0, err
	}
	budget := uint64(blocks)*5_000_000 + 20_000_000
	if err := a.m.Run(budget); err != nil {
		return [16]byte{}, 0, fmt.Errorf("aesc: %w", err)
	}
	out, err := a.m.PeekBytes("state", 16)
	if err != nil {
		return [16]byte{}, 0, err
	}
	var res [16]byte
	copy(res[:], out)
	return res, a.m.CPU.Cycles, nil
}

// CyclesPerBlock measures marginal per-block cost (key schedule
// subtracted), like the asm counterpart.
func (a *Machine) CyclesPerBlock(n int) (float64, error) {
	var key, block [16]byte
	for i := range key {
		key[i] = byte(i)
		block[i] = byte(i * 17)
	}
	_, c1, err := a.EncryptChain(key, block, 1)
	if err != nil {
		return 0, err
	}
	_, cN, err := a.EncryptChain(key, block, n+1)
	if err != nil {
		return 0, err
	}
	return float64(cN-c1) / float64(n), nil
}
