package aesc

import (
	"bytes"
	"testing"

	"repro/internal/aesasm"
	"repro/internal/crypto/aes"
	"repro/internal/dcc"
)

var optionSets = []struct {
	name string
	opt  dcc.Options
}{
	{"debug", dcc.Options{Debug: true}},
	{"nodebug", dcc.Options{}},
	{"unroll", dcc.Options{Unroll: true}},
	{"rootdata", dcc.Options{RootData: true}},
	{"peephole", dcc.Options{Peephole: true}},
	{"all", dcc.Options{Unroll: true, RootData: true, Peephole: true}},
}

func TestMatchesFIPSVectorAllOptions(t *testing.T) {
	key := [16]byte{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
		0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f}
	block := [16]byte{0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
		0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff}
	want := []byte{0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
		0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a}
	for _, tc := range optionSets {
		m, err := Build(tc.opt)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got, cycles, err := m.EncryptChain(key, block, 1)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !bytes.Equal(got[:], want) {
			t.Errorf("%s: got %x, want %x", tc.name, got, want)
		}
		t.Logf("%s: %d cycles, %d bytes code", tc.name, cycles, m.CodeSize())
	}
}

func TestChainMatchesReference(t *testing.T) {
	m, err := Build(dcc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var key, block [16]byte
	for i := range key {
		key[i] = byte(i*11 + 3)
		block[i] = byte(i*23 + 9)
	}
	const n = 3
	got, _, err := m.EncryptChain(key, block, n)
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := aes.NewAES(key[:])
	want := block
	for i := 0; i < n; i++ {
		ref.Encrypt(want[:], want[:])
	}
	if got != want {
		t.Errorf("chain = %x, want %x", got, want)
	}
}

// TestE1SpeedupShape is the headline experiment check: the assembly
// AES must beat the compiled C by more than an order of magnitude
// (the paper reports 15–20x).
func TestE1SpeedupShape(t *testing.T) {
	cm, err := Build(dcc.Options{Debug: true}) // out-of-the-box build
	if err != nil {
		t.Fatal(err)
	}
	cCycles, err := cm.CyclesPerBlock(4)
	if err != nil {
		t.Fatal(err)
	}
	am, err := aesasm.Load()
	if err != nil {
		t.Fatal(err)
	}
	aCycles, err := am.CyclesPerBlock(4)
	if err != nil {
		t.Fatal(err)
	}
	factor := cCycles / aCycles
	t.Logf("E1: C=%.0f cycles/block, asm=%.0f cycles/block, factor=%.1fx",
		cCycles, aCycles, factor)
	if factor < 10 {
		t.Errorf("asm speedup %.1fx; paper reports 15-20x (want >10x)", factor)
	}
	if factor > 60 {
		t.Errorf("asm speedup %.1fx is implausibly large vs the paper's 15-20x", factor)
	}
}

// TestE2OptimizationShape: source/compiler optimizations on the C code
// buy a modest improvement ("perhaps 20%"), nothing near the asm gap.
func TestE2OptimizationShape(t *testing.T) {
	cycles := func(opt dcc.Options) float64 {
		m, err := Build(opt)
		if err != nil {
			t.Fatal(err)
		}
		c, err := m.CyclesPerBlock(2)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	baseline := cycles(dcc.Options{Debug: true})
	best := cycles(dcc.Options{Unroll: true, RootData: true, Peephole: true})
	gain := 1 - best/baseline
	t.Logf("E2: baseline=%.0f optimized=%.0f gain=%.1f%%", baseline, best, gain*100)
	if gain <= 0.02 {
		t.Errorf("optimizations gained only %.1f%%; expected a visible effect", gain*100)
	}
	if gain >= 0.60 {
		t.Errorf("optimizations gained %.1f%%; paper says ~20%%, not order-of-magnitude", gain*100)
	}
}

// TestE3CodeSizeShape: the assembly is somewhat smaller than the
// compiled C (paper: 9%), and size does not track speed.
func TestE3CodeSizeShape(t *testing.T) {
	cm, err := Build(dcc.Options{Debug: true})
	if err != nil {
		t.Fatal(err)
	}
	am, err := aesasm.Load()
	if err != nil {
		t.Fatal(err)
	}
	cSize, aSize := cm.CodeSize(), am.CodeSize()
	t.Logf("E3: C code = %d bytes, asm code = %d bytes (asm %.1f%% smaller)",
		cSize, aSize, 100*(1-float64(aSize)/float64(cSize)))
	if aSize >= cSize {
		t.Errorf("asm (%d) not smaller than C (%d)", aSize, cSize)
	}
	if aSize*4 < cSize {
		t.Errorf("asm (%d) is implausibly small vs C (%d); paper says ~9%% smaller", aSize, cSize)
	}
}
