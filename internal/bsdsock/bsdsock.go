// Package bsdsock provides a BSD-sockets-flavored API over the tcpip
// stack: socket/bind/listen/accept/connect/send/recv/close with
// errno-style errors. This is the interface the original issl library
// and its Unix redirector were written against (Fig. 2a of the paper);
// internal/dcsock is the RMC2000 counterpart it had to be rewritten to
// (Fig. 2b). Keeping both alive over one transport lets the test suite
// show the two servers behave identically (experiment E6) while the
// code that drives them looks nothing alike.
package bsdsock

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/tcpip"
)

// Errno-style errors, named after their BSD counterparts.
var (
	ErrBadSocket    = errors.New("bsdsock: EBADF: operation on bad socket")
	ErrAddrInUse    = errors.New("bsdsock: EADDRINUSE: address already in use")
	ErrIsConnected  = errors.New("bsdsock: EISCONN: socket is already connected")
	ErrNotConnected = errors.New("bsdsock: ENOTCONN: socket is not connected")
	ErrInvalid      = errors.New("bsdsock: EINVAL: invalid argument")
	ErrConnRefused  = errors.New("bsdsock: ECONNREFUSED: connection refused")
	ErrTimedOut     = errors.New("bsdsock: ETIMEDOUT: operation timed out")
	ErrConnReset    = errors.New("bsdsock: ECONNRESET: connection reset by peer")
)

// LISTENQ is the traditional default accept backlog.
const LISTENQ = 8

// API binds the sockets layer to one host's stack.
type API struct {
	stack *tcpip.Stack
	// Default timeout applied to blocking calls so a lost peer cannot
	// hang a test forever. Unix would block indefinitely; keep large.
	Timeout time.Duration
}

// New creates a sockets API over a stack.
func New(stack *tcpip.Stack) *API {
	return &API{stack: stack, Timeout: 30 * time.Second}
}

// Stack exposes the underlying stack (for address lookups).
func (a *API) Stack() *tcpip.Stack { return a.stack }

type sockState int

const (
	stateFresh sockState = iota
	stateBound
	stateListening
	stateConnected
	stateClosed
)

// Socket is a stream socket. Like a file descriptor, one Socket may
// pass through bind → listen → accept, or connect, then send/recv.
type Socket struct {
	api   *API
	mu    sync.Mutex
	state sockState
	port  uint16
	lst   *tcpip.Listener
	conn  *tcpip.TCB
}

// Socket creates an unbound stream socket (socket(AF_INET, SOCK_STREAM, 0)).
func (a *API) Socket() *Socket { return &Socket{api: a} }

// Bind assigns a local port.
func (s *Socket) Bind(port uint16) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != stateFresh {
		return ErrInvalid
	}
	s.port = port
	s.state = stateBound
	return nil
}

// Listen moves a bound socket to the listening state.
func (s *Socket) Listen(backlog int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != stateBound {
		return ErrInvalid
	}
	l, err := s.api.stack.Listen(s.port, backlog)
	if err != nil {
		if errors.Is(err, tcpip.ErrPortInUse) {
			return fmt.Errorf("%w (port %d)", ErrAddrInUse, s.port)
		}
		return err
	}
	s.lst = l
	s.state = stateListening
	return nil
}

// Accept blocks for the next incoming connection and returns a new
// connected socket, like accept(2) returning a fresh descriptor.
func (s *Socket) Accept() (*Socket, error) {
	s.mu.Lock()
	if s.state != stateListening {
		s.mu.Unlock()
		return nil, ErrInvalid
	}
	l := s.lst
	timeout := s.api.Timeout
	s.mu.Unlock()
	conn, err := l.Accept(timeout)
	if err != nil {
		if errors.Is(err, tcpip.ErrTimeout) {
			return nil, ErrTimedOut
		}
		return nil, err
	}
	return &Socket{api: s.api, state: stateConnected, conn: conn}, nil
}

// Connect performs an active open to addr:port.
func (s *Socket) Connect(addr tcpip.Addr, port uint16) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.state {
	case stateFresh, stateBound:
	case stateConnected:
		return ErrIsConnected
	default:
		return ErrInvalid
	}
	conn, err := s.api.stack.Connect(addr, port, s.api.Timeout)
	if err != nil {
		if errors.Is(err, tcpip.ErrConnRefused) {
			return ErrConnRefused
		}
		if errors.Is(err, tcpip.ErrTimeout) {
			return ErrTimedOut
		}
		return err
	}
	s.conn = conn
	s.state = stateConnected
	return nil
}

// Send queues data, blocking until accepted by the transmit buffer.
// Returns the byte count like send(2).
func (s *Socket) Send(data []byte) (int, error) {
	s.mu.Lock()
	conn := s.conn
	s.mu.Unlock()
	if conn == nil {
		return 0, ErrNotConnected
	}
	n, err := conn.Write(data)
	return n, mapConnErr(err)
}

// Recv fills buf with available data, blocking for at least one byte.
// A return of (0, nil) signals orderly shutdown by the peer, exactly
// like recv(2).
func (s *Socket) Recv(buf []byte) (int, error) {
	s.mu.Lock()
	conn := s.conn
	timeout := s.api.Timeout
	s.mu.Unlock()
	if conn == nil {
		return 0, ErrNotConnected
	}
	n, err := conn.ReadDeadline(buf, time.Now().Add(timeout))
	if err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil // BSD convention: recv returns 0 at EOF
		}
		return n, mapConnErr(err)
	}
	return n, nil
}

// Close releases the socket. On a connected socket this performs the
// orderly FIN handshake.
func (s *Socket) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.state {
	case stateListening:
		s.lst.Close()
	case stateConnected:
		s.conn.Close()
	}
	s.state = stateClosed
	return nil
}

// LocalPort returns the bound or ephemeral local port.
func (s *Socket) LocalPort() uint16 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn != nil {
		return s.conn.LocalPort()
	}
	return s.port
}

// RemoteAddr returns the peer's address for a connected socket.
func (s *Socket) RemoteAddr() (tcpip.Addr, uint16, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn == nil {
		return tcpip.Addr{}, 0, ErrNotConnected
	}
	ip, port := s.conn.RemoteAddr()
	return ip, port, nil
}

func mapConnErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, tcpip.ErrConnReset):
		return ErrConnReset
	case errors.Is(err, tcpip.ErrTimeout):
		return ErrTimedOut
	case errors.Is(err, tcpip.ErrConnClosed):
		return ErrBadSocket
	default:
		return err
	}
}
