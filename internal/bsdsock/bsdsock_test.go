package bsdsock

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/tcpip"
)

func twoHosts(t *testing.T) (*API, *API) {
	t.Helper()
	hub := netsim.NewHub()
	t.Cleanup(hub.Close)
	s1, err := tcpip.NewStack(hub, tcpip.IP4(10, 0, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s1.Close)
	s2, err := tcpip.NewStack(hub, tcpip.IP4(10, 0, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s2.Close)
	a, b := New(s1), New(s2)
	a.Timeout, b.Timeout = 5*time.Second, 5*time.Second
	return a, b
}

// echoServer runs the exact call sequence of the paper's Fig. 2a:
// socket, bind, listen, accept, recv, send, close.
func echoServer(api *API, port uint16, ready chan<- struct{}) error {
	sock := api.Socket()
	if err := sock.Bind(port); err != nil {
		return err
	}
	if err := sock.Listen(LISTENQ); err != nil {
		return err
	}
	close(ready)
	newsock, err := sock.Accept()
	if err != nil {
		return err
	}
	buf := make([]byte, 512)
	n, err := newsock.Recv(buf)
	if err != nil {
		return err
	}
	if _, err := newsock.Send(buf[:n]); err != nil {
		return err
	}
	newsock.Close()
	sock.Close()
	return nil
}

func TestFig2aEchoServer(t *testing.T) {
	cliAPI, srvAPI := twoHosts(t)
	ready := make(chan struct{})
	errCh := make(chan error, 1)
	go func() { errCh <- echoServer(srvAPI, 7777, ready) }()
	<-ready
	c := cliAPI.Socket()
	if err := c.Connect(srvAPI.Stack().Addr(), 7777); err != nil {
		t.Fatalf("connect: %v", err)
	}
	if _, err := c.Send([]byte("hello fig2a")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := c.Recv(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "hello fig2a" {
		t.Errorf("echo = %q", buf[:n])
	}
	if err := <-errCh; err != nil {
		t.Fatalf("server: %v", err)
	}
}

func TestRecvReturnsZeroAtEOF(t *testing.T) {
	cliAPI, srvAPI := twoHosts(t)
	srv := srvAPI.Socket()
	srv.Bind(9)
	srv.Listen(1)
	go func() {
		conn, err := srv.Accept()
		if err == nil {
			conn.Close() // immediate FIN
		}
	}()
	c := cliAPI.Socket()
	if err := c.Connect(srvAPI.Stack().Addr(), 9); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := c.Recv(buf)
	if n != 0 || err != nil {
		t.Errorf("Recv at EOF = (%d, %v), want (0, nil)", n, err)
	}
}

func TestStateMachineErrors(t *testing.T) {
	api, _ := twoHosts(t)
	s := api.Socket()
	if err := s.Listen(1); err != ErrInvalid {
		t.Errorf("Listen unbound = %v, want EINVAL", err)
	}
	if _, err := s.Accept(); err != ErrInvalid {
		t.Errorf("Accept unbound = %v, want EINVAL", err)
	}
	if _, err := s.Send([]byte("x")); err != ErrNotConnected {
		t.Errorf("Send unconnected = %v, want ENOTCONN", err)
	}
	if _, err := s.Recv(make([]byte, 1)); err != ErrNotConnected {
		t.Errorf("Recv unconnected = %v, want ENOTCONN", err)
	}
	if err := s.Bind(80); err != nil {
		t.Fatal(err)
	}
	if err := s.Bind(81); err != ErrInvalid {
		t.Errorf("double Bind = %v, want EINVAL", err)
	}
}

func TestAddrInUse(t *testing.T) {
	api, _ := twoHosts(t)
	s1 := api.Socket()
	s1.Bind(80)
	if err := s1.Listen(1); err != nil {
		t.Fatal(err)
	}
	s2 := api.Socket()
	s2.Bind(80)
	if err := s2.Listen(1); err == nil {
		t.Error("second listener on same port accepted")
	}
}

func TestConnectionRefusedMapped(t *testing.T) {
	cliAPI, srvAPI := twoHosts(t)
	c := cliAPI.Socket()
	err := c.Connect(srvAPI.Stack().Addr(), 4444)
	if err != ErrConnRefused {
		t.Errorf("connect to closed port = %v, want ECONNREFUSED", err)
	}
}

func TestLargeTransferThroughSockets(t *testing.T) {
	cliAPI, srvAPI := twoHosts(t)
	want := make([]byte, 64*1024)
	for i := range want {
		want[i] = byte(i)
	}
	srv := srvAPI.Socket()
	srv.Bind(5000)
	srv.Listen(1)
	go func() {
		conn, err := srv.Accept()
		if err != nil {
			return
		}
		conn.Send(want)
		conn.Close()
	}()
	c := cliAPI.Socket()
	if err := c.Connect(srvAPI.Stack().Addr(), 5000); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	buf := make([]byte, 4096)
	for {
		n, err := c.Recv(buf)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		got.Write(buf[:n])
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("got %d bytes, want %d", got.Len(), len(want))
	}
}

func TestRemoteAddr(t *testing.T) {
	cliAPI, srvAPI := twoHosts(t)
	srv := srvAPI.Socket()
	srv.Bind(6000)
	srv.Listen(1)
	acceptedCh := make(chan *Socket, 1)
	go func() {
		conn, _ := srv.Accept()
		acceptedCh <- conn
	}()
	c := cliAPI.Socket()
	if err := c.Connect(srvAPI.Stack().Addr(), 6000); err != nil {
		t.Fatal(err)
	}
	ip, port, err := c.RemoteAddr()
	if err != nil || ip != srvAPI.Stack().Addr() || port != 6000 {
		t.Errorf("client RemoteAddr = %v:%d, %v", ip, port, err)
	}
	accepted := <-acceptedCh
	if accepted == nil {
		t.Fatal("accept failed")
	}
	ip, _, err = accepted.RemoteAddr()
	if err != nil || ip != cliAPI.Stack().Addr() {
		t.Errorf("server RemoteAddr = %v, %v", ip, err)
	}
}

func TestConnectTwiceIsEISCONN(t *testing.T) {
	cliAPI, srvAPI := twoHosts(t)
	srv := srvAPI.Socket()
	srv.Bind(7100)
	srv.Listen(2)
	go func() {
		for {
			if _, err := srv.Accept(); err != nil {
				return
			}
		}
	}()
	c := cliAPI.Socket()
	if err := c.Connect(srvAPI.Stack().Addr(), 7100); err != nil {
		t.Fatal(err)
	}
	if err := c.Connect(srvAPI.Stack().Addr(), 7100); err != ErrIsConnected {
		t.Errorf("second connect = %v, want EISCONN", err)
	}
}

func TestOperationsOnClosedSocket(t *testing.T) {
	api, _ := twoHosts(t)
	s := api.Socket()
	s.Close()
	if err := s.Bind(80); err != ErrInvalid {
		t.Errorf("bind on closed = %v", err)
	}
	if err := s.Connect(tcpip.IP4(10, 0, 0, 2), 80); err != ErrInvalid {
		t.Errorf("connect on closed = %v", err)
	}
}

func TestDoubleCloseHarmless(t *testing.T) {
	api, _ := twoHosts(t)
	s := api.Socket()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second close = %v", err)
	}
}
