package chaos

// The end-to-end allocation pin for the zero-copy ingress work: one
// secure echo round trip — client seal+write, netsim ring delivery,
// server stack demux, in-place record open, echo back, client read —
// must allocate nothing at steady state. AllocsPerRun counts mallocs
// process-wide, so every goroutine on the path (both stacks' receive
// and timer loops, the server's echo loop) is inside the measurement.
//
// chaos.EchoServer is not used here: its per-read idle deadline arms a
// timer (an allocation) per echo, which is fine for soaks and fatal
// for this pin. This harness is the same layering with zero deadlines.

import (
	"testing"
	"time"

	"repro/internal/crypto/prng"
	"repro/internal/issl"
	"repro/internal/netsim"
	"repro/internal/race"
	"repro/internal/tcpip"
)

func TestEchoRoundTripZeroAlloc(t *testing.T) {
	if race.Enabled {
		t.Skip("AllocsPerRun is not meaningful under the race detector")
	}
	hub := netsim.NewHub()
	defer hub.Close()
	srvStack, err := tcpip.NewStack(hub, tcpip.IP4(10, 0, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	cliStack, err := tcpip.NewStack(hub, tcpip.IP4(10, 0, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	psk := []byte("paper-embedded-psk-0123456789ab")
	lst, err := srvStack.Listen(4433, 1)
	if err != nil {
		t.Fatal(err)
	}

	ready := make(chan *issl.Conn, 1)
	go func() {
		tcb, err := lst.Accept(5 * time.Second)
		if err != nil {
			ready <- nil
			return
		}
		conn, err := issl.BindServer(tcb, issl.Config{
			Profile: issl.ProfileEmbedded,
			PSK:     psk,
			Rand:    prng.NewXorshift(2),
		})
		if err != nil {
			ready <- nil
			return
		}
		ready <- conn
		buf := make([]byte, 4096)
		for {
			// No read deadline: a deadline arms a timer per wait, and
			// this loop must stay off the allocator.
			n, err := conn.Read(buf)
			if n > 0 {
				if _, werr := conn.Write(buf[:n]); werr != nil {
					return
				}
			}
			if err != nil {
				return
			}
		}
	}()

	tcb, err := cliStack.Connect(srvStack.Addr(), 4433, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := issl.BindClient(tcb, issl.Config{
		Profile: issl.ProfileEmbedded,
		PSK:     psk,
		Rand:    prng.NewXorshift(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if srv := <-ready; srv == nil {
		t.Fatal("server bind failed")
	}

	payload := make([]byte, 512)
	for i := range payload {
		payload[i] = byte(i)
	}
	rbuf := make([]byte, 1024)
	roundTrip := func() {
		if _, err := conn.Write(payload); err != nil {
			t.Fatal(err)
		}
		got := 0
		for got < len(payload) {
			n, err := conn.Read(rbuf[got:])
			if err != nil {
				t.Fatal(err)
			}
			got += n
		}
		if got != len(payload) || rbuf[0] != payload[0] || rbuf[got-1] != payload[got-1] {
			t.Fatalf("echo mismatch: %d bytes", got)
		}
	}
	// Warm to steady state: buffers grow to their working size, lazy
	// HMAC states build, the record staging area reaches capacity.
	for i := 0; i < 50; i++ {
		roundTrip()
	}
	if n := testing.AllocsPerRun(200, roundTrip); n != 0 {
		t.Fatalf("echo round trip allocates %.1f objects/op at steady state, want 0", n)
	}
}
