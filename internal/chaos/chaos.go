// Package chaos is the fault-injection soak harness: it wires the
// layers this repo reproduces — netsim's degradable hub, the tcpip
// stack, and the issl secure layer — into an end-to-end service and
// batters it with the failures the paper's lab wire produced for free
// (burst loss, bit rot, duplicate frames, someone unplugging the hub,
// the watchdog rebooting the board mid-session).
//
// The harness's one service is EchoServer, a secure echo endpoint
// whose SessionCache plays the role of the RMC2000's `protected`
// storage: Reset models a watchdog reboot — every live connection
// (ordinary RAM) dies, the session cache survives — so a client
// reconnecting through issl.Dialer lands an abbreviated resumption
// handshake instead of a full one, exactly the recovery the paper's
// deployment depended on.
//
// Determinism contract: every fault decision a FaultPlan makes is
// reproducible from its seed (see netsim's fault schedule tests). A
// full soak additionally depends on wall-clock TCP timing, so its
// byte-level schedule is not bit-identical across runs — the invariant
// the soak asserts is integrity and bounded recovery, not replay.
package chaos

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/crypto/prng"
	"repro/internal/issl"
	"repro/internal/netsim"
	"repro/internal/tcpip"
)

// SoakPlan is the harness's canonical degraded-wire schedule: light
// steady loss with Gilbert–Elliott bursts, a little bit rot, duplicate
// frames and bounded reordering — the lab 10Base-T segment on a bad
// day. The soak tests here and the loadgen capacity soak share it so
// "under faults" means the same wire everywhere; seed picks the
// (reproducible) schedule.
func SoakPlan(seed uint64) *netsim.FaultPlan {
	return &netsim.FaultPlan{
		Seed:        seed,
		LossGoodPct: 1, LossBadPct: 20, GoodToBadPct: 2, BadToGoodPct: 40,
		CorruptPct: 2, DupPct: 5, ReorderPct: 5, ReorderDepth: 4,
	}
}

// EchoServer is a secure echo service over one tcpip.Stack. Its
// session cache survives Reset; its live connections do not.
type EchoServer struct {
	stack *tcpip.Stack
	cache *issl.SessionCache
	psk   []byte
	lst   *tcpip.Listener

	seed    atomic.Uint64
	stopped atomic.Bool
	wg      sync.WaitGroup

	mu   sync.Mutex
	live map[*tcpip.TCB]struct{}

	accepted atomic.Uint64 // successful secure binds
	resumed  atomic.Uint64 // binds that were abbreviated resumptions
}

// connIdleLimit bounds a server-side echo read: a connection whose
// client vanished (aborted mid-partition, rebooted) is reaped instead
// of pinning a goroutine until the harness closes.
const connIdleLimit = 15 * time.Second

// NewEchoServer starts the service on port. The PSK is the embedded
// profile's pre-shared master secret; seed feeds each connection's
// deterministic PRNG.
func NewEchoServer(stack *tcpip.Stack, port uint16, psk []byte, seed uint64) (*EchoServer, error) {
	lst, err := stack.Listen(port, 8)
	if err != nil {
		return nil, err
	}
	s := &EchoServer{
		stack: stack,
		cache: issl.NewSessionCache(16),
		psk:   append([]byte(nil), psk...),
		lst:   lst,
		live:  map[*tcpip.TCB]struct{}{},
	}
	s.seed.Store(seed)
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Cache exposes the session cache — the `protected` storage.
func (s *EchoServer) Cache() *issl.SessionCache { return s.cache }

// Accepted returns (total successful binds, abbreviated resumptions).
func (s *EchoServer) Accepted() (total, resumed uint64) {
	return s.accepted.Load(), s.resumed.Load()
}

func (s *EchoServer) acceptLoop() {
	defer s.wg.Done()
	for !s.stopped.Load() {
		tcb, err := s.lst.Accept(500 * time.Millisecond)
		if err != nil {
			continue // timeout or listener closed; the loop guard decides
		}
		s.mu.Lock()
		s.live[tcb] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func(tcb *tcpip.TCB) {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.live, tcb)
				s.mu.Unlock()
				tcb.Close()
			}()
			s.serve(tcb)
		}(tcb)
	}
}

func (s *EchoServer) serve(tcb *tcpip.TCB) {
	cfg := issl.Config{
		Profile:          issl.ProfileEmbedded,
		PSK:              s.psk,
		Rand:             prng.NewXorshift(s.seed.Add(1)),
		Cache:            s.cache,
		HandshakeTimeout: 10 * time.Second,
	}
	conn, err := issl.BindServer(tcb, cfg)
	if err != nil {
		return
	}
	s.accepted.Add(1)
	if conn.Resumed() {
		s.resumed.Add(1)
	}
	buf := make([]byte, 4096)
	for {
		conn.SetReadDeadline(time.Now().Add(connIdleLimit))
		n, err := conn.Read(buf)
		if n > 0 {
			if _, werr := conn.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// Reset models the watchdog rebooting the board: every live connection
// is aborted (its state lived in ordinary RAM) while the session cache
// — the paper's `protected` storage, preserved across watchdog resets
// — is left intact. The listener keeps running, as the rebooted
// service would come straight back up.
func (s *EchoServer) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for tcb := range s.live {
		tcb.Abort()
	}
}

// Close stops the service and waits for its goroutines.
func (s *EchoServer) Close() {
	if !s.stopped.CompareAndSwap(false, true) {
		return
	}
	s.lst.Close()
	s.Reset()
	s.wg.Wait()
}

// ErrSoakStalled reports a soak client that could not make progress
// within its recovery budget.
var ErrSoakStalled = errors.New("chaos: transfer stalled beyond recovery budget")
