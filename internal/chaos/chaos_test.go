package chaos

import (
	"bytes"
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/crypto/prng"
	"repro/internal/issl"
	"repro/internal/netsim"
	"repro/internal/rasm"
	"repro/internal/rmc2000"
	"repro/internal/tcpip"
)

const (
	echoPort = 4443
	soakPSK  = "chaos-soak-preshared-secret"
)

// world builds a hub with a client stack (.1) and a server stack (.2).
func world(t *testing.T) (*netsim.Hub, *tcpip.Stack, *tcpip.Stack) {
	t.Helper()
	hub := netsim.NewHub()
	t.Cleanup(hub.Close)
	mk := func(last byte) *tcpip.Stack {
		s, err := tcpip.NewStack(hub, tcpip.IP4(10, 0, 0, last))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		return s
	}
	return hub, mk(1), mk(2)
}

// dialer builds an issl.Dialer that connects cli to the echo server.
func dialer(cli *tcpip.Stack, server tcpip.Addr, seed uint64) *issl.Dialer {
	return &issl.Dialer{
		Dial: func() (io.ReadWriteCloser, error) {
			return cli.Connect(server, echoPort, 2*time.Second)
		},
		Config: issl.Config{
			Profile:          issl.ProfileEmbedded,
			PSK:              []byte(soakPSK),
			Rand:             prng.NewXorshift(seed),
			HandshakeTimeout: 5 * time.Second,
		},
		Policy: issl.RetryPolicy{
			MaxAttempts: 8,
			BaseDelay:   100 * time.Millisecond,
			MaxDelay:    time.Second,
		},
	}
}

// echoChunk writes chunk and reads it back in full, bounded by d.
func echoChunk(conn *issl.Conn, chunk []byte, d time.Duration) error {
	if _, err := conn.Write(chunk); err != nil {
		return err
	}
	got := make([]byte, 0, len(chunk))
	buf := make([]byte, len(chunk))
	conn.SetReadDeadline(time.Now().Add(d))
	defer conn.SetReadDeadline(time.Time{})
	for len(got) < len(chunk) {
		n, err := conn.Read(buf)
		got = append(got, buf[:n]...)
		if err != nil {
			return err
		}
	}
	if !bytes.Equal(got, chunk) {
		return fmt.Errorf("chaos: echo mismatch: %d bytes back", len(got))
	}
	return nil
}

// abortTransport kills the TCP under a failed secure connection so the
// next dial starts from a clean slate.
func abortTransport(tr io.ReadWriteCloser) {
	if tcb, ok := tr.(*tcpip.TCB); ok {
		tcb.Abort()
		return
	}
	tr.Close()
}

// TestChaosSoak is the acceptance soak: 64 KB echoed byte-exact
// through a hub running burst loss, corruption, duplication and
// reordering at once, with the server yanked off the wire for two
// seconds mid-transfer. The client recovers every failure through
// DialWithRetry and must land at least one abbreviated resumption.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	hub, cli, srvStack := world(t)
	srv, err := NewEchoServer(srvStack, echoPort, []byte(soakPSK), 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if err := hub.SetFaultPlan(SoakPlan(0xC4A05)); err != nil {
		t.Fatal(err)
	}

	const (
		total     = 64 * 1024
		chunkSize = 1024
	)
	payload := make([]byte, total)
	for i := range payload {
		payload[i] = byte(i*131 + i>>9)
	}

	d := dialer(cli, srvStack.Addr(), 77)
	conn, tr, err := d.DialWithRetry()
	if err != nil {
		t.Fatalf("initial dial: %v", err)
	}

	budget := time.Now().Add(90 * time.Second)
	reconnects := 0
	echoed := make([]byte, 0, total)
	partitioned := false
	for off := 0; off < total; {
		if time.Now().After(budget) {
			t.Fatalf("%v: %d/%d bytes after %d reconnects", ErrSoakStalled, off, total, reconnects)
		}
		if !partitioned && off >= total/2 {
			// Unplug the server mid-transfer; the wire heals itself
			// after two seconds (the lab tech plugs it back in).
			if err := hub.PartitionPort(srvStack.MAC(), 2*time.Second); err != nil {
				t.Fatal(err)
			}
			partitioned = true
		}
		chunk := payload[off : off+chunkSize]
		if err := echoChunk(conn, chunk, 1500*time.Millisecond); err != nil {
			abortTransport(tr)
			reconnects++
			conn, tr, err = d.DialWithRetry()
			if err != nil {
				t.Fatalf("reconnect %d at offset %d: %v", reconnects, off, err)
			}
			continue // re-send the unacknowledged chunk
		}
		echoed = append(echoed, chunk...)
		off += chunkSize
	}
	conn.Close()
	tr.Close()

	if !bytes.Equal(echoed, payload) {
		t.Fatalf("soak not byte-exact: echoed %d bytes, want %d", len(echoed), total)
	}
	st := d.Stats()
	if st.Resumptions == 0 {
		t.Errorf("no abbreviated resumption across %d reconnects: %+v", reconnects, st)
	}
	fs := hub.FaultStats()
	if fs.LostGood+fs.LostBurst == 0 || fs.Corrupted == 0 || fs.Duplicated == 0 {
		t.Errorf("fault plan too quiet for a soak: %+v", fs)
	}
	if fs.PartitionDrops == 0 {
		t.Error("partition never dropped a frame; outage did not happen")
	}
	t.Logf("soak: %d reconnects, dial stats %+v, faults %+v", reconnects, st, fs)
}

// TestWatchdogRebootSessionResumption is the board-reboot chaos case:
// an rmc2000 watchdog fires mid-session (the program arms it and then
// starves it, as a wedged service would), which kills every live
// connection while the session cache — `protected` storage — survives.
// The client's reconnect must come back as an abbreviated resumption.
func TestWatchdogRebootSessionResumption(t *testing.T) {
	_, cli, srvStack := world(t)
	srv, err := NewEchoServer(srvStack, echoPort, []byte(soakPSK), 2000)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	d := dialer(cli, srvStack.Addr(), 88)
	conn, tr, err := d.DialWithRetry()
	if err != nil {
		t.Fatal(err)
	}
	if conn.Resumed() {
		t.Fatal("first connection resumed out of thin air")
	}
	if err := echoChunk(conn, []byte("before the reset"), 5*time.Second); err != nil {
		t.Fatalf("pre-reset echo: %v", err)
	}

	// The watchdog fires on the simulated board: arm at 250ms, spin.
	board, err := rmc2000.New(nil, netsim.MAC{})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := rasm.Assemble(`
WDTCR equ 0x08
        org 0
        ld a, 0x51         ; arm, 250ms
        ioi ld (WDTCR), a
spin:   jr spin            ; wedged service: never hits the watchdog
`)
	if err != nil {
		t.Fatal(err)
	}
	board.LoadProgram(prog.Origin, prog.Code)
	for board.WatchdogResets() < 1 && board.CPU.Cycles < 20_000_000 {
		if err := board.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if board.WatchdogResets() < 1 {
		t.Fatal("watchdog never fired")
	}
	// The reboot's service-level consequence: live connections die,
	// the protected session cache does not.
	srv.Reset()

	if err := echoChunk(conn, []byte("into the void"), 2*time.Second); err == nil {
		t.Fatal("echo succeeded across a watchdog reset")
	}
	abortTransport(tr)

	conn2, tr2, err := d.DialWithRetry()
	if err != nil {
		t.Fatalf("reconnect after reset: %v", err)
	}
	defer tr2.Close()
	defer conn2.Close()
	if !conn2.Resumed() {
		t.Error("reconnect after watchdog reset was a full handshake, not a resumption")
	}
	if err := echoChunk(conn2, []byte("after the reset"), 5*time.Second); err != nil {
		t.Fatalf("post-reset echo: %v", err)
	}
	if st := d.Stats(); st.Resumptions < 1 {
		t.Errorf("dialer stats %+v: want >= 1 resumption", st)
	}
	if total, resumed := srv.Accepted(); total < 2 || resumed < 1 {
		t.Errorf("server binds: total %d resumed %d", total, resumed)
	}
}
