package chaos

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/crypto/prng"
	"repro/internal/issl"
	"repro/internal/netsim"
	"repro/internal/tcpip"
	"repro/internal/telemetry"
)

// TestUnifiedTimeline is the acceptance check for the telemetry layer:
// one Registry and one Trace wired through every layer of the vertical
// — hub fault pipeline, both TCP stacks, and both issl endpoints — so
// a secure handshake over a lossy wire leaves a single JSONL timeline
// carrying netsim fault events, TCP retransmits, and issl handshake
// phases on one sim-time axis.
func TestUnifiedTimeline(t *testing.T) {
	reg := telemetry.NewRegistry()
	trace := telemetry.NewTrace(8192)

	hub := netsim.NewHub()
	defer hub.Close()
	hub.SetTelemetry(reg, trace)

	mk := func(last byte) *tcpip.Stack {
		s, err := tcpip.NewStackWithTelemetry(hub, tcpip.IP4(10, 0, 0, last), reg, trace)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		return s
	}
	cli, srvStack := mk(1), mk(2)

	// A lossy-enough wire that retransmission is a certainty over the
	// run, but recoverable within the dial policy.
	if err := hub.SetFaultPlan(&netsim.FaultPlan{
		Seed:        0x7E1E,
		LossGoodPct: 12,
	}); err != nil {
		t.Fatal(err)
	}

	// Echo server: accept one connection, bind issl over it with the
	// shared telemetry, echo everything.
	psk := []byte(soakPSK)
	lst, err := srvStack.Listen(echoPort, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer lst.Close()
	go func() {
		for {
			tcb, err := lst.Accept(5 * time.Second)
			if err != nil {
				return
			}
			go func(tcb *tcpip.TCB) {
				conn, err := issl.BindServer(tcb, issl.Config{
					Profile: issl.ProfileEmbedded,
					PSK:     psk,
					Rand:    prng.NewXorshift(2001),
					Metrics: reg,
					Trace:   trace,
				})
				if err != nil {
					tcb.Abort()
					return
				}
				io.Copy(conn, conn)
				conn.Close()
				tcb.Close()
			}(tcb)
		}
	}()

	d := &issl.Dialer{
		Dial: func() (io.ReadWriteCloser, error) {
			return cli.Connect(srvStack.Addr(), echoPort, 2*time.Second)
		},
		Config: issl.Config{
			Profile:          issl.ProfileEmbedded,
			PSK:              psk,
			Rand:             prng.NewXorshift(1001),
			HandshakeTimeout: 5 * time.Second,
			Metrics:          reg,
			Trace:            trace,
		},
		Policy: issl.RetryPolicy{
			MaxAttempts: 8,
			BaseDelay:   100 * time.Millisecond,
			MaxDelay:    time.Second,
		},
	}
	conn, _, err := d.DialWithRetry()
	if err != nil {
		t.Fatalf("dial: %v", err)
	}

	// Echo chunks until the timeline holds all three layers (the loss
	// plan makes a retransmit a near-certainty in the first few KB).
	chunk := make([]byte, 512)
	for i := range chunk {
		chunk[i] = byte(i)
	}
	deadline := time.Now().Add(60 * time.Second)
	for !hasLayers(trace) {
		if time.Now().After(deadline) {
			break
		}
		if err := echoChunk(conn, chunk, 10*time.Second); err != nil {
			t.Fatalf("echo: %v", err)
		}
	}
	conn.Close()

	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}

	// Every line is a standalone JSON object with a numeric t, and the
	// stamps are nondecreasing — one time axis for the whole vertical.
	var lastT float64
	seen := map[string]bool{}
	for i, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i+1, err, line)
		}
		tv, ok := obj["t"].(float64)
		if !ok {
			t.Fatalf("line %d: missing numeric t: %s", i+1, line)
		}
		if tv < lastT {
			t.Fatalf("line %d: time went backwards (%v < %v)", i+1, tv, lastT)
		}
		lastT = tv
		layer, _ := obj["layer"].(string)
		name, _ := obj["name"].(string)
		switch {
		case layer == "netsim" && strings.HasPrefix(name, "fault."):
			seen["fault"] = true
		case layer == "tcp" && name == "retransmit":
			seen["retransmit"] = true
		case layer == "issl" && name == "hs.phase":
			seen["hs.phase"] = true
		}
	}
	for _, want := range []string{"fault", "retransmit", "hs.phase"} {
		if !seen[want] {
			t.Errorf("timeline missing %s events", want)
		}
	}

	// The shared registry saw every layer too.
	if reg.Counter("issl.handshakes_full").Value() == 0 {
		t.Error("issl.handshakes_full = 0")
	}
	if reg.Counter("tcp.segs_sent").Value() == 0 {
		t.Error("tcp.segs_sent = 0")
	}
	if sent, _ := hub.Stats(); sent == 0 {
		t.Error("netsim frames_sent = 0")
	}
}

// hasLayers reports whether the trace already holds a netsim fault
// event, a TCP retransmit, and an issl handshake phase.
func hasLayers(tr *telemetry.Trace) bool {
	var fault, rexmit, phase bool
	for _, ev := range tr.Events() {
		switch {
		case ev.Layer == "netsim" && strings.HasPrefix(ev.Name, "fault."):
			fault = true
		case ev.Layer == "tcp" && ev.Name == "retransmit":
			rexmit = true
		case ev.Layer == "issl" && ev.Name == "hs.phase":
			phase = true
		}
	}
	return fault && rexmit && phase
}
