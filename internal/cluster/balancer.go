package cluster

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/issl"
	"repro/internal/tcpip"
	"repro/internal/telemetry"
)

// HealthConfig shapes the balancer's active probing. Zero values get
// the noted defaults.
type HealthConfig struct {
	// ProbeInterval is the per-node probe period (default 100ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one TCP probe (default ProbeInterval).
	ProbeTimeout time.Duration
	// FailThreshold is consecutive probe failures before a node is
	// marked down and drained out of the rotation (default 2).
	FailThreshold int
	// RiseThreshold is consecutive probe successes before a down node
	// is eligible again (default 2).
	RiseThreshold int
	// ReinstateBackoff is the minimum time a node stays out after
	// going down, however quickly its probes recover — a flapping node
	// must not churn the rotation (default 5*ProbeInterval).
	ReinstateBackoff time.Duration
}

func (h HealthConfig) withDefaults() HealthConfig {
	if h.ProbeInterval <= 0 {
		h.ProbeInterval = 100 * time.Millisecond
	}
	if h.ProbeTimeout <= 0 {
		h.ProbeTimeout = h.ProbeInterval
	}
	if h.FailThreshold <= 0 {
		h.FailThreshold = 2
	}
	if h.RiseThreshold <= 0 {
		h.RiseThreshold = 2
	}
	if h.ReinstateBackoff <= 0 {
		h.ReinstateBackoff = 5 * h.ProbeInterval
	}
	return h
}

// BalancerConfig parameterizes the L4 node.
type BalancerConfig struct {
	// ListenPort is the public port clients dial (default 4443).
	ListenPort uint16
	// NodePort is the redirector port on every fleet node (default
	// ListenPort).
	NodePort uint16
	// HealthPort is the probe endpoint on every fleet node (default
	// NodePort+10).
	HealthPort uint16
	// Policy orders candidates per connection (default consistent hash).
	Policy Policy
	// ForwardTimeout bounds one backend connect before failing over to
	// the next candidate (default 1s).
	ForwardTimeout time.Duration
	// Health shapes the active probing.
	Health HealthConfig
	// Metrics receives the balancer counters (default private).
	Metrics *telemetry.Registry
	// Trace receives "cluster" layer events. Optional.
	Trace *telemetry.Trace
	// Log receives balancer events. Optional.
	Log issl.Logger
}

func (c BalancerConfig) withDefaults() BalancerConfig {
	if c.ListenPort == 0 {
		c.ListenPort = 4443
	}
	if c.NodePort == 0 {
		c.NodePort = c.ListenPort
	}
	if c.HealthPort == 0 {
		c.HealthPort = c.NodePort + 10
	}
	if c.Policy == nil {
		c.Policy = NewConsistentHash(0)
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = time.Second
	}
	c.Health = c.Health.withDefaults()
	return c
}

func (c *BalancerConfig) logf(format string, args ...any) {
	if c.Log != nil {
		c.Log.Printf(format, args...)
	}
}

// BalancerStats are the balancer's live counters (nil-safe handles
// into the registry; read with Value()).
type BalancerStats struct {
	Accepted  *telemetry.Counter // client connections forwarded to a node
	Refused   *telemetry.Counter // client connections no node would take
	Failovers *telemetry.Counter // candidates skipped after a connect failure
	NodeDowns *telemetry.Counter // up -> down transitions
	NodeUps   *telemetry.Counter // reinstatements after backoff
	NodesUp   *telemetry.Gauge   // current up count
	BytesIn   *telemetry.Counter // client -> node bytes
	BytesOut  *telemetry.Counter // node -> client bytes
}

// nodeEntry is the balancer's book on one fleet node.
type nodeEntry struct {
	index     int
	addr      tcpip.Addr
	up        atomic.Bool
	inflight  atomic.Int64
	forwarded *telemetry.Counter
}

// Balancer is the L4 node: it accepts on ListenPort and splices each
// connection byte-for-byte to a fleet node chosen by the policy over
// the currently-up set. It terminates nothing — the issl handshake
// passes through to the node, whose ticket store makes any choice
// valid for a resuming client.
type Balancer struct {
	cfg   BalancerConfig
	stack *tcpip.Stack
	lst   *tcpip.Listener
	nodes []*nodeEntry
	stats BalancerStats
	stop  chan struct{}
	once  sync.Once
	wg    sync.WaitGroup
}

// NewBalancer starts the balancer on its stack, probing and forwarding
// to the given node addresses (index in this slice is the node index
// everywhere: policy order, counters, KillNode).
func NewBalancer(stack *tcpip.Stack, nodeAddrs []tcpip.Addr, cfg BalancerConfig) (*Balancer, error) {
	if len(nodeAddrs) == 0 {
		return nil, fmt.Errorf("cluster: balancer needs at least one node")
	}
	cfg = cfg.withDefaults()
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
		cfg.Metrics = reg
	}
	lst, err := stack.Listen(cfg.ListenPort, 32)
	if err != nil {
		return nil, err
	}
	b := &Balancer{
		cfg:   cfg,
		stack: stack,
		lst:   lst,
		stop:  make(chan struct{}),
		stats: BalancerStats{
			Accepted:  reg.Counter("cluster.accepted"),
			Refused:   reg.Counter("cluster.refused"),
			Failovers: reg.Counter("cluster.failovers"),
			NodeDowns: reg.Counter("cluster.node_downs"),
			NodeUps:   reg.Counter("cluster.node_ups"),
			NodesUp:   reg.Gauge("cluster.nodes_up"),
			BytesIn:   reg.Counter("cluster.bytes_in"),
			BytesOut:  reg.Counter("cluster.bytes_out"),
		},
	}
	for i, addr := range nodeAddrs {
		n := &nodeEntry{index: i, addr: addr,
			forwarded: reg.Counter(fmt.Sprintf("cluster.forwarded_node%d", i))}
		n.up.Store(true) // presumed healthy until probes say otherwise
		b.nodes = append(b.nodes, n)
	}
	b.stats.NodesUp.Set(int64(len(b.nodes)))
	b.wg.Add(1 + len(b.nodes))
	go b.acceptLoop()
	for _, n := range b.nodes {
		go b.probeLoop(n)
	}
	return b, nil
}

// Stats exposes the live counters.
func (b *Balancer) Stats() *BalancerStats { return &b.stats }

// NodeUp reports the health checker's current verdict for node i.
func (b *Balancer) NodeUp(i int) bool { return b.nodes[i].up.Load() }

// UpCount returns how many nodes are currently in rotation.
func (b *Balancer) UpCount() int {
	n := 0
	for _, e := range b.nodes {
		if e.up.Load() {
			n++
		}
	}
	return n
}

// WaitNodeState polls until node i's health verdict equals up, or the
// timeout passes; it reports whether the state was reached. Chaos
// harnesses use it to bound "time to detection" assertions.
func (b *Balancer) WaitNodeState(i int, up bool, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for b.nodes[i].up.Load() != up {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
	return true
}

// Close stops accepting and probing and waits for the forwarders.
func (b *Balancer) Close() {
	b.once.Do(func() {
		close(b.stop)
		b.lst.Close()
	})
	b.wg.Wait()
}

func (b *Balancer) acceptLoop() {
	defer b.wg.Done()
	for {
		conn, err := b.lst.Accept(200 * time.Millisecond)
		if err != nil {
			select {
			case <-b.stop:
				return
			default:
				continue
			}
		}
		b.wg.Add(1)
		go func(tcb *tcpip.TCB) {
			defer b.wg.Done()
			b.forward(tcb)
		}(conn)
	}
}

// clientKey identifies the client for sticky policies: source address
// and port, the only L4 identity a spreader has.
func clientKey(tcb *tcpip.TCB) uint64 {
	addr, port := tcb.RemoteAddr()
	return uint64(addr[0])<<40 | uint64(addr[1])<<32 |
		uint64(addr[2])<<24 | uint64(addr[3])<<16 | uint64(port)
}

func (b *Balancer) forward(client *tcpip.TCB) {
	states := make([]NodeState, len(b.nodes))
	for i, n := range b.nodes {
		states[i] = NodeState{Up: n.up.Load(), Inflight: n.inflight.Load()}
	}
	key := clientKey(client)
	tried := 0
	for _, idx := range b.cfg.Policy.Order(key, states) {
		n := b.nodes[idx]
		if !n.up.Load() {
			continue
		}
		backend, err := b.stack.Connect(n.addr, b.cfg.NodePort, b.cfg.ForwardTimeout)
		if err != nil {
			// The health checker will catch a dead node on its own clock;
			// this connection cannot wait for it.
			tried++
			b.stats.Failovers.Inc()
			b.cfg.Trace.Emit("cluster", "forward.failover", "node", idx, "err", err.Error())
			continue
		}
		if tried > 0 {
			b.cfg.logf("cluster: client %016x failed over to node %d", key, idx)
		}
		n.inflight.Add(1)
		n.forwarded.Inc()
		b.stats.Accepted.Inc()
		b.cfg.Trace.Emit("cluster", "forward.accept", "node", idx)
		splice(client, backend, b.stats.BytesIn, b.stats.BytesOut)
		n.inflight.Add(-1)
		return
	}
	b.stats.Refused.Inc()
	b.cfg.Trace.Emit("cluster", "forward.refused", "tried", tried)
	client.Close()
}

// splice pumps client<->backend until both directions finish,
// propagating one-sided EOF as a half-close so request/response flows
// survive an early client FIN (same contract as the redirector pump).
func splice(client, backend *tcpip.TCB, in, out *telemetry.Counter) {
	var wg sync.WaitGroup
	cp := func(dst, src *tcpip.TCB, ctr *telemetry.Counter) {
		defer wg.Done()
		buf := make([]byte, 4096)
		for {
			n, err := src.Read(buf)
			if n > 0 {
				ctr.Add(uint64(n))
				if _, werr := dst.Write(buf[:n]); werr != nil {
					dst.Close()
					return
				}
			}
			if err == io.EOF {
				dst.CloseWrite()
				return
			}
			if err != nil {
				dst.Close()
				return
			}
		}
	}
	wg.Add(2)
	go cp(backend, client, in)
	go cp(client, backend, out)
	wg.Wait()
	client.Close()
	backend.Close()
}

// probeLoop is one node's health checker: a TCP connect to the node's
// health port per interval. FailThreshold consecutive failures drain
// the node from rotation; reinstatement needs RiseThreshold successes
// AND ReinstateBackoff elapsed since the node went down.
func (b *Balancer) probeLoop(n *nodeEntry) {
	defer b.wg.Done()
	h := b.cfg.Health
	fails, rises := 0, 0
	var downSince time.Time
	for {
		select {
		case <-b.stop:
			return
		case <-time.After(h.ProbeInterval):
		}
		tcb, err := b.stack.Connect(n.addr, b.cfg.HealthPort, h.ProbeTimeout)
		if err == nil {
			tcb.Close()
			fails = 0
			if !n.up.Load() {
				rises++
				if rises >= h.RiseThreshold && time.Since(downSince) >= h.ReinstateBackoff {
					n.up.Store(true)
					b.stats.NodeUps.Inc()
					b.stats.NodesUp.Add(1)
					b.cfg.Trace.Emit("cluster", "node.up", "node", n.index)
					b.cfg.logf("cluster: node %d reinstated after %v", n.index, time.Since(downSince))
				}
			}
			continue
		}
		rises = 0
		fails++
		if n.up.Load() && fails >= h.FailThreshold {
			n.up.Store(false)
			downSince = time.Now()
			b.stats.NodeDowns.Inc()
			b.stats.NodesUp.Add(-1)
			b.cfg.Trace.Emit("cluster", "node.down", "node", n.index, "fails", fails)
			b.cfg.logf("cluster: node %d marked down after %d failed probes", n.index, fails)
		}
	}
}
