package cluster

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/crypto/rsa"
	"repro/internal/issl"
	"repro/internal/netsim"
	"repro/internal/redirector"
	"repro/internal/tcpip"
	"repro/internal/telemetry"
)

// Config parameterizes a fleet. Zero values get the noted defaults.
type Config struct {
	// Nodes is the instance count (default 3, the smallest fleet where
	// a kill leaves a majority).
	Nodes int
	// ListenPort is the balancer's public port (default 4443); NodePort
	// and HealthPort are each instance's service and probe ports
	// (defaults 4443 and 4453 — every node has its own stack, so they
	// may coincide across nodes).
	ListenPort uint16
	NodePort   uint16
	HealthPort uint16
	// BalancerIP and NodeIPBase lay the fleet out on the fabric: the
	// balancer at BalancerIP (default 10.0.0.2, the address the
	// single-redirector world used, so clients need not care which they
	// are talking to) and node i at 10.0.0.(NodeIPBase+i) (default
	// base 20).
	BalancerIP tcpip.Addr
	NodeIPBase byte
	// Target and TargetPort locate the plaintext backend every
	// instance forwards to.
	Target     tcpip.Addr
	TargetPort uint16
	// Secure enables the issl layer on every instance; ServerKey is
	// the fleet-shared RSA key (required when Secure).
	Secure    bool
	ServerKey *rsa.PrivateKey
	// TicketMaterial is the cluster-shared ticket key material: every
	// instance derives the same sealing keys from it, which is what
	// lets any instance resume any client. Required when Secure.
	TicketMaterial []byte
	// TicketLifetime bounds minted tickets (0 = issl default).
	TicketLifetime time.Duration
	// SessionCacheSize is each instance's private cache (default 64).
	// The cache is warm-path only; cross-instance resumption rides the
	// tickets.
	SessionCacheSize int
	// MaxInflight is each instance's admission bound (0 = unbounded).
	MaxInflight int
	// SignWorkers sizes each instance's RSA sign/decrypt worker pool
	// (see redirector.Config.SignWorkers). 0 runs key ops inline.
	SignWorkers int
	// DrainTimeout is each instance's graceful-close budget.
	DrainTimeout time.Duration
	// Policy, ForwardTimeout and Health configure the balancer.
	Policy         Policy
	ForwardTimeout time.Duration
	Health         HealthConfig
	// RandSeed diversifies per-instance session crypto.
	RandSeed uint64
	// Metrics receives the balancer counters; each instance gets its
	// own private registry (see Cluster.NodeRegistry) so reports can
	// break SLOs down per instance.
	Metrics *telemetry.Registry
	// Trace and Log are shared across the fleet. Optional.
	Trace *telemetry.Trace
	Log   issl.Logger
}

func (c Config) withDefaults() (Config, error) {
	if c.Nodes <= 0 {
		c.Nodes = 3
	}
	if c.ListenPort == 0 {
		c.ListenPort = 4443
	}
	if c.NodePort == 0 {
		c.NodePort = 4443
	}
	if c.HealthPort == 0 {
		c.HealthPort = c.NodePort + 10
	}
	if c.BalancerIP == (tcpip.Addr{}) {
		c.BalancerIP = tcpip.IP4(10, 0, 0, 2)
	}
	if c.NodeIPBase == 0 {
		c.NodeIPBase = 20
	}
	if c.Secure && c.ServerKey == nil {
		return c, fmt.Errorf("cluster: secure fleet needs ServerKey")
	}
	if c.Secure && len(c.TicketMaterial) == 0 {
		return c, fmt.Errorf("cluster: secure fleet needs TicketMaterial (shared ticket key)")
	}
	if c.SessionCacheSize <= 0 {
		c.SessionCacheSize = 64
	}
	return c, nil
}

// Node is one redirector instance: its own stack (own IP), its own
// redirector, its own health endpoint, its own telemetry registry.
// Only the ticket key material is shared with its siblings.
type Node struct {
	Index    int
	Addr     tcpip.Addr
	Registry *telemetry.Registry

	mu      sync.Mutex
	stack   *tcpip.Stack
	srv     *redirector.UnixServer
	health  *tcpip.Listener
	stopped bool
	hwg     sync.WaitGroup
}

// Cluster is the running fleet plus its balancer.
type Cluster struct {
	cfg      Config
	hub      *netsim.Hub
	ownHub   bool
	balStack *tcpip.Stack
	balancer *Balancer
	nodes    []*Node
}

// New brings up the fleet on hub (nil creates a private hub the
// Cluster owns and closes). On return every instance is serving and
// the balancer is probing.
func New(hub *netsim.Hub, cfg Config) (*Cluster, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, hub: hub}
	if c.hub == nil {
		c.hub = netsim.NewHub()
		c.ownHub = true
	}
	fail := func(err error) (*Cluster, error) {
		c.Close()
		return nil, err
	}
	addrs := make([]tcpip.Addr, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		node := &Node{
			Index:    i,
			Addr:     tcpip.IP4(10, 0, 0, cfg.NodeIPBase+byte(i)),
			Registry: telemetry.NewRegistry(),
		}
		c.nodes = append(c.nodes, node)
		addrs[i] = node.Addr
		if err := c.startNode(node); err != nil {
			return fail(err)
		}
	}
	c.balStack, err = tcpip.NewStack(c.hub, cfg.BalancerIP)
	if err != nil {
		return fail(err)
	}
	c.balancer, err = NewBalancer(c.balStack, addrs, BalancerConfig{
		ListenPort:     cfg.ListenPort,
		NodePort:       cfg.NodePort,
		HealthPort:     cfg.HealthPort,
		Policy:         cfg.Policy,
		ForwardTimeout: cfg.ForwardTimeout,
		Health:         cfg.Health,
		Metrics:        cfg.Metrics,
		Trace:          cfg.Trace,
		Log:            cfg.Log,
	})
	if err != nil {
		return fail(err)
	}
	return c, nil
}

// startNode builds the instance's stack, redirector and health
// endpoint. Called under no lock at construction and under node.mu's
// conventions at restart (the node is stopped then).
func (c *Cluster) startNode(node *Node) error {
	stack, err := tcpip.NewStack(c.hub, node.Addr)
	if err != nil {
		return err
	}
	rcfg := redirector.Config{
		ListenPort:   c.cfg.NodePort,
		Target:       c.cfg.Target,
		TargetPort:   c.cfg.TargetPort,
		Secure:       c.cfg.Secure,
		ServerKey:    c.cfg.ServerKey,
		MaxInflight:  c.cfg.MaxInflight,
		SignWorkers:  c.cfg.SignWorkers,
		DrainTimeout: c.cfg.DrainTimeout,
		RandSeed:     c.cfg.RandSeed ^ (uint64(node.Index+1) * 0x9E3779B97F4A7C15),
		Metrics:      node.Registry,
		Trace:        c.cfg.Trace,
		Log:          c.cfg.Log,
	}
	if c.cfg.Secure {
		// Fresh cache (a restarted node lost its RAM); same ticket keys
		// (the material is the fleet's `protected` storage).
		rcfg.SessionCache = issl.NewSessionCache(c.cfg.SessionCacheSize)
		tk, err := issl.NewTicketKeyStore(c.cfg.TicketMaterial, c.cfg.TicketLifetime)
		if err != nil {
			stack.Close()
			return err
		}
		rcfg.TicketKeys = tk
	}
	srv, err := redirector.NewUnixServer(stack, rcfg)
	if err != nil {
		stack.Close()
		return err
	}
	health, err := stack.Listen(c.cfg.HealthPort, 8)
	if err != nil {
		srv.Close()
		stack.Close()
		return err
	}
	node.mu.Lock()
	node.stack, node.srv, node.health = stack, srv, health
	node.stopped = false
	node.mu.Unlock()
	go srv.Serve()
	node.hwg.Add(1)
	go func() {
		defer node.hwg.Done()
		// The health endpoint is aliveness itself: accept, close. It
		// dies with the stack, which is exactly the signal the probes
		// want.
		for {
			tcb, err := health.Accept(500 * time.Millisecond)
			if err != nil {
				node.mu.Lock()
				stopped := node.stopped
				node.mu.Unlock()
				if stopped {
					return
				}
				continue
			}
			tcb.Close()
		}
	}()
	return nil
}

// Balancer exposes the L4 node (stats, health view).
func (c *Cluster) Balancer() *Balancer { return c.balancer }

// Addr returns the public address clients dial.
func (c *Cluster) Addr() (tcpip.Addr, uint16) { return c.cfg.BalancerIP, c.cfg.ListenPort }

// Nodes returns the fleet size.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// NodeRegistry returns instance i's private telemetry registry — the
// per-instance SLO breakdown reads these.
func (c *Cluster) NodeRegistry(i int) *telemetry.Registry { return c.nodes[i].Registry }

// NodeAddr returns instance i's fabric address.
func (c *Cluster) NodeAddr(i int) tcpip.Addr { return c.nodes[i].Addr }

// KillNode is the chaos primitive: instance i dies abruptly — live
// connections reset, session cache gone, stack off the fabric — as if
// the box lost power. Idempotent. The balancer's probes notice on
// their own clock; nothing tells it.
func (c *Cluster) KillNode(i int) {
	node := c.nodes[i]
	node.mu.Lock()
	if node.stopped {
		node.mu.Unlock()
		return
	}
	node.stopped = true
	stack, srv, health := node.stack, node.srv, node.health
	node.mu.Unlock()
	health.Close()
	srv.Shutdown(0) // abort in-flight: a power cut drains nothing
	stack.Close()
	node.hwg.Wait()
}

// DrainNode takes instance i out gracefully: health goes dark first
// (so the balancer stops sending), inflight connections get drain to
// finish, then the instance leaves the fabric.
func (c *Cluster) DrainNode(i int, drain time.Duration) {
	node := c.nodes[i]
	node.mu.Lock()
	if node.stopped {
		node.mu.Unlock()
		return
	}
	node.stopped = true
	stack, srv, health := node.stack, node.srv, node.health
	node.mu.Unlock()
	health.Close()
	srv.Shutdown(drain)
	stack.Close()
	node.hwg.Wait()
}

// RestartNode brings a killed or drained instance back: a fresh stack
// at the same address, empty session cache, ticket keys rebuilt from
// the shared material. The balancer reinstates it only after its
// probes pass and the backoff elapses.
func (c *Cluster) RestartNode(i int) error {
	node := c.nodes[i]
	node.mu.Lock()
	if !node.stopped {
		node.mu.Unlock()
		return fmt.Errorf("cluster: node %d is still running", i)
	}
	node.mu.Unlock()
	return c.startNode(node)
}

// Close tears the fleet down: balancer first (no new forwards), then
// each instance with its configured drain.
func (c *Cluster) Close() {
	if c.balancer != nil {
		c.balancer.Close()
	}
	if c.balStack != nil {
		c.balStack.Close()
	}
	for i := range c.nodes {
		c.DrainNode(i, c.cfg.DrainTimeout)
	}
	if c.ownHub {
		c.hub.Close()
	}
}
