package cluster

import (
	"bytes"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/crypto/prng"
	"repro/internal/crypto/rsa"
	"repro/internal/issl"
	"repro/internal/netsim"
	"repro/internal/tcpip"
)

var (
	keyOnce sync.Once
	testKey *rsa.PrivateKey
)

func rsaKey(t testing.TB) *rsa.PrivateKey {
	keyOnce.Do(func() {
		k, err := rsa.GenerateKey(prng.NewXorshift(0xfee7), 512)
		if err != nil {
			t.Fatalf("keygen: %v", err)
		}
		testKey = k
	})
	return testKey
}

const backendPort = 9000

// testWorld builds the fabric: a client stack, a backend echo stack,
// and a secure fleet behind the balancer with chaos-friendly health
// timing (fast probes, short backoff).
func testWorld(t *testing.T, nodes int, pol Policy) (*tcpip.Stack, *Cluster) {
	t.Helper()
	hub := netsim.NewHub()
	t.Cleanup(hub.Close)
	cli, err := tcpip.NewStack(hub, tcpip.IP4(10, 0, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cli.Close)
	back, err := tcpip.NewStack(hub, tcpip.IP4(10, 0, 0, 3))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(back.Close)
	startEchoBackend(t, back)

	cl, err := New(hub, Config{
		Nodes:          nodes,
		Target:         back.Addr(),
		TargetPort:     backendPort,
		Secure:         true,
		ServerKey:      rsaKey(t),
		TicketMaterial: []byte("fleet ticket material"),
		Policy:         pol,
		ForwardTimeout: 500 * time.Millisecond,
		Health: HealthConfig{
			ProbeInterval:    20 * time.Millisecond,
			ProbeTimeout:     150 * time.Millisecond,
			FailThreshold:    2,
			RiseThreshold:    2,
			ReinstateBackoff: 100 * time.Millisecond,
		},
		RandSeed: 0xC1A5,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cli, cl
}

func startEchoBackend(t *testing.T, s *tcpip.Stack) {
	t.Helper()
	l, err := s.Listen(backendPort, 32)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := l.Accept(30 * time.Second)
			if err != nil {
				return
			}
			go func(c *tcpip.TCB) {
				defer c.Close()
				buf := make([]byte, 4096)
				for {
					n, err := c.ReadDeadline(buf, time.Now().Add(30*time.Second))
					if n > 0 {
						if _, werr := c.Write(buf[:n]); werr != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			}(conn)
		}
	}()
}

// dialer builds an issl Dialer that connects through the balancer.
func dialer(cli *tcpip.Stack, cl *Cluster, seed uint64) *issl.Dialer {
	addr, port := cl.Addr()
	return &issl.Dialer{
		Dial: func() (io.ReadWriteCloser, error) {
			return cli.Connect(addr, port, 10*time.Second)
		},
		Config: issl.Config{
			Profile:          issl.ProfileUnix,
			Rand:             prng.NewXorshift(seed),
			HandshakeTimeout: 20 * time.Second,
		},
		Policy: issl.RetryPolicy{MaxAttempts: 8, BaseDelay: 50 * time.Millisecond, MaxDelay: time.Second},
	}
}

func echo(t *testing.T, conn *issl.Conn, msg []byte) {
	t.Helper()
	if _, err := conn.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	defer conn.SetReadDeadline(time.Time{})
	got := make([]byte, 0, len(msg))
	buf := make([]byte, 4096)
	for len(got) < len(msg) {
		n, err := conn.Read(buf)
		got = append(got, buf[:n]...)
		if err != nil {
			t.Fatalf("echo read after %d/%d bytes: %v", len(got), len(msg), err)
		}
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo mismatch (%d bytes)", len(msg))
	}
}

// ticketsOn sums a counter across every instance registry.
func ticketsOn(cl *Cluster, name string) uint64 {
	var total uint64
	for i := 0; i < cl.Nodes(); i++ {
		total += cl.NodeRegistry(i).Counter(name).Value()
	}
	return total
}

// TestSecureEchoThroughBalancer: the plain path — handshake through
// the L4 splice, byte-exact echo, a ticket earned.
func TestSecureEchoThroughBalancer(t *testing.T) {
	cli, cl := testWorld(t, 3, nil)
	d := dialer(cli, cl, 101)
	conn, tr, err := d.DialWithRetry()
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	defer conn.Close()
	echo(t, conn, bytes.Repeat([]byte{0x5A}, 600))
	if s := d.Session(); s == nil || len(s.Ticket) == 0 {
		t.Fatal("no sealed ticket through the balancer")
	}
	if got := cl.Balancer().Stats().Accepted.Value(); got != 1 {
		t.Errorf("balancer accepted = %d, want 1", got)
	}
	if got := ticketsOn(cl, "issl.tickets_issued"); got != 1 {
		t.Errorf("fleet tickets_issued = %d, want 1", got)
	}
}

// TestKillNodeTicketResumesElsewhere is the tentpole in one scene: a
// client earns its ticket on one instance, that instance is killed,
// and the reconnect lands an abbreviated resumption on a sibling that
// has never seen the client — no shared cache, just the ticket.
func TestKillNodeTicketResumesElsewhere(t *testing.T) {
	cli, cl := testWorld(t, 3, nil)
	d := dialer(cli, cl, 202)
	conn, tr, err := d.DialWithRetry()
	if err != nil {
		t.Fatal(err)
	}
	echo(t, conn, []byte("earn a ticket"))
	conn.Close()
	tr.Close()

	// Find the instance that served us; kill it.
	victim := -1
	for i := 0; i < cl.Nodes(); i++ {
		if cl.NodeRegistry(i).Counter("issl.tickets_issued").Value() == 1 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no instance issued the ticket")
	}
	cl.KillNode(victim)
	if !cl.Balancer().WaitNodeState(victim, false, 5*time.Second) {
		t.Fatal("balancer never marked the killed node down")
	}

	conn2, tr2, err := d.DialWithRetry()
	if err != nil {
		t.Fatalf("reconnect after kill: %v", err)
	}
	defer tr2.Close()
	defer conn2.Close()
	if !conn2.Resumed() {
		t.Fatal("reconnect fell back to a full handshake; ticket did not travel")
	}
	echo(t, conn2, []byte("resumed on a sibling"))
	if got := cl.NodeRegistry(victim).Counter("issl.tickets_resumed").Value(); got != 0 {
		t.Errorf("dead instance resumed %d sessions", got)
	}
	if got := ticketsOn(cl, "issl.tickets_resumed"); got != 1 {
		t.Errorf("fleet tickets_resumed = %d, want 1 (on a surviving instance)", got)
	}
}

// TestKillDuringDetectionWindowFailsOver: connections arriving after
// the kill but before the health checker notices must fail over via
// the forward-connect path, not error out.
func TestKillDuringDetectionWindowFailsOver(t *testing.T) {
	cli, cl := testWorld(t, 3, nil)
	cl.KillNode(1)
	// No WaitNodeState: dial immediately, racing the probes.
	var survived int
	for i := 0; i < 4; i++ {
		d := dialer(cli, cl, 300+uint64(i))
		conn, tr, err := d.DialWithRetry()
		if err != nil {
			t.Fatalf("dial %d during detection window: %v", i, err)
		}
		echo(t, conn, []byte("window"))
		conn.Close()
		tr.Close()
		survived++
	}
	if survived != 4 {
		t.Fatalf("only %d/4 clients survived the window", survived)
	}
}

// TestRestartReinstatesAfterBackoff: a restarted node must rejoin —
// but only after RiseThreshold probes AND the reinstatement backoff,
// and it must then take traffic again.
func TestRestartReinstatesAfterBackoff(t *testing.T) {
	cli, cl := testWorld(t, 2, nil)
	cl.KillNode(0)
	if !cl.Balancer().WaitNodeState(0, false, 5*time.Second) {
		t.Fatal("kill not detected")
	}
	downAt := time.Now()
	if err := cl.RestartNode(0); err != nil {
		t.Fatal(err)
	}
	if !cl.Balancer().WaitNodeState(0, true, 5*time.Second) {
		t.Fatal("restarted node never reinstated")
	}
	// Backoff gate: reinstatement must not predate downAt+backoff (the
	// probes were passing well before it).
	if since := time.Since(downAt); since < 100*time.Millisecond {
		t.Errorf("reinstated after only %v; backoff gate leaked", since)
	}
	if got := cl.Balancer().Stats().NodeUps.Value(); got != 1 {
		t.Errorf("node_ups = %d, want 1", got)
	}
	// The reborn instance serves: with node 1 also up, run enough
	// clients that the hash ring hits node 0 at least once.
	served := func() uint64 {
		return cl.NodeRegistry(0).Counter("redirector.accepted").Value()
	}
	base := served()
	for i := 0; i < 6 && served() == base; i++ {
		d := dialer(cli, cl, 400+uint64(i))
		conn, tr, err := d.DialWithRetry()
		if err != nil {
			t.Fatalf("post-restart dial %d: %v", i, err)
		}
		echo(t, conn, []byte("reborn"))
		conn.Close()
		tr.Close()
	}
	if served() == base {
		t.Error("restarted instance took no traffic")
	}
}

// TestLeastInflightSpreadsLoad: with held-open connections, the least
// policy must put successive connections on distinct instances.
func TestLeastInflightSpreadsLoad(t *testing.T) {
	cli, cl := testWorld(t, 3, LeastInflight{})
	var conns []*issl.Conn
	var trs []io.ReadWriteCloser
	defer func() {
		for i := range conns {
			conns[i].Close()
			trs[i].Close()
		}
	}()
	for i := 0; i < 3; i++ {
		d := dialer(cli, cl, 500+uint64(i))
		conn, tr, err := d.DialWithRetry()
		if err != nil {
			t.Fatal(err)
		}
		echo(t, conn, []byte{byte(i)})
		conns = append(conns, conn)
		trs = append(trs, tr)
	}
	// Three held connections, three instances: one each.
	for i := 0; i < cl.Nodes(); i++ {
		if got := cl.NodeRegistry(i).Counter("redirector.accepted").Value(); got != 1 {
			t.Errorf("instance %d accepted = %d, want 1 under least-inflight", i, got)
		}
	}
}

// TestNoNodesRefusesCleanly: with the whole fleet dead, a client gets
// a refusal (counted), not a hang.
func TestNoNodesRefusesCleanly(t *testing.T) {
	cli, cl := testWorld(t, 2, nil)
	cl.KillNode(0)
	cl.KillNode(1)
	cl.Balancer().WaitNodeState(0, false, 5*time.Second)
	cl.Balancer().WaitNodeState(1, false, 5*time.Second)
	addr, port := cl.Addr()
	tcb, err := cli.Connect(addr, port, 5*time.Second)
	if err != nil {
		// The balancer may also refuse at accept; either is clean.
		return
	}
	buf := make([]byte, 8)
	if _, err := tcb.ReadDeadline(buf, time.Now().Add(5*time.Second)); err == nil {
		t.Error("read on a fleet-down connection returned data")
	}
	if got := cl.Balancer().Stats().Refused.Value(); got == 0 {
		t.Error("refusal not counted")
	}
}
