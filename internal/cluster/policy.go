// Package cluster runs the redirector as a fleet: N instances on one
// netsim fabric behind an L4 balancer node, with active health checks,
// automatic failover and backoff-gated reinstatement. It is the
// deployment shape the sealed-ticket work in internal/issl exists for:
// because any instance can open any client's ticket, the balancer is
// free to move clients between instances — and a killed instance
// strands nobody, which the chaos soak asserts.
//
// The paper's service was one box; a fleet of them behind a dumb L4
// spreader is the obvious scale-out, and the interesting part is
// everything that must NOT live on a single node for it to work: the
// session state (moved into sealed tickets), the health view (probed
// actively, not assumed), and the routing decision (a policy over live
// nodes only).
package cluster

import (
	"sort"
	"sync"
)

// NodeState is the balancer's per-node view handed to a Policy.
type NodeState struct {
	// Up is the health checker's current verdict.
	Up bool
	// Inflight counts connections the balancer is currently pumping
	// through the node.
	Inflight int64
}

// Policy orders the fleet for one arriving connection. The balancer
// forwards to the first candidate that is up and accepts, failing over
// down the list — so a policy expresses preference, not a hard pick.
type Policy interface {
	Name() string
	// Order returns node indexes, most preferred first. key identifies
	// the client (address and port), so a policy can be sticky.
	Order(key uint64, nodes []NodeState) []int
}

// fnv64a is FNV-1a, the balancer's non-cryptographic hash. (The repo's
// own kernels are for the crypto path; routing just needs spread.)
func fnv64a(data []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range data {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

func hashU64(v uint64) uint64 {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return fnv64a(b[:])
}

// --- consistent hash -------------------------------------------------------

// ConsistentHash places VNodes virtual points per node on a hash ring
// and routes a client key to the first point at or after its hash,
// walking onward for failover candidates. The property that matters
// for a fleet: removing one node only remaps the keys that node owned —
// every other client keeps its instance (and its warm session cache),
// which the stability test pins down.
type ConsistentHash struct {
	vnodes int

	mu   sync.Mutex
	n    int // fleet size the cached ring was built for
	ring []ringPoint
}

type ringPoint struct {
	hash uint64
	node int
}

// NewConsistentHash builds the policy with vnodes virtual points per
// node (<=0 gets 64, plenty of spread for single-digit fleets).
func NewConsistentHash(vnodes int) *ConsistentHash {
	if vnodes <= 0 {
		vnodes = 64
	}
	return &ConsistentHash{vnodes: vnodes}
}

func (c *ConsistentHash) Name() string { return "hash" }

func (c *ConsistentHash) ringFor(n int) []ringPoint {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.n == n {
		return c.ring
	}
	ring := make([]ringPoint, 0, n*c.vnodes)
	for node := 0; node < n; node++ {
		for v := 0; v < c.vnodes; v++ {
			ring = append(ring, ringPoint{hashU64(uint64(node)<<20 | uint64(v)), node})
		}
	}
	sort.Slice(ring, func(i, j int) bool {
		if ring[i].hash != ring[j].hash {
			return ring[i].hash < ring[j].hash
		}
		return ring[i].node < ring[j].node
	})
	c.n, c.ring = n, ring
	return ring
}

// Order walks the ring from the key's position, collecting each node
// the first time it appears. The ring ignores up/down — that is what
// keeps the mapping stable — so the balancer filters health itself.
func (c *ConsistentHash) Order(key uint64, nodes []NodeState) []int {
	n := len(nodes)
	if n == 0 {
		return nil
	}
	ring := c.ringFor(n)
	h := hashU64(key)
	start := sort.Search(len(ring), func(i int) bool { return ring[i].hash >= h })
	order := make([]int, 0, n)
	seen := make([]bool, n)
	for i := 0; i < len(ring) && len(order) < n; i++ {
		p := ring[(start+i)%len(ring)]
		if !seen[p.node] {
			seen[p.node] = true
			order = append(order, p.node)
		}
	}
	return order
}

// --- least inflight --------------------------------------------------------

// LeastInflight routes each connection to the node the balancer is
// pumping the fewest connections through, ties broken by lowest index
// — deterministic, so two balancers observing the same state choose
// the same node.
type LeastInflight struct{}

func (LeastInflight) Name() string { return "least" }

func (LeastInflight) Order(_ uint64, nodes []NodeState) []int {
	order := make([]int, len(nodes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		na, nb := nodes[order[a]], nodes[order[b]]
		if na.Inflight != nb.Inflight {
			return na.Inflight < nb.Inflight
		}
		return order[a] < order[b]
	})
	return order
}

// PolicyByName maps the CLI spelling to a policy ("hash" default).
func PolicyByName(name string) Policy {
	if name == "least" {
		return LeastInflight{}
	}
	return NewConsistentHash(0)
}
