package cluster

import "testing"

// TestConsistentHashCoversAllNodes: Order must be a permutation of the
// fleet for any key — the failover walk needs every node reachable.
func TestConsistentHashCoversAllNodes(t *testing.T) {
	p := NewConsistentHash(64)
	nodes := make([]NodeState, 5)
	for key := uint64(0); key < 200; key++ {
		order := p.Order(key*2654435761, nodes)
		if len(order) != len(nodes) {
			t.Fatalf("key %d: order %v not a full permutation", key, order)
		}
		seen := map[int]bool{}
		for _, n := range order {
			if n < 0 || n >= len(nodes) || seen[n] {
				t.Fatalf("key %d: bad order %v", key, order)
			}
			seen[n] = true
		}
	}
}

// TestConsistentHashSpread: no node may own a wildly outsized share of
// the keyspace (vnodes exist exactly to prevent that).
func TestConsistentHashSpread(t *testing.T) {
	p := NewConsistentHash(64)
	const n, keys = 4, 4000
	nodes := make([]NodeState, n)
	counts := make([]int, n)
	for key := uint64(0); key < keys; key++ {
		counts[p.Order(key*0x9E3779B97F4A7C15+7, nodes)[0]]++
	}
	for i, c := range counts {
		// Fair share is 1000; accept a generous band.
		if c < keys/n/3 || c > keys/n*3 {
			t.Errorf("node %d owns %d of %d keys (counts %v)", i, c, keys, counts)
		}
	}
}

// TestConsistentHashStableUnderRemoval is the property the fleet buys
// with the ring: taking one node out only remaps the clients that
// node owned. Every other client keeps its instance — and with it the
// instance's warm session cache.
func TestConsistentHashStableUnderRemoval(t *testing.T) {
	p := NewConsistentHash(64)
	const n, keys = 5, 1000
	nodes := make([]NodeState, n)
	for i := range nodes {
		nodes[i].Up = true
	}
	const dead = 2
	moved := 0
	for key := uint64(0); key < keys; key++ {
		order := p.Order(key*0xC2B2AE3D27D4EB4F+3, nodes)
		before := order[0]
		// "Removal" is how the balancer sees it: the ring is unchanged,
		// the dead node is skipped on the walk.
		after := -1
		for _, idx := range order {
			if idx != dead {
				after = idx
				break
			}
		}
		if before == dead {
			moved++
			continue
		}
		if after != before {
			t.Fatalf("key %d moved %d -> %d though node %d died", key, before, after, dead)
		}
	}
	if moved == 0 || moved == keys {
		t.Errorf("dead node owned %d of %d keys; expected a proper share", moved, keys)
	}
}

// TestConsistentHashDeterministic: two independent policy instances
// must agree — the ring is a pure function of fleet size.
func TestConsistentHashDeterministic(t *testing.T) {
	a, b := NewConsistentHash(32), NewConsistentHash(32)
	nodes := make([]NodeState, 4)
	for key := uint64(1); key < 100; key++ {
		oa, ob := a.Order(key, nodes), b.Order(key, nodes)
		for i := range oa {
			if oa[i] != ob[i] {
				t.Fatalf("key %d: %v vs %v", key, oa, ob)
			}
		}
	}
}

// TestLeastInflightOrdering: strictly by load, ties broken by lowest
// index so the choice is deterministic.
func TestLeastInflightOrdering(t *testing.T) {
	p := LeastInflight{}
	nodes := []NodeState{
		{Up: true, Inflight: 3},
		{Up: true, Inflight: 1},
		{Up: true, Inflight: 1},
		{Up: true, Inflight: 0},
	}
	got := p.Order(12345, nodes)
	want := []int{3, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	// The key must not matter.
	got2 := p.Order(99999, nodes)
	for i := range want {
		if got2[i] != want[i] {
			t.Fatalf("key-dependent order: %v", got2)
		}
	}
}

func TestPolicyByName(t *testing.T) {
	if PolicyByName("least").Name() != "least" {
		t.Error("least not mapped")
	}
	if PolicyByName("hash").Name() != "hash" {
		t.Error("hash not mapped")
	}
	if PolicyByName("").Name() != "hash" {
		t.Error("default not hash")
	}
}
