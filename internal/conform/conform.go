// Package conform is the differential conformance subsystem: it
// mechanically cross-checks every hand-rolled component in this repo
// against an independent oracle, turning the paper's own methodology —
// §6 validates the hand-coded Rabbit AES by diffing its ciphertext
// against the compiled C port — into a regression-tested property of
// the whole stack.
//
// Three layers are covered:
//
//   - crypto: internal/crypto/{aes,sha1,rsa,bignum,prng} fuzzed
//     differentially against crypto/aes, crypto/sha1, crypto/rsa,
//     crypto/hmac and math/big, plus checked-in FIPS-197 / NIST golden
//     vectors (testdata/).
//   - isa: the hand-written Rabbit assembly AES and the dcc-compiled C
//     AES run on the CPU simulator and are diffed block-by-block
//     against the Go reference AND the stdlib — the paper's §6
//     equivalence claim as a repeatable test.
//   - protocol: seeded no-panic sweeps over the issl handshake, the
//     tcpip ingress path and the dcc compiler front end (the in-package
//     native fuzz targets go deeper; these sweeps make the conformance
//     verdict self-contained).
//
// All vector generation draws from math/rand with an explicit seed —
// deliberately NOT internal/crypto/prng, which is itself under test —
// so a run is reproducible from its seed and no kernel ever vouches
// for itself.
package conform

import (
	"fmt"
	"math/rand"
	"time"
)

// Options parameterizes a conformance run. The zero value is remapped
// to the defaults below by Run.
type Options struct {
	// Seed drives every generated vector. Same seed, same run.
	Seed uint64
	// CryptoVectors is the differential-vector budget per crypto kernel
	// (aes, sha1, rsa, bignum, prng). Default 10000.
	CryptoVectors int
	// ISAPairs is the number of random key/plaintext pairs pushed
	// through the asm/C/Go/stdlib AES cosimulation. Default 8.
	ISAPairs int
	// ISAChain is the chained-block depth per cosimulation pair
	// (output feeding input, the paper's §6 workload). Default 3.
	ISAChain int
	// ProtoVectors is the input budget per protocol sweep. Default 2000.
	ProtoVectors int
}

func (o Options) withDefaults() Options {
	if o.CryptoVectors <= 0 {
		o.CryptoVectors = 10000
	}
	if o.ISAPairs <= 0 {
		o.ISAPairs = 8
	}
	if o.ISAChain <= 0 {
		o.ISAChain = 3
	}
	if o.ProtoVectors <= 0 {
		o.ProtoVectors = 2000
	}
	return o
}

// checkCtx accumulates one check's outcome. Checks call vector() per
// differential comparison and failf() per disagreement; a panic inside
// a check is caught by the runner and recorded as an error.
type checkCtx struct {
	rng        *rand.Rand
	budget     int // vector budget the check should aim for
	vectors    int
	mismatches int
	detail     []string
	err        error
}

const maxDetail = 8

func (c *checkCtx) vector() { c.vectors++ }

func (c *checkCtx) failf(format string, args ...any) {
	c.mismatches++
	if len(c.detail) < maxDetail {
		c.detail = append(c.detail, fmt.Sprintf(format, args...))
	}
}

// expect is the common compare-and-report helper: got must equal want.
func (c *checkCtx) expect(got, want []byte, format string, args ...any) {
	c.vector()
	if !bytesEqual(got, want) {
		c.failf("%s: got %x, want %x", fmt.Sprintf(format, args...), got, want)
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// check is one named conformance check.
type check struct {
	name   string
	layer  string
	budget func(Options) int
	fn     func(*checkCtx)
}

// suite enumerates the full matrix. Golden-vector checks have a fixed
// small budget (their vector count is the size of the published set);
// differential checks get the per-kernel budget.
func suite(opt Options) []check {
	cryptoN := func(o Options) int { return o.CryptoVectors }
	fixed := func(int) func(Options) int { return func(Options) int { return 0 } }
	return []check{
		{"aes/differential", "crypto", cryptoN, checkAESDifferential},
		{"aes/golden-fips197", "crypto", fixed(0), checkAESGolden},
		{"sha1/differential", "crypto", cryptoN, checkSHA1Differential},
		{"sha1/golden-nist", "crypto", fixed(0), checkSHA1Golden},
		{"rsa/differential", "crypto", cryptoN, checkRSADifferential},
		{"bignum/differential", "crypto", cryptoN, checkBignumDifferential},
		{"bignum/limb-diff", "crypto", cryptoN, checkBignumLimbDiff},
		{"prng/differential", "crypto", cryptoN, checkPRNGDifferential},
		{"prng/golden-ansi-c", "crypto", fixed(0), checkPRNGGolden},
		{"isa/aes-cosim", "isa", func(o Options) int { return o.ISAPairs }, nil}, // bound at Run
		{"proto/issl-handshake", "protocol", func(o Options) int { return o.ProtoVectors }, checkISSLHandshakeSweep},
		{"proto/issl-ticket", "protocol", func(o Options) int { return o.ProtoVectors }, checkISSLTicketSeal},
		{"proto/tcpip-ingress", "protocol", func(o Options) int { return o.ProtoVectors }, checkTCPIPIngressSweep},
		{"proto/dcc-compile", "protocol", func(o Options) int { return o.ProtoVectors }, checkDCCCompileSweep},
	}
}

// Run executes the full conformance matrix and returns the report.
func Run(opt Options) *Report {
	opt = opt.withDefaults()
	rep := &Report{Seed: opt.Seed, Options: opt}
	for i, ck := range suite(opt) {
		fn := ck.fn
		if fn == nil { // the ISA check needs the chain depth too
			chain := opt.ISAChain
			fn = func(c *checkCtx) { checkISACosim(c, chain) }
		}
		// Per-check sub-seed: checks stay independent of one another, so
		// raising one budget does not shift another check's vectors.
		ctx := &checkCtx{
			rng:    rand.New(rand.NewSource(int64(opt.Seed) + int64(i)*0x9e37)),
			budget: ck.budget(opt),
		}
		start := time.Now()
		runGuarded(ctx, fn)
		rep.Results = append(rep.Results, Result{
			Name:       ck.name,
			Layer:      ck.layer,
			Vectors:    ctx.vectors,
			Mismatches: ctx.mismatches,
			Detail:     ctx.detail,
			Err:        errString(ctx.err),
			ElapsedMS:  float64(time.Since(start).Microseconds()) / 1000,
		})
	}
	rep.finalize()
	return rep
}

// runGuarded isolates a check: a panic becomes a recorded error plus a
// mismatch, never a crashed run (the verdict must always be emitted).
func runGuarded(ctx *checkCtx, fn func(*checkCtx)) {
	defer func() {
		if r := recover(); r != nil {
			ctx.err = fmt.Errorf("check panicked: %v", r)
			ctx.failf("panic: %v", r)
		}
	}()
	fn(ctx)
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
