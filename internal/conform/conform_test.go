package conform

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// smokeOptions keeps the in-tree regression run to a couple of seconds;
// cmd/conform and CI run the full 10k-vector budget.
func smokeOptions(seed uint64) Options {
	return Options{
		Seed:          seed,
		CryptoVectors: 300,
		ISAPairs:      2,
		ISAChain:      2,
		ProtoVectors:  120,
	}
}

func TestMatrixPassesAtSmokeBudget(t *testing.T) {
	rep := Run(smokeOptions(1))
	for _, res := range rep.Results {
		if !res.Pass() {
			t.Errorf("%s/%s: %d mismatches, err=%q, detail=%v",
				res.Layer, res.Name, res.Mismatches, res.Err, res.Detail)
		}
		if res.Err == "" && res.Vectors == 0 {
			t.Errorf("%s ran zero vectors", res.Name)
		}
	}
	if !rep.Passed {
		t.Fatal("matrix verdict is FAIL")
	}
	if rep.TotalVectors < 5*300 {
		t.Fatalf("suspiciously few vectors: %d", rep.TotalVectors)
	}
}

func TestMatrixCoversAllThreeLayers(t *testing.T) {
	layers := map[string]bool{}
	for _, ck := range suite(Options{}.withDefaults()) {
		layers[ck.layer] = true
	}
	for _, want := range []string{"crypto", "isa", "protocol"} {
		if !layers[want] {
			t.Errorf("suite has no %q layer check", want)
		}
	}
}

// TestRunIsDeterministic: same seed, byte-identical report (modulo
// timing). This is the property that makes a CI failure reproducible
// from the seed it prints.
func TestRunIsDeterministic(t *testing.T) {
	opts := Options{Seed: 7, CryptoVectors: 120, ISAPairs: 1, ISAChain: 2, ProtoVectors: 80}
	a, b := Run(opts), Run(opts)
	stripTimes := func(r *Report) {
		for i := range r.Results {
			r.Results[i].ElapsedMS = 0
		}
	}
	stripTimes(a)
	stripTimes(b)
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("same seed, different reports:\n%s\n---\n%s", ja, jb)
	}
}

// TestGuardedPanicBecomesFailure: a panicking check must surface as a
// failed result, never a crashed run.
func TestGuardedPanicBecomesFailure(t *testing.T) {
	ctx := &checkCtx{}
	runGuarded(ctx, func(*checkCtx) { panic("boom") })
	if ctx.err == nil || ctx.mismatches != 1 {
		t.Fatalf("panic not recorded: err=%v mismatches=%d", ctx.err, ctx.mismatches)
	}
}

// TestReportRendering: a seeded failure renders as FAIL in both the
// text table and the JSON artifact.
func TestReportRendering(t *testing.T) {
	rep := &Report{
		Seed: 9,
		Results: []Result{
			{Name: "aes/differential", Layer: "crypto", Vectors: 10, Mismatches: 0, ElapsedMS: 1.5},
			{Name: "isa/aes-cosim", Layer: "isa", Vectors: 4, Mismatches: 2,
				Detail: []string{"asm key=aa: got 00, want 11"}},
		},
	}
	rep.finalize()
	if rep.Passed || rep.TotalVectors != 14 || rep.TotalMismatches != 2 {
		t.Fatalf("finalize: %+v", rep)
	}

	var txt bytes.Buffer
	rep.WriteText(&txt)
	out := txt.String()
	for _, want := range []string{"FAIL", "aes/differential", "isa/aes-cosim", "! asm key=aa"} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q:\n%s", want, out)
		}
	}

	var js bytes.Buffer
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatalf("JSON artifact does not parse: %v", err)
	}
	if back.Passed || back.TotalMismatches != 2 || len(back.Results) != 2 {
		t.Fatalf("JSON round-trip lost fields: %+v", back)
	}
}

// TestGoldenVectorsAlwaysRun: golden checks must execute their full
// published sets even at tiny budgets (their cost is fixed).
func TestGoldenVectorsAlwaysRun(t *testing.T) {
	rep := Run(Options{Seed: 3, CryptoVectors: 1, ISAPairs: 1, ISAChain: 1, ProtoVectors: 1})
	want := map[string]int{
		"aes/golden-fips197": 8,  // 4 vectors × encrypt+decrypt
		"sha1/golden-nist":   12, // 5 FIPS digests + 7 RFC 2202 HMACs
		"prng/golden-ansi-c": 20, // 10 draws × (seeded + zero-value)
	}
	for _, res := range rep.Results {
		if n, ok := want[res.Name]; ok {
			if res.Vectors != n {
				t.Errorf("%s: %d vectors, want %d", res.Name, res.Vectors, n)
			}
			if !res.Pass() {
				t.Errorf("%s failed: %v %s", res.Name, res.Detail, res.Err)
			}
		}
	}
}
