package conform

// Crypto-layer differential checks: every from-scratch kernel under
// internal/crypto is driven side by side with an independent oracle —
// the Go standard library where it has one (crypto/aes, crypto/sha1,
// crypto/hmac, crypto/rsa, math/big) and checked-in published vectors
// (FIPS-197, FIPS 180, RFC 2202, the ANSI C rand() sequence) where the
// oracle is a document rather than a package.

import (
	stdaes "crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	stdrsa "crypto/rsa"
	stdsha1 "crypto/sha1"
	_ "embed"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/big"
	"math/rand"
	"os"
	"strings"

	"repro/internal/crypto/aes"
	"repro/internal/crypto/bignum"
	"repro/internal/crypto/bignum32"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/rsa"
	"repro/internal/crypto/sha1"
)

//go:embed testdata/fips197.json
var fips197JSON []byte

//go:embed testdata/sha1_nist.json
var sha1NISTJSON []byte

// --- AES ---------------------------------------------------------------------

var aesKeySizes = []int{16, 24, 32}

// checkAESDifferential fuzzes internal/crypto/aes against crypto/aes:
// raw blocks for every FIPS key size, CBC and CTR against crypto/cipher,
// encrypt/decrypt round-trips for the big Rijndael blocks the stdlib
// cannot oracle, and PKCS#7 pad/unpad inversion.
func checkAESDifferential(c *checkCtx) {
	for i := 0; c.vectors < c.budget; i++ {
		keyLen := aesKeySizes[c.rng.Intn(len(aesKeySizes))]
		key := randBytes(c.rng, keyLen)
		ours, err := aes.NewAES(key)
		if err != nil {
			c.failf("NewAES(%d-byte key): %v", keyLen, err)
			continue
		}
		std, err := stdaes.NewCipher(key)
		if err != nil {
			c.err = fmt.Errorf("stdlib NewCipher: %w", err)
			return
		}
		switch i % 4 {
		case 0: // single-block encrypt + decrypt
			pt := randBytes(c.rng, 16)
			got, want := make([]byte, 16), make([]byte, 16)
			ours.Encrypt(got, pt)
			std.Encrypt(want, pt)
			c.expect(got, want, "AES-%d encrypt pt=%x", keyLen*8, pt)
			back := make([]byte, 16)
			ours.Decrypt(back, want)
			stdBack := make([]byte, 16)
			std.Decrypt(stdBack, want)
			c.expect(back, stdBack, "AES-%d decrypt ct=%x", keyLen*8, want)
		case 1: // Rijndael big blocks: no stdlib oracle, so invert
			bs := []int{24, 32}[c.rng.Intn(2)]
			rj, err := aes.New(key, bs)
			if err != nil {
				c.failf("New(%d,%d): %v", keyLen, bs, err)
				continue
			}
			pt := randBytes(c.rng, bs)
			ct := make([]byte, bs)
			rj.Encrypt(ct, pt)
			back := make([]byte, bs)
			rj.Decrypt(back, ct)
			c.expect(back, pt, "Rijndael %d/%d round-trip", keyLen*8, bs*8)
		case 2: // CBC both directions vs crypto/cipher
			iv := randBytes(c.rng, 16)
			pt := randBytes(c.rng, 16*(1+c.rng.Intn(4)))
			got, err := ours.EncryptCBC(iv, pt)
			if err != nil {
				c.failf("EncryptCBC: %v", err)
				continue
			}
			want := make([]byte, len(pt))
			cipher.NewCBCEncrypter(std, iv).CryptBlocks(want, pt)
			c.expect(got, want, "CBC-%d encrypt %dB", keyLen*8, len(pt))
			dec, err := ours.DecryptCBC(iv, want)
			if err != nil {
				c.failf("DecryptCBC: %v", err)
				continue
			}
			c.expect(dec, pt, "CBC-%d decrypt %dB", keyLen*8, len(pt))
		case 3: // CTR (any length) vs crypto/cipher, pad/unpad inversion
			nonce := randBytes(c.rng, 16)
			data := randBytes(c.rng, 1+c.rng.Intn(100))
			got, err := ours.CTR(nonce, data)
			if err != nil {
				c.failf("CTR: %v", err)
				continue
			}
			want := make([]byte, len(data))
			cipher.NewCTR(std, nonce).XORKeyStream(want, data)
			c.expect(got, want, "CTR-%d %dB", keyLen*8, len(data))
			padded := ours.Pad(data)
			if len(padded)%16 != 0 || len(padded) <= len(data) {
				c.failf("Pad(%dB) -> %dB", len(data), len(padded))
			}
			unpadded, err := ours.Unpad(padded)
			if err != nil {
				c.failf("Unpad: %v", err)
				continue
			}
			c.expect(unpadded, data, "pad round-trip %dB", len(data))
		}
	}
}

// checkAESGolden replays the checked-in FIPS-197 known-answer vectors.
func checkAESGolden(c *checkCtx) {
	var vecs []struct {
		Name       string `json:"name"`
		Key        string `json:"key"`
		Plaintext  string `json:"plaintext"`
		Ciphertext string `json:"ciphertext"`
	}
	if err := json.Unmarshal(fips197JSON, &vecs); err != nil {
		c.err = err
		return
	}
	for _, v := range vecs {
		key, pt, ct := mustHex(v.Key), mustHex(v.Plaintext), mustHex(v.Ciphertext)
		ours, err := aes.NewAES(key)
		if err != nil {
			c.failf("%s: %v", v.Name, err)
			continue
		}
		got := make([]byte, 16)
		ours.Encrypt(got, pt)
		c.expect(got, ct, "%s encrypt", v.Name)
		back := make([]byte, 16)
		ours.Decrypt(back, ct)
		c.expect(back, pt, "%s decrypt", v.Name)
	}
}

// --- SHA-1 / HMAC ------------------------------------------------------------

// checkSHA1Differential drives the streaming digest and the HMAC
// against crypto/sha1 and crypto/hmac over random messages, random
// write splits, and mid-stream Sum calls.
func checkSHA1Differential(c *checkCtx) {
	for i := 0; c.vectors < c.budget; i++ {
		// Bias lengths toward the block/padding boundaries where
		// Merkle–Damgård implementations break.
		var n int
		switch i % 3 {
		case 0:
			n = c.rng.Intn(64)
		case 1:
			n = 50 + c.rng.Intn(32) // straddles the 55/56/64 padding edges
		default:
			n = c.rng.Intn(300)
		}
		msg := randBytes(c.rng, n)

		d := sha1.New()
		for off := 0; off < len(msg); {
			chunk := 1 + c.rng.Intn(len(msg)-off)
			d.Write(msg[off : off+chunk])
			off += chunk
		}
		want := stdsha1.Sum(msg)
		c.expect(d.Sum(nil), want[:], "sha1 %dB split-writes", n)

		// Sum must not disturb the running state: extend and re-check.
		ext := randBytes(c.rng, c.rng.Intn(80))
		d.Write(ext)
		full := stdsha1.Sum(append(append([]byte{}, msg...), ext...))
		c.expect(d.Sum(nil), full[:], "sha1 mid-stream Sum then +%dB", len(ext))

		oneShot := sha1.Sum1(msg)
		c.expect(oneShot[:], want[:], "Sum1 %dB", n)

		// HMAC with key lengths crossing BlockSize (64): the >64 branch
		// hashes the key first.
		key := randBytes(c.rng, c.rng.Intn(100))
		got := sha1.HMAC(key, msg)
		mac := hmac.New(stdsha1.New, key)
		mac.Write(msg)
		c.expect(got[:], mac.Sum(nil), "hmac key=%dB msg=%dB", len(key), n)
	}
}

// checkSHA1Golden replays the FIPS 180 digest vectors and the RFC 2202
// HMAC-SHA1 vectors.
func checkSHA1Golden(c *checkCtx) {
	var vecs struct {
		SHA1 []struct {
			Name   string `json:"name"`
			Msg    string `json:"msg"`
			Repeat int    `json:"repeat"`
			Digest string `json:"digest"`
		} `json:"sha1"`
		HMAC []struct {
			Name   string `json:"name"`
			Key    string `json:"key"`
			KeyHex string `json:"key_hex"`
			Msg    string `json:"msg"`
			MsgHex string `json:"msg_hex"`
			Digest string `json:"digest"`
		} `json:"hmac"`
	}
	if err := json.Unmarshal(sha1NISTJSON, &vecs); err != nil {
		c.err = err
		return
	}
	for _, v := range vecs.SHA1 {
		d := sha1.New()
		for i := 0; i < v.Repeat; i++ {
			d.Write([]byte(v.Msg))
		}
		c.expect(d.Sum(nil), mustHex(v.Digest), "%s", v.Name)
	}
	for _, v := range vecs.HMAC {
		key := []byte(v.Key)
		if v.KeyHex != "" {
			key = mustHex(v.KeyHex)
		}
		msg := []byte(v.Msg)
		if v.MsgHex != "" {
			msg = mustHex(v.MsgHex)
		}
		got := sha1.HMAC(key, msg)
		c.expect(got[:], mustHex(v.Digest), "%s", v.Name)
	}
}

// --- RSA ---------------------------------------------------------------------

// conformRSABits sizes the differential key. 512 keeps a 10k-vector
// run in seconds; correctness is size-independent (the bignum check
// exercises the arithmetic at larger operand shapes).
const conformRSABits = 512

// allowSmallRSA lets crypto/rsa accept the 512-bit differential key on
// toolchains (go >= 1.24) that reject small keys by default.
func allowSmallRSA() {
	if g := os.Getenv("GODEBUG"); !strings.Contains(g, "rsa1024min=0") {
		os.Setenv("GODEBUG", g+",rsa1024min=0")
	}
}

// checkRSADifferential cross-validates internal/crypto/rsa against
// crypto/rsa and math/big: ciphertext produced by one side must decrypt
// on the other, our generated key must pass the stdlib's structural
// Validate, and raw signatures must verify by independent modexp.
func checkRSADifferential(c *checkCtx) {
	allowSmallRSA()
	key, err := rsa.GenerateKey(prng.NewXorshift(uint64(c.rng.Int63())|1), conformRSABits)
	if err != nil {
		c.err = fmt.Errorf("keygen: %w", err)
		return
	}
	n := new(big.Int).SetBytes(key.N.Bytes())
	d := new(big.Int).SetBytes(key.D.Bytes())
	e := new(big.Int).SetBytes(key.E.Bytes())
	std := &stdrsa.PrivateKey{
		PublicKey: stdrsa.PublicKey{N: n, E: int(key.E.Uint64())},
		D:         d,
		Primes: []*big.Int{
			new(big.Int).SetBytes(key.P.Bytes()),
			new(big.Int).SetBytes(key.Q.Bytes()),
		},
	}
	std.Precompute()
	// The stdlib structurally validates our key generation: n = p*q,
	// p and q prime, d*e ≡ 1 (mod λ(n)).
	c.vector()
	if err := std.Validate(); err != nil {
		c.failf("stdlib Validate rejects our generated key: %v", err)
		return
	}

	padRng := prng.NewXorshift(uint64(c.rng.Int63()) | 1)
	kBytes := (key.N.BitLen() + 7) / 8
	for i := 0; c.vectors < c.budget; i++ {
		if i%10 != 0 {
			// Cheap public-op vector: x^e mod n, ours vs math/big.
			x := bignum.FromBytes(randBytes(c.rng, kBytes-1))
			got := x.ModExp(key.E, key.N)
			want := new(big.Int).Exp(new(big.Int).SetBytes(x.Bytes()), e, n)
			c.expect(got.Bytes(), want.Bytes(), "modexp(e) vector %d", i)
			continue
		}
		msg := randBytes(c.rng, 1+c.rng.Intn(key.MaxPlaintext()))

		// Ours encrypts, the stdlib decrypts.
		ct, err := key.EncryptPKCS1(padRng, msg)
		if err != nil {
			c.failf("EncryptPKCS1(%dB): %v", len(msg), err)
			continue
		}
		pt, err := stdrsa.DecryptPKCS1v15(nil, std, ct)
		c.vector()
		if err != nil {
			c.failf("stdlib rejects our PKCS1 ciphertext: %v", err)
		} else if !bytesEqual(pt, msg) {
			c.failf("cross-decrypt: got %x, want %x", pt, msg)
		}

		// The stdlib encrypts, ours decrypts.
		ct2, err := stdrsa.EncryptPKCS1v15(rngReader{c.rng}, &std.PublicKey, msg)
		if err != nil {
			c.err = fmt.Errorf("stdlib encrypt: %w", err)
			return
		}
		pt2, err := key.DecryptPKCS1(ct2)
		c.vector()
		if err != nil {
			c.failf("we reject stdlib PKCS1 ciphertext: %v", err)
		} else if !bytesEqual(pt2, msg) {
			c.failf("cross-decrypt (std->ours): got %x, want %x", pt2, msg)
		}

		// Raw signature verified by independent modexp + padding parse.
		digest := randBytes(c.rng, 20)
		sig, err := key.SignRaw(digest)
		if err != nil {
			c.failf("SignRaw: %v", err)
			continue
		}
		em := new(big.Int).Exp(new(big.Int).SetBytes(sig), e, n).FillBytes(make([]byte, kBytes))
		c.vector()
		if rec, perr := parsePKCS1Type1(em); perr != nil {
			c.failf("signature padding (oracle view): %v", perr)
		} else if !bytesEqual(rec, digest) {
			c.failf("signature digest: got %x, want %x", rec, digest)
		}
		if rec, verr := key.VerifyRaw(sig); verr != nil || !bytesEqual(rec, digest) {
			c.vector()
			c.failf("VerifyRaw round-trip: %v", verr)
		}
	}
}

// parsePKCS1Type1 is an oracle-side PKCS#1 v1.5 type-1 parser (written
// against the spec, not against internal/crypto/rsa).
func parsePKCS1Type1(em []byte) ([]byte, error) {
	if len(em) < 11 || em[0] != 0x00 || em[1] != 0x01 {
		return nil, fmt.Errorf("bad header % x", em[:min(2, len(em))])
	}
	i := 2
	for ; i < len(em) && em[i] == 0xff; i++ {
	}
	if i < 10 || i == len(em) || em[i] != 0x00 {
		return nil, fmt.Errorf("bad padding run (len %d)", i-2)
	}
	return em[i+1:], nil
}

// rngReader adapts the vector generator to io.Reader for crypto/rsa.
type rngReader struct{ r *rand.Rand }

func (r rngReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(r.r.Intn(256))
	}
	return len(p), nil
}

// --- bignum ------------------------------------------------------------------

// checkBignumDifferential fuzzes every bignum operation against
// math/big over random and boundary-shaped operands.
func checkBignumDifferential(c *checkCtx) {
	shapes := [][]byte{
		nil, {0}, {1}, {2}, {0xff}, {0xff, 0xff, 0xff, 0xff},
		{1, 0, 0, 0, 0}, // 2^32
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		{1, 0, 0, 0, 0, 0, 0, 0, 0}, // 2^64
	}
	operand := func() ([]byte, bignum.Int, *big.Int) {
		var b []byte
		if c.rng.Intn(8) == 0 {
			b = shapes[c.rng.Intn(len(shapes))]
		} else {
			b = randBytes(c.rng, c.rng.Intn(65))
		}
		return b, bignum.FromBytes(b), new(big.Int).SetBytes(b)
	}
	for c.vectors < c.budget {
		_, x, bx := operand()
		_, y, by := operand()

		c.expect(x.Add(y).Bytes(), new(big.Int).Add(bx, by).Bytes(), "add")
		c.expect(x.Mul(y).Bytes(), new(big.Int).Mul(bx, by).Bytes(), "mul")

		hi, lo, bhi, blo := x, y, bx, by
		if x.Cmp(y) < 0 {
			hi, lo, bhi, blo = y, x, by, bx
		}
		c.expect(hi.Sub(lo).Bytes(), new(big.Int).Sub(bhi, blo).Bytes(), "sub")

		c.vector()
		if got, want := x.Cmp(y), bx.Cmp(by); got != want {
			c.failf("cmp(%v,%v): got %d, want %d", bx, by, got, want)
		}
		c.vector()
		if got, want := x.BitLen(), bx.BitLen(); got != want {
			c.failf("bitlen(%v): got %d, want %d", bx, got, want)
		}

		if !y.IsZero() {
			q, r, err := x.DivMod(y)
			if err != nil {
				c.vector()
				c.failf("divmod error on nonzero divisor: %v", err)
			} else {
				bq, br := new(big.Int), new(big.Int)
				bq.QuoRem(bx, by, br)
				c.expect(q.Bytes(), bq.Bytes(), "div")
				c.expect(r.Bytes(), br.Bytes(), "mod")
			}
		} else if _, _, err := x.DivMod(y); err == nil {
			c.vector()
			c.failf("DivMod by zero did not error")
		}

		sh := c.rng.Intn(71)
		c.expect(x.Shl(sh).Bytes(), new(big.Int).Lsh(bx, uint(sh)).Bytes(), "shl %d", sh)
		c.expect(x.Shr(sh).Bytes(), new(big.Int).Rsh(bx, uint(sh)).Bytes(), "shr %d", sh)

		// Bounded operands for the quadratic/iterated ops.
		gx := bignum.FromBytes(randBytes(c.rng, 1+c.rng.Intn(32)))
		gy := bignum.FromBytes(randBytes(c.rng, 1+c.rng.Intn(32)))
		bgx, bgy := new(big.Int).SetBytes(gx.Bytes()), new(big.Int).SetBytes(gy.Bytes())
		c.expect(gx.GCD(gy).Bytes(), new(big.Int).GCD(nil, nil, bgx, bgy).Bytes(), "gcd")

		m := bignum.FromBytes(randBytes(c.rng, 1+c.rng.Intn(24)))
		if !m.IsZero() {
			ex := bignum.FromBytes(randBytes(c.rng, c.rng.Intn(13)))
			got := gx.ModExp(ex, m)
			want := new(big.Int).Exp(bgx, new(big.Int).SetBytes(ex.Bytes()), new(big.Int).SetBytes(m.Bytes()))
			c.expect(got.Bytes(), want.Bytes(), "modexp")

			inv, ok := gx.ModInverse(m)
			winv := new(big.Int).ModInverse(bgx, new(big.Int).SetBytes(m.Bytes()))
			c.vector()
			if ok != (winv != nil) {
				c.failf("modinverse existence: ours %v, big %v (x=%v m=%v)", ok, winv != nil, bgx, m)
			} else if ok && !bytesEqual(inv.Bytes(), winv.Bytes()) {
				c.failf("modinverse: got %v, want %v", inv, winv)
			}
		}

		// Decimal round-trips are slow (repeated division); sample them.
		if c.rng.Intn(16) == 0 {
			c.vector()
			if got, want := x.String(), bx.String(); got != want {
				c.failf("string: got %s, want %s", got, want)
			}
			back, err := bignum.FromDecimal(bx.String())
			c.vector()
			if err != nil || back.Cmp(x) != 0 {
				c.failf("FromDecimal(%s): %v", bx.String(), err)
			}
		}
		c.expect(bignum.FromBytes(x.Bytes()).Bytes(), bx.Bytes(), "bytes round-trip")
	}
}

// checkBignumLimbDiff is the three-way limb-width differential: the
// live 64-bit limb bignum, the retained 32-bit oracle (bignum32 — the
// exact arithmetic that shipped before the limb width was doubled) and
// math/big all run the same operation on the same bytes and must agree
// byte-for-byte. Operand shapes deliberately straddle both limb seams
// (2^32 and 2^64 boundaries) where a width bug would hide.
func checkBignumLimbDiff(c *checkCtx) {
	shapes := [][]byte{
		nil, {0}, {1}, {0xff},
		{0xff, 0xff, 0xff, 0xff}, // 2^32 - 1
		{1, 0, 0, 0, 0},          // 2^32
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, // 2^64 - 1
		{1, 0, 0, 0, 0, 0, 0, 0, 0},                      // 2^64
		{1, 0, 0, 0, 1, 0, 0, 0, 1},                      // sparse across limbs
	}
	operand := func(maxLen int) ([]byte, bignum.Int, bignum32.Int, *big.Int) {
		var b []byte
		if c.rng.Intn(8) == 0 {
			b = shapes[c.rng.Intn(len(shapes))]
		} else {
			b = randBytes(c.rng, c.rng.Intn(maxLen+1))
		}
		return b, bignum.FromBytes(b), bignum32.FromBytes(b), new(big.Int).SetBytes(b)
	}
	// diff3 charges one vector and compares all three implementations.
	diff3 := func(op string, got bignum.Int, got32 bignum32.Int, want *big.Int) {
		c.vector()
		w := want.Bytes()
		if !bytesEqual(got.Bytes(), w) {
			c.failf("%s: 64-bit got %x, want %x", op, got.Bytes(), w)
		} else if !bytesEqual(got32.Bytes(), w) {
			c.failf("%s: 32-bit oracle got %x, want %x", op, got32.Bytes(), w)
		}
	}
	for c.vectors < c.budget {
		_, x, x32, bx := operand(64)
		_, y, y32, by := operand(64)

		diff3("add", x.Add(y), x32.Add(y32), new(big.Int).Add(bx, by))
		diff3("mul", x.Mul(y), x32.Mul(y32), new(big.Int).Mul(bx, by))

		if x.Cmp(y) >= 0 {
			diff3("sub", x.Sub(y), x32.Sub(y32), new(big.Int).Sub(bx, by))
		} else {
			diff3("sub", y.Sub(x), y32.Sub(x32), new(big.Int).Sub(by, bx))
		}

		c.vector()
		if g, g32 := x.Cmp(y), x32.Cmp(y32); g != g32 || g != bx.Cmp(by) {
			c.failf("cmp: 64-bit %d, 32-bit %d, big %d", g, g32, bx.Cmp(by))
		}
		c.vector()
		if g, g32 := x.BitLen(), x32.BitLen(); g != g32 || g != bx.BitLen() {
			c.failf("bitlen: 64-bit %d, 32-bit %d, big %d", g, g32, bx.BitLen())
		}

		if !y.IsZero() {
			q, r, err := x.DivMod(y)
			q32, r32, err32 := x32.DivMod(y32)
			if err != nil || err32 != nil {
				c.vector()
				c.failf("divmod error on nonzero divisor: 64=%v 32=%v", err, err32)
			} else {
				bq, br := new(big.Int), new(big.Int)
				bq.QuoRem(bx, by, br)
				diff3("div", q, q32, bq)
				diff3("mod", r, r32, br)
			}
		}

		sh := c.rng.Intn(130)
		diff3("shl", x.Shl(sh), x32.Shl(sh), new(big.Int).Lsh(bx, uint(sh)))
		diff3("shr", x.Shr(sh), x32.Shr(sh), new(big.Int).Rsh(bx, uint(sh)))

		// modexp with bounded operands (quadratic work per vector); the
		// Montgomery path needs odd moduli often, so force odd half the
		// time and keep even moduli for the fallback path.
		mb, m, m32, mbig := operand(24)
		if m.IsZero() {
			continue
		}
		if c.rng.Intn(2) == 0 && mb != nil {
			mb = append([]byte(nil), mb...)
			mb[len(mb)-1] |= 1
			m, m32 = bignum.FromBytes(mb), bignum32.FromBytes(mb)
			mbig = new(big.Int).SetBytes(mb)
		}
		_, gx, gx32, bgx := operand(32)
		eb := randBytes(c.rng, c.rng.Intn(9))
		e, e32 := bignum.FromBytes(eb), bignum32.FromBytes(eb)
		diff3("modexp", gx.ModExp(e, m), gx32.ModExp(e32, m32),
			new(big.Int).Exp(bgx, new(big.Int).SetBytes(eb), mbig))
	}
}

// --- PRNG --------------------------------------------------------------------

// refXorshiftStar is the oracle for prng.Xorshift, written directly
// from Vigna's published xorshift64* recipe (shifts 12/25/27,
// multiplier 2685821657736338717).
type refXorshiftStar struct{ s uint64 }

func (r *refXorshiftStar) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 2685821657736338717
}

// checkPRNGDifferential compares both generators against independent
// recipes: the LCG against the ANSI C reference formula, Xorshift
// against the published xorshift64* algorithm, and the byte/word
// convenience APIs against the raw 64-bit stream.
func checkPRNGDifferential(c *checkCtx) {
	for c.vectors < c.budget {
		seed := c.rng.Uint64()

		// LCG vs the ANSI formula (state*1103515245+12345, top of the
		// low 31 bits), 32 draws per seed.
		l := prng.NewLCG(uint32(seed))
		state := uint32(seed)
		for i := 0; i < 32; i++ {
			state = state*1103515245 + 12345
			want := int(state >> 16 & 0x7fff)
			got := l.Next()
			c.vector()
			if got != want {
				c.failf("LCG(seed %d) draw %d: got %d, want %d", uint32(seed), i, got, want)
			}
			if got < 0 || got > 32767 {
				c.failf("LCG value %d outside RAND_MAX", got)
			}
		}

		// Xorshift vs the reference recipe, 32 draws per seed.
		x := prng.NewXorshift(seed)
		ref := &refXorshiftStar{s: seed}
		if seed == 0 {
			ref.s = 0x9e3779b97f4a7c15 // the documented zero-seed remap
		}
		for i := 0; i < 32; i++ {
			got, want := x.Next64(), ref.next()
			c.vector()
			if got != want {
				c.failf("Xorshift(seed %#x) draw %d: got %#x, want %#x", seed, i, got, want)
			}
		}

		// Bytes/Fill must be the little-endian projection of the same
		// stream, and Uint32 its top word.
		n := 1 + c.rng.Intn(40)
		got := prng.NewXorshift(seed).Bytes(n)
		ref2 := &refXorshiftStar{s: seed}
		if seed == 0 {
			ref2.s = 0x9e3779b97f4a7c15
		}
		want := make([]byte, n)
		var w uint64
		for i := range want {
			if i%8 == 0 {
				w = ref2.next()
			}
			want[i] = byte(w)
			w >>= 8
		}
		c.expect(got, want, "Xorshift.Bytes(%d) seed %#x", n, seed)

		c.vector()
		if got, want := prng.NewXorshift(seed).Uint32(), uint32(ref2StepTop(seed)); got != want {
			c.failf("Uint32 seed %#x: got %#x, want %#x", seed, got, want)
		}
	}
}

func ref2StepTop(seed uint64) uint64 {
	r := &refXorshiftStar{s: seed}
	if seed == 0 {
		r.s = 0x9e3779b97f4a7c15
	}
	return r.next() >> 32
}

// ansiCRandSeed1 is the published sample sequence of the ANSI C
// reference rand() for srand(1) — the same constants §5 of the paper
// forced the port to reimplement.
var ansiCRandSeed1 = []int{16838, 5758, 10113, 17515, 31051, 5627, 23010, 7419, 16212, 4086}

// checkPRNGGolden replays the ANSI C rand() golden sequence, plus the
// zero-value contract (unseeded LCG behaves like srand(1)).
func checkPRNGGolden(c *checkCtx) {
	l := prng.NewLCG(1)
	for i, want := range ansiCRandSeed1 {
		c.vector()
		if got := l.Next(); got != want {
			c.failf("rand() draw %d after srand(1): got %d, want %d", i, got, want)
		}
	}
	var zero prng.LCG
	for i, want := range ansiCRandSeed1 {
		c.vector()
		if got := zero.Next(); got != want {
			c.failf("zero-value LCG draw %d: got %d, want %d", i, got, want)
		}
	}
}

// --- helpers -----------------------------------------------------------------

func randBytes(r *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(r.Intn(256))
	}
	return b
}

func mustHex(s string) []byte {
	b, err := hex.DecodeString(s)
	if err != nil {
		panic(fmt.Sprintf("conform: bad hex in golden vector: %v", err))
	}
	return b
}
