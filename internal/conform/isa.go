package conform

// ISA cosimulation: the hand-written Rabbit assembly AES and the
// dcc-compiled C AES run on the CPU simulator and are diffed
// block-by-block against two independent software references — the Go
// implementation in internal/crypto/aes AND the standard library. This
// is the paper's §6 validation ("the assembly routine was checked
// against the ciphertext of the compiled C version") made mechanical
// and seeded.

import (
	stdaes "crypto/aes"

	"repro/internal/aesasm"
	"repro/internal/aesc"
	"repro/internal/crypto/aes"
	"repro/internal/dcc"
)

// cosimOptionSets mirrors the compiler configurations the aesc tests
// exercise: the C side must agree under every optimization mix, not
// just the default.
var cosimOptionSets = []struct {
	name string
	opt  dcc.Options
}{
	{"debug", dcc.Options{Debug: true}},
	{"nodebug", dcc.Options{}},
	{"all", dcc.Options{Unroll: true, RootData: true, Peephole: true}},
}

// refChain computes the chained-encryption workload with a software
// implementation: out feeds in for `blocks` rounds under a fixed key.
func refChain(encrypt func(dst, src []byte), block [16]byte, blocks int) [16]byte {
	buf := block[:]
	for i := 0; i < blocks; i++ {
		encrypt(buf, buf)
	}
	var out [16]byte
	copy(out[:], buf)
	return out
}

// checkISACosim runs `budget` random key/plaintext pairs through four
// AES-128 implementations — Rabbit assembly, dcc-compiled C (under
// each option set), Go reference, stdlib — and requires byte-exact
// agreement on every chained block.
func checkISACosim(c *checkCtx, chainDepth int) {
	asm, err := aesasm.Load()
	if err != nil {
		c.err = err
		return
	}
	cMachines := make([]*aesc.Machine, len(cosimOptionSets))
	for i, s := range cosimOptionSets {
		m, err := aesc.Build(s.opt)
		if err != nil {
			c.err = err
			return
		}
		cMachines[i] = m
	}

	for pair := 0; pair < c.budget; pair++ {
		var key, block [16]byte
		copy(key[:], randBytes(c.rng, 16))
		copy(block[:], randBytes(c.rng, 16))
		// Vary the chain depth around the configured midpoint so the
		// nblocks loop boundary itself gets exercised.
		blocks := 1 + c.rng.Intn(2*chainDepth-1)

		goRef, err := aes.NewAES(key[:])
		if err != nil {
			c.err = err
			return
		}
		want := refChain(goRef.Encrypt, block, blocks)

		std, err := stdaes.NewCipher(key[:])
		if err != nil {
			c.err = err
			return
		}
		stdOut := refChain(std.Encrypt, block, blocks)
		c.expect(stdOut[:], want[:], "go-ref vs stdlib key=%x blocks=%d", key, blocks)

		asmOut, _, err := asm.EncryptChain(key, block, blocks)
		c.vector()
		if err != nil {
			c.failf("asm pair %d: %v", pair, err)
		} else if asmOut != want {
			c.failf("asm key=%x pt=%x blocks=%d: got %x, want %x",
				key, block, blocks, asmOut, want)
		}

		for i, s := range cosimOptionSets {
			cOut, _, err := cMachines[i].EncryptChain(key, block, blocks)
			c.vector()
			if err != nil {
				c.failf("C[%s] pair %d: %v", s.name, pair, err)
			} else if cOut != want {
				c.failf("C[%s] key=%x pt=%x blocks=%d: got %x, want %x",
					s.name, key, block, blocks, cOut, want)
			}
		}
	}
}
