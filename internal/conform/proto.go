package conform

// Protocol-layer sweeps: seeded adversarial inputs against the issl
// handshake, the tcpip ingress path and the dcc compiler front end.
// The invariants are behavioral — never panic, reject garbage with an
// error, keep serving after abuse, round-trip application data intact.
// The in-package native fuzz targets (internal/issl, internal/tcpip,
// internal/dcc) mutate far deeper; these sweeps make the conformance
// verdict self-contained and reproducible from one seed.

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/crypto/prng"
	"repro/internal/dcc"
	"repro/internal/issl"
	"repro/internal/netsim"
	"repro/internal/tcpip"
)

// --- issl --------------------------------------------------------------------

// duplex glues two pipe halves into one io.ReadWriter endpoint.
type duplex struct {
	r io.Reader
	w io.Writer
}

func (d duplex) Read(p []byte) (int, error)  { return d.r.Read(p) }
func (d duplex) Write(p []byte) (int, error) { return d.w.Write(p) }

// recorder tees every Write into a buffer.
type recorder struct {
	io.ReadWriter
	captured []byte
}

func (r *recorder) Write(p []byte) (int, error) {
	r.captured = append(r.captured, p...)
	return r.ReadWriter.Write(p)
}

// byteFeed serves a fixed byte string then EOF; writes are discarded.
// It models a peer that sends attacker-controlled bytes and hangs up.
type byteFeed struct{ buf []byte }

func (b *byteFeed) Read(p []byte) (int, error) {
	if len(b.buf) == 0 {
		return 0, io.EOF
	}
	n := copy(p, b.buf)
	b.buf = b.buf[n:]
	return n, nil
}

func (b *byteFeed) Write(p []byte) (int, error) { return len(p), nil }

func embeddedConfig(seed uint64) issl.Config {
	return issl.Config{
		Profile: issl.ProfileEmbedded,
		PSK:     []byte("conform-sweep-psk-0123456789abcd"),
		Rand:    prng.NewXorshift(seed),
	}
}

// checkISSLHandshakeSweep captures a genuine client→server handshake
// transcript, then replays mutated copies (bit flips, truncations,
// garbage records) into BindServer. Invariants: the server never
// panics, rejects every corrupted transcript with an error, and — on
// the clean path — application data round-trips byte-exactly.
func checkISSLHandshakeSweep(c *checkCtx) {
	transcript, err := captureHandshake(c, 64)
	if err != nil {
		c.err = fmt.Errorf("clean handshake capture: %w", err)
		return
	}

	for i := 0; c.vectors < c.budget; i++ {
		var input []byte
		switch i % 4 {
		case 0: // bit-flip a few distinct bytes of the real transcript
			input = append([]byte{}, transcript...)
			seen := map[int]bool{}
			for k := 0; k < 1+c.rng.Intn(4); k++ {
				pos := c.rng.Intn(len(input))
				if seen[pos] {
					continue // two flips in one byte could cancel out
				}
				seen[pos] = true
				input[pos] ^= byte(1 << c.rng.Intn(8))
			}
		case 1: // truncate mid-record
			input = append([]byte{}, transcript[:c.rng.Intn(len(transcript))]...)
		case 2: // plausible record header, random body
			body := randBytes(c.rng, c.rng.Intn(64))
			input = append([]byte{0x16, 0x31, byte(len(body) >> 8), byte(len(body))}, body...)
		default: // unstructured garbage
			input = randBytes(c.rng, c.rng.Intn(200))
		}
		c.vector()
		func() {
			defer func() {
				if r := recover(); r != nil {
					c.failf("BindServer panic on input %x: %v", input, r)
				}
			}()
			if conn, err := issl.BindServer(&byteFeed{buf: input}, embeddedConfig(c.rng.Uint64()|1)); err == nil {
				// A corrupted or truncated transcript that still completes
				// the handshake means the Finished MAC is not binding.
				c.failf("handshake accepted corrupted transcript (%d bytes), conn=%v", len(input), conn != nil)
			}
		}()

		// Every 64th vector: a clean handshake plus a data round-trip,
		// so the sweep also certifies the success path it mutates from.
		if i%64 == 0 {
			payload := randBytes(c.rng, 1+c.rng.Intn(300))
			echoed, err := cleanRoundTrip(c, payload)
			c.vector()
			if err != nil {
				c.failf("clean round-trip: %v", err)
			} else if !bytesEqual(echoed, payload) {
				c.failf("round-trip corrupted %dB payload", len(payload))
			}
		}
	}
}

// captureHandshake runs one genuine embedded-profile handshake over
// in-memory pipes and returns the raw client→server byte stream.
func captureHandshake(c *checkCtx, _ int) ([]byte, error) {
	cliSeed, srvSeed := c.rng.Uint64()|1, c.rng.Uint64()|1
	c2s, s2c := newBufPipe(), newBufPipe() // client→server, server→client
	rec := &recorder{ReadWriter: duplex{r: s2c, w: c2s}}

	srvErr := make(chan error, 1)
	go func() {
		conn, err := issl.BindServer(duplex{r: c2s, w: s2c}, embeddedConfig(srvSeed))
		if err == nil {
			conn.Close()
		}
		srvErr <- err
	}()
	conn, err := issl.BindClient(rec, embeddedConfig(cliSeed))
	if err != nil {
		return nil, err
	}
	conn.Close()
	if err := <-srvErr; err != nil {
		return nil, err
	}
	return rec.captured, nil
}

// cleanRoundTrip handshakes and echoes one payload server→client.
func cleanRoundTrip(c *checkCtx, payload []byte) ([]byte, error) {
	cliSeed, srvSeed := c.rng.Uint64()|1, c.rng.Uint64()|1
	c2s, s2c := newBufPipe(), newBufPipe()

	done := make(chan error, 1)
	go func() {
		conn, err := issl.BindServer(duplex{r: c2s, w: s2c}, embeddedConfig(srvSeed))
		if err != nil {
			done <- err
			return
		}
		buf := make([]byte, len(payload))
		if _, err := io.ReadFull(conn, buf); err != nil {
			done <- err
			return
		}
		_, err = conn.Write(buf)
		done <- err
	}()
	conn, err := issl.BindClient(duplex{r: s2c, w: c2s}, embeddedConfig(cliSeed))
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write(payload); err != nil {
		return nil, err
	}
	echoed := make([]byte, len(payload))
	if _, err := io.ReadFull(conn, echoed); err != nil {
		return nil, err
	}
	if err := <-done; err != nil {
		return nil, err
	}
	return echoed, nil
}

// bufPipe is an unbounded in-memory byte pipe: writes never block, so
// both handshake endpoints can flush close records without the
// lock-step deadlock a synchronous io.Pipe would produce.
type bufPipe struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []byte
	closed bool
}

func newBufPipe() *bufPipe {
	p := &bufPipe{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

func (p *bufPipe) Write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return 0, io.ErrClosedPipe
	}
	p.buf = append(p.buf, b...)
	p.cond.Broadcast()
	return len(b), nil
}

func (p *bufPipe) Read(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.buf) == 0 && !p.closed {
		p.cond.Wait()
	}
	if len(p.buf) == 0 {
		return 0, io.EOF
	}
	n := copy(b, p.buf)
	p.buf = p.buf[n:]
	return n, nil
}

func (p *bufPipe) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	p.cond.Broadcast()
	return nil
}

// --- tcpip -------------------------------------------------------------------

// checkTCPIPIngressSweep stands up two live stacks on a simulated hub,
// then injects adversarial IPv4 frames — mutated ICMP echoes, random
// TCP headers, raw garbage — from a third rogue port. The frames are
// built by an oracle-side encoder written from the RFC header layouts,
// not by the stack's own marshalers. Invariant: the stack drops or
// survives everything, and still answers a real ping afterwards.
func checkTCPIPIngressSweep(c *checkCtx) {
	hub := netsim.NewHub()
	defer hub.Close()
	a, err := tcpip.NewStack(hub, tcpip.Addr{10, 0, 0, 1})
	if err != nil {
		c.err = err
		return
	}
	defer a.Close()
	b, err := tcpip.NewStack(hub, tcpip.Addr{10, 0, 0, 2})
	if err != nil {
		c.err = err
		return
	}
	defer b.Close()
	if _, err := b.Listen(4000, 4); err != nil {
		c.err = err
		return
	}
	rogue, err := hub.Attach(netsim.MAC{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01})
	if err != nil {
		c.err = err
		return
	}
	defer rogue.Close()
	drainPort(rogue)

	// Baseline: the clean wire works before we abuse it.
	c.vector()
	if err := a.Ping(b.Addr(), time.Second); err != nil {
		c.failf("baseline ping: %v", err)
		return
	}

	src := tcpip.Addr{10, 0, 0, 66}
	for i := 0; c.vectors < c.budget-1; i++ {
		var payload []byte
		switch i % 4 {
		case 0: // well-formed ICMP echo, then corrupted
			payload = encodeIPv4(src, b.Addr(), 1, encodeICMPEcho(c.rng))
			flipBytes(c.rng, payload, 1+c.rng.Intn(3))
		case 1: // TCP header soup at the listening port
			payload = encodeIPv4(src, b.Addr(), 6, encodeTCPGarbage(c.rng, 4000))
		case 2: // header fields randomized (version, IHL, lengths)
			payload = encodeIPv4(src, b.Addr(), byte(c.rng.Intn(256)), randBytes(c.rng, c.rng.Intn(40)))
			for k := 0; k < 3; k++ {
				payload[c.rng.Intn(minInt(len(payload), 20))] = byte(c.rng.Intn(256))
			}
		default: // raw garbage frame
			payload = randBytes(c.rng, c.rng.Intn(120))
		}
		dst := b.MAC()
		if i%7 == 0 {
			dst = netsim.Broadcast
		}
		c.vector()
		if err := rogue.Send(netsim.Frame{
			Dst: dst, Src: rogue.MAC(), EtherType: netsim.EtherTypeIPv4, Payload: payload,
		}); err != nil {
			c.failf("rogue send %d: %v", i, err)
		}
	}

	// Liveness: the stack must still route real traffic after the storm.
	c.vector()
	if err := a.Ping(b.Addr(), 2*time.Second); err != nil {
		c.failf("post-storm ping failed (stack wedged): %v", err)
	}
}

func drainPort(p *netsim.Port) {
	go func() {
		for range p.Recv() {
		}
	}()
}

func flipBytes(rng interface{ Intn(int) int }, b []byte, n int) {
	for i := 0; i < n && len(b) > 0; i++ {
		b[rng.Intn(len(b))] ^= byte(1 << rng.Intn(8))
	}
}

// encodeIPv4 builds a minimal IPv4 header + payload with a correct
// header checksum, straight from RFC 791 (oracle-side, independent of
// internal/tcpip's marshalers).
func encodeIPv4(src, dst tcpip.Addr, proto byte, payload []byte) []byte {
	total := 20 + len(payload)
	h := make([]byte, 20, total)
	h[0] = 0x45 // version 4, IHL 5
	h[2], h[3] = byte(total>>8), byte(total)
	h[8] = 64 // TTL
	h[9] = proto
	copy(h[12:16], src[:])
	copy(h[16:20], dst[:])
	ck := inetChecksum(h)
	h[10], h[11] = byte(ck>>8), byte(ck)
	return append(h, payload...)
}

func encodeICMPEcho(rng interface{ Intn(int) int }) []byte {
	body := make([]byte, 8+rng.Intn(32))
	body[0] = 8 // echo request
	ck := inetChecksum(body)
	body[2], body[3] = byte(ck>>8), byte(ck)
	return body
}

func encodeTCPGarbage(rng interface{ Intn(int) int }, port uint16) []byte {
	seg := make([]byte, 20+rng.Intn(24))
	for i := range seg {
		seg[i] = byte(rng.Intn(256))
	}
	seg[2], seg[3] = byte(port>>8), byte(port) // aim at the listener
	seg[12] = byte(5+rng.Intn(11)) << 4        // data offset 5..15 words
	return seg
}

func inetChecksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// --- dcc ---------------------------------------------------------------------

// dccSeedPrograms are the mutation bases for the compiler sweep: a
// trivial program, a control-flow-heavy one, and the declaration forms
// (xmem/root/auto/arrays) the compiler special-cases.
var dccSeedPrograms = []string{
	`int out; void main() { out = 1 + 2 * 3; }`,
	`int out;
void main() {
    int i; int acc;
    acc = 0;
    for (i = 0; i < 10; i++) {
        if (i & 1) acc = acc + i; else acc = acc - 1;
        while (acc > 100) acc = acc - 7;
    }
    out = acc;
}`,
	`char tab[16]; char msg[] = "conform"; int out;
int f(int x) { return x << 2; }
void main() { int i; for (i = 0; i < 16; i++) tab[i] = i; out = f(tab[3]) + msg[0]; }`,
}

// checkDCCCompileSweep throws mutated and mangled source at
// dcc.Compile under randomized option sets. Invariant: the compiler
// returns (Compilation, nil) or (nil, error) — it never panics, no
// matter how broken the input.
func checkDCCCompileSweep(c *checkCtx) {
	for i := 0; c.vectors < c.budget; i++ {
		base := dccSeedPrograms[c.rng.Intn(len(dccSeedPrograms))]
		src := []byte(base)
		switch i % 4 {
		case 0: // byte-level mutation
			for k := 0; k < 1+c.rng.Intn(6); k++ {
				src[c.rng.Intn(len(src))] = byte(c.rng.Intn(128))
			}
		case 1: // truncation (unterminated constructs)
			src = src[:c.rng.Intn(len(src))]
		case 2: // token insertion
			toks := []string{"{", "}", "(", ")", ";", "if", "for", "int", "return", "++", "<<", "\"", "/*", "0x"}
			pos := c.rng.Intn(len(src) + 1)
			ins := toks[c.rng.Intn(len(toks))]
			src = append(src[:pos:pos], append([]byte(ins), src[pos:]...)...)
		default: // unstructured garbage
			src = randBytes(c.rng, c.rng.Intn(150))
		}
		opt := dcc.Options{
			Debug:    c.rng.Intn(2) == 0,
			Unroll:   c.rng.Intn(2) == 0,
			RootData: c.rng.Intn(2) == 0,
			Peephole: c.rng.Intn(2) == 0,
		}
		c.vector()
		func() {
			defer func() {
				if r := recover(); r != nil {
					c.failf("dcc.Compile panic on %q: %v", string(src), r)
				}
			}()
			_, _ = dcc.Compile(string(src), opt)
		}()

		// Unmutated seeds must keep compiling under every option mix.
		if i%50 == 0 {
			c.vector()
			if _, err := dcc.Compile(base, opt); err != nil {
				c.failf("seed program rejected under %+v: %v", opt, err)
			}
		}
	}
}
