package conform

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Result is one check's outcome.
type Result struct {
	Name       string   `json:"name"`
	Layer      string   `json:"layer"` // crypto | isa | protocol
	Vectors    int      `json:"vectors"`
	Mismatches int      `json:"mismatches"`
	Detail     []string `json:"detail,omitempty"` // first few disagreements
	Err        string   `json:"err,omitempty"`
	ElapsedMS  float64  `json:"elapsed_ms"`
}

// Pass reports whether the check found no disagreement and no error.
func (r *Result) Pass() bool { return r.Mismatches == 0 && r.Err == "" }

// Report is the full matrix verdict: one row per check, one bottom
// line for CI and humans alike.
type Report struct {
	Seed    uint64   `json:"seed"`
	Options Options  `json:"options"`
	Results []Result `json:"results"`

	TotalVectors    int  `json:"total_vectors"`
	TotalMismatches int  `json:"total_mismatches"`
	Passed          bool `json:"passed"`
}

func (r *Report) finalize() {
	r.Passed = true
	for i := range r.Results {
		r.TotalVectors += r.Results[i].Vectors
		r.TotalMismatches += r.Results[i].Mismatches
		if !r.Results[i].Pass() {
			r.Passed = false
		}
	}
}

// WriteJSON emits the machine-readable report (the CI artifact).
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the human verdict table.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "conformance matrix (seed %d)\n", r.Seed)
	fmt.Fprintf(w, "%-10s %-24s %9s %10s %9s  %s\n",
		"LAYER", "CHECK", "VECTORS", "MISMATCH", "MS", "VERDICT")
	for i := range r.Results {
		res := &r.Results[i]
		verdict := "ok"
		if !res.Pass() {
			verdict = "FAIL"
		}
		fmt.Fprintf(w, "%-10s %-24s %9d %10d %9.1f  %s\n",
			res.Layer, res.Name, res.Vectors, res.Mismatches, res.ElapsedMS, verdict)
		for _, d := range res.Detail {
			fmt.Fprintf(w, "    ! %s\n", d)
		}
		if res.Err != "" {
			fmt.Fprintf(w, "    ! error: %s\n", res.Err)
		}
	}
	line := strings.Repeat("-", 72)
	fmt.Fprintln(w, line)
	verdict := "PASS"
	if !r.Passed {
		verdict = "FAIL"
	}
	fmt.Fprintf(w, "%s: %d vectors, %d mismatches across %d checks\n",
		verdict, r.TotalVectors, r.TotalMismatches, len(r.Results))
}
