package conform

// Sealed-ticket differential check: internal/issl's ticket seal/open
// is diffed against an independent oracle built from the stdlib
// (crypto/aes, crypto/cipher, crypto/hmac, crypto/sha1) following the
// wire spec in internal/issl/ticket.go:
//
//	ticket = version(1) keyID(4) iv(16) ct(16k) mac(20)
//	state  = expiry_unix_sec(8 BE) masterLen(1) master(20)
//
// Both directions are exercised: the internal Seal must emit bytes
// identical to the oracle construction (given the same IV), and a
// ticket minted entirely by the oracle must open through the internal
// path to the same master secret. Tampered and expired oracle tickets
// must be rejected with the typed ErrTicket family — the rejection
// path is what lets a cluster client degrade to a full handshake
// instead of erroring out.

import (
	stdaes "crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	stdsha1 "crypto/sha1"
	"encoding/binary"
	"errors"
	"time"

	"repro/internal/crypto/prng"
	"repro/internal/issl"
)

// oracleTicketKeys derives the per-purpose sealing keys from shared
// material exactly as the spec prescribes, stdlib only.
func oracleTicketKeys(material []byte) (encKey, macKey, keyID []byte) {
	h := func(label string) []byte {
		m := hmac.New(stdsha1.New, material)
		m.Write([]byte(label))
		return m.Sum(nil)
	}
	return h("ticket enc")[:16], h("ticket mac"), h("ticket id")[:4]
}

// oracleSeal mints a complete ticket with stdlib crypto: PKCS#7-padded
// state under AES-128-CBC, then HMAC-SHA1 over version||keyID||iv||ct.
func oracleSeal(material, master []byte, expiryUnix int64, iv []byte) []byte {
	encKey, macKey, keyID := oracleTicketKeys(material)
	state := make([]byte, 9, 9+len(master))
	binary.BigEndian.PutUint64(state[:8], uint64(expiryUnix))
	state[8] = byte(len(master))
	state = append(state, master...)
	pad := stdaes.BlockSize - len(state)%stdaes.BlockSize
	for i := 0; i < pad; i++ {
		state = append(state, byte(pad))
	}
	blk, err := stdaes.NewCipher(encKey)
	if err != nil {
		panic(err) // 16-byte derived key; cannot happen
	}
	ct := make([]byte, len(state))
	cipher.NewCBCEncrypter(blk, iv).CryptBlocks(ct, state)
	t := []byte{issl.TicketVersion}
	t = append(t, keyID...)
	t = append(t, iv...)
	t = append(t, ct...)
	m := hmac.New(stdsha1.New, macKey)
	m.Write(t)
	return m.Sum(t)
}

const oracleTicketHeader = 1 + 4 + 16 // version keyID iv

// checkISSLTicketSeal runs the two-way seal/open differential plus the
// tamper and expiry rejection sweeps.
func checkISSLTicketSeal(c *checkCtx) {
	for c.vectors < c.budget {
		material := randBytes(c.rng, 8+c.rng.Intn(24))
		master := randBytes(c.rng, 20)
		now := time.Unix(800_000_000+int64(c.rng.Intn(1<<30)), 0)
		lifetime := time.Duration(1+c.rng.Intn(3600)) * time.Second
		expiry := now.Add(lifetime).Unix()

		ks, err := issl.NewTicketKeyStore(material, lifetime)
		if err != nil {
			c.vector()
			c.failf("NewTicketKeyStore: %v", err)
			continue
		}
		ks.SetNow(func() time.Time { return now })
		ks.SetRand(prng.NewXorshift(c.rng.Uint64() | 1))

		// Internal seal vs oracle construction. The IV is the store's to
		// draw (its PRNG is prng/differential's problem); the oracle
		// reuses it and every other byte must then agree.
		sealed, err := ks.Seal(master)
		if err != nil {
			c.vector()
			c.failf("Seal: %v", err)
			continue
		}
		iv := sealed[5:oracleTicketHeader]
		c.expect(sealed, oracleSeal(material, master, expiry, iv),
			"seal(material=%x..)", material[:4])

		// Oracle-minted ticket through the internal open path.
		ot := oracleSeal(material, master, expiry, randBytes(c.rng, 16))
		got, err := ks.Open(ot)
		if err != nil {
			c.vector()
			c.failf("Open(oracle ticket): %v", err)
		} else {
			c.expect(got, master, "Open(oracle ticket) master")
		}

		// One flipped bit anywhere must be rejected, and with the typed
		// error (version, key, or MAC — all wrap ErrTicket).
		mut := append([]byte(nil), ot...)
		mut[c.rng.Intn(len(mut))] ^= 1 << uint(c.rng.Intn(8))
		c.vector()
		if _, err := ks.Open(mut); err == nil {
			c.failf("tampered ticket accepted")
		} else if !errors.Is(err, issl.ErrTicket) {
			c.failf("tampered ticket rejected with untyped error: %v", err)
		}

		// Strictly past the expiry second: rejected as expired (the
		// boundary second itself is accepted; Open is inclusive).
		exp := oracleSeal(material, master, now.Unix()-1, randBytes(c.rng, 16))
		c.vector()
		if _, err := ks.Open(exp); !errors.Is(err, issl.ErrTicketExpired) {
			c.failf("expired oracle ticket: got %v, want ErrTicketExpired", err)
		}
	}
}
