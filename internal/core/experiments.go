// Package core is the experiment harness: one entry point per result
// in the paper's evaluation (§6 plus the structural figures), each
// returning structured data that the cmd tools print as tables, the
// root benchmarks time, and EXPERIMENTS.md records. Everything runs on
// the simulated substrate — the Rabbit CPU model for on-board cycle
// counts, the netsim/tcpip world for service throughput.
package core

import (
	"fmt"
	"io"
	"time"

	"repro/internal/aesasm"
	"repro/internal/aesc"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/rsa"
	"repro/internal/dcc"
	"repro/internal/dcsock"
	"repro/internal/issl"
	"repro/internal/netsim"
	"repro/internal/redirector"
	"repro/internal/tcpip"
)

// ClockHz is the RMC2000's CPU clock (30 MHz, §4).
const ClockHz = 30_000_000

// KBPerSecond converts cycles-per-16-byte-block to throughput at the
// board's clock.
func KBPerSecond(cyclesPerBlock float64) float64 {
	blocksPerSec := ClockHz / cyclesPerBlock
	return blocksPerSec * 16 / 1024
}

// --- E1: hand assembly vs compiled C ------------------------------------------

// E1Result is the paper's headline comparison.
type E1Result struct {
	CCyclesPerBlock   float64
	AsmCyclesPerBlock float64
	Factor            float64
	CKBps             float64
	AsmKBps           float64
}

// RunE1 measures AES-128 cycles/block for the Dynamic C build
// (out-of-the-box: debugging on, no optimization) against the
// hand-written assembly, both on the CPU simulator.
func RunE1() (*E1Result, error) {
	cm, err := aesc.Build(dcc.Options{Debug: true})
	if err != nil {
		return nil, err
	}
	cCyc, err := cm.CyclesPerBlock(8)
	if err != nil {
		return nil, err
	}
	am, err := aesasm.Load()
	if err != nil {
		return nil, err
	}
	aCyc, err := am.CyclesPerBlock(8)
	if err != nil {
		return nil, err
	}
	return &E1Result{
		CCyclesPerBlock:   cCyc,
		AsmCyclesPerBlock: aCyc,
		Factor:            cCyc / aCyc,
		CKBps:             KBPerSecond(cCyc),
		AsmKBps:           KBPerSecond(aCyc),
	}, nil
}

// --- E2: optimization sweep on the C port ---------------------------------------

// E2Row is one compiler configuration's measurement.
type E2Row struct {
	Name           string
	Options        dcc.Options
	CyclesPerBlock float64
	CodeSize       int
	GainVsBaseline float64 // fraction, e.g. 0.20 = 20% faster
}

// E2Configs is the sweep: the four §6 optimizations, alone and together.
var E2Configs = []struct {
	Name string
	Opt  dcc.Options
}{
	{"baseline (debug on)", dcc.Options{Debug: true}},
	{"disable debugging", dcc.Options{}},
	{"+ root data", dcc.Options{RootData: true}},
	{"+ unroll loops", dcc.Options{Unroll: true}},
	{"+ peephole", dcc.Options{Peephole: true}},
	{"all optimizations", dcc.Options{Unroll: true, RootData: true, Peephole: true}},
}

// RunE2 sweeps the optimization knobs over the same AES C source.
func RunE2() ([]E2Row, error) {
	rows := make([]E2Row, 0, len(E2Configs))
	var baseline float64
	for i, cfg := range E2Configs {
		m, err := aesc.Build(cfg.Opt)
		if err != nil {
			return nil, fmt.Errorf("config %q: %w", cfg.Name, err)
		}
		cyc, err := m.CyclesPerBlock(4)
		if err != nil {
			return nil, fmt.Errorf("config %q: %w", cfg.Name, err)
		}
		if i == 0 {
			baseline = cyc
		}
		rows = append(rows, E2Row{
			Name:           cfg.Name,
			Options:        cfg.Opt,
			CyclesPerBlock: cyc,
			CodeSize:       m.CodeSize(),
			GainVsBaseline: 1 - cyc/baseline,
		})
	}
	return rows, nil
}

// --- E3: code size vs speed -------------------------------------------------------

// E3Row pairs a code size with its speed for the correlation table.
type E3Row struct {
	Name           string
	CodeSize       int
	CyclesPerBlock float64
}

// E3Result carries the asm-vs-C size comparison plus the
// size-uncorrelated-with-speed table.
type E3Result struct {
	AsmSize      int
	CSizeBase    int
	AsmSmallerBy float64 // fraction
	Rows         []E3Row
}

// RunE3 measures code sizes across all builds.
func RunE3() (*E3Result, error) {
	am, err := aesasm.Load()
	if err != nil {
		return nil, err
	}
	aCyc, err := am.CyclesPerBlock(4)
	if err != nil {
		return nil, err
	}
	res := &E3Result{AsmSize: am.CodeSize()}
	res.Rows = append(res.Rows, E3Row{"hand assembly", am.CodeSize(), aCyc})
	for i, cfg := range E2Configs {
		m, err := aesc.Build(cfg.Opt)
		if err != nil {
			return nil, err
		}
		cyc, err := m.CyclesPerBlock(4)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			res.CSizeBase = m.CodeSize()
		}
		res.Rows = append(res.Rows, E3Row{"C: " + cfg.Name, m.CodeSize(), cyc})
	}
	res.AsmSmallerBy = 1 - float64(res.AsmSize)/float64(res.CSizeBase)
	return res, nil
}

// --- E4: SSL cost on service throughput ---------------------------------------------

// E4Result compares plaintext and issl-secured redirector throughput
// (the §2 Goldberg et al. observation: SSL costs about an order of
// magnitude).
type E4Result struct {
	PlainKBps  float64
	SecureKBps float64
	Slowdown   float64
	Bytes      int
}

// RunE4 builds a three-host world (client, redirector, backend sink)
// and pumps payload bytes through both configurations.
func RunE4(payload int) (*E4Result, error) {
	plain, err := RedirectorThroughput(false, payload)
	if err != nil {
		return nil, fmt.Errorf("plain: %w", err)
	}
	secure, err := RedirectorThroughput(true, payload)
	if err != nil {
		return nil, fmt.Errorf("secure: %w", err)
	}
	return &E4Result{
		PlainKBps:  plain,
		SecureKBps: secure,
		Slowdown:   plain / secure,
		Bytes:      payload,
	}, nil
}

// RedirectorThroughput measures one configuration in KB/s of payload
// moved client -> redirector -> sink over the simulated LAN.
func RedirectorThroughput(secure bool, payload int) (float64, error) {
	hub := netsim.NewHub()
	defer hub.Close()
	mk := func(last byte) (*tcpip.Stack, error) {
		return tcpip.NewStack(hub, tcpip.IP4(10, 9, 0, last))
	}
	cli, err := mk(1)
	if err != nil {
		return 0, err
	}
	defer cli.Close()
	mid, err := mk(2)
	if err != nil {
		return 0, err
	}
	defer mid.Close()
	back, err := mk(3)
	if err != nil {
		return 0, err
	}
	defer back.Close()

	// Backend: a sink that drains and acknowledges with one byte at EOF.
	sink, err := back.Listen(9000, 4)
	if err != nil {
		return 0, err
	}
	go func() {
		for {
			conn, err := sink.Accept(10 * time.Second)
			if err != nil {
				return
			}
			go func(c *tcpip.TCB) {
				buf := make([]byte, 8192)
				total := 0
				for {
					n, err := c.ReadDeadline(buf, time.Now().Add(10*time.Second))
					total += n
					if err != nil {
						c.Write([]byte{1})
						c.Close()
						return
					}
				}
			}(conn)
		}
	}()

	var key *rsa.PrivateKey
	if secure {
		key, err = rsa.GenerateKey(prng.NewXorshift(0xE4), 512)
		if err != nil {
			return 0, err
		}
	}
	srv, err := redirector.NewUnixServer(mid, redirector.Config{
		ListenPort: 443, Target: back.Addr(), TargetPort: 9000,
		Secure: secure, ServerKey: key, RandSeed: 11,
	})
	if err != nil {
		return 0, err
	}
	go srv.Serve()
	defer srv.Close()

	tcb, err := cli.Connect(mid.Addr(), 443, 10*time.Second)
	if err != nil {
		return 0, err
	}
	var w io.Writer = tcb
	var closeFn func()
	start := time.Now()
	if secure {
		sc, err := issl.BindClient(tcb, issl.Config{Profile: issl.ProfileUnix, Rand: prng.NewXorshift(12)})
		if err != nil {
			return 0, err
		}
		w = sc
		closeFn = func() { sc.Close(); tcb.Close() }
	} else {
		closeFn = func() { tcb.Close() }
	}
	chunk := make([]byte, 4096)
	for i := range chunk {
		chunk[i] = byte(i)
	}
	sent := 0
	for sent < payload {
		n := payload - sent
		if n > len(chunk) {
			n = len(chunk)
		}
		if _, err := w.Write(chunk[:n]); err != nil {
			return 0, fmt.Errorf("after %d bytes: %w", sent, err)
		}
		sent += n
	}
	closeFn()
	// Wait for the sink's 1-byte EOF acknowledgment via the redirector.
	buf := make([]byte, 1)
	tcb.ReadDeadline(buf, time.Now().Add(10*time.Second))
	elapsed := time.Since(start).Seconds()
	return float64(payload) / 1024 / elapsed, nil
}

// --- E5: Fig. 3 connection limit ---------------------------------------------------

// E5Result records the connection-slot experiment.
type E5Result struct {
	Slots        int
	ServedAtOnce int
	ExtraRefused bool
	SlotReusable bool
}

// RunE5 fills all slots of an embedded redirector, verifies the next
// connection is refused, then frees a slot and verifies reuse.
func RunE5() (*E5Result, error) {
	hub := netsim.NewHub()
	defer hub.Close()
	cli, err := tcpip.NewStack(hub, tcpip.IP4(10, 5, 0, 1))
	if err != nil {
		return nil, err
	}
	defer cli.Close()
	dev, err := tcpip.NewStack(hub, tcpip.IP4(10, 5, 0, 2))
	if err != nil {
		return nil, err
	}
	defer dev.Close()
	back, err := tcpip.NewStack(hub, tcpip.IP4(10, 5, 0, 3))
	if err != nil {
		return nil, err
	}
	defer back.Close()

	echoL, err := back.Listen(9000, 8)
	if err != nil {
		return nil, err
	}
	go func() {
		for {
			conn, err := echoL.Accept(10 * time.Second)
			if err != nil {
				return
			}
			go func(c *tcpip.TCB) {
				buf := make([]byte, 1024)
				for {
					n, err := c.ReadDeadline(buf, time.Now().Add(10*time.Second))
					if n > 0 {
						c.Write(buf[:n])
					}
					if err != nil {
						c.Close()
						return
					}
				}
			}(conn)
		}
	}()

	psk := []byte("e5-psk")
	const slots = 3
	srv, err := redirector.NewEmbeddedServer(dcsock.NewEnv(dev), redirector.Config{
		ListenPort: 443, Target: back.Addr(), TargetPort: 9000,
		Secure: true, PSK: psk, Slots: slots, RandSeed: 5,
	})
	if err != nil {
		return nil, err
	}
	go srv.Run()
	defer srv.Close()
	time.Sleep(50 * time.Millisecond)

	res := &E5Result{Slots: slots}
	var conns []*issl.Conn
	var tcbs []*tcpip.TCB
	for i := 0; i < slots; i++ {
		tcb, err := cli.Connect(dev.Addr(), 443, 5*time.Second)
		if err != nil {
			return nil, fmt.Errorf("slot %d connect: %w", i, err)
		}
		sc, err := issl.BindClient(tcb, issl.Config{
			Profile: issl.ProfileEmbedded, PSK: psk, Rand: prng.NewXorshift(uint64(300 + i))})
		if err != nil {
			return nil, fmt.Errorf("slot %d handshake: %w", i, err)
		}
		sc.Write([]byte("x"))
		buf := make([]byte, 4)
		if _, err := sc.Read(buf); err != nil {
			return nil, fmt.Errorf("slot %d echo: %w", i, err)
		}
		res.ServedAtOnce++
		conns = append(conns, sc)
		tcbs = append(tcbs, tcb)
	}
	if _, err := cli.Connect(dev.Addr(), 443, 2*time.Second); err != nil {
		res.ExtraRefused = true
	}
	conns[0].Close()
	tcbs[0].Close()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if tcb, err := cli.Connect(dev.Addr(), 443, time.Second); err == nil {
			res.SlotReusable = true
			tcb.Close()
			break
		}
	}
	for i := 1; i < slots; i++ {
		conns[i].Close()
		tcbs[i].Close()
	}
	return res, nil
}
