package core

import "testing"

func TestRunE1Shape(t *testing.T) {
	r, err := RunE1()
	if err != nil {
		t.Fatal(err)
	}
	if r.Factor < 10 || r.Factor > 60 {
		t.Errorf("E1 factor = %.1f, want order-of-magnitude (paper: 15-20)", r.Factor)
	}
	if r.AsmKBps <= r.CKBps {
		t.Error("assembly not faster in KB/s terms")
	}
	t.Logf("E1: C=%.0f cyc/blk (%.1f KB/s), asm=%.0f cyc/blk (%.1f KB/s), factor=%.1fx",
		r.CCyclesPerBlock, r.CKBps, r.AsmCyclesPerBlock, r.AsmKBps, r.Factor)
}

func TestRunE2Shape(t *testing.T) {
	rows, err := RunE2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(E2Configs) {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].GainVsBaseline != 0 {
		t.Error("baseline gain nonzero")
	}
	best := rows[len(rows)-1]
	if best.GainVsBaseline <= 0.05 || best.GainVsBaseline >= 0.60 {
		t.Errorf("total optimization gain = %.1f%%, paper reports ~20%% (modest)",
			best.GainVsBaseline*100)
	}
	for _, r := range rows {
		t.Logf("E2: %-22s %8.0f cyc/blk  %5d bytes  %+.1f%%",
			r.Name, r.CyclesPerBlock, r.CodeSize, r.GainVsBaseline*100)
	}
}

func TestRunE3Shape(t *testing.T) {
	r, err := RunE3()
	if err != nil {
		t.Fatal(err)
	}
	if r.AsmSize >= r.CSizeBase {
		t.Errorf("asm (%d) not smaller than C (%d)", r.AsmSize, r.CSizeBase)
	}
	// "Code size appeared uncorrelated to execution speed": the
	// fastest C build should not be the smallest.
	var fastest, smallest E3Row
	for i, row := range r.Rows {
		if i == 0 {
			continue // skip asm row for the C-only comparison
		}
		if fastest.Name == "" || row.CyclesPerBlock < fastest.CyclesPerBlock {
			fastest = row
		}
		if smallest.Name == "" || row.CodeSize < smallest.CodeSize {
			smallest = row
		}
	}
	if fastest.Name == smallest.Name {
		t.Logf("note: fastest C build is also smallest (%s); weaker decorrelation than paper", fastest.Name)
	}
	for _, row := range r.Rows {
		t.Logf("E3: %-25s %5d bytes  %8.0f cyc/blk", row.Name, row.CodeSize, row.CyclesPerBlock)
	}
}

func TestRunE4Shape(t *testing.T) {
	r, err := RunE4(256 * 1024)
	if err != nil {
		t.Fatal(err)
	}
	if r.Slowdown < 1.5 {
		t.Errorf("SSL slowdown = %.1fx; expected a clear cost (paper cites ~10x)", r.Slowdown)
	}
	t.Logf("E4: plain=%.0f KB/s, secure=%.0f KB/s, slowdown=%.1fx over %d bytes",
		r.PlainKBps, r.SecureKBps, r.Slowdown, r.Bytes)
}

func TestRunE5Shape(t *testing.T) {
	r, err := RunE5()
	if err != nil {
		t.Fatal(err)
	}
	if r.ServedAtOnce != r.Slots {
		t.Errorf("served %d of %d slots", r.ServedAtOnce, r.Slots)
	}
	if !r.ExtraRefused {
		t.Error("connection beyond the slot count was not refused")
	}
	if !r.SlotReusable {
		t.Error("freed slot was not reusable")
	}
	t.Logf("E5: %d slots served, extra refused=%v, slot reuse=%v",
		r.ServedAtOnce, r.ExtraRefused, r.SlotReusable)
}

func TestKBPerSecond(t *testing.T) {
	// 30000 cycles/block at 30 MHz = 1000 blocks/s = 15.625 KB/s
	got := KBPerSecond(30000)
	if got < 15.6 || got > 15.7 {
		t.Errorf("KBPerSecond(30000) = %f", got)
	}
}
