// Package costate reproduces Dynamic C's cooperative multitasking
// model (§4.2 of the paper): costatements with yield and
// waitfor(expr), scheduled round-robin by a single thread of control.
// The ported TLS server uses exactly this structure — one costatement
// per connection slot plus one driving the TCP stack (Fig. 3) — and
// the fixed number of spawned costatements is what caps simultaneous
// connections at three.
//
// Implementation: each costatement runs on its own goroutine, but a
// handoff protocol guarantees only one runs at any instant and control
// returns to the scheduler exactly at Yield points — the same
// observable semantics as Dynamic C's compiler-generated resume
// points. The preemptive alternatives (slice statements, µC/OS-II) are
// not modeled; the paper's port did not use them either ("We did not
// use µC/OS-II").
package costate

import (
	"errors"
	"fmt"
	"time"
)

// ErrKilled is the panic value used to unwind a killed costatement.
var ErrKilled = errors.New("costate: killed")

// Co is the handle a costatement body uses to give up control.
type Co struct {
	name   string
	resume chan struct{}
	yield  chan struct{}
	killed bool
}

// Name returns the costatement's name.
func (c *Co) Name() string { return c.name }

// Yield passes control to the next costatement (the `yield` statement).
// When control returns, execution resumes after the Yield call.
func (c *Co) Yield() {
	c.yield <- struct{}{}
	<-c.resume
	if c.killed {
		panic(ErrKilled)
	}
}

// WaitFor yields until pred() holds (`waitfor(expr)`, which Dynamic C
// defines as `while (!expr) yield;`).
func (c *Co) WaitFor(pred func() bool) {
	for !pred() {
		c.Yield()
	}
}

// WaitForTimeout is WaitFor bounded by a deadline; it reports whether
// the predicate became true.
func (c *Co) WaitForTimeout(pred func() bool, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for !pred() {
		if time.Now().After(deadline) {
			return false
		}
		c.Yield()
	}
	return true
}

// DelayMs returns a predicate that becomes true n milliseconds from
// now — the idiom `waitfor(DelayMs(n))` used for pacing loops.
func DelayMs(n int) func() bool {
	deadline := time.Now().Add(time.Duration(n) * time.Millisecond)
	return func() bool { return time.Now().After(deadline) }
}

// task is the scheduler's view of one costatement.
type task struct {
	co   *Co
	done bool
}

// Scheduler owns a set of costatements and runs them round-robin.
// It is single-threaded: methods must be called from one goroutine.
type Scheduler struct {
	tasks []*task
}

// New creates an empty scheduler.
func New() *Scheduler { return &Scheduler{} }

// Spawn registers a costatement. The body does not run until the
// scheduler's next Tick. Bodies communicate only through Yield/WaitFor
// on the provided Co.
func (s *Scheduler) Spawn(name string, body func(*Co)) *Co {
	co := &Co{
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	t := &task{co: co}
	s.tasks = append(s.tasks, t)
	go func() {
		defer func() {
			if r := recover(); r != nil && r != ErrKilled {
				// Re-panic real bugs on the scheduler's goroutine is not
				// possible; surface loudly instead.
				panic(fmt.Sprintf("costate %q: %v", name, r))
			}
			close(co.yield)
		}()
		<-co.resume
		if co.killed {
			panic(ErrKilled)
		}
		body(co)
	}()
	return co
}

// Live returns the number of costatements that have not finished.
func (s *Scheduler) Live() int {
	n := 0
	for _, t := range s.tasks {
		if !t.done {
			n++
		}
	}
	return n
}

// Tick gives every live costatement one scheduling slot, in spawn
// order. It reports whether any costatement remains live.
func (s *Scheduler) Tick() bool {
	any := false
	for _, t := range s.tasks {
		if t.done {
			continue
		}
		t.co.resume <- struct{}{}
		if _, ok := <-t.co.yield; !ok {
			t.done = true
			continue
		}
		any = true
	}
	if !any {
		// A task may have finished during this very tick.
		return s.Live() > 0
	}
	return true
}

// Run ticks until every costatement finishes.
func (s *Scheduler) Run() {
	for s.Tick() {
	}
}

// RunFor ticks until every costatement finishes or the duration
// elapses; it reports whether all finished.
func (s *Scheduler) RunFor(d time.Duration) bool {
	deadline := time.Now().Add(d)
	for s.Tick() {
		if time.Now().After(deadline) {
			return false
		}
	}
	return true
}

// Kill unwinds a costatement at its next scheduling slot.
func (s *Scheduler) Kill(co *Co) {
	co.killed = true
}

// KillAll unwinds every live costatement and runs them to completion.
func (s *Scheduler) KillAll() {
	for _, t := range s.tasks {
		if !t.done {
			t.co.killed = true
		}
	}
	s.Run()
}

// Cofunc mirrors Dynamic C's cofunctions: a named, yield-capable
// routine callable from costatement bodies. In Go a plain function
// taking *Co already has these semantics; the type exists so call
// sites read like the original API.
type Cofunc[A, R any] func(co *Co, arg A) R

// Call invokes the cofunction on the caller's costatement.
func (f Cofunc[A, R]) Call(co *Co, arg A) R { return f(co, arg) }
