package costate

import (
	"testing"
	"time"
)

func TestRoundRobinOrder(t *testing.T) {
	s := New()
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		s.Spawn(name, func(co *Co) {
			for i := 0; i < 3; i++ {
				order = append(order, name)
				co.Yield()
			}
		})
	}
	s.Run()
	want := "abcabcabc"
	got := ""
	for _, n := range order {
		got += n
	}
	if got != want {
		t.Errorf("schedule order = %s, want %s", got, want)
	}
}

func TestSingleThreadOfControl(t *testing.T) {
	s := New()
	running := 0
	maxRunning := 0
	for i := 0; i < 5; i++ {
		s.Spawn("t", func(co *Co) {
			for j := 0; j < 10; j++ {
				running++
				if running > maxRunning {
					maxRunning = running
				}
				// If another costatement ran concurrently, running
				// would exceed 1 here (this is unsynchronized access,
				// which is exactly the point: DC code relies on
				// cooperative scheduling for atomicity).
				running--
				co.Yield()
			}
		})
	}
	s.Run()
	if maxRunning != 1 {
		t.Errorf("max concurrent costatements = %d, want 1", maxRunning)
	}
}

func TestWaitFor(t *testing.T) {
	s := New()
	flag := false
	reached := false
	s.Spawn("waiter", func(co *Co) {
		co.WaitFor(func() bool { return flag })
		reached = true
	})
	s.Spawn("setter", func(co *Co) {
		for i := 0; i < 5; i++ {
			co.Yield()
		}
		flag = true
	})
	s.Run()
	if !reached {
		t.Error("waitfor never unblocked")
	}
}

func TestWaitForTimeout(t *testing.T) {
	s := New()
	var ok bool
	s.Spawn("w", func(co *Co) {
		ok = co.WaitForTimeout(func() bool { return false }, 50*time.Millisecond)
	})
	// A second task keeps the scheduler ticking.
	s.Spawn("ticker", func(co *Co) {
		co.WaitFor(DelayMs(100))
	})
	s.Run()
	if ok {
		t.Error("WaitForTimeout reported success on never-true predicate")
	}
}

func TestDelayMs(t *testing.T) {
	s := New()
	start := time.Now()
	s.Spawn("d", func(co *Co) {
		co.WaitFor(DelayMs(60))
	})
	s.Run()
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Errorf("DelayMs(60) completed after %v", d)
	}
}

func TestLiveCount(t *testing.T) {
	s := New()
	s.Spawn("short", func(co *Co) {})
	s.Spawn("long", func(co *Co) {
		for i := 0; i < 10; i++ {
			co.Yield()
		}
	})
	if s.Live() != 2 {
		t.Errorf("Live before run = %d", s.Live())
	}
	s.Tick()
	if s.Live() != 1 {
		t.Errorf("Live after one tick = %d", s.Live())
	}
	s.Run()
	if s.Live() != 0 {
		t.Errorf("Live after run = %d", s.Live())
	}
}

func TestKill(t *testing.T) {
	s := New()
	iterations := 0
	co := s.Spawn("victim", func(co *Co) {
		for {
			iterations++
			co.Yield()
		}
	})
	s.Tick()
	s.Tick()
	s.Kill(co)
	done := make(chan struct{})
	go func() {
		s.Run()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("killed costatement did not unwind")
	}
	if iterations != 2 {
		t.Errorf("iterations = %d, want 2", iterations)
	}
}

func TestKillAll(t *testing.T) {
	s := New()
	for i := 0; i < 4; i++ {
		s.Spawn("loop", func(co *Co) {
			for {
				co.Yield()
			}
		})
	}
	s.Tick()
	done := make(chan struct{})
	go func() {
		s.KillAll()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("KillAll hung")
	}
	if s.Live() != 0 {
		t.Errorf("Live after KillAll = %d", s.Live())
	}
}

func TestRunForDeadline(t *testing.T) {
	s := New()
	s.Spawn("forever", func(co *Co) {
		for {
			co.Yield()
		}
	})
	finished := s.RunFor(50 * time.Millisecond)
	if finished {
		t.Error("RunFor claimed completion of an infinite costatement")
	}
	s.KillAll()
}

func TestCofunc(t *testing.T) {
	s := New()
	// A cofunction that yields internally while computing.
	double := Cofunc[int, int](func(co *Co, x int) int {
		co.Yield()
		return x * 2
	})
	var got int
	s.Spawn("caller", func(co *Co) {
		got = double.Call(co, 21)
	})
	s.Spawn("other", func(co *Co) { co.Yield() })
	s.Run()
	if got != 42 {
		t.Errorf("cofunction result = %d", got)
	}
}

// The paper's Fig. 3 shape: N connection-handler costatements plus a
// driver. Verify handler slots interleave with the driver.
func TestFig3Shape(t *testing.T) {
	s := New()
	served := 0
	requests := []bool{false, false, false}
	for i := range requests {
		i := i
		s.Spawn("handler", func(co *Co) {
			co.WaitFor(func() bool { return requests[i] })
			served++
		})
	}
	tick := 0
	s.Spawn("driver", func(co *Co) {
		for served < 3 {
			// The driver "tcp_tick" eventually raises each request.
			if tick < len(requests) {
				requests[tick] = true
				tick++
			}
			co.Yield()
		}
	})
	if !s.RunFor(2 * time.Second) {
		t.Fatal("Fig. 3 scheduler did not converge")
	}
	if served != 3 {
		t.Errorf("served = %d, want 3", served)
	}
}
