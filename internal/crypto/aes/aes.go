// Package aes implements the Rijndael block cipher from scratch, in the
// configuration space the issl library exposed: key lengths of 128, 192
// or 256 bits AND block lengths of 128, 192 or 256 bits. (FIPS-197 AES
// is the Nb=4 subset.) The RMC2000 port described in the paper dropped
// everything but 128-bit keys and blocks; NewPorted constructs exactly
// that reduced profile.
//
// Two implementations coexist: a straightforward byte-oriented
// transliteration of the Rijndael specification — the same style as the
// portable C code the paper ported — and a precomputed T-table fast
// path (ttable.go) used for the FIPS-197 Nb=4 geometry that the issl
// record layer runs hot. The generic path remains the only
// implementation for 192/256-bit blocks and serves as the in-package
// oracle for the fast path. The hand-written Rabbit assembly
// counterpart lives in asm/aes128.asm and is exercised on the CPU
// simulator by the E1 benchmark.
package aes

import (
	"errors"
	"fmt"
)

// Block/key sizes in bytes accepted by New.
const (
	Size128 = 16
	Size192 = 24
	Size256 = 32
)

// Cipher is a Rijndael instance with a fixed key schedule.
// It is safe for concurrent use once created.
type Cipher struct {
	nb     int      // block size in 32-bit words (4, 6 or 8)
	nk     int      // key size in 32-bit words (4, 6 or 8)
	nr     int      // number of rounds
	rk     []uint32 // expanded key, (nr+1)*nb words
	drk    []uint32 // equivalent-inverse key for the Nb=4 T-table path
	shifts [4]int   // ShiftRows offsets per row
}

var (
	// ErrKeySize is returned for key lengths other than 16/24/32 bytes.
	ErrKeySize = errors.New("aes: invalid key size")
	// ErrBlockSize is returned for block lengths other than 16/24/32 bytes.
	ErrBlockSize = errors.New("aes: invalid block size")
)

// sbox and inverse sbox are generated at init from the GF(2^8)
// multiplicative inverse and the Rijndael affine transform, so they are
// correct by construction rather than by transcription.
var (
	sbox  [256]byte
	isbox [256]byte
)

func init() {
	// Build log/antilog tables over GF(2^8) with generator 3.
	var exp [256]byte
	var log [256]byte
	x := byte(1)
	for i := 0; i < 256; i++ {
		exp[i] = x
		log[x] = byte(i)
		// multiply x by 3 = x + x*2 in GF(2^8)
		x ^= xtime(x)
	}
	inv := func(b byte) byte {
		if b == 0 {
			return 0
		}
		return exp[(255-int(log[b]))%255]
	}
	for i := 0; i < 256; i++ {
		v := inv(byte(i))
		// affine transform: b ^ rot1(b) ^ rot2(b) ^ rot3(b) ^ rot4(b) ^ 0x63
		s := v ^ rotl8(v, 1) ^ rotl8(v, 2) ^ rotl8(v, 3) ^ rotl8(v, 4) ^ 0x63
		sbox[i] = s
		isbox[s] = byte(i)
	}
	initTables()
}

func rotl8(b byte, n uint) byte { return b<<n | b>>(8-n) }

// xtime multiplies by x (i.e. 2) in GF(2^8) modulo x^8+x^4+x^3+x+1.
func xtime(b byte) byte {
	if b&0x80 != 0 {
		return b<<1 ^ 0x1b
	}
	return b << 1
}

// gmul multiplies two field elements.
func gmul(a, b byte) byte {
	var p byte
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		a = xtime(a)
		b >>= 1
	}
	return p
}

// New creates a Rijndael cipher with the given key and block size in
// bytes. blockSize must be 16, 24 or 32; len(key) must be 16, 24 or 32.
func New(key []byte, blockSize int) (*Cipher, error) {
	nk, ok := words(len(key))
	if !ok {
		return nil, fmt.Errorf("%w: %d bytes", ErrKeySize, len(key))
	}
	nb, ok := words(blockSize)
	if !ok {
		return nil, fmt.Errorf("%w: %d bytes", ErrBlockSize, blockSize)
	}
	c := &Cipher{nb: nb, nk: nk}
	c.nr = max(nb, nk) + 6
	// ShiftRows offsets depend on block size (Rijndael spec, table 2).
	switch nb {
	case 8:
		c.shifts = [4]int{0, 1, 3, 4}
	default:
		c.shifts = [4]int{0, 1, 2, 3}
	}
	c.expandKey(key)
	return c, nil
}

// NewAES creates a FIPS-197 AES cipher (16-byte block) with a 16-, 24-
// or 32-byte key.
func NewAES(key []byte) (*Cipher, error) { return New(key, Size128) }

// NewPorted creates the cipher in the only configuration the RMC2000
// port retained: 128-bit key, 128-bit block. It panics on a wrong key
// length, mirroring the port's statically-sized buffers.
func NewPorted(key []byte) *Cipher {
	if len(key) != Size128 {
		panic("aes: ported profile requires a 16-byte key")
	}
	c, _ := New(key, Size128)
	return c
}

func words(n int) (int, bool) {
	switch n {
	case Size128:
		return 4, true
	case Size192:
		return 6, true
	case Size256:
		return 8, true
	}
	return 0, false
}

// BlockSize returns the cipher's block size in bytes.
func (c *Cipher) BlockSize() int { return c.nb * 4 }

// KeySize returns the cipher's key size in bytes.
func (c *Cipher) KeySize() int { return c.nk * 4 }

// Rounds returns the number of rounds (10–14 depending on sizes).
func (c *Cipher) Rounds() int { return c.nr }

func (c *Cipher) expandKey(key []byte) {
	total := (c.nr + 1) * c.nb
	c.rk = make([]uint32, total)
	for i := 0; i < c.nk; i++ {
		c.rk[i] = uint32(key[4*i])<<24 | uint32(key[4*i+1])<<16 |
			uint32(key[4*i+2])<<8 | uint32(key[4*i+3])
	}
	rcon := uint32(1)
	for i := c.nk; i < total; i++ {
		t := c.rk[i-1]
		switch {
		case i%c.nk == 0:
			t = subWord(rotWord(t)) ^ rcon<<24
			rcon = uint32(xtime(byte(rcon)))
		case c.nk > 6 && i%c.nk == 4:
			t = subWord(t)
		}
		c.rk[i] = c.rk[i-c.nk] ^ t
	}
	if c.nb == 4 {
		c.expandDecKey()
	}
}

func rotWord(w uint32) uint32 { return w<<8 | w>>24 }

func subWord(w uint32) uint32 {
	return uint32(sbox[w>>24])<<24 | uint32(sbox[w>>16&0xff])<<16 |
		uint32(sbox[w>>8&0xff])<<8 | uint32(sbox[w&0xff])
}

// Encrypt encrypts exactly one block from src into dst.
// dst and src may overlap. It panics if either is shorter than BlockSize.
func (c *Cipher) Encrypt(dst, src []byte) {
	bs := c.BlockSize()
	if len(src) < bs || len(dst) < bs {
		panic("aes: input not full block")
	}
	if c.nb == 4 {
		c.encryptBlock4(dst, src)
		return
	}
	c.encryptGeneric(dst, src)
}

// encryptGeneric is the byte-oriented spec transliteration, used for
// the big Rijndael blocks and as the T-table path's oracle.
func (c *Cipher) encryptGeneric(dst, src []byte) {
	bs := c.BlockSize()
	var st [32]byte // column-major state, 4 rows x nb cols
	copy(st[:], src[:bs])
	c.addRoundKey(&st, 0)
	for round := 1; round < c.nr; round++ {
		c.subBytes(&st)
		c.shiftRows(&st)
		c.mixColumns(&st)
		c.addRoundKey(&st, round)
	}
	c.subBytes(&st)
	c.shiftRows(&st)
	c.addRoundKey(&st, c.nr)
	copy(dst[:bs], st[:bs])
}

// Decrypt decrypts exactly one block from src into dst.
func (c *Cipher) Decrypt(dst, src []byte) {
	bs := c.BlockSize()
	if len(src) < bs || len(dst) < bs {
		panic("aes: input not full block")
	}
	if c.nb == 4 {
		c.decryptBlock4(dst, src)
		return
	}
	c.decryptGeneric(dst, src)
}

// decryptGeneric is the byte-oriented inverse cipher.
func (c *Cipher) decryptGeneric(dst, src []byte) {
	bs := c.BlockSize()
	var st [32]byte
	copy(st[:], src[:bs])
	c.addRoundKey(&st, c.nr)
	c.invShiftRows(&st)
	c.invSubBytes(&st)
	for round := c.nr - 1; round > 0; round-- {
		c.addRoundKey(&st, round)
		c.invMixColumns(&st)
		c.invShiftRows(&st)
		c.invSubBytes(&st)
	}
	c.addRoundKey(&st, 0)
	copy(dst[:bs], st[:bs])
}

func (c *Cipher) addRoundKey(st *[32]byte, round int) {
	base := round * c.nb
	for col := 0; col < c.nb; col++ {
		w := c.rk[base+col]
		st[4*col] ^= byte(w >> 24)
		st[4*col+1] ^= byte(w >> 16)
		st[4*col+2] ^= byte(w >> 8)
		st[4*col+3] ^= byte(w)
	}
}

func (c *Cipher) subBytes(st *[32]byte) {
	for i := 0; i < c.nb*4; i++ {
		st[i] = sbox[st[i]]
	}
}

func (c *Cipher) invSubBytes(st *[32]byte) {
	for i := 0; i < c.nb*4; i++ {
		st[i] = isbox[st[i]]
	}
}

func (c *Cipher) shiftRows(st *[32]byte) {
	var tmp [8]byte
	for row := 1; row < 4; row++ {
		s := c.shifts[row]
		for col := 0; col < c.nb; col++ {
			tmp[col] = st[4*((col+s)%c.nb)+row]
		}
		for col := 0; col < c.nb; col++ {
			st[4*col+row] = tmp[col]
		}
	}
}

func (c *Cipher) invShiftRows(st *[32]byte) {
	var tmp [8]byte
	for row := 1; row < 4; row++ {
		s := c.shifts[row]
		for col := 0; col < c.nb; col++ {
			tmp[(col+s)%c.nb] = st[4*col+row]
		}
		for col := 0; col < c.nb; col++ {
			st[4*col+row] = tmp[col]
		}
	}
}

func (c *Cipher) mixColumns(st *[32]byte) {
	for col := 0; col < c.nb; col++ {
		a0, a1, a2, a3 := st[4*col], st[4*col+1], st[4*col+2], st[4*col+3]
		st[4*col] = gmul(a0, 2) ^ gmul(a1, 3) ^ a2 ^ a3
		st[4*col+1] = a0 ^ gmul(a1, 2) ^ gmul(a2, 3) ^ a3
		st[4*col+2] = a0 ^ a1 ^ gmul(a2, 2) ^ gmul(a3, 3)
		st[4*col+3] = gmul(a0, 3) ^ a1 ^ a2 ^ gmul(a3, 2)
	}
}

func (c *Cipher) invMixColumns(st *[32]byte) {
	for col := 0; col < c.nb; col++ {
		a0, a1, a2, a3 := st[4*col], st[4*col+1], st[4*col+2], st[4*col+3]
		st[4*col] = gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^ gmul(a3, 9)
		st[4*col+1] = gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^ gmul(a3, 13)
		st[4*col+2] = gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^ gmul(a3, 11)
		st[4*col+3] = gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^ gmul(a3, 14)
	}
}
