package aes

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

// FIPS-197 Appendix C vectors (Nb=4).
var fipsVectors = []struct {
	key, plain, cipher string
}{
	{
		"000102030405060708090a0b0c0d0e0f",
		"00112233445566778899aabbccddeeff",
		"69c4e0d86a7b0430d8cdb78070b4c55a",
	},
	{
		"000102030405060708090a0b0c0d0e0f1011121314151617",
		"00112233445566778899aabbccddeeff",
		"dda97ca4864cdfe06eaf70a0ec0d7191",
	},
	{
		"000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
		"00112233445566778899aabbccddeeff",
		"8ea2b7ca516745bfeafc49904b496089",
	},
}

func TestFIPS197Vectors(t *testing.T) {
	for _, v := range fipsVectors {
		key := unhex(t, v.key)
		c, err := NewAES(key)
		if err != nil {
			t.Fatalf("NewAES(%d bytes): %v", len(key), err)
		}
		got := make([]byte, 16)
		c.Encrypt(got, unhex(t, v.plain))
		if want := unhex(t, v.cipher); !bytes.Equal(got, want) {
			t.Errorf("key %s: encrypt = %x, want %x", v.key, got, want)
		}
		back := make([]byte, 16)
		c.Decrypt(back, got)
		if want := unhex(t, v.plain); !bytes.Equal(back, want) {
			t.Errorf("key %s: decrypt = %x, want %x", v.key, back, want)
		}
	}
}

// FIPS-197 Appendix B vector exercises a different key/plaintext pair.
func TestFIPS197AppendixB(t *testing.T) {
	c, err := NewAES(unhex(t, "2b7e151628aed2a6abf7158809cf4f3c"))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	c.Encrypt(got, unhex(t, "3243f6a8885a308d313198a2e0370734"))
	if want := unhex(t, "3925841d02dc09fbdc118597196a0b32"); !bytes.Equal(got, want) {
		t.Errorf("encrypt = %x, want %x", got, want)
	}
}

func TestRoundCounts(t *testing.T) {
	cases := []struct {
		keyLen, blockLen, rounds int
	}{
		{16, 16, 10}, {24, 16, 12}, {32, 16, 14},
		{16, 24, 12}, {24, 24, 12}, {32, 24, 14},
		{16, 32, 14}, {24, 32, 14}, {32, 32, 14},
	}
	for _, tc := range cases {
		c, err := New(make([]byte, tc.keyLen), tc.blockLen)
		if err != nil {
			t.Fatalf("New(%d,%d): %v", tc.keyLen, tc.blockLen, err)
		}
		if c.Rounds() != tc.rounds {
			t.Errorf("key %d block %d: rounds = %d, want %d",
				tc.keyLen, tc.blockLen, c.Rounds(), tc.rounds)
		}
	}
}

func TestInvalidSizes(t *testing.T) {
	if _, err := New(make([]byte, 15), 16); err == nil {
		t.Error("15-byte key accepted")
	}
	if _, err := New(make([]byte, 16), 20); err == nil {
		t.Error("20-byte block accepted")
	}
	if _, err := New(nil, 16); err == nil {
		t.Error("nil key accepted")
	}
}

func TestNewPortedPanicsOnWrongKey(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPorted with 24-byte key did not panic")
		}
	}()
	NewPorted(make([]byte, 24))
}

// TestRoundTripAllConfigs checks decrypt(encrypt(p)) == p across the
// full issl configuration space, including the big-block Rijndael
// variants that stdlib AES does not cover.
func TestRoundTripAllConfigs(t *testing.T) {
	for _, keyLen := range []int{16, 24, 32} {
		for _, blockLen := range []int{16, 24, 32} {
			key := make([]byte, keyLen)
			for i := range key {
				key[i] = byte(i*7 + 3)
			}
			c, err := New(key, blockLen)
			if err != nil {
				t.Fatal(err)
			}
			plain := make([]byte, blockLen)
			for i := range plain {
				plain[i] = byte(i * 13)
			}
			ct := make([]byte, blockLen)
			pt := make([]byte, blockLen)
			c.Encrypt(ct, plain)
			if bytes.Equal(ct, plain) {
				t.Errorf("key %d block %d: ciphertext equals plaintext", keyLen, blockLen)
			}
			c.Decrypt(pt, ct)
			if !bytes.Equal(pt, plain) {
				t.Errorf("key %d block %d: round trip failed", keyLen, blockLen)
			}
		}
	}
}

// Property: for random keys and blocks, Decrypt inverts Encrypt (AES-128).
func TestQuickRoundTrip128(t *testing.T) {
	f := func(key [16]byte, plain [16]byte) bool {
		c, err := NewAES(key[:])
		if err != nil {
			return false
		}
		var ct, pt [16]byte
		c.Encrypt(ct[:], plain[:])
		c.Decrypt(pt[:], ct[:])
		return pt == plain
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: encryption is injective — distinct plaintexts give distinct
// ciphertexts under the same key.
func TestQuickInjective(t *testing.T) {
	f := func(key, p1, p2 [16]byte) bool {
		c, _ := NewAES(key[:])
		var c1, c2 [16]byte
		c.Encrypt(c1[:], p1[:])
		c.Encrypt(c2[:], p2[:])
		return (p1 == p2) == (c1 == c2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: flipping any single key bit changes the ciphertext (key
// avalanche, weak form).
func TestKeyAvalanche(t *testing.T) {
	key := unhex(t, "000102030405060708090a0b0c0d0e0f")
	plain := unhex(t, "00112233445566778899aabbccddeeff")
	base, _ := NewAES(key)
	ref := make([]byte, 16)
	base.Encrypt(ref, plain)
	for bit := 0; bit < 128; bit++ {
		k2 := make([]byte, 16)
		copy(k2, key)
		k2[bit/8] ^= 1 << (bit % 8)
		c2, _ := NewAES(k2)
		got := make([]byte, 16)
		c2.Encrypt(got, plain)
		if bytes.Equal(got, ref) {
			t.Errorf("flipping key bit %d left ciphertext unchanged", bit)
		}
	}
}

func TestSboxInverse(t *testing.T) {
	for i := 0; i < 256; i++ {
		if isbox[sbox[i]] != byte(i) {
			t.Fatalf("isbox[sbox[%#x]] = %#x", i, isbox[sbox[i]])
		}
	}
	// Spot-check spec values.
	if sbox[0x00] != 0x63 || sbox[0x53] != 0xed || sbox[0xff] != 0x16 {
		t.Errorf("sbox spot values wrong: %#x %#x %#x", sbox[0x00], sbox[0x53], sbox[0xff])
	}
}

func TestCBCRoundTrip(t *testing.T) {
	c, _ := NewAES(unhex(t, "2b7e151628aed2a6abf7158809cf4f3c"))
	iv := unhex(t, "000102030405060708090a0b0c0d0e0f")
	msg := []byte("the secure redirector forwards this message verbatim")
	padded := c.Pad(msg)
	ct, err := c.EncryptCBC(iv, padded)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := c.DecryptCBC(iv, ct)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Unpad(pt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, msg) {
		t.Errorf("CBC round trip = %q, want %q", out, msg)
	}
}

// NIST SP 800-38A F.2.1 CBC-AES128 vector.
func TestCBCVector(t *testing.T) {
	c, _ := NewAES(unhex(t, "2b7e151628aed2a6abf7158809cf4f3c"))
	iv := unhex(t, "000102030405060708090a0b0c0d0e0f")
	plain := unhex(t, "6bc1bee22e409f96e93d7e117393172a")
	want := unhex(t, "7649abac8119b246cee98e9b12e9197d")
	got, err := c.EncryptCBC(iv, plain)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("CBC = %x, want %x", got, want)
	}
}

// NIST SP 800-38A F.5.1 CTR-AES128 vector (first block).
func TestCTRVector(t *testing.T) {
	c, _ := NewAES(unhex(t, "2b7e151628aed2a6abf7158809cf4f3c"))
	nonce := unhex(t, "f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
	plain := unhex(t, "6bc1bee22e409f96e93d7e117393172a")
	want := unhex(t, "874d6191b620e3261bef6864990db6ce")
	got, err := c.CTR(nonce, plain)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("CTR = %x, want %x", got, want)
	}
}

func TestCTRIsInvolution(t *testing.T) {
	c, _ := NewAES(make([]byte, 16))
	nonce := make([]byte, 16)
	data := []byte("short")
	ct, _ := c.CTR(nonce, data)
	pt, _ := c.CTR(nonce, ct)
	if !bytes.Equal(pt, data) {
		t.Errorf("CTR twice = %q, want %q", pt, data)
	}
}

func TestPaddingProperties(t *testing.T) {
	c, _ := NewAES(make([]byte, 16))
	f := func(data []byte) bool {
		p := c.Pad(data)
		if len(p)%16 != 0 || len(p) == len(data) {
			return false
		}
		u, err := c.Unpad(p)
		return err == nil && bytes.Equal(u, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnpadRejectsCorrupt(t *testing.T) {
	c, _ := NewAES(make([]byte, 16))
	cases := [][]byte{
		nil,
		make([]byte, 15),             // not block multiple
		append(make([]byte, 15), 0),  // zero pad byte
		append(make([]byte, 15), 17), // pad longer than block
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 3, 2}, // inconsistent
	}
	for i, bad := range cases {
		if _, err := c.Unpad(bad); err == nil {
			t.Errorf("case %d: corrupt padding accepted", i)
		}
	}
}

func TestCBCRejectsBadLengths(t *testing.T) {
	c, _ := NewAES(make([]byte, 16))
	if _, err := c.EncryptCBC(make([]byte, 8), make([]byte, 16)); err == nil {
		t.Error("short IV accepted")
	}
	if _, err := c.EncryptCBC(make([]byte, 16), make([]byte, 17)); err == nil {
		t.Error("ragged plaintext accepted")
	}
	if _, err := c.DecryptCBC(make([]byte, 16), make([]byte, 15)); err == nil {
		t.Error("ragged ciphertext accepted")
	}
}

func BenchmarkEncrypt128(b *testing.B) {
	c, _ := NewAES(make([]byte, 16))
	src := make([]byte, 16)
	dst := make([]byte, 16)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.Encrypt(dst, src)
	}
}

func BenchmarkEncrypt256Block256(b *testing.B) {
	c, _ := New(make([]byte, 32), 32)
	src := make([]byte, 32)
	dst := make([]byte, 32)
	b.SetBytes(32)
	for i := 0; i < b.N; i++ {
		c.Encrypt(dst, src)
	}
}
