package aes

import (
	"errors"
	"fmt"
)

// This file provides the block-cipher modes the issl record layer uses:
// CBC for records, CTR for key-stream needs, and PKCS#7-style padding.

// ErrPadding is returned when CBC padding fails to verify on decryption.
var ErrPadding = errors.New("aes: bad padding")

// Pad appends PKCS#7-style padding up to the cipher's block size.
// It always appends at least one byte.
func (c *Cipher) Pad(data []byte) []byte {
	bs := c.BlockSize()
	n := bs - len(data)%bs
	out := make([]byte, len(data)+n)
	copy(out, data)
	for i := len(data); i < len(out); i++ {
		out[i] = byte(n)
	}
	return out
}

// Unpad removes PKCS#7-style padding, verifying every pad byte.
func (c *Cipher) Unpad(data []byte) ([]byte, error) {
	bs := c.BlockSize()
	if len(data) == 0 || len(data)%bs != 0 {
		return nil, ErrPadding
	}
	n := int(data[len(data)-1])
	if n == 0 || n > bs || n > len(data) {
		return nil, ErrPadding
	}
	for _, b := range data[len(data)-n:] {
		if int(b) != n {
			return nil, ErrPadding
		}
	}
	return data[:len(data)-n], nil
}

// EncryptCBC encrypts plaintext (already padded to a whole number of
// blocks) under the given IV. The IV must be one block long.
func (c *Cipher) EncryptCBC(iv, plaintext []byte) ([]byte, error) {
	out := make([]byte, len(plaintext))
	copy(out, plaintext)
	if err := c.EncryptCBCInPlace(iv, out); err != nil {
		return nil, err
	}
	return out, nil
}

// EncryptCBCInPlace encrypts buf (a whole number of blocks) in place
// under the given IV, allocating nothing. This is the record-layer
// fast path: the whole buffer is chained block to block without any
// per-block scratch.
func (c *Cipher) EncryptCBCInPlace(iv, buf []byte) error {
	bs := c.BlockSize()
	if len(iv) != bs {
		return fmt.Errorf("aes: IV must be %d bytes, got %d", bs, len(iv))
	}
	if len(buf)%bs != 0 {
		return fmt.Errorf("aes: CBC plaintext length %d not a multiple of %d", len(buf), bs)
	}
	prev := iv
	for off := 0; off < len(buf); off += bs {
		blk := buf[off : off+bs]
		for i := 0; i < bs; i++ {
			blk[i] ^= prev[i]
		}
		c.Encrypt(blk, blk)
		prev = blk
	}
	return nil
}

// DecryptCBC reverses EncryptCBC.
func (c *Cipher) DecryptCBC(iv, ciphertext []byte) ([]byte, error) {
	out := make([]byte, len(ciphertext))
	copy(out, ciphertext)
	if err := c.DecryptCBCInPlace(iv, out); err != nil {
		return nil, err
	}
	return out, nil
}

// DecryptCBCInPlace reverses EncryptCBCInPlace, decrypting buf in
// place with only stack scratch for the ciphertext chain.
func (c *Cipher) DecryptCBCInPlace(iv, buf []byte) error {
	bs := c.BlockSize()
	if len(iv) != bs {
		return fmt.Errorf("aes: IV must be %d bytes, got %d", bs, len(iv))
	}
	if len(buf)%bs != 0 {
		return fmt.Errorf("aes: CBC ciphertext length %d not a multiple of %d", len(buf), bs)
	}
	var prev, cur [32]byte // block is at most 32 bytes
	copy(prev[:bs], iv)
	for off := 0; off < len(buf); off += bs {
		blk := buf[off : off+bs]
		copy(cur[:bs], blk)
		c.Decrypt(blk, blk)
		for i := 0; i < bs; i++ {
			blk[i] ^= prev[i]
		}
		prev = cur
	}
	return nil
}

// CTR returns a keystream XOR of data under a counter starting at the
// given nonce block. Encryption and decryption are the same operation.
func (c *Cipher) CTR(nonce, data []byte) ([]byte, error) {
	bs := c.BlockSize()
	if len(nonce) != bs {
		return nil, fmt.Errorf("aes: nonce must be %d bytes, got %d", bs, len(nonce))
	}
	ctr := make([]byte, bs)
	copy(ctr, nonce)
	ks := make([]byte, bs)
	out := make([]byte, len(data))
	for off := 0; off < len(data); off += bs {
		c.Encrypt(ks, ctr)
		n := min(bs, len(data)-off)
		for i := 0; i < n; i++ {
			out[off+i] = data[off+i] ^ ks[i]
		}
		// big-endian increment
		for i := bs - 1; i >= 0; i-- {
			ctr[i]++
			if ctr[i] != 0 {
				break
			}
		}
	}
	return out, nil
}
