package aes

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/race"
)

// cbcEncryptGeneric is CBC over the byte-oriented reference cipher —
// the seed kernel's exact data path, kept for equivalence tests and
// the before/after benchmarks.
func cbcEncryptGeneric(c *Cipher, iv, plaintext []byte) []byte {
	bs := c.BlockSize()
	out := make([]byte, len(plaintext))
	prev := iv
	for off := 0; off < len(plaintext); off += bs {
		blk := make([]byte, bs)
		for i := 0; i < bs; i++ {
			blk[i] = plaintext[off+i] ^ prev[i]
		}
		c.encryptGeneric(out[off:off+bs], blk)
		prev = out[off : off+bs]
	}
	return out
}

// TestTTableMatchesGeneric diffs the T-table fast path against the
// byte-oriented spec transliteration over 10k seeded vectors for every
// FIPS key size, both directions.
func TestTTableMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 10_000; i++ {
		keyLen := []int{16, 24, 32}[i%3]
		key := make([]byte, keyLen)
		rng.Read(key)
		c, err := NewAES(key)
		if err != nil {
			t.Fatal(err)
		}
		pt := make([]byte, 16)
		rng.Read(pt)
		fast, ref := make([]byte, 16), make([]byte, 16)
		c.encryptBlock4(fast, pt)
		c.encryptGeneric(ref, pt)
		if !bytes.Equal(fast, ref) {
			t.Fatalf("vector %d (key %d): encrypt ttable %x != generic %x", i, keyLen*8, fast, ref)
		}
		back, backRef := make([]byte, 16), make([]byte, 16)
		c.decryptBlock4(back, ref)
		c.decryptGeneric(backRef, ref)
		if !bytes.Equal(back, backRef) {
			t.Fatalf("vector %d (key %d): decrypt ttable %x != generic %x", i, keyLen*8, back, backRef)
		}
		if !bytes.Equal(back, pt) {
			t.Fatalf("vector %d: round trip lost the plaintext", i)
		}
	}
}

// TestCBCInPlaceMatchesAllocating checks the in-place whole-buffer CBC
// against both the allocating API and the seed kernel's per-block path.
func TestCBCInPlaceMatchesAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 2_000; i++ {
		key := make([]byte, 16)
		iv := make([]byte, 16)
		rng.Read(key)
		rng.Read(iv)
		c, _ := NewAES(key)
		pt := make([]byte, 16*(1+rng.Intn(8)))
		rng.Read(pt)

		want := cbcEncryptGeneric(c, iv, pt)
		buf := append([]byte(nil), pt...)
		if err := c.EncryptCBCInPlace(iv, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("vector %d: in-place CBC != generic CBC", i)
		}
		if err := c.DecryptCBCInPlace(iv, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, pt) {
			t.Fatalf("vector %d: CBC decrypt in place lost the plaintext", i)
		}
	}
}

// TestCBCFastPathZeroAlloc pins the record-layer contract: whole-buffer
// CBC in either direction allocates nothing.
func TestCBCFastPathZeroAlloc(t *testing.T) {
	if race.Enabled {
		t.Skip("AllocsPerRun is not meaningful under the race detector")
	}
	key := make([]byte, 16)
	iv := make([]byte, 16)
	c, _ := NewAES(key)
	buf := make([]byte, 4096)
	if n := testing.AllocsPerRun(50, func() {
		c.EncryptCBCInPlace(iv, buf)
	}); n != 0 {
		t.Errorf("EncryptCBCInPlace allocates %v per call, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() {
		c.DecryptCBCInPlace(iv, buf)
	}); n != 0 {
		t.Errorf("DecryptCBCInPlace allocates %v per call, want 0", n)
	}
}

func benchCipher(b *testing.B) *Cipher {
	b.Helper()
	key := make([]byte, 16)
	for i := range key {
		key[i] = byte(i)
	}
	c, err := NewAES(key)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func BenchmarkEncryptTTable(b *testing.B) {
	c := benchCipher(b)
	blk := make([]byte, 16)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.encryptBlock4(blk, blk)
	}
}

func BenchmarkEncryptGeneric(b *testing.B) {
	c := benchCipher(b)
	blk := make([]byte, 16)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.encryptGeneric(blk, blk)
	}
}

func BenchmarkCBCEncryptFast_4K(b *testing.B) {
	c := benchCipher(b)
	iv := make([]byte, 16)
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		c.EncryptCBCInPlace(iv, buf)
	}
}

func BenchmarkCBCEncryptGeneric_4K(b *testing.B) {
	c := benchCipher(b)
	iv := make([]byte, 16)
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		cbcEncryptGeneric(c, iv, buf)
	}
}

func BenchmarkCBCDecryptFast_4K(b *testing.B) {
	c := benchCipher(b)
	iv := make([]byte, 16)
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		c.DecryptCBCInPlace(iv, buf)
	}
}
