package aes

// T-table fast path for the FIPS-197 geometry (Nb=4, the only block
// size the issl record layer runs hot). The four 256-entry tables fold
// SubBytes, ShiftRows and MixColumns into one lookup+XOR per state
// byte per round — the same transformation the paper applied by hand
// in Rabbit assembly, done here at the Go level. Tables are generated
// at init from the same GF(2^8) arithmetic as the S-boxes, so they are
// correct by construction; the byte-oriented spec transliteration in
// aes.go remains both the fallback for the big Rijndael blocks and the
// in-package oracle the tests diff against.

var (
	te0, te1, te2, te3 [256]uint32 // encryption: MixColumns∘SubBytes
	td0, td1, td2, td3 [256]uint32 // decryption: InvMixColumns∘InvSubBytes
)

// initTables is called from the package init in aes.go, after the
// S-boxes are built.
func initTables() {
	rotr8 := func(w uint32) uint32 { return w>>8 | w<<24 }
	for x := 0; x < 256; x++ {
		s := sbox[x]
		e := uint32(gmul(s, 2))<<24 | uint32(s)<<16 | uint32(s)<<8 | uint32(gmul(s, 3))
		te0[x] = e
		te1[x] = rotr8(e)
		te2[x] = rotr8(te1[x])
		te3[x] = rotr8(te2[x])

		si := isbox[x]
		d := uint32(gmul(si, 14))<<24 | uint32(gmul(si, 9))<<16 |
			uint32(gmul(si, 13))<<8 | uint32(gmul(si, 11))
		td0[x] = d
		td1[x] = rotr8(d)
		td2[x] = rotr8(td1[x])
		td3[x] = rotr8(td2[x])
	}
}

// expandDecKey derives the equivalent-inverse-cipher round keys for
// the Nb=4 decrypt fast path: the encryption schedule reversed, with
// InvMixColumns applied to every middle round key. InvMixColumns(w)
// is td0[sbox[·]]^… because td0∘sbox strips the InvSubBytes baked into
// the table. Called from expandKey when nb == 4.
func (c *Cipher) expandDecKey() {
	n := (c.nr + 1) * 4
	c.drk = make([]uint32, n)
	for i := 0; i < n; i += 4 {
		ei := n - i - 4
		for j := 0; j < 4; j++ {
			x := c.rk[ei+j]
			if i > 0 && i+4 < n {
				x = td0[sbox[x>>24]] ^ td1[sbox[x>>16&0xff]] ^
					td2[sbox[x>>8&0xff]] ^ td3[sbox[x&0xff]]
			}
			c.drk[i+j] = x
		}
	}
}

func be32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func put32(b []byte, w uint32) {
	b[0] = byte(w >> 24)
	b[1] = byte(w >> 16)
	b[2] = byte(w >> 8)
	b[3] = byte(w)
}

// encryptBlock4 encrypts one 16-byte block with the T-tables.
// dst and src may overlap. Allocation-free.
func (c *Cipher) encryptBlock4(dst, src []byte) {
	rk := c.rk
	s0 := be32(src[0:4]) ^ rk[0]
	s1 := be32(src[4:8]) ^ rk[1]
	s2 := be32(src[8:12]) ^ rk[2]
	s3 := be32(src[12:16]) ^ rk[3]

	k := 4
	for r := 1; r < c.nr; r++ {
		t0 := rk[k] ^ te0[s0>>24] ^ te1[s1>>16&0xff] ^ te2[s2>>8&0xff] ^ te3[s3&0xff]
		t1 := rk[k+1] ^ te0[s1>>24] ^ te1[s2>>16&0xff] ^ te2[s3>>8&0xff] ^ te3[s0&0xff]
		t2 := rk[k+2] ^ te0[s2>>24] ^ te1[s3>>16&0xff] ^ te2[s0>>8&0xff] ^ te3[s1&0xff]
		t3 := rk[k+3] ^ te0[s3>>24] ^ te1[s0>>16&0xff] ^ te2[s1>>8&0xff] ^ te3[s2&0xff]
		s0, s1, s2, s3 = t0, t1, t2, t3
		k += 4
	}
	// Final round: SubBytes + ShiftRows, no MixColumns.
	o0 := uint32(sbox[s0>>24])<<24 | uint32(sbox[s1>>16&0xff])<<16 |
		uint32(sbox[s2>>8&0xff])<<8 | uint32(sbox[s3&0xff])
	o1 := uint32(sbox[s1>>24])<<24 | uint32(sbox[s2>>16&0xff])<<16 |
		uint32(sbox[s3>>8&0xff])<<8 | uint32(sbox[s0&0xff])
	o2 := uint32(sbox[s2>>24])<<24 | uint32(sbox[s3>>16&0xff])<<16 |
		uint32(sbox[s0>>8&0xff])<<8 | uint32(sbox[s1&0xff])
	o3 := uint32(sbox[s3>>24])<<24 | uint32(sbox[s0>>16&0xff])<<16 |
		uint32(sbox[s1>>8&0xff])<<8 | uint32(sbox[s2&0xff])
	put32(dst[0:4], o0^rk[k])
	put32(dst[4:8], o1^rk[k+1])
	put32(dst[8:12], o2^rk[k+2])
	put32(dst[12:16], o3^rk[k+3])
}

// decryptBlock4 decrypts one 16-byte block with the T-tables and the
// equivalent-inverse round keys. dst and src may overlap.
func (c *Cipher) decryptBlock4(dst, src []byte) {
	dk := c.drk
	s0 := be32(src[0:4]) ^ dk[0]
	s1 := be32(src[4:8]) ^ dk[1]
	s2 := be32(src[8:12]) ^ dk[2]
	s3 := be32(src[12:16]) ^ dk[3]

	k := 4
	for r := 1; r < c.nr; r++ {
		t0 := dk[k] ^ td0[s0>>24] ^ td1[s3>>16&0xff] ^ td2[s2>>8&0xff] ^ td3[s1&0xff]
		t1 := dk[k+1] ^ td0[s1>>24] ^ td1[s0>>16&0xff] ^ td2[s3>>8&0xff] ^ td3[s2&0xff]
		t2 := dk[k+2] ^ td0[s2>>24] ^ td1[s1>>16&0xff] ^ td2[s0>>8&0xff] ^ td3[s3&0xff]
		t3 := dk[k+3] ^ td0[s3>>24] ^ td1[s2>>16&0xff] ^ td2[s1>>8&0xff] ^ td3[s0&0xff]
		s0, s1, s2, s3 = t0, t1, t2, t3
		k += 4
	}
	o0 := uint32(isbox[s0>>24])<<24 | uint32(isbox[s3>>16&0xff])<<16 |
		uint32(isbox[s2>>8&0xff])<<8 | uint32(isbox[s1&0xff])
	o1 := uint32(isbox[s1>>24])<<24 | uint32(isbox[s0>>16&0xff])<<16 |
		uint32(isbox[s3>>8&0xff])<<8 | uint32(isbox[s2&0xff])
	o2 := uint32(isbox[s2>>24])<<24 | uint32(isbox[s1>>16&0xff])<<16 |
		uint32(isbox[s0>>8&0xff])<<8 | uint32(isbox[s3&0xff])
	o3 := uint32(isbox[s3>>24])<<24 | uint32(isbox[s2>>16&0xff])<<16 |
		uint32(isbox[s1>>8&0xff])<<8 | uint32(isbox[s0&0xff])
	put32(dst[0:4], o0^dk[k])
	put32(dst[4:8], o1^dk[k+1])
	put32(dst[8:12], o2^dk[k+2])
	put32(dst[12:16], o3^dk[k+3])
}
