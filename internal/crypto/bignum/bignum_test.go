package bignum

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestFromUint64RoundTrip(t *testing.T) {
	f := func(v uint64) bool { return FromUint64(v).Uint64() == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	f := func(b []byte) bool {
		x := FromBytes(b)
		// strip leading zeros for comparison
		i := 0
		for i < len(b) && b[i] == 0 {
			i++
		}
		return bytes.Equal(x.Bytes(), b[i:]) ||
			(len(b[i:]) == 0 && len(x.Bytes()) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFillBytes(t *testing.T) {
	x := FromUint64(0x1234)
	buf := x.FillBytes(make([]byte, 4))
	if !bytes.Equal(buf, []byte{0, 0, 0x12, 0x34}) {
		t.Errorf("FillBytes = %x", buf)
	}
	defer func() {
		if recover() == nil {
			t.Error("FillBytes into too-small buffer did not panic")
		}
	}()
	x.FillBytes(make([]byte, 1))
}

func TestAddSubAgainstUint64(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := FromUint64(uint64(a)), FromUint64(uint64(b))
		if x.Add(y).Uint64() != uint64(a)+uint64(b) {
			return false
		}
		hi, lo := x, y
		if a < b {
			hi, lo = y, x
		}
		want := uint64(a) - uint64(b)
		if a < b {
			want = uint64(b) - uint64(a)
		}
		return hi.Sub(lo).Uint64() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulAgainstUint64(t *testing.T) {
	f := func(a, b uint32) bool {
		return FromUint64(uint64(a)).Mul(FromUint64(uint64(b))).Uint64() ==
			uint64(a)*uint64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Sub with larger subtrahend did not panic")
		}
	}()
	FromUint64(1).Sub(FromUint64(2))
}

// Division invariant: x = q*y + r with 0 <= r < y, for large operands.
func TestDivModInvariant(t *testing.T) {
	f := func(xb, yb []byte) bool {
		x, y := FromBytes(xb), FromBytes(yb)
		if y.IsZero() {
			_, _, err := x.DivMod(y)
			return err == ErrDivByZero
		}
		q, r, err := x.DivMod(y)
		if err != nil {
			return false
		}
		if r.Cmp(y) >= 0 {
			return false
		}
		return q.Mul(y).Add(r).Cmp(x) == 0
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Regression shapes for Algorithm D edge cases: qhat overestimates,
// add-back path, top-limb boundaries.
func TestDivModEdges(t *testing.T) {
	cases := []struct{ x, y string }{
		{"340282366920938463463374607431768211455", "18446744073709551615"}, // 2^128-1 / 2^64-1
		{"340282366920938463463374607431768211456", "18446744073709551616"}, // 2^128 / 2^64
		{"115792089237316195423570985008687907853269984665640564039457584007913129639935", "340282366920938463463374607431768211457"},
		{"6277101735386680763835789423207666416102355444464034512896", "79228162514264337593543950336"},
		{"1000000000000000000000000000000000001", "999999999999999999"},
	}
	for _, tc := range cases {
		x, y := MustDecimal(tc.x), MustDecimal(tc.y)
		q, r, err := x.DivMod(y)
		if err != nil {
			t.Fatalf("%s / %s: %v", tc.x, tc.y, err)
		}
		if q.Mul(y).Add(r).Cmp(x) != 0 || r.Cmp(y) >= 0 {
			t.Errorf("%s / %s: invariant broken (q=%s r=%s)", tc.x, tc.y, q, r)
		}
	}
}

func TestShiftInverse(t *testing.T) {
	f := func(b []byte, nRaw uint8) bool {
		n := int(nRaw % 100)
		x := FromBytes(b)
		return x.Shl(n).Shr(n).Cmp(x) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShlIsMulByPowerOfTwo(t *testing.T) {
	x := MustDecimal("123456789012345678901234567890")
	if x.Shl(7).Cmp(x.Mul(FromUint64(128))) != 0 {
		t.Error("Shl(7) != Mul(128)")
	}
}

func TestBitLenAndBit(t *testing.T) {
	if Zero().BitLen() != 0 {
		t.Error("BitLen(0) != 0")
	}
	x := FromUint64(0x8001)
	if x.BitLen() != 16 {
		t.Errorf("BitLen(0x8001) = %d", x.BitLen())
	}
	if x.Bit(0) != 1 || x.Bit(15) != 1 || x.Bit(1) != 0 || x.Bit(64) != 0 {
		t.Error("Bit values wrong")
	}
}

func TestModExpSmall(t *testing.T) {
	// 4^13 mod 497 = 445 (classic example)
	got := FromUint64(4).ModExp(FromUint64(13), FromUint64(497))
	if got.Uint64() != 445 {
		t.Errorf("4^13 mod 497 = %s, want 445", got)
	}
	// Fermat: a^(p-1) mod p == 1 for prime p not dividing a
	p := FromUint64(1000003)
	for _, a := range []uint64{2, 3, 5, 123456} {
		if FromUint64(a).ModExp(p.Sub(One()), p).Uint64() != 1 {
			t.Errorf("Fermat failed for a=%d", a)
		}
	}
}

func TestModExpLarge(t *testing.T) {
	// 2^(2^127-1 - 1) mod (2^127-1) == 1 (Mersenne prime M127)
	m127 := One().Shl(127).Sub(One())
	got := FromUint64(2).ModExp(m127.Sub(One()), m127)
	if got.Cmp(One()) != 0 {
		t.Errorf("Fermat on M127 = %s", got)
	}
}

func TestModExpEdge(t *testing.T) {
	if !FromUint64(5).ModExp(FromUint64(3), One()).IsZero() {
		t.Error("x^e mod 1 != 0")
	}
	if FromUint64(5).ModExp(Zero(), FromUint64(7)).Uint64() != 1 {
		t.Error("x^0 mod 7 != 1")
	}
	if !Zero().ModExp(FromUint64(3), FromUint64(7)).IsZero() {
		t.Error("0^3 mod 7 != 0")
	}
}

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, want uint64 }{
		{12, 18, 6}, {17, 5, 1}, {0, 5, 5}, {5, 0, 5}, {48, 36, 12},
	}
	for _, tc := range cases {
		got := FromUint64(tc.a).GCD(FromUint64(tc.b)).Uint64()
		if got != tc.want {
			t.Errorf("gcd(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestModInverse(t *testing.T) {
	// 3^-1 mod 11 = 4
	inv, ok := FromUint64(3).ModInverse(FromUint64(11))
	if !ok || inv.Uint64() != 4 {
		t.Errorf("3^-1 mod 11 = %s ok=%v", inv, ok)
	}
	// No inverse when not coprime
	if _, ok := FromUint64(6).ModInverse(FromUint64(9)); ok {
		t.Error("6 mod 9 reported invertible")
	}
	if _, ok := FromUint64(6).ModInverse(Zero()); ok {
		t.Error("mod 0 reported invertible")
	}
}

// Property: x * x^-1 ≡ 1 (mod m) whenever the inverse exists.
func TestModInverseProperty(t *testing.T) {
	f := func(xr, mr uint32) bool {
		m := FromUint64(uint64(mr)%100000 + 2)
		x := FromUint64(uint64(xr) + 1)
		inv, ok := x.ModInverse(m)
		if !ok {
			return x.GCD(m).Cmp(One()) != 0
		}
		return x.ModMul(inv, m).Cmp(One()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecimalRoundTrip(t *testing.T) {
	cases := []string{"0", "1", "4294967295", "4294967296",
		"340282366920938463463374607431768211455",
		"115792089237316195423570985008687907853269984665640564039457584007913129639936"}
	for _, s := range cases {
		x, err := FromDecimal(s)
		if err != nil {
			t.Fatalf("FromDecimal(%s): %v", s, err)
		}
		if x.String() != s {
			t.Errorf("String() = %s, want %s", x.String(), s)
		}
	}
	if _, err := FromDecimal("12a3"); err == nil {
		t.Error("bad decimal accepted")
	}
	if _, err := FromDecimal(""); err == nil {
		t.Error("empty decimal accepted")
	}
}

func TestCmpOrdering(t *testing.T) {
	a := MustDecimal("99999999999999999999")
	b := MustDecimal("100000000000000000000")
	if a.Cmp(b) != -1 || b.Cmp(a) != 1 || a.Cmp(a) != 0 {
		t.Error("Cmp ordering wrong")
	}
}

// Associativity / commutativity / distributivity properties.
func TestRingProperties(t *testing.T) {
	f := func(ab, bb, cb []byte) bool {
		a, b, c := FromBytes(ab), FromBytes(bb), FromBytes(cb)
		if a.Add(b).Cmp(b.Add(a)) != 0 {
			return false
		}
		if a.Mul(b).Cmp(b.Mul(a)) != 0 {
			return false
		}
		if a.Add(b).Add(c).Cmp(a.Add(b.Add(c))) != 0 {
			return false
		}
		return a.Mul(b.Add(c)).Cmp(a.Mul(b).Add(a.Mul(c))) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkModExp512(b *testing.B) {
	base := FromBytes(bytes.Repeat([]byte{0xa5}, 64))
	e := FromBytes(bytes.Repeat([]byte{0x5a}, 64))
	m := FromBytes(bytes.Repeat([]byte{0xff}, 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base.ModExp(e, m)
	}
}
