package bignum

import (
	"bytes"
	"math/big"
	"testing"

	"repro/internal/crypto/bignum32"
)

// FuzzBignum cross-checks the 64-bit limb arithmetic against the
// retained 32-bit oracle (internal/crypto/bignum32) AND math/big on
// the same byte inputs: add, sub, mul, div/mod and modexp all have to
// agree byte-for-byte across all three implementations. This is the
// fuzz-shaped twin of the conform bignum/limb-diff check; the CI
// fuzz-smoke matrix runs it for 30s per push.
func FuzzBignum(f *testing.F) {
	f.Add([]byte{}, []byte{}, []byte{})
	f.Add([]byte{0x01}, []byte{0x01}, []byte{0x03})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}, []byte{0x01, 0x00, 0x00, 0x00, 0x00}, []byte{0x0d})
	// Limb-boundary shapes: exactly 4, 8 and 9 bytes exercise the
	// uint32 and uint64 limb seams.
	f.Add(bytes.Repeat([]byte{0xab}, 8), bytes.Repeat([]byte{0xcd}, 4), bytes.Repeat([]byte{0xef}, 9))
	f.Add(bytes.Repeat([]byte{0xff}, 16), bytes.Repeat([]byte{0xff}, 16), bytes.Repeat([]byte{0xff}, 8))
	// Leading zero bytes: normalization stress.
	f.Add([]byte{0x00, 0x00, 0x01}, []byte{0x00, 0x05}, []byte{0x00, 0x00, 0x07})
	// RSA-ish sizes.
	f.Add(bytes.Repeat([]byte{0x5a}, 32), bytes.Repeat([]byte{0xa5}, 24), append([]byte{0x80}, bytes.Repeat([]byte{0x11}, 15)...))

	f.Fuzz(func(t *testing.T, ab, bb, mb []byte) {
		// Bound the work per input so the fuzzer explores instead of
		// grinding one giant multiply.
		if len(ab) > 64 {
			ab = ab[:64]
		}
		if len(bb) > 64 {
			bb = bb[:64]
		}
		if len(mb) > 24 {
			mb = mb[:24]
		}
		x, y := FromBytes(ab), FromBytes(bb)
		x32, y32 := bignum32.FromBytes(ab), bignum32.FromBytes(bb)
		xb, yb := new(big.Int).SetBytes(ab), new(big.Int).SetBytes(bb)

		diff3 := func(op string, got Int, got32 bignum32.Int, want *big.Int) {
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Fatalf("%s: 64-bit %x != math/big %x (a=%x b=%x m=%x)",
					op, got.Bytes(), want.Bytes(), ab, bb, mb)
			}
			if !bytes.Equal(got32.Bytes(), want.Bytes()) {
				t.Fatalf("%s: 32-bit %x != math/big %x (a=%x b=%x m=%x)",
					op, got32.Bytes(), want.Bytes(), ab, bb, mb)
			}
		}

		diff3("add", x.Add(y), x32.Add(y32), new(big.Int).Add(xb, yb))
		diff3("mul", x.Mul(y), x32.Mul(y32), new(big.Int).Mul(xb, yb))

		// Sub is unsigned: order the operands.
		if x.Cmp(y) >= 0 {
			diff3("sub", x.Sub(y), x32.Sub(y32), new(big.Int).Sub(xb, yb))
		} else {
			diff3("sub", y.Sub(x), y32.Sub(x32), new(big.Int).Sub(yb, xb))
		}

		m := FromBytes(mb)
		if m.IsZero() {
			return
		}
		m32 := bignum32.FromBytes(mb)
		mbig := new(big.Int).SetBytes(mb)

		q, r, err := x.DivMod(m)
		if err != nil {
			t.Fatalf("DivMod err on nonzero divisor: %v", err)
		}
		q32, r32, _ := x32.DivMod(m32)
		qb, rb := new(big.Int).QuoRem(xb, mbig, new(big.Int))
		diff3("div", q, q32, qb)
		diff3("mod", r, r32, rb)

		// Keep the exponent small (16 bits) so modexp stays cheap per
		// exec; width coverage comes from x and m, not e.
		e := y.Mod(FromUint64(1 << 16))
		e32 := y32.Mod(bignum32.FromUint64(1 << 16))
		ebig := new(big.Int).Mod(yb, big.NewInt(1<<16))
		diff3("modexp", x.ModExp(e, m), x32.ModExp(e32, m32),
			new(big.Int).Exp(xb, ebig, mbig))
	})
}
