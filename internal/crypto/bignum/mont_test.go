package bignum

import (
	"math/rand"
	"testing"
)

func randInt(rng *rand.Rand, maxLimbs int) Int {
	n := 1 + rng.Intn(maxLimbs)
	l := make([]uint64, n)
	for i := range l {
		l[i] = rng.Uint64()
	}
	return Int{limbs: norm(l)}
}

// TestMontExpEquivalence diffs the Montgomery window exponentiation
// against the schoolbook oracle over 10k seeded (x, e, m) triples with
// odd moduli of mixed widths, plus the degenerate corners.
func TestMontExpEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 10_000
	if testing.Short() {
		n = 1_000
	}
	for i := 0; i < n; i++ {
		m := randInt(rng, 6)
		if len(m.limbs) == 0 {
			m = One()
		}
		m.limbs = append([]uint64(nil), m.limbs...)
		m.limbs[0] |= 1 // force odd
		x := randInt(rng, 7)
		e := randInt(rng, 3)
		switch i % 50 {
		case 0:
			e = Zero()
		case 1:
			x = Zero()
		case 2:
			e = One()
		}
		got := x.ModExp(e, m)
		want := x.modExpBasic(e, m)
		if got.Cmp(want) != 0 {
			t.Fatalf("vector %d: x=%s e=%s m=%s: mont %s != basic %s",
				i, x, e, m, got, want)
		}
	}
}

// TestMontExpEvenModulus pins the fallback: even moduli still work.
func TestMontExpEvenModulus(t *testing.T) {
	x := FromUint64(12345)
	e := FromUint64(77)
	m := FromUint64(1 << 20)
	if got, want := x.ModExp(e, m), x.modExpBasic(e, m); got.Cmp(want) != 0 {
		t.Fatalf("even modulus: %s != %s", got, want)
	}
}

func benchModExpInputs() (x, e, m Int) {
	rng := rand.New(rand.NewSource(32))
	// 1024-bit odd modulus, 1024-bit exponent: the RSA private-key shape.
	m = randInt(rng, 16)
	for len(m.limbs) < 16 {
		m.limbs = append(m.limbs, rng.Uint64()|1)
	}
	m.limbs[0] |= 1
	m.limbs[15] |= 1 << 63
	e = randInt(rng, 16)
	for len(e.limbs) < 16 {
		e.limbs = append(e.limbs, rng.Uint64()|1)
	}
	x = randInt(rng, 15)
	return
}

func BenchmarkModExpMont_1024(b *testing.B) {
	x, e, m := benchModExpInputs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.ModExp(e, m)
	}
}

func BenchmarkModExpBasic_1024(b *testing.B) {
	x, e, m := benchModExpInputs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.modExpBasic(e, m)
	}
}
