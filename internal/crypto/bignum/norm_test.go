package bignum

import (
	"bytes"
	"testing"
)

// TestSetUint64Normalization pins the normalized-representation
// invariant on the in-place setter: zero is the empty limb slice
// (never a [0] limb), and storage reuse can't leak stale high limbs.
func TestSetUint64Normalization(t *testing.T) {
	var x Int
	x.SetUint64(0)
	if !x.IsZero() || len(x.limbs) != 0 {
		t.Fatalf("SetUint64(0) on zero value: limbs=%v", x.limbs)
	}

	x.SetUint64(0xdeadbeefcafef00d)
	if got := x.Uint64(); got != 0xdeadbeefcafef00d {
		t.Fatalf("SetUint64 round trip: got %#x", got)
	}
	if len(x.limbs) != 1 {
		t.Fatalf("single-limb value has %d limbs", len(x.limbs))
	}

	// Reset a wide value back to zero: must normalize, not keep a
	// zero limb from the reused storage.
	x = FromBytes(bytes.Repeat([]byte{0xff}, 40))
	x.SetUint64(0)
	if !x.IsZero() || len(x.limbs) != 0 {
		t.Fatalf("SetUint64(0) after wide value: limbs=%v", x.limbs)
	}
	if x.Cmp(Zero()) != 0 || x.String() != "0" || x.Bytes() != nil {
		t.Fatalf("zero after reset misbehaves: %q %v", x.String(), x.Bytes())
	}

	// Reset a wide value to a small one: stale high limbs must not
	// survive the slice reuse.
	x = FromBytes(bytes.Repeat([]byte{0xff}, 40))
	x.SetUint64(7)
	if x.Cmp(FromUint64(7)) != 0 || len(x.limbs) != 1 {
		t.Fatalf("SetUint64(7) after wide value: %s limbs=%v", x.String(), x.limbs)
	}
}

// TestFromBytesNormalization covers the FromBytes corners: empty
// input, all-zero input, leading zero bytes (which land in the top
// limb and must be stripped), and the limb-boundary widths.
func TestFromBytesNormalization(t *testing.T) {
	if x := FromBytes(nil); !x.IsZero() || len(x.limbs) != 0 {
		t.Fatalf("FromBytes(nil): limbs=%v", x.limbs)
	}
	if x := FromBytes(make([]byte, 17)); !x.IsZero() || len(x.limbs) != 0 {
		t.Fatalf("FromBytes(zeros): limbs=%v", x.limbs)
	}

	// Leading zeros spanning whole limbs: 16 zero bytes then one set
	// byte gives trailing zero limbs pre-norm.
	b := make([]byte, 17)
	b[16] = 0x2a
	x := FromBytes(b)
	if x.Cmp(FromUint64(0x2a)) != 0 || len(x.limbs) != 1 {
		t.Fatalf("leading-zero bytes: %s limbs=%v", x.String(), x.limbs)
	}

	// Exactly one limb of bytes, then one byte over the boundary.
	one := bytes.Repeat([]byte{0xab}, 8)
	if x := FromBytes(one); len(x.limbs) != 1 || !bytes.Equal(x.Bytes(), one) {
		t.Fatalf("8-byte round trip: limbs=%d bytes=%x", len(x.limbs), x.Bytes())
	}
	over := append([]byte{0x01}, one...)
	if x := FromBytes(over); len(x.limbs) != 2 || !bytes.Equal(x.Bytes(), over) {
		t.Fatalf("9-byte round trip: limbs=%d bytes=%x", len(x.limbs), x.Bytes())
	}

	// A value whose top byte is zero after stripping must not be
	// confused with the padded form under Cmp.
	small := FromBytes([]byte{0x00, 0x00, 0x01})
	if small.Cmp(FromUint64(1)) != 0 || small.BitLen() != 1 {
		t.Fatalf("padded small value: %s bitlen=%d", small.String(), small.BitLen())
	}
}
