// Package bignum32 is the retained 32-bit limb implementation of the
// bignum package — the exact arithmetic that shipped before the limb
// width was doubled to uint64. It is kept in-tree as the differential
// oracle: internal/conform and the bignum fuzz targets diff every
// operation of the 64-bit package against this one (and both against
// math/big), so a carry bug in the wide rewrite cannot hide. It also
// anchors the BenchmarkKernel*Limb32 before/after benchmarks.
//
// Representation: little-endian []uint32 limbs with no trailing zero
// limbs (zero is the empty slice). All values are non-negative; RSA
// needs no signed arithmetic.
package bignum32

import (
	"errors"
	"fmt"
	"strings"
)

// Int is an arbitrary-precision unsigned integer. The zero value is 0
// and ready to use. Ints are immutable from the caller's perspective:
// all methods return fresh values and never alias their operands'
// storage in results.
type Int struct {
	limbs []uint32 // little-endian, normalized (no trailing zeros)
}

// ErrDivByZero is returned by Div/Mod family operations for a zero divisor.
var ErrDivByZero = errors.New("bignum: division by zero")

// Zero and One are convenience constructors.
func Zero() Int { return Int{} }

// One returns the integer 1.
func One() Int { return FromUint64(1) }

// FromUint64 builds an Int from a uint64.
func FromUint64(v uint64) Int {
	if v == 0 {
		return Int{}
	}
	if v <= 0xffffffff {
		return Int{limbs: []uint32{uint32(v)}}
	}
	return Int{limbs: []uint32{uint32(v), uint32(v >> 32)}}
}

// SetUint64 resets x in place to the value v, reusing its limb storage
// when possible, and returns x. The normalized invariant holds: zero is
// the empty slice, never a [0] limb.
func (x *Int) SetUint64(v uint64) *Int {
	n := 1
	if v > 0xffffffff {
		n = 2
	}
	if v == 0 {
		x.limbs = x.limbs[:0]
		return x
	}
	if cap(x.limbs) >= n {
		x.limbs = x.limbs[:n]
	} else {
		x.limbs = make([]uint32, n)
	}
	x.limbs[0] = uint32(v)
	if n == 2 {
		x.limbs[1] = uint32(v >> 32)
	}
	return x
}

// FromBytes builds an Int from big-endian bytes.
func FromBytes(b []byte) Int {
	n := (len(b) + 3) / 4
	limbs := make([]uint32, n)
	for i, by := range b {
		shift := uint((len(b) - 1 - i) % 4 * 8)
		limbs[(len(b)-1-i)/4] |= uint32(by) << shift
	}
	return Int{limbs: norm(limbs)}
}

// FromDecimal parses a base-10 string.
func FromDecimal(s string) (Int, error) {
	if s == "" {
		return Int{}, errors.New("bignum: empty decimal string")
	}
	x := Zero()
	ten := FromUint64(10)
	for _, r := range s {
		if r < '0' || r > '9' {
			return Int{}, fmt.Errorf("bignum: bad digit %q", r)
		}
		x = x.Mul(ten).Add(FromUint64(uint64(r - '0')))
	}
	return x, nil
}

// MustDecimal is FromDecimal that panics on error; for tests and constants.
func MustDecimal(s string) Int {
	x, err := FromDecimal(s)
	if err != nil {
		panic(err)
	}
	return x
}

func norm(l []uint32) []uint32 {
	for len(l) > 0 && l[len(l)-1] == 0 {
		l = l[:len(l)-1]
	}
	return l
}

// IsZero reports whether x == 0.
func (x Int) IsZero() bool { return len(x.limbs) == 0 }

// IsOdd reports whether the low bit is set.
func (x Int) IsOdd() bool { return len(x.limbs) > 0 && x.limbs[0]&1 == 1 }

// Uint64 returns the low 64 bits of x.
func (x Int) Uint64() uint64 {
	var v uint64
	if len(x.limbs) > 0 {
		v = uint64(x.limbs[0])
	}
	if len(x.limbs) > 1 {
		v |= uint64(x.limbs[1]) << 32
	}
	return v
}

// BitLen returns the number of bits in x (0 for x == 0).
func (x Int) BitLen() int {
	if len(x.limbs) == 0 {
		return 0
	}
	top := x.limbs[len(x.limbs)-1]
	n := (len(x.limbs) - 1) * 32
	for top != 0 {
		n++
		top >>= 1
	}
	return n
}

// Bit returns bit i of x (0 or 1).
func (x Int) Bit(i int) uint {
	limb := i / 32
	if limb >= len(x.limbs) {
		return 0
	}
	return uint(x.limbs[limb] >> (i % 32) & 1)
}

// Bytes returns x as big-endian bytes with no leading zeros
// (empty slice for zero).
func (x Int) Bytes() []byte {
	if x.IsZero() {
		return nil
	}
	n := (x.BitLen() + 7) / 8
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		limb := i / 4
		shift := uint(i % 4 * 8)
		out[n-1-i] = byte(x.limbs[limb] >> shift)
	}
	return out
}

// FillBytes writes x as big-endian into buf, left-padded with zeros.
// It panics if x does not fit.
func (x Int) FillBytes(buf []byte) []byte {
	b := x.Bytes()
	if len(b) > len(buf) {
		panic("bignum: FillBytes buffer too small")
	}
	for i := range buf[:len(buf)-len(b)] {
		buf[i] = 0
	}
	copy(buf[len(buf)-len(b):], b)
	return buf
}

// Cmp returns -1, 0 or +1 as x < y, x == y, x > y.
func (x Int) Cmp(y Int) int {
	if len(x.limbs) != len(y.limbs) {
		if len(x.limbs) < len(y.limbs) {
			return -1
		}
		return 1
	}
	for i := len(x.limbs) - 1; i >= 0; i-- {
		if x.limbs[i] != y.limbs[i] {
			if x.limbs[i] < y.limbs[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Add returns x + y.
func (x Int) Add(y Int) Int {
	a, b := x.limbs, y.limbs
	if len(a) < len(b) {
		a, b = b, a
	}
	out := make([]uint32, len(a)+1)
	var carry uint64
	for i := range a {
		s := uint64(a[i]) + carry
		if i < len(b) {
			s += uint64(b[i])
		}
		out[i] = uint32(s)
		carry = s >> 32
	}
	out[len(a)] = uint32(carry)
	return Int{limbs: norm(out)}
}

// Sub returns x - y; it panics if y > x (values are unsigned).
func (x Int) Sub(y Int) Int {
	if x.Cmp(y) < 0 {
		panic("bignum: negative result in Sub")
	}
	out := make([]uint32, len(x.limbs))
	var borrow uint64
	for i := range x.limbs {
		d := uint64(x.limbs[i]) - borrow
		if i < len(y.limbs) {
			d -= uint64(y.limbs[i])
		}
		out[i] = uint32(d)
		borrow = d >> 63 // 1 if underflowed
	}
	return Int{limbs: norm(out)}
}

// Mul returns x * y (schoolbook; fine at RSA sizes).
func (x Int) Mul(y Int) Int {
	if x.IsZero() || y.IsZero() {
		return Int{}
	}
	out := make([]uint32, len(x.limbs)+len(y.limbs))
	for i, xi := range x.limbs {
		var carry uint64
		for j, yj := range y.limbs {
			t := uint64(xi)*uint64(yj) + uint64(out[i+j]) + carry
			out[i+j] = uint32(t)
			carry = t >> 32
		}
		out[i+len(y.limbs)] = uint32(carry)
	}
	return Int{limbs: norm(out)}
}

// Shl returns x << n.
func (x Int) Shl(n int) Int {
	if x.IsZero() || n == 0 {
		return Int{limbs: append([]uint32(nil), x.limbs...)}
	}
	limbShift, bitShift := n/32, uint(n%32)
	out := make([]uint32, len(x.limbs)+limbShift+1)
	for i, l := range x.limbs {
		out[i+limbShift] |= l << bitShift
		if bitShift > 0 {
			out[i+limbShift+1] |= l >> (32 - bitShift)
		}
	}
	return Int{limbs: norm(out)}
}

// Shr returns x >> n.
func (x Int) Shr(n int) Int {
	limbShift, bitShift := n/32, uint(n%32)
	if limbShift >= len(x.limbs) {
		return Int{}
	}
	out := make([]uint32, len(x.limbs)-limbShift)
	for i := range out {
		out[i] = x.limbs[i+limbShift] >> bitShift
		if bitShift > 0 && i+limbShift+1 < len(x.limbs) {
			out[i] |= x.limbs[i+limbShift+1] << (32 - bitShift)
		}
	}
	return Int{limbs: norm(out)}
}

// DivMod returns (x/y, x%y) using limb-based long division (Knuth's
// Algorithm D), fast enough for RSA key generation in tests.
func (x Int) DivMod(y Int) (q, r Int, err error) {
	if y.IsZero() {
		return Int{}, Int{}, ErrDivByZero
	}
	if x.Cmp(y) < 0 {
		return Int{}, Int{limbs: append([]uint32(nil), x.limbs...)}, nil
	}
	if len(y.limbs) == 1 {
		d := uint64(y.limbs[0])
		out := make([]uint32, len(x.limbs))
		var rem uint64
		for i := len(x.limbs) - 1; i >= 0; i-- {
			cur := rem<<32 | uint64(x.limbs[i])
			out[i] = uint32(cur / d)
			rem = cur % d
		}
		return Int{limbs: norm(out)}, FromUint64(rem), nil
	}
	// Normalize so the divisor's top limb has its high bit set.
	shift := 0
	for top := y.limbs[len(y.limbs)-1]; top&0x80000000 == 0; top <<= 1 {
		shift++
	}
	v := y.Shl(shift).limbs
	un := x.Shl(shift).limbs
	n := len(v)
	// u needs m+n+1 limbs.
	u := make([]uint32, len(un)+1)
	copy(u, un)
	m := len(u) - n - 1
	qLimbs := make([]uint32, m+1)
	for j := m; j >= 0; j-- {
		// Estimate qhat from the top two limbs of the current remainder.
		num := uint64(u[j+n])<<32 | uint64(u[j+n-1])
		qhat := num / uint64(v[n-1])
		rhat := num % uint64(v[n-1])
		for qhat > 0xffffffff ||
			qhat*uint64(v[n-2]) > rhat<<32|uint64(u[j+n-2]) {
			qhat--
			rhat += uint64(v[n-1])
			if rhat > 0xffffffff {
				break
			}
		}
		// Multiply-subtract qhat*v from u[j..j+n].
		var borrow int64
		var carry uint64
		for i := 0; i < n; i++ {
			// Fold the multiply carry into the product before splitting,
			// so the extra bit propagates correctly.
			p := qhat*uint64(v[i]) + carry
			sub := uint64(uint32(p))
			carry = p >> 32
			t := int64(uint64(u[i+j])) - int64(sub) - borrow
			if t < 0 {
				u[i+j] = uint32(t + (1 << 32))
				borrow = 1
			} else {
				u[i+j] = uint32(t)
				borrow = 0
			}
		}
		t := int64(uint64(u[j+n])) - int64(carry) - borrow
		if t < 0 {
			// qhat was one too large: add v back and decrement.
			u[j+n] = uint32(t + (1 << 32))
			qhat--
			var c uint64
			for i := 0; i < n; i++ {
				s := uint64(u[i+j]) + uint64(v[i]) + c
				u[i+j] = uint32(s)
				c = s >> 32
			}
			u[j+n] += uint32(c)
		} else {
			u[j+n] = uint32(t)
		}
		qLimbs[j] = uint32(qhat)
	}
	r = Int{limbs: norm(u[:n])}.Shr(shift)
	return Int{limbs: norm(qLimbs)}, r, nil
}

// Div returns x / y, panicking on zero divisor.
func (x Int) Div(y Int) Int {
	q, _, err := x.DivMod(y)
	if err != nil {
		panic(err)
	}
	return q
}

// Mod returns x % y, panicking on zero divisor.
func (x Int) Mod(y Int) Int {
	_, r, err := x.DivMod(y)
	if err != nil {
		panic(err)
	}
	return r
}

// ModMul returns x*y mod m.
func (x Int) ModMul(y, m Int) Int { return x.Mul(y).Mod(m) }

// ModExp returns x^e mod m. m must be nonzero. Odd moduli (every RSA
// modulus, prime, and CRT factor) take the Montgomery fast path in
// mont.go; even moduli fall back to the schoolbook square-and-multiply.
func (x Int) ModExp(e, m Int) Int {
	if m.IsZero() {
		panic(ErrDivByZero)
	}
	if m.Cmp(One()) == 0 {
		return Int{}
	}
	if m.IsOdd() {
		return newMontCtx(m).exp(x.Mod(m), e)
	}
	return x.modExpBasic(e, m)
}

// modExpBasic is the original square-and-multiply over ModMul (full
// multiply + long division per step). Kept as the even-modulus path
// and as the oracle the Montgomery tests diff against.
func (x Int) modExpBasic(e, m Int) Int {
	result := One()
	base := x.Mod(m)
	for i := 0; i < e.BitLen(); i++ {
		if e.Bit(i) == 1 {
			result = result.ModMul(base, m)
		}
		base = base.ModMul(base, m)
	}
	return result
}

// GCD returns gcd(x, y).
func (x Int) GCD(y Int) Int {
	a, b := x, y
	for !b.IsZero() {
		a, b = b, a.Mod(b)
	}
	return a
}

// ModInverse returns x^-1 mod m and ok=false if no inverse exists.
// Extended Euclid carried with signs tracked manually (values are unsigned).
func (x Int) ModInverse(m Int) (Int, bool) {
	if m.IsZero() {
		return Int{}, false
	}
	// Maintain r0 = m, r1 = x mod m; t coefficients with explicit signs.
	r0, r1 := m, x.Mod(m)
	t0, t1 := Zero(), One()
	neg0, neg1 := false, false
	for !r1.IsZero() {
		q := r0.Div(r1)
		r0, r1 = r1, r0.Sub(q.Mul(r1))
		// t2 = t0 - q*t1 with sign tracking
		qt := q.Mul(t1)
		var t2 Int
		var neg2 bool
		if neg0 == neg1 {
			if t0.Cmp(qt) >= 0 {
				t2, neg2 = t0.Sub(qt), neg0
			} else {
				t2, neg2 = qt.Sub(t0), !neg0
			}
		} else {
			t2, neg2 = t0.Add(qt), neg0
		}
		t0, t1, neg0, neg1 = t1, t2, neg1, neg2
	}
	if r0.Cmp(One()) != 0 {
		return Int{}, false
	}
	if neg0 {
		return m.Sub(t0.Mod(m)).Mod(m), true
	}
	return t0.Mod(m), true
}

// String renders x in decimal.
func (x Int) String() string {
	if x.IsZero() {
		return "0"
	}
	var sb strings.Builder
	ten := FromUint64(10)
	var digits []byte
	v := x
	for !v.IsZero() {
		q, r, _ := v.DivMod(ten)
		digits = append(digits, byte('0'+r.Uint64()))
		v = q
	}
	for i := len(digits) - 1; i >= 0; i-- {
		sb.WriteByte(digits[i])
	}
	return sb.String()
}
