package bignum32

// Montgomery-form modular exponentiation. The schoolbook ModExp in
// bignum.go squares with a full Mul followed by a Knuth long division
// per step — the exact shape of the "difficult-to-port bignum package"
// the paper's RMC2000 port gave up on. The host profile keeps RSA, so
// the hot path gets the standard fix: CIOS Montgomery multiplication
// (one fused multiply-reduce pass, no division) under a 4-bit window.
// The schoolbook path survives as modExpBasic, the oracle the perf
// tests diff against, and still serves even moduli.

// montCtx caches the per-modulus constants: n0 = -m^-1 mod 2^32 and
// rr = R^2 mod m for R = 2^(32·len(m)).
type montCtx struct {
	m  []uint32
	n0 uint32
	rr []uint32
}

func newMontCtx(m Int) *montCtx {
	n := len(m.limbs)
	ctx := &montCtx{m: m.limbs}
	// Newton iteration for m[0]^-1 mod 2^32: an odd m0 is its own
	// inverse mod 8, and each step doubles the valid bit count
	// (3 → 6 → 12 → 24 → 48 ≥ 32).
	m0 := m.limbs[0]
	inv := m0
	for i := 0; i < 4; i++ {
		inv *= 2 - m0*inv
	}
	ctx.n0 = -inv
	ctx.rr = padTo(One().Shl(64*n).Mod(m).limbs, n) // 2^(2·32n) mod m
	return ctx
}

func padTo(l []uint32, n int) []uint32 {
	out := make([]uint32, n)
	copy(out, l)
	return out
}

// mul computes dst = a·b·R^-1 mod m (CIOS — Coarsely Integrated
// Operand Scanning). a, b and dst are n limbs; t is n+2 limbs of
// scratch. dst may alias a and/or b: the result is accumulated in t
// and written back only at the end.
func (ctx *montCtx) mul(dst, a, b, t []uint32) {
	m, n0 := ctx.m, uint64(ctx.n0)
	n := len(m)
	for i := range t {
		t[i] = 0
	}
	for i := 0; i < n; i++ {
		bi := uint64(b[i])
		var carry uint64
		for j := 0; j < n; j++ {
			s := uint64(t[j]) + uint64(a[j])*bi + carry
			t[j] = uint32(s)
			carry = s >> 32
		}
		s := uint64(t[n]) + carry
		t[n] = uint32(s)
		t[n+1] = uint32(s >> 32)

		// Fold in u·m so the low limb cancels, then shift down a limb.
		u := uint64(uint32(uint64(t[0]) * n0))
		carry = (uint64(t[0]) + u*uint64(m[0])) >> 32
		for j := 1; j < n; j++ {
			s := uint64(t[j]) + u*uint64(m[j]) + carry
			t[j-1] = uint32(s)
			carry = s >> 32
		}
		s = uint64(t[n]) + carry
		t[n-1] = uint32(s)
		t[n] = t[n+1] + uint32(s>>32)
	}
	// Conditional final subtraction: t may be in [0, 2m).
	ge := t[n] != 0
	if !ge {
		ge = true
		for i := n - 1; i >= 0; i-- {
			if t[i] != m[i] {
				ge = t[i] > m[i]
				break
			}
		}
	}
	if ge {
		var borrow uint64
		for i := 0; i < n; i++ {
			d := uint64(t[i]) - uint64(m[i]) - borrow
			dst[i] = uint32(d)
			borrow = d >> 63
		}
	} else {
		copy(dst, t[:n])
	}
}

// exp returns x^e mod m via 4-bit windowed Montgomery exponentiation.
// x must already be reduced mod m; m must be odd.
func (ctx *montCtx) exp(x, e Int) Int {
	n := len(ctx.m)
	t := make([]uint32, n+2)
	one := make([]uint32, n)
	one[0] = 1
	rmod := make([]uint32, n) // R mod m = montgomery form of 1
	ctx.mul(rmod, one, ctx.rr, t)

	xm := make([]uint32, n)
	ctx.mul(xm, padTo(x.limbs, n), ctx.rr, t)

	// win[w] = x^w in Montgomery form.
	var win [16][]uint32
	win[0] = rmod
	win[1] = xm
	for i := 2; i < 16; i++ {
		win[i] = make([]uint32, n)
		ctx.mul(win[i], win[i-1], xm, t)
	}

	acc := padTo(rmod, n)
	nibbles := (e.BitLen() + 3) / 4
	for i := nibbles - 1; i >= 0; i-- {
		if i != nibbles-1 {
			for s := 0; s < 4; s++ {
				ctx.mul(acc, acc, acc, t)
			}
		}
		w := e.Bit(4*i+3)<<3 | e.Bit(4*i+2)<<2 | e.Bit(4*i+1)<<1 | e.Bit(4*i)
		if w != 0 {
			ctx.mul(acc, acc, win[w], t)
		}
	}
	out := make([]uint32, n)
	ctx.mul(out, acc, one, t) // leave Montgomery form
	return Int{limbs: norm(out)}
}
