package bignum32

import (
	"bytes"
	"testing"
)

// The 32-bit oracle package gets the same normalization pins as the
// live 64-bit package: differential checks are only as honest as both
// sides' representation invariants.

func TestSetUint64Normalization(t *testing.T) {
	var x Int
	x.SetUint64(0)
	if !x.IsZero() || len(x.limbs) != 0 {
		t.Fatalf("SetUint64(0) on zero value: limbs=%v", x.limbs)
	}

	x.SetUint64(0xdeadbeefcafef00d)
	if got := x.Uint64(); got != 0xdeadbeefcafef00d {
		t.Fatalf("SetUint64 round trip: got %#x", got)
	}
	if len(x.limbs) != 2 {
		t.Fatalf("two-limb value has %d limbs", len(x.limbs))
	}
	// A value that fits one uint32 limb must not carry a zero high limb.
	x.SetUint64(5)
	if len(x.limbs) != 1 || x.Cmp(FromUint64(5)) != 0 {
		t.Fatalf("SetUint64(5): limbs=%v", x.limbs)
	}

	x = FromBytes(bytes.Repeat([]byte{0xff}, 40))
	x.SetUint64(0)
	if !x.IsZero() || len(x.limbs) != 0 {
		t.Fatalf("SetUint64(0) after wide value: limbs=%v", x.limbs)
	}
	if x.Cmp(Zero()) != 0 || x.String() != "0" || x.Bytes() != nil {
		t.Fatalf("zero after reset misbehaves: %q %v", x.String(), x.Bytes())
	}

	x = FromBytes(bytes.Repeat([]byte{0xff}, 40))
	x.SetUint64(7)
	if x.Cmp(FromUint64(7)) != 0 || len(x.limbs) != 1 {
		t.Fatalf("SetUint64(7) after wide value: %s limbs=%v", x.String(), x.limbs)
	}
}

func TestFromBytesNormalization(t *testing.T) {
	if x := FromBytes(nil); !x.IsZero() || len(x.limbs) != 0 {
		t.Fatalf("FromBytes(nil): limbs=%v", x.limbs)
	}
	if x := FromBytes(make([]byte, 9)); !x.IsZero() || len(x.limbs) != 0 {
		t.Fatalf("FromBytes(zeros): limbs=%v", x.limbs)
	}

	// 8 zero bytes then one set byte: trailing zero limbs pre-norm.
	b := make([]byte, 9)
	b[8] = 0x2a
	x := FromBytes(b)
	if x.Cmp(FromUint64(0x2a)) != 0 || len(x.limbs) != 1 {
		t.Fatalf("leading-zero bytes: %s limbs=%v", x.String(), x.limbs)
	}

	// Exactly one limb of bytes, then one byte over the boundary.
	one := bytes.Repeat([]byte{0xab}, 4)
	if x := FromBytes(one); len(x.limbs) != 1 || !bytes.Equal(x.Bytes(), one) {
		t.Fatalf("4-byte round trip: limbs=%d bytes=%x", len(x.limbs), x.Bytes())
	}
	over := append([]byte{0x01}, one...)
	if x := FromBytes(over); len(x.limbs) != 2 || !bytes.Equal(x.Bytes(), over) {
		t.Fatalf("5-byte round trip: limbs=%d bytes=%x", len(x.limbs), x.Bytes())
	}

	small := FromBytes([]byte{0x00, 0x00, 0x01})
	if small.Cmp(FromUint64(1)) != 0 || small.BitLen() != 1 {
		t.Fatalf("padded small value: %s bitlen=%d", small.String(), small.BitLen())
	}
}
