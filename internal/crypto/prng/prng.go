// Package prng provides the deterministic pseudo-random generators the
// port needed: Dynamic C "does not provide the standard random
// function" (§5), so the port wrote one. LCG mirrors the classic libc
// rand() the original issl leaned on; Xorshift is the stronger stream
// the library uses for session keys and IVs. Neither is
// cryptographically secure — and neither was what a 2003-era
// public-domain SSL library on an 8-bit microcontroller actually had.
package prng

// LCG is the minimal linear congruential generator a port writes when
// libc's rand() is missing: the ANSI C reference constants.
// The zero value is a valid generator seeded with 1 (like C's rand).
type LCG struct {
	state   uint32
	started bool
}

// NewLCG returns an LCG seeded like srand(seed).
func NewLCG(seed uint32) *LCG { return &LCG{state: seed, started: true} }

// Seed re-seeds the generator.
func (l *LCG) Seed(seed uint32) { l.state, l.started = seed, true }

// Next returns the next value in [0, 32768), matching ANSI C's
// RAND_MAX = 32767 reference implementation.
func (l *LCG) Next() int {
	if !l.started {
		l.state, l.started = 1, true
	}
	l.state = l.state*1103515245 + 12345
	return int(l.state >> 16 & 0x7fff)
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (l *LCG) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with non-positive n")
	}
	return l.Next() % n
}

// Xorshift is a 64-bit xorshift* generator used for key material and
// IVs in the simulated library (deterministic so experiments are
// reproducible run to run).
type Xorshift struct {
	state uint64
}

// NewXorshift seeds the generator; a zero seed is remapped since
// xorshift has an all-zero fixed point.
func NewXorshift(seed uint64) *Xorshift {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Xorshift{state: seed}
}

// Next64 returns the next 64-bit value.
func (x *Xorshift) Next64() uint64 {
	s := x.state
	s ^= s >> 12
	s ^= s << 25
	s ^= s >> 27
	x.state = s
	return s * 0x2545f4914f6cdd1d
}

// Fill fills buf with pseudo-random bytes.
func (x *Xorshift) Fill(buf []byte) {
	var w uint64
	for i := range buf {
		if i%8 == 0 {
			w = x.Next64()
		}
		buf[i] = byte(w)
		w >>= 8
	}
}

// Bytes returns n fresh pseudo-random bytes.
func (x *Xorshift) Bytes(n int) []byte {
	b := make([]byte, n)
	x.Fill(b)
	return b
}

// Uint32 returns a 32-bit value.
func (x *Xorshift) Uint32() uint32 { return uint32(x.Next64() >> 32) }

// Intn returns a value in [0, n). It panics if n <= 0.
func (x *Xorshift) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with non-positive n")
	}
	return int(x.Next64() % uint64(n))
}
