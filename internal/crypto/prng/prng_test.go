package prng

import "testing"

func TestLCGDeterministic(t *testing.T) {
	a, b := NewLCG(42), NewLCG(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestLCGRange(t *testing.T) {
	l := NewLCG(1)
	for i := 0; i < 10000; i++ {
		v := l.Next()
		if v < 0 || v > 32767 {
			t.Fatalf("Next() = %d out of [0,32767]", v)
		}
	}
}

func TestLCGZeroValue(t *testing.T) {
	var l LCG // unseeded, should behave like srand(1)
	seeded := NewLCG(1)
	if l.Next() != seeded.Next() {
		t.Error("zero-value LCG differs from seed 1")
	}
}

func TestLCGMatchesANSISequence(t *testing.T) {
	// First values of the ANSI C reference rand() with seed 1.
	want := []int{16838, 5758, 10113, 17515, 31051}
	l := NewLCG(1)
	for i, w := range want {
		if got := l.Next(); got != w {
			t.Errorf("value %d = %d, want %d", i, got, w)
		}
	}
}

func TestLCGIntn(t *testing.T) {
	l := NewLCG(7)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := l.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) covered only %d values", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	l.Intn(0)
}

func TestXorshiftDeterministic(t *testing.T) {
	a, b := NewXorshift(99), NewXorshift(99)
	for i := 0; i < 100; i++ {
		if a.Next64() != b.Next64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestXorshiftZeroSeedRemapped(t *testing.T) {
	x := NewXorshift(0)
	if x.Next64() == 0 && x.Next64() == 0 {
		t.Error("zero seed stuck at zero")
	}
}

func TestXorshiftFill(t *testing.T) {
	x := NewXorshift(5)
	b := x.Bytes(33)
	if len(b) != 33 {
		t.Fatalf("Bytes(33) returned %d bytes", len(b))
	}
	allZero := true
	for _, v := range b {
		if v != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Error("Bytes returned all zeros")
	}
	// Same seed, same stream via Fill.
	y := NewXorshift(5)
	c := make([]byte, 33)
	y.Fill(c)
	for i := range b {
		if b[i] != c[i] {
			t.Fatal("Fill and Bytes diverge for same seed")
		}
	}
}

func TestXorshiftDistributionSanity(t *testing.T) {
	x := NewXorshift(123)
	var buckets [16]int
	for i := 0; i < 16000; i++ {
		buckets[x.Intn(16)]++
	}
	for i, n := range buckets {
		if n < 700 || n > 1300 {
			t.Errorf("bucket %d has %d hits, expected ~1000", i, n)
		}
	}
}
