package rsa

import (
	"repro/internal/crypto/bignum"
)

// CRT private-key exponentiation. With the prime factors in hand the
// private operation splits into two half-size exponentiations
// recombined by Garner's formula — roughly a 4x win on top of the
// Montgomery kernel, since modexp cost grows cubically with width.
// The precomputed exponents are derived lazily on first use (keys are
// built with struct literals all over the tests) and cached on the key.

type crtValues struct {
	dp   bignum.Int // D mod (P-1)
	dq   bignum.Int // D mod (Q-1)
	qinv bignum.Int // Q^-1 mod P
	ok   bool       // P, Q present, consistent with N, and Q invertible
}

func (priv *PrivateKey) crt() *crtValues {
	priv.crtOnce.Do(func() {
		cv := &crtValues{}
		if !priv.P.IsZero() && !priv.Q.IsZero() && priv.P.Mul(priv.Q).Cmp(priv.N) == 0 {
			one := bignum.One()
			cv.dp = priv.D.Mod(priv.P.Sub(one))
			cv.dq = priv.D.Mod(priv.Q.Sub(one))
			cv.qinv, cv.ok = priv.Q.ModInverse(priv.P)
		}
		priv.crtVals = cv
	})
	return priv.crtVals
}

// privExp computes c^D mod N, via the CRT split when the key carries
// usable prime factors and via the plain exponent otherwise.
func (priv *PrivateKey) privExp(c bignum.Int) bignum.Int {
	cv := priv.crt()
	if !cv.ok {
		return c.ModExp(priv.D, priv.N)
	}
	m1 := c.ModExp(cv.dp, priv.P)
	m2 := c.ModExp(cv.dq, priv.Q)
	// Garner: h = qinv·(m1 - m2) mod P, m = m2 + h·Q. The subtraction
	// is lifted by P to stay in unsigned arithmetic.
	h := m1.Add(priv.P).Sub(m2.Mod(priv.P)).ModMul(cv.qinv, priv.P)
	return m2.Add(h.Mul(priv.Q))
}
