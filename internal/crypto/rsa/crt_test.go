package rsa

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/crypto/bignum"
	"repro/internal/crypto/prng"
)

// TestCRTMatchesPlainExponent diffs the CRT private operation against
// the plain d-exponent on raw values across several generated keys.
func TestCRTMatchesPlainExponent(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for k := 0; k < 4; k++ {
		priv, err := GenerateKey(prng.NewXorshift(uint64(500+k)), 256)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 250; i++ {
			raw := make([]byte, 32)
			rng.Read(raw)
			c := bignum.FromBytes(raw).Mod(priv.N)
			got := priv.privExp(c)
			want := c.ModExp(priv.D, priv.N)
			if got.Cmp(want) != 0 {
				t.Fatalf("key %d vector %d: crt %s != plain %s", k, i, got, want)
			}
		}
	}
}

// TestCRTFallback pins the plain-exponent fallback for keys carrying
// no (or inconsistent) prime factors.
func TestCRTFallback(t *testing.T) {
	priv, err := GenerateKey(prng.NewXorshift(77), 256)
	if err != nil {
		t.Fatal(err)
	}
	bare := &PrivateKey{PublicKey: priv.PublicKey, D: priv.D} // no P, Q
	c := bignum.FromUint64(0xfeedface)
	if got, want := bare.privExp(c), c.ModExp(priv.D, priv.N); got.Cmp(want) != 0 {
		t.Fatalf("bare key: %s != %s", got, want)
	}
	mangled := &PrivateKey{PublicKey: priv.PublicKey, D: priv.D,
		P: priv.P.Add(bignum.FromUint64(2)), Q: priv.Q} // P·Q != N
	if got, want := mangled.privExp(c), c.ModExp(priv.D, priv.N); got.Cmp(want) != 0 {
		t.Fatalf("mangled key: %s != %s", got, want)
	}
}

// TestCRTRoundTrip exercises the public entry points end to end.
func TestCRTRoundTrip(t *testing.T) {
	priv, err := GenerateKey(prng.NewXorshift(99), 256)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("crt round trip")
	ct, err := priv.EncryptPKCS1(prng.NewXorshift(5), msg)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := priv.DecryptPKCS1(ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, msg) {
		t.Fatalf("decrypt = %q, want %q", pt, msg)
	}
	sig, err := priv.SignRaw(msg)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := priv.VerifyRaw(sig)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec, msg) {
		t.Fatalf("verify = %q, want %q", rec, msg)
	}
}

func benchKey(b *testing.B) (*PrivateKey, bignum.Int) {
	b.Helper()
	priv, err := GenerateKey(prng.NewXorshift(1234), 512)
	if err != nil {
		b.Fatal(err)
	}
	c := bignum.FromBytes(prng.NewXorshift(9).Bytes(60)).Mod(priv.N)
	return priv, c
}

func BenchmarkPrivExpCRT_512(b *testing.B) {
	priv, c := benchKey(b)
	priv.crt() // precompute outside the loop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		priv.privExp(c)
	}
}

func BenchmarkPrivExpPlain_512(b *testing.B) {
	priv, c := benchKey(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ModExp(priv.D, priv.N)
	}
}
