// Package rsa implements RSA key generation, encryption and decryption
// over the from-scratch bignum package. In the paper's port this is
// exactly the cipher that was dropped ("we only ported the AES cipher,
// which uses the Rijndael algorithm... the RSA algorithm uses a
// difficult-to-port bignum package"). The Unix profile of issl keeps
// it for session-key exchange; the Embedded profile excludes it, and
// issl documents the resulting handshake downgrade.
package rsa

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/crypto/bignum"
	"repro/internal/crypto/prng"
)

// PublicKey is an RSA public key (n, e).
type PublicKey struct {
	N bignum.Int // modulus
	E bignum.Int // public exponent
}

// PrivateKey is an RSA private key. Private-key operations use the
// CRT fast path (crt.go) when P and Q are present; keys should be
// created once and used by pointer so the lazily derived CRT values
// are computed a single time.
type PrivateKey struct {
	PublicKey
	D bignum.Int // private exponent
	P bignum.Int // prime factor
	Q bignum.Int // prime factor

	crtOnce sync.Once
	crtVals *crtValues
}

var (
	// ErrMessageTooLong is returned when a message exceeds the modulus capacity.
	ErrMessageTooLong = errors.New("rsa: message too long for key size")
	// ErrDecryption is returned when padding fails to verify after decryption.
	ErrDecryption = errors.New("rsa: decryption error")
	// ErrKeyTooSmall is returned by GenerateKey for bit sizes below 128.
	ErrKeyTooSmall = errors.New("rsa: key size below 128 bits")
)

// GenerateKey creates a key with a modulus of the given bit length
// using the supplied deterministic PRNG (the simulated environment has
// no entropy source; the paper's platform had none either).
func GenerateKey(rng *prng.Xorshift, bits int) (*PrivateKey, error) {
	if bits < 128 {
		return nil, ErrKeyTooSmall
	}
	e := bignum.FromUint64(65537)
	for attempt := 0; attempt < 64; attempt++ {
		p := genPrime(rng, bits/2)
		q := genPrime(rng, bits-bits/2)
		if p.Cmp(q) == 0 {
			continue
		}
		n := p.Mul(q)
		if n.BitLen() != bits {
			continue
		}
		phi := p.Sub(bignum.One()).Mul(q.Sub(bignum.One()))
		d, ok := e.ModInverse(phi)
		if !ok {
			continue
		}
		return &PrivateKey{
			PublicKey: PublicKey{N: n, E: e},
			D:         d, P: p, Q: q,
		}, nil
	}
	return nil, errors.New("rsa: key generation did not converge")
}

// genPrime returns a probable prime of exactly the given bit length.
func genPrime(rng *prng.Xorshift, bits int) bignum.Int {
	bytes := (bits + 7) / 8
	for {
		b := rng.Bytes(bytes)
		// Force exact bit length and oddness.
		b[0] |= 0x80 >> uint((8-bits%8)%8)
		if bits%8 != 0 {
			b[0] &= (1 << uint(bits%8)) - 1
			b[0] |= 1 << uint(bits%8-1)
		}
		b[len(b)-1] |= 1
		cand := bignum.FromBytes(b)
		if cand.BitLen() != bits {
			continue
		}
		if isProbablePrime(rng, cand) {
			return cand
		}
	}
}

var smallPrimes = []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71}

// isProbablePrime runs trial division then Miller–Rabin with 20 rounds.
func isProbablePrime(rng *prng.Xorshift, n bignum.Int) bool {
	if n.Cmp(bignum.FromUint64(2)) < 0 {
		return false
	}
	for _, sp := range smallPrimes {
		spI := bignum.FromUint64(sp)
		if n.Cmp(spI) == 0 {
			return true
		}
		if n.Mod(spI).IsZero() {
			return false
		}
	}
	// n-1 = d * 2^r with d odd
	nMinus1 := n.Sub(bignum.One())
	d := nMinus1
	r := 0
	for !d.IsOdd() {
		d = d.Shr(1)
		r++
	}
	bytes := (n.BitLen() + 7) / 8
witness:
	for round := 0; round < 20; round++ {
		// Random a in [2, n-2]
		a := bignum.FromBytes(rng.Bytes(bytes)).Mod(nMinus1)
		if a.Cmp(bignum.FromUint64(2)) < 0 {
			a = a.Add(bignum.FromUint64(2))
		}
		x := a.ModExp(d, n)
		if x.Cmp(bignum.One()) == 0 || x.Cmp(nMinus1) == 0 {
			continue
		}
		for i := 0; i < r-1; i++ {
			x = x.ModMul(x, n)
			if x.Cmp(nMinus1) == 0 {
				continue witness
			}
		}
		return false
	}
	return true
}

// keyBytes returns the modulus size in bytes.
func (pub *PublicKey) keyBytes() int { return (pub.N.BitLen() + 7) / 8 }

// MaxPlaintext returns the largest message EncryptPKCS1 accepts.
func (pub *PublicKey) MaxPlaintext() int { return pub.keyBytes() - 11 }

// EncryptPKCS1 encrypts msg with PKCS#1 v1.5-style type-2 padding:
// 00 02 <nonzero random> 00 <msg>. The rng supplies pad bytes.
func (pub *PublicKey) EncryptPKCS1(rng *prng.Xorshift, msg []byte) ([]byte, error) {
	k := pub.keyBytes()
	if len(msg) > k-11 {
		return nil, fmt.Errorf("%w: %d > %d", ErrMessageTooLong, len(msg), k-11)
	}
	em := make([]byte, k)
	em[0] = 0x00
	em[1] = 0x02
	padLen := k - 3 - len(msg)
	for i := 0; i < padLen; i++ {
		b := byte(0)
		for b == 0 {
			b = rng.Bytes(1)[0]
		}
		em[2+i] = b
	}
	em[2+padLen] = 0x00
	copy(em[3+padLen:], msg)
	c := bignum.FromBytes(em).ModExp(pub.E, pub.N)
	return c.FillBytes(make([]byte, k)), nil
}

// DecryptPKCS1 reverses EncryptPKCS1.
func (priv *PrivateKey) DecryptPKCS1(ct []byte) ([]byte, error) {
	k := priv.keyBytes()
	if len(ct) != k {
		return nil, fmt.Errorf("%w: ciphertext %d bytes, want %d", ErrDecryption, len(ct), k)
	}
	c := bignum.FromBytes(ct)
	if c.Cmp(priv.N) >= 0 {
		return nil, ErrDecryption
	}
	em := priv.privExp(c).FillBytes(make([]byte, k))
	if em[0] != 0x00 || em[1] != 0x02 {
		return nil, ErrDecryption
	}
	// Find the 00 separator after at least 8 pad bytes.
	sep := -1
	for i := 2; i < len(em); i++ {
		if em[i] == 0x00 {
			sep = i
			break
		}
	}
	if sep < 10 {
		return nil, ErrDecryption
	}
	return em[sep+1:], nil
}

// SignRaw produces a raw signature over a digest: digest^d mod n with
// type-1 (0xFF) padding. Verification is VerifyRaw.
func (priv *PrivateKey) SignRaw(digest []byte) ([]byte, error) {
	k := priv.keyBytes()
	if len(digest) > k-11 {
		return nil, ErrMessageTooLong
	}
	em := make([]byte, k)
	em[0] = 0x00
	em[1] = 0x01
	padLen := k - 3 - len(digest)
	for i := 0; i < padLen; i++ {
		em[2+i] = 0xff
	}
	em[2+padLen] = 0x00
	copy(em[3+padLen:], digest)
	s := priv.privExp(bignum.FromBytes(em))
	return s.FillBytes(make([]byte, k)), nil
}

// VerifyRaw checks a SignRaw signature and returns the recovered digest.
func (pub *PublicKey) VerifyRaw(sig []byte) ([]byte, error) {
	k := pub.keyBytes()
	if len(sig) != k {
		return nil, errors.New("rsa: bad signature length")
	}
	em := bignum.FromBytes(sig).ModExp(pub.E, pub.N).FillBytes(make([]byte, k))
	if em[0] != 0x00 || em[1] != 0x01 {
		return nil, errors.New("rsa: bad signature header")
	}
	sep := -1
	for i := 2; i < len(em); i++ {
		if em[i] == 0x00 {
			sep = i
			break
		}
		if em[i] != 0xff {
			return nil, errors.New("rsa: bad signature padding")
		}
	}
	if sep < 10 {
		return nil, errors.New("rsa: signature padding too short")
	}
	return em[sep+1:], nil
}
