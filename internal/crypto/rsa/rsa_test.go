package rsa

import (
	"bytes"
	"testing"

	"repro/internal/crypto/bignum"
	"repro/internal/crypto/prng"
)

func genTestKey(t *testing.T, bits int) *PrivateKey {
	t.Helper()
	key, err := GenerateKey(prng.NewXorshift(0xbeef), bits)
	if err != nil {
		t.Fatalf("GenerateKey(%d): %v", bits, err)
	}
	return key
}

func TestGenerateKeyStructure(t *testing.T) {
	key := genTestKey(t, 256)
	if key.N.BitLen() != 256 {
		t.Errorf("modulus bits = %d, want 256", key.N.BitLen())
	}
	if key.P.Mul(key.Q).Cmp(key.N) != 0 {
		t.Error("p*q != n")
	}
	// e*d ≡ 1 mod phi
	phi := key.P.Sub(bignum.One()).Mul(key.Q.Sub(bignum.One()))
	if key.E.ModMul(key.D, phi).Cmp(bignum.One()) != 0 {
		t.Error("e*d != 1 mod phi")
	}
}

func TestGenerateKeyRejectsTiny(t *testing.T) {
	if _, err := GenerateKey(prng.NewXorshift(1), 64); err == nil {
		t.Error("64-bit key accepted")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	key := genTestKey(t, 384)
	rng := prng.NewXorshift(7)
	for _, msg := range [][]byte{
		[]byte("k"),
		[]byte("session-key-0123"),
		bytes.Repeat([]byte{0xab}, key.MaxPlaintext()),
	} {
		ct, err := key.EncryptPKCS1(rng, msg)
		if err != nil {
			t.Fatalf("encrypt %d bytes: %v", len(msg), err)
		}
		pt, err := key.DecryptPKCS1(ct)
		if err != nil {
			t.Fatalf("decrypt: %v", err)
		}
		if !bytes.Equal(pt, msg) {
			t.Errorf("round trip = %x, want %x", pt, msg)
		}
	}
}

func TestEncryptRejectsTooLong(t *testing.T) {
	key := genTestKey(t, 256)
	long := make([]byte, key.MaxPlaintext()+1)
	if _, err := key.EncryptPKCS1(prng.NewXorshift(1), long); err == nil {
		t.Error("oversized message accepted")
	}
}

func TestDecryptRejectsGarbage(t *testing.T) {
	key := genTestKey(t, 256)
	if _, err := key.DecryptPKCS1(make([]byte, 5)); err == nil {
		t.Error("short ciphertext accepted")
	}
	garbage := bytes.Repeat([]byte{0xff}, (key.N.BitLen()+7)/8)
	if _, err := key.DecryptPKCS1(garbage); err == nil {
		t.Error("ciphertext >= modulus accepted")
	}
}

func TestDecryptDetectsTampering(t *testing.T) {
	key := genTestKey(t, 384)
	ct, err := key.EncryptPKCS1(prng.NewXorshift(3), []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	tampered := 0
	for i := range ct {
		mod := append([]byte(nil), ct...)
		mod[i] ^= 0x01
		if pt, err := key.DecryptPKCS1(mod); err != nil || !bytes.Equal(pt, []byte("secret")) {
			tampered++
		}
	}
	// Raw RSA without MAC can't catch every flip, but padding should
	// catch the overwhelming majority.
	if tampered < len(ct)*9/10 {
		t.Errorf("only %d/%d tampered ciphertexts rejected or altered", tampered, len(ct))
	}
}

func TestSignVerify(t *testing.T) {
	key := genTestKey(t, 384)
	digest := []byte("0123456789abcdef")
	sig, err := key.SignRaw(digest)
	if err != nil {
		t.Fatal(err)
	}
	got, err := key.VerifyRaw(sig)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if !bytes.Equal(got, digest) {
		t.Errorf("recovered digest %x, want %x", got, digest)
	}
	// Corrupt signature must fail.
	sig[4] ^= 0xff
	if _, err := key.VerifyRaw(sig); err == nil {
		t.Error("corrupt signature verified")
	}
}

func TestIsProbablePrimeKnownValues(t *testing.T) {
	rng := prng.NewXorshift(1)
	primes := []uint64{2, 3, 5, 7, 97, 65537, 1000003, 2147483647}
	for _, p := range primes {
		if !isProbablePrime(rng, bignum.FromUint64(p)) {
			t.Errorf("%d reported composite", p)
		}
	}
	composites := []uint64{1, 4, 9, 91, 561, 6601, 41041, 825265} // incl. Carmichael numbers
	for _, c := range composites {
		if isProbablePrime(rng, bignum.FromUint64(c)) {
			t.Errorf("%d reported prime", c)
		}
	}
}

func TestGenPrimeBitLength(t *testing.T) {
	rng := prng.NewXorshift(0x1234)
	for _, bits := range []int{64, 96, 128} {
		p := genPrime(rng, bits)
		if p.BitLen() != bits {
			t.Errorf("genPrime(%d) has %d bits", bits, p.BitLen())
		}
		if !p.IsOdd() {
			t.Errorf("genPrime(%d) is even", bits)
		}
	}
}

func TestDeterministicKeygen(t *testing.T) {
	k1, err := GenerateKey(prng.NewXorshift(42), 256)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := GenerateKey(prng.NewXorshift(42), 256)
	if err != nil {
		t.Fatal(err)
	}
	if k1.N.Cmp(k2.N) != 0 || k1.D.Cmp(k2.D) != 0 {
		t.Error("same seed produced different keys")
	}
}

func BenchmarkGenerateKey512(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := GenerateKey(prng.NewXorshift(uint64(i)+1), 512); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecrypt512(b *testing.B) {
	key, err := GenerateKey(prng.NewXorshift(9), 512)
	if err != nil {
		b.Fatal(err)
	}
	ct, err := key.EncryptPKCS1(prng.NewXorshift(10), []byte("sixteen-byte-key"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := key.DecryptPKCS1(ct); err != nil {
			b.Fatal(err)
		}
	}
}
