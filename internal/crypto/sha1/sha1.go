// Package sha1 implements the SHA-1 hash and HMAC-SHA1 from scratch
// (crypto/sha1 is deliberately not imported). SSL-era libraries like
// issl used MD5/SHA-1 for key derivation and record authentication;
// this package supplies both needs for the simulated library.
//
// SHA-1 is obsolete for collision resistance today; it is used here
// solely to reproduce a 2003-era protocol stack.
package sha1

// Size is the digest length in bytes.
const Size = 20

// BlockSize is the compression-function block length in bytes.
const BlockSize = 64

// Digest is a streaming SHA-1 computation. The zero value is NOT
// ready; use New.
type Digest struct {
	h      [5]uint32
	block  [BlockSize]byte
	nBlock int
	length uint64
}

// New returns an initialized SHA-1 state.
func New() *Digest {
	d := &Digest{}
	d.Reset()
	return d
}

// Reset restores the initial state.
func (d *Digest) Reset() {
	d.h = [5]uint32{0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0}
	d.nBlock = 0
	d.length = 0
}

// Write absorbs data. It never fails.
func (d *Digest) Write(p []byte) (int, error) {
	n := len(p)
	d.length += uint64(n)
	for len(p) > 0 {
		c := copy(d.block[d.nBlock:], p)
		d.nBlock += c
		p = p[c:]
		if d.nBlock == BlockSize {
			d.compress(d.block[:])
			d.nBlock = 0
		}
	}
	return n, nil
}

// Sum appends the digest of everything written so far to b, without
// disturbing the running state.
func (d *Digest) Sum(b []byte) []byte {
	cp := *d
	bitLen := cp.length * 8
	cp.Write([]byte{0x80})
	for cp.nBlock != 56 {
		cp.Write([]byte{0})
	}
	var lenb [8]byte
	for i := 0; i < 8; i++ {
		lenb[i] = byte(bitLen >> (56 - 8*i))
	}
	cp.Write(lenb[:])
	out := make([]byte, 0, Size)
	for _, w := range cp.h {
		out = append(out, byte(w>>24), byte(w>>16), byte(w>>8), byte(w))
	}
	return append(b, out...)
}

func rotl32(x uint32, n uint) uint32 { return x<<n | x>>(32-n) }

func (d *Digest) compress(block []byte) {
	var w [80]uint32
	for i := 0; i < 16; i++ {
		w[i] = uint32(block[4*i])<<24 | uint32(block[4*i+1])<<16 |
			uint32(block[4*i+2])<<8 | uint32(block[4*i+3])
	}
	for i := 16; i < 80; i++ {
		w[i] = rotl32(w[i-3]^w[i-8]^w[i-14]^w[i-16], 1)
	}
	a, b, c, dd, e := d.h[0], d.h[1], d.h[2], d.h[3], d.h[4]
	for i := 0; i < 80; i++ {
		var f, k uint32
		switch {
		case i < 20:
			f = b&c | ^b&dd
			k = 0x5a827999
		case i < 40:
			f = b ^ c ^ dd
			k = 0x6ed9eba1
		case i < 60:
			f = b&c | b&dd | c&dd
			k = 0x8f1bbcdc
		default:
			f = b ^ c ^ dd
			k = 0xca62c1d6
		}
		tmp := rotl32(a, 5) + f + e + k + w[i]
		e, dd, c, b, a = dd, c, rotl32(b, 30), a, tmp
	}
	d.h[0] += a
	d.h[1] += b
	d.h[2] += c
	d.h[3] += dd
	d.h[4] += e
}

// Sum1 is the one-shot convenience form.
func Sum1(data []byte) [Size]byte {
	d := New()
	d.Write(data)
	var out [Size]byte
	copy(out[:], d.Sum(nil))
	return out
}

// HMAC computes HMAC-SHA1(key, msg) per RFC 2104.
func HMAC(key, msg []byte) [Size]byte {
	if len(key) > BlockSize {
		s := Sum1(key)
		key = s[:]
	}
	var ipad, opad [BlockSize]byte
	copy(ipad[:], key)
	copy(opad[:], key)
	for i := range ipad {
		ipad[i] ^= 0x36
		opad[i] ^= 0x5c
	}
	inner := New()
	inner.Write(ipad[:])
	inner.Write(msg)
	outer := New()
	outer.Write(opad[:])
	outer.Write(inner.Sum(nil))
	var out [Size]byte
	copy(out[:], outer.Sum(nil))
	return out
}
