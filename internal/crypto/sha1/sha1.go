// Package sha1 implements the SHA-1 hash and HMAC-SHA1 from scratch
// (crypto/sha1 is deliberately not imported). SSL-era libraries like
// issl used MD5/SHA-1 for key derivation and record authentication;
// this package supplies both needs for the simulated library.
//
// SHA-1 is obsolete for collision resistance today; it is used here
// solely to reproduce a 2003-era protocol stack.
//
// The compression function is unrolled into the four 20-round stages
// (constant f/k per stage) and the streaming paths allocate nothing,
// so the issl record layer can MAC every record without garbage. The
// original straight-from-spec round loop is kept as compressRef and
// diffed against the unrolled one by the package tests.
package sha1

// Size is the digest length in bytes.
const Size = 20

// BlockSize is the compression-function block length in bytes.
const BlockSize = 64

// Digest is a streaming SHA-1 computation. The zero value is NOT
// ready; use New.
type Digest struct {
	h      [5]uint32
	block  [BlockSize]byte
	nBlock int
	length uint64
}

// New returns an initialized SHA-1 state.
func New() *Digest {
	d := &Digest{}
	d.Reset()
	return d
}

// Reset restores the initial state.
func (d *Digest) Reset() {
	d.h = [5]uint32{0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0}
	d.nBlock = 0
	d.length = 0
}

// Write absorbs data. It never fails.
func (d *Digest) Write(p []byte) (int, error) {
	n := len(p)
	d.length += uint64(n)
	if d.nBlock > 0 {
		c := copy(d.block[d.nBlock:], p)
		d.nBlock += c
		p = p[c:]
		if d.nBlock == BlockSize {
			d.compress(d.block[:])
			d.nBlock = 0
		}
	}
	for len(p) >= BlockSize {
		d.compress(p[:BlockSize])
		p = p[BlockSize:]
	}
	if len(p) > 0 {
		d.nBlock = copy(d.block[:], p)
	}
	return n, nil
}

// Sum appends the digest of everything written so far to b, without
// disturbing the running state.
func (d *Digest) Sum(b []byte) []byte {
	var out [Size]byte
	d.SumInto(&out)
	return append(b, out[:]...)
}

// SumInto writes the digest of everything written so far into out,
// without disturbing the running state and without allocating.
func (d *Digest) SumInto(out *[Size]byte) {
	cp := *d
	bitLen := cp.length * 8
	// Padding: 0x80, zeros to 56 mod 64, then the 64-bit length.
	var pad [BlockSize + 8]byte
	pad[0] = 0x80
	padLen := 1 + (55-int(cp.length)%BlockSize+BlockSize)%BlockSize
	for i := 0; i < 8; i++ {
		pad[padLen+i] = byte(bitLen >> (56 - 8*i))
	}
	cp.Write(pad[:padLen+8])
	for i, w := range cp.h {
		out[4*i] = byte(w >> 24)
		out[4*i+1] = byte(w >> 16)
		out[4*i+2] = byte(w >> 8)
		out[4*i+3] = byte(w)
	}
}

func rotl32(x uint32, n uint) uint32 { return x<<n | x>>(32-n) }

// compress is the unrolled SHA-1 compression function: the message
// schedule feeds a 16-word ring and the 80 rounds run as four straight
// 20-round stages so f and k are loop constants.
func (d *Digest) compress(block []byte) {
	var w [16]uint32
	for i := 0; i < 16; i++ {
		w[i] = uint32(block[4*i])<<24 | uint32(block[4*i+1])<<16 |
			uint32(block[4*i+2])<<8 | uint32(block[4*i+3])
	}
	a, b, c, dd, e := d.h[0], d.h[1], d.h[2], d.h[3], d.h[4]
	i := 0
	for ; i < 16; i++ {
		tmp := rotl32(a, 5) + (b&c | ^b&dd) + e + 0x5a827999 + w[i&15]
		e, dd, c, b, a = dd, c, rotl32(b, 30), a, tmp
	}
	for ; i < 20; i++ {
		wi := rotl32(w[(i+13)&15]^w[(i+8)&15]^w[(i+2)&15]^w[i&15], 1)
		w[i&15] = wi
		tmp := rotl32(a, 5) + (b&c | ^b&dd) + e + 0x5a827999 + wi
		e, dd, c, b, a = dd, c, rotl32(b, 30), a, tmp
	}
	for ; i < 40; i++ {
		wi := rotl32(w[(i+13)&15]^w[(i+8)&15]^w[(i+2)&15]^w[i&15], 1)
		w[i&15] = wi
		tmp := rotl32(a, 5) + (b ^ c ^ dd) + e + 0x6ed9eba1 + wi
		e, dd, c, b, a = dd, c, rotl32(b, 30), a, tmp
	}
	for ; i < 60; i++ {
		wi := rotl32(w[(i+13)&15]^w[(i+8)&15]^w[(i+2)&15]^w[i&15], 1)
		w[i&15] = wi
		tmp := rotl32(a, 5) + (b&c | b&dd | c&dd) + e + 0x8f1bbcdc + wi
		e, dd, c, b, a = dd, c, rotl32(b, 30), a, tmp
	}
	for ; i < 80; i++ {
		wi := rotl32(w[(i+13)&15]^w[(i+8)&15]^w[(i+2)&15]^w[i&15], 1)
		w[i&15] = wi
		tmp := rotl32(a, 5) + (b ^ c ^ dd) + e + 0xca62c1d6 + wi
		e, dd, c, b, a = dd, c, rotl32(b, 30), a, tmp
	}
	d.h[0] += a
	d.h[1] += b
	d.h[2] += c
	d.h[3] += dd
	d.h[4] += e
}

// compressRef is the straight-from-spec round loop the seed kernel
// used, retained as the in-package oracle for the unrolled compress.
func (d *Digest) compressRef(block []byte) {
	var w [80]uint32
	for i := 0; i < 16; i++ {
		w[i] = uint32(block[4*i])<<24 | uint32(block[4*i+1])<<16 |
			uint32(block[4*i+2])<<8 | uint32(block[4*i+3])
	}
	for i := 16; i < 80; i++ {
		w[i] = rotl32(w[i-3]^w[i-8]^w[i-14]^w[i-16], 1)
	}
	a, b, c, dd, e := d.h[0], d.h[1], d.h[2], d.h[3], d.h[4]
	for i := 0; i < 80; i++ {
		var f, k uint32
		switch {
		case i < 20:
			f = b&c | ^b&dd
			k = 0x5a827999
		case i < 40:
			f = b ^ c ^ dd
			k = 0x6ed9eba1
		case i < 60:
			f = b&c | b&dd | c&dd
			k = 0x8f1bbcdc
		default:
			f = b ^ c ^ dd
			k = 0xca62c1d6
		}
		tmp := rotl32(a, 5) + f + e + k + w[i]
		e, dd, c, b, a = dd, c, rotl32(b, 30), a, tmp
	}
	d.h[0] += a
	d.h[1] += b
	d.h[2] += c
	d.h[3] += dd
	d.h[4] += e
}

// Sum1 is the one-shot convenience form.
func Sum1(data []byte) [Size]byte {
	var d Digest
	d.Reset()
	d.Write(data)
	var out [Size]byte
	d.SumInto(&out)
	return out
}

// HMAC computes HMAC-SHA1(key, msg) per RFC 2104.
func HMAC(key, msg []byte) [Size]byte {
	var h HMACState
	h.Init(key)
	h.Write(msg)
	var out [Size]byte
	h.SumInto(&out)
	return out
}

// HMACState is a reusable HMAC-SHA1 computation that caches the
// inner- and outer-pad digest states at key setup, so each message
// costs two fewer compressions than a from-scratch HMAC and the whole
// MAC path allocates nothing. Reset rewinds to the keyed state; the
// issl record layer Resets once per record.
type HMACState struct {
	inner, outer         Digest // running states
	innerInit, outerInit Digest // states right after absorbing the pads
}

// NewHMAC returns an HMACState keyed with key.
func NewHMAC(key []byte) *HMACState {
	h := &HMACState{}
	h.Init(key)
	return h
}

// Init keys (or re-keys) the state.
func (h *HMACState) Init(key []byte) {
	var keyBuf [Size]byte
	if len(key) > BlockSize {
		var d Digest
		d.Reset()
		d.Write(key)
		d.SumInto(&keyBuf)
		key = keyBuf[:]
	}
	var ipad, opad [BlockSize]byte
	copy(ipad[:], key)
	copy(opad[:], key)
	for i := range ipad {
		ipad[i] ^= 0x36
		opad[i] ^= 0x5c
	}
	h.innerInit.Reset()
	h.innerInit.Write(ipad[:])
	h.outerInit.Reset()
	h.outerInit.Write(opad[:])
	h.Reset()
}

// Reset rewinds to the keyed state (pads absorbed, no message bytes).
func (h *HMACState) Reset() {
	h.inner = h.innerInit
	h.outer = h.outerInit
}

// Write absorbs message bytes.
func (h *HMACState) Write(p []byte) (int, error) { return h.inner.Write(p) }

// SumInto finalizes the MAC into out without disturbing the running
// state and without allocating. Call Reset before the next message.
func (h *HMACState) SumInto(out *[Size]byte) {
	var innerSum [Size]byte
	h.inner.SumInto(&innerSum)
	outer := h.outer
	outer.Write(innerSum[:])
	outer.SumInto(out)
}
