package sha1

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/race"
)

// TestCompressEquivalence diffs the unrolled compression function
// against the retained straight-from-spec loop over 10k seeded blocks,
// from randomized chaining states.
func TestCompressEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	block := make([]byte, BlockSize)
	for i := 0; i < 10_000; i++ {
		var fast, ref Digest
		for j := range fast.h {
			fast.h[j] = rng.Uint32()
		}
		ref.h = fast.h
		rng.Read(block)
		fast.compress(block)
		ref.compressRef(block)
		if fast.h != ref.h {
			t.Fatalf("vector %d: unrolled %x != reference %x", i, fast.h, ref.h)
		}
	}
}

// TestHMACStateMatchesOneShot checks the pad-caching streaming HMAC
// against the one-shot form over 10k seeded key/message pairs, with
// state reuse across messages (the record-layer usage pattern).
func TestHMACStateMatchesOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var st *HMACState
	var key []byte
	for i := 0; i < 10_000; i++ {
		if i%8 == 0 { // re-key every 8 messages
			key = make([]byte, 1+rng.Intn(100))
			rng.Read(key)
			st = NewHMAC(key)
		} else {
			st.Reset()
		}
		msg := make([]byte, rng.Intn(300))
		rng.Read(msg)
		st.Write(msg)
		var got [Size]byte
		st.SumInto(&got)
		want := HMAC(key, msg)
		if got != want {
			t.Fatalf("vector %d: streaming %x != one-shot %x", i, got, want)
		}
	}
}

func TestStreamingZeroAlloc(t *testing.T) {
	if race.Enabled {
		t.Skip("AllocsPerRun is not meaningful under the race detector")
	}
	msg := make([]byte, 300)
	st := NewHMAC([]byte("record mac key twenty"))
	var out [Size]byte
	if n := testing.AllocsPerRun(100, func() {
		st.Reset()
		st.Write(msg)
		st.SumInto(&out)
	}); n != 0 {
		t.Errorf("HMAC stream allocates %v per MAC, want 0", n)
	}
	var d Digest
	if n := testing.AllocsPerRun(100, func() {
		d.Reset()
		d.Write(msg)
		d.SumInto(&out)
	}); n != 0 {
		t.Errorf("Digest stream allocates %v per hash, want 0", n)
	}
}

func TestSumIntoMatchesSum(t *testing.T) {
	d := New()
	d.Write([]byte("both forms agree"))
	var a [Size]byte
	d.SumInto(&a)
	if !bytes.Equal(a[:], d.Sum(nil)) {
		t.Error("SumInto != Sum")
	}
}

func BenchmarkCompressUnrolled(b *testing.B) {
	var d Digest
	d.Reset()
	block := make([]byte, BlockSize)
	b.SetBytes(BlockSize)
	for i := 0; i < b.N; i++ {
		d.compress(block)
	}
}

func BenchmarkCompressRef(b *testing.B) {
	var d Digest
	d.Reset()
	block := make([]byte, BlockSize)
	b.SetBytes(BlockSize)
	for i := 0; i < b.N; i++ {
		d.compressRef(block)
	}
}

func BenchmarkHMACStream_256B(b *testing.B) {
	st := NewHMAC([]byte("record mac key twenty"))
	msg := make([]byte, 256)
	var out [Size]byte
	b.SetBytes(256)
	for i := 0; i < b.N; i++ {
		st.Reset()
		st.Write(msg)
		st.SumInto(&out)
	}
}

func BenchmarkHMACOneShot_256B(b *testing.B) {
	key := []byte("record mac key twenty")
	msg := make([]byte, 256)
	b.SetBytes(256)
	for i := 0; i < b.N; i++ {
		HMAC(key, msg)
	}
}
