package sha1

import (
	"bytes"
	"encoding/hex"
	"strings"
	"testing"
	"testing/quick"
)

// FIPS 180-1 and RFC 3174 test vectors.
var vectors = []struct {
	in   string
	want string
}{
	{"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"},
	{"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"},
	{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
		"84983e441c3bd26ebaae4aa1f95129e5e54670f1"},
	{"The quick brown fox jumps over the lazy dog",
		"2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"},
}

func TestVectors(t *testing.T) {
	for _, v := range vectors {
		got := Sum1([]byte(v.in))
		if hex.EncodeToString(got[:]) != v.want {
			t.Errorf("SHA1(%q) = %x, want %s", v.in, got, v.want)
		}
	}
}

func TestMillionA(t *testing.T) {
	d := New()
	chunk := bytes.Repeat([]byte{'a'}, 1000)
	for i := 0; i < 1000; i++ {
		d.Write(chunk)
	}
	got := hex.EncodeToString(d.Sum(nil))
	if got != "34aa973cd4c4daa4f61eeb2bdbad27316534016f" {
		t.Errorf("SHA1(10^6 x 'a') = %s", got)
	}
}

func TestIncrementalMatchesOneShot(t *testing.T) {
	f := func(a, b, c []byte) bool {
		d := New()
		d.Write(a)
		d.Write(b)
		d.Write(c)
		all := append(append(append([]byte{}, a...), b...), c...)
		want := Sum1(all)
		return bytes.Equal(d.Sum(nil), want[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSumDoesNotDisturbState(t *testing.T) {
	d := New()
	d.Write([]byte("hello "))
	first := d.Sum(nil)
	second := d.Sum(nil)
	if !bytes.Equal(first, second) {
		t.Error("repeated Sum differs")
	}
	d.Write([]byte("world"))
	want := Sum1([]byte("hello world"))
	if !bytes.Equal(d.Sum(nil), want[:]) {
		t.Error("state disturbed by Sum")
	}
}

func TestReset(t *testing.T) {
	d := New()
	d.Write([]byte("garbage"))
	d.Reset()
	d.Write([]byte("abc"))
	want := Sum1([]byte("abc"))
	if !bytes.Equal(d.Sum(nil), want[:]) {
		t.Error("Reset did not restore initial state")
	}
}

func TestBoundaryLengths(t *testing.T) {
	// Message lengths straddling the 55/56/64-byte padding boundaries.
	for _, n := range []int{54, 55, 56, 57, 63, 64, 65, 119, 120, 128} {
		msg := []byte(strings.Repeat("x", n))
		d := New()
		d.Write(msg)
		oneShot := Sum1(msg)
		if !bytes.Equal(d.Sum(nil), oneShot[:]) {
			t.Errorf("length %d: incremental != one-shot", n)
		}
		// Distinctness sanity: appending a byte changes the digest.
		longer := Sum1(append(append([]byte{}, msg...), 'y'))
		if oneShot == longer {
			t.Errorf("length %d: extension collision", n)
		}
	}
}

// RFC 2202 HMAC-SHA1 test vectors.
func TestHMACVectors(t *testing.T) {
	cases := []struct {
		key, data []byte
		want      string
	}{
		{bytes.Repeat([]byte{0x0b}, 20), []byte("Hi There"),
			"b617318655057264e28bc0b6fb378c8ef146be00"},
		{[]byte("Jefe"), []byte("what do ya want for nothing?"),
			"effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"},
		{bytes.Repeat([]byte{0xaa}, 20), bytes.Repeat([]byte{0xdd}, 50),
			"125d7342b9ac11cd91a39af48aa17b4f63f175d3"},
		{bytes.Repeat([]byte{0xaa}, 80),
			[]byte("Test Using Larger Than Block-Size Key - Hash Key First"),
			"aa4ae5e15272d00e95705637ce8a3b55ed402112"},
	}
	for i, c := range cases {
		got := HMAC(c.key, c.data)
		if hex.EncodeToString(got[:]) != c.want {
			t.Errorf("case %d: HMAC = %x, want %s", i, got, c.want)
		}
	}
}

func TestHMACKeySensitivity(t *testing.T) {
	msg := []byte("record payload")
	a := HMAC([]byte("key-one"), msg)
	b := HMAC([]byte("key-two"), msg)
	if a == b {
		t.Error("different keys gave identical MACs")
	}
}

func BenchmarkSHA1_1K(b *testing.B) {
	data := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		Sum1(data)
	}
}
