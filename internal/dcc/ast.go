package dcc

// Types in the subset.
type ctype int

const (
	typeVoid ctype = iota
	typeChar       // unsigned 8-bit in storage, widened to int in expressions
	typeInt        // signed 16-bit
)

func (t ctype) size() int {
	if t == typeChar {
		return 1
	}
	return 2
}

func (t ctype) String() string {
	switch t {
	case typeChar:
		return "char"
	case typeInt:
		return "int"
	default:
		return "void"
	}
}

// varDecl is a global, static local, or parameter.
type varDecl struct {
	name     string
	typ      ctype
	arrayLen int   // 0 for scalars
	init     []int // initializer values (globals only)
	xmem     bool  // placed in the bank-switched window
	// explicitPlacement records a root/xmem keyword, which overrides
	// the compiler's -rootdata default for arrays.
	explicitPlacement bool
	label             string
	line              int
}

// funcDecl is a function definition.
type funcDecl struct {
	name   string
	ret    ctype
	params []*varDecl
	locals []*varDecl // static storage, Dynamic C default
	body   *blockStmt
	line   int
}

// Statements.
type stmt interface{ stmtNode() }

type blockStmt struct{ stmts []stmt }
type exprStmt struct{ e expr }
type ifStmt struct {
	cond      expr
	then, els stmt
}
type whileStmt struct {
	cond expr
	body stmt
}
type doWhileStmt struct {
	body stmt
	cond expr
}
type forStmt struct {
	init, post expr // may be nil
	cond       expr // may be nil
	body       stmt
}
type returnStmt struct{ e expr } // e may be nil
type breakStmt struct{}
type continueStmt struct{}
type declStmt struct{ d *varDecl } // declaration with optional scalar init

func (*blockStmt) stmtNode()    {}
func (*exprStmt) stmtNode()     {}
func (*ifStmt) stmtNode()       {}
func (*whileStmt) stmtNode()    {}
func (*doWhileStmt) stmtNode()  {}
func (*forStmt) stmtNode()      {}
func (*returnStmt) stmtNode()   {}
func (*breakStmt) stmtNode()    {}
func (*continueStmt) stmtNode() {}
func (*declStmt) stmtNode()     {}

// Expressions.
type expr interface{ exprNode() }

type numExpr struct{ v int }
type varExpr struct {
	name string
	decl *varDecl // resolved
}
type indexExpr struct {
	base *varExpr
	idx  expr
}
type callExpr struct {
	name string
	args []expr
	fn   *funcDecl
}
type unaryExpr struct {
	op string // - ! ~
	e  expr
}
type binExpr struct {
	op   string
	l, r expr
}
type assignExpr struct {
	op  string // = += -= ^= &= |= <<= >>= *= /= %=
	lhs expr   // varExpr or indexExpr
	rhs expr
}

type ternaryExpr struct {
	cond, then, els expr
}

type incDecExpr struct {
	op     string // "++" or "--"
	target expr   // varExpr or indexExpr
	post   bool   // postfix (value is the OLD value)
}

func (*numExpr) exprNode()     {}
func (*incDecExpr) exprNode()  {}
func (*ternaryExpr) exprNode() {}
func (*varExpr) exprNode()     {}
func (*indexExpr) exprNode()   {}
func (*callExpr) exprNode()    {}
func (*unaryExpr) exprNode()   {}
func (*binExpr) exprNode()     {}
func (*assignExpr) exprNode()  {}

// program is a parsed translation unit.
type program struct {
	globals []*varDecl
	funcs   []*funcDecl
}
