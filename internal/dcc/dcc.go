package dcc

import (
	"fmt"

	"repro/internal/rabbit"
	"repro/internal/rasm"
)

// Compilation is the result of compiling a translation unit.
type Compilation struct {
	// Asm is the generated assembly text.
	Asm string
	// Program is the assembled image.
	Program *rasm.Program
	// Options echoes the knobs used.
	Options Options
}

// Compile translates Dynamic C subset source into a loadable image.
func Compile(src string, opt Options) (*Compilation, error) {
	prog, err := parse(src)
	if err != nil {
		return nil, err
	}
	g := &codegen{opt: opt, prog: prog}
	asmText, err := g.generate()
	if err != nil {
		return nil, err
	}
	img, err := rasm.Assemble(asmText)
	if err != nil {
		return nil, fmt.Errorf("dcc: backend: %w", err)
	}
	return &Compilation{Asm: asmText, Program: img, Options: opt}, nil
}

// CodeSize returns the size of the code section in bytes (up to the
// code_end marker; data excluded) — the paper's E3 metric.
func (c *Compilation) CodeSize() int {
	end, ok := c.Program.Symbols["code_end"]
	if !ok {
		return c.Program.Size()
	}
	return int(end - c.Program.Origin)
}

// Symbol returns the address of a global (by C name).
func (c *Compilation) Symbol(name string) (uint16, bool) {
	v, ok := c.Program.Symbols["_g_"+name]
	return v, ok
}

// Machine is a Rabbit with a compiled program loaded and the XPC bank
// register wired to the I/O port the generated code programs.
type Machine struct {
	CPU  *rabbit.CPU
	comp *Compilation
}

// xpcBus routes the XPC port write to the MMU, everything else nowhere.
type xpcBus struct{ mem *rabbit.Memory }

func (b xpcBus) In(port uint16) uint8 {
	if port == XPCPort {
		return b.mem.XPC
	}
	return 0xff
}

func (b xpcBus) Out(port uint16, v uint8) {
	if port == XPCPort {
		b.mem.XPC = v
	}
}

// EnableProfiler attaches a cycle profiler for the compiled program to
// the machine's CPU and returns it. The profiler survives CPU.Reset
// (its totals restart with CPU.Cycles), so it can be read after a run.
func (m *Machine) EnableProfiler() *rabbit.Profiler {
	p := rabbit.NewProgramProfiler(m.comp.Program.Origin, m.comp.Program.Code, m.comp.Program.Symbols)
	p.Attach(m.CPU)
	return p
}

// NewMachine loads the compiled image at address 0.
func NewMachine(comp *Compilation) *Machine {
	cpu := rabbit.New()
	cpu.IO = xpcBus{mem: cpu.Mem}
	cpu.Mem.LoadPhysical(uint32(comp.Program.Origin), comp.Program.Code)
	cpu.PC = comp.Program.Origin
	return &Machine{CPU: cpu, comp: comp}
}

// Reset reloads the image and resets the CPU (statics regain their
// compile-time initial values).
func (m *Machine) Reset() {
	m.CPU.Reset()
	for i := range m.CPU.Mem.Phys {
		m.CPU.Mem.Phys[i] = 0
	}
	m.CPU.Mem.LoadPhysical(uint32(m.comp.Program.Origin), m.comp.Program.Code)
	m.CPU.PC = m.comp.Program.Origin
}

// Run executes until HALT within the cycle budget.
func (m *Machine) Run(budget uint64) error {
	return m.CPU.Run(budget)
}

// PokeBytes writes bytes at a global char array.
func (m *Machine) PokeBytes(name string, data []byte) error {
	addr, ok := m.comp.Symbol(name)
	if !ok {
		return fmt.Errorf("dcc: no global %q", name)
	}
	for i, b := range data {
		m.CPU.Mem.Write(addr+uint16(i), b)
	}
	return nil
}

// PeekBytes reads bytes from a global char array.
func (m *Machine) PeekBytes(name string, n int) ([]byte, error) {
	addr, ok := m.comp.Symbol(name)
	if !ok {
		return nil, fmt.Errorf("dcc: no global %q", name)
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = m.CPU.Mem.Read(addr + uint16(i))
	}
	return out, nil
}

// PokeInt writes a 16-bit global.
func (m *Machine) PokeInt(name string, v uint16) error {
	addr, ok := m.comp.Symbol(name)
	if !ok {
		return fmt.Errorf("dcc: no global %q", name)
	}
	m.CPU.Mem.Write16(addr, v)
	return nil
}

// PeekInt reads a 16-bit global.
func (m *Machine) PeekInt(name string) (uint16, error) {
	addr, ok := m.comp.Symbol(name)
	if !ok {
		return 0, fmt.Errorf("dcc: no global %q", name)
	}
	return m.CPU.Mem.Read16(addr), nil
}
