package dcc

import (
	"errors"
	"os"
	"strings"
	"testing"
)

// compileRun compiles src with opts, runs it, and returns the machine.
func compileRun(t *testing.T, src string, opt Options) *Machine {
	t.Helper()
	comp, err := Compile(src, opt)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := NewMachine(comp)
	if err := m.Run(50_000_000); err != nil {
		t.Fatalf("run: %v (%s)", err, m.CPU)
	}
	return m
}

// expectInt compiles+runs and checks global `out`.
func expectInt(t *testing.T, src string, want int, opt Options) {
	t.Helper()
	m := compileRun(t, src, opt)
	got, err := m.PeekInt("out")
	if err != nil {
		t.Fatal(err)
	}
	if int16(got) != int16(want) {
		t.Errorf("out = %d, want %d\nsource:\n%s", int16(got), want, src)
	}
}

// allOptionSets exercises every knob combination on semantics tests:
// optimizations must never change results.
var allOptionSets = []Options{
	{Debug: true},
	{},
	{Unroll: true},
	{RootData: true},
	{Peephole: true},
	{Unroll: true, RootData: true, Peephole: true},
	{Debug: true, Unroll: true, RootData: true, Peephole: true},
}

func expectIntAll(t *testing.T, src string, want int) {
	t.Helper()
	for _, opt := range allOptionSets {
		expectInt(t, src, want, opt)
	}
}

func TestArithmetic(t *testing.T) {
	expectIntAll(t, `int out; void main() { out = 2 + 3 * 4 - 1; }`, 13)
	expectIntAll(t, `int out; void main() { out = (2 + 3) * 4; }`, 20)
	expectIntAll(t, `int out; void main() { out = 100 / 7; }`, 14)
	expectIntAll(t, `int out; void main() { out = 100 % 7; }`, 2)
	expectIntAll(t, `int out; void main() { out = -5 * 3; }`, -15)
	expectIntAll(t, `int out; void main() { out = -17 / 5; }`, -3)
	expectIntAll(t, `int out; void main() { out = -17 % 5; }`, -2)
	expectIntAll(t, `int out; void main() { out = 17 % -5; }`, 2)
}

func TestBitwiseAndShifts(t *testing.T) {
	expectIntAll(t, `int out; void main() { out = 0xF0 & 0x3C; }`, 0x30)
	expectIntAll(t, `int out; void main() { out = 0xF0 | 0x0F; }`, 0xFF)
	expectIntAll(t, `int out; void main() { out = 0xFF ^ 0x0F; }`, 0xF0)
	expectIntAll(t, `int out; void main() { out = 1 << 10; }`, 1024)
	expectIntAll(t, `int out; void main() { out = 1024 >> 3; }`, 128)
	expectIntAll(t, `int out; int n; void main() { n = 4; out = 3 << n; }`, 48)
	expectIntAll(t, `int out; void main() { out = ~0x0F & 0xFF; }`, 0xF0)
}

func TestComparisons(t *testing.T) {
	expectIntAll(t, `int out; void main() { out = 3 < 5; }`, 1)
	expectIntAll(t, `int out; void main() { out = 5 < 3; }`, 0)
	expectIntAll(t, `int out; void main() { out = -1 < 1; }`, 1)
	expectIntAll(t, `int out; void main() { out = -30000 < 30000; }`, 1)
	expectIntAll(t, `int out; void main() { out = 5 <= 5; }`, 1)
	expectIntAll(t, `int out; void main() { out = 5 >= 6; }`, 0)
	expectIntAll(t, `int out; void main() { out = 7 == 7; }`, 1)
	expectIntAll(t, `int out; void main() { out = 7 != 7; }`, 0)
	expectIntAll(t, `int out; void main() { out = -2 > -3; }`, 1)
}

func TestLogicalOps(t *testing.T) {
	expectIntAll(t, `int out; void main() { out = 1 && 2; }`, 1)
	expectIntAll(t, `int out; void main() { out = 1 && 0; }`, 0)
	expectIntAll(t, `int out; void main() { out = 0 || 3; }`, 1)
	expectIntAll(t, `int out; void main() { out = 0 || 0; }`, 0)
	expectIntAll(t, `int out; void main() { out = !5; }`, 0)
	expectIntAll(t, `int out; void main() { out = !0; }`, 1)
	// Short-circuit: the second operand must not execute.
	expectIntAll(t, `
int out; int side;
int bump() { side = side + 1; return 1; }
void main() { side = 0; out = 0 && bump(); out = out + side; }`, 0)
}

func TestControlFlow(t *testing.T) {
	expectIntAll(t, `
int out;
void main() {
    int i;
    out = 0;
    for (i = 0; i < 10; i = i + 1) out = out + i;
}`, 45)
	expectIntAll(t, `
int out;
void main() {
    int i;
    out = 0; i = 0;
    while (i < 5) { out = out + 2; i = i + 1; }
}`, 10)
	expectIntAll(t, `
int out;
void main() {
    if (3 > 2) out = 1; else out = 2;
}`, 1)
	expectIntAll(t, `
int out;
void main() {
    if (2 > 3) out = 1; else out = 2;
}`, 2)
	expectIntAll(t, `
int out;
void main() {
    int i;
    out = 0;
    for (i = 0; i < 100; i = i + 1) {
        if (i == 5) break;
        out = out + 1;
    }
}`, 5)
	expectIntAll(t, `
int out;
void main() {
    int i;
    out = 0;
    for (i = 0; i < 10; i = i + 1) {
        if (i % 2) continue;
        out = out + 1;
    }
}`, 5)
}

func TestFunctionsAndParams(t *testing.T) {
	expectIntAll(t, `
int out;
int add3(int a, int b, int c) { return a + b + c; }
void main() { out = add3(1, 2, 3); }`, 6)
	expectIntAll(t, `
int out;
int square(int x) { return x * x; }
int sumsq(int a, int b) { return square(a) + square(b); }
void main() { out = sumsq(3, 4); }`, 25)
	expectIntAll(t, `
int out;
char half(char x) { return x >> 1; }
void main() { out = half(200); }`, 100)
}

func TestCharSemantics(t *testing.T) {
	// char is unsigned 8-bit in storage.
	expectIntAll(t, `
int out; char c;
void main() { c = 200; out = c; }`, 200)
	expectIntAll(t, `
int out; char c;
void main() { c = 0x1FF; out = c; }`, 0xFF) // truncation on store
}

func TestArrays(t *testing.T) {
	expectIntAll(t, `
int out;
char buf[10];
void main() {
    int i;
    for (i = 0; i < 10; i = i + 1) buf[i] = i * 3;
    out = buf[7];
}`, 21)
	expectIntAll(t, `
int out;
int words[5];
void main() {
    words[0] = 1000;
    words[4] = 2000;
    out = words[0] + words[4];
}`, 3000)
	expectIntAll(t, `
int out;
char tab[4] = {10, 20, 30, 40};
void main() { out = tab[2]; }`, 30)
	expectIntAll(t, `
int out;
int itab[3] = {1000, -2, 3};
void main() { out = itab[0] + itab[1]; }`, 998)
}

func TestCompoundAssignment(t *testing.T) {
	expectIntAll(t, `int out; void main() { out = 10; out += 5; }`, 15)
	expectIntAll(t, `int out; void main() { out = 10; out -= 3; }`, 7)
	expectIntAll(t, `int out; void main() { out = 0xFF; out ^= 0x0F; }`, 0xF0)
	expectIntAll(t, `int out; void main() { out = 6; out *= 7; }`, 42)
	expectIntAll(t, `
int out; char b[3];
void main() { b[1] = 5; b[1] ^= 0xFF; out = b[1]; }`, 0xFA)
}

func TestStaticLocalsPersist(t *testing.T) {
	// The Dynamic C gotcha: locals are static by default, so the
	// counter persists across calls.
	expectIntAll(t, `
int out;
int counter() {
    int n;
    n = n + 1;
    return n;
}
void main() {
    counter(); counter(); counter();
    out = counter();
}`, 4)
}

func TestRecursionRejected(t *testing.T) {
	_, err := Compile(`
int out;
int fact(int n) { if (n < 2) return 1; return n * fact(n - 1); }
void main() { out = fact(5); }`, Options{})
	if !errors.Is(err, ErrSemantic) {
		t.Errorf("recursion error = %v", err)
	}
}

func TestMutualRecursionRejected(t *testing.T) {
	_, err := Compile(`
int a(int n) { return b(n); }
int b(int n) { return a(n); }
void main() { a(1); }`, Options{})
	if !errors.Is(err, ErrSemantic) {
		t.Errorf("mutual recursion error = %v", err)
	}
}

func TestAutoRejected(t *testing.T) {
	_, err := Compile(`void main() { auto int x; }`, Options{})
	if err == nil {
		t.Error("auto accepted")
	}
}

func TestSemanticErrors(t *testing.T) {
	bad := []string{
		`void main() { undefined = 1; }`,
		`void main() { nofunc(); }`,
		`int f(int a) { return a; } void main() { f(1, 2); }`,
		`char a[4]; void main() { a = 1; }`,
		`int x; void main() { x[0] = 1; }`,
		`int x; int x; void main() {}`,
		`void main() { break; }`,
		`int out;`, // no main
	}
	for _, src := range bad {
		if _, err := Compile(src, Options{}); err == nil {
			t.Errorf("compiled without error:\n%s", src)
		}
	}
}

func TestSyntaxErrors(t *testing.T) {
	bad := []string{
		`void main() { if }`,
		`void main() { 1 + ; }`,
		`void main( {}`,
		`int a[ ]; void main() {}`,
		`void main() { return 1 }`,
		`/* unterminated`,
	}
	for _, src := range bad {
		if _, err := Compile(src, Options{}); err == nil {
			t.Errorf("parsed without error:\n%s", src)
		}
	}
}

func TestXmemVsRootPlacement(t *testing.T) {
	src := `
int out;
char buf[16];
void main() {
    int i;
    for (i = 0; i < 16; i = i + 1) buf[i] = i;
    out = buf[9];
}`
	// Same answer either way, different placement.
	cXmem, err := Compile(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cRoot, err := Compile(src, Options{RootData: true})
	if err != nil {
		t.Fatal(err)
	}
	addrX, _ := cXmem.Symbol("buf")
	addrR, _ := cRoot.Symbol("buf")
	if addrX < 0xE000 {
		t.Errorf("xmem array at %04x, want >= E000", addrX)
	}
	if addrR >= 0xE000 {
		t.Errorf("root array at %04x, want < E000", addrR)
	}
	expectInt(t, src, 9, Options{})
	expectInt(t, src, 9, Options{RootData: true})
}

func TestExplicitPlacementKeywords(t *testing.T) {
	src := `
int out;
root char a[4];
xmem char b[4];
void main() { a[0] = 1; b[0] = 2; out = a[0] + b[0]; }`
	comp, err := Compile(src, Options{RootData: true})
	if err != nil {
		t.Fatal(err)
	}
	addrA, _ := comp.Symbol("a")
	addrB, _ := comp.Symbol("b")
	if addrA >= 0xE000 || addrB < 0xE000 {
		t.Errorf("explicit placement ignored: a=%04x b=%04x", addrA, addrB)
	}
	expectInt(t, src, 3, Options{RootData: true})
}

func TestOptimizationKnobsChangeCost(t *testing.T) {
	src := `
int out;
char buf[16];
void main() {
    int i; int r;
    int pass;
    out = 0;
    for (pass = 0; pass < 8; pass = pass + 1) {
        for (i = 0; i < 16; i = i + 1) buf[i] = i ^ pass;
        r = 0;
        for (i = 0; i < 16; i = i + 1) r = r + buf[i];
        out = r;
    }
}`
	cycles := func(opt Options) uint64 {
		comp, err := Compile(src, opt)
		if err != nil {
			t.Fatal(err)
		}
		m := NewMachine(comp)
		if err := m.Run(50_000_000); err != nil {
			t.Fatal(err)
		}
		return m.CPU.Cycles
	}
	debug := cycles(Options{Debug: true})
	nodebug := cycles(Options{})
	opt := cycles(Options{Unroll: true, RootData: true, Peephole: true})
	if nodebug >= debug {
		t.Errorf("disabling debug did not help: %d vs %d", nodebug, debug)
	}
	if opt >= nodebug {
		t.Errorf("full optimization did not help: %d vs %d", opt, nodebug)
	}
	t.Logf("cycles: debug=%d nodebug=%d optimized=%d", debug, nodebug, opt)
}

func TestUnrollPreservesCounterValue(t *testing.T) {
	expectIntAll(t, `
int out;
void main() {
    int i;
    for (i = 0; i < 7; i = i + 1) { }
    out = i;
}`, 7)
}

func TestGeneratedAsmMentionsKnobs(t *testing.T) {
	comp, err := Compile(`void main() {}`, Options{Unroll: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(comp.Asm, "unroll=true") {
		t.Error("asm header missing options")
	}
	if comp.CodeSize() <= 0 {
		t.Error("code size not positive")
	}
}

func TestDeepExpressionStack(t *testing.T) {
	expectIntAll(t, `
int out;
void main() {
    out = ((((1 + 2) * (3 + 4)) - ((5 - 3) * (2 + 2))) << 2) / 4;
}`, 13)
}

func TestIncDecOperators(t *testing.T) {
	expectIntAll(t, `int out; void main() { out = 5; out++; }`, 6)
	expectIntAll(t, `int out; void main() { out = 5; out--; }`, 4)
	expectIntAll(t, `int out; void main() { out = 5; ++out; }`, 6)
	expectIntAll(t, `int out; int x; void main() { x = 5; out = x++; out = out * 100 + x; }`, 506)
	expectIntAll(t, `int out; int x; void main() { x = 5; out = ++x; out = out * 100 + x; }`, 606)
	expectIntAll(t, `int out; int x; void main() { x = 5; out = x--; out = out * 100 + x; }`, 504)
	expectIntAll(t, `
int out; char b[4];
void main() { b[2] = 9; out = b[2]++; out = out * 100 + b[2]; }`, 910)
	expectIntAll(t, `
int out; int w[4];
void main() { w[1] = 1000; ++w[1]; out = w[1]; }`, 1001)
	expectIntAll(t, `
int out;
void main() {
    int i;
    out = 0;
    for (i = 0; i < 10; i++) out += 2;
}`, 20)
	// Loops written with i++ still unroll (semantics preserved).
	expectIntAll(t, `
int out;
void main() {
    int i;
    for (i = 0; i < 6; i++) { }
    out = i;
}`, 6)
}

func TestIncDecErrors(t *testing.T) {
	for _, src := range []string{
		`void main() { 5++; }`,
		`void main() { ++7; }`,
		`char a[3]; void main() { a++; }`,
	} {
		if _, err := Compile(src, Options{}); err == nil {
			t.Errorf("compiled without error: %s", src)
		}
	}
}

func TestDoWhile(t *testing.T) {
	expectIntAll(t, `
int out;
void main() {
    int i;
    out = 0; i = 0;
    do { out += 3; i++; } while (i < 4);
}`, 12)
	// Body runs at least once even when the condition is false.
	expectIntAll(t, `
int out;
void main() {
    out = 0;
    do { out = 99; } while (0);
}`, 99)
	expectIntAll(t, `
int out;
void main() {
    int i;
    out = 0; i = 0;
    do {
        i++;
        if (i == 3) continue;
        if (i == 6) break;
        out += i;
    } while (i < 100);
}`, 1+2+4+5)
}

func TestTernary(t *testing.T) {
	expectIntAll(t, `int out; void main() { out = 1 ? 10 : 20; }`, 10)
	expectIntAll(t, `int out; void main() { out = 0 ? 10 : 20; }`, 20)
	expectIntAll(t, `
int out;
int max(int a, int b) { return a > b ? a : b; }
void main() { out = max(3, 7) + max(9, 2); }`, 16)
	// Nested, right-associative.
	expectIntAll(t, `
int out;
void main() { int x; x = 2; out = x == 1 ? 100 : x == 2 ? 200 : 300; }`, 200)
	// Only the taken arm's side effects run.
	expectIntAll(t, `
int out; int side;
int bump() { side++; return 1; }
void main() { side = 0; out = 0 ? bump() : 5; out = out * 10 + side; }`, 50)
}

func TestDoWhileSyntaxErrors(t *testing.T) {
	for _, src := range []string{
		`void main() { do { } }`,           // missing while
		`void main() { do { } while (1) }`, // missing semicolon
		`void main() { out = 1 ? 2; }`,     // missing colon
	} {
		if _, err := Compile(src, Options{}); err == nil {
			t.Errorf("parsed without error: %s", src)
		}
	}
}

func TestStringInitializers(t *testing.T) {
	expectIntAll(t, `
int out;
char msg[8] = "hi!";
void main() { out = msg[0] + msg[2]; }`, 'h'+'!')
	// Implied length includes the NUL.
	expectIntAll(t, `
int out;
char msg[] = "abc";
void main() { out = msg[3]; }`, 0)
	// Walk a string to its terminator.
	expectIntAll(t, `
int out;
char msg[] = "count me";
void main() {
    int i;
    i = 0;
    while (msg[i] != 0) i++;
    out = i;
}`, 8)
	if _, err := Compile(`char m[2] = "long"; void main() {}`, Options{}); err == nil {
		t.Error("oversized string accepted")
	}
	if _, err := Compile(`int m[4] = "no"; void main() {}`, Options{}); err == nil {
		t.Error("string into int array accepted")
	}
	if _, err := Compile(`char m[] = "unterminated`+"\n"+`"; void main() {}`, Options{}); err == nil {
		t.Error("unterminated string accepted")
	}
}

// TestSampleCRC8 compiles and runs the testdata CRC-8 program; 0xF4 is
// the standard check value for "123456789".
func TestSampleCRC8(t *testing.T) {
	src, err := os.ReadFile("testdata/crc8.dc")
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range allOptionSets {
		expectInt(t, string(src), 0xF4, opt)
	}
}
