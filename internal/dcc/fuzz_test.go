package dcc

// Native fuzz target for the compiler front end. Under plain `go test`
// it runs seed-only as a regression; CI adds a short -fuzz smoke.
// Invariants: Compile never panics on any source text — it returns a
// Compilation or an error — and compilation is deterministic (same
// source and options, same generated assembly).

import "testing"

func FuzzDCCParse(f *testing.F) {
	f.Add("int out; void main() { out = 1 + 2 * 3; }")
	f.Add(`int out;
void main() {
    int i;
    for (i = 0; i < 10; i++) { if (i & 1) out = out + i; }
}`)
	f.Add(`char tab[16]; char msg[] = "seed"; int out;
int f(int x) { return x << 2; }
void main() { out = f(tab[3]) + msg[0]; }`)
	f.Add("void main() { /* unterminated")
	f.Add("int x = ;;; } { (")
	f.Add("xmem char buf[300]; void main() { buf[0] = 'a'; }")
	f.Add("void main() { auto int x; }")
	f.Add("\x00\xff\x7f int \"")

	f.Fuzz(func(t *testing.T, src string) {
		for _, opt := range []Options{
			{},
			{Debug: true},
			{Unroll: true, RootData: true, Peephole: true},
		} {
			comp, err := Compile(src, opt)
			if err != nil {
				continue
			}
			again, err2 := Compile(src, opt)
			if err2 != nil {
				t.Fatalf("nondeterministic verdict under %+v: nil then %v", opt, err2)
			}
			if comp.Asm != again.Asm {
				t.Fatalf("nondeterministic codegen under %+v", opt)
			}
		}
	})
}
