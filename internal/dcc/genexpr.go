package dcc

// Expression code generation. The model is the classic one-register
// stack machine a simple compiler emits: HL holds the current value,
// subexpressions round-trip through PUSH/POP, and anything harder than
// add/subtract calls a runtime routine. The distance between this and
// the hand-scheduled assembly in internal/aesasm is precisely the
// paper's 15–20x observation.

import "fmt"

// genExpr leaves the expression's value in HL.
func (g *codegen) genExpr(e expr) error {
	switch v := e.(type) {
	case *numExpr:
		g.emit("        ld hl, %d", uint16(v.v))

	case *varExpr:
		d, err := g.resolve(v.name, 0)
		if err != nil {
			return err
		}
		if d.arrayLen > 0 {
			return fmt.Errorf("%w: array %q used without index", ErrSemantic, v.name)
		}
		g.loadScalar(d)

	case *indexExpr:
		d, err := g.genElemAddr(v)
		if err != nil {
			return err
		}
		if d.typ == typeChar {
			g.emit("        ld a, (hl)")
			g.emit("        ld l, a")
			g.emit("        ld h, 0")
		} else {
			g.emit("        ld e, (hl)")
			g.emit("        inc hl")
			g.emit("        ld d, (hl)")
			g.emit("        ex de, hl")
		}

	case *callExpr:
		fn := g.funcs[v.name]
		if fn == nil {
			return fmt.Errorf("%w: call to undefined function %q", ErrSemantic, v.name)
		}
		if len(v.args) != len(fn.params) {
			return fmt.Errorf("%w: %s expects %d args, got %d", ErrSemantic, v.name, len(fn.params), len(v.args))
		}
		// Static calling convention: evaluate each argument and store
		// it directly into the callee's (static) parameter slot.
		for i, arg := range v.args {
			if err := g.genExpr(arg); err != nil {
				return err
			}
			g.storeScalar(fn.params[i])
		}
		g.emit("        call _%s", v.name)

	case *unaryExpr:
		if err := g.genExpr(v.e); err != nil {
			return err
		}
		switch v.op {
		case "-":
			g.emit("        ld a, l")
			g.emit("        cpl")
			g.emit("        ld l, a")
			g.emit("        ld a, h")
			g.emit("        cpl")
			g.emit("        ld h, a")
			g.emit("        inc hl")
		case "~":
			g.emit("        ld a, l")
			g.emit("        cpl")
			g.emit("        ld l, a")
			g.emit("        ld a, h")
			g.emit("        cpl")
			g.emit("        ld h, a")
		case "!":
			tru := g.label("not_t")
			end := g.label("not_e")
			g.emit("        ld a, h")
			g.emit("        or l")
			g.emit("        jp z, %s", tru)
			g.emit("        ld hl, 0")
			g.emit("        jp %s", end)
			g.emit("%s:", tru)
			g.emit("        ld hl, 1")
			g.emit("%s:", end)
		}

	case *binExpr:
		return g.genBin(v)

	case *assignExpr:
		return g.genAssign(v)

	case *incDecExpr:
		return g.genIncDec(v)

	case *ternaryExpr:
		els := g.label("tern_e")
		end := g.label("tern_x")
		if err := g.genExpr(v.cond); err != nil {
			return err
		}
		g.emit("        ld a, h")
		g.emit("        or l")
		g.emit("        jp z, %s", els)
		if err := g.genExpr(v.then); err != nil {
			return err
		}
		g.emit("        jp %s", end)
		g.emit("%s:", els)
		if err := g.genExpr(v.els); err != nil {
			return err
		}
		g.emit("%s:", end)

	default:
		return fmt.Errorf("%w: unknown expression", ErrSemantic)
	}
	return nil
}

func (g *codegen) loadScalar(d *varDecl) {
	if d.typ == typeChar {
		g.emit("        ld a, (%s)", d.label)
		g.emit("        ld l, a")
		g.emit("        ld h, 0")
	} else {
		g.emit("        ld hl, (%s)", d.label)
	}
}

func (g *codegen) storeScalar(d *varDecl) {
	if d.typ == typeChar {
		g.emit("        ld a, l")
		g.emit("        ld (%s), a", d.label)
	} else {
		g.emit("        ld (%s), hl", d.label)
	}
}

// genElemAddr computes &base[idx] into HL and returns the array's
// declaration. For xmem arrays it first programs the XPC bank
// register through I/O — the per-access cost "moving data to root
// memory" removes.
func (g *codegen) genElemAddr(ix *indexExpr) (*varDecl, error) {
	d, err := g.resolve(ix.base.name, 0)
	if err != nil {
		return nil, err
	}
	if d.arrayLen == 0 {
		return nil, fmt.Errorf("%w: indexing non-array %q", ErrSemantic, ix.base.name)
	}
	if err := g.genExpr(ix.idx); err != nil {
		return nil, err
	}
	if d.typ == typeInt {
		g.emit("        add hl, hl")
	}
	if g.inXmem(d) {
		// Select the xmem bank before touching the window.
		g.emit("        ld a, 0")
		g.emit("        ioi ld (0x%04x), a", XPCPort)
	}
	g.emit("        ld de, %s", d.label)
	g.emit("        add hl, de")
	return d, nil
}

func (g *codegen) genBin(v *binExpr) error {
	switch v.op {
	case "&&":
		fail := g.label("and_f")
		end := g.label("and_e")
		if err := g.genExpr(v.l); err != nil {
			return err
		}
		g.emit("        ld a, h")
		g.emit("        or l")
		g.emit("        jp z, %s", fail)
		if err := g.genExpr(v.r); err != nil {
			return err
		}
		g.emit("        ld a, h")
		g.emit("        or l")
		g.emit("        jp z, %s", fail)
		g.emit("        ld hl, 1")
		g.emit("        jp %s", end)
		g.emit("%s:", fail)
		g.emit("        ld hl, 0")
		g.emit("%s:", end)
		return nil
	case "||":
		ok := g.label("or_t")
		end := g.label("or_e")
		if err := g.genExpr(v.l); err != nil {
			return err
		}
		g.emit("        ld a, h")
		g.emit("        or l")
		g.emit("        jp nz, %s", ok)
		if err := g.genExpr(v.r); err != nil {
			return err
		}
		g.emit("        ld a, h")
		g.emit("        or l")
		g.emit("        jp nz, %s", ok)
		g.emit("        ld hl, 0")
		g.emit("        jp %s", end)
		g.emit("%s:", ok)
		g.emit("        ld hl, 1")
		g.emit("%s:", end)
		return nil
	}

	// Constant shift counts stay inline (even simple compilers do this).
	if n, ok := v.r.(*numExpr); ok && (v.op == "<<" || v.op == ">>") && n.v >= 0 && n.v <= 15 {
		if err := g.genExpr(v.l); err != nil {
			return err
		}
		for i := 0; i < n.v; i++ {
			if v.op == "<<" {
				g.emit("        add hl, hl")
			} else {
				g.emit("        sra h")
				g.emit("        rr l")
			}
		}
		return nil
	}

	if err := g.genExpr(v.l); err != nil {
		return err
	}
	g.emit("        push hl")
	if err := g.genExpr(v.r); err != nil {
		return err
	}
	g.emit("        pop de")
	// DE = left, HL = right.
	g.applyBinOp(v.op)
	return nil
}

// applyBinOp combines DE (left) and HL (right) into HL.
func (g *codegen) applyBinOp(op string) {
	switch op {
	case "+":
		g.emit("        add hl, de")
	case "-":
		g.emit("        ex de, hl")
		g.emit("        or a")
		g.emit("        sbc hl, de")
	case "&", "|", "^":
		mn := map[string]string{"&": "and", "|": "or", "^": "xor"}[op]
		g.emit("        ld a, l")
		g.emit("        %s e", mn)
		g.emit("        ld l, a")
		g.emit("        ld a, h")
		g.emit("        %s d", mn)
		g.emit("        ld h, a")
	case "*":
		g.emit("        call __mul")
	case "/":
		g.emit("        call __div")
	case "%":
		g.emit("        call __mod")
	case "<<":
		g.emit("        call __shl")
	case ">>":
		g.emit("        call __shr")
	case "<":
		g.emit("        call __lt")
	case ">":
		g.emit("        call __gt")
	case "<=":
		g.emit("        call __le")
	case ">=":
		g.emit("        call __ge")
	case "==":
		g.emit("        call __eq")
	case "!=":
		g.emit("        call __ne")
	}
}

// genIncDec handles ++x / x++ / --x / x-- by lowering to the
// equivalent add-and-store, preserving the pre/post value semantics.
func (g *codegen) genIncDec(v *incDecExpr) error {
	delta := "+"
	if v.op == "--" {
		delta = "-"
	}
	one := &numExpr{v: 1}
	if !v.post {
		// Prefix: value is the new value — exactly a compound assign.
		return g.genAssign(&assignExpr{op: delta + "=", lhs: v.target, rhs: one})
	}
	// Postfix: compute the old value, then store old±1, leave old in HL.
	switch lhs := v.target.(type) {
	case *varExpr:
		d, err := g.resolve(lhs.name, 0)
		if err != nil {
			return err
		}
		if d.arrayLen > 0 {
			return fmt.Errorf("%w: %s on array %q", ErrSemantic, v.op, lhs.name)
		}
		g.loadScalar(d)
		g.emit("        push hl") // old value
		if delta == "+" {
			g.emit("        inc hl")
		} else {
			g.emit("        dec hl")
		}
		g.storeScalar(d)
		g.emit("        pop hl")
		return nil
	case *indexExpr:
		d, err := g.genElemAddr(lhs)
		if err != nil {
			return err
		}
		g.emit("        push hl") // element address
		if d.typ == typeChar {
			g.emit("        ld a, (hl)")
			g.emit("        ld l, a")
			g.emit("        ld h, 0")
		} else {
			g.emit("        ld e, (hl)")
			g.emit("        inc hl")
			g.emit("        ld d, (hl)")
			g.emit("        ex de, hl")
		}
		g.emit("        push hl") // old value
		if delta == "+" {
			g.emit("        inc hl")
		} else {
			g.emit("        dec hl")
		}
		g.emit("        pop de")      // DE = old value
		g.emit("        ex de, hl")   // HL = old, DE = new
		g.emit("        ex (sp), hl") // HL = addr, stack top = old value
		if d.typ == typeChar {
			g.emit("        ld a, e")
			g.emit("        ld (hl), a")
		} else {
			g.emit("        ld (hl), e")
			g.emit("        inc hl")
			g.emit("        ld (hl), d")
		}
		g.emit("        pop hl") // old value as the expression result
		return nil
	}
	return fmt.Errorf("%w: bad %s target", ErrSemantic, v.op)
}

func (g *codegen) genAssign(v *assignExpr) error {
	baseOp := ""
	if v.op != "=" {
		baseOp = v.op[:len(v.op)-1] // "+=" -> "+"
	}
	switch lhs := v.lhs.(type) {
	case *varExpr:
		d, err := g.resolve(lhs.name, 0)
		if err != nil {
			return err
		}
		if d.arrayLen > 0 {
			return fmt.Errorf("%w: cannot assign to array %q", ErrSemantic, lhs.name)
		}
		if baseOp != "" {
			// old value as left operand
			g.loadScalar(d)
			g.emit("        push hl")
			if err := g.genExpr(v.rhs); err != nil {
				return err
			}
			g.emit("        pop de")
			g.applyBinOp(baseOp)
		} else {
			if err := g.genExpr(v.rhs); err != nil {
				return err
			}
		}
		g.storeScalar(d)
		return nil

	case *indexExpr:
		d, err := g.genElemAddr(lhs)
		if err != nil {
			return err
		}
		g.emit("        push hl") // element address
		if baseOp != "" {
			// Load current value through the saved address.
			if d.typ == typeChar {
				g.emit("        ld a, (hl)")
				g.emit("        ld l, a")
				g.emit("        ld h, 0")
			} else {
				g.emit("        ld e, (hl)")
				g.emit("        inc hl")
				g.emit("        ld d, (hl)")
				g.emit("        ex de, hl")
			}
			g.emit("        push hl")
			if err := g.genExpr(v.rhs); err != nil {
				return err
			}
			g.emit("        pop de")
			g.applyBinOp(baseOp)
		} else {
			if err := g.genExpr(v.rhs); err != nil {
				return err
			}
		}
		g.emit("        pop de") // element address
		if d.typ == typeChar {
			g.emit("        ld a, l")
			g.emit("        ld (de), a")
		} else {
			g.emit("        ex de, hl")
			g.emit("        ld (hl), e")
			g.emit("        inc hl")
			g.emit("        ld (hl), d")
			g.emit("        ex de, hl") // value back in HL as the expr result
		}
		return nil
	}
	return fmt.Errorf("%w: bad assignment target", ErrSemantic)
}
