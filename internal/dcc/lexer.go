// Package dcc is a compiler for a Dynamic C subset targeting the
// Rabbit 2000 simulator. It is the stand-in for the Dynamic C
// toolchain of the paper: the same AES source compiles under four
// optimization knobs — debug instrumentation on/off, loop unrolling,
// root-vs-xmem data placement, and peephole optimization — which are
// exactly the optimizations §6 reports trying on the C port ("moving
// data to root memory, unrolling loops, disabling debugging, and
// enabling compiler optimization").
//
// Dynamic C semantics honored: local variables are STATIC BY DEFAULT
// (§4.1 — "Unlike ANSI C, local variables in Dynamic C are static by
// default. This can dramatically change program behavior"), so the
// generated code addresses locals as absolute memory and recursion is
// rejected. There is no malloc; all data is statically placed.
package dcc

import (
	"errors"
	"fmt"
	"strconv"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokChar
	tokString
	tokPunct // operators and punctuation
	tokKeyword
)

var keywords = map[string]bool{
	"char": true, "int": true, "void": true, "unsigned": true,
	"if": true, "else": true, "while": true, "for": true, "do": true,
	"return": true, "break": true, "continue": true,
	"static": true, "auto": true, "root": true, "xmem": true,
	"shared": true, "const": true,
}

type token struct {
	kind tokKind
	text string
	val  int
	line int
}

// ErrSyntax wraps all lexical and parse errors.
var ErrSyntax = errors.New("dcc: syntax error")

type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

// multi-character operators, longest first.
var punctuators = []string{
	"<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
	"+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
	"(", ")", "{", "}", "[", "]", ";", ",", "?", ":",
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for l.pos < len(l.src) {
		ch := l.src[l.pos]
		switch {
		case ch == '\n':
			l.line++
			l.pos++
		case ch == ' ' || ch == '\t' || ch == '\r':
			l.pos++
		case ch == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case ch == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.pos += 2
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				if l.src[l.pos] == '\n' {
					l.line++
				}
				l.pos++
			}
			if l.pos+1 >= len(l.src) {
				return nil, fmt.Errorf("%w: line %d: unterminated comment", ErrSyntax, l.line)
			}
			l.pos += 2
		case ch == '\'':
			if err := l.charLit(); err != nil {
				return nil, err
			}
		case ch == '"':
			if err := l.stringLit(); err != nil {
				return nil, err
			}
		case ch >= '0' && ch <= '9':
			if err := l.number(); err != nil {
				return nil, err
			}
		case isIdentStart(ch):
			l.ident()
		default:
			if !l.punct() {
				return nil, fmt.Errorf("%w: line %d: unexpected character %q", ErrSyntax, l.line, ch)
			}
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, line: l.line})
	return l.toks, nil
}

func isIdentStart(ch byte) bool {
	return ch >= 'a' && ch <= 'z' || ch >= 'A' && ch <= 'Z' || ch == '_'
}

func isIdentChar(ch byte) bool {
	return isIdentStart(ch) || ch >= '0' && ch <= '9'
}

func (l *lexer) charLit() error {
	start := l.pos
	l.pos++ // opening quote
	if l.pos >= len(l.src) {
		return fmt.Errorf("%w: line %d: unterminated char literal", ErrSyntax, l.line)
	}
	var v int
	if l.src[l.pos] == '\\' {
		l.pos++
		switch l.src[l.pos] {
		case 'n':
			v = '\n'
		case 't':
			v = '\t'
		case 'r':
			v = '\r'
		case '0':
			v = 0
		case '\\':
			v = '\\'
		case '\'':
			v = '\''
		default:
			return fmt.Errorf("%w: line %d: bad escape", ErrSyntax, l.line)
		}
	} else {
		v = int(l.src[l.pos])
	}
	l.pos++
	if l.pos >= len(l.src) || l.src[l.pos] != '\'' {
		return fmt.Errorf("%w: line %d: unterminated char literal", ErrSyntax, l.line)
	}
	l.pos++
	l.toks = append(l.toks, token{kind: tokChar, text: l.src[start:l.pos], val: v, line: l.line})
	return nil
}

func (l *lexer) stringLit() error {
	l.pos++ // opening quote
	var out []byte
	for {
		if l.pos >= len(l.src) || l.src[l.pos] == '\n' {
			return fmt.Errorf("%w: line %d: unterminated string", ErrSyntax, l.line)
		}
		ch := l.src[l.pos]
		if ch == '"' {
			l.pos++
			break
		}
		if ch == '\\' {
			l.pos++
			if l.pos >= len(l.src) {
				return fmt.Errorf("%w: line %d: bad escape", ErrSyntax, l.line)
			}
			switch l.src[l.pos] {
			case 'n':
				out = append(out, '\n')
			case 'r':
				out = append(out, '\r')
			case 't':
				out = append(out, '\t')
			case '0':
				out = append(out, 0)
			case '"':
				out = append(out, '"')
			case '\\':
				out = append(out, '\\')
			default:
				return fmt.Errorf("%w: line %d: bad escape \\%c", ErrSyntax, l.line, l.src[l.pos])
			}
			l.pos++
			continue
		}
		out = append(out, ch)
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokString, text: string(out), line: l.line})
	return nil
}

func (l *lexer) number() error {
	start := l.pos
	base := 10
	if l.src[l.pos] == '0' && l.pos+1 < len(l.src) && (l.src[l.pos+1] == 'x' || l.src[l.pos+1] == 'X') {
		base = 16
		l.pos += 2
	}
	for l.pos < len(l.src) && (isIdentChar(l.src[l.pos])) {
		l.pos++
	}
	text := l.src[start:l.pos]
	digits := text
	if base == 16 {
		digits = text[2:]
	}
	v, err := strconv.ParseInt(digits, base, 32)
	if err != nil {
		return fmt.Errorf("%w: line %d: bad number %q", ErrSyntax, l.line, text)
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: text, val: int(v), line: l.line})
	return nil
}

func (l *lexer) ident() {
	start := l.pos
	for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
		l.pos++
	}
	text := l.src[start:l.pos]
	kind := tokIdent
	if keywords[text] {
		kind = tokKeyword
	}
	l.toks = append(l.toks, token{kind: kind, text: text, line: l.line})
}

func (l *lexer) punct() bool {
	for _, p := range punctuators {
		if len(l.src)-l.pos >= len(p) && l.src[l.pos:l.pos+len(p)] == p {
			l.toks = append(l.toks, token{kind: tokPunct, text: p, line: l.line})
			l.pos += len(p)
			return true
		}
	}
	return false
}
