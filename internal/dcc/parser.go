package dcc

import (
	"fmt"
)

type parser struct {
	toks []token
	pos  int
	prog *program
	// current function being parsed (locals attach here)
	fn *funcDecl
}

func parse(src string) (*program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, prog: &program{}}
	for !p.at(tokEOF, "") {
		if err := p.topLevel(); err != nil {
			return nil, err
		}
	}
	return p.prog, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	t := p.cur()
	return t, fmt.Errorf("%w: line %d: expected %q, got %q", ErrSyntax, t.line, text, t.text)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("%w: line %d: "+format, append([]any{ErrSyntax, p.cur().line}, args...)...)
}

// typeSpec parses [storage] [const] (char|int|unsigned|void); returns
// the type plus xmem/root placement hints.
func (p *parser) typeSpec() (ctype, bool, bool, error) {
	xmem := false
	explicit := false
	for {
		switch {
		case p.accept(tokKeyword, "static"), p.accept(tokKeyword, "const"),
			p.accept(tokKeyword, "shared"):
			// static is the default anyway; const/shared accepted, not enforced
		case p.accept(tokKeyword, "xmem"):
			xmem, explicit = true, true
		case p.accept(tokKeyword, "root"):
			xmem, explicit = false, true
		case p.accept(tokKeyword, "auto"):
			return 0, false, false, p.errf("auto locals are not supported (Dynamic C port uses static allocation)")
		default:
			goto base
		}
	}
base:
	switch {
	case p.accept(tokKeyword, "char"):
		return typeChar, xmem, explicit, nil
	case p.accept(tokKeyword, "unsigned"):
		p.accept(tokKeyword, "int") // "unsigned int"
		return typeInt, xmem, explicit, nil
	case p.accept(tokKeyword, "int"):
		return typeInt, xmem, explicit, nil
	case p.accept(tokKeyword, "void"):
		return typeVoid, xmem, explicit, nil
	}
	return 0, false, false, p.errf("expected type, got %q", p.cur().text)
}

func (p *parser) topLevel() error {
	typ, xmem, explicitPlace, err := p.typeSpec()
	if err != nil {
		return err
	}
	nameTok, err := p.expect(tokIdent, "")
	if err != nil {
		return err
	}
	if p.at(tokPunct, "(") {
		return p.funcDef(typ, nameTok.text)
	}
	// Global variable(s).
	for {
		d := &varDecl{name: nameTok.text, typ: typ, xmem: xmem, line: nameTok.line}
		if typ == typeVoid {
			return p.errf("void variable %q", d.name)
		}
		d.explicitPlacement = explicitPlace
		if err := p.varTail(d, true); err != nil {
			return err
		}
		p.prog.globals = append(p.prog.globals, d)
		if p.accept(tokPunct, ",") {
			nameTok, err = p.expect(tokIdent, "")
			if err != nil {
				return err
			}
			continue
		}
		_, err := p.expect(tokPunct, ";")
		return err
	}
}

// varTail parses the [N] and = init parts of a declaration.
func (p *parser) varTail(d *varDecl, allowInit bool) error {
	if p.accept(tokPunct, "[") {
		if p.accept(tokPunct, "]") {
			// Length inferred from the initializer (string form).
			d.arrayLen = -1
		} else {
			n, err := p.constExpr()
			if err != nil {
				return err
			}
			if n <= 0 || n > 32768 {
				return p.errf("bad array length %d", n)
			}
			d.arrayLen = n
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return err
			}
		}
	}
	if p.accept(tokPunct, "=") {
		if !allowInit {
			return p.errf("initializer not allowed here")
		}
		// char msg[N] = "text";  (NUL-terminated; N may be implied)
		if p.at(tokString, "") {
			if d.typ != typeChar {
				return p.errf("string initializer on non-char %q", d.name)
			}
			txt := p.next().text
			for _, b := range []byte(txt) {
				d.init = append(d.init, int(b))
			}
			d.init = append(d.init, 0)
			if d.arrayLen <= 0 {
				d.arrayLen = len(d.init)
			}
			if len(d.init) > d.arrayLen {
				return p.errf("string too long for %s[%d]", d.name, d.arrayLen)
			}
			return nil
		}
		if d.arrayLen > 0 {
			if _, err := p.expect(tokPunct, "{"); err != nil {
				return err
			}
			for {
				v, err := p.constExpr()
				if err != nil {
					return err
				}
				d.init = append(d.init, v)
				if !p.accept(tokPunct, ",") {
					break
				}
				if p.at(tokPunct, "}") { // trailing comma
					break
				}
			}
			if _, err := p.expect(tokPunct, "}"); err != nil {
				return err
			}
			if len(d.init) > d.arrayLen {
				return p.errf("too many initializers for %s[%d]", d.name, d.arrayLen)
			}
		} else {
			v, err := p.constExpr()
			if err != nil {
				return err
			}
			d.init = []int{v}
		}
	}
	if d.arrayLen == -1 {
		return p.errf("array %q needs a length or a string initializer", d.name)
	}
	return nil
}

// constExpr evaluates a constant expression (number/char, unary minus,
// | of constants for flags).
func (p *parser) constExpr() (int, error) {
	neg := false
	if p.accept(tokPunct, "-") {
		neg = true
	}
	t := p.cur()
	if t.kind != tokNumber && t.kind != tokChar {
		return 0, p.errf("expected constant, got %q", t.text)
	}
	p.next()
	v := t.val
	if neg {
		v = -v
	}
	return v, nil
}

func (p *parser) funcDef(ret ctype, name string) error {
	fn := &funcDecl{name: name, ret: ret, line: p.cur().line}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return err
	}
	if !p.accept(tokPunct, ")") {
		if p.accept(tokKeyword, "void") {
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return err
			}
		} else {
			for {
				typ, _, _, err := p.typeSpec()
				if err != nil {
					return err
				}
				nameTok, err := p.expect(tokIdent, "")
				if err != nil {
					return err
				}
				if typ == typeVoid {
					return p.errf("void parameter")
				}
				fn.params = append(fn.params, &varDecl{name: nameTok.text, typ: typ, line: nameTok.line})
				if !p.accept(tokPunct, ",") {
					break
				}
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return err
			}
		}
	}
	p.fn = fn
	body, err := p.block()
	p.fn = nil
	if err != nil {
		return err
	}
	fn.body = body
	p.prog.funcs = append(p.prog.funcs, fn)
	return nil
}

func (p *parser) block() (*blockStmt, error) {
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	b := &blockStmt{}
	for !p.accept(tokPunct, "}") {
		if p.at(tokEOF, "") {
			return nil, p.errf("unexpected EOF in block")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		if s != nil {
			b.stmts = append(b.stmts, s)
		}
	}
	return b, nil
}

func (p *parser) statement() (stmt, error) {
	t := p.cur()
	switch {
	case t.kind == tokKeyword && (t.text == "char" || t.text == "int" ||
		t.text == "unsigned" || t.text == "static" || t.text == "auto" ||
		t.text == "root" || t.text == "xmem" || t.text == "const"):
		return p.localDecl()
	case p.accept(tokKeyword, "if"):
		return p.ifStatement()
	case p.accept(tokKeyword, "while"):
		return p.whileStatement()
	case p.accept(tokKeyword, "do"):
		return p.doWhileStatement()
	case p.accept(tokKeyword, "for"):
		return p.forStatement()
	case p.accept(tokKeyword, "return"):
		rs := &returnStmt{}
		if !p.at(tokPunct, ";") {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			rs.e = e
		}
		_, err := p.expect(tokPunct, ";")
		return rs, err
	case p.accept(tokKeyword, "break"):
		_, err := p.expect(tokPunct, ";")
		return &breakStmt{}, err
	case p.accept(tokKeyword, "continue"):
		_, err := p.expect(tokPunct, ";")
		return &continueStmt{}, err
	case p.at(tokPunct, "{"):
		return p.block()
	case p.accept(tokPunct, ";"):
		return nil, nil
	default:
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &exprStmt{e: e}, nil
	}
}

// localDecl parses a static local declaration (Dynamic C default).
func (p *parser) localDecl() (stmt, error) {
	if p.fn == nil {
		return nil, p.errf("declaration outside function")
	}
	typ, xmem, _, err := p.typeSpec()
	if err != nil {
		return nil, err
	}
	var first stmt
	var blockOut []stmt
	for {
		nameTok, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		d := &varDecl{name: nameTok.text, typ: typ, xmem: xmem, line: nameTok.line}
		if err := p.varTail(d, true); err != nil {
			return nil, err
		}
		p.fn.locals = append(p.fn.locals, d)
		var s stmt = &declStmt{d: d}
		blockOut = append(blockOut, s)
		if first == nil {
			first = s
		}
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	if len(blockOut) == 1 {
		return first, nil
	}
	return &blockStmt{stmts: blockOut}, nil
}

func (p *parser) ifStatement() (stmt, error) {
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	then, err := p.statement()
	if err != nil {
		return nil, err
	}
	s := &ifStmt{cond: cond, then: then}
	if p.accept(tokKeyword, "else") {
		els, err := p.statement()
		if err != nil {
			return nil, err
		}
		s.els = els
	}
	return s, nil
}

func (p *parser) whileStatement() (stmt, error) {
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	return &whileStmt{cond: cond, body: body}, nil
}

func (p *parser) doWhileStatement() (stmt, error) {
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "while"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	return &doWhileStmt{body: body, cond: cond}, nil
}

func (p *parser) forStatement() (stmt, error) {
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	s := &forStmt{}
	if !p.at(tokPunct, ";") {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		s.init = e
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	if !p.at(tokPunct, ";") {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		s.cond = e
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	if !p.at(tokPunct, ")") {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		s.post = e
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	s.body = body
	return s, nil
}

// --- expressions (precedence climbing) -----------------------------------------

func (p *parser) expression() (expr, error) { return p.assignment() }

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true, "<<=": true, ">>=": true,
}

func (p *parser) assignment() (expr, error) {
	lhs, err := p.binary(0)
	if err != nil {
		return nil, err
	}
	// cond ? a : b (right-associative, between binary and assignment)
	if p.accept(tokPunct, "?") {
		then, err := p.assignment()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ":"); err != nil {
			return nil, err
		}
		els, err := p.assignment()
		if err != nil {
			return nil, err
		}
		return &ternaryExpr{cond: lhs, then: then, els: els}, nil
	}
	t := p.cur()
	if t.kind == tokPunct && assignOps[t.text] {
		switch lhs.(type) {
		case *varExpr, *indexExpr:
		default:
			return nil, p.errf("assignment to non-lvalue")
		}
		p.next()
		rhs, err := p.assignment()
		if err != nil {
			return nil, err
		}
		return &assignExpr{op: t.text, lhs: lhs, rhs: rhs}, nil
	}
	return lhs, nil
}

// Binary operator precedence (C-like).
var binPrec = map[string]int{
	"||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6, "<": 7, ">": 7, "<=": 7, ">=": 7,
	"<<": 8, ">>": 8, "+": 9, "-": 9, "*": 10, "/": 10, "%": 10,
}

func (p *parser) binary(minPrec int) (expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		prec, ok := binPrec[t.text]
		if t.kind != tokPunct || !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.binary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &binExpr{op: t.text, l: lhs, r: rhs}
	}
}

func (p *parser) unary() (expr, error) {
	t := p.cur()
	if t.kind == tokPunct && (t.text == "-" || t.text == "!" || t.text == "~") {
		p.next()
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{op: t.text, e: e}, nil
	}
	if t.kind == tokPunct && (t.text == "++" || t.text == "--") {
		p.next()
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		switch e.(type) {
		case *varExpr, *indexExpr:
		default:
			return nil, p.errf("%s of non-lvalue", t.text)
		}
		return &incDecExpr{op: t.text, target: e, post: false}, nil
	}
	if t.kind == tokPunct && t.text == "+" {
		p.next()
		return p.unary()
	}
	return p.postfix()
}

func (p *parser) postfix() (expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber || t.kind == tokChar:
		p.next()
		return &numExpr{v: t.val}, nil
	case t.kind == tokPunct && t.text == "(":
		p.next()
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		_, err = p.expect(tokPunct, ")")
		return e, err
	case t.kind == tokIdent:
		p.next()
		if p.accept(tokPunct, "(") {
			call := &callExpr{name: t.text}
			if !p.accept(tokPunct, ")") {
				for {
					a, err := p.expression()
					if err != nil {
						return nil, err
					}
					call.args = append(call.args, a)
					if !p.accept(tokPunct, ",") {
						break
					}
				}
				if _, err := p.expect(tokPunct, ")"); err != nil {
					return nil, err
				}
			}
			return call, nil
		}
		var e expr = &varExpr{name: t.text}
		if p.accept(tokPunct, "[") {
			idx, err := p.expression()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			e = &indexExpr{base: e.(*varExpr), idx: idx}
		}
		if p.at(tokPunct, "++") || p.at(tokPunct, "--") {
			op := p.next().text
			return &incDecExpr{op: op, target: e, post: true}, nil
		}
		return e, nil
	}
	return nil, p.errf("unexpected token %q", t.text)
}
