package dcc

import (
	"fmt"
	"strings"
)

// emitData lays out all static storage: root data right after the
// code, xmem data in the bank-switched window at 0xE000.
func (g *codegen) emitData() {
	var root, xmem []*varDecl
	add := func(d *varDecl) {
		if g.inXmem(d) {
			xmem = append(xmem, d)
		} else {
			root = append(root, d)
		}
	}
	for _, d := range g.prog.globals {
		add(d)
	}
	for _, fn := range g.prog.funcs {
		for _, p := range fn.params {
			add(p)
		}
		for _, l := range fn.locals {
			add(l)
		}
	}
	g.emit("; --- root data")
	for _, d := range root {
		g.emitVar(d)
	}
	if len(xmem) > 0 {
		g.emit("; --- xmem data (bank-switched window)")
		g.emit("        org 0xE000")
		for _, d := range xmem {
			g.emitVar(d)
		}
	}
}

func (g *codegen) emitVar(d *varDecl) {
	n := d.arrayLen
	if n == 0 {
		n = 1
	}
	if len(d.init) == 0 {
		g.emit("%s: ds %d", d.label, n*d.typ.size())
		return
	}
	g.emit("%s:", d.label)
	vals := make([]int, n)
	copy(vals, d.init)
	dir := "db"
	if d.typ == typeInt {
		dir = "dw"
	}
	for row := 0; row < len(vals); row += 16 {
		endI := row + 16
		if endI > len(vals) {
			endI = len(vals)
		}
		parts := make([]string, 0, 16)
		for _, v := range vals[row:endI] {
			if d.typ == typeChar {
				parts = append(parts, fmt.Sprintf("0x%02x", uint8(v)))
			} else {
				parts = append(parts, fmt.Sprintf("0x%04x", uint16(v)))
			}
		}
		g.emit("        %s %s", dir, strings.Join(parts, ", "))
	}
}

// peephole applies simple window rewrites to the generated code — the
// "-O" knob. Labels end rewriting windows (a jump may land between
// instructions otherwise).
func peephole(lines []string) []string {
	changed := true
	for changed {
		changed = false
		var out []string
		i := 0
		isLabel := func(s string) bool {
			t := strings.TrimSpace(s)
			return strings.HasSuffix(t, ":") || strings.HasPrefix(t, ";")
		}
		instr := func(idx int) string {
			if idx >= len(lines) {
				return ""
			}
			return strings.TrimSpace(lines[idx])
		}
		for i < len(lines) {
			a, b := instr(i), instr(i+1)
			if isLabel(lines[i]) {
				out = append(out, lines[i])
				i++
				continue
			}
			// push hl / pop de  ->  register move
			if a == "push hl" && b == "pop de" && !isLabel(lineAt(lines, i+1)) {
				out = append(out, "        ld d, h", "        ld e, l")
				i += 2
				changed = true
				continue
			}
			// ld (X), hl / ld hl, (X)  ->  drop the reload
			if strings.HasPrefix(a, "ld (") && strings.HasSuffix(a, "), hl") &&
				b == "ld hl, ("+a[4:len(a)-5]+")" {
				out = append(out, lines[i])
				i += 2
				changed = true
				continue
			}
			// jp L immediately followed by L:
			if strings.HasPrefix(a, "jp ") && !strings.Contains(a, ",") &&
				strings.TrimSpace(lineAt(lines, i+1)) == strings.TrimPrefix(a, "jp ")+":" {
				i++ // drop the jp, keep the label on next iteration
				changed = true
				continue
			}
			// ld hl, N / ld a, h / or l / jp z, L with N != 0: the
			// condition is constant-true; drop the test and the jump.
			if strings.HasPrefix(a, "ld hl, ") && instr(i+1) == "ld a, h" &&
				instr(i+2) == "or l" && strings.HasPrefix(instr(i+3), "jp z, ") {
				n := strings.TrimPrefix(a, "ld hl, ")
				if n != "0" && !strings.ContainsAny(n, "abcdefghijklmnopqrstuvwxyz_") {
					out = append(out, lines[i])
					i += 4
					changed = true
					continue
				}
			}
			out = append(out, lines[i])
			i++
		}
		lines = out
	}
	return lines
}

func lineAt(lines []string, i int) string {
	if i >= len(lines) {
		return ""
	}
	return lines[i]
}

// runtimeAsm is the compiler support library: 16-bit multiply, divide,
// modulo, variable shifts, signed comparisons, and the debug-kernel
// hook. These are the routines a Small-C-class compiler calls instead
// of emitting inline code — one reason compiled output trails hand
// assembly so badly.
const runtimeAsm = `
; --- dcc runtime ---------------------------------------------------------
; __mul: HL = DE * HL (low 16 bits)
__mul:
        ld c, l
        ld b, h
        ld hl, 0
__mul_lp:
        ld a, b
        or c
        ret z
        srl b
        rr c
        jr nc, __mul_sk
        add hl, de
__mul_sk:
        ex de, hl
        add hl, hl
        ex de, hl
        jp __mul_lp

; __divu: unsigned DE / HL -> HL = quotient, DE = remainder
__divu:
        ld a, h
        or l
        jr nz, __divu_go
        ld hl, 0xFFFF
        ld de, 0
        ret
__divu_go:
        ld (__divisor), hl
        ld hl, 0
        ld b, 16
__divu_lp:
        sla e
        rl d
        adc hl, hl
        push de
        ld de, (__divisor)
        or a
        sbc hl, de
        jr nc, __divu_ok
        add hl, de
        pop de
        jr __divu_nx
__divu_ok:
        pop de
        inc e
__divu_nx:
        djnz __divu_lp
        ex de, hl
        ret

; __div: signed DE / HL -> HL
__div:
        ld a, d
        xor h
        push af
        call __absde
        call __abshl
        call __divu
        pop af
        and 0x80
        ret z
        jp __neghl

; __mod: signed DE % HL -> HL (sign follows the dividend, like C)
__mod:
        ld a, d
        push af
        call __absde
        call __abshl
        call __divu
        ex de, hl
        pop af
        and 0x80
        ret z
        jp __neghl

__absde:
        bit 7, d
        ret z
        ld a, e
        cpl
        ld e, a
        ld a, d
        cpl
        ld d, a
        inc de
        ret

__abshl:
        bit 7, h
        ret z
__neghl:
        ld a, l
        cpl
        ld l, a
        ld a, h
        cpl
        ld h, a
        inc hl
        ret

; __shl: HL = DE << L (count 0..15)
__shl:
        ld a, l
        ex de, hl
        or a
        ret z
        ld b, a
__shl_lp:
        add hl, hl
        djnz __shl_lp
        ret

; __shr: HL = DE >> L, arithmetic
__shr:
        ld a, l
        ex de, hl
        or a
        ret z
        ld b, a
__shr_lp:
        sra h
        rr l
        djnz __shr_lp
        ret

; signed comparisons: DE (left) vs HL (right) -> HL = 0/1
__lt:
        ld a, d
        xor h
        jp m, __lt_diff
        ex de, hl
        or a
        sbc hl, de
        jr c, __ret1
        jr __ret0
__lt_diff:
        bit 7, d
        jr nz, __ret1
        jr __ret0

__gt:
        ex de, hl
        jp __lt

__le:
        call __gt
        jp __flip

__ge:
        call __lt
        jp __flip

__flip:
        ld a, l
        xor 1
        ld l, a
        ret

__eq:
        or a
        sbc hl, de
        jr z, __ret1
        jr __ret0

__ne:
        or a
        sbc hl, de
        jr nz, __ret1
        jr __ret0

__ret1:
        ld hl, 1
        ret
__ret0:
        ld hl, 0
        ret

; __dbg: per-statement debug-kernel hook (single-step bookkeeping on
; the real Dynamic C target; here a fixed-cost stand-in).
__dbg:
        push af
        pop af
        ret

__divisor: ds 2
`
