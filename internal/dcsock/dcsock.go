// Package dcsock reproduces the Dynamic C TCP/IP API of the RMC2000
// development kit (Fig. 2b of the paper): sock_init, tcp_listen,
// tcp_tick, sock_established, sock_wait_established, sock_mode,
// sock_gets/sock_puts and friends. Where BSD sockets give a factory
// (accept returns new descriptors), here "the socket bound to the port
// also handles the request, so each connection is required to have a
// corresponding call to tcp_listen" (§5.3) — which is exactly the
// property that forced the paper's authors to restructure their server
// into a fixed set of costatement-driven connection slots.
//
// One fidelity note: on the real board, tcp_tick() *is* the stack —
// nothing moves unless the application keeps calling it. Our simulated
// stack runs its own receive and timer goroutines, so TcpTick here is
// a cooperative poll point: it yields the processor and reports
// liveness. The call sites keep the exact shape of Dynamic C code.
package dcsock

import (
	"bytes"
	"errors"
	"runtime"
	"time"

	"repro/internal/tcpip"
)

// Mode selects ASCII (line-oriented) or binary socket semantics,
// mirroring sock_mode(&s, TCP_MODE_ASCII) / TCP_MODE_BINARY.
type Mode int

// Socket transfer modes.
const (
	ModeBinary Mode = iota
	ModeASCII
)

// Status codes reported through the *int status out-parameters that
// the Dynamic C API threads through its blocking calls.
const (
	StatusOK        = 0
	StatusClosed    = -1
	StatusTimedOut  = -2
	StatusReset     = -3
	StatusNotInited = -4
)

// ErrNotInitialized is returned when the environment is used before SockInit.
var ErrNotInitialized = errors.New("dcsock: sock_init not called")

// Env is one board's Dynamic C networking environment.
type Env struct {
	stack  *tcpip.Stack
	inited bool
}

// NewEnv wraps a stack. Nothing works until SockInit, just like the
// real library.
func NewEnv(stack *tcpip.Stack) *Env { return &Env{stack: stack} }

// SockInit initializes the TCP/IP subsystem (sock_init()).
func (e *Env) SockInit() { e.inited = true }

// Stack exposes the underlying stack for diagnostics.
func (e *Env) Stack() *tcpip.Stack { return e.stack }

// TCPSocket mirrors the Dynamic C `tcp_Socket` structure: a single
// object that is first a listener, then the connection itself.
type TCPSocket struct {
	env  *Env
	tcb  *tcpip.TCB
	mode Mode
	// lineBuf accumulates partial lines in ASCII mode.
	lineBuf []byte
}

// TcpListen binds the socket to a local port in passive mode
// (tcp_listen(&s, port, 0, 0, NULL, 0)). The socket itself becomes
// the connection when a peer arrives.
func (e *Env) TcpListen(s *TCPSocket, port uint16) error {
	if !e.inited {
		return ErrNotInitialized
	}
	tcb, err := e.stack.ListenOne(port)
	if err != nil {
		return err
	}
	s.env = e
	s.tcb = tcb
	s.mode = ModeBinary
	s.lineBuf = nil
	return nil
}

// TcpOpen performs an active open (tcp_open equivalent).
func (e *Env) TcpOpen(s *TCPSocket, dst tcpip.Addr, port uint16, timeout time.Duration) error {
	if !e.inited {
		return ErrNotInitialized
	}
	tcb, err := e.stack.Connect(dst, port, timeout)
	if err != nil {
		return err
	}
	s.env = e
	s.tcb = tcb
	s.mode = ModeBinary
	s.lineBuf = nil
	return nil
}

// TcpTick drives the TCP machinery and reports whether the socket is
// still alive (tcp_tick(&s)); TcpTick(nil) just drives the stack.
// In the simulation the stack is self-driving, so this is a
// cooperative yield plus a liveness poll — call sites keep the
// while(tcp_tick(&sock)) shape of the original code.
func (e *Env) TcpTick(s *TCPSocket) bool {
	runtime.Gosched()
	if s == nil || s.tcb == nil {
		return e.inited
	}
	return s.tcb.Alive()
}

// SockEstablished reports whether the handshake has completed
// (sock_established(&s)).
func (s *TCPSocket) SockEstablished() bool {
	return s.tcb != nil && s.tcb.Established()
}

// SockWaitEstablished blocks until the connection is up, the timeout
// expires, or the socket dies (sock_wait_established macro). The
// returned status uses the Status* codes.
func (s *TCPSocket) SockWaitEstablished(timeout time.Duration) (status int) {
	if s.tcb == nil {
		return StatusNotInited
	}
	if err := s.tcb.WaitEstablished(timeout); err != nil {
		return statusOf(err)
	}
	return StatusOK
}

// SockMode selects ASCII or binary mode (sock_mode()).
func (s *TCPSocket) SockMode(m Mode) { s.mode = m }

// SockBytesReady returns the count of readable buffered bytes
// (sock_bytesready), or -1 if nothing is ready — matching the Dynamic
// C convention of returning -1 for "no data".
func (s *TCPSocket) SockBytesReady() int {
	if s.tcb == nil {
		return -1
	}
	n := s.tcb.Avail() + len(s.lineBuf)
	if n == 0 {
		return -1
	}
	return n
}

// SockWaitInput blocks until input is available or the socket closes
// (sock_wait_input macro).
func (s *TCPSocket) SockWaitInput(timeout time.Duration) (status int) {
	if s.tcb == nil {
		return StatusNotInited
	}
	deadline := time.Now().Add(timeout)
	for {
		if s.SockBytesReady() > 0 {
			return StatusOK
		}
		// Peek: a zero-byte read situation — poll with short reads.
		buf := make([]byte, 1)
		n, err := s.tcb.ReadDeadline(buf, deadline)
		if n > 0 {
			s.lineBuf = append(s.lineBuf, buf[:n]...)
			return StatusOK
		}
		if err != nil {
			return statusOf(err)
		}
	}
}

// SockGets reads one newline-terminated line in ASCII mode
// (sock_gets). The newline is stripped. ok is false when no complete
// line is available before the timeout or the socket closed.
func (s *TCPSocket) SockGets(maxLen int, timeout time.Duration) (line string, ok bool) {
	if s.tcb == nil || s.mode != ModeASCII {
		return "", false
	}
	deadline := time.Now().Add(timeout)
	for {
		if i := bytes.IndexByte(s.lineBuf, '\n'); i >= 0 {
			raw := s.lineBuf[:i]
			s.lineBuf = append([]byte(nil), s.lineBuf[i+1:]...)
			raw = bytes.TrimSuffix(raw, []byte{'\r'})
			if len(raw) > maxLen {
				raw = raw[:maxLen]
			}
			return string(raw), true
		}
		buf := make([]byte, 512)
		n, err := s.tcb.ReadDeadline(buf, deadline)
		if n > 0 {
			s.lineBuf = append(s.lineBuf, buf[:n]...)
			continue
		}
		if err != nil {
			// Connection ended: surface a final unterminated line if any.
			if len(s.lineBuf) > 0 {
				raw := s.lineBuf
				s.lineBuf = nil
				if len(raw) > maxLen {
					raw = raw[:maxLen]
				}
				return string(raw), true
			}
			return "", false
		}
	}
}

// SockPuts writes a line followed by CRLF in ASCII mode, or the raw
// bytes in binary mode (sock_puts).
func (s *TCPSocket) SockPuts(line string) error {
	if s.tcb == nil {
		return ErrNotInitialized
	}
	data := []byte(line)
	if s.mode == ModeASCII {
		data = append(data, '\r', '\n')
	}
	_, err := s.tcb.Write(data)
	return err
}

// SockRead reads up to len(buf) bytes in binary mode (sock_fastread
// semantics: returns what is buffered, blocking for at least 1 byte).
func (s *TCPSocket) SockRead(buf []byte, timeout time.Duration) (int, int) {
	if s.tcb == nil {
		return 0, StatusNotInited
	}
	if len(s.lineBuf) > 0 {
		n := copy(buf, s.lineBuf)
		s.lineBuf = append([]byte(nil), s.lineBuf[n:]...)
		return n, StatusOK
	}
	n, err := s.tcb.ReadDeadline(buf, time.Now().Add(timeout))
	if err != nil {
		return n, statusOf(err)
	}
	return n, StatusOK
}

// SockWrite writes buf in binary mode (sock_write).
func (s *TCPSocket) SockWrite(buf []byte) (int, int) {
	if s.tcb == nil {
		return 0, StatusNotInited
	}
	n, err := s.tcb.Write(buf)
	if err != nil {
		return n, statusOf(err)
	}
	return n, StatusOK
}

// SockClose closes the connection gracefully (sock_close).
func (s *TCPSocket) SockClose() {
	if s.tcb != nil {
		s.tcb.Close()
	}
}

// SockAbort resets the connection (sock_abort).
func (s *TCPSocket) SockAbort() {
	if s.tcb != nil {
		s.tcb.Abort()
	}
}

func statusOf(err error) int {
	switch {
	case err == nil:
		return StatusOK
	case errors.Is(err, tcpip.ErrTimeout):
		return StatusTimedOut
	case errors.Is(err, tcpip.ErrConnReset):
		return StatusReset
	default:
		return StatusClosed
	}
}
