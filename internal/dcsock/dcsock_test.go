package dcsock

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/tcpip"
)

func twoHosts(t *testing.T) (*tcpip.Stack, *Env) {
	t.Helper()
	hub := netsim.NewHub()
	t.Cleanup(hub.Close)
	cli, err := tcpip.NewStack(hub, tcpip.IP4(10, 0, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cli.Close)
	dev, err := tcpip.NewStack(hub, tcpip.IP4(10, 0, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dev.Close)
	return cli, NewEnv(dev)
}

// TestFig2bEchoServer runs the paper's Fig. 2b code shape verbatim:
//
//	sock_init(); tcp_listen(&sock, PORT, ...);
//	sock_wait_established(&sock, ...); sock_mode(&sock, TCP_MODE_ASCII);
//	while (tcp_tick(&sock)) { sock_wait_input(...);
//	    if (sock_gets(...)) sock_puts(...); }
func TestFig2bEchoServer(t *testing.T) {
	cli, env := twoHosts(t)
	// Bind before the client can connect: tcp_listen must win the race
	// with the SYN or the connect is refused.
	env.SockInit()
	var sock TCPSocket
	if err := env.TcpListen(&sock, 7777); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if st := sock.SockWaitEstablished(5 * time.Second); st != StatusOK {
			t.Errorf("wait_established status %d", st)
			return
		}
		sock.SockMode(ModeASCII)
		for env.TcpTick(&sock) {
			if line, ok := sock.SockGets(256, 2*time.Second); ok {
				sock.SockPuts(line)
			} else {
				return
			}
		}
	}()
	conn, err := cli.Connect(env.Stack().Addr(), 7777, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("echo line one\r\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := conn.ReadDeadline(buf, time.Now().Add(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "echo line one\r\n" {
		t.Errorf("echo = %q", buf[:n])
	}
	conn.Close()
	<-done
}

func TestUninitializedEnvRejectsListen(t *testing.T) {
	_, env := twoHosts(t)
	var sock TCPSocket
	if err := env.TcpListen(&sock, 80); err != ErrNotInitialized {
		t.Errorf("TcpListen before SockInit = %v", err)
	}
}

func TestTcpTickLiveness(t *testing.T) {
	cli, env := twoHosts(t)
	env.SockInit()
	if !env.TcpTick(nil) {
		t.Error("TcpTick(nil) false after init")
	}
	var sock TCPSocket
	if err := env.TcpListen(&sock, 2000); err != nil {
		t.Fatal(err)
	}
	if !env.TcpTick(&sock) {
		t.Error("listening socket reported dead")
	}
	conn, err := cli.Connect(env.Stack().Addr(), 2000, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st := sock.SockWaitEstablished(5 * time.Second); st != StatusOK {
		t.Fatalf("status %d", st)
	}
	if !env.TcpTick(&sock) {
		t.Error("established socket reported dead")
	}
	conn.Close()
	sock.SockClose()
	deadline := time.Now().Add(5 * time.Second)
	for env.TcpTick(&sock) {
		if time.Now().After(deadline) {
			t.Fatal("socket still alive after both sides closed")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestSockBytesReadyConvention(t *testing.T) {
	cli, env := twoHosts(t)
	env.SockInit()
	var sock TCPSocket
	env.TcpListen(&sock, 2100)
	conn, err := cli.Connect(env.Stack().Addr(), 2100, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st := sock.SockWaitEstablished(5 * time.Second); st != StatusOK {
		t.Fatal("not established")
	}
	if n := sock.SockBytesReady(); n != -1 {
		t.Errorf("SockBytesReady empty = %d, want -1 (DC convention)", n)
	}
	conn.Write([]byte("abcde"))
	if st := sock.SockWaitInput(5 * time.Second); st != StatusOK {
		t.Fatalf("wait_input status %d", st)
	}
	deadline := time.Now().Add(5 * time.Second)
	for sock.SockBytesReady() < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("SockBytesReady = %d, want 5", sock.SockBytesReady())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestBinaryReadWrite(t *testing.T) {
	cli, env := twoHosts(t)
	env.SockInit()
	var sock TCPSocket
	env.TcpListen(&sock, 2200)
	conn, err := cli.Connect(env.Stack().Addr(), 2200, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	sock.SockWaitEstablished(5 * time.Second)
	payload := []byte{0x00, 0xff, 0x0a, 0x0d, 0x41} // binary incl. CR/LF bytes
	conn.Write(payload)
	buf := make([]byte, 16)
	got := 0
	for got < len(payload) {
		n, st := sock.SockRead(buf[got:], 5*time.Second)
		if st != StatusOK {
			t.Fatalf("SockRead status %d", st)
		}
		got += n
	}
	for i := range payload {
		if buf[i] != payload[i] {
			t.Fatalf("byte %d = %#x, want %#x", i, buf[i], payload[i])
		}
	}
	// Write back.
	if n, st := sock.SockWrite(payload); n != len(payload) || st != StatusOK {
		t.Fatalf("SockWrite = (%d, %d)", n, st)
	}
	back := make([]byte, 16)
	n, err := conn.ReadDeadline(back, time.Now().Add(5*time.Second))
	if err != nil || n != len(payload) {
		t.Fatalf("read back: n=%d err=%v", n, err)
	}
}

func TestSockGetsSplitsLines(t *testing.T) {
	cli, env := twoHosts(t)
	env.SockInit()
	var sock TCPSocket
	env.TcpListen(&sock, 2300)
	conn, err := cli.Connect(env.Stack().Addr(), 2300, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	sock.SockWaitEstablished(5 * time.Second)
	sock.SockMode(ModeASCII)
	conn.Write([]byte("first\r\nsecond\nthird-no-newline"))
	conn.Close()
	l1, ok := sock.SockGets(256, 2*time.Second)
	if !ok || l1 != "first" {
		t.Errorf("line 1 = %q ok=%v", l1, ok)
	}
	l2, ok := sock.SockGets(256, 2*time.Second)
	if !ok || l2 != "second" {
		t.Errorf("line 2 = %q ok=%v", l2, ok)
	}
	l3, ok := sock.SockGets(256, 2*time.Second)
	if !ok || l3 != "third-no-newline" {
		t.Errorf("line 3 = %q ok=%v", l3, ok)
	}
	if _, ok := sock.SockGets(256, 200*time.Millisecond); ok {
		t.Error("fourth SockGets returned a line on drained socket")
	}
}

func TestSockGetsHonorsMaxLen(t *testing.T) {
	cli, env := twoHosts(t)
	env.SockInit()
	var sock TCPSocket
	env.TcpListen(&sock, 2400)
	conn, err := cli.Connect(env.Stack().Addr(), 2400, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	sock.SockWaitEstablished(5 * time.Second)
	sock.SockMode(ModeASCII)
	conn.Write([]byte("0123456789\n"))
	line, ok := sock.SockGets(4, 2*time.Second)
	if !ok || line != "0123" {
		t.Errorf("truncated line = %q ok=%v", line, ok)
	}
}

func TestSockGetsRequiresASCIIMode(t *testing.T) {
	_, env := twoHosts(t)
	env.SockInit()
	var sock TCPSocket
	env.TcpListen(&sock, 2500)
	if _, ok := sock.SockGets(10, 10*time.Millisecond); ok {
		t.Error("SockGets succeeded in binary mode")
	}
}

// TestE6EchoEquivalence drives the same workload through the Fig. 2a
// BSD server (bsdsock package, tested there) and the Fig. 2b DC server
// and checks both produce identical echoes. The DC side runs here; the
// equivalence of results is the assertion.
func TestE6EchoLineProtocolMatchesBSDBehavior(t *testing.T) {
	cli, env := twoHosts(t)
	// Bind before the client can connect (see TestFig2bEchoServer).
	env.SockInit()
	var sock TCPSocket
	if err := env.TcpListen(&sock, 7); err != nil {
		t.Fatal(err)
	}
	go func() {
		if sock.SockWaitEstablished(5*time.Second) != StatusOK {
			return
		}
		sock.SockMode(ModeASCII)
		for env.TcpTick(&sock) {
			line, ok := sock.SockGets(256, 2*time.Second)
			if !ok {
				return
			}
			sock.SockPuts(line)
		}
	}()
	conn, err := cli.Connect(env.Stack().Addr(), 7, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msgs := []string{"alpha", "beta with spaces", "gamma-123"}
	for _, m := range msgs {
		if _, err := conn.Write([]byte(m + "\r\n")); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 256)
		var got []byte
		for len(got) < len(m)+2 {
			n, err := conn.ReadDeadline(buf, time.Now().Add(5*time.Second))
			if err != nil {
				t.Fatalf("read echo of %q: %v", m, err)
			}
			got = append(got, buf[:n]...)
		}
		if string(got) != m+"\r\n" {
			t.Errorf("echo of %q = %q", m, got)
		}
	}
}

// TestTcpOpenActiveConnection covers the board-initiated direction:
// the device dials out to a workstation service (tcp_open).
func TestTcpOpenActiveConnection(t *testing.T) {
	cli, env := twoHosts(t) // cli = workstation stack, env = board
	l, err := cli.Listen(5555, 1)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		conn, err := l.Accept(5 * time.Second)
		if err != nil {
			return
		}
		buf := make([]byte, 64)
		n, err := conn.ReadDeadline(buf, time.Now().Add(5*time.Second))
		if err != nil {
			return
		}
		conn.Write(buf[:n])
		conn.Close()
	}()
	env.SockInit()
	var sock TCPSocket
	if err := env.TcpOpen(&sock, cli.Addr(), 5555, 5*time.Second); err != nil {
		t.Fatalf("tcp_open: %v", err)
	}
	if !sock.SockEstablished() {
		t.Fatal("not established after TcpOpen")
	}
	if n, st := sock.SockWrite([]byte("board calling")); n != 13 || st != StatusOK {
		t.Fatalf("write: n=%d st=%d", n, st)
	}
	buf := make([]byte, 64)
	got := 0
	for got < 13 {
		n, st := sock.SockRead(buf[got:], 5*time.Second)
		if st != StatusOK {
			t.Fatalf("read status %d", st)
		}
		got += n
	}
	if string(buf[:13]) != "board calling" {
		t.Errorf("echo = %q", buf[:13])
	}
}

func TestTcpOpenRefused(t *testing.T) {
	cli, env := twoHosts(t)
	env.SockInit()
	var sock TCPSocket
	if err := env.TcpOpen(&sock, cli.Addr(), 9999, 2*time.Second); err == nil {
		t.Error("tcp_open to closed port succeeded")
	}
}

func TestTcpOpenRequiresInit(t *testing.T) {
	cli, env := twoHosts(t)
	var sock TCPSocket
	if err := env.TcpOpen(&sock, cli.Addr(), 9999, time.Second); err != ErrNotInitialized {
		t.Errorf("err = %v", err)
	}
}

func TestStatusCodesOnAbort(t *testing.T) {
	cli, env := twoHosts(t)
	env.SockInit()
	var sock TCPSocket
	env.TcpListen(&sock, 2600)
	conn, err := cli.Connect(env.Stack().Addr(), 2600, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	sock.SockWaitEstablished(5 * time.Second)
	conn.Abort() // peer RST
	buf := make([]byte, 8)
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, st := sock.SockRead(buf, 500*time.Millisecond)
		if st == StatusReset {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never saw StatusReset, last status %d", st)
		}
	}
}
