package embedded

// E7: the §5 porting workarounds behave like the facilities they
// replace. Each test here is named in EXPERIMENTS.md.

import (
	"errors"
	"testing"

	"repro/internal/crypto/prng"
)

// TestE7_RandomReplacementMatchesANSI: the port had to write its own
// random(); the replacement reproduces the ANSI C reference sequence,
// so code expecting rand() semantics keeps working.
func TestE7_RandomReplacementMatchesANSI(t *testing.T) {
	l := prng.NewLCG(1)
	want := []int{16838, 5758, 10113}
	for i, w := range want {
		if got := l.Next(); got != w {
			t.Fatalf("value %d = %d, want %d", i, got, w)
		}
	}
}

// TestE7_CircularLogKeepsMostRecent: the file log became a ring; the
// property the service relies on is that the most recent entries
// survive, unboundedly old ones are shed, and nothing blocks.
func TestE7_CircularLogKeepsMostRecent(t *testing.T) {
	l := NewCircularLog(8)
	for i := 0; i < 1000; i++ {
		l.Printf("conn %d", i)
	}
	e := l.Entries()
	if len(e) != 8 {
		t.Fatalf("retained %d entries", len(e))
	}
	if e[7] != "conn 999" || e[0] != "conn 992" {
		t.Errorf("window = [%s .. %s]", e[0], e[7])
	}
	if l.Dropped() != 1000-8 {
		t.Errorf("dropped = %d", l.Dropped())
	}
}

// TestE7_XAllocHasNoFree: allocation is monotonic — the reason the
// port "chose to remove all references to malloc and statically
// allocate all variables", which in turn forced dropping multiple
// key/block sizes.
func TestE7_XAllocHasNoFree(t *testing.T) {
	x := NewXAlloc(256)
	for i := 0; i < 8; i++ {
		if _, err := x.Alloc(32); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	// Arena exhausted; nothing ever comes back without a reset.
	if _, err := x.Alloc(1); !errors.Is(err, ErrOutOfXMem) {
		t.Errorf("exhausted arena returned %v", err)
	}
	x.Reset() // the reboot path — the only "free"
	if _, err := x.Alloc(256); err != nil {
		t.Errorf("post-reset alloc: %v", err)
	}
}

// TestE7_XPtrForbidsArithmetic: xalloc returns handles on which
// pointer arithmetic is meaningless ("arithmetic, therefore, cannot be
// performed on the returned pointer") — the handle type makes
// out-of-allocation access an error rather than a corruption.
func TestE7_XPtrForbidsArithmetic(t *testing.T) {
	x := NewXAlloc(64)
	a, _ := x.Alloc(16)
	b, _ := x.Alloc(16)
	// Walking off the end of a does NOT reach b.
	if err := a.Write(16, []byte{0xFF}); err == nil {
		t.Error("write past allocation end succeeded")
	}
	buf := make([]byte, 1)
	if err := b.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] == 0xFF {
		t.Error("adjacent allocation corrupted")
	}
}

// TestE7_FuncChainRunsAllSegments: §4.4's function chaining — all
// registered segments execute, in order, on one invocation.
func TestE7_FuncChainRunsAllSegments(t *testing.T) {
	chain := MakeChain("recover")
	var order []string
	chain.Add(func() { order = append(order, "free_memory") })
	chain.Add(func() { order = append(order, "declare_memory") })
	chain.Add(func() { order = append(order, "initialize") })
	if chain.Len() != 3 || chain.Name() != "recover" {
		t.Fatalf("chain meta wrong: %d %q", chain.Len(), chain.Name())
	}
	chain.Invoke()
	want := "free_memory,declare_memory,initialize"
	got := ""
	for i, s := range order {
		if i > 0 {
			got += ","
		}
		got += s
	}
	if got != want {
		t.Errorf("order = %s", got)
	}
	// Second invocation runs everything again.
	chain.Invoke()
	if len(order) != 6 {
		t.Errorf("segments ran %d times total, want 6", len(order))
	}
}

// TestE7_ProtectedVariableRecovery: §4.3's protected storage class —
// the battery-backed copy restores state after a reset, the mechanism
// behind "reset the application, possibly maintaining program state".
func TestE7_ProtectedVariableRecovery(t *testing.T) {
	ram := NewBatteryRAM()
	state1 := NewProtectedInt(ram, "state1", 0)
	state1.Set(7)
	state1.Set(42)
	state1.Corrupt() // the crash
	state1.Restore() // _sysIsSoftReset path
	if state1.Get() != 42 {
		t.Errorf("recovered %d, want 42", state1.Get())
	}
}
