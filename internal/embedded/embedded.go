// Package embedded collects the workarounds §5 of the paper describes
// for Unix facilities the RMC2000 environment lacks:
//
//   - XAlloc: Dynamic C "provides the xalloc function that allocates
//     extended memory only... there is no analogue to free". A bump
//     allocator over a fixed arena whose handles cannot be used for
//     pointer arithmetic — the very restriction that pushed the port
//     to static allocation and a single AES key/block size.
//   - CircularLog: "to make logging write to a circular buffer rather
//     than a file" — the replacement for unbounded filesystem logs.
//   - ErrorHandlers: the defineErrorHandler(void *errfcn) mechanism;
//     hardware and library exceptions dispatch here because there is
//     no OS to catch them.
//   - MsTimer: "the protocols include timeouts, but Dynamic C does not
//     have a timer" — the MS_TIMER-style millisecond counter the port
//     had to build.
//   - Shared / Protected variables: Dynamic C storage classes. shared
//     guarantees atomic multibyte updates; protected copies values to
//     battery-backed RAM before modification and restores them after
//     a reset.
package embedded

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// --- xalloc ----------------------------------------------------------------

// XPtr is a handle into extended memory. It is deliberately opaque:
// the Rabbit returns physical addresses on which C pointer arithmetic
// is meaningless, and this type gives the same discipline.
type XPtr struct {
	off, size int
	arena     *XAlloc
}

// XAlloc is a bump allocator over a fixed extended-memory arena.
// There is no free: memory is returned only by Reset (a reboot).
type XAlloc struct {
	mu    sync.Mutex
	arena []byte
	next  int
}

// ErrOutOfXMem is returned when the arena is exhausted.
var ErrOutOfXMem = errors.New("embedded: out of extended memory")

// NewXAlloc creates an arena of the given size in bytes.
func NewXAlloc(size int) *XAlloc {
	return &XAlloc{arena: make([]byte, size)}
}

// Alloc reserves n bytes. There is no Free.
func (x *XAlloc) Alloc(n int) (XPtr, error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if n <= 0 {
		return XPtr{}, fmt.Errorf("embedded: xalloc of %d bytes", n)
	}
	if x.next+n > len(x.arena) {
		return XPtr{}, fmt.Errorf("%w: want %d, %d left", ErrOutOfXMem, n, len(x.arena)-x.next)
	}
	p := XPtr{off: x.next, size: n, arena: x}
	x.next += n
	return p, nil
}

// Remaining returns unallocated arena bytes.
func (x *XAlloc) Remaining() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return len(x.arena) - x.next
}

// Reset returns all memory to the pool (model of a reboot).
func (x *XAlloc) Reset() {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.next = 0
	for i := range x.arena {
		x.arena[i] = 0
	}
}

// Size returns the allocation's length.
func (p XPtr) Size() int { return p.size }

// Valid reports whether the handle refers to an allocation.
func (p XPtr) Valid() bool { return p.arena != nil }

// Read copies the allocation's bytes at offset off into buf.
func (p XPtr) Read(off int, buf []byte) error {
	if !p.Valid() || off < 0 || off+len(buf) > p.size {
		return errors.New("embedded: xmem read out of bounds")
	}
	p.arena.mu.Lock()
	defer p.arena.mu.Unlock()
	copy(buf, p.arena.arena[p.off+off:p.off+off+len(buf)])
	return nil
}

// Write copies buf into the allocation at offset off.
func (p XPtr) Write(off int, buf []byte) error {
	if !p.Valid() || off < 0 || off+len(buf) > p.size {
		return errors.New("embedded: xmem write out of bounds")
	}
	p.arena.mu.Lock()
	defer p.arena.mu.Unlock()
	copy(p.arena.arena[p.off+off:], buf)
	return nil
}

// --- circular log ------------------------------------------------------------

// CircularLog replaces file logging with a fixed-size ring of entries;
// old entries are overwritten, never flushed to a filesystem that the
// platform does not have.
type CircularLog struct {
	mu      sync.Mutex
	entries []string
	next    int
	filled  bool
	dropped int
}

// NewCircularLog creates a ring holding n entries.
func NewCircularLog(n int) *CircularLog {
	if n < 1 {
		n = 1
	}
	return &CircularLog{entries: make([]string, n)}
}

// Printf appends a formatted entry, evicting the oldest when full.
func (l *CircularLog) Printf(format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.filled {
		l.dropped++
	}
	l.entries[l.next] = fmt.Sprintf(format, args...)
	l.next++
	if l.next == len(l.entries) {
		l.next = 0
		l.filled = true
	}
}

// Entries returns the retained entries, oldest first.
func (l *CircularLog) Entries() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []string
	if l.filled {
		out = append(out, l.entries[l.next:]...)
	}
	out = append(out, l.entries[:l.next]...)
	return out
}

// Dropped returns how many entries have been overwritten.
func (l *CircularLog) Dropped() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Len returns the number of retained entries.
func (l *CircularLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.filled {
		return len(l.entries)
	}
	return l.next
}

// --- error handler -----------------------------------------------------------

// Errno identifies a runtime error class the hardware or library can raise.
type Errno int

// Error classes modeled after the Rabbit runtime's fatal errors.
const (
	ErrDivideByZero Errno = iota + 1
	ErrStackOverflow
	ErrBadInterrupt
	ErrDomain
	ErrLibrary
)

var errnoNames = map[Errno]string{
	ErrDivideByZero: "divide-by-zero", ErrStackOverflow: "stack overflow",
	ErrBadInterrupt: "bad interrupt", ErrDomain: "domain error",
	ErrLibrary: "library error",
}

func (e Errno) String() string {
	if n, ok := errnoNames[e]; ok {
		return n
	}
	return fmt.Sprintf("errno(%d)", int(e))
}

// Handler receives the error class and a hardware-supplied info word
// (the values the Rabbit pushes on the stack for the error handler).
type Handler func(e Errno, info uint16)

// ErrorHandlers is the defineErrorHandler registry. The zero value
// has the default handler, which ignores errors — the paper's port
// "simply ignored most errors" because the application was not
// designed for high reliability.
type ErrorHandlers struct {
	mu      sync.Mutex
	handler Handler
	raised  []Errno
}

// Define installs the handler (defineErrorHandler(errfcn)).
func (h *ErrorHandlers) Define(fn Handler) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.handler = fn
}

// Raise dispatches an error to the installed handler.
func (h *ErrorHandlers) Raise(e Errno, info uint16) {
	h.mu.Lock()
	fn := h.handler
	h.raised = append(h.raised, e)
	h.mu.Unlock()
	if fn != nil {
		fn(e, info)
	}
}

// Raised returns the errors raised so far (diagnostics).
func (h *ErrorHandlers) Raised() []Errno {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Errno(nil), h.raised...)
}

// --- millisecond timer ---------------------------------------------------------

// MsTimer is the MS_TIMER replacement: a monotonic millisecond counter
// from an arbitrary epoch, used to implement protocol timeouts.
type MsTimer struct {
	epoch time.Time
}

// NewMsTimer starts a timer at 0.
func NewMsTimer() *MsTimer { return &MsTimer{epoch: time.Now()} }

// Now returns elapsed milliseconds since the epoch.
func (t *MsTimer) Now() uint32 {
	return uint32(time.Since(t.epoch) / time.Millisecond)
}

// Expired reports whether the deadline (a Now() value) has passed,
// using wraparound-safe comparison like MS_TIMER code must.
func (t *MsTimer) Expired(deadline uint32) bool {
	return int32(t.Now()-deadline) >= 0
}

// --- shared / protected variables -----------------------------------------------

// SharedUint32 models a `shared` multibyte variable: updates are
// atomic with respect to interrupt handlers (Dynamic C disables
// interrupts around the store).
type SharedUint32 struct {
	mu sync.Mutex
	v  uint32
}

// Load returns the value atomically.
func (s *SharedUint32) Load() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.v
}

// Store sets the value atomically.
func (s *SharedUint32) Store(v uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.v = v
}

// Add increments atomically and returns the new value.
func (s *SharedUint32) Add(d uint32) uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.v += d
	return s.v
}

// BatteryRAM models the battery-backed SRAM region `protected`
// variables are mirrored into. It survives Reset of the program state.
type BatteryRAM struct {
	mu    sync.Mutex
	cells map[string][]byte
}

// NewBatteryRAM creates an empty battery-backed store.
func NewBatteryRAM() *BatteryRAM { return &BatteryRAM{cells: map[string][]byte{}} }

// ProtectedInt is a `protected int`: every modification first copies
// the old value to battery RAM, and Restore (the _sysIsSoftReset path)
// brings the last committed value back after a reset.
type ProtectedInt struct {
	ram  *BatteryRAM
	name string
	v    int
}

// NewProtectedInt declares a protected variable backed by ram.
func NewProtectedInt(ram *BatteryRAM, name string, initial int) *ProtectedInt {
	p := &ProtectedInt{ram: ram, name: name, v: initial}
	p.commit()
	return p
}

func (p *ProtectedInt) commit() {
	b := []byte{byte(p.v >> 24), byte(p.v >> 16), byte(p.v >> 8), byte(p.v)}
	p.ram.mu.Lock()
	p.ram.cells[p.name] = b
	p.ram.mu.Unlock()
}

// Get returns the current value.
func (p *ProtectedInt) Get() int { return p.v }

// Set updates the value, committing to battery RAM first.
func (p *ProtectedInt) Set(v int) {
	p.commit() // old value saved before modification
	p.v = v
	p.commit()
}

// Restore reloads the last committed value (after a soft reset).
func (p *ProtectedInt) Restore() {
	p.ram.mu.Lock()
	b, ok := p.ram.cells[p.name]
	p.ram.mu.Unlock()
	if ok && len(b) == 4 {
		// Decode through int32 so negative values sign-extend correctly.
		v := int32(uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]))
		p.v = int(v)
	}
}

// Corrupt models losing working memory (the reason protected exists):
// it scrambles the in-memory value without touching battery RAM.
func (p *ProtectedInt) Corrupt() { p.v = -0x55555556 }
