package embedded

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestXAllocBumpAndExhaustion(t *testing.T) {
	x := NewXAlloc(100)
	a, err := x.Alloc(60)
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() != 60 || x.Remaining() != 40 {
		t.Errorf("size=%d remaining=%d", a.Size(), x.Remaining())
	}
	if _, err := x.Alloc(41); !errors.Is(err, ErrOutOfXMem) {
		t.Errorf("over-allocation error = %v", err)
	}
	b, err := x.Alloc(40)
	if err != nil {
		t.Fatal(err)
	}
	if x.Remaining() != 0 {
		t.Errorf("remaining = %d", x.Remaining())
	}
	_ = b
}

func TestXAllocNoAliasing(t *testing.T) {
	x := NewXAlloc(64)
	a, _ := x.Alloc(32)
	b, _ := x.Alloc(32)
	if err := a.Write(0, []byte("AAAA")); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(0, []byte("BBBB")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	a.Read(0, buf)
	if string(buf) != "AAAA" {
		t.Errorf("a = %q after writing b", buf)
	}
}

func TestXPtrBounds(t *testing.T) {
	x := NewXAlloc(16)
	p, _ := x.Alloc(8)
	if err := p.Write(6, []byte("xyz")); err == nil {
		t.Error("out-of-bounds write accepted")
	}
	if err := p.Read(-1, make([]byte, 1)); err == nil {
		t.Error("negative-offset read accepted")
	}
	var zero XPtr
	if err := zero.Write(0, []byte{1}); err == nil {
		t.Error("write through zero handle accepted")
	}
}

func TestXAllocRejectsSillySizes(t *testing.T) {
	x := NewXAlloc(16)
	if _, err := x.Alloc(0); err == nil {
		t.Error("zero-byte alloc accepted")
	}
	if _, err := x.Alloc(-5); err == nil {
		t.Error("negative alloc accepted")
	}
}

func TestXAllocReset(t *testing.T) {
	x := NewXAlloc(16)
	p, _ := x.Alloc(16)
	p.Write(0, []byte("secret"))
	x.Reset()
	if x.Remaining() != 16 {
		t.Errorf("remaining after reset = %d", x.Remaining())
	}
	q, _ := x.Alloc(6)
	buf := make([]byte, 6)
	q.Read(0, buf)
	for _, b := range buf {
		if b != 0 {
			t.Error("reset did not scrub arena")
			break
		}
	}
}

func TestCircularLogEviction(t *testing.T) {
	l := NewCircularLog(3)
	for i := 1; i <= 5; i++ {
		l.Printf("entry %d", i)
	}
	got := l.Entries()
	want := []string{"entry 3", "entry 4", "entry 5"}
	if len(got) != 3 {
		t.Fatalf("retained %d entries", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("entry %d = %q, want %q", i, got[i], want[i])
		}
	}
	if l.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", l.Dropped())
	}
}

func TestCircularLogPartialFill(t *testing.T) {
	l := NewCircularLog(10)
	l.Printf("only")
	if l.Len() != 1 || l.Entries()[0] != "only" {
		t.Errorf("entries = %v", l.Entries())
	}
	if l.Dropped() != 0 {
		t.Error("dropped nonzero before wrap")
	}
}

// Property: the log never retains more than its capacity and always
// keeps the most recent entries.
func TestCircularLogProperty(t *testing.T) {
	f := func(nRaw uint8, count uint8) bool {
		n := int(nRaw%10) + 1
		l := NewCircularLog(n)
		for i := 0; i < int(count); i++ {
			l.Printf("%d", i)
		}
		e := l.Entries()
		if len(e) > n {
			return false
		}
		if int(count) > 0 && len(e) > 0 && e[len(e)-1] != itoa(int(count)-1) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

func TestErrorHandlerDispatch(t *testing.T) {
	var h ErrorHandlers
	var got Errno
	var gotInfo uint16
	h.Define(func(e Errno, info uint16) { got, gotInfo = e, info })
	h.Raise(ErrDivideByZero, 0xbeef)
	if got != ErrDivideByZero || gotInfo != 0xbeef {
		t.Errorf("handler got (%v, %#x)", got, gotInfo)
	}
	if len(h.Raised()) != 1 {
		t.Errorf("raised log = %v", h.Raised())
	}
}

func TestErrorHandlerDefaultIgnores(t *testing.T) {
	var h ErrorHandlers
	h.Raise(ErrStackOverflow, 0) // must not panic
	if len(h.Raised()) != 1 {
		t.Error("raise not recorded")
	}
}

func TestErrnoStrings(t *testing.T) {
	if ErrDivideByZero.String() != "divide-by-zero" {
		t.Errorf("String = %q", ErrDivideByZero.String())
	}
	if Errno(99).String() != "errno(99)" {
		t.Errorf("unknown errno = %q", Errno(99).String())
	}
}

func TestMsTimerMonotonic(t *testing.T) {
	mt := NewMsTimer()
	a := mt.Now()
	time.Sleep(30 * time.Millisecond)
	b := mt.Now()
	if b < a+20 {
		t.Errorf("timer advanced %d ms over a 30ms sleep", b-a)
	}
}

func TestMsTimerExpired(t *testing.T) {
	mt := NewMsTimer()
	if mt.Expired(mt.Now() + 1000) {
		t.Error("future deadline reported expired")
	}
	if !mt.Expired(mt.Now()) {
		t.Error("current deadline not expired")
	}
	// Wraparound-safe: a deadline "just behind" even across wrap.
	if !mt.Expired(mt.Now() - 10) {
		t.Error("past deadline not expired")
	}
}

func TestSharedUint32(t *testing.T) {
	var s SharedUint32
	s.Store(41)
	if s.Add(1) != 42 || s.Load() != 42 {
		t.Error("shared arithmetic wrong")
	}
	// Hammer from multiple goroutines; total must be exact.
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 1000; j++ {
				s.Add(1)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if s.Load() != 42+8000 {
		t.Errorf("after concurrent adds: %d", s.Load())
	}
}

func TestProtectedIntSurvivesReset(t *testing.T) {
	ram := NewBatteryRAM()
	p := NewProtectedInt(ram, "state1", 7)
	p.Set(1234)
	p.Corrupt()
	if p.Get() == 1234 {
		t.Fatal("corrupt did nothing")
	}
	p.Restore()
	if p.Get() != 1234 {
		t.Errorf("restored value = %d, want 1234", p.Get())
	}
}

func TestProtectedIntInitialCommit(t *testing.T) {
	ram := NewBatteryRAM()
	p := NewProtectedInt(ram, "x", 99)
	p.Corrupt()
	p.Restore()
	if p.Get() != 99 {
		t.Errorf("restore before any Set = %d, want 99", p.Get())
	}
}

func TestProtectedIntNegativeValues(t *testing.T) {
	ram := NewBatteryRAM()
	p := NewProtectedInt(ram, "neg", -12345)
	p.Corrupt()
	p.Restore()
	if p.Get() != -12345 {
		t.Errorf("negative restore = %d", p.Get())
	}
}
