package embedded

import "sync"

// FuncChain models Dynamic C's function chaining (§4.4 of the paper):
//
//	#makechain recover
//	#funcchain recover free_memory
//	#funcchain recover declare_memory
//	#funcchain recover initialize
//	recover();   // invokes all segments
//
// "Invoking a named function chain causes all the segments belonging
// to that chain to execute. Such chains enable initialization, data
// recovery, or other kinds of tasks on request." The paper's port did
// not use the feature; it is provided for completeness of the Dynamic
// C environment model.
type FuncChain struct {
	name string
	mu   sync.Mutex
	segs []func()
}

// MakeChain creates an empty named chain (#makechain).
func MakeChain(name string) *FuncChain { return &FuncChain{name: name} }

// Name returns the chain's name.
func (c *FuncChain) Name() string { return c.name }

// Add appends a segment (#funcchain NAME fn). Segments run in the
// order added.
func (c *FuncChain) Add(fn func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.segs = append(c.segs, fn)
}

// Len returns the number of segments.
func (c *FuncChain) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.segs)
}

// Invoke runs every segment in order (calling the chain by name).
func (c *FuncChain) Invoke() {
	c.mu.Lock()
	segs := append([]func(){}, c.segs...)
	c.mu.Unlock()
	for _, fn := range segs {
		fn()
	}
}
