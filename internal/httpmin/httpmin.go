// Package httpmin is a deliberately small HTTP/1.0-subset server and
// client that runs over any io.ReadWriter — a plain TCP connection or
// an issl.Conn. It exists for the paper's motivating scenario: SSL
// "layers on top of TCP/IP to provide secure communications, e.g., to
// encrypt web pages with sensitive information" (§2). One request per
// connection (Connection: close semantics), GET and HEAD only.
package httpmin

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Request is a parsed request line plus headers.
type Request struct {
	Method  string
	Path    string
	Proto   string
	Headers map[string]string
}

// Response is what a handler returns.
type Response struct {
	Status  int
	Reason  string
	Headers map[string]string
	Body    []byte
}

// Handler produces a response for one request.
type Handler func(Request) Response

// Errors surfaced by parsing.
var (
	ErrBadRequest  = errors.New("httpmin: malformed request")
	ErrBadResponse = errors.New("httpmin: malformed response")
)

// reasonFor supplies default reason phrases.
func reasonFor(status int) string {
	switch status {
	case 200:
		return "OK"
	case 400:
		return "Bad Request"
	case 404:
		return "Not Found"
	case 405:
		return "Method Not Allowed"
	case 500:
		return "Internal Server Error"
	}
	return "Unknown"
}

// Text builds a 200 text/plain response.
func Text(status int, body string) Response {
	return Response{
		Status:  status,
		Headers: map[string]string{"Content-Type": "text/plain"},
		Body:    []byte(body),
	}
}

// NotFound is the standard 404.
func NotFound() Response { return Text(404, "not found\n") }

// Serve reads one request from conn, dispatches it, writes the
// response, and returns. The caller owns connection lifecycle.
func Serve(conn io.ReadWriter, h Handler) error {
	br := bufio.NewReader(conn)
	req, err := readRequest(br)
	if err != nil {
		writeResponse(conn, Text(400, "bad request\n"))
		return err
	}
	var resp Response
	switch req.Method {
	case "GET", "HEAD":
		resp = h(req)
	default:
		resp = Text(405, "method not allowed\n")
	}
	if req.Method == "HEAD" {
		if resp.Headers == nil {
			resp.Headers = map[string]string{}
		}
		resp.Headers["Content-Length"] = strconv.Itoa(len(resp.Body))
		resp.Body = nil
	}
	return writeResponse(conn, resp)
}

func readRequest(br *bufio.Reader) (Request, error) {
	line, err := readLine(br)
	if err != nil {
		return Request{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	parts := strings.Fields(line)
	if len(parts) < 2 || len(parts) > 3 {
		return Request{}, fmt.Errorf("%w: request line %q", ErrBadRequest, line)
	}
	req := Request{Method: parts[0], Path: parts[1], Proto: "HTTP/0.9",
		Headers: map[string]string{}}
	if len(parts) == 3 {
		req.Proto = parts[2]
	}
	if !strings.HasPrefix(req.Path, "/") {
		return Request{}, fmt.Errorf("%w: path %q", ErrBadRequest, req.Path)
	}
	if err := readHeaders(br, req.Headers); err != nil {
		return Request{}, err
	}
	return req, nil
}

func readHeaders(br *bufio.Reader, into map[string]string) error {
	for {
		line, err := readLine(br)
		if err != nil {
			return fmt.Errorf("%w: headers: %v", ErrBadRequest, err)
		}
		if line == "" {
			return nil
		}
		name, value, ok := strings.Cut(line, ":")
		if !ok {
			return fmt.Errorf("%w: header %q", ErrBadRequest, line)
		}
		into[strings.TrimSpace(name)] = strings.TrimSpace(value)
	}
}

func readLine(br *bufio.Reader) (string, error) {
	s, err := br.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(s, "\r\n"), nil
}

func writeResponse(w io.Writer, resp Response) error {
	reason := resp.Reason
	if reason == "" {
		reason = reasonFor(resp.Status)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "HTTP/1.0 %d %s\r\n", resp.Status, reason)
	headers := map[string]string{}
	for k, v := range resp.Headers {
		headers[k] = v
	}
	if _, ok := headers["Content-Length"]; !ok {
		headers["Content-Length"] = strconv.Itoa(len(resp.Body))
	}
	names := make([]string, 0, len(headers))
	for k := range headers {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(&sb, "%s: %s\r\n", k, headers[k])
	}
	sb.WriteString("\r\n")
	if _, err := io.WriteString(w, sb.String()); err != nil {
		return err
	}
	if len(resp.Body) > 0 {
		if _, err := w.Write(resp.Body); err != nil {
			return err
		}
	}
	return nil
}

// Get issues a GET over an established connection and parses the reply.
func Get(conn io.ReadWriter, path string) (Response, error) {
	return roundTrip(conn, "GET", path)
}

// Head issues a HEAD request.
func Head(conn io.ReadWriter, path string) (Response, error) {
	return roundTrip(conn, "HEAD", path)
}

func roundTrip(conn io.ReadWriter, method, path string) (Response, error) {
	if _, err := fmt.Fprintf(conn, "%s %s HTTP/1.0\r\n\r\n", method, path); err != nil {
		return Response{}, err
	}
	br := bufio.NewReader(conn)
	status, err := readLine(br)
	if err != nil {
		return Response{}, fmt.Errorf("%w: status: %v", ErrBadResponse, err)
	}
	parts := strings.SplitN(status, " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/") {
		return Response{}, fmt.Errorf("%w: status line %q", ErrBadResponse, status)
	}
	code, err := strconv.Atoi(parts[1])
	if err != nil {
		return Response{}, fmt.Errorf("%w: status code %q", ErrBadResponse, parts[1])
	}
	resp := Response{Status: code, Headers: map[string]string{}}
	if len(parts) == 3 {
		resp.Reason = parts[2]
	}
	if err := readHeaders(br, resp.Headers); err != nil {
		return Response{}, fmt.Errorf("%w: %v", ErrBadResponse, err)
	}
	if method == "HEAD" {
		return resp, nil
	}
	n := -1
	if cl, ok := resp.Headers["Content-Length"]; ok {
		n, err = strconv.Atoi(cl)
		if err != nil || n < 0 {
			return Response{}, fmt.Errorf("%w: Content-Length %q", ErrBadResponse, cl)
		}
	}
	if n >= 0 {
		resp.Body = make([]byte, n)
		if _, err := io.ReadFull(br, resp.Body); err != nil {
			return Response{}, fmt.Errorf("%w: body: %v", ErrBadResponse, err)
		}
	} else {
		// No length: read to EOF (HTTP/1.0 close semantics).
		body, err := io.ReadAll(br)
		if err != nil {
			return Response{}, err
		}
		resp.Body = body
	}
	return resp, nil
}
