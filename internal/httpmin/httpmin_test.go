package httpmin

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/crypto/prng"
	"repro/internal/issl"
)

// serveOne runs Serve on one side of a pipe and Get on the other.
func serveOne(t *testing.T, h Handler, method, path string) Response {
	t.Helper()
	a, b := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- Serve(b, h) }()
	var resp Response
	var err error
	if method == "HEAD" {
		resp, err = Head(a, path)
	} else {
		resp, err = Get(a, path)
	}
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	<-done
	return resp
}

func router(req Request) Response {
	switch req.Path {
	case "/":
		return Text(200, "index page\n")
	case "/secret":
		return Text(200, "balance: 1,234,567\n")
	default:
		return NotFound()
	}
}

func TestGetOK(t *testing.T) {
	resp := serveOne(t, router, "GET", "/")
	if resp.Status != 200 || string(resp.Body) != "index page\n" {
		t.Errorf("got %d %q", resp.Status, resp.Body)
	}
	if resp.Headers["Content-Type"] != "text/plain" {
		t.Errorf("content-type = %q", resp.Headers["Content-Type"])
	}
	if resp.Headers["Content-Length"] != "11" {
		t.Errorf("content-length = %q", resp.Headers["Content-Length"])
	}
}

func TestNotFound(t *testing.T) {
	resp := serveOne(t, router, "GET", "/nope")
	if resp.Status != 404 {
		t.Errorf("status = %d", resp.Status)
	}
}

func TestHeadOmitsBody(t *testing.T) {
	resp := serveOne(t, router, "HEAD", "/secret")
	if resp.Status != 200 || len(resp.Body) != 0 {
		t.Errorf("HEAD: %d, %d body bytes", resp.Status, len(resp.Body))
	}
	if resp.Headers["Content-Length"] != "19" {
		t.Errorf("HEAD content-length = %q", resp.Headers["Content-Length"])
	}
}

func TestMethodNotAllowed(t *testing.T) {
	a, b := net.Pipe()
	go Serve(b, router)
	resp, err := roundTrip(a, "DELETE", "/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 405 {
		t.Errorf("status = %d", resp.Status)
	}
}

func TestMalformedRequestGets400(t *testing.T) {
	a, b := net.Pipe()
	errCh := make(chan error, 1)
	go func() { errCh <- Serve(b, router) }()
	a.Write([]byte("NOT A VALID REQUEST LINE WITH TOO MANY PARTS HERE\r\n\r\n"))
	got := drainSome(a)
	if !strings.Contains(got, "400") {
		t.Errorf("reply = %q", got)
	}
	if err := <-errCh; err == nil {
		t.Error("Serve returned nil for malformed request")
	}
}

func TestRelativePathRejected(t *testing.T) {
	a, b := net.Pipe()
	go Serve(b, router)
	a.Write([]byte("GET nope HTTP/1.0\r\n\r\n"))
	if got := drainSome(a); !strings.Contains(got, "400") {
		t.Errorf("reply = %q", got)
	}
}

// drainSome reads from the pipe until the peer pauses, so multi-write
// responses (headers then body) fully unblock the server.
func drainSome(a net.Conn) string {
	var out []byte
	buf := make([]byte, 256)
	a.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
	for {
		n, err := a.Read(buf)
		out = append(out, buf[:n]...)
		if err != nil {
			return string(out)
		}
	}
}

func TestHeadersParsed(t *testing.T) {
	var got Request
	h := func(r Request) Response { got = r; return Text(200, "ok") }
	a, b := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- Serve(b, h) }()
	a.Write([]byte("GET /x HTTP/1.0\r\nHost: board\r\nX-Token:  abc \r\n\r\n"))
	drainSome(a)
	<-done
	if got.Headers["Host"] != "board" || got.Headers["X-Token"] != "abc" {
		t.Errorf("headers = %v", got.Headers)
	}
}

// TestOverISSL serves a page through the secure layer — the paper's
// "encrypt web pages" configuration in miniature.
func TestOverISSL(t *testing.T) {
	psk := []byte("web-psk")
	ct, st := net.Pipe()
	done := make(chan error, 1)
	go func() {
		sc, err := issl.BindServer(st, issl.Config{
			Profile: issl.ProfileEmbedded, PSK: psk, Rand: prng.NewXorshift(2)})
		if err != nil {
			done <- err
			return
		}
		done <- Serve(sc, router)
	}()
	sc, err := issl.BindClient(ct, issl.Config{
		Profile: issl.ProfileEmbedded, PSK: psk, Rand: prng.NewXorshift(1)})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := Get(sc, "/secret")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || string(resp.Body) != "balance: 1,234,567\n" {
		t.Errorf("secure GET: %d %q", resp.Status, resp.Body)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestDefaultReasons(t *testing.T) {
	for code, want := range map[int]string{200: "OK", 404: "Not Found", 500: "Internal Server Error", 999: "Unknown"} {
		if got := reasonFor(code); got != want {
			t.Errorf("reasonFor(%d) = %q", code, got)
		}
	}
}
