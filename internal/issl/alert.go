package issl

import (
	"errors"
	"fmt"
)

// Alerts. The original issl, like the SSL it imitated, needed a way to
// say "this connection is over, and here is why" that survives an
// attacker on the wire: alert records travel under the record-layer
// MAC, so a forged teardown is just another ErrBadMAC. The close
// record's single plaintext byte is the alert code; code 0 is the
// orderly close_notify, anything else a fatal alert that tears the
// connection down on both ends.

// AlertCode identifies why a connection was torn down. Values borrow
// TLS's numbering where one fits.
type AlertCode uint8

// Alert codes.
const (
	// AlertCloseNotify is the orderly end of stream (not an error).
	AlertCloseNotify AlertCode = 0
	// AlertBadRecordMAC: a record failed authentication or decryption.
	AlertBadRecordMAC AlertCode = 20
	// AlertDecodeError: a record was structurally malformed.
	AlertDecodeError AlertCode = 50
	// AlertRecordOverflow: a record exceeded the profile's static buffers.
	AlertRecordOverflow AlertCode = 22
	// AlertInternalError: the sender hit a local failure mid-connection.
	AlertInternalError AlertCode = 80
)

func (a AlertCode) String() string {
	switch a {
	case AlertCloseNotify:
		return "close_notify"
	case AlertBadRecordMAC:
		return "bad_record_mac"
	case AlertDecodeError:
		return "decode_error"
	case AlertRecordOverflow:
		return "record_overflow"
	case AlertInternalError:
		return "internal_error"
	default:
		return fmt.Sprintf("alert(%d)", uint8(a))
	}
}

// AlertError is the typed teardown error: either we generated the
// alert (Remote=false; the underlying cause is wrapped and reachable
// with errors.Is/As) or the peer sent it to us (Remote=true).
type AlertError struct {
	Code   AlertCode
	Remote bool  // true: received from the peer; false: raised locally
	cause  error // local alerts: the record-layer error that triggered it
}

func (e *AlertError) Error() string {
	side := "local"
	if e.Remote {
		side = "remote"
	}
	if e.cause != nil {
		return fmt.Sprintf("issl: %s alert %s: %v", side, e.Code, e.cause)
	}
	return fmt.Sprintf("issl: %s alert %s", side, e.Code)
}

// Unwrap exposes the triggering record-layer error (ErrBadMAC and
// friends) so existing errors.Is checks keep working.
func (e *AlertError) Unwrap() error { return e.cause }

// alertFor maps a record-layer failure to the alert code we send.
func alertFor(err error) AlertCode {
	switch {
	case err == nil:
		return AlertCloseNotify
	case errors.Is(err, ErrBadMAC):
		return AlertBadRecordMAC
	case errors.Is(err, ErrRecordTooBig):
		return AlertRecordOverflow
	case errors.Is(err, ErrBadRecord):
		return AlertDecodeError
	default:
		return AlertInternalError
	}
}
