package issl

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/crypto/aes"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/sha1"
)

// Conn is an established secure connection. It implements
// io.ReadWriteCloser; Read and Write are the "secure read/writes"
// the issl API layered over a bound socket. One concurrent reader and
// one concurrent writer are supported (each direction has independent
// cipher state); multiple concurrent readers or writers are not.
type Conn struct {
	tr  io.ReadWriter
	cfg Config
	rng *prng.Xorshift
	hs  handshakeState

	master []byte

	wMu     sync.Mutex // guards write-side state and the rng
	wCipher *aes.Cipher
	rCipher *aes.Cipher
	wMAC    []byte
	rMAC    []byte
	wSeq    uint64
	rSeq    uint64

	// Streaming MAC states, lazily derived from wMAC/rMAC (record.go)
	// and invalidated by deriveKeys. wHMAC is guarded by wMu; rHMAC is
	// owned by the reading goroutine.
	wHMAC *sha1.HMACState
	rHMAC *sha1.HMACState

	rbuf      []byte // decrypted-but-undelivered plaintext
	rdScratch []byte // readRecord body scratch, owned by the reader
	peerClose bool
	closed    atomic.Bool

	// pk is the transport's zero-copy receive interface, resolved once
	// at construction when the transport offers it (tcpip.TCB does).
	// With pk set, records are opened in place inside the transport's
	// receive buffer — rbuf aliases it — and pendingDiscard tracks the
	// consumed record bytes, released lazily before the next record
	// read (or eagerly once rbuf drains). Owned by the reader.
	pk             peekTransport
	pendingDiscard int

	// readDeadline bounds record reads (see SetReadDeadline). Owned by
	// the reading goroutine.
	readDeadline time.Time

	// failErr is the first fatal record-layer error; once set, every
	// Read and Write returns it. Guarded by failMu (Read and Write run
	// on different goroutines).
	failMu  sync.Mutex
	failErr error

	sessionID [SessionIDLen]byte
	ticket    []byte // sealed session ticket issued by the server
	resumed   bool

	// Stats observable by benchmarks and tests.
	bytesIn, bytesOut     uint64
	recordsIn, recordsOut uint64

	// metrics mirrors the stats onto Config.Metrics (nil-safe handles;
	// see telemetry.go).
	metrics connMetrics
}

func newConn(tr io.ReadWriter, cfg Config) *Conn {
	c := &Conn{tr: tr, cfg: cfg, rng: cfg.Rand, metrics: newConnMetrics(cfg.Metrics)}
	if pk, ok := tr.(peekTransport); ok {
		c.pk = pk
	}
	return c
}

// Profile returns the negotiated profile.
func (c *Conn) Profile() Profile { return c.cfg.Profile }

// CipherInfo returns the negotiated key and block sizes in bits.
func (c *Conn) CipherInfo() (keyBits, blockBits int) {
	return c.cfg.KeyBits, c.cfg.BlockBits
}

// Stats returns plaintext byte and record counters for both directions.
func (c *Conn) Stats() (bytesIn, bytesOut, recordsIn, recordsOut uint64) {
	return c.bytesIn, c.bytesOut, c.recordsIn, c.recordsOut
}

// SetReadDeadline bounds subsequent Reads: a record that has not fully
// arrived by t fails with the transport's timeout error. A zero t
// clears the deadline. It must be called from the reading goroutine
// (the Conn supports one concurrent reader).
func (c *Conn) SetReadDeadline(t time.Time) { c.readDeadline = t }

// fail records the first fatal error; later calls keep the original.
func (c *Conn) fail(err error) error {
	c.failMu.Lock()
	defer c.failMu.Unlock()
	if c.failErr == nil {
		c.failErr = err
	}
	return c.failErr
}

func (c *Conn) terminalErr() error {
	c.failMu.Lock()
	defer c.failMu.Unlock()
	return c.failErr
}

// failAndAlert converts a record-layer failure into a typed local
// alert: the peer gets a best-effort authenticated alert record, the
// connection is marked dead, and the AlertError (which unwraps to the
// triggering sentinel) becomes the terminal error.
func (c *Conn) failAndAlert(cause error) error {
	ae := &AlertError{Code: alertFor(cause), cause: cause}
	err := c.fail(ae)
	if err == ae { // first failure: we own sending the alert
		c.trySendAlert(ae.Code)
		c.metrics.alertsSent.Inc()
		c.cfg.Trace.Emit("issl", "alert.sent", "code", ae.Code.String())
		c.cfg.logf("issl: fatal: sent alert %s (%v)", ae.Code, cause)
	}
	return err
}

// alertWriteTimeout caps how long a dying connection blocks trying to
// tell its peer why.
const alertWriteTimeout = 250 * time.Millisecond

// trySendAlert writes a fatal alert record, best effort: it gives up
// quietly if the connection is already closed or the transport is
// wedged (bounded by a write deadline when the transport has one).
func (c *Conn) trySendAlert(code AlertCode) {
	if !c.closed.CompareAndSwap(false, true) {
		return
	}
	c.wMu.Lock()
	defer c.wMu.Unlock()
	if wd, ok := c.tr.(interface{ SetWriteDeadline(t time.Time) error }); ok {
		wd.SetWriteDeadline(time.Now().Add(alertWriteTimeout))
		defer wd.SetWriteDeadline(time.Time{})
	}
	sealed, err := c.sealRecord(recClose, []byte{byte(code)})
	if err != nil {
		return
	}
	c.writeRecord(recClose, sealed)
}

// recBufPool holds sealed-record staging buffers shared by all
// connections' Write calls; steady-state writes neither allocate nor
// copy records more than once.
var recBufPool = sync.Pool{New: func() any { return new([]byte) }}

// writeFlushThreshold bounds how many sealed bytes Write stages before
// handing them to the transport in one call.
const writeFlushThreshold = 16 * 1024

// Write encrypts and sends data, fragmenting into records no larger
// than the profile's limit (the embedded port's static buffers).
// Records are sealed back to back into a pooled staging buffer and
// flushed to the transport in batches, so a large Write costs one
// transport call per ~16 KiB of records instead of one per record.
func (c *Conn) Write(p []byte) (int, error) {
	if err := c.terminalErr(); err != nil {
		return 0, err
	}
	if c.closed.Load() {
		return 0, ErrClosed
	}
	c.wMu.Lock()
	defer c.wMu.Unlock()
	bufp := recBufPool.Get().(*[]byte)
	buf := (*bufp)[:0]
	defer func() { *bufp = buf[:0]; recBufPool.Put(bufp) }()

	maxRec := c.cfg.maxRecord()
	written := 0 // plaintext bytes flushed to the transport
	pending := 0 // plaintext bytes sealed but not yet flushed
	pendingRecs := uint64(0)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		if _, err := c.tr.Write(buf); err != nil {
			return err
		}
		buf = buf[:0]
		written += pending
		c.bytesOut += uint64(pending)
		c.recordsOut += pendingRecs
		c.metrics.bytesOut.Add(uint64(pending))
		c.metrics.recordsOut.Add(pendingRecs)
		pending, pendingRecs = 0, 0
		return nil
	}
	for off := 0; off < len(p); {
		n := len(p) - off
		if n > maxRec {
			n = maxRec
		}
		var err error
		buf, err = c.appendSealed(buf, recData, p[off:off+n])
		if err != nil {
			if ferr := flush(); ferr != nil {
				return written, ferr
			}
			return written, err
		}
		off += n
		pending += n
		pendingRecs++
		if len(buf) >= writeFlushThreshold {
			if err := flush(); err != nil {
				return written, err
			}
		}
	}
	if err := flush(); err != nil {
		return written, err
	}
	return written, nil
}

// Read returns decrypted plaintext, blocking for at least one byte.
// It returns io.EOF after the peer's close_notify. A record that fails
// authentication or decoding is fatal: the peer is sent a typed alert,
// the connection is dead, and the returned *AlertError unwraps to the
// record-layer sentinel (ErrBadMAC and friends). A fatal alert from
// the peer surfaces the same way with Remote set.
func (c *Conn) Read(p []byte) (int, error) {
	if err := c.terminalErr(); err != nil {
		return 0, err
	}
	for len(c.rbuf) == 0 {
		if c.peerClose {
			return 0, io.EOF
		}
		recType, body, err := c.readRecord()
		if err != nil {
			return 0, err // transport-level; nothing to alert over
		}
		switch recType {
		case recData:
			pt, err := c.openRecord(recData, body)
			if err != nil {
				return 0, c.failAndAlert(err)
			}
			if len(pt) > c.cfg.maxRecord() {
				// A peer sent more than our static buffers can take.
				err := fmt.Errorf("%w: %d > %d", ErrRecordTooBig, len(pt), c.cfg.maxRecord())
				return 0, c.failAndAlert(err)
			}
			// rbuf was empty (the loop condition), so pt can be adopted
			// directly: it aliases either the transport's pinned receive
			// buffer (peek path) or rdScratch (fallback path), and the
			// next readRecord only happens after rbuf drains — both
			// backings are stable until then. No copy either way.
			c.rbuf = pt
			c.bytesIn += uint64(len(pt))
			c.recordsIn++
			c.metrics.bytesIn.Add(uint64(len(pt)))
			c.metrics.recordsIn.Inc()
		case recClose:
			pt, err := c.openRecord(recClose, body)
			if err != nil {
				return 0, c.failAndAlert(err)
			}
			if len(pt) >= 1 && AlertCode(pt[0]) != AlertCloseNotify {
				ae := &AlertError{Code: AlertCode(pt[0]), Remote: true}
				c.metrics.alertsRecv.Inc()
				c.cfg.Trace.Emit("issl", "alert.recv", "code", ae.Code.String())
				c.cfg.logf("issl: peer sent fatal alert %s", ae.Code)
				return 0, c.fail(ae)
			}
			c.peerClose = true
		default:
			err := fmt.Errorf("%w: unexpected record type %#x", ErrBadRecord, recType)
			return 0, c.failAndAlert(err)
		}
	}
	n := copy(p, c.rbuf)
	c.rbuf = c.rbuf[n:]
	if len(c.rbuf) == 0 {
		// Record fully delivered: release the transport's receive
		// buffer now rather than at the next readRecord, so the pin
		// (which diverts concurrent arrivals) is held no longer than
		// necessary.
		c.flushPeeked()
	}
	return n, nil
}

// Close sends an authenticated close_notify and marks the connection
// done. The underlying transport is not closed; the caller owns it.
func (c *Conn) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	c.wMu.Lock()
	defer c.wMu.Unlock()
	sealed, err := c.sealRecord(recClose, []byte{byte(AlertCloseNotify)})
	if err != nil {
		return err
	}
	return c.writeRecord(recClose, sealed)
}

// CloseWrite half-closes the connection: close_notify goes out and
// further Writes fail, but Reads continue until the peer's own
// close_notify — the secure-layer analogue of TCP shutdown(SHUT_WR),
// which the redirector's pump uses to propagate one-directional EOF.
func (c *Conn) CloseWrite() error { return c.Close() }
