package issl

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/crypto/aes"
	"repro/internal/crypto/prng"
)

// Conn is an established secure connection. It implements
// io.ReadWriteCloser; Read and Write are the "secure read/writes"
// the issl API layered over a bound socket. One concurrent reader and
// one concurrent writer are supported (each direction has independent
// cipher state); multiple concurrent readers or writers are not.
type Conn struct {
	tr  io.ReadWriter
	cfg Config
	rng *prng.Xorshift
	hs  handshakeState

	master []byte

	wMu     sync.Mutex // guards write-side state and the rng
	wCipher *aes.Cipher
	rCipher *aes.Cipher
	wMAC    []byte
	rMAC    []byte
	wSeq    uint64
	rSeq    uint64

	rbuf      []byte // decrypted-but-undelivered plaintext
	peerClose bool
	closed    atomic.Bool

	sessionID [SessionIDLen]byte
	resumed   bool

	// Stats observable by benchmarks and tests.
	bytesIn, bytesOut     uint64
	recordsIn, recordsOut uint64
}

func newConn(tr io.ReadWriter, cfg Config) *Conn {
	return &Conn{tr: tr, cfg: cfg, rng: cfg.Rand}
}

// Profile returns the negotiated profile.
func (c *Conn) Profile() Profile { return c.cfg.Profile }

// CipherInfo returns the negotiated key and block sizes in bits.
func (c *Conn) CipherInfo() (keyBits, blockBits int) {
	return c.cfg.KeyBits, c.cfg.BlockBits
}

// Stats returns plaintext byte and record counters for both directions.
func (c *Conn) Stats() (bytesIn, bytesOut, recordsIn, recordsOut uint64) {
	return c.bytesIn, c.bytesOut, c.recordsIn, c.recordsOut
}

// Write encrypts and sends data, fragmenting into records no larger
// than the profile's limit (the embedded port's static buffers).
func (c *Conn) Write(p []byte) (int, error) {
	if c.closed.Load() {
		return 0, ErrClosed
	}
	c.wMu.Lock()
	defer c.wMu.Unlock()
	maxRec := c.cfg.maxRecord()
	written := 0
	for written < len(p) {
		n := len(p) - written
		if n > maxRec {
			n = maxRec
		}
		sealed, err := c.sealRecord(recData, p[written:written+n])
		if err != nil {
			return written, err
		}
		if err := c.writeRecord(recData, sealed); err != nil {
			return written, err
		}
		written += n
		c.bytesOut += uint64(n)
		c.recordsOut++
	}
	return written, nil
}

// Read returns decrypted plaintext, blocking for at least one byte.
// It returns io.EOF after the peer's close_notify.
func (c *Conn) Read(p []byte) (int, error) {
	for len(c.rbuf) == 0 {
		if c.peerClose {
			return 0, io.EOF
		}
		recType, body, err := c.readRecord()
		if err != nil {
			return 0, err
		}
		switch recType {
		case recData:
			pt, err := c.openRecord(recData, body)
			if err != nil {
				return 0, err
			}
			if len(pt) > c.cfg.maxRecord() {
				// A peer sent more than our static buffers can take.
				return 0, fmt.Errorf("%w: %d > %d", ErrRecordTooBig, len(pt), c.cfg.maxRecord())
			}
			c.rbuf = append(c.rbuf, pt...)
			c.bytesIn += uint64(len(pt))
			c.recordsIn++
		case recClose:
			if _, err := c.openRecord(recClose, body); err != nil {
				return 0, err
			}
			c.peerClose = true
		default:
			return 0, fmt.Errorf("%w: unexpected record type %#x", ErrBadRecord, recType)
		}
	}
	n := copy(p, c.rbuf)
	c.rbuf = c.rbuf[n:]
	return n, nil
}

// Close sends an authenticated close_notify and marks the connection
// done. The underlying transport is not closed; the caller owns it.
func (c *Conn) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	c.wMu.Lock()
	defer c.wMu.Unlock()
	sealed, err := c.sealRecord(recClose, []byte{0})
	if err != nil {
		return err
	}
	return c.writeRecord(recClose, sealed)
}
