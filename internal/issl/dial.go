package issl

import (
	"fmt"
	"io"
	"time"

	"repro/internal/crypto/prng"
)

// Reconnection. The paper's client talks to a watchdog-supervised
// board over a real wire: connections die — the board reboots, the hub
// drops a burst, somebody trips over the cable — and the client's job
// is to get back on with as little ceremony as possible. DialWithRetry
// redials with capped exponential backoff plus deterministic jitter
// and offers the previous session on every attempt, so a server whose
// cache survived (the paper's `protected` storage) grants the cheap
// abbreviated handshake and only a genuinely amnesiac server costs a
// full one.

// RetryPolicy shapes DialWithRetry's backoff. The zero value gets the
// defaults noted per field.
type RetryPolicy struct {
	// MaxAttempts is the total connection attempts before giving up
	// (default 5).
	MaxAttempts int
	// BaseDelay is the wait after the first failure (default 50ms);
	// it doubles per failure.
	BaseDelay time.Duration
	// MaxDelay caps the doubling (default 2s).
	MaxDelay time.Duration
	// JitterPct spreads each delay uniformly in ±JitterPct% (default
	// 20, drawn from the Config's deterministic PRNG; 0 keeps the
	// default — use -1 for none).
	JitterPct int
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 5
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.JitterPct == 0 {
		p.JitterPct = 20
	}
	if p.JitterPct < 0 {
		p.JitterPct = 0
	}
	if p.JitterPct > 100 {
		p.JitterPct = 100
	}
	return p
}

// DialStats counts what reconnection cost.
type DialStats struct {
	Attempts        uint64 // transport dials attempted
	DialFailures    uint64 // transport dials that failed
	HandshakeFails  uint64 // transports that connected but failed to bind
	FullHandshakes  uint64 // successful binds that ran the full handshake
	Resumptions     uint64 // successful binds via abbreviated resumption
	ResumeFallbacks uint64 // resumption offers that degraded to a full handshake
}

// Dialer reconnects an issl client across transport failures, keeping
// the resumable session between attempts. Methods are not safe for
// concurrent use; a Dialer serves one logical client connection.
type Dialer struct {
	// Dial opens a fresh transport (e.g. a tcpip.Stack Connect). Required.
	Dial func() (io.ReadWriteCloser, error)
	// Config is the client handshake configuration. Config.Resume is
	// overridden per attempt with the Dialer's cached session.
	Config Config
	// Policy shapes the backoff; zero value = defaults.
	Policy RetryPolicy
	// Sleep is the delay hook, defaulting to time.Sleep (tests and the
	// chaos harness substitute their own to observe the schedule).
	Sleep func(time.Duration)

	session *Session
	stats   DialStats
}

// Stats returns a snapshot of the reconnect counters.
func (d *Dialer) Stats() DialStats { return d.stats }

// Session returns the currently cached resumable session, if any.
func (d *Dialer) Session() *Session { return d.session }

// ForgetSession drops the cached session so the next dial is full.
func (d *Dialer) ForgetSession() { d.session = nil }

// DialWithRetry dials and binds until one attempt yields a live secure
// connection or the policy's attempts are exhausted. Each attempt
// offers the cached session — sealed ticket preferred — for
// abbreviated resumption. A rejected offer is not an error and does
// not consume a retry slot: when the server declines on its own
// (stale ticket, evicted cache entry) the same connection completes a
// full handshake; when the offer poisons the handshake outright, the
// same attempt immediately re-dials clean and runs the full handshake
// before any backoff. Both degradations increment ResumeFallbacks and
// the issl.resume_fallback counter. The returned transport is owned by
// the caller (close it after the Conn).
func (d *Dialer) DialWithRetry() (*Conn, io.ReadWriteCloser, error) {
	if d.Dial == nil {
		return nil, nil, fmt.Errorf("%w: Dialer needs a Dial function", ErrConfig)
	}
	pol := d.Policy.withDefaults()
	sleep := d.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	fallbacks := d.Config.Metrics.Counter("issl.resume_fallback")
	delay := pol.BaseDelay
	var lastErr error
	for attempt := 1; ; attempt++ {
		d.stats.Attempts++
		tr, err := d.Dial()
		if err == nil {
			cfg := d.Config
			cfg.Resume = d.session
			conn, herr := BindClient(tr, cfg)
			if herr != nil && cfg.Resume != nil {
				// The resumption offer may itself be what failed (stale
				// cache, desynced state). That is the server's problem to
				// decline, not ours to pay a retry slot for: drop the
				// session and run the full handshake within this same
				// attempt, on a fresh transport, before any backoff.
				tr.Close()
				d.session = nil
				d.stats.ResumeFallbacks++
				fallbacks.Inc()
				if tr, err = d.Dial(); err == nil {
					cfg.Resume = nil
					conn, herr = BindClient(tr, cfg)
				}
			}
			if err == nil && herr == nil {
				if conn.Resumed() {
					d.stats.Resumptions++
				} else {
					d.stats.FullHandshakes++
					if cfg.Resume != nil {
						// We offered, the server declined and completed a
						// full handshake instead: a graceful server-side
						// fallback (its rejection telemetry says why).
						d.stats.ResumeFallbacks++
						fallbacks.Inc()
						d.session = nil
					}
				}
				if s := conn.Session(); s != nil {
					d.session = s
				}
				return conn, tr, nil
			}
			if err == nil {
				tr.Close()
				d.stats.HandshakeFails++
				lastErr = herr
			} else {
				d.stats.DialFailures++
				lastErr = err
			}
		} else {
			d.stats.DialFailures++
			lastErr = err
		}
		if attempt >= pol.MaxAttempts {
			return nil, nil, fmt.Errorf("issl: dial failed after %d attempts: %w", attempt, lastErr)
		}
		sleep(jitter(delay, pol.JitterPct, d.Config.Rand))
		delay *= 2
		if delay > pol.MaxDelay {
			delay = pol.MaxDelay
		}
	}
}

// jitter spreads d uniformly across ±pct%, deterministically via rng.
func jitter(d time.Duration, pct int, rng *prng.Xorshift) time.Duration {
	if pct <= 0 || rng == nil || d <= 0 {
		return d
	}
	span := int(d) * pct / 100
	if span <= 0 {
		return d
	}
	return d - time.Duration(span) + time.Duration(rng.Intn(2*span+1))
}
