package issl

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/crypto/prng"
)

// echoServer runs server handshakes (sharing one cache) on every
// transport delivered on ch, echoing until each conn ends.
func echoServer(t *testing.T, ch <-chan net.Conn, cache *SessionCache, psk []byte) {
	t.Helper()
	seed := uint64(1000)
	go func() {
		for tr := range ch {
			seed++
			cfg := Config{Profile: ProfileEmbedded, PSK: psk,
				Rand: prng.NewXorshift(seed), Cache: cache}
			go func(tr net.Conn) {
				conn, err := BindServer(tr, cfg)
				if err != nil {
					tr.Close()
					return
				}
				buf := make([]byte, 4096)
				for {
					n, err := conn.Read(buf)
					if n > 0 {
						conn.Write(buf[:n])
					}
					if err != nil {
						tr.Close()
						return
					}
				}
			}(tr)
		}
	}()
}

func TestDialWithRetrySucceedsAfterFailures(t *testing.T) {
	psk := []byte("retry-psk")
	cache := NewSessionCache(4)
	srvCh := make(chan net.Conn, 8)
	echoServer(t, srvCh, cache, psk)

	fails := 3
	var slept []time.Duration
	d := &Dialer{
		Dial: func() (io.ReadWriteCloser, error) {
			if fails > 0 {
				fails--
				return nil, errors.New("backend down")
			}
			ct, st := net.Pipe()
			srvCh <- st
			return ct, nil
		},
		Config: Config{Profile: ProfileEmbedded, PSK: psk, Rand: prng.NewXorshift(7)},
		Policy: RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond},
		Sleep:  func(d time.Duration) { slept = append(slept, d) },
	}
	conn, tr, err := d.DialWithRetry()
	if err != nil {
		t.Fatalf("DialWithRetry: %v", err)
	}
	defer tr.Close()
	defer conn.Close()
	st := d.Stats()
	if st.Attempts != 4 || st.DialFailures != 3 || st.FullHandshakes != 1 {
		t.Errorf("stats = %+v", st)
	}
	if len(slept) != 3 {
		t.Fatalf("slept %d times, want 3", len(slept))
	}
	// Backoff doubles from base, with ±20% jitter around each step.
	for i, base := range []time.Duration{10, 20, 40} {
		base *= time.Millisecond
		lo, hi := base*80/100, base*120/100
		if slept[i] < lo || slept[i] > hi {
			t.Errorf("backoff %d = %v, want within [%v, %v]", i, slept[i], lo, hi)
		}
	}
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	if n, _ := conn.Read(buf); string(buf[:n]) != "ping" {
		t.Errorf("echo = %q", buf[:n])
	}
}

func TestDialWithRetryResumesSession(t *testing.T) {
	psk := []byte("resume-psk")
	cache := NewSessionCache(4)
	srvCh := make(chan net.Conn, 8)
	echoServer(t, srvCh, cache, psk)

	d := &Dialer{
		Dial: func() (io.ReadWriteCloser, error) {
			ct, st := net.Pipe()
			srvCh <- st
			return ct, nil
		},
		Config: Config{Profile: ProfileEmbedded, PSK: psk, Rand: prng.NewXorshift(7)},
		Sleep:  func(time.Duration) {},
	}
	// First connection: a full handshake that earns a session.
	c1, tr1, err := d.DialWithRetry()
	if err != nil {
		t.Fatal(err)
	}
	if c1.Resumed() {
		t.Error("first connection claims resumption")
	}
	if d.Session() == nil {
		t.Fatal("no session cached after full handshake")
	}
	c1.Close()
	tr1.Close()

	// Second: the cached session rides the ClientHello and resumes.
	c2, tr2, err := d.DialWithRetry()
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	defer c2.Close()
	if !c2.Resumed() {
		t.Error("reconnect did not resume the cached session")
	}
	st := d.Stats()
	if st.FullHandshakes != 1 || st.Resumptions != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDialWithRetryFallsBackWhenCacheEvicted(t *testing.T) {
	psk := []byte("evict-psk")
	cache := NewSessionCache(4)
	srvCh := make(chan net.Conn, 8)
	echoServer(t, srvCh, cache, psk)

	d := &Dialer{
		Dial: func() (io.ReadWriteCloser, error) {
			ct, st := net.Pipe()
			srvCh <- st
			return ct, nil
		},
		Config: Config{Profile: ProfileEmbedded, PSK: psk, Rand: prng.NewXorshift(9)},
		Sleep:  func(time.Duration) {},
	}
	c1, tr1, err := d.DialWithRetry()
	if err != nil {
		t.Fatal(err)
	}
	c1.Close()
	tr1.Close()
	sess := d.Session()
	if sess == nil {
		t.Fatal("no session cached")
	}
	// The server's cache loses the entry (reboot, eviction pressure):
	// the client still offers it, and the handshake falls back to full.
	cache.Remove(sess.ID)
	c2, tr2, err := d.DialWithRetry()
	if err != nil {
		t.Fatalf("dial after eviction: %v", err)
	}
	defer tr2.Close()
	defer c2.Close()
	if c2.Resumed() {
		t.Error("resumed against an evicted cache entry")
	}
	st := d.Stats()
	if st.FullHandshakes != 2 || st.Resumptions != 0 {
		t.Errorf("stats = %+v", st)
	}
	if d.Session() == nil {
		t.Error("fallback handshake did not refresh the cached session")
	}
}

func TestDialWithRetryExhaustsAttempts(t *testing.T) {
	d := &Dialer{
		Dial:   func() (io.ReadWriteCloser, error) { return nil, errors.New("nope") },
		Config: Config{Profile: ProfileEmbedded, PSK: []byte("k"), Rand: prng.NewXorshift(1)},
		Policy: RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond},
		Sleep:  func(time.Duration) {},
	}
	_, _, err := d.DialWithRetry()
	if err == nil {
		t.Fatal("dial succeeded against a dead backend")
	}
	if st := d.Stats(); st.Attempts != 3 || st.DialFailures != 3 {
		t.Errorf("stats = %+v", st)
	}
}

func TestHandshakeTimeout(t *testing.T) {
	ct, st := net.Pipe()
	defer st.Close()
	defer ct.Close()
	// The server never responds: a half-open peer.
	cfg := Config{Profile: ProfileEmbedded, PSK: []byte("k"),
		Rand: prng.NewXorshift(1), HandshakeTimeout: 80 * time.Millisecond}
	go func() { // swallow the ClientHello, then go silent
		buf := make([]byte, 256)
		st.Read(buf)
	}()
	start := time.Now()
	_, err := BindClient(ct, cfg)
	if !errors.Is(err, ErrHandshakeTimeout) {
		t.Fatalf("err = %v, want ErrHandshakeTimeout", err)
	}
	if errors.Is(err, ErrHandshake) == false {
		t.Errorf("timeout error should still be a handshake failure: %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("timeout took %v", d)
	}
}

func TestRemoteAlertSurfacesTyped(t *testing.T) {
	cliCfg, srvCfg := embeddedConfigs()
	cli, srv := handshakePair(t, cliCfg, srvCfg)
	// Feed the server garbage that MACs wrong; it must alert the client.
	sealed, err := cli.sealRecord(recData, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	sealed[len(sealed)-1] ^= 0xff
	srvErr := make(chan error, 1)
	go func() {
		buf := make([]byte, 16)
		_, err := srv.Read(buf)
		srvErr <- err
	}()
	// The client must already be reading: net.Pipe is synchronous, so
	// the server's outgoing alert needs a live reader on the other end.
	cliErr := make(chan error, 1)
	go func() {
		buf := make([]byte, 16)
		_, err := cli.Read(buf)
		cliErr <- err
	}()
	if err := cli.writeRecord(recData, sealed); err != nil {
		t.Fatal(err)
	}
	// Server side: a local AlertError wrapping ErrBadMAC.
	err = <-srvErr
	var ae *AlertError
	if !errors.As(err, &ae) || ae.Remote || ae.Code != AlertBadRecordMAC {
		t.Fatalf("server error = %v, want local bad_record_mac alert", err)
	}
	if !errors.Is(err, ErrBadMAC) {
		t.Errorf("alert does not unwrap to ErrBadMAC: %v", err)
	}
	// Client side: the peer's alert arrives as a remote AlertError.
	err = <-cliErr
	if !errors.As(err, &ae) || !ae.Remote || ae.Code != AlertBadRecordMAC {
		t.Fatalf("client error = %v, want remote bad_record_mac alert", err)
	}
	buf := make([]byte, 16)
	// The connection is terminally dead on both sides.
	if _, err := srv.Write([]byte("y")); err == nil {
		t.Error("write succeeded on a dead connection")
	}
	if _, err := cli.Read(buf); err == nil {
		t.Error("read succeeded on a dead connection")
	}
}

func TestCloseWriteHalfClose(t *testing.T) {
	cliCfg, srvCfg := embeddedConfigs()
	cli, srv := handshakePair(t, cliCfg, srvCfg)
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Server reads the request to EOF, then still answers.
		buf := make([]byte, 64)
		var req []byte
		for {
			n, err := srv.Read(buf)
			req = append(req, buf[:n]...)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Errorf("server read: %v", err)
				return
			}
		}
		if string(req) != "request" {
			t.Errorf("request = %q", req)
		}
		if _, err := srv.Write([]byte("response")); err != nil {
			t.Errorf("server write after client EOF: %v", err)
		}
		srv.Close()
	}()
	if _, err := cli.Write([]byte("request")); err != nil {
		t.Fatal(err)
	}
	if err := cli.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Write([]byte("more")); !errors.Is(err, ErrClosed) {
		t.Errorf("write after CloseWrite = %v, want ErrClosed", err)
	}
	// Read to EOF so the server's own close_notify is consumed (the
	// synchronous pipe would otherwise wedge srv.Close).
	var resp []byte
	buf := make([]byte, 64)
	for {
		n, err := cli.Read(buf)
		resp = append(resp, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("client read after half-close: %v", err)
		}
	}
	if string(resp) != "response" {
		t.Errorf("response = %q", resp)
	}
	<-done
}
