package issl

// Native fuzz targets for the record layer. Under plain `go test`
// these run seed-only (f.Add plus testdata/fuzz corpus) as a fast
// regression; CI additionally runs a short -fuzz smoke. Invariants:
// the record reader never panics and never trusts a length it has not
// read, forged sealed bodies are rejected, and seal→open is identity.

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/crypto/aes"
	"repro/internal/crypto/prng"
)

// fuzzTransport feeds a fixed byte string to the record reader and
// swallows writes.
type fuzzTransport struct{ r io.Reader }

func (f *fuzzTransport) Read(p []byte) (int, error)  { return f.r.Read(p) }
func (f *fuzzTransport) Write(p []byte) (int, error) { return len(p), nil }

// fuzzKeyedConn builds a Conn with established directional keys but no
// handshake, so the sealed-record path can be exercised directly.
func fuzzKeyedConn(t testing.TB) *Conn {
	t.Helper()
	key := bytes.Repeat([]byte{0x42}, 16)
	w, err := aes.NewAES(key)
	if err != nil {
		t.Fatal(err)
	}
	r, err := aes.NewAES(key)
	if err != nil {
		t.Fatal(err)
	}
	mac := bytes.Repeat([]byte{0x69}, 20)
	return &Conn{
		wCipher: w, rCipher: r,
		wMAC: mac, rMAC: mac,
		rng: prng.NewXorshift(7),
	}
}

func FuzzISSLRecord(f *testing.F) {
	f.Add([]byte{recHandshake, protocolVersion, 0x00, 0x03, 0x01, 0x02, 0x03})
	f.Add([]byte{recClose, protocolVersion, 0x00, 0x00})
	f.Add([]byte{recData, protocolVersion, 0xff, 0xff}) // 64KiB length, no body
	f.Add([]byte{recHandshake, 0x30, 0x00, 0x01, 0xaa}) // wrong version
	f.Add([]byte{recHandshake, protocolVersion, 0x00})  // truncated header
	f.Add(bytes.Repeat([]byte{recData, protocolVersion, 0x00, 0x01, 0x77}, 4))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Stream parse: read records until error/EOF. Must not panic,
		// and every delivered body must match its declared length.
		c := &Conn{tr: &fuzzTransport{r: bytes.NewReader(data)}}
		for i := 0; i < 8; i++ {
			_, body, err := c.readRecord()
			if err != nil {
				break
			}
			if len(body) > 0xffff {
				t.Fatalf("record body %d bytes exceeds wire maximum", len(body))
			}
		}

		// Authenticity: arbitrary bytes must never open as a sealed
		// record — the fuzzer cannot forge an HMAC-SHA1 tag.
		rc := fuzzKeyedConn(t)
		if pt, err := rc.openRecord(recData, data); err == nil {
			t.Fatalf("openRecord accepted %d unauthenticated bytes -> %x", len(data), pt)
		}

		// Round-trip: treating the input as plaintext, seal then open
		// must be the identity.
		wc, rc2 := fuzzKeyedConn(t), fuzzKeyedConn(t)
		sealed, err := wc.sealRecord(recData, data)
		if err != nil {
			t.Fatalf("sealRecord(%d bytes): %v", len(data), err)
		}
		pt, err := rc2.openRecord(recData, sealed)
		if err != nil {
			t.Fatalf("openRecord rejected our own sealed record: %v", err)
		}
		if !bytes.Equal(pt, data) {
			t.Fatalf("seal/open round-trip corrupted %d bytes", len(data))
		}
		// A single flipped ciphertext bit must flip the verdict too.
		if len(sealed) > 0 {
			sealed[len(sealed)/2] ^= 0x01
			if _, err := fuzzKeyedConn(t).openRecord(recData, sealed); err == nil {
				t.Fatal("openRecord accepted a tampered sealed record")
			}
		}
	})
}
