package issl

import (
	"bytes"
	"fmt"

	"repro/internal/crypto/bignum"
	"repro/internal/crypto/rsa"
	"repro/internal/crypto/sha1"
)

// Handshake messages (bodies of recHandshake records):
//
//	ClientHello:  0x01 profile keyBits/8 blockBits/8 clientRandom(32)
//	              sidLen(1) [sessionID(16)] [tktLen(2) ticket]
//	ServerHello:  0x02 profile keyBits/8 blockBits/8 serverRandom(32)
//	              resumed(1) sidLen(1) [sessionID(16)] tktPromise(1)
//	              [Unix full handshake: eLen(2) e nLen(2) n]
//	KeyExchange:  0x03 [Unix: ctLen(2) rsaCiphertext] [Embedded: empty]
//	              (omitted entirely on resumption)
//	Finished:     0x04 verify(20)   — first message under the new keys
//	NewSessionTicket: 0x05 tktLen(2) ticket — sealed under the new
//	              keys, sent after the server's Finished when the
//	              ServerHello promised one (tktPromise=1). Not part of
//	              the Finished transcript; the record MAC covers it.
//
// The ticket fields are extensions over the original format: a server
// tolerates a ClientHello without the ticket tail, so transcripts from
// older corpora still parse. A client-offered ticket is the preferred
// resumption path — it works on any cluster instance — with the
// session-ID cache as the per-instance fallback.
//
// Key schedule: master = HMAC(premaster, "master"||cr||sr); per
// direction, writeKey = expand(master, "c key"/"s key")[:keyBytes] and
// macKey = HMAC(master, "c mac"/"s mac"). The Finished verify value is
// HMAC(master, label || SHA1(transcript)), label distinguishing the
// two directions, so a tampered handshake cannot converge.

const (
	msgClientHello = 0x01
	msgServerHello = 0x02
	msgKeyExchange = 0x03
	msgFinished    = 0x04
	msgNewTicket   = 0x05
)

const randomLen = 32

// premasterLen is the session secret length the client generates.
const premasterLen = 32

type handshakeState struct {
	transcript   bytes.Buffer
	clientRandom [randomLen]byte
	serverRandom [randomLen]byte
	premaster    []byte
}

func (c *Conn) sendHandshake(body []byte) error {
	c.hs.transcript.Write(body)
	return c.writeRecord(recHandshake, body)
}

func (c *Conn) readHandshake(wantType byte) ([]byte, error) {
	recType, body, err := c.readRecord()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	if recType != recHandshake || len(body) == 0 {
		return nil, fmt.Errorf("%w: unexpected record type %#x", ErrHandshake, recType)
	}
	if body[0] != wantType {
		return nil, fmt.Errorf("%w: got message %#x, want %#x", ErrHandshake, body[0], wantType)
	}
	c.hs.transcript.Write(body)
	return body, nil
}

func bitsByte(bits int) byte { return byte(bits / 8) }

// --- client ------------------------------------------------------------------

func (c *Conn) clientHandshake() error {
	cfg := &c.cfg
	hsStart := cfg.Trace.Now()
	c.rng.Fill(c.hs.clientRandom[:])

	hello := []byte{msgClientHello, byte(cfg.Profile), bitsByte(cfg.KeyBits), bitsByte(cfg.BlockBits)}
	hello = append(hello, c.hs.clientRandom[:]...)
	offeredTicket := false
	if cfg.Resume != nil {
		if cfg.Resume.ID != ([SessionIDLen]byte{}) {
			hello = append(hello, SessionIDLen)
			hello = append(hello, cfg.Resume.ID[:]...)
		} else {
			hello = append(hello, 0)
		}
		if n := len(cfg.Resume.Ticket); n > 0 && n <= MaxTicketLen {
			offeredTicket = true
			hello = append(hello, byte(n>>8), byte(n))
			hello = append(hello, cfg.Resume.Ticket...)
		} else {
			hello = append(hello, 0, 0)
		}
	} else {
		hello = append(hello, 0, 0, 0) // no session ID, no ticket
	}
	if err := c.sendHandshake(hello); err != nil {
		return fmt.Errorf("%w: sending ClientHello: %v", ErrHandshake, err)
	}

	sh, err := c.readHandshake(msgServerHello)
	if err != nil {
		return err
	}
	if len(sh) < 4+randomLen+3 {
		return fmt.Errorf("%w: short ServerHello", ErrHandshake)
	}
	if Profile(sh[1]) != cfg.Profile {
		return fmt.Errorf("%w: client %s vs server %s", ErrProfileMismatch, cfg.Profile, Profile(sh[1]))
	}
	if int(sh[2])*8 != cfg.KeyBits || int(sh[3])*8 != cfg.BlockBits {
		return fmt.Errorf("%w: server negotiated %d/%d, client wanted %d/%d",
			ErrHandshake, int(sh[2])*8, int(sh[3])*8, cfg.KeyBits, cfg.BlockBits)
	}
	copy(c.hs.serverRandom[:], sh[4:4+randomLen])
	rest := sh[4+randomLen:]
	resumedFlag := rest[0] == 1
	sidLen := int(rest[1])
	rest = rest[2:]
	if sidLen > 0 {
		if sidLen != SessionIDLen || len(rest) < sidLen {
			return fmt.Errorf("%w: bad session id", ErrHandshake)
		}
		copy(c.sessionID[:], rest[:sidLen])
		rest = rest[sidLen:]
	}
	if len(rest) < 1 {
		return fmt.Errorf("%w: truncated ServerHello", ErrHandshake)
	}
	ticketPromised := rest[0] == 1
	rest = rest[1:]
	phaseStart := c.emitPhase("client", "hello", resumedFlag, hsStart)
	if resumedFlag {
		// A resumption is legitimate when it matches our offer: either
		// the session ID we sent (cache path, sid echoed) or the ticket
		// we sent (stateless path, no sid needed).
		sidMatch := cfg.Resume != nil && sidLen > 0 && c.sessionID == cfg.Resume.ID
		if cfg.Resume == nil || (!sidMatch && !offeredTicket) {
			return fmt.Errorf("%w: server resumed a session we did not offer", ErrHandshake)
		}
		// Abbreviated handshake: no KeyExchange; fresh keys derive
		// from the cached master secret plus the new nonces.
		c.resumed = true
		c.hs.premaster = append([]byte(nil), cfg.Resume.master...)
		if err := c.deriveKeys(true); err != nil {
			return err
		}
		if err := c.sendFinished("client finished"); err != nil {
			return err
		}
		if err := c.recvFinished("server finished"); err != nil {
			return err
		}
		if ticketPromised {
			if err := c.recvNewTicket(); err != nil {
				return err
			}
		} else if cfg.Resume != nil {
			// Keep resuming on the same ticket next time.
			c.ticket = append([]byte(nil), cfg.Resume.Ticket...)
		}
		c.emitPhase("client", "finished", true, phaseStart)
		return nil
	}

	var keyExchange []byte
	switch cfg.Profile {
	case ProfileUnix:
		pub, err := parsePublicKey(rest)
		if err != nil {
			return err
		}
		c.hs.premaster = c.rng.Bytes(premasterLen)
		ct, err := pub.EncryptPKCS1(c.rng, c.hs.premaster)
		if err != nil {
			return fmt.Errorf("%w: RSA encrypt: %v", ErrHandshake, err)
		}
		keyExchange = []byte{msgKeyExchange, byte(len(ct) >> 8), byte(len(ct))}
		keyExchange = append(keyExchange, ct...)
	case ProfileEmbedded:
		// RSA was dropped in the port; the premaster is the PSK.
		c.hs.premaster = append([]byte(nil), cfg.PSK...)
		keyExchange = []byte{msgKeyExchange}
	}
	if err := c.sendHandshake(keyExchange); err != nil {
		return fmt.Errorf("%w: sending KeyExchange: %v", ErrHandshake, err)
	}
	phaseStart = c.emitPhase("client", "key_exchange", false, phaseStart)

	if err := c.deriveKeys(true); err != nil {
		return err
	}
	// Client speaks first under the new keys.
	if err := c.sendFinished("client finished"); err != nil {
		return err
	}
	if err := c.recvFinished("server finished"); err != nil {
		return err
	}
	if ticketPromised {
		if err := c.recvNewTicket(); err != nil {
			return err
		}
	}
	c.emitPhase("client", "finished", false, phaseStart)
	return nil
}

// recvNewTicket reads the sealed NewSessionTicket message the
// ServerHello promised and stores the ticket for Session().
func (c *Conn) recvNewTicket() error {
	recType, body, err := c.readRecord()
	if err != nil {
		return fmt.Errorf("%w: reading NewSessionTicket: %v", ErrHandshake, err)
	}
	if recType != recHandshake {
		return fmt.Errorf("%w: expected NewSessionTicket, got record %#x", ErrHandshake, recType)
	}
	pt, err := c.openRecord(recHandshake, body)
	if err != nil {
		return fmt.Errorf("%w: opening NewSessionTicket: %v", ErrHandshake, err)
	}
	if len(pt) < 3 || pt[0] != msgNewTicket {
		return fmt.Errorf("%w: malformed NewSessionTicket", ErrHandshake)
	}
	n := int(pt[1])<<8 | int(pt[2])
	if n == 0 || n > MaxTicketLen || len(pt) != 3+n {
		return fmt.Errorf("%w: NewSessionTicket length %d", ErrHandshake, n)
	}
	c.ticket = append([]byte(nil), pt[3:3+n]...)
	return nil
}

// sendNewTicket mints a ticket over the connection's master secret and
// sends it sealed under the new keys (server side, after Finished).
func (c *Conn) sendNewTicket() error {
	tkt, err := c.cfg.TicketKeys.Seal(c.master)
	if err != nil {
		return fmt.Errorf("%w: sealing ticket: %v", ErrHandshake, err)
	}
	body := []byte{msgNewTicket, byte(len(tkt) >> 8), byte(len(tkt))}
	body = append(body, tkt...)
	sealed, err := c.sealRecord(recHandshake, body)
	if err != nil {
		return fmt.Errorf("%w: sealing NewSessionTicket: %v", ErrHandshake, err)
	}
	if err := c.writeRecord(recHandshake, sealed); err != nil {
		return fmt.Errorf("%w: sending NewSessionTicket: %v", ErrHandshake, err)
	}
	c.ticket = tkt
	c.metrics.ticketsIssued.Inc()
	return nil
}

// --- server ------------------------------------------------------------------

func (c *Conn) serverHandshake() error {
	cfg := &c.cfg
	hsStart := cfg.Trace.Now()
	ch, err := c.readHandshake(msgClientHello)
	if err != nil {
		return err
	}
	if len(ch) < 4+randomLen+1 {
		return fmt.Errorf("%w: short ClientHello", ErrHandshake)
	}
	if Profile(ch[1]) != cfg.Profile {
		return fmt.Errorf("%w: server %s vs client %s", ErrProfileMismatch, cfg.Profile, Profile(ch[1]))
	}
	wantKey, wantBlock := int(ch[2])*8, int(ch[3])*8
	if cfg.Profile == ProfileEmbedded && (wantKey != 128 || wantBlock != 128) {
		// The port's static buffers cannot hold other sizes.
		return fmt.Errorf("%w: embedded server supports only 128/128, client asked %d/%d",
			ErrHandshake, wantKey, wantBlock)
	}
	if !validBits(wantKey) || !validBits(wantBlock) {
		return fmt.Errorf("%w: client asked %d/%d", ErrHandshake, wantKey, wantBlock)
	}
	// The server accedes to the client's cipher geometry (the library
	// trusts both ends were configured alike; issl had no downgrade
	// negotiation to speak of).
	cfg.KeyBits, cfg.BlockBits = wantKey, wantBlock
	copy(c.hs.clientRandom[:], ch[4:4+randomLen])

	// What did the client offer? A session ID (per-instance cache path),
	// a sealed ticket (any-instance stateless path), both, or neither.
	var offered [SessionIDLen]byte
	offeredSession := false
	var offeredTicket []byte
	tail := ch[4+randomLen:]
	if len(tail) >= 1 {
		sidLen := int(tail[0])
		if sidLen == SessionIDLen && len(tail) >= 1+sidLen {
			copy(offered[:], tail[1:1+sidLen])
			offeredSession = true
		}
		if sidLen == 0 || offeredSession {
			tail = tail[1+sidLen:]
			// Ticket extension: optional, so older hellos still parse.
			if len(tail) >= 2 {
				if n := int(tail[0])<<8 | int(tail[1]); n > 0 && n <= MaxTicketLen && len(tail) >= 2+n {
					offeredTicket = tail[2 : 2+n]
				}
			}
		}
	}

	// Resumption preference: the ticket first — it resumes on any
	// instance, and a cluster client's cache entry usually lives on a
	// different node — then the local session cache. Any ticket
	// rejection (expired, retired key, tampered, future version)
	// degrades to the next path, never to a handshake failure.
	viaTicket := false
	var cachedMaster []byte
	if len(offeredTicket) > 0 && cfg.TicketKeys != nil {
		m, err := cfg.TicketKeys.Open(offeredTicket)
		if err == nil {
			cachedMaster, viaTicket = m, true
			c.metrics.ticketsResumed.Inc()
		} else {
			c.metrics.ticketsRejected.Inc()
			c.cfg.Trace.Emit("issl", "ticket.rejected", "err", err.Error())
			cfg.logf("issl: ticket rejected, degrading: %v", err)
		}
	}
	if cachedMaster == nil && offeredSession && cfg.Cache != nil {
		cachedMaster, _ = cfg.Cache.get(offered)
	}

	c.rng.Fill(c.hs.serverRandom[:])
	head := c.helloHead()
	hello := make([]byte, 0, len(head)+randomLen+3+SessionIDLen)
	hello = append(hello, head...)
	hello = append(hello, c.hs.serverRandom[:]...)
	promiseTicket := cfg.TicketKeys != nil
	if cachedMaster != nil {
		// Abbreviated handshake (Goldberg et al. session-key caching,
		// or its stateless ticket form).
		c.resumed = true
		hello = append(hello, 1)
		if viaTicket && !offeredSession {
			hello = append(hello, 0) // no session ID to echo
		} else {
			c.sessionID = offered
			hello = append(hello, SessionIDLen)
			hello = append(hello, offered[:]...)
		}
		if promiseTicket {
			hello = append(hello, 1)
		} else {
			hello = append(hello, 0)
		}
		if err := c.sendHandshake(hello); err != nil {
			return fmt.Errorf("%w: sending ServerHello: %v", ErrHandshake, err)
		}
		phaseStart := c.emitPhase("server", "hello", true, hsStart)
		c.hs.premaster = cachedMaster
		if err := c.deriveKeys(false); err != nil {
			return err
		}
		if err := c.recvFinished("client finished"); err != nil {
			return err
		}
		if err := c.sendFinished("server finished"); err != nil {
			return err
		}
		if promiseTicket {
			if err := c.sendNewTicket(); err != nil {
				return err
			}
		}
		c.emitPhase("server", "finished", true, phaseStart)
		return nil
	}
	hello = append(hello, 0)
	if cfg.Cache != nil {
		c.rng.Fill(c.sessionID[:])
		hello = append(hello, SessionIDLen)
		hello = append(hello, c.sessionID[:]...)
	} else {
		hello = append(hello, 0)
	}
	if promiseTicket {
		hello = append(hello, 1)
	} else {
		hello = append(hello, 0)
	}
	if cfg.Profile == ProfileUnix {
		hello = append(hello, c.helloPublicKey()...)
	}
	if err := c.sendHandshake(hello); err != nil {
		return fmt.Errorf("%w: sending ServerHello: %v", ErrHandshake, err)
	}
	phaseStart := c.emitPhase("server", "hello", false, hsStart)

	kx, err := c.readHandshake(msgKeyExchange)
	if err != nil {
		return err
	}
	switch cfg.Profile {
	case ProfileUnix:
		if len(kx) < 3 {
			return fmt.Errorf("%w: short KeyExchange", ErrHandshake)
		}
		n := int(kx[1])<<8 | int(kx[2])
		if len(kx) != 3+n {
			return fmt.Errorf("%w: KeyExchange length mismatch", ErrHandshake)
		}
		pm, err := cfg.SignPool.Decrypt(cfg.ServerKey, kx[3:])
		if err != nil {
			return fmt.Errorf("%w: RSA decrypt: %v", ErrHandshake, err)
		}
		if len(pm) != premasterLen {
			return fmt.Errorf("%w: premaster length %d", ErrHandshake, len(pm))
		}
		c.hs.premaster = pm
	case ProfileEmbedded:
		c.hs.premaster = append([]byte(nil), cfg.PSK...)
	}
	phaseStart = c.emitPhase("server", "key_exchange", false, phaseStart)

	if err := c.deriveKeys(false); err != nil {
		return err
	}
	if cfg.Cache != nil {
		cfg.Cache.put(c.sessionID, c.master)
	}
	if err := c.recvFinished("client finished"); err != nil {
		return err
	}
	if err := c.sendFinished("server finished"); err != nil {
		return err
	}
	if promiseTicket {
		if err := c.sendNewTicket(); err != nil {
			return err
		}
	}
	c.emitPhase("server", "finished", false, phaseStart)
	return nil
}

// --- key schedule ---------------------------------------------------------------

// deriveKeys computes the master secret and installs directional
// cipher/MAC state. isClient orients write vs read keys.
func (c *Conn) deriveKeys(isClient bool) error {
	seed := make([]byte, 0, len("master")+2*randomLen)
	seed = append(seed, "master"...)
	seed = append(seed, c.hs.clientRandom[:]...)
	seed = append(seed, c.hs.serverRandom[:]...)
	master := sha1.HMAC(c.hs.premaster, seed)
	c.master = master[:]

	keyBytes := c.cfg.KeyBits / 8
	cKey := expand(c.master, "c key", keyBytes)
	sKey := expand(c.master, "s key", keyBytes)
	cMAC := expand(c.master, "c mac", sha1.Size)
	sMAC := expand(c.master, "s mac", sha1.Size)

	cCipher, err := cipherFor(cKey, c.cfg.BlockBits)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	sCipher, err := cipherFor(sKey, c.cfg.BlockBits)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	if isClient {
		c.wCipher, c.wMAC = cCipher, cMAC
		c.rCipher, c.rMAC = sCipher, sMAC
	} else {
		c.wCipher, c.wMAC = sCipher, sMAC
		c.rCipher, c.rMAC = cCipher, cMAC
	}
	// Fresh keys invalidate the cached streaming MAC states.
	c.wHMAC, c.rHMAC = nil, nil
	return nil
}

// expand derives n bytes of key material from the master secret.
func expand(master []byte, label string, n int) []byte {
	out := make([]byte, 0, n)
	counter := byte(0)
	for len(out) < n {
		block := sha1.HMAC(master, append([]byte(label), counter))
		out = append(out, block[:]...)
		counter++
	}
	return out[:n]
}

// --- finished -------------------------------------------------------------------

func (c *Conn) verifyData(label string) []byte {
	digest := sha1.Sum1(c.hs.transcript.Bytes())
	v := sha1.HMAC(c.master, append([]byte(label), digest[:]...))
	return v[:]
}

func (c *Conn) sendFinished(label string) error {
	body := append([]byte{msgFinished}, c.verifyData(label)...)
	sealed, err := c.sealRecord(recHandshake, body)
	if err != nil {
		return fmt.Errorf("%w: sealing Finished: %v", ErrHandshake, err)
	}
	if err := c.writeRecord(recHandshake, sealed); err != nil {
		return fmt.Errorf("%w: sending Finished: %v", ErrHandshake, err)
	}
	c.hs.transcript.Write(body)
	return nil
}

func (c *Conn) recvFinished(label string) error {
	recType, body, err := c.readRecord()
	if err != nil {
		return fmt.Errorf("%w: reading Finished: %v", ErrHandshake, err)
	}
	if recType != recHandshake {
		return fmt.Errorf("%w: expected Finished, got record %#x", ErrHandshake, recType)
	}
	pt, err := c.openRecord(recHandshake, body)
	if err != nil {
		return fmt.Errorf("%w: opening Finished: %v", ErrHandshake, err)
	}
	if len(pt) != 1+sha1.Size || pt[0] != msgFinished {
		return fmt.Errorf("%w: malformed Finished", ErrHandshake)
	}
	want := c.verifyData(label)
	if !constEq(pt[1:], want) {
		return fmt.Errorf("%w: Finished verify mismatch", ErrHandshake)
	}
	c.hs.transcript.Write(pt)
	return nil
}

// --- RSA key wire format ----------------------------------------------------------

func marshalPublicKey(pub *rsa.PublicKey) []byte {
	e := pub.E.Bytes()
	n := pub.N.Bytes()
	out := make([]byte, 0, 4+len(e)+len(n))
	out = append(out, byte(len(e)>>8), byte(len(e)))
	out = append(out, e...)
	out = append(out, byte(len(n)>>8), byte(len(n)))
	out = append(out, n...)
	return out
}

func parsePublicKey(b []byte) (*rsa.PublicKey, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("%w: missing server key", ErrHandshake)
	}
	eLen := int(b[0])<<8 | int(b[1])
	if len(b) < 2+eLen+2 {
		return nil, fmt.Errorf("%w: truncated server key", ErrHandshake)
	}
	e := b[2 : 2+eLen]
	rest := b[2+eLen:]
	nLen := int(rest[0])<<8 | int(rest[1])
	if len(rest) < 2+nLen {
		return nil, fmt.Errorf("%w: truncated server modulus", ErrHandshake)
	}
	n := rest[2 : 2+nLen]
	return &rsa.PublicKey{
		N: bignum.FromBytes(n),
		E: bignum.FromBytes(e),
	}, nil
}
