package issl

// ServerHelloPrefix is the immutable head of every ServerHello a
// server config can produce, built once per server instead of once per
// connection: the 4-byte message header (type, profile, keyBits/8,
// blockBits/8) and — for the Unix profile — the marshaled RSA public
// key that closes a full-handshake hello. Only the per-connection
// material (serverRandom, resumption fields, ticket promise) is
// appended at handshake time.
//
// The server accedes to the client's cipher geometry, so the cache
// only applies when the negotiated geometry matches the one the prefix
// was built for; a client asking for a different key/block size falls
// back to the build-per-connection path, byte-identically.
type ServerHelloPrefix struct {
	profile   Profile
	keyBits   int
	blockBits int
	head      []byte // msgServerHello, profile, keyBits/8, blockBits/8
	pubKey    []byte // marshaled server public key (Unix profile), nil otherwise
}

// NewServerHelloPrefix builds the cached prefix for cfg. The config
// must already be validated (defaults applied); passing a server
// Config before BindServer normalizes it is fine because validate is
// re-run per connection and the geometry check below keeps the cache
// honest.
func NewServerHelloPrefix(cfg *Config) *ServerHelloPrefix {
	keyBits, blockBits := cfg.KeyBits, cfg.BlockBits
	if keyBits == 0 {
		keyBits = 128
	}
	if blockBits == 0 {
		blockBits = 128
	}
	p := &ServerHelloPrefix{
		profile:   cfg.Profile,
		keyBits:   keyBits,
		blockBits: blockBits,
		head: []byte{msgServerHello, byte(cfg.Profile),
			bitsByte(keyBits), bitsByte(blockBits)},
	}
	if cfg.Profile == ProfileUnix && cfg.ServerKey != nil {
		p.pubKey = marshalPublicKey(&cfg.ServerKey.PublicKey)
	}
	return p
}

// matches reports whether the cached prefix applies to the geometry
// this connection actually negotiated.
func (p *ServerHelloPrefix) matches(profile Profile, keyBits, blockBits int) bool {
	return p != nil && p.profile == profile &&
		p.keyBits == keyBits && p.blockBits == blockBits
}

// helloHead returns the 4-byte ServerHello header, from the cache when
// it matches the negotiated geometry.
func (c *Conn) helloHead() []byte {
	cfg := &c.cfg
	if hp := cfg.HelloPrefix; hp.matches(cfg.Profile, cfg.KeyBits, cfg.BlockBits) {
		return hp.head
	}
	return []byte{msgServerHello, byte(cfg.Profile), bitsByte(cfg.KeyBits), bitsByte(cfg.BlockBits)}
}

// helloPublicKey returns the marshaled server public key for a full
// Unix-profile ServerHello, cached when possible. Marshaling the key
// is the expensive tail of the hello (two bignum Bytes() walks plus a
// copy of the whole modulus); on a reconnect stampede it used to run
// once per arriving client for an identical result.
func (c *Conn) helloPublicKey() []byte {
	cfg := &c.cfg
	if hp := cfg.HelloPrefix; hp.matches(cfg.Profile, cfg.KeyBits, cfg.BlockBits) && hp.pubKey != nil {
		return hp.pubKey
	}
	return marshalPublicKey(&cfg.ServerKey.PublicKey)
}
