package issl

import (
	"bytes"
	"net"
	"testing"

	"repro/internal/crypto/prng"
)

// runHandshake completes one Unix-profile handshake with the given
// server config mutator and returns the server's ServerHello body as
// captured from the transcript via a recording client.
func handshakeWith(t *testing.T, srvCfg Config, keyBits, blockBits int) {
	t.Helper()
	ct, st := net.Pipe()
	defer ct.Close()
	defer st.Close()
	done := make(chan error, 1)
	go func() {
		conn, err := BindServer(st, srvCfg)
		done <- err
		if err == nil {
			buf := make([]byte, 64)
			if n, rerr := conn.Read(buf); rerr == nil {
				conn.Write(buf[:n])
			}
		}
	}()
	cli := Config{Profile: ProfileUnix, KeyBits: keyBits, BlockBits: blockBits,
		Rand: prng.NewXorshift(404)}
	conn, err := BindClient(ct, cli)
	if err != nil {
		t.Fatalf("client handshake (key=%d block=%d): %v", keyBits, blockBits, err)
	}
	if err := <-done; err != nil {
		t.Fatalf("server handshake: %v", err)
	}
	msg := []byte("prefix check")
	conn.Write(msg)
	buf := make([]byte, 64)
	n, err := conn.Read(buf)
	if err != nil || !bytes.Equal(buf[:n], msg) {
		t.Fatalf("echo: %q %v", buf[:n], err)
	}
}

// TestServerHelloPrefixCached: a server with the cached prefix
// completes handshakes at the config's own geometry AND at a different
// client-negotiated geometry (where the cache must stand aside), and
// the cached bytes match what the inline path builds.
func TestServerHelloPrefixCached(t *testing.T) {
	key := serverKey(t)
	base := Config{Profile: ProfileUnix, ServerKey: key}
	hp := NewServerHelloPrefix(&base)

	wantHead := []byte{msgServerHello, byte(ProfileUnix), bitsByte(128), bitsByte(128)}
	if !bytes.Equal(hp.head, wantHead) {
		t.Fatalf("cached head = %x, want %x", hp.head, wantHead)
	}
	if !bytes.Equal(hp.pubKey, marshalPublicKey(&key.PublicKey)) {
		t.Fatal("cached public key differs from inline marshal")
	}
	if !hp.matches(ProfileUnix, 128, 128) {
		t.Error("prefix does not match its own geometry")
	}
	if hp.matches(ProfileUnix, 256, 128) || hp.matches(ProfileEmbedded, 128, 128) {
		t.Error("prefix matches foreign geometry")
	}

	// Geometry match: cache used.
	srv := base
	srv.HelloPrefix, srv.Rand = hp, prng.NewXorshift(505)
	handshakeWith(t, srv, 128, 128)

	// Client negotiates 256/256: the server accedes, the cache stands
	// aside, and the handshake still completes.
	srv = base
	srv.HelloPrefix, srv.Rand = hp, prng.NewXorshift(506)
	handshakeWith(t, srv, 256, 256)
}
