// Package issl reproduces the paper's subject: a public-domain
// SSL/TLS-style library that "layers on top of the Unix sockets layer
// to provide secure point-to-point communications. After a normal
// unencrypted socket is created, the issl API allows a user to bind to
// the socket and then do secure read/writes on it" (§2).
//
// Two profiles capture the before/after of the port:
//
//   - ProfileUnix — the original library: RSA session-key exchange
//     (over the from-scratch bignum package), every Rijndael key and
//     block size (128/192/256 on both axes), dynamic buffers, logging
//     to any destination.
//   - ProfileEmbedded — the RMC2000 port: RSA dropped ("a
//     difficult-to-port bignum package"), key exchange replaced by a
//     pre-shared key, AES fixed at 128-bit key and block (the static
//     allocation consequence of xalloc having no free), bounded record
//     size, circular-buffer logging.
//
// The wire protocol is a compact SSL-like layered design: a record
// layer (CBC encryption + truncated HMAC-SHA1, per-direction sequence
// numbers, encrypt-then-MAC) under a four-message handshake
// (ClientHello, ServerHello, KeyExchange, Finished) with a transcript
// digest binding.
package issl

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/crypto/aes"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/rsa"
	"repro/internal/telemetry"
)

// Profile selects the library configuration.
type Profile int

// Profiles.
const (
	// ProfileUnix is the full library as found on the workstation.
	ProfileUnix Profile = iota
	// ProfileEmbedded is the RMC2000 port's reduced feature set.
	ProfileEmbedded
)

func (p Profile) String() string {
	if p == ProfileEmbedded {
		return "embedded"
	}
	return "unix"
}

// Limits that differ between profiles.
const (
	// MaxRecordUnix is the plaintext byte limit per record on Unix.
	MaxRecordUnix = 16384
	// MaxRecordEmbedded reflects the port's statically allocated
	// record buffers.
	MaxRecordEmbedded = 1024
)

// Logger is the minimal logging interface; the Unix profile points it
// at anything, the embedded profile at an embedded.CircularLog.
type Logger interface {
	Printf(format string, args ...any)
}

// Config parameterizes a handshake endpoint.
type Config struct {
	// Profile selects Unix or Embedded behavior.
	Profile Profile
	// KeyBits and BlockBits choose the Rijndael configuration
	// (128/192/256). The embedded profile forces both to 128 — the
	// port "dropped support of multiple key and block sizes".
	KeyBits   int
	BlockBits int
	// ServerKey is the server's RSA private key (Unix profile server).
	ServerKey *rsa.PrivateKey
	// PSK is the pre-shared master secret (Embedded profile, both ends).
	PSK []byte
	// Rand supplies all nonces, IVs and the premaster secret. Required.
	Rand *prng.Xorshift
	// Log receives handshake and record-layer events. Optional.
	Log Logger
	// Resume offers a cached session for an abbreviated handshake
	// (client side). The server may decline, falling back to full.
	Resume *Session
	// Cache enables session issuance and resumption (server side).
	Cache *SessionCache
	// TicketKeys enables sealed session tickets (server side): every
	// successful handshake issues a ticket sealed under the cluster-
	// shared key, and a client-offered ticket is preferred over the
	// Cache for resumption — it works on any instance holding the key,
	// which is what makes a multi-redirector fleet resume statelessly
	// (see ticket.go). Optional; nil disables tickets.
	TicketKeys *TicketKeyStore
	// SignPool, when non-nil, runs the server's RSA private-key
	// operations (KeyExchange decrypt) on a shared bounded worker pool
	// instead of inline, so N simultaneous full handshakes queue for a
	// fixed set of crypto workers rather than each grinding its own
	// exponentiation. Shared across every connection of a server; see
	// signpool.go. Optional; nil runs key ops inline.
	SignPool *SignPool
	// HelloPrefix, when non-nil, supplies the precomputed immutable
	// ServerHello prefix (header bytes + marshaled public key) built
	// once per server config; see helloprefix.go. Optional.
	HelloPrefix *ServerHelloPrefix
	// HandshakeTimeout bounds the whole handshake when > 0: a peer that
	// stalls mid-handshake (a half-open connection on a degraded wire)
	// fails with ErrHandshakeTimeout instead of wedging the endpoint
	// forever. Honored when the transport supports read deadlines
	// (tcpip.TCB and net.Conn both do).
	HandshakeTimeout time.Duration
	// Metrics receives the connection's counters (handshakes full vs
	// resumed, alerts sent/received, records and plaintext bytes both
	// directions). Optional; nil disables.
	Metrics *telemetry.Registry
	// Trace receives handshake-phase and alert events ("issl" layer).
	// Optional; nil disables.
	Trace *telemetry.Trace
}

// Errors returned by handshake and record processing.
var (
	ErrConfig           = errors.New("issl: invalid configuration")
	ErrHandshake        = errors.New("issl: handshake failure")
	ErrHandshakeTimeout = errors.New("issl: handshake deadline exceeded")
	ErrBadRecord        = errors.New("issl: malformed record")
	ErrBadMAC           = errors.New("issl: record authentication failed")
	ErrRecordTooBig     = errors.New("issl: record exceeds profile limit")
	ErrProfileMismatch  = errors.New("issl: peers negotiated different profiles")
	ErrClosed           = errors.New("issl: connection closed")
)

func (c *Config) validate(server bool) error {
	if c.Rand == nil {
		return fmt.Errorf("%w: nil Rand", ErrConfig)
	}
	switch c.Profile {
	case ProfileUnix:
		if c.KeyBits == 0 {
			c.KeyBits = 128
		}
		if c.BlockBits == 0 {
			c.BlockBits = 128
		}
		if !validBits(c.KeyBits) || !validBits(c.BlockBits) {
			return fmt.Errorf("%w: key %d / block %d bits", ErrConfig, c.KeyBits, c.BlockBits)
		}
		if server && c.ServerKey == nil {
			return fmt.Errorf("%w: Unix server requires ServerKey", ErrConfig)
		}
	case ProfileEmbedded:
		// The port supports exactly one configuration.
		if c.KeyBits != 0 && c.KeyBits != 128 {
			return fmt.Errorf("%w: embedded profile is AES-128 only (got %d-bit key)", ErrConfig, c.KeyBits)
		}
		if c.BlockBits != 0 && c.BlockBits != 128 {
			return fmt.Errorf("%w: embedded profile is 128-bit blocks only (got %d)", ErrConfig, c.BlockBits)
		}
		c.KeyBits, c.BlockBits = 128, 128
		if len(c.PSK) == 0 {
			return fmt.Errorf("%w: embedded profile requires PSK (RSA was dropped in the port)", ErrConfig)
		}
	default:
		return fmt.Errorf("%w: unknown profile %d", ErrConfig, c.Profile)
	}
	return nil
}

func validBits(b int) bool { return b == 128 || b == 192 || b == 256 }

func (c *Config) maxRecord() int {
	if c.Profile == ProfileEmbedded {
		return MaxRecordEmbedded
	}
	return MaxRecordUnix
}

func (c *Config) logf(format string, args ...any) {
	if c.Log != nil {
		c.Log.Printf(format, args...)
	}
}

// BindServer performs the server side of the handshake over transport
// and returns the secure connection. The name mirrors the issl usage
// the paper describes: create a plain socket, then bind the library to
// it.
func BindServer(transport io.ReadWriter, cfg Config) (*Conn, error) {
	return bind(transport, cfg, true)
}

// BindClient performs the client side of the handshake.
func BindClient(transport io.ReadWriter, cfg Config) (*Conn, error) {
	return bind(transport, cfg, false)
}

func bind(transport io.ReadWriter, cfg Config, server bool) (*Conn, error) {
	if err := cfg.validate(server); err != nil {
		return nil, err
	}
	conn := newConn(transport, cfg)
	var deadline time.Time
	if cfg.HandshakeTimeout > 0 {
		deadline = time.Now().Add(cfg.HandshakeTimeout)
		conn.readDeadline = deadline
	}
	role, hs := "client", conn.clientHandshake
	if server {
		role, hs = "server", conn.serverHandshake
	}
	if err := hs(); err != nil {
		if !deadline.IsZero() && time.Now().After(deadline) {
			err = fmt.Errorf("%w (%v): %w", ErrHandshakeTimeout, cfg.HandshakeTimeout, err)
		}
		conn.metrics.handshakesFailed.Inc()
		cfg.logf("issl: %s handshake failed: %v", role, err)
		return nil, err
	}
	if conn.resumed {
		conn.metrics.handshakesResumed.Inc()
	} else {
		conn.metrics.handshakesFull.Inc()
	}
	conn.readDeadline = time.Time{}
	cfg.logf("issl: %s handshake complete (profile=%s key=%d block=%d resumed=%v)",
		role, cfg.Profile, cfg.KeyBits, cfg.BlockBits, conn.resumed)
	return conn, nil
}

// cipherFor builds the negotiated Rijndael instance.
func cipherFor(key []byte, blockBits int) (*aes.Cipher, error) {
	return aes.New(key, blockBits/8)
}
