package issl

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/crypto/prng"
	"repro/internal/crypto/rsa"
	"repro/internal/netsim"
	"repro/internal/tcpip"
)

// testServerKey is generated once; RSA keygen dominates test time otherwise.
var (
	testServerKeyOnce sync.Once
	testServerKey     *rsa.PrivateKey
)

func serverKey(t testing.TB) *rsa.PrivateKey {
	testServerKeyOnce.Do(func() {
		k, err := rsa.GenerateKey(prng.NewXorshift(0x5eed), 512)
		if err != nil {
			t.Fatalf("keygen: %v", err)
		}
		testServerKey = k
	})
	return testServerKey
}

// pipePair builds a synchronous in-memory transport. The returned
// net.Conns can be Closed to unblock a peer waiting on a reply that
// will never come (failed-handshake tests need this).
func pipePair() (net.Conn, net.Conn) {
	return net.Pipe()
}

// handshakePair runs both handshakes concurrently and returns the conns.
func handshakePair(t *testing.T, cliCfg, srvCfg Config) (*Conn, *Conn) {
	t.Helper()
	ct, st := pipePair()
	type res struct {
		c   *Conn
		err error
	}
	srvCh := make(chan res, 1)
	go func() {
		c, err := BindServer(st, srvCfg)
		srvCh <- res{c, err}
	}()
	cli, cliErr := BindClient(ct, cliCfg)
	srv := <-srvCh
	if cliErr != nil {
		t.Fatalf("client handshake: %v", cliErr)
	}
	if srv.err != nil {
		t.Fatalf("server handshake: %v", srv.err)
	}
	return cli, srv.c
}

func unixConfigs(t *testing.T, keyBits, blockBits int) (Config, Config) {
	key := serverKey(t)
	cli := Config{Profile: ProfileUnix, KeyBits: keyBits, BlockBits: blockBits,
		Rand: prng.NewXorshift(11)}
	srv := Config{Profile: ProfileUnix, ServerKey: key, Rand: prng.NewXorshift(22)}
	return cli, srv
}

func embeddedConfigs() (Config, Config) {
	psk := []byte("rmc2000-preshared-master-secret!")
	cli := Config{Profile: ProfileEmbedded, PSK: psk, Rand: prng.NewXorshift(33)}
	srv := Config{Profile: ProfileEmbedded, PSK: psk, Rand: prng.NewXorshift(44)}
	return cli, srv
}

func TestUnixHandshakeAndEcho(t *testing.T) {
	cliCfg, srvCfg := unixConfigs(t, 128, 128)
	cli, srv := handshakePair(t, cliCfg, srvCfg)
	msg := []byte("secure hello across the redirector")
	go func() {
		buf := make([]byte, 256)
		n, err := srv.Read(buf)
		if err != nil {
			return
		}
		srv.Write(buf[:n])
	}()
	if _, err := cli.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	n, err := cli.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:n], msg) {
		t.Errorf("echo = %q", buf[:n])
	}
}

func TestAllUnixCipherGeometries(t *testing.T) {
	for _, kb := range []int{128, 192, 256} {
		for _, bb := range []int{128, 192, 256} {
			cliCfg, srvCfg := unixConfigs(t, kb, bb)
			cli, srv := handshakePair(t, cliCfg, srvCfg)
			gotK, gotB := cli.CipherInfo()
			if gotK != kb || gotB != bb {
				t.Errorf("negotiated %d/%d, want %d/%d", gotK, gotB, kb, bb)
			}
			msg := []byte("geometry test")
			go srv.Write(msg)
			buf := make([]byte, 64)
			n, err := cli.Read(buf)
			if err != nil || !bytes.Equal(buf[:n], msg) {
				t.Errorf("%d/%d: read %q err %v", kb, bb, buf[:n], err)
			}
		}
	}
}

func TestEmbeddedHandshakeAndTransfer(t *testing.T) {
	cliCfg, srvCfg := embeddedConfigs()
	cli, srv := handshakePair(t, cliCfg, srvCfg)
	if kb, bb := srv.CipherInfo(); kb != 128 || bb != 128 {
		t.Errorf("embedded negotiated %d/%d", kb, bb)
	}
	// Transfer larger than one embedded record to exercise fragmentation.
	want := bytes.Repeat([]byte("0123456789abcdef"), 300) // 4800 bytes
	go func() {
		cli.Write(want)
		cli.Close()
	}()
	var got bytes.Buffer
	buf := make([]byte, 2048)
	for {
		n, err := srv.Read(buf)
		got.Write(buf[:n])
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("got %d bytes, want %d", got.Len(), len(want))
	}
	_, _, recIn, _ := srv.Stats()
	if recIn < 4 {
		t.Errorf("embedded transfer used %d records; expected fragmentation to >=5", recIn)
	}
}

func TestEmbeddedRejectsBigCipher(t *testing.T) {
	cfg := Config{Profile: ProfileEmbedded, KeyBits: 256, PSK: []byte("k"), Rand: prng.NewXorshift(1)}
	if err := cfg.validate(false); err == nil {
		t.Error("embedded profile accepted 256-bit key")
	}
	cfg2 := Config{Profile: ProfileEmbedded, Rand: prng.NewXorshift(1)}
	if err := cfg2.validate(false); err == nil {
		t.Error("embedded profile accepted missing PSK")
	}
}

func TestUnixServerRequiresKey(t *testing.T) {
	cfg := Config{Profile: ProfileUnix, Rand: prng.NewXorshift(1)}
	if err := cfg.validate(true); err == nil {
		t.Error("unix server without RSA key accepted")
	}
	if err := cfg.validate(false); err != nil {
		t.Errorf("unix client without key rejected: %v", err)
	}
}

func TestNilRandRejected(t *testing.T) {
	cfg := Config{Profile: ProfileUnix}
	if err := cfg.validate(false); err == nil {
		t.Error("nil Rand accepted")
	}
}

func TestWrongPSKFailsHandshake(t *testing.T) {
	cliCfg := Config{Profile: ProfileEmbedded, PSK: []byte("alpha"), Rand: prng.NewXorshift(1)}
	srvCfg := Config{Profile: ProfileEmbedded, PSK: []byte("bravo"), Rand: prng.NewXorshift(2)}
	ct, st := pipePair()
	srvErr := make(chan error, 1)
	go func() {
		_, err := BindServer(st, srvCfg)
		st.Close() // unblock a client waiting for a reply we won't send
		srvErr <- err
	}()
	_, cliErr := BindClient(ct, cliCfg)
	if err := <-srvErr; err == nil {
		t.Error("server completed handshake with mismatched PSK")
	}
	if cliErr == nil {
		t.Error("client completed handshake with mismatched PSK")
	}
}

func TestProfileMismatchDetected(t *testing.T) {
	key := serverKey(t)
	cliCfg := Config{Profile: ProfileEmbedded, PSK: []byte("k"), Rand: prng.NewXorshift(1)}
	srvCfg := Config{Profile: ProfileUnix, ServerKey: key, Rand: prng.NewXorshift(2)}
	ct, st := pipePair()
	srvErr := make(chan error, 1)
	go func() {
		_, err := BindServer(st, srvCfg)
		st.Close()
		srvErr <- err
	}()
	_, cliErr := BindClient(ct, cliCfg)
	if err := <-srvErr; !errors.Is(err, ErrProfileMismatch) {
		t.Errorf("server error = %v, want profile mismatch", err)
	}
	if cliErr == nil {
		t.Error("client completed a mismatched handshake")
	}
}

// tamperPipe flips a bit in the nth record flowing a->b.
type tamperPipe struct {
	io.ReadWriter
	tamperAt  int
	count     int
	byteIndex int
}

func (tp *tamperPipe) Write(p []byte) (int, error) {
	tp.count++
	if tp.count == tp.tamperAt {
		q := append([]byte(nil), p...)
		idx := tp.byteIndex
		if idx >= len(q) {
			idx = len(q) - 1
		}
		q[idx] ^= 0x80
		return tp.ReadWriter.Write(q)
	}
	return tp.ReadWriter.Write(p)
}

func TestTamperedDataRecordRejected(t *testing.T) {
	cliCfg, srvCfg := embeddedConfigs()
	cli, srv := handshakePair(t, cliCfg, srvCfg)
	// Manually corrupt a sealed record: build it, flip a byte, feed it.
	sealed, err := cli.sealRecord(recData, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	sealed[len(sealed)/2] ^= 0x01
	go cli.writeRecord(recData, sealed)
	buf := make([]byte, 64)
	if _, err := srv.Read(buf); !errors.Is(err, ErrBadMAC) {
		t.Errorf("tampered record error = %v, want ErrBadMAC", err)
	}
}

func TestReplayedRecordRejected(t *testing.T) {
	cliCfg, srvCfg := embeddedConfigs()
	cli, srv := handshakePair(t, cliCfg, srvCfg)
	sealed, err := cli.sealRecord(recData, []byte("pay me once"))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		cli.writeRecord(recData, sealed)
		cli.writeRecord(recData, sealed) // replay
	}()
	buf := make([]byte, 64)
	if _, err := srv.Read(buf); err != nil {
		t.Fatalf("first delivery: %v", err)
	}
	if _, err := srv.Read(buf); !errors.Is(err, ErrBadMAC) {
		t.Errorf("replay error = %v, want ErrBadMAC (sequence-bound MAC)", err)
	}
}

func TestCloseNotify(t *testing.T) {
	cliCfg, srvCfg := embeddedConfigs()
	cli, srv := handshakePair(t, cliCfg, srvCfg)
	closeErr := make(chan error, 1)
	go func() { closeErr <- cli.Close() }() // pipe is synchronous; reader below
	buf := make([]byte, 8)
	if _, err := srv.Read(buf); err != io.EOF {
		t.Errorf("read after close_notify = %v, want EOF", err)
	}
	if err := <-closeErr; err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := cli.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("write after close = %v, want ErrClosed", err)
	}
	if err := cli.Close(); err != nil {
		t.Errorf("double close = %v", err)
	}
}

func TestStatsCount(t *testing.T) {
	cliCfg, srvCfg := embeddedConfigs()
	cli, srv := handshakePair(t, cliCfg, srvCfg)
	wrote := make(chan struct{})
	go func() {
		cli.Write(make([]byte, 2500)) // 3 embedded records
		close(wrote)
	}()
	total := 0
	buf := make([]byte, 4096)
	for total < 2500 {
		n, err := srv.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	in, _, recIn, _ := srv.Stats()
	if in != 2500 {
		t.Errorf("bytesIn = %d", in)
	}
	if recIn != 3 {
		t.Errorf("recordsIn = %d, want 3", recIn)
	}
	<-wrote
	_, out, _, recOut := cli.Stats()
	if out != 2500 || recOut != 3 {
		t.Errorf("client out = %d bytes / %d records", out, recOut)
	}
}

// TestOverSimulatedTCP runs the full stack: issl over the tcpip TCB
// transport over the netsim wire — the configuration every experiment
// uses.
func TestOverSimulatedTCP(t *testing.T) {
	hub := netsim.NewHub()
	defer hub.Close()
	s1, err := tcpip.NewStack(hub, tcpip.IP4(10, 0, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2, err := tcpip.NewStack(hub, tcpip.IP4(10, 0, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	l, err := s2.Listen(443, 1)
	if err != nil {
		t.Fatal(err)
	}
	cliCfg, srvCfg := embeddedConfigs()
	result := make(chan error, 1)
	go func() {
		tcb, err := l.Accept(5 * time.Second)
		if err != nil {
			result <- err
			return
		}
		conn, err := BindServer(tcb, srvCfg)
		if err != nil {
			result <- err
			return
		}
		buf := make([]byte, 256)
		n, err := conn.Read(buf)
		if err != nil {
			result <- err
			return
		}
		_, err = conn.Write(bytes.ToUpper(buf[:n]))
		result <- err
	}()
	tcb, err := s1.Connect(s2.Addr(), 443, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := BindClient(tcb, cliCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("over the wire")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "OVER THE WIRE" {
		t.Errorf("got %q", buf[:n])
	}
	if err := <-result; err != nil {
		t.Fatalf("server: %v", err)
	}
}

func TestRecordLayerConstEq(t *testing.T) {
	if !constEq([]byte{1, 2, 3}, []byte{1, 2, 3}) {
		t.Error("equal slices reported unequal")
	}
	if constEq([]byte{1, 2, 3}, []byte{1, 2, 4}) {
		t.Error("unequal slices reported equal")
	}
	if constEq([]byte{1, 2}, []byte{1, 2, 3}) {
		t.Error("different lengths reported equal")
	}
}

func TestExpandDeterministicAndSized(t *testing.T) {
	m := []byte("master secret")
	a := expand(m, "label", 16)
	b := expand(m, "label", 16)
	if !bytes.Equal(a, b) {
		t.Error("expand not deterministic")
	}
	if len(expand(m, "label", 33)) != 33 {
		t.Error("expand wrong length")
	}
	if bytes.Equal(expand(m, "l1", 16), expand(m, "l2", 16)) {
		t.Error("different labels gave same key material")
	}
}

// Property: arbitrary write sizes and read chunkings deliver the exact
// byte stream (record fragmentation is invisible to the application).
func TestQuickStreamIntegrity(t *testing.T) {
	f := func(chunks [][]byte, readSize uint8) bool {
		var payload []byte
		for _, c := range chunks {
			if len(c) > 3000 {
				c = c[:3000]
			}
			payload = append(payload, c...)
		}
		if len(payload) == 0 {
			return true
		}
		rs := int(readSize)%512 + 1
		cliCfg, srvCfg := embeddedConfigs()
		cli, srv := handshakePair(t, cliCfg, srvCfg)
		go func() {
			for _, c := range chunks {
				if len(c) > 3000 {
					c = c[:3000]
				}
				if len(c) == 0 {
					continue
				}
				if _, err := cli.Write(c); err != nil {
					return
				}
			}
			cli.Close()
		}()
		var got []byte
		buf := make([]byte, rs)
		for {
			n, err := srv.Read(buf)
			got = append(got, buf[:n]...)
			if err != nil {
				break
			}
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: ciphertext never contains the plaintext for compressible
// inputs (sanity check that encryption is actually applied on the wire).
func TestWireNeverLeaksPlaintext(t *testing.T) {
	cliCfg, srvCfg := embeddedConfigs()
	ct, st := pipePair()
	type res struct {
		c   *Conn
		err error
	}
	srvCh := make(chan res, 1)
	go func() {
		c, err := BindServer(&captureRW{ReadWriter: st}, srvCfg)
		srvCh <- res{c, err}
	}()
	capture := &captureRW{ReadWriter: ct}
	cli, err := BindClient(capture, cliCfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := <-srvCh
	if srv.err != nil {
		t.Fatal(srv.err)
	}
	secret := []byte("TOP-SECRET-PAYLOAD-0123456789-TOP-SECRET")
	go cli.Write(secret)
	buf := make([]byte, 256)
	if _, err := srv.c.Read(buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(capture.sent, secret) {
		t.Error("plaintext appeared on the wire")
	}
}

// captureRW records everything written through it.
type captureRW struct {
	io.ReadWriter
	sent []byte
}

func (c *captureRW) Write(p []byte) (int, error) {
	c.sent = append(c.sent, p...)
	return c.ReadWriter.Write(p)
}
