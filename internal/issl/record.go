package issl

import (
	"fmt"
	"io"
	"time"

	"repro/internal/crypto/sha1"
)

// Record layer. Every byte on the wire after the TCP stream starts is
// a record:
//
//	type(1) version(1) length(2) body(length)
//
// Handshake records travel in the clear (like SSL's initial null
// cipher); once Finished messages are exchanged, data records carry
//
//	iv(blockSize) ciphertext(...) mac(12)
//
// where mac = HMAC-SHA1(macKey, seq64 || type || iv || ct)[:12],
// encrypt-then-MAC, with an independent sequence counter and key pair
// per direction.

// Record types.
const (
	recHandshake = 0x16 // borrowed from TLS for familiarity
	recData      = 0x17
	recClose     = 0x15
)

// protocolVersion identifies this wire format.
const protocolVersion = 0x31 // "issl 1"

const macLen = 12

// writeRecord frames and transmits one record body.
func (c *Conn) writeRecord(recType byte, body []byte) error {
	if len(body) > 0xffff {
		return fmt.Errorf("%w: %d bytes", ErrRecordTooBig, len(body))
	}
	hdr := []byte{recType, protocolVersion, byte(len(body) >> 8), byte(len(body))}
	if _, err := c.tr.Write(append(hdr, body...)); err != nil {
		return err
	}
	return nil
}

// Deadline plumbing. The record layer is transport-agnostic; deadlines
// are honored when the transport offers either the tcpip.TCB-style
// per-call API or the net.Conn-style set-once API, and silently
// best-effort otherwise.
type deadlineReader interface {
	ReadDeadline(buf []byte, deadline time.Time) (int, error)
}

type deadlineSetter interface {
	SetReadDeadline(t time.Time) error
}

// readFull fills buf from the transport, honoring c.readDeadline.
func (c *Conn) readFull(buf []byte) error {
	dl := c.readDeadline
	if !dl.IsZero() {
		if dr, ok := c.tr.(deadlineReader); ok {
			n := 0
			for n < len(buf) {
				m, err := dr.ReadDeadline(buf[n:], dl)
				n += m
				if err != nil {
					if err == io.EOF && n > 0 {
						err = io.ErrUnexpectedEOF
					}
					return err
				}
			}
			return nil
		}
		if ds, ok := c.tr.(deadlineSetter); ok {
			ds.SetReadDeadline(dl)
			defer ds.SetReadDeadline(time.Time{})
		}
	}
	_, err := io.ReadFull(c.tr, buf)
	return err
}

// readRecord reads exactly one record, returning its type and body.
func (c *Conn) readRecord() (byte, []byte, error) {
	var hdr [4]byte
	if err := c.readFull(hdr[:]); err != nil {
		return 0, nil, err
	}
	if hdr[1] != protocolVersion {
		return 0, nil, fmt.Errorf("%w: version %#x", ErrBadRecord, hdr[1])
	}
	n := int(hdr[2])<<8 | int(hdr[3])
	body := make([]byte, n)
	if err := c.readFull(body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("%w: truncated body: %v", ErrBadRecord, err)
	}
	return hdr[0], body, nil
}

// sealRecord encrypts and MACs a data record body.
func (c *Conn) sealRecord(recType byte, plaintext []byte) ([]byte, error) {
	bs := c.wCipher.BlockSize()
	iv := c.rng.Bytes(bs)
	padded := c.wCipher.Pad(plaintext)
	ct, err := c.wCipher.EncryptCBC(iv, padded)
	if err != nil {
		return nil, err
	}
	mac := c.recordMAC(c.wMAC, c.wSeq, recType, iv, ct)
	c.wSeq++
	out := make([]byte, 0, len(iv)+len(ct)+macLen)
	out = append(out, iv...)
	out = append(out, ct...)
	out = append(out, mac...)
	return out, nil
}

// openRecord verifies and decrypts a data record body.
func (c *Conn) openRecord(recType byte, body []byte) ([]byte, error) {
	bs := c.rCipher.BlockSize()
	if len(body) < bs+macLen || (len(body)-bs-macLen)%bs != 0 {
		return nil, fmt.Errorf("%w: sealed body length %d", ErrBadRecord, len(body))
	}
	iv := body[:bs]
	ct := body[bs : len(body)-macLen]
	mac := body[len(body)-macLen:]
	want := c.recordMAC(c.rMAC, c.rSeq, recType, iv, ct)
	if !constEq(mac, want) {
		return nil, ErrBadMAC
	}
	c.rSeq++
	padded, err := c.rCipher.DecryptCBC(iv, ct)
	if err != nil {
		return nil, err
	}
	pt, err := c.rCipher.Unpad(padded)
	if err != nil {
		return nil, fmt.Errorf("%w: padding", ErrBadRecord)
	}
	return pt, nil
}

// recordMAC computes the truncated record MAC.
func (c *Conn) recordMAC(key []byte, seq uint64, recType byte, iv, ct []byte) []byte {
	msg := make([]byte, 0, 9+len(iv)+len(ct))
	for i := 0; i < 8; i++ {
		msg = append(msg, byte(seq>>(56-8*i)))
	}
	msg = append(msg, recType)
	msg = append(msg, iv...)
	msg = append(msg, ct...)
	m := sha1.HMAC(key, msg)
	return m[:macLen]
}

// constEq compares MACs in constant time.
func constEq(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	var v byte
	for i := range a {
		v |= a[i] ^ b[i]
	}
	return v == 0
}
