package issl

import (
	"fmt"
	"io"
	"time"

	"repro/internal/crypto/sha1"
)

// Record layer. Every byte on the wire after the TCP stream starts is
// a record:
//
//	type(1) version(1) length(2) body(length)
//
// Handshake records travel in the clear (like SSL's initial null
// cipher); once Finished messages are exchanged, data records carry
//
//	iv(blockSize) ciphertext(...) mac(12)
//
// where mac = HMAC-SHA1(macKey, seq64 || type || iv || ct)[:12],
// encrypt-then-MAC, with an independent sequence counter and key pair
// per direction.
//
// The steady-state data path is allocation-free: records are sealed
// in place into a staging buffer (appendSealed), opened in place in
// the read scratch (openRecord), and MACed through per-direction
// streaming HMAC states that reuse the key pad blocks.

// Record types.
const (
	recHandshake = 0x16 // borrowed from TLS for familiarity
	recData      = 0x17
	recClose     = 0x15
)

// protocolVersion identifies this wire format.
const protocolVersion = 0x31 // "issl 1"

const macLen = 12

// recordHeaderLen is the framing prefix: type, version, 2-byte length.
const recordHeaderLen = 4

// writeRecord frames and transmits one record body.
func (c *Conn) writeRecord(recType byte, body []byte) error {
	if len(body) > 0xffff {
		return fmt.Errorf("%w: %d bytes", ErrRecordTooBig, len(body))
	}
	hdr := []byte{recType, protocolVersion, byte(len(body) >> 8), byte(len(body))}
	if _, err := c.tr.Write(append(hdr, body...)); err != nil {
		return err
	}
	return nil
}

// Deadline plumbing. The record layer is transport-agnostic; deadlines
// are honored when the transport offers either the tcpip.TCB-style
// per-call API or the net.Conn-style set-once API, and silently
// best-effort otherwise.
type deadlineReader interface {
	ReadDeadline(buf []byte, deadline time.Time) (int, error)
}

type deadlineSetter interface {
	SetReadDeadline(t time.Time) error
}

// peekTransport is the zero-copy receive interface: Peek returns a
// view into the transport's receive buffer (pinning it against
// movement) holding at least n bytes, and Discard consumes bytes and
// releases the pin. tcpip.TCB implements it; when the transport does,
// the record layer opens records in place inside the receive buffer,
// so one buffer carries the bytes from the wire to the plaintext the
// application reads.
type peekTransport interface {
	Peek(n int, deadline time.Time) ([]byte, error)
	Discard(n int)
}

// flushPeeked releases record bytes consumed from the peek transport.
func (c *Conn) flushPeeked() {
	if c.pendingDiscard > 0 {
		c.pk.Discard(c.pendingDiscard)
		c.pendingDiscard = 0
	}
}

// readFull fills buf from the transport, honoring c.readDeadline.
func (c *Conn) readFull(buf []byte) error {
	dl := c.readDeadline
	if !dl.IsZero() {
		if dr, ok := c.tr.(deadlineReader); ok {
			n := 0
			for n < len(buf) {
				m, err := dr.ReadDeadline(buf[n:], dl)
				n += m
				if err != nil {
					if err == io.EOF && n > 0 {
						err = io.ErrUnexpectedEOF
					}
					return err
				}
			}
			return nil
		}
		if ds, ok := c.tr.(deadlineSetter); ok {
			ds.SetReadDeadline(dl)
			defer ds.SetReadDeadline(time.Time{})
		}
	}
	_, err := io.ReadFull(c.tr, buf)
	return err
}

// readRecord reads exactly one record, returning its type and body.
// The body aliases a per-connection scratch buffer (or, on a peek
// transport, the transport's own receive buffer) that is valid only
// until the next readRecord call; callers that keep record contents
// (the transcript, the ticket) copy what they need.
func (c *Conn) readRecord() (byte, []byte, error) {
	if c.pk != nil {
		return c.readRecordPeek()
	}
	var hdr [recordHeaderLen]byte
	if err := c.readFull(hdr[:]); err != nil {
		return 0, nil, err
	}
	if hdr[1] != protocolVersion {
		return 0, nil, fmt.Errorf("%w: version %#x", ErrBadRecord, hdr[1])
	}
	n := int(hdr[2])<<8 | int(hdr[3])
	if cap(c.rdScratch) < n {
		c.rdScratch = make([]byte, n)
	}
	body := c.rdScratch[:n]
	if err := c.readFull(body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("%w: truncated body: %v", ErrBadRecord, err)
	}
	return hdr[0], body, nil
}

// readRecordPeek is readRecord over a peek transport: the record is
// never copied out of the transport's receive buffer. The previous
// record's bytes are released first; then the header is peeked, the
// full record is peeked (re-pinning, which invalidates the header
// view — its fields are read into locals before that), and the body
// view is handed back with its length registered for the next flush.
func (c *Conn) readRecordPeek() (byte, []byte, error) {
	c.flushPeeked()
	hdr, err := c.pk.Peek(recordHeaderLen, c.readDeadline)
	if err != nil {
		return 0, nil, err
	}
	recType := hdr[0]
	if hdr[1] != protocolVersion {
		return 0, nil, fmt.Errorf("%w: version %#x", ErrBadRecord, hdr[1])
	}
	n := int(hdr[2])<<8 | int(hdr[3])
	buf, err := c.pk.Peek(recordHeaderLen+n, c.readDeadline)
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("%w: truncated body: %v", ErrBadRecord, err)
	}
	c.pendingDiscard = recordHeaderLen + n
	return recType, buf[recordHeaderLen : recordHeaderLen+n], nil
}

// writeHMAC and readHMAC lazily build the streaming MAC states from
// the directional keys. Lazy rather than eager because tests (and the
// fuzz harness) assemble Conns from key material directly; deriveKeys
// drops the cached states whenever it installs fresh keys.
func (c *Conn) writeHMAC() *sha1.HMACState {
	if c.wHMAC == nil {
		c.wHMAC = sha1.NewHMAC(c.wMAC)
	}
	return c.wHMAC
}

func (c *Conn) readHMAC() *sha1.HMACState {
	if c.rHMAC == nil {
		c.rHMAC = sha1.NewHMAC(c.rMAC)
	}
	return c.rHMAC
}

// macInto computes the record MAC into sum without allocating:
// HMAC(key, seq64 || type || iv || ct), truncated by the callers.
func macInto(st *sha1.HMACState, seq uint64, recType byte, iv, ct []byte, sum *[sha1.Size]byte) {
	st.Reset()
	var pre [9]byte
	pre[0] = byte(seq >> 56)
	pre[1] = byte(seq >> 48)
	pre[2] = byte(seq >> 40)
	pre[3] = byte(seq >> 32)
	pre[4] = byte(seq >> 24)
	pre[5] = byte(seq >> 16)
	pre[6] = byte(seq >> 8)
	pre[7] = byte(seq)
	pre[8] = recType
	st.Write(pre[:])
	st.Write(iv)
	st.Write(ct)
	st.SumInto(sum)
}

// appendSealed seals plaintext as one complete framed record (header
// included) appended to dst and returns the extended slice. Everything
// — IV generation, padding, CBC, MAC — happens in place inside dst, so
// a dst with capacity to spare makes the call allocation-free. Callers
// must hold wMu (it consumes the rng and the write sequence).
func (c *Conn) appendSealed(dst []byte, recType byte, plaintext []byte) ([]byte, error) {
	bs := c.wCipher.BlockSize()
	padN := bs - len(plaintext)%bs // PKCS#7: always at least one byte
	ctLen := len(plaintext) + padN
	bodyLen := bs + ctLen + macLen
	if bodyLen > 0xffff {
		return nil, fmt.Errorf("%w: %d bytes", ErrRecordTooBig, bodyLen)
	}
	off := len(dst)
	dst = append(dst, make([]byte, recordHeaderLen+bodyLen)...)
	rec := dst[off:]
	rec[0] = recType
	rec[1] = protocolVersion
	rec[2] = byte(bodyLen >> 8)
	rec[3] = byte(bodyLen)
	body := rec[recordHeaderLen:]
	iv := body[:bs]
	c.rng.Fill(iv)
	ct := body[bs : bs+ctLen]
	copy(ct, plaintext)
	for i := len(plaintext); i < ctLen; i++ {
		ct[i] = byte(padN)
	}
	if err := c.wCipher.EncryptCBCInPlace(iv, ct); err != nil {
		return nil, err
	}
	var sum [sha1.Size]byte
	macInto(c.writeHMAC(), c.wSeq, recType, iv, ct, &sum)
	copy(body[bs+ctLen:], sum[:macLen])
	c.wSeq++
	return dst, nil
}

// sealRecord encrypts and MACs a data record body (unframed). The hot
// write path stages records with appendSealed directly; this
// allocating form serves the rare paths (alerts, close, Finished) and
// the tests.
func (c *Conn) sealRecord(recType byte, plaintext []byte) ([]byte, error) {
	rec, err := c.appendSealed(nil, recType, plaintext)
	if err != nil {
		return nil, err
	}
	return rec[recordHeaderLen:], nil
}

// openRecord verifies and decrypts a data record body. Decryption is
// in place: on success the returned plaintext aliases body's
// ciphertext region and body's contents are consumed. A record that
// fails authentication is left untouched (the MAC is checked before
// anything is written).
func (c *Conn) openRecord(recType byte, body []byte) ([]byte, error) {
	bs := c.rCipher.BlockSize()
	if len(body) < bs+macLen || (len(body)-bs-macLen)%bs != 0 {
		return nil, fmt.Errorf("%w: sealed body length %d", ErrBadRecord, len(body))
	}
	iv := body[:bs]
	ct := body[bs : len(body)-macLen]
	mac := body[len(body)-macLen:]
	var sum [sha1.Size]byte
	macInto(c.readHMAC(), c.rSeq, recType, iv, ct, &sum)
	if !constEq(mac, sum[:macLen]) {
		return nil, ErrBadMAC
	}
	c.rSeq++
	if err := c.rCipher.DecryptCBCInPlace(iv, ct); err != nil {
		return nil, err
	}
	pt, err := c.rCipher.Unpad(ct)
	if err != nil {
		return nil, fmt.Errorf("%w: padding", ErrBadRecord)
	}
	return pt, nil
}

// constEq compares MACs in constant time.
func constEq(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	var v byte
	for i := range a {
		v |= a[i] ^ b[i]
	}
	return v == 0
}
