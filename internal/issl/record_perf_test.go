package issl

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/crypto/prng"
	"repro/internal/crypto/sha1"
	"repro/internal/race"
)

// sealRecordRef rebuilds a sealed body the way the seed kernel did —
// allocating Pad + EncryptCBC + one-shot HMAC — against a snapshot of
// the conn's write state, without advancing that state.
func sealRecordRef(t *testing.T, c *Conn, rngSeed uint64, seq uint64, recType byte, pt []byte) []byte {
	t.Helper()
	rng := prng.NewXorshift(rngSeed)
	bs := c.wCipher.BlockSize()
	iv := rng.Bytes(bs)
	padded := c.wCipher.Pad(pt)
	ct, err := c.wCipher.EncryptCBC(iv, padded)
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, 0, 9+len(iv)+len(ct))
	for i := 0; i < 8; i++ {
		msg = append(msg, byte(seq>>(56-8*i)))
	}
	msg = append(msg, recType)
	msg = append(msg, iv...)
	msg = append(msg, ct...)
	m := sha1.HMAC(c.wMAC, msg)
	out := append(iv, ct...)
	return append(out, m[:macLen]...)
}

// TestSealMatchesReference pins the wire format: the in-place sealing
// path must emit byte-identical records to the seed implementation
// (same rng consumption, same padding, same MAC) across seeded vectors.
func TestSealMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for i := 0; i < 1_000; i++ {
		seed := uint64(1000 + i)
		c := fuzzKeyedConn(t)
		c.rng = prng.NewXorshift(seed)
		c.wSeq = uint64(rng.Intn(1 << 20))
		pt := make([]byte, rng.Intn(600))
		rng.Read(pt)

		want := sealRecordRef(t, c, seed, c.wSeq, recData, pt)
		got, err := c.sealRecord(recData, pt)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("vector %d: sealed record differs from seed kernel output", i)
		}
	}
}

// TestRecordSealOpenZeroAlloc pins the tentpole contract: steady-state
// seal and open allocate nothing.
func TestRecordSealOpenZeroAlloc(t *testing.T) {
	if race.Enabled {
		t.Skip("AllocsPerRun is not meaningful under the race detector")
	}
	w, r := fuzzKeyedConn(t), fuzzKeyedConn(t)
	pt := make([]byte, 512)
	buf := make([]byte, 0, 1024)
	var sealErr error
	if n := testing.AllocsPerRun(100, func() {
		buf, sealErr = w.appendSealed(buf[:0], recData, pt)
	}); n != 0 {
		t.Errorf("appendSealed allocates %v per record, want 0", n)
	}
	if sealErr != nil {
		t.Fatal(sealErr)
	}

	// openRecord consumes its input (in-place decrypt), so each run
	// re-copies the pristine ciphertext into a reused scratch buffer.
	rec, err := w.appendSealed(nil, recData, pt)
	if err != nil {
		t.Fatal(err)
	}
	pristine := append([]byte(nil), rec[recordHeaderLen:]...)
	scratch := make([]byte, len(pristine))
	seq := w.wSeq - 1
	var openErr error
	if n := testing.AllocsPerRun(100, func() {
		copy(scratch, pristine)
		r.rSeq = seq
		_, openErr = r.openRecord(recData, scratch)
	}); n != 0 {
		t.Errorf("openRecord allocates %v per record, want 0", n)
	}
	if openErr != nil {
		t.Fatal(openErr)
	}
}

// TestWriteBatchesRecords checks that one large Write reaches the
// transport in far fewer calls than records, and that a full-duplex
// round trip through the batched path still delivers the bytes.
func TestWriteBatchesRecords(t *testing.T) {
	w := fuzzKeyedConn(t)
	w.cfg.Profile = ProfileEmbedded // 1 KiB records: forces fragmentation
	ct := &countingTransport{}
	w.tr = ct
	payload := make([]byte, 40_000) // ~40 records at 1 KiB
	rand.New(rand.NewSource(52)).Read(payload)
	n, err := w.Write(payload)
	if err != nil || n != len(payload) {
		t.Fatalf("Write = %d, %v", n, err)
	}
	if w.recordsOut < 2 {
		t.Fatalf("expected fragmentation, got %d records", w.recordsOut)
	}
	if uint64(ct.writes) >= w.recordsOut {
		t.Errorf("%d transport writes for %d records; expected batching", ct.writes, w.recordsOut)
	}

	// Replay the batched stream through a reading conn.
	r := fuzzKeyedConn(t)
	r.tr = &fuzzTransport{r: bytes.NewReader(ct.buf.Bytes())}
	got := make([]byte, 0, len(payload))
	rbuf := make([]byte, 4096)
	for len(got) < len(payload) {
		m, err := r.Read(rbuf)
		if err != nil {
			t.Fatalf("Read after %d bytes: %v", len(got), err)
		}
		got = append(got, rbuf[:m]...)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("batched write round trip corrupted payload")
	}
}

type countingTransport struct {
	buf    bytes.Buffer
	writes int
}

func (c *countingTransport) Read(p []byte) (int, error) { return c.buf.Read(p) }
func (c *countingTransport) Write(p []byte) (int, error) {
	c.writes++
	return c.buf.Write(p)
}

func BenchmarkRecordSeal_1K(b *testing.B) {
	w := fuzzKeyedConn(b)
	pt := make([]byte, 1024)
	buf := make([]byte, 0, 2048)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = w.appendSealed(buf[:0], recData, pt)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecordOpen_1K(b *testing.B) {
	w, r := fuzzKeyedConn(b), fuzzKeyedConn(b)
	pt := make([]byte, 1024)
	rec, err := w.appendSealed(nil, recData, pt)
	if err != nil {
		b.Fatal(err)
	}
	pristine := append([]byte(nil), rec[recordHeaderLen:]...)
	scratch := make([]byte, len(pristine))
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		copy(scratch, pristine)
		r.rSeq = 0
		if _, err := r.openRecord(recData, scratch); err != nil {
			b.Fatal(err)
		}
	}
}
