package issl

import (
	"sync"
)

// Session resumption, after Goldberg, Buff & Schmitt — the work the
// paper cites for SSL's cost ("Secure web server performance using SSL
// session keys", the [10] of §2): caching the negotiated master secret
// under a session ID lets a returning client skip the expensive RSA
// key exchange and jump straight to Finished. The embedded profile
// benefits too (it skips nothing cryptographically, but halves the
// handshake's records).
//
// Wire format: ClientHello carries an optional session ID; when the
// server finds it in its cache, ServerHello echoes it with the resumed
// flag set and both sides derive fresh record keys from the cached
// master secret plus the new nonces.

// SessionIDLen is the session identifier length in bytes.
const SessionIDLen = 16

// Session is resumable handshake state, returned by Conn.Session on
// the client and cached server-side in a SessionCache.
type Session struct {
	ID     [SessionIDLen]byte
	master []byte
}

// SessionCache is the server's bounded session store. The zero value
// is unusable; use NewSessionCache.
type SessionCache struct {
	mu    sync.Mutex
	max   int
	items map[[SessionIDLen]byte][]byte
	order [][SessionIDLen]byte // FIFO eviction, oldest first
}

// NewSessionCache creates a cache bounded to max sessions (min 1).
func NewSessionCache(max int) *SessionCache {
	if max < 1 {
		max = 1
	}
	return &SessionCache{max: max, items: map[[SessionIDLen]byte][]byte{}}
}

// Len returns the number of cached sessions.
func (c *SessionCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

func (c *SessionCache) put(id [SessionIDLen]byte, master []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.items[id]; !exists {
		for len(c.items) >= c.max && len(c.order) > 0 {
			old := c.order[0]
			c.order = c.order[1:]
			delete(c.items, old)
		}
		c.order = append(c.order, id)
	}
	c.items[id] = append([]byte(nil), master...)
}

func (c *SessionCache) get(id [SessionIDLen]byte) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.items[id]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), m...), true
}

// Remove evicts one session (e.g. after a suspected compromise).
func (c *SessionCache) Remove(id [SessionIDLen]byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.items, id)
}

// Session returns resumable state after a successful client handshake,
// or nil when the server issued no session (cache disabled).
func (c *Conn) Session() *Session {
	if c.sessionID == ([SessionIDLen]byte{}) {
		return nil
	}
	return &Session{ID: c.sessionID, master: append([]byte(nil), c.master...)}
}

// Resumed reports whether this connection used an abbreviated
// handshake.
func (c *Conn) Resumed() bool { return c.resumed }
