package issl

import (
	"container/list"
	"sync"
)

// Session resumption, after Goldberg, Buff & Schmitt — the work the
// paper cites for SSL's cost ("Secure web server performance using SSL
// session keys", the [10] of §2): caching the negotiated master secret
// under a session ID lets a returning client skip the expensive RSA
// key exchange and jump straight to Finished. The embedded profile
// benefits too (it skips nothing cryptographically, but halves the
// handshake's records).
//
// Wire format: ClientHello carries an optional session ID; when the
// server finds it in its cache, ServerHello echoes it with the resumed
// flag set and both sides derive fresh record keys from the cached
// master secret plus the new nonces.

// SessionIDLen is the session identifier length in bytes.
const SessionIDLen = 16

// Session is resumable handshake state, returned by Conn.Session on
// the client and cached server-side in a SessionCache. Ticket, when
// present, is the server's sealed session ticket (see ticket.go): the
// client offers it on reconnect and ANY server instance holding the
// cluster ticket key can resume the session statelessly — the ID-based
// path below needs the specific instance whose cache holds the entry.
type Session struct {
	ID     [SessionIDLen]byte
	Ticket []byte
	master []byte
}

// SessionCache is the server's bounded session store, sharded N ways
// by session-ID prefix so concurrent resumption handshakes contend on
// a shard mutex instead of one global lock — under a fleet of
// returning clients the single-mutex cache is the first server-side
// bottleneck a load generator exposes (see BenchmarkSessionCacheResume
// for the measured difference). Each shard is bounded independently
// and evicts least-recently-used: a get touches the entry, so a hot
// session survives churn past the bound while one-shot sessions age
// out. Session IDs come from the handshake PRNG, so the prefix shard
// choice is uniform.
//
// The zero value is unusable; use NewSessionCache.
type SessionCache struct {
	shards []sessionShard
	mask   uint64
}

// sessionShard is one independently locked, independently bounded LRU.
type sessionShard struct {
	mu    sync.Mutex
	max   int
	items map[[SessionIDLen]byte]*list.Element
	lru   list.List // front = most recently used; values are *sessionEntry
}

// sessionEntry is an LRU node: the ID keyed back to the map plus the
// cached master secret.
type sessionEntry struct {
	id     [SessionIDLen]byte
	master []byte
}

// DefaultSessionShards is the shard count NewSessionCache uses. Eight
// shards flatten the resumption-path contention of a ~16-core host;
// NewSessionCacheSharded tunes it.
const DefaultSessionShards = 8

// NewSessionCache creates a cache bounded to max sessions (min 1),
// sharded DefaultSessionShards ways (fewer when max is small, so the
// global bound is never exceeded).
func NewSessionCache(max int) *SessionCache {
	return NewSessionCacheSharded(max, DefaultSessionShards)
}

// NewSessionCacheSharded creates a cache bounded to max sessions (min
// 1) split over the given number of shards. The shard count is rounded
// down to a power of two, clamped to [1, max] — a shard never holds
// fewer than one session, and shards=1 is the single-mutex layout
// (the pre-sharding baseline, kept for benchmark comparison).
func NewSessionCacheSharded(max, shards int) *SessionCache {
	if max < 1 {
		max = 1
	}
	if shards < 1 {
		shards = 1
	}
	if shards > max {
		shards = max
	}
	// Round down to a power of two so shard selection is a mask.
	for shards&(shards-1) != 0 {
		shards &= shards - 1
	}
	perShard := (max + shards - 1) / shards
	c := &SessionCache{shards: make([]sessionShard, shards), mask: uint64(shards - 1)}
	for i := range c.shards {
		c.shards[i].max = perShard
		c.shards[i].items = map[[SessionIDLen]byte]*list.Element{}
	}
	return c
}

// shard selects the shard for an ID by its leading byte.
func (c *SessionCache) shard(id [SessionIDLen]byte) *sessionShard {
	return &c.shards[uint64(id[0])&c.mask]
}

// Shards returns the shard count (for reports and tests).
func (c *SessionCache) Shards() int { return len(c.shards) }

// Len returns the number of cached sessions across all shards.
func (c *SessionCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.items)
		s.mu.Unlock()
	}
	return n
}

func (c *SessionCache) put(id [SessionIDLen]byte, master []byte) {
	s := c.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, exists := s.items[id]; exists {
		el.Value.(*sessionEntry).master = append([]byte(nil), master...)
		s.lru.MoveToFront(el)
		return
	}
	for len(s.items) >= s.max {
		oldest := s.lru.Back()
		if oldest == nil {
			break
		}
		s.lru.Remove(oldest)
		delete(s.items, oldest.Value.(*sessionEntry).id)
	}
	s.items[id] = s.lru.PushFront(&sessionEntry{id: id, master: append([]byte(nil), master...)})
}

func (c *SessionCache) get(id [SessionIDLen]byte) ([]byte, bool) {
	s := c.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[id]
	if !ok {
		return nil, false
	}
	s.lru.MoveToFront(el) // touch-on-get: resuming keeps a session hot
	return append([]byte(nil), el.Value.(*sessionEntry).master...), true
}

// Remove evicts one session (e.g. after a suspected compromise).
func (c *SessionCache) Remove(id [SessionIDLen]byte) {
	s := c.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[id]; ok {
		s.lru.Remove(el)
		delete(s.items, id)
	}
}

// Session returns resumable state after a successful client handshake,
// or nil when the server issued neither a session ID nor a ticket.
func (c *Conn) Session() *Session {
	if c.sessionID == ([SessionIDLen]byte{}) && len(c.ticket) == 0 {
		return nil
	}
	return &Session{
		ID:     c.sessionID,
		Ticket: append([]byte(nil), c.ticket...),
		master: append([]byte(nil), c.master...),
	}
}

// Resumed reports whether this connection used an abbreviated
// handshake.
func (c *Conn) Resumed() bool { return c.resumed }
