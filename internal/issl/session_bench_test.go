package issl

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/crypto/prng"
)

// TestSessionCacheLRUHotSurvivesChurn is the eviction-policy upgrade's
// contract: a session that keeps being resumed (touched by get) must
// survive arbitrarily many one-shot sessions churning past the bound,
// where the old FIFO policy would have evicted it by insertion age.
func TestSessionCacheLRUHotSurvivesChurn(t *testing.T) {
	const bound = 8
	// One shard so every session below competes for the same LRU list —
	// the sharpest version of the test.
	c := NewSessionCacheSharded(bound, 1)
	hot := sid(0xA0)
	c.put(hot, []byte("hot-master"))
	for i := 0; i < 10*bound; i++ {
		if _, ok := c.get(hot); !ok {
			t.Fatalf("hot session evicted after %d churn inserts", i)
		}
		c.put(sid(byte(i)), []byte("one-shot"))
	}
	if m, ok := c.get(hot); !ok || string(m) != "hot-master" {
		t.Fatalf("hot session lost after churn: ok=%v m=%q", ok, m)
	}
	if c.Len() > bound {
		t.Errorf("cache exceeded bound: %d > %d", c.Len(), bound)
	}
}

func TestSessionCacheLRUEvictsColdest(t *testing.T) {
	c := NewSessionCacheSharded(3, 1)
	a, b, d, e := sid(1), sid(2), sid(3), sid(4)
	c.put(a, []byte("a"))
	c.put(b, []byte("b"))
	c.put(d, []byte("d"))
	c.get(a) // touch a: b is now coldest
	c.put(e, []byte("e"))
	if _, ok := c.get(b); ok {
		t.Error("LRU kept the coldest entry")
	}
	for _, id := range [][SessionIDLen]byte{a, d, e} {
		if _, ok := c.get(id); !ok {
			t.Errorf("entry %x missing", id[0])
		}
	}
}

func TestSessionCacheShardBounds(t *testing.T) {
	// 64 total over 8 shards: 8 per shard; stuffing one shard (fixed
	// leading byte) must bound it at 8 without touching the others.
	c := NewSessionCacheSharded(64, 8)
	if c.Shards() != 8 {
		t.Fatalf("shards = %d", c.Shards())
	}
	for i := 0; i < 100; i++ {
		var id [SessionIDLen]byte
		id[0] = 8 // all land in shard 0 (8 & 7)
		id[1] = byte(i)
		c.put(id, []byte("m"))
	}
	if got := c.Len(); got != 8 {
		t.Errorf("hot shard holds %d, want per-shard bound 8", got)
	}
	// Other shards still accept entries independently.
	c.put(sid(1), []byte("x"))
	if got := c.Len(); got != 9 {
		t.Errorf("len = %d after cross-shard insert", got)
	}
}

func TestSessionCacheShardRounding(t *testing.T) {
	for _, tc := range []struct{ max, shards, want int }{
		{16, 8, 8},
		{16, 0, 1},
		{16, 7, 4}, // rounded down to a power of two
		{2, 8, 2},  // clamped to max
		{1, 8, 1},
		{0, -1, 1},
	} {
		c := NewSessionCacheSharded(tc.max, tc.shards)
		if c.Shards() != tc.want {
			t.Errorf("max=%d shards=%d: got %d shards, want %d",
				tc.max, tc.shards, c.Shards(), tc.want)
		}
	}
}

// sid builds a session ID with the given leading byte.
func sid(b byte) [SessionIDLen]byte {
	var id [SessionIDLen]byte
	id[0] = b
	id[1] = b ^ 0x5A
	return id
}

// BenchmarkSessionCacheResume measures the server's resumption hot
// path — the cache get every abbreviated handshake performs, plus the
// occasional insert of a fresh session — under parallel load, across
// shard counts. shards=1 is the pre-sharding single-mutex layout; the
// sharded variants are the scale fix. On a multi-core host the sharded
// cache sustains several times the single-mutex op rate (see
// EXPERIMENTS.md E10 for committed numbers).
func BenchmarkSessionCacheResume(b *testing.B) {
	for _, shards := range []int{1, 4, 8, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			const sessions = 1024
			c := NewSessionCacheSharded(4*sessions, shards)
			ids := make([][SessionIDLen]byte, sessions)
			rng := prng.NewXorshift(0xCAFE)
			for i := range ids {
				rng.Fill(ids[i][:])
				c.put(ids[i], []byte("master-secret-0123456789"))
			}
			var seq sync.Mutex
			next := 0
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// Per-goroutine PRNG: uncontended, deterministic enough.
				seq.Lock()
				next++
				r := prng.NewXorshift(uint64(next) * 0x9E3779B97F4A7C15)
				seq.Unlock()
				for pb.Next() {
					id := ids[r.Intn(sessions)]
					if r.Intn(100) < 5 { // 5% fresh sessions, like a 95% resume mix
						var fresh [SessionIDLen]byte
						r.Fill(fresh[:])
						c.put(fresh, []byte("master-secret-0123456789"))
					} else {
						c.get(id)
					}
				}
			})
		})
	}
}
