package issl

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/crypto/prng"
)

// resumablePair does a full handshake with a server cache and returns
// the client session plus the shared cache.
func resumablePair(t *testing.T) (*Session, *SessionCache) {
	t.Helper()
	cache := NewSessionCache(16)
	cliCfg := Config{Profile: ProfileUnix, Rand: prng.NewXorshift(51)}
	srvCfg := Config{Profile: ProfileUnix, ServerKey: serverKey(t),
		Rand: prng.NewXorshift(52), Cache: cache}
	cli, srv := handshakePair(t, cliCfg, srvCfg)
	if cli.Resumed() || srv.Resumed() {
		t.Fatal("first handshake claims resumption")
	}
	sess := cli.Session()
	if sess == nil {
		t.Fatal("no session issued despite server cache")
	}
	if cache.Len() != 1 {
		t.Fatalf("cache has %d sessions", cache.Len())
	}
	return sess, cache
}

func TestSessionResumptionSkipsRSA(t *testing.T) {
	sess, cache := resumablePair(t)
	// Second connection offers the session; handshake must complete
	// as resumed on both ends and carry data.
	cliCfg := Config{Profile: ProfileUnix, Rand: prng.NewXorshift(61), Resume: sess}
	srvCfg := Config{Profile: ProfileUnix, ServerKey: serverKey(t),
		Rand: prng.NewXorshift(62), Cache: cache}
	cli, srv := handshakePair(t, cliCfg, srvCfg)
	if !cli.Resumed() || !srv.Resumed() {
		t.Errorf("resumed: client=%v server=%v", cli.Resumed(), srv.Resumed())
	}
	go srv.Write([]byte("resumed data"))
	buf := make([]byte, 64)
	n, err := cli.Read(buf)
	if err != nil || string(buf[:n]) != "resumed data" {
		t.Errorf("data after resumption: %q, %v", buf[:n], err)
	}
}

func TestResumptionWithEmbeddedProfile(t *testing.T) {
	cache := NewSessionCache(4)
	psk := []byte("emb-psk")
	full := func(resume *Session) (*Conn, *Conn) {
		cliCfg := Config{Profile: ProfileEmbedded, PSK: psk,
			Rand: prng.NewXorshift(71), Resume: resume}
		srvCfg := Config{Profile: ProfileEmbedded, PSK: psk,
			Rand: prng.NewXorshift(72), Cache: cache}
		return handshakePairT(t, cliCfg, srvCfg)
	}
	cli, _ := full(nil)
	sess := cli.Session()
	if sess == nil {
		t.Fatal("no embedded session issued")
	}
	cli2, srv2 := full(sess)
	if !cli2.Resumed() || !srv2.Resumed() {
		t.Error("embedded resumption did not engage")
	}
}

// handshakePairT is handshakePair for reuse from this file.
func handshakePairT(t *testing.T, cliCfg, srvCfg Config) (*Conn, *Conn) {
	return handshakePair(t, cliCfg, srvCfg)
}

func TestUnknownSessionFallsBackToFull(t *testing.T) {
	_, cache := resumablePair(t)
	bogus := &Session{master: []byte("wrong-master-secret")}
	copy(bogus.ID[:], bytes.Repeat([]byte{0xEE}, SessionIDLen))
	cliCfg := Config{Profile: ProfileUnix, Rand: prng.NewXorshift(81), Resume: bogus}
	srvCfg := Config{Profile: ProfileUnix, ServerKey: serverKey(t),
		Rand: prng.NewXorshift(82), Cache: cache}
	cli, srv := handshakePair(t, cliCfg, srvCfg)
	if cli.Resumed() || srv.Resumed() {
		t.Error("unknown session was resumed")
	}
	// Full handshake still works end to end.
	go srv.Write([]byte("full fallback"))
	buf := make([]byte, 32)
	n, err := cli.Read(buf)
	if err != nil || string(buf[:n]) != "full fallback" {
		t.Errorf("fallback data: %q %v", buf[:n], err)
	}
}

func TestRemovedSessionNotResumed(t *testing.T) {
	sess, cache := resumablePair(t)
	cache.Remove(sess.ID)
	cliCfg := Config{Profile: ProfileUnix, Rand: prng.NewXorshift(91), Resume: sess}
	srvCfg := Config{Profile: ProfileUnix, ServerKey: serverKey(t),
		Rand: prng.NewXorshift(92), Cache: cache}
	cli, _ := handshakePair(t, cliCfg, srvCfg)
	if cli.Resumed() {
		t.Error("evicted session was resumed")
	}
}

func TestNoCacheNoSession(t *testing.T) {
	cliCfg, srvCfg := unixConfigs(t, 128, 128)
	cli, _ := handshakePair(t, cliCfg, srvCfg)
	if cli.Session() != nil {
		t.Error("session issued without a server cache")
	}
}

func TestSessionCacheEviction(t *testing.T) {
	c := NewSessionCache(2)
	mk := func(b byte) [SessionIDLen]byte {
		var id [SessionIDLen]byte
		id[0] = b
		return id
	}
	c.put(mk(1), []byte("m1"))
	c.put(mk(2), []byte("m2"))
	c.put(mk(3), []byte("m3")) // evicts 1
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	if _, ok := c.get(mk(1)); ok {
		t.Error("oldest session not evicted")
	}
	if m, ok := c.get(mk(3)); !ok || string(m) != "m3" {
		t.Error("newest session missing")
	}
	// Updating an existing id must not evict.
	c.put(mk(2), []byte("m2b"))
	if c.Len() != 2 {
		t.Errorf("len after update = %d", c.Len())
	}
	if m, _ := c.get(mk(2)); string(m) != "m2b" {
		t.Error("update lost")
	}
}

// shardID builds a session ID that lands in the shard selected by the
// lead byte, distinguished within the shard by tail.
func shardID(lead, tail byte) [SessionIDLen]byte {
	var id [SessionIDLen]byte
	id[0], id[1] = lead, tail
	return id
}

// TestSessionCacheShardBoundaryEviction pins the per-shard LRU bound:
// overflowing one shard evicts that shard's LRU entry even while the
// global count is far below max, and neighboring shards are untouched.
func TestSessionCacheShardBoundaryEviction(t *testing.T) {
	c := NewSessionCacheSharded(8, 4) // 4 shards × 2 sessions each
	if c.Shards() != 4 {
		t.Fatalf("shards = %d, want 4", c.Shards())
	}

	// Park one resident in a neighboring shard (lead byte 1 -> shard 1).
	c.put(shardID(1, 0), []byte("neighbor"))

	// Overflow shard 0: three same-lead IDs into a 2-slot shard.
	c.put(shardID(0, 1), []byte("s1"))
	c.put(shardID(0, 2), []byte("s2"))
	c.put(shardID(0, 3), []byte("s3")) // shard 0 full -> evicts s1

	if got := c.Len(); got != 3 {
		t.Fatalf("global len = %d, want 3 (bound is per shard, max is 8)", got)
	}
	if _, ok := c.get(shardID(0, 1)); ok {
		t.Error("shard-LRU entry survived overflow despite global len < max")
	}
	for _, tail := range []byte{2, 3} {
		if _, ok := c.get(shardID(0, tail)); !ok {
			t.Errorf("entry tail=%d lost from overflowed shard", tail)
		}
	}
	if m, ok := c.get(shardID(1, 0)); !ok || string(m) != "neighbor" {
		t.Error("neighboring shard was disturbed by another shard's eviction")
	}
}

// TestSessionCacheTouchOnGetAcrossShardBoundary: a get refreshes LRU
// position within its shard, so the untouched entry is the one evicted.
func TestSessionCacheTouchOnGetAcrossShardBoundary(t *testing.T) {
	c := NewSessionCacheSharded(8, 4)
	c.put(shardID(4, 1), []byte("old-but-hot")) // shard 0 (4&3)
	c.put(shardID(4, 2), []byte("cold"))
	if _, ok := c.get(shardID(4, 1)); !ok { // touch: now MRU
		t.Fatal("warm get missed")
	}
	c.put(shardID(4, 3), []byte("new")) // evicts the cold one
	if _, ok := c.get(shardID(4, 2)); ok {
		t.Error("untouched entry survived; touch-on-get not honored at the boundary")
	}
	if _, ok := c.get(shardID(4, 1)); !ok {
		t.Error("touched entry was evicted")
	}
}

// TestSessionCacheGlobalBoundUnderUniformLoad: with max divisible by
// the shard count, uniform inserts settle at exactly max sessions.
func TestSessionCacheGlobalBoundUnderUniformLoad(t *testing.T) {
	c := NewSessionCacheSharded(8, 4)
	for i := 0; i < 40; i++ {
		c.put(shardID(byte(i), byte(i>>2)), []byte{byte(i)})
	}
	if got := c.Len(); got != 8 {
		t.Fatalf("len after uniform churn = %d, want exactly max (8)", got)
	}
}

// TestSessionCacheShardedConstruction pins the documented rounding and
// clamping: power-of-two rounding, shards <= max, minimums of one.
func TestSessionCacheShardedConstruction(t *testing.T) {
	cases := []struct {
		max, shards, want int
	}{
		{8, 3, 2},  // rounded down to a power of two
		{8, 8, 8},  // exact
		{4, 64, 4}, // clamped to max
		{0, 0, 1},  // minimums
		{1, 16, 1}, // one-session cache is single-shard
		{10, 4, 4}, // non-divisible max still shards
	}
	for _, tc := range cases {
		if got := NewSessionCacheSharded(tc.max, tc.shards).Shards(); got != tc.want {
			t.Errorf("NewSessionCacheSharded(%d,%d).Shards() = %d, want %d",
				tc.max, tc.shards, got, tc.want)
		}
	}
}

// TestE9ResumptionSpeedsUpHandshake measures the Goldberg et al.
// mechanism the paper cites: resumed handshakes skip the RSA operation
// and should be dramatically cheaper.
func TestE9ResumptionSpeedsUpHandshake(t *testing.T) {
	cache := NewSessionCache(16)
	key := serverKey(t)

	doHandshake := func(resume *Session, seed uint64) (*Conn, time.Duration) {
		ct, st := pipePair()
		type res struct {
			c   *Conn
			err error
		}
		srvCh := make(chan res, 1)
		go func() {
			c, err := BindServer(st, Config{Profile: ProfileUnix, ServerKey: key,
				Rand: prng.NewXorshift(seed + 1), Cache: cache})
			srvCh <- res{c, err}
		}()
		start := time.Now()
		cli, err := BindClient(ct, Config{Profile: ProfileUnix,
			Rand: prng.NewXorshift(seed), Resume: resume})
		elapsed := time.Since(start)
		if err != nil {
			t.Fatal(err)
		}
		if r := <-srvCh; r.err != nil {
			t.Fatal(r.err)
		}
		return cli, elapsed
	}

	cli, fullTime := doHandshake(nil, 100)
	sess := cli.Session()
	if sess == nil {
		t.Fatal("no session")
	}
	// Average a few resumed handshakes.
	var resumedTotal time.Duration
	const n = 5
	for i := 0; i < n; i++ {
		rc, d := doHandshake(sess, uint64(200+i))
		if !rc.Resumed() {
			t.Fatal("handshake not resumed")
		}
		resumedTotal += d
	}
	resumedAvg := resumedTotal / n
	t.Logf("E9: full handshake %v, resumed %v (%.1fx faster)",
		fullTime, resumedAvg, float64(fullTime)/float64(resumedAvg))
	if resumedAvg >= fullTime {
		t.Errorf("resumption not faster: full=%v resumed=%v", fullTime, resumedAvg)
	}
}
