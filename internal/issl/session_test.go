package issl

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/crypto/prng"
)

// resumablePair does a full handshake with a server cache and returns
// the client session plus the shared cache.
func resumablePair(t *testing.T) (*Session, *SessionCache) {
	t.Helper()
	cache := NewSessionCache(16)
	cliCfg := Config{Profile: ProfileUnix, Rand: prng.NewXorshift(51)}
	srvCfg := Config{Profile: ProfileUnix, ServerKey: serverKey(t),
		Rand: prng.NewXorshift(52), Cache: cache}
	cli, srv := handshakePair(t, cliCfg, srvCfg)
	if cli.Resumed() || srv.Resumed() {
		t.Fatal("first handshake claims resumption")
	}
	sess := cli.Session()
	if sess == nil {
		t.Fatal("no session issued despite server cache")
	}
	if cache.Len() != 1 {
		t.Fatalf("cache has %d sessions", cache.Len())
	}
	return sess, cache
}

func TestSessionResumptionSkipsRSA(t *testing.T) {
	sess, cache := resumablePair(t)
	// Second connection offers the session; handshake must complete
	// as resumed on both ends and carry data.
	cliCfg := Config{Profile: ProfileUnix, Rand: prng.NewXorshift(61), Resume: sess}
	srvCfg := Config{Profile: ProfileUnix, ServerKey: serverKey(t),
		Rand: prng.NewXorshift(62), Cache: cache}
	cli, srv := handshakePair(t, cliCfg, srvCfg)
	if !cli.Resumed() || !srv.Resumed() {
		t.Errorf("resumed: client=%v server=%v", cli.Resumed(), srv.Resumed())
	}
	go srv.Write([]byte("resumed data"))
	buf := make([]byte, 64)
	n, err := cli.Read(buf)
	if err != nil || string(buf[:n]) != "resumed data" {
		t.Errorf("data after resumption: %q, %v", buf[:n], err)
	}
}

func TestResumptionWithEmbeddedProfile(t *testing.T) {
	cache := NewSessionCache(4)
	psk := []byte("emb-psk")
	full := func(resume *Session) (*Conn, *Conn) {
		cliCfg := Config{Profile: ProfileEmbedded, PSK: psk,
			Rand: prng.NewXorshift(71), Resume: resume}
		srvCfg := Config{Profile: ProfileEmbedded, PSK: psk,
			Rand: prng.NewXorshift(72), Cache: cache}
		return handshakePairT(t, cliCfg, srvCfg)
	}
	cli, _ := full(nil)
	sess := cli.Session()
	if sess == nil {
		t.Fatal("no embedded session issued")
	}
	cli2, srv2 := full(sess)
	if !cli2.Resumed() || !srv2.Resumed() {
		t.Error("embedded resumption did not engage")
	}
}

// handshakePairT is handshakePair for reuse from this file.
func handshakePairT(t *testing.T, cliCfg, srvCfg Config) (*Conn, *Conn) {
	return handshakePair(t, cliCfg, srvCfg)
}

func TestUnknownSessionFallsBackToFull(t *testing.T) {
	_, cache := resumablePair(t)
	bogus := &Session{master: []byte("wrong-master-secret")}
	copy(bogus.ID[:], bytes.Repeat([]byte{0xEE}, SessionIDLen))
	cliCfg := Config{Profile: ProfileUnix, Rand: prng.NewXorshift(81), Resume: bogus}
	srvCfg := Config{Profile: ProfileUnix, ServerKey: serverKey(t),
		Rand: prng.NewXorshift(82), Cache: cache}
	cli, srv := handshakePair(t, cliCfg, srvCfg)
	if cli.Resumed() || srv.Resumed() {
		t.Error("unknown session was resumed")
	}
	// Full handshake still works end to end.
	go srv.Write([]byte("full fallback"))
	buf := make([]byte, 32)
	n, err := cli.Read(buf)
	if err != nil || string(buf[:n]) != "full fallback" {
		t.Errorf("fallback data: %q %v", buf[:n], err)
	}
}

func TestRemovedSessionNotResumed(t *testing.T) {
	sess, cache := resumablePair(t)
	cache.Remove(sess.ID)
	cliCfg := Config{Profile: ProfileUnix, Rand: prng.NewXorshift(91), Resume: sess}
	srvCfg := Config{Profile: ProfileUnix, ServerKey: serverKey(t),
		Rand: prng.NewXorshift(92), Cache: cache}
	cli, _ := handshakePair(t, cliCfg, srvCfg)
	if cli.Resumed() {
		t.Error("evicted session was resumed")
	}
}

func TestNoCacheNoSession(t *testing.T) {
	cliCfg, srvCfg := unixConfigs(t, 128, 128)
	cli, _ := handshakePair(t, cliCfg, srvCfg)
	if cli.Session() != nil {
		t.Error("session issued without a server cache")
	}
}

func TestSessionCacheEviction(t *testing.T) {
	c := NewSessionCache(2)
	mk := func(b byte) [SessionIDLen]byte {
		var id [SessionIDLen]byte
		id[0] = b
		return id
	}
	c.put(mk(1), []byte("m1"))
	c.put(mk(2), []byte("m2"))
	c.put(mk(3), []byte("m3")) // evicts 1
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	if _, ok := c.get(mk(1)); ok {
		t.Error("oldest session not evicted")
	}
	if m, ok := c.get(mk(3)); !ok || string(m) != "m3" {
		t.Error("newest session missing")
	}
	// Updating an existing id must not evict.
	c.put(mk(2), []byte("m2b"))
	if c.Len() != 2 {
		t.Errorf("len after update = %d", c.Len())
	}
	if m, _ := c.get(mk(2)); string(m) != "m2b" {
		t.Error("update lost")
	}
}

// TestE9ResumptionSpeedsUpHandshake measures the Goldberg et al.
// mechanism the paper cites: resumed handshakes skip the RSA operation
// and should be dramatically cheaper.
func TestE9ResumptionSpeedsUpHandshake(t *testing.T) {
	cache := NewSessionCache(16)
	key := serverKey(t)

	doHandshake := func(resume *Session, seed uint64) (*Conn, time.Duration) {
		ct, st := pipePair()
		type res struct {
			c   *Conn
			err error
		}
		srvCh := make(chan res, 1)
		go func() {
			c, err := BindServer(st, Config{Profile: ProfileUnix, ServerKey: key,
				Rand: prng.NewXorshift(seed + 1), Cache: cache})
			srvCh <- res{c, err}
		}()
		start := time.Now()
		cli, err := BindClient(ct, Config{Profile: ProfileUnix,
			Rand: prng.NewXorshift(seed), Resume: resume})
		elapsed := time.Since(start)
		if err != nil {
			t.Fatal(err)
		}
		if r := <-srvCh; r.err != nil {
			t.Fatal(r.err)
		}
		return cli, elapsed
	}

	cli, fullTime := doHandshake(nil, 100)
	sess := cli.Session()
	if sess == nil {
		t.Fatal("no session")
	}
	// Average a few resumed handshakes.
	var resumedTotal time.Duration
	const n = 5
	for i := 0; i < n; i++ {
		rc, d := doHandshake(sess, uint64(200+i))
		if !rc.Resumed() {
			t.Fatal("handshake not resumed")
		}
		resumedTotal += d
	}
	resumedAvg := resumedTotal / n
	t.Logf("E9: full handshake %v, resumed %v (%.1fx faster)",
		fullTime, resumedAvg, float64(fullTime)/float64(resumedAvg))
	if resumedAvg >= fullTime {
		t.Errorf("resumption not faster: full=%v resumed=%v", fullTime, resumedAvg)
	}
}
