package issl

import (
	"sync"

	"repro/internal/crypto/rsa"
	"repro/internal/telemetry"
)

// SignPool runs RSA private-key operations (the KeyExchange decrypt of
// a full handshake, and raw signing) on a bounded worker pool instead
// of inline on each connection's goroutine. A cache-flush reconnect
// stampede lands N simultaneous full handshakes on the server; without
// the pool every one of them grinds its own CRT exponentiation wherever
// the scheduler put it, with it the private-key work is confined to a
// fixed set of workers sized to the cores the operator wants to spend
// on handshakes — the software shape of the Multi-Core SSL/TLS
// Security Processor's parallel-crypto-core tier.
//
// The Garner/CRT precompute inside rsa.PrivateKey is per-key and
// lazily built under a sync.Once, so all workers hammering one server
// key share a single precompute — submitting by *rsa.PrivateKey is
// what makes that sharing automatic.
//
// Queue discipline: the submit path tries a non-blocking enqueue
// first; when the queue is full it counts issl.signpool_queue_full and
// then blocks until a slot frees. Saturation therefore degrades to
// graceful queuing (callers wait their turn), never to an error — a
// stampede makes handshakes slower, not failed.
//
// A nil *SignPool is valid everywhere one is accepted and means "run
// the operation inline", so single-tenant callers pay nothing.
type SignPool struct {
	reqs    chan signReq
	wg      sync.WaitGroup
	mu      sync.RWMutex // guards closed vs in-flight submits
	closed  bool
	workers int

	ops       *telemetry.Counter
	queueFull *telemetry.Counter
	depth     *telemetry.Gauge
}

type signReq struct {
	op   func() ([]byte, error)
	done chan signResult
}

type signResult struct {
	out []byte
	err error
}

// NewSignPool starts workers goroutines consuming a queue of depth
// queueLen (both floored at 1) and registers issl.signpool_* telemetry
// on reg (nil-safe). Close releases the workers.
func NewSignPool(workers, queueLen int, reg *telemetry.Registry) *SignPool {
	if workers < 1 {
		workers = 1
	}
	if queueLen < 1 {
		queueLen = 1
	}
	p := &SignPool{
		reqs:      make(chan signReq, queueLen),
		workers:   workers,
		ops:       reg.Counter("issl.signpool_ops"),
		queueFull: reg.Counter("issl.signpool_queue_full"),
		depth:     reg.Gauge("issl.signpool_queue_depth"),
	}
	reg.Gauge("issl.signpool_workers").Set(int64(workers))
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *SignPool) worker() {
	defer p.wg.Done()
	for req := range p.reqs {
		p.depth.Add(-1)
		out, err := req.op()
		p.ops.Inc()
		req.done <- signResult{out, err}
	}
}

// Workers reports the pool's worker count (0 for a nil pool).
func (p *SignPool) Workers() int {
	if p == nil {
		return 0
	}
	return p.workers
}

// Close stops the workers after the queue drains. Operations submitted
// after Close run inline on the caller, so draining connections still
// finish their handshakes.
func (p *SignPool) Close() {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.reqs)
	p.mu.Unlock()
	p.wg.Wait()
}

// run executes op on the pool, blocking (gracefully, counted) when the
// queue is saturated. Nil and closed pools run op inline. The read
// lock spans the enqueue so Close cannot close the channel out from
// under a blocked submit; workers keep draining until the channel
// actually closes, so a blocked submit always completes.
func (p *SignPool) run(op func() ([]byte, error)) ([]byte, error) {
	if p == nil {
		return op()
	}
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return op()
	}
	req := signReq{op: op, done: make(chan signResult, 1)}
	select {
	case p.reqs <- req:
		p.depth.Add(1)
	default:
		p.queueFull.Inc()
		p.reqs <- req
		p.depth.Add(1)
	}
	p.mu.RUnlock()
	res := <-req.done
	return res.out, res.err
}

// Decrypt runs key.DecryptPKCS1(ct) on the pool.
func (p *SignPool) Decrypt(key *rsa.PrivateKey, ct []byte) ([]byte, error) {
	return p.run(func() ([]byte, error) { return key.DecryptPKCS1(ct) })
}

// Sign runs key.SignRaw(digest) on the pool.
func (p *SignPool) Sign(key *rsa.PrivateKey, digest []byte) ([]byte, error) {
	return p.run(func() ([]byte, error) { return key.SignRaw(digest) })
}
