package issl

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/crypto/prng"
	"repro/internal/telemetry"
)

// TestSignPoolDecrypt pins the pool against the inline path: same key,
// same ciphertext, same plaintext — and the ops counter / depth gauge
// agree with what ran.
func TestSignPoolDecrypt(t *testing.T) {
	key := serverKey(t)
	rng := prng.NewXorshift(0xDEC)
	ct, err := key.PublicKey.EncryptPKCS1(rng, []byte("pooled premaster"))
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	pool := NewSignPool(2, 4, reg)
	defer pool.Close()

	want, err := key.DecryptPKCS1(ct)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pool.Decrypt(key, ct)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("pool decrypt: %q %v, want %q", got, err, want)
	}
	if n := reg.Counter("issl.signpool_ops").Value(); n != 1 {
		t.Errorf("signpool_ops = %d, want 1", n)
	}
	if d := reg.Gauge("issl.signpool_queue_depth").Value(); d != 0 {
		t.Errorf("queue depth after drain = %d", d)
	}

	// A nil pool runs inline and stays nil-safe.
	var nilPool *SignPool
	got, err = nilPool.Decrypt(key, ct)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("nil pool decrypt: %q %v", got, err)
	}

	// Sign agrees with the inline signature too.
	digest := bytes.Repeat([]byte{0x5a}, 20)
	wantSig, err := key.SignRaw(digest)
	if err != nil {
		t.Fatal(err)
	}
	gotSig, err := pool.Sign(key, digest)
	if err != nil || !bytes.Equal(gotSig, wantSig) {
		t.Fatalf("pool sign mismatch: %v", err)
	}
}

// TestSignPoolSaturationQueues pins the ISSUE's queue discipline: a
// full queue means graceful queuing — every submission completes, none
// error — with issl.signpool_queue_full counting the overflow waits.
func TestSignPoolSaturationQueues(t *testing.T) {
	key := serverKey(t)
	rng := prng.NewXorshift(0x5A7)
	ct, err := key.PublicKey.EncryptPKCS1(rng, []byte("stampede premaster"))
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	// One worker, queue of one: any concurrency saturates instantly.
	pool := NewSignPool(1, 1, reg)
	defer pool.Close()

	// Pin the single worker on a gated op so the queue is provably full
	// when the decrypt barrage arrives (the real decrypt is now fast
	// enough to outrun goroutine spawn otherwise).
	gate := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		pool.run(func() ([]byte, error) {
			close(started)
			<-gate
			return nil, nil
		})
	}()
	<-started

	const n = 16
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := pool.Decrypt(key, ct)
			errs <- err
		}()
	}
	// Saturation is observable before release: the worker is pinned,
	// the one-slot buffer holds one request, the rest counted overflow.
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter("issl.signpool_queue_full").Value() < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("queue_full = %d before release, want %d",
				reg.Counter("issl.signpool_queue_full").Value(), n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("saturated pool returned error: %v", err)
		}
	}
	if ops := reg.Counter("issl.signpool_ops").Value(); ops != n+1 {
		t.Errorf("signpool_ops = %d, want %d", ops, n+1)
	}
	if full := reg.Counter("issl.signpool_queue_full").Value(); full == 0 {
		t.Error("signpool_queue_full = 0; expected overflow waits with 16 ops on a 1/1 pool")
	}
	if d := reg.Gauge("issl.signpool_queue_depth").Value(); d != 0 {
		t.Errorf("queue depth after drain = %d", d)
	}
}

// TestSignPoolCloseRunsInline: operations after Close still succeed
// (inline), so draining connections finish their handshakes.
func TestSignPoolCloseRunsInline(t *testing.T) {
	key := serverKey(t)
	rng := prng.NewXorshift(0xC10)
	ct, err := key.PublicKey.EncryptPKCS1(rng, []byte("late premaster"))
	if err != nil {
		t.Fatal(err)
	}
	pool := NewSignPool(1, 1, telemetry.NewRegistry())
	pool.Close()
	pool.Close() // idempotent
	if _, err := pool.Decrypt(key, ct); err != nil {
		t.Fatalf("decrypt after close: %v", err)
	}
}

// TestDialRetryTicketFallbackUnderSaturatedPool is the stampede
// degradation check from the ISSUE: a client whose sealed ticket the
// server rejects must degrade ticket→full within the attempt — counted
// by issl.resume_fallback — while the server's sign pool is saturated
// by a barrage of concurrent full handshakes. The saturated queue must
// slow the handshake, never fail it.
func TestDialRetryTicketFallbackUnderSaturatedPool(t *testing.T) {
	key := serverKey(t)
	mkStore := func(material byte) *TicketKeyStore {
		s, err := NewTicketKeyStore(bytes.Repeat([]byte{material}, 32), time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	reg := telemetry.NewRegistry()
	// One worker, queue of one: the stampede below keeps it pegged.
	pool := NewSignPool(1, 1, reg)
	defer pool.Close()

	serve := func(tkts *TicketKeyStore, seed uint64, tr net.Conn) {
		cfg := Config{Profile: ProfileUnix, ServerKey: key,
			Rand: prng.NewXorshift(seed), TicketKeys: tkts,
			SignPool: pool, Metrics: reg}
		go func() {
			conn, err := BindServer(tr, cfg)
			if err != nil {
				tr.Close()
				return
			}
			buf := make([]byte, 1024)
			for {
				n, err := conn.Read(buf)
				if n > 0 {
					conn.Write(buf[:n])
				}
				if err != nil {
					tr.Close()
					return
				}
			}
		}()
	}

	// Epoch 1: earn a ticket.
	oldStore := mkStore(0x11)
	seed := uint64(9000)
	dialTo := func(tkts *TicketKeyStore) func() (io.ReadWriteCloser, error) {
		return func() (io.ReadWriteCloser, error) {
			ct, st := net.Pipe()
			seed++
			serve(tkts, seed, st)
			return ct, nil
		}
	}
	d := &Dialer{
		Dial:   dialTo(oldStore),
		Config: Config{Profile: ProfileUnix, Rand: prng.NewXorshift(77), Metrics: reg},
		Sleep:  func(time.Duration) {},
	}
	c1, tr1, err := d.DialWithRetry()
	if err != nil {
		t.Fatalf("first dial: %v", err)
	}
	c1.Close()
	tr1.Close()
	if s := d.Session(); s == nil || len(s.Ticket) == 0 {
		t.Fatalf("no ticket after first handshake: %+v", d.Session())
	}

	// Stampede: concurrent full handshakes through the same pool keep
	// the single worker busy while the fallback client runs.
	stop := make(chan struct{})
	var stampede sync.WaitGroup
	for i := 0; i < 4; i++ {
		stampede.Add(1)
		go func(i int) {
			defer stampede.Done()
			rng := prng.NewXorshift(uint64(0xF00 + i))
			for {
				select {
				case <-stop:
					return
				default:
				}
				ct, st := net.Pipe()
				serve(mkStore(0x22), uint64(7000+i), st)
				cli := Config{Profile: ProfileUnix, Rand: rng, Metrics: reg}
				if conn, err := BindClient(ct, cli); err == nil {
					conn.Close()
				}
				ct.Close()
			}
		}(i)
	}

	// Epoch 2: the server's ticket keys changed; the offered ticket is
	// rejected and the same attempt completes a full handshake.
	d.Dial = dialTo(mkStore(0x22))
	before := reg.Counter("issl.resume_fallback").Value()
	c2, tr2, err := d.DialWithRetry()
	close(stop)
	stampede.Wait()
	if err != nil {
		t.Fatalf("fallback dial under saturated pool: %v", err)
	}
	defer tr2.Close()
	defer c2.Close()
	if c2.Resumed() {
		t.Error("connection resumed on a ticket the server should reject")
	}
	st := d.Stats()
	if st.ResumeFallbacks == 0 {
		t.Errorf("ResumeFallbacks = 0, want >= 1: %+v", st)
	}
	if after := reg.Counter("issl.resume_fallback").Value(); after <= before {
		t.Errorf("issl.resume_fallback did not increment (%d -> %d)", before, after)
	}
	if rej := reg.Counter("issl.tickets_rejected").Value(); rej == 0 {
		t.Error("tickets_rejected = 0, want >= 1")
	}
	// Echo proof: the degraded connection carries data byte-exactly.
	msg := []byte("degraded but alive")
	if _, err := c2.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := c2.Read(buf)
	if err != nil || !bytes.Equal(buf[:n], msg) {
		t.Fatalf("echo = %q, %v", buf[:n], err)
	}
}
