package issl

import "repro/internal/telemetry"

// connMetrics caches the registry handles a Conn updates. Resolved
// once in newConn against Config.Metrics; every handle is nil-safe, so
// the record and handshake paths update them unconditionally.
type connMetrics struct {
	handshakesFull    *telemetry.Counter
	handshakesResumed *telemetry.Counter
	handshakesFailed  *telemetry.Counter
	alertsSent        *telemetry.Counter
	alertsRecv        *telemetry.Counter
	recordsIn         *telemetry.Counter
	recordsOut        *telemetry.Counter
	bytesIn           *telemetry.Counter
	bytesOut          *telemetry.Counter
	ticketsIssued     *telemetry.Counter
	ticketsResumed    *telemetry.Counter
	ticketsRejected   *telemetry.Counter
}

func newConnMetrics(reg *telemetry.Registry) connMetrics {
	return connMetrics{
		handshakesFull:    reg.Counter("issl.handshakes_full"),
		handshakesResumed: reg.Counter("issl.handshakes_resumed"),
		handshakesFailed:  reg.Counter("issl.handshakes_failed"),
		alertsSent:        reg.Counter("issl.alerts_sent"),
		alertsRecv:        reg.Counter("issl.alerts_recv"),
		recordsIn:         reg.Counter("issl.records_in"),
		recordsOut:        reg.Counter("issl.records_out"),
		bytesIn:           reg.Counter("issl.bytes_in"),
		bytesOut:          reg.Counter("issl.bytes_out"),
		ticketsIssued:     reg.Counter("issl.tickets_issued"),
		ticketsResumed:    reg.Counter("issl.tickets_resumed"),
		ticketsRejected:   reg.Counter("issl.tickets_rejected"),
	}
}

// emitPhase records the completion of one handshake phase with its
// duration on the trace clock and returns the reading that starts the
// next phase. The phase sequence is the handshake's observable shape:
// hello -> key_exchange -> finished on a full handshake, with
// key_exchange absent when the session was resumed.
func (c *Conn) emitPhase(role, phase string, resumed bool, start uint64) uint64 {
	tr := c.cfg.Trace
	now := tr.Now()
	tr.Emit("issl", "hs.phase",
		"role", role, "phase", phase, "resumed", resumed, "dur_ns", now-start)
	return now
}
