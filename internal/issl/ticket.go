package issl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/crypto/aes"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/sha1"
)

// Sealed session tickets: stateless resumption for a redirector fleet.
//
// The shared SessionCache gives one process cheap resumption, but it is
// the one piece of per-node state a multi-instance service cannot
// share: kill the node and its cache — and every client pinned to it —
// dies with it. A sealed ticket moves that state to the client: the
// server seals the negotiated master secret under a cluster-shared
// ticket key and hands the opaque blob back; any instance holding the
// key opens it and resumes the session without ever having seen the
// client before. The construction is the classic encrypt-then-MAC
// self-ticket (RFC 5077's shape, built from this repo's own kernels):
//
//	ticket = version(1) keyID(4) iv(16) ct(16k) mac(20)
//	state  = expiry_unix_sec(8 BE) masterLen(1) master
//	ct     = AES-128-CBC(encKey, iv, pad(state))       (PKCS#7)
//	mac    = HMAC-SHA1(macKey, version||keyID||iv||ct) (full 20 bytes)
//
// with per-purpose keys derived from the cluster-shared key material:
//
//	encKey = HMAC-SHA1(material, "ticket enc")[:16]
//	macKey = HMAC-SHA1(material, "ticket mac")
//	keyID  = HMAC-SHA1(material, "ticket id")[:4]
//
// keyID names the sealing key on the wire so rotation is cheap: Rotate
// installs fresh material while old keys stay openable for a bounded
// acceptance window, after which their tickets are rejected and the
// client degrades to a full handshake (never to an error — see
// Dialer.DialWithRetry).

// TicketVersion is the sealed-ticket wire format version this code
// mints and the only one it accepts.
const TicketVersion = 0x01

// ticket geometry.
const (
	ticketKeyIDLen  = 4
	ticketIVLen     = 16
	ticketMACLen    = sha1.Size
	ticketHeaderLen = 1 + ticketKeyIDLen // version || keyID
	// ticketStateLen is the fixed plaintext length before padding:
	// expiry(8) masterLen(1) master(20; sha1.HMAC output).
	ticketMasterLen = sha1.Size
	ticketStateLen  = 8 + 1 + ticketMasterLen
	// MaxTicketLen bounds a ticket a handshake will carry; anything
	// larger is a malformed hello, not a ticket.
	MaxTicketLen = 256
)

// DefaultTicketLifetime is how long a minted ticket resumes when the
// store's lifetime is left zero.
const DefaultTicketLifetime = time.Hour

// Ticket rejection reasons, all wrapped in ErrTicket so callers can
// treat "any rejection" uniformly (the handshake degrades to full).
var (
	ErrTicket        = errors.New("issl: ticket rejected")
	ErrTicketFormat  = fmt.Errorf("%w: malformed", ErrTicket)
	ErrTicketVersion = fmt.Errorf("%w: unknown version", ErrTicket)
	ErrTicketKey     = fmt.Errorf("%w: unknown or retired key", ErrTicket)
	ErrTicketMAC     = fmt.Errorf("%w: authentication failed", ErrTicket)
	ErrTicketExpired = fmt.Errorf("%w: expired", ErrTicket)
)

// ticketKey is one derived sealing key. retireAt is the end of its
// acceptance window: zero for the current key, set when rotated out.
type ticketKey struct {
	id       [ticketKeyIDLen]byte
	enc      *aes.Cipher
	mac      []byte
	retireAt time.Time
}

func deriveTicketKey(material []byte) (ticketKey, error) {
	encFull := sha1.HMAC(material, []byte("ticket enc"))
	macFull := sha1.HMAC(material, []byte("ticket mac"))
	idFull := sha1.HMAC(material, []byte("ticket id"))
	c, err := aes.New(encFull[:16], 16)
	if err != nil {
		return ticketKey{}, err
	}
	k := ticketKey{enc: c, mac: macFull[:]}
	copy(k.id[:], idFull[:ticketKeyIDLen])
	return k, nil
}

// TicketKeyStore mints and opens sealed session tickets under a
// cluster-shared key, with rotation and a bounded old-key acceptance
// window. Every redirector instance in a cluster holds the same store
// (or one built from the same material), which is exactly what makes
// any-instance resumption work. Safe for concurrent use.
type TicketKeyStore struct {
	mu       sync.Mutex
	keys     []ticketKey // keys[0] is the minting key
	lifetime time.Duration
	now      func() time.Time
	rng      *prng.Xorshift // IV source
}

// NewTicketKeyStore derives the sealing keys from the shared material
// (any non-empty byte string; distribute it like the PSK). lifetime
// bounds minted tickets (0 = DefaultTicketLifetime).
func NewTicketKeyStore(material []byte, lifetime time.Duration) (*TicketKeyStore, error) {
	if len(material) == 0 {
		return nil, fmt.Errorf("%w: empty ticket key material", ErrConfig)
	}
	if lifetime <= 0 {
		lifetime = DefaultTicketLifetime
	}
	k, err := deriveTicketKey(material)
	if err != nil {
		return nil, err
	}
	seed := binary.BigEndian.Uint64(k.mac[:8])
	return &TicketKeyStore{
		keys:     []ticketKey{k},
		lifetime: lifetime,
		now:      time.Now,
		rng:      prng.NewXorshift(seed | 1),
	}, nil
}

// SetNow overrides the store's clock (tests, and the conformance
// harness, which needs a pinned expiry).
func (s *TicketKeyStore) SetNow(now func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = now
}

// SetRand overrides the IV source with a deterministic PRNG so two
// stores built alike mint byte-identical tickets (the conformance
// check diffs on exactly that).
func (s *TicketKeyStore) SetRand(rng *prng.Xorshift) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rng = rng
}

// Lifetime returns the minting lifetime.
func (s *TicketKeyStore) Lifetime() time.Duration { return s.lifetime }

// Rotate installs fresh key material for minting. Tickets sealed under
// the previous keys stay acceptable for acceptOld (0 = rejected
// immediately); past the window they are rejected like any unknown
// key and the client falls back to a full handshake.
func (s *TicketKeyStore) Rotate(material []byte, acceptOld time.Duration) error {
	k, err := deriveTicketKey(material)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	retire := s.now().Add(acceptOld)
	for i := range s.keys {
		if s.keys[i].retireAt.IsZero() || s.keys[i].retireAt.After(retire) {
			s.keys[i].retireAt = retire
		}
	}
	s.keys = append([]ticketKey{k}, s.keys...)
	// Drop keys that can no longer open anything a live client holds:
	// retired longer ago than any unexpired ticket could have been
	// minted before.
	cut := s.now().Add(-s.lifetime)
	kept := s.keys[:0]
	for _, old := range s.keys {
		if old.retireAt.IsZero() || old.retireAt.After(cut) {
			kept = append(kept, old)
		}
	}
	s.keys = kept
	return nil
}

// Seal mints a ticket over the master secret, expiring Lifetime from
// now under the current key.
func (s *TicketKeyStore) Seal(master []byte) ([]byte, error) {
	if len(master) != ticketMasterLen {
		return nil, fmt.Errorf("%w: master length %d", ErrTicketFormat, len(master))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	k := &s.keys[0]
	expiry := s.now().Add(s.lifetime)

	var state [ticketStateLen]byte
	binary.BigEndian.PutUint64(state[:8], uint64(expiry.Unix()))
	state[8] = ticketMasterLen
	copy(state[9:], master)

	padded := k.enc.Pad(state[:])
	t := make([]byte, 0, ticketHeaderLen+ticketIVLen+len(padded)+ticketMACLen)
	t = append(t, TicketVersion)
	t = append(t, k.id[:]...)
	iv := make([]byte, ticketIVLen)
	s.rng.Fill(iv)
	t = append(t, iv...)
	if err := k.enc.EncryptCBCInPlace(iv, padded); err != nil {
		return nil, err
	}
	t = append(t, padded...)
	mac := sha1.HMAC(k.mac, t)
	t = append(t, mac[:]...)
	return t, nil
}

// Open verifies and decrypts a ticket, returning the sealed master
// secret. Every failure is a typed wrap of ErrTicket; none panic on
// attacker-shaped input — the handshake's answer to any of them is a
// full handshake, not an error to the client.
func (s *TicketKeyStore) Open(t []byte) ([]byte, error) {
	if len(t) < ticketHeaderLen+ticketIVLen+16+ticketMACLen || len(t) > MaxTicketLen {
		return nil, fmt.Errorf("%w: length %d", ErrTicketFormat, len(t))
	}
	if t[0] != TicketVersion {
		return nil, fmt.Errorf("%w: %#x", ErrTicketVersion, t[0])
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	var k *ticketKey
	for i := range s.keys {
		if constEq(s.keys[i].id[:], t[1:1+ticketKeyIDLen]) {
			k = &s.keys[i]
			break
		}
	}
	if k == nil {
		return nil, ErrTicketKey
	}
	if !k.retireAt.IsZero() && now.After(k.retireAt) {
		return nil, fmt.Errorf("%w: acceptance window closed", ErrTicketKey)
	}
	body, mac := t[:len(t)-ticketMACLen], t[len(t)-ticketMACLen:]
	want := sha1.HMAC(k.mac, body)
	if !constEq(mac, want[:]) {
		return nil, ErrTicketMAC
	}
	ct := body[ticketHeaderLen+ticketIVLen:]
	if len(ct)%16 != 0 {
		return nil, fmt.Errorf("%w: ciphertext length %d", ErrTicketFormat, len(ct))
	}
	iv := append([]byte(nil), body[ticketHeaderLen:ticketHeaderLen+ticketIVLen]...)
	buf := append([]byte(nil), ct...)
	if err := k.enc.DecryptCBCInPlace(iv, buf); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTicketFormat, err)
	}
	state, err := k.enc.Unpad(buf)
	if err != nil {
		return nil, fmt.Errorf("%w: padding", ErrTicketFormat)
	}
	if len(state) != ticketStateLen || state[8] != ticketMasterLen {
		return nil, fmt.Errorf("%w: state length %d", ErrTicketFormat, len(state))
	}
	expiry := time.Unix(int64(binary.BigEndian.Uint64(state[:8])), 0)
	// Boundary: a ticket is good through its expiry second inclusive —
	// rejected only when now is strictly after it.
	if now.After(expiry) {
		return nil, fmt.Errorf("%w: at %d, now %d", ErrTicketExpired, expiry.Unix(), now.Unix())
	}
	return append([]byte(nil), state[9:9+ticketMasterLen]...), nil
}
