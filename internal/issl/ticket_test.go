package issl

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/crypto/prng"
	"repro/internal/telemetry"
)

// fixedNow pins a store's clock to a settable instant.
type fixedNow struct{ t time.Time }

func (f *fixedNow) now() time.Time { return f.t }

func testStore(t *testing.T, lifetime time.Duration) (*TicketKeyStore, *fixedNow) {
	t.Helper()
	s, err := NewTicketKeyStore([]byte("cluster ticket key material"), lifetime)
	if err != nil {
		t.Fatal(err)
	}
	fn := &fixedNow{t: time.Unix(1_000_000, 0)}
	s.SetNow(fn.now)
	return s, fn
}

func testMaster() []byte {
	m := make([]byte, 20)
	for i := range m {
		m[i] = byte(i*37 + 5)
	}
	return m
}

func TestTicketSealOpenRoundTrip(t *testing.T) {
	s, _ := testStore(t, time.Hour)
	master := testMaster()
	tkt, err := s.Seal(master)
	if err != nil {
		t.Fatal(err)
	}
	if tkt[0] != TicketVersion {
		t.Errorf("version byte = %#x", tkt[0])
	}
	if len(tkt) > MaxTicketLen {
		t.Errorf("ticket length %d exceeds MaxTicketLen", len(tkt))
	}
	got, err := s.Open(tkt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if !bytes.Equal(got, master) {
		t.Errorf("opened master %x, want %x", got, master)
	}
	// A second store built from the same material opens it too — the
	// any-instance property the cluster depends on.
	s2, err := NewTicketKeyStore([]byte("cluster ticket key material"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	s2.SetNow(func() time.Time { return time.Unix(1_000_000, 0) })
	if got, err := s2.Open(tkt); err != nil || !bytes.Equal(got, master) {
		t.Errorf("sibling store Open = %x, %v", got, err)
	}
	// A store with different material must not.
	s3, err := NewTicketKeyStore([]byte("some other key"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s3.Open(tkt); !errors.Is(err, ErrTicketKey) {
		t.Errorf("foreign store Open err = %v, want ErrTicketKey", err)
	}
}

func TestTicketExpiryBoundary(t *testing.T) {
	s, fn := testStore(t, time.Hour)
	tkt, err := s.Seal(testMaster())
	if err != nil {
		t.Fatal(err)
	}
	// Good through the expiry instant inclusive…
	fn.t = fn.t.Add(time.Hour)
	if _, err := s.Open(tkt); err != nil {
		t.Errorf("Open at expiry = %v, want ok", err)
	}
	// …rejected one second past it.
	fn.t = fn.t.Add(time.Second)
	if _, err := s.Open(tkt); !errors.Is(err, ErrTicketExpired) {
		t.Errorf("Open past expiry = %v, want ErrTicketExpired", err)
	}
	if _, err := s.Open(tkt); !errors.Is(err, ErrTicket) {
		t.Errorf("expiry rejection does not wrap ErrTicket")
	}
}

func TestTicketKeyRotationWindow(t *testing.T) {
	s, fn := testStore(t, time.Hour)
	old, err := s.Seal(testMaster())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Rotate([]byte("second generation"), 10*time.Minute); err != nil {
		t.Fatal(err)
	}
	// Within the acceptance window the retired key still opens.
	fn.t = fn.t.Add(5 * time.Minute)
	if got, err := s.Open(old); err != nil || !bytes.Equal(got, testMaster()) {
		t.Errorf("old-key Open inside window = %x, %v", got, err)
	}
	// New tickets mint under the new key and are distinct on the wire.
	fresh, err := s.Seal(testMaster())
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(fresh[1:1+ticketKeyIDLen], old[1:1+ticketKeyIDLen]) {
		t.Error("rotation did not change the minting key ID")
	}
	// Past the window the old ticket is rejected — with the key error,
	// not a panic or a MAC error.
	fn.t = fn.t.Add(6 * time.Minute)
	if _, err := s.Open(old); !errors.Is(err, ErrTicketKey) {
		t.Errorf("old-key Open past window = %v, want ErrTicketKey", err)
	}
	if got, err := s.Open(fresh); err != nil || !bytes.Equal(got, testMaster()) {
		t.Errorf("fresh Open after window = %x, %v", got, err)
	}
}

func TestTicketTamperRejected(t *testing.T) {
	s, _ := testStore(t, time.Hour)
	tkt, err := s.Seal(testMaster())
	if err != nil {
		t.Fatal(err)
	}
	// Flip every byte position in turn: every mutation must be
	// rejected cleanly (version, key ID, IV, ciphertext, MAC — each
	// lands in a different check) and none may panic.
	for i := range tkt {
		mut := append([]byte(nil), tkt...)
		mut[i] ^= 0x80
		if _, err := s.Open(mut); !errors.Is(err, ErrTicket) {
			t.Fatalf("byte %d flip: err = %v, want ErrTicket wrap", i, err)
		}
	}
	// Truncations and garbage.
	for _, bad := range [][]byte{nil, {}, tkt[:10], tkt[:len(tkt)-1], bytes.Repeat([]byte{0x41}, 300)} {
		if _, err := s.Open(bad); !errors.Is(err, ErrTicket) {
			t.Fatalf("malformed %d bytes: err = %v, want ErrTicket wrap", len(bad), err)
		}
	}
}

func TestTicketFutureVersionRejected(t *testing.T) {
	s, _ := testStore(t, time.Hour)
	tkt, err := s.Seal(testMaster())
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), tkt...)
	mut[0] = TicketVersion + 1
	if _, err := s.Open(mut); !errors.Is(err, ErrTicketVersion) {
		t.Errorf("future version err = %v, want ErrTicketVersion", err)
	}
}

// ticketEchoServer runs server handshakes with a ticket store (and an
// optional per-instance cache) on every transport delivered on ch.
func ticketEchoServer(t *testing.T, ch <-chan net.Conn, store *TicketKeyStore,
	cache *SessionCache, psk []byte, reg *telemetry.Registry) {
	t.Helper()
	seed := uint64(4000)
	go func() {
		for tr := range ch {
			seed++
			cfg := Config{Profile: ProfileEmbedded, PSK: psk,
				Rand: prng.NewXorshift(seed), Cache: cache,
				TicketKeys: store, Metrics: reg}
			go func(tr net.Conn) {
				conn, err := BindServer(tr, cfg)
				if err != nil {
					tr.Close()
					return
				}
				buf := make([]byte, 4096)
				for {
					n, err := conn.Read(buf)
					if n > 0 {
						conn.Write(buf[:n])
					}
					if err != nil {
						tr.Close()
						return
					}
				}
			}(tr)
		}
	}()
}

// TestTicketResumptionAcrossInstances is the tentpole property in
// miniature: a session earned on instance A resumes on instance B —
// which shares only the ticket key material, never the session cache.
func TestTicketResumptionAcrossInstances(t *testing.T) {
	psk := []byte("ticket-psk")
	material := []byte("shared fleet ticket key")
	storeA, err := NewTicketKeyStore(material, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	storeB, err := NewTicketKeyStore(material, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	regA, regB := telemetry.NewRegistry(), telemetry.NewRegistry()
	chA := make(chan net.Conn, 4)
	chB := make(chan net.Conn, 4)
	ticketEchoServer(t, chA, storeA, NewSessionCache(4), psk, regA)
	ticketEchoServer(t, chB, storeB, NewSessionCache(4), psk, regB)

	dialTo := func(ch chan net.Conn) func() (io.ReadWriteCloser, error) {
		return func() (io.ReadWriteCloser, error) {
			ct, st := net.Pipe()
			ch <- st
			return ct, nil
		}
	}
	d := &Dialer{
		Dial:   dialTo(chA),
		Config: Config{Profile: ProfileEmbedded, PSK: psk, Rand: prng.NewXorshift(11)},
		Sleep:  func(time.Duration) {},
	}
	c1, tr1, err := d.DialWithRetry()
	if err != nil {
		t.Fatal(err)
	}
	if c1.Resumed() {
		t.Error("first connection claims resumption")
	}
	sess := d.Session()
	if sess == nil || len(sess.Ticket) == 0 {
		t.Fatalf("no ticket after full handshake: %+v", sess)
	}
	c1.Close()
	tr1.Close()
	if v := regA.Counter("issl.tickets_issued").Value(); v != 1 {
		t.Errorf("instance A tickets_issued = %d, want 1", v)
	}

	// Instance B has never seen this client; the ticket alone resumes.
	d.Dial = dialTo(chB)
	c2, tr2, err := d.DialWithRetry()
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	defer c2.Close()
	if !c2.Resumed() {
		t.Fatal("ticket did not resume on a sibling instance")
	}
	if v := regB.Counter("issl.tickets_resumed").Value(); v != 1 {
		t.Errorf("instance B tickets_resumed = %d, want 1", v)
	}
	if st := d.Stats(); st.Resumptions != 1 || st.ResumeFallbacks != 0 {
		t.Errorf("stats = %+v", st)
	}
	// The reissued ticket keeps the chain alive.
	if s := d.Session(); s == nil || len(s.Ticket) == 0 {
		t.Error("resumption did not refresh the ticket")
	}
}

// TestDialTicketRejectionFallsBackSameAttempt: a stale (expired)
// ticket must cost zero retry slots — the server declines, the same
// connection completes a full handshake, and resume_fallback counts it.
func TestDialTicketRejectionFallsBackSameAttempt(t *testing.T) {
	psk := []byte("stale-psk")
	store, fn := testStore(t, time.Minute)
	reg := telemetry.NewRegistry()
	creg := telemetry.NewRegistry()
	ch := make(chan net.Conn, 4)
	ticketEchoServer(t, ch, store, nil, psk, reg)

	d := &Dialer{
		Dial: func() (io.ReadWriteCloser, error) {
			ct, st := net.Pipe()
			ch <- st
			return ct, nil
		},
		Config: Config{Profile: ProfileEmbedded, PSK: psk,
			Rand: prng.NewXorshift(13), Metrics: creg},
		Sleep: func(d time.Duration) { t.Errorf("slept %v; fallback must not back off", d) },
	}
	c1, tr1, err := d.DialWithRetry()
	if err != nil {
		t.Fatal(err)
	}
	c1.Close()
	tr1.Close()
	if s := d.Session(); s == nil || len(s.Ticket) == 0 {
		t.Fatal("no ticket earned")
	}

	// The ticket expires before the client returns.
	fn.t = fn.t.Add(2 * time.Minute)
	c2, tr2, err := d.DialWithRetry()
	if err != nil {
		t.Fatalf("dial with stale ticket: %v", err)
	}
	defer tr2.Close()
	defer c2.Close()
	if c2.Resumed() {
		t.Error("resumed on an expired ticket")
	}
	st := d.Stats()
	if st.Attempts != 2 {
		t.Errorf("attempts = %d, want 2 (fallback must not consume a retry slot)", st.Attempts)
	}
	if st.ResumeFallbacks != 1 || st.FullHandshakes != 2 {
		t.Errorf("stats = %+v", st)
	}
	if v := creg.Counter("issl.resume_fallback").Value(); v != 1 {
		t.Errorf("resume_fallback counter = %d, want 1", v)
	}
	if v := reg.Counter("issl.tickets_rejected").Value(); v != 1 {
		t.Errorf("server tickets_rejected = %d, want 1", v)
	}
	// The fallback handshake re-earned a fresh ticket.
	if s := d.Session(); s == nil || len(s.Ticket) == 0 {
		t.Error("fallback did not refresh the ticket")
	}
}
