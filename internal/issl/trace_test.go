package issl

import (
	"testing"

	"repro/internal/crypto/prng"
	"repro/internal/telemetry"
)

// phaseSeq extracts the hs.phase names emitted for one role, in order,
// along with the resumed flag each carried.
func phaseSeq(t *testing.T, tr *telemetry.Trace, role string) (phases []string, resumed []bool) {
	t.Helper()
	for _, ev := range tr.Events() {
		if ev.Layer != "issl" || ev.Name != "hs.phase" {
			continue
		}
		var evRole, phase string
		var res bool
		for _, a := range ev.Attrs {
			switch a.Key {
			case "role":
				evRole, _ = a.Value.(string)
			case "phase":
				phase, _ = a.Value.(string)
			case "resumed":
				res, _ = a.Value.(bool)
			case "dur_ns":
				if _, ok := a.Value.(uint64); !ok {
					t.Errorf("dur_ns attr is %T, want uint64", a.Value)
				}
			}
		}
		if evRole == role {
			phases = append(phases, phase)
			resumed = append(resumed, res)
		}
	}
	return phases, resumed
}

func wantPhases(t *testing.T, tr *telemetry.Trace, role string, want []string, wantResumed bool) {
	t.Helper()
	phases, resumed := phaseSeq(t, tr, role)
	if len(phases) != len(want) {
		t.Fatalf("%s phases = %v, want %v", role, phases, want)
	}
	for i := range want {
		if phases[i] != want[i] {
			t.Fatalf("%s phases = %v, want %v", role, phases, want)
		}
		if resumed[i] != wantResumed {
			t.Errorf("%s phase %s resumed=%v, want %v", role, phases[i], resumed[i], wantResumed)
		}
	}
}

// TestHandshakePhaseTrace pins the observable shape of the handshake:
// a full handshake traces hello -> key_exchange -> finished on both
// roles; an abbreviated (resumed) handshake traces hello -> finished
// with no key_exchange, every event flagged resumed.
func TestHandshakePhaseTrace(t *testing.T) {
	cache := NewSessionCache(16)

	// Full handshake, separate traces per role so sequences are clean.
	cliTr, srvTr := telemetry.NewTrace(64), telemetry.NewTrace(64)
	cliCfg := Config{Profile: ProfileUnix, Rand: prng.NewXorshift(501), Trace: cliTr}
	srvCfg := Config{Profile: ProfileUnix, ServerKey: serverKey(t),
		Rand: prng.NewXorshift(502), Cache: cache, Trace: srvTr}
	cli, srv := handshakePair(t, cliCfg, srvCfg)
	if cli.Resumed() || srv.Resumed() {
		t.Fatal("first handshake unexpectedly resumed")
	}
	full := []string{"hello", "key_exchange", "finished"}
	wantPhases(t, cliTr, "client", full, false)
	wantPhases(t, srvTr, "server", full, false)

	// Abbreviated handshake resuming the session just established.
	cliTr2, srvTr2 := telemetry.NewTrace(64), telemetry.NewTrace(64)
	cliCfg2 := Config{Profile: ProfileUnix, Rand: prng.NewXorshift(503),
		Resume: cli.Session(), Trace: cliTr2}
	srvCfg2 := Config{Profile: ProfileUnix, ServerKey: serverKey(t),
		Rand: prng.NewXorshift(504), Cache: cache, Trace: srvTr2}
	cli2, srv2 := handshakePair(t, cliCfg2, srvCfg2)
	if !cli2.Resumed() || !srv2.Resumed() {
		t.Fatalf("resumed: client=%v server=%v, want both", cli2.Resumed(), srv2.Resumed())
	}
	abbreviated := []string{"hello", "finished"}
	wantPhases(t, cliTr2, "client", abbreviated, true)
	wantPhases(t, srvTr2, "server", abbreviated, true)
}

// TestHandshakeCounters checks the full/resumed counters and the
// record/byte mirrors land on the configured registry.
func TestHandshakeCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	psk := []byte("rmc2000-preshared-master-secret!")
	cliCfg := Config{Profile: ProfileEmbedded, PSK: psk,
		Rand: prng.NewXorshift(601), Metrics: reg}
	srvCfg := Config{Profile: ProfileEmbedded, PSK: psk,
		Rand: prng.NewXorshift(602), Metrics: reg}
	cli, srv := handshakePair(t, cliCfg, srvCfg)

	// Both endpoints share the registry: two full handshakes completed.
	if got := reg.Counter("issl.handshakes_full").Value(); got != 2 {
		t.Errorf("handshakes_full = %d, want 2", got)
	}
	if got := reg.Counter("issl.handshakes_resumed").Value(); got != 0 {
		t.Errorf("handshakes_resumed = %d, want 0", got)
	}

	msg := []byte("counter check payload")
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 64)
		srv.Read(buf)
	}()
	if _, err := cli.Write(msg); err != nil {
		t.Fatal(err)
	}
	<-done
	if got := reg.Counter("issl.bytes_out").Value(); got != uint64(len(msg)) {
		t.Errorf("bytes_out = %d, want %d", got, len(msg))
	}
	if got := reg.Counter("issl.bytes_in").Value(); got != uint64(len(msg)) {
		t.Errorf("bytes_in = %d, want %d", got, len(msg))
	}
	if got := reg.Counter("issl.records_out").Value(); got != 1 {
		t.Errorf("records_out = %d, want 1", got)
	}
}
