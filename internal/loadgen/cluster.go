package loadgen

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/rsa"
	"repro/internal/netsim"
	"repro/internal/tcpip"
)

// Cluster mode: the same client fleet, but the service side is N
// redirector instances behind the L4 balancer at the address the
// single redirector used to hold — plus, optionally, the node-kill
// chaos plan (KillAfter/RestartAfter) running against it mid-load.
// Sealed tickets (cluster-shared key material derived from the run
// seed) are what let a client bounced off its instance resume on a
// sibling instead of paying a full handshake.

// runRealCluster is runReal's fleet-mode tail: hub, cli and back are
// already up (owned and closed by the caller); the backend echo
// service is listening.
func runRealCluster(cfg *Config, p *plan, hub *netsim.Hub, cli, back *tcpip.Stack) (*MeasuredReport, error) {
	ccfg := cluster.Config{
		Nodes:            cfg.Instances,
		ListenPort:       redirectorPort,
		NodePort:         redirectorPort,
		Target:           back.Addr(),
		TargetPort:       backendPort,
		Secure:           !cfg.Plain,
		TicketMaterial:   []byte(fmt.Sprintf("loadgen ticket material %d", cfg.Seed)),
		SessionCacheSize: cfg.CacheSessions,
		MaxInflight:      cfg.MaxInflight,
		SignWorkers:      cfg.SignWorkers,
		Policy:           cluster.PolicyByName(cfg.Policy),
		ForwardTimeout:   time.Second,
		RandSeed:         cfg.Seed ^ 0xC105FEED,
		Metrics:          cfg.Registry,
		Trace:            cfg.Trace,
		Log:              cfg.Log,
	}
	if !cfg.Plain {
		key, err := rsa.GenerateKey(prng.NewXorshift(cfg.Seed^0x4B455947454E), cfg.KeyBits)
		if err != nil {
			return nil, err
		}
		ccfg.ServerKey = key
	}
	cl, err := cluster.New(hub, ccfg)
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	ks := &killState{}
	if cfg.KillAfter > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-stop:
				return
			case <-time.After(cfg.KillAfter):
			}
			cl.KillNode(cfg.KillNode)
			ks.killedAt.Store(time.Now().UnixNano())
			if cfg.RestartAfter <= 0 {
				return
			}
			select {
			case <-stop:
				return
			case <-time.After(cfg.RestartAfter):
			}
			// Ignore a restart error: the run may already be tearing
			// down, and a kill-only report is still valid.
			_ = cl.RestartNode(cfg.KillNode)
		}()
	}

	fc, wall, wallHist := runFleet(cfg, cli, p, ks)

	// Per-instance breakdown, then fleet sums from it — every server
	// counter lives in an instance's private registry.
	m := &MeasuredReport{
		DurationNs:      uint64(wall.Nanoseconds()),
		Requests:        fc.ok.Load(),
		Errors:          fc.errs.Load(),
		EchoMismatches:  fc.mismatches.Load(),
		Retries:         fc.retries.Load(),
		ResumeFallbacks: fc.resumeFallbacks.Load(),
		BytesEchoed:     fc.bytes.Load(),
		DialAttempts:    fc.dialAttempts.Load(),
		DialFailures:    fc.dialFailures.Load(),
	}
	for i := 0; i < cl.Nodes(); i++ {
		reg := cl.NodeRegistry(i)
		c := func(name string) uint64 { return reg.Counter(name).Value() }
		inst := InstanceReport{
			Node:              i,
			Up:                cl.Balancer().NodeUp(i),
			Accepted:          c("redirector.accepted"),
			Refused:           c("redirector.refused"),
			AdmissionRefused:  c("redirector.refused_admission"),
			DrainedConns:      c("redirector.drained_conns"),
			HandshakesFull:    c("issl.handshakes_full"),
			HandshakesResumed: c("issl.handshakes_resumed"),
			HandshakesFailed:  c("issl.handshakes_failed"),
			TicketsIssued:     c("issl.tickets_issued"),
			TicketsResumed:    c("issl.tickets_resumed"),
			TicketsRejected:   c("issl.tickets_rejected"),
			BytesForward:      c("redirector.bytes_forward"),
			BytesBackward:     c("redirector.bytes_backward"),
		}
		m.PerInstance = append(m.PerInstance, inst)
		m.HandshakesFull += inst.HandshakesFull
		m.HandshakesResumed += inst.HandshakesResumed
		m.HandshakesFailed += inst.HandshakesFailed
		m.Accepted += inst.Accepted
		m.Refused += inst.Refused
		m.AdmissionRefused += inst.AdmissionRefused
		m.TicketsIssued += inst.TicketsIssued
		m.TicketsResumed += inst.TicketsResumed
		m.TicketsRejected += inst.TicketsRejected
		m.SignPoolOps += c("issl.signpool_ops")
		m.SignPoolQueueFull += c("issl.signpool_queue_full")
	}

	bs := cl.Balancer().Stats()
	m.Refused += bs.Refused.Value() // fleet-wide refusals include "no node up"
	cr := &ClusterReport{
		Instances:  cfg.Instances,
		Policy:     ccfg.Policy.Name(),
		Balanced:   bs.Accepted.Value(),
		Refused:    bs.Refused.Value(),
		Failovers:  bs.Failovers.Value(),
		NodeDowns:  bs.NodeDowns.Value(),
		NodeUps:    bs.NodeUps.Value(),
		NodesUpEnd: cl.Balancer().UpCount(),
	}
	if cfg.KillAfter > 0 {
		cr.KilledNode = cfg.KillNode
		cr.KillAfterNs = uint64(cfg.KillAfter.Nanoseconds())
		cr.RestartAfterNs = uint64(cfg.RestartAfter.Nanoseconds())
		cr.RecoveryNs = ks.recoveryNs()
	} else {
		cr.KilledNode = -1
	}
	m.Cluster = cr

	if wall > 0 {
		m.RPS = float64(m.Requests) / wall.Seconds()
		m.HandshakesPerSec = float64(m.HandshakesFull+m.HandshakesResumed) / wall.Seconds()
	}
	if wallHist != nil {
		pct := percentilesFrom(wallHist)
		m.WallLatency = &pct
	}
	return m, nil
}
