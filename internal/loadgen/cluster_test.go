package loadgen

import (
	"testing"
	"time"
)

// TestClusterSmoke runs a small fleet against three instances behind
// the balancer with no chaos: every request completes byte-exact, the
// balancer accounted for every connection, and the per-instance
// breakdown sums to the fleet totals.
func TestClusterSmoke(t *testing.T) {
	rep, err := Run(Config{
		Seed: 21, Clients: 12, Requests: 2, Resume: 0.5, Concurrency: 6,
		Instances: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	const want = 12 * 2
	if rep.Measured.Requests != want || rep.Measured.Errors != 0 {
		t.Fatalf("measured = %d ok / %d errors, want %d / 0",
			rep.Measured.Requests, rep.Measured.Errors, want)
	}
	if rep.Measured.Cluster == nil {
		t.Fatal("no cluster section in the report")
	}
	if got := rep.Measured.Cluster.Balanced; got != want {
		t.Errorf("balancer accepted %d, want %d", got, want)
	}
	if len(rep.Measured.PerInstance) != 3 {
		t.Fatalf("per-instance rows = %d, want 3", len(rep.Measured.PerInstance))
	}
	var accepted, issued uint64
	for _, inst := range rep.Measured.PerInstance {
		accepted += inst.Accepted
		issued += inst.TicketsIssued
	}
	if accepted != rep.Measured.Accepted || issued != rep.Measured.TicketsIssued {
		t.Errorf("per-instance sums (%d accepted, %d issued) disagree with fleet (%d, %d)",
			accepted, issued, rep.Measured.Accepted, rep.Measured.TicketsIssued)
	}
	if rep.Measured.Cluster.KilledNode != -1 {
		t.Errorf("no kill was scheduled but KilledNode = %d", rep.Measured.Cluster.KilledNode)
	}
}

// TestClusterNodeKillSoak is the acceptance scenario: three instances,
// a returning-client mix above 50% resumption, and one instance killed
// mid-load then restarted. A well-behaved fleet (bounded per-request
// retries on fresh connections) must finish with zero byte-exactness
// errors and zero stranded requests; sealed tickets must keep resuming
// on the surviving instances; and the post-kill SLO must show bounded
// recovery — the first successful request after the kill lands within
// the failover budget, not after the health checker's full sweep.
func TestClusterNodeKillSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster chaos soak skipped in -short mode")
	}
	const killed = 1
	rep, err := Run(Config{
		Seed:        0xC1A0,
		Clients:     100,
		Requests:    5,
		Resume:      0.6,
		Concurrency: 6,
		HubLatency:  time.Millisecond,

		Instances:      3,
		Policy:         "hash",
		RequestRetries: 3,
		KillNode:       killed,
		KillAfter:      150 * time.Millisecond,
		RestartAfter:   300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Measured

	// Byte exactness is absolute: a mismatch is corruption, not load.
	if m.EchoMismatches != 0 {
		t.Errorf("echo mismatches = %d, want 0", m.EchoMismatches)
	}
	// No well-behaved client was stranded: transport failures from the
	// kill are absorbed by the retry budget.
	const planned = 100 * 5
	if m.Requests != planned || m.Errors != 0 {
		t.Errorf("requests = %d ok / %d errors, want %d / 0 (retries used: %d)",
			m.Requests, m.Errors, planned, m.Retries)
	}

	cr := m.Cluster
	if cr == nil {
		t.Fatal("no cluster section in the report")
	}
	if cr.KilledNode != killed {
		t.Fatalf("killed node = %d, want %d", cr.KilledNode, killed)
	}
	// The health checker saw the kill.
	if cr.NodeDowns == 0 {
		t.Error("node kill never detected by the health checker")
	}
	// Tickets kept resuming on the survivors: the cluster-shared sealed
	// ticket key means a client bounced off the dead instance does not
	// pay a full handshake on its new home.
	var survivorsResumed uint64
	for _, inst := range m.PerInstance {
		if inst.Node != killed {
			survivorsResumed += inst.TicketsResumed
		}
	}
	if survivorsResumed == 0 {
		t.Errorf("no ticket resumptions on surviving instances (fleet resumed %d)",
			m.TicketsResumed)
	}
	// Bounded recovery: some request succeeded after the kill, and not
	// long after — failover covers the detection window, so recovery
	// should be well inside the 1s forward timeout plus probe sweep.
	if cr.RecoveryNs == 0 {
		t.Error("no successful request recorded after the kill")
	} else if cr.RecoveryNs > uint64(5*time.Second) {
		t.Errorf("recovery took %v, want bounded (<5s)", time.Duration(cr.RecoveryNs))
	}
}
