package loadgen

// The combined chaos soak: the E13 node-kill/restart plan AND the
// degraded-wire fault schedule in one seeded run. Before this test the
// two failure modes were only ever exercised separately (cluster tests
// on a clean wire, wire-fault soaks against a single instance); the
// paper's deployment saw both at once — a flaky lab segment under a
// watchdog-rebooting board.

import (
	"testing"
	"time"

	"repro/internal/chaos"
)

func TestClusterCombinedChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("combined chaos soak skipped in -short mode")
	}
	const (
		killed  = 1
		seed    = 0xC0FFEE
		planned = 100 * 5
	)
	rep, err := Run(Config{
		Seed:        seed,
		Clients:     100,
		Requests:    5,
		Resume:      0.6,
		Concurrency: 16,

		// Both failure planes at once: the wire degrades per the shared
		// soak schedule while node 1 is killed and later restarted.
		Faults: chaos.SoakPlan(seed),

		Instances:      3,
		Policy:         "hash",
		RequestRetries: 6,
		KillNode:       killed,
		KillAfter:      150 * time.Millisecond,
		RestartAfter:   300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Measured

	// The two invariants that define the soak: no silent corruption
	// ever, and the cluster recovers in bounded time. Loss, bit rot
	// and the kill may cost retries — they must not cost integrity.
	if m.EchoMismatches != 0 {
		t.Errorf("echo mismatches = %d, want 0", m.EchoMismatches)
	}
	if m.Requests+m.Errors != planned {
		t.Errorf("accounted requests = %d, want %d", m.Requests+m.Errors, planned)
	}
	// The retry budget should absorb nearly everything; a degraded
	// wire plus a kill may strand a handful of requests, but a failure
	// rate above 5% means recovery is broken, not the wire.
	if m.Errors > planned/20 {
		t.Errorf("errors = %d of %d (retries used: %d), want <= %d",
			m.Errors, planned, m.Retries, planned/20)
	}

	cr := m.Cluster
	if cr == nil {
		t.Fatal("no cluster section in the report")
	}
	if cr.NodeDowns == 0 {
		t.Error("node kill never detected by the health checker")
	}
	if cr.RecoveryNs == 0 {
		t.Error("no successful request recorded after the kill")
	} else if cr.RecoveryNs > uint64(5*time.Second) {
		t.Errorf("recovery took %v, want bounded (<5s)", time.Duration(cr.RecoveryNs))
	}
	// The combined failure planes actually bit: a run in which no
	// request ever needed a retry means the wire faults and the kill
	// never touched the workload, and the soak proved nothing.
	if m.Retries == 0 {
		t.Error("no retries recorded: neither the degraded wire nor the kill touched the workload")
	}
}
