// Package loadgen is the capacity-testing subsystem: a deterministic
// virtual-client fleet that drives the full vertical this repo
// reproduces — netsim wire, tcpip stacks, issl handshake, the
// redirector service, a plaintext backend — under configurable
// workloads, and reports achieved throughput and latency percentiles
// against the modeled expectation.
//
// The paper's service went from a workstation prototype to a 30 MHz
// board by being measured at every step; loadgen is that measurement
// harness for this reproduction. One run produces two kinds of truth:
//
//   - Virtual: the seeded workload plan replayed through a
//     discrete-event queueing model in virtual time (model.go). Fully
//     deterministic — two runs with one seed emit identical request
//     counts, percentile tables and histogram buckets — so it can gate
//     regressions in CI.
//   - Measured: the same plan executed against the live stack, with
//     byte-exact echo verification and the telemetry registry counting
//     what the server actually did (handshakes granted full vs
//     resumed, admission refusals, bytes redirected).
//
// Workload knobs cover the paper's operating envelope: closed-loop
// concurrency or open-loop Poisson arrivals, session-resumption mix
// (the Goldberg et al. cache hit rate), connection churn, and a
// weighted payload size distribution.
package loadgen

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/crypto/prng"
	"repro/internal/crypto/rsa"
	"repro/internal/issl"
	"repro/internal/netsim"
	"repro/internal/redirector"
	"repro/internal/tcpip"
	"repro/internal/telemetry"
)

// Mode selects how load is offered.
type Mode int

const (
	// ModeClosed runs a fixed-width closed loop: Concurrency clients
	// are in flight at any instant; each issues its next request the
	// moment the previous completes.
	ModeClosed Mode = iota
	// ModeOpen offers requests on a Poisson schedule at RatePerSec
	// regardless of completions (per client, a request still waits for
	// that client's previous one).
	ModeOpen
)

func (m Mode) String() string {
	if m == ModeOpen {
		return "open"
	}
	return "closed"
}

// Service ports inside the loadgen world.
const (
	redirectorPort = 4443
	backendPort    = 9000
)

// Config parameterizes a load run. The zero value is unusable; Run
// fills defaults for everything but Clients.
type Config struct {
	// Seed drives every random decision: the workload plan, handshake
	// nonces, the server key. Same seed, same plan.
	Seed uint64
	// Clients is the virtual client population. Required.
	Clients int
	// Requests is issued per client (default 2).
	Requests int
	// Mode offers load closed- or open-loop.
	Mode Mode
	// RatePerSec is the aggregate offered arrival rate (open loop;
	// default 200).
	RatePerSec float64
	// Concurrency caps simultaneously active clients (default 32) —
	// the closed-loop width, and a safety bound in open loop.
	Concurrency int
	// Resume is the probability a reconnecting client offers its
	// cached session (0, 0.5, 0.95 are the canonical mixes). The first
	// connection of a client is always a full handshake.
	Resume float64
	// ChurnEvery reconnects every N requests (default 1: every request
	// is a fresh connection, the handshake-bound workload; 0 keeps one
	// connection per client for all its requests).
	ChurnEvery int
	// Payloads is the request size distribution (default
	// DefaultPayloads).
	Payloads PayloadDist
	// MaxInflight passes the redirector's admission bound through
	// (0 = unbounded; per instance in cluster mode).
	MaxInflight int
	// Stampede runs the reconnect-stampede scenario: the whole fleet is
	// held at a start gate and released at once, resumption is forced to
	// 0% and every request reconnects — the worst-case full-handshake
	// burst a restarted service absorbs. Implies Concurrency = Clients.
	Stampede bool
	// SignWorkers sizes the redirector's RSA sign/decrypt worker pool
	// (0 = no pool, key ops run inline per connection; per instance in
	// cluster mode). See issl.SignPool.
	SignWorkers int
	// KeyBits sizes the server's RSA key (default 512 — the historical
	// loadgen key; 1024 makes the handshake RSA-bound, the stampede
	// scenario's natural setting).
	KeyBits int
	// Instances runs the redirector as a fleet behind the L4 balancer
	// (internal/cluster) when > 1: N instances, each with its own
	// stack, session cache and telemetry registry, sharing only the
	// sealed-ticket key material. 0 or 1 keeps the single redirector.
	Instances int
	// Policy selects the balancer policy: "hash" (consistent hash,
	// default) or "least" (least inflight). Cluster mode only.
	Policy string
	// KillAfter kills instance KillNode that long into the measured
	// run — the node-kill chaos plan (0 = no kill; cluster mode only).
	// RestartAfter restarts it that long after the kill (0 = stays
	// dead). The post-kill recovery time lands in the cluster report.
	KillAfter    time.Duration
	KillNode     int
	RestartAfter time.Duration
	// RequestRetries retries a failed request on a fresh connection
	// (default 0: a failure counts immediately). A well-behaved client
	// riding out a node kill sets this; byte-exactness violations are
	// counted separately and are never retried away silently.
	RequestRetries int
	// CacheSessions bounds the server session cache (default
	// 2*Clients); CacheShards its shard count (default
	// issl.DefaultSessionShards).
	CacheSessions int
	CacheShards   int
	// Faults degrades the wire (e.g. chaos.SoakPlan); nil runs clean.
	Faults *netsim.FaultPlan
	// HubLatency adds one-way frame delay.
	HubLatency time.Duration
	// Plain disables the issl layer: the paper's plaintext baseline.
	Plain bool
	// VirtualOnly skips the live run entirely: only the deterministic
	// workload plan and queueing model execute, so fleet sizes far past
	// what CI hardware can drive live (tens of thousands of clients)
	// still produce a replayable virtual-SLO section. The measured
	// section of the report is zeroed.
	VirtualOnly bool
	// Wall additionally records wall-clock per-request latency into
	// the measured section (not replayable; off by default).
	Wall bool
	// Registry receives all counters and histograms (default: private).
	Registry *telemetry.Registry
	// Trace receives redirector/issl events. Optional.
	Trace *telemetry.Trace
	// Log receives service logs. Optional.
	Log issl.Logger

	// churnSet marks ChurnEvery=0 as intentional (see KeepConnections).
	churnSet bool
}

// MaxClients bounds the fleet size: the plan and model are O(Clients)
// in memory, so anything past this is a typo'd flag, not a workload.
const MaxClients = 1 << 20

func (cfg *Config) withDefaults() (*Config, error) {
	c := *cfg
	if c.Clients <= 0 {
		return nil, fmt.Errorf("loadgen: Clients must be positive")
	}
	if c.Clients > MaxClients {
		return nil, fmt.Errorf("loadgen: Clients %d exceeds limit %d", c.Clients, MaxClients)
	}
	if c.Stampede {
		// All-fresh, all-at-once: no resumption, a reconnect per
		// request, the whole fleet in flight simultaneously.
		c.Resume = 0
		c.ChurnEvery = 1
		c.churnSet = false
		c.Concurrency = c.Clients
	}
	if c.SignWorkers < 0 {
		return nil, fmt.Errorf("loadgen: SignWorkers must be >= 0")
	}
	switch c.KeyBits {
	case 0:
		c.KeyBits = 512
	case 512, 768, 1024, 2048:
	default:
		return nil, fmt.Errorf("loadgen: KeyBits %d not in {512, 768, 1024, 2048}", c.KeyBits)
	}
	if c.Requests <= 0 {
		c.Requests = 2
	}
	if c.RatePerSec <= 0 {
		c.RatePerSec = 200
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 32
	}
	if c.Concurrency > c.Clients {
		c.Concurrency = c.Clients
	}
	if c.Resume < 0 || c.Resume > 1 {
		return nil, fmt.Errorf("loadgen: Resume must be in [0,1]")
	}
	if c.ChurnEvery < 0 {
		return nil, fmt.Errorf("loadgen: ChurnEvery must be >= 0")
	}
	if cfg.ChurnEvery == 0 && !cfg.churnSet {
		c.ChurnEvery = 1
	}
	if len(c.Payloads) == 0 {
		c.Payloads = DefaultPayloads
	}
	if c.CacheSessions <= 0 {
		c.CacheSessions = 2 * c.Clients
	}
	if c.CacheShards <= 0 {
		c.CacheShards = issl.DefaultSessionShards
	}
	if c.Instances < 0 {
		return nil, fmt.Errorf("loadgen: Instances must be >= 0")
	}
	switch c.Policy {
	case "", "hash", "least":
	default:
		return nil, fmt.Errorf("loadgen: unknown policy %q", c.Policy)
	}
	if c.Instances > 1 && (c.KillNode < 0 || c.KillNode >= c.Instances) {
		return nil, fmt.Errorf("loadgen: KillNode %d out of range for %d instances", c.KillNode, c.Instances)
	}
	if c.RequestRetries < 0 {
		return nil, fmt.Errorf("loadgen: RequestRetries must be >= 0")
	}
	if c.Registry == nil {
		c.Registry = telemetry.NewRegistry()
	}
	return &c, nil
}

// KeepConnections marks ChurnEvery=0 as intentional: one connection
// per client, all requests multiplexed over it (by default
// ChurnEvery=0 is treated as unset and becomes 1).
func (cfg *Config) KeepConnections() { cfg.churnSet = true }

// Run executes the workload and returns the SLO report.
func Run(cfg Config) (*Report, error) {
	c, err := (&cfg).withDefaults()
	if err != nil {
		return nil, err
	}
	p := buildPlan(c)
	model := runModel(c, p, c.Registry)

	rep := &Report{
		Seed:        c.Seed,
		Clients:     c.Clients,
		Requests:    c.Requests,
		Mode:        c.Mode.String(),
		Concurrency: c.Concurrency,
		Resume:      c.Resume,
		ChurnEvery:  c.ChurnEvery,
		MaxInflight: c.MaxInflight,
		Secure:      !c.Plain,
		Faulty:      c.Faults != nil,
		Stampede:    c.Stampede,
		SignWorkers: c.SignWorkers,
	}
	if !c.Plain {
		rep.KeyBits = c.KeyBits
	}
	if c.Instances > 1 {
		rep.Instances = c.Instances
		rep.Policy = c.Policy
		if rep.Policy == "" {
			rep.Policy = "hash"
		}
	}
	if c.Mode == ModeOpen {
		rep.RatePerSec = c.RatePerSec
	}
	rep.Virtual = VirtualReport{
		DurationNs:        model.durationNs,
		Requests:          model.requests,
		HandshakesFull:    p.full,
		HandshakesResumed: p.resumed,
		Latency:           percentilesFrom(model.latency),
		Buckets:           model.latency.Buckets(),
	}
	if model.durationNs > 0 {
		rep.Virtual.RPS = float64(model.requests) / (float64(model.durationNs) / 1e9)
	}

	if c.VirtualOnly {
		rep.VirtualOnly = true
		return rep, nil
	}
	measured, err := runReal(c, p)
	if err != nil {
		return nil, err
	}
	rep.Measured = *measured
	return rep, nil
}

// fleetCounters aggregates what the client fleet saw.
type fleetCounters struct {
	ok, errs, bytes             atomic.Uint64
	dialAttempts, dialFailures  atomic.Uint64
	fullHandshakes, resumptions atomic.Uint64
	resumeFallbacks             atomic.Uint64
	mismatches                  atomic.Uint64 // byte-exactness violations (never retried away)
	retries                     atomic.Uint64 // requests that needed a fresh-connection retry
}

// killState tracks the node-kill chaos timeline: when the kill landed
// and when the fleet first completed a request afterwards — the
// service-level recovery bound the cluster report publishes.
type killState struct {
	killedAt atomic.Int64 // unix ns; 0 = not (yet) killed
	firstOk  atomic.Int64 // unix ns of first success after the kill
}

func (ks *killState) noteOK() {
	if ks == nil {
		return
	}
	if ks.killedAt.Load() != 0 && ks.firstOk.Load() == 0 {
		ks.firstOk.CompareAndSwap(0, time.Now().UnixNano())
	}
}

// recoveryNs returns the kill -> first-success gap, if both happened.
func (ks *killState) recoveryNs() uint64 {
	ka, fo := ks.killedAt.Load(), ks.firstOk.Load()
	if ka == 0 || fo == 0 || fo < ka {
		return 0
	}
	return uint64(fo - ka)
}

// runReal executes the plan against the live vertical: hub, three
// stacks, a plaintext echo backend, the secure redirector with the
// sharded session cache and admission control, and the client fleet.
func runReal(cfg *Config, p *plan) (*MeasuredReport, error) {
	reg := cfg.Registry
	hub := netsim.NewHub()
	defer hub.Close()
	if cfg.HubLatency > 0 {
		hub.SetLatency(cfg.HubLatency)
	}
	if cfg.Faults != nil {
		if err := hub.SetFaultPlan(cfg.Faults); err != nil {
			return nil, err
		}
	}
	mk := func(last byte) (*tcpip.Stack, error) {
		return tcpip.NewStack(hub, tcpip.IP4(10, 0, 0, last))
	}
	cli, err := mk(1)
	if err != nil {
		return nil, err
	}
	defer cli.Close()
	mid, err := mk(2)
	if err != nil {
		return nil, err
	}
	defer mid.Close()
	back, err := mk(3)
	if err != nil {
		return nil, err
	}
	defer back.Close()

	if err := startBackend(back); err != nil {
		return nil, err
	}

	if cfg.Instances > 1 {
		// The mid stack at 10.0.0.2 goes unused in cluster mode — the
		// balancer takes that address so the client fleet cannot tell
		// one redirector from a fleet of them.
		mid.Close()
		return runRealCluster(cfg, p, hub, cli, back)
	}

	rcfg := redirector.Config{
		ListenPort:   redirectorPort,
		Target:       back.Addr(),
		TargetPort:   backendPort,
		Secure:       !cfg.Plain,
		MaxInflight:  cfg.MaxInflight,
		SessionCache: issl.NewSessionCacheSharded(cfg.CacheSessions, cfg.CacheShards),
		SignWorkers:  cfg.SignWorkers,
		RandSeed:     cfg.Seed ^ 0x5EC0DE5EC0DE,
		Metrics:      reg,
		Trace:        cfg.Trace,
		Log:          cfg.Log,
	}
	if !cfg.Plain {
		key, err := rsa.GenerateKey(prng.NewXorshift(cfg.Seed^0x4B455947454E), cfg.KeyBits)
		if err != nil {
			return nil, err
		}
		rcfg.ServerKey = key
	}
	srv, err := redirector.NewUnixServer(mid, rcfg)
	if err != nil {
		return nil, err
	}
	go srv.Serve()
	defer srv.Close()

	fc, wall, wallHist := runFleet(cfg, cli, p, nil)

	m := &MeasuredReport{
		DurationNs:        uint64(wall.Nanoseconds()),
		Requests:          fc.ok.Load(),
		Errors:            fc.errs.Load(),
		EchoMismatches:    fc.mismatches.Load(),
		Retries:           fc.retries.Load(),
		ResumeFallbacks:   fc.resumeFallbacks.Load(),
		BytesEchoed:       fc.bytes.Load(),
		HandshakesFull:    reg.Counter("issl.handshakes_full").Value(),
		HandshakesResumed: reg.Counter("issl.handshakes_resumed").Value(),
		HandshakesFailed:  reg.Counter("issl.handshakes_failed").Value(),
		Accepted:          reg.Counter("redirector.accepted").Value(),
		Refused:           reg.Counter("redirector.refused").Value(),
		AdmissionRefused:  reg.Counter("redirector.refused_admission").Value(),
		DialAttempts:      fc.dialAttempts.Load(),
		DialFailures:      fc.dialFailures.Load(),
		SignPoolOps:       reg.Counter("issl.signpool_ops").Value(),
		SignPoolQueueFull: reg.Counter("issl.signpool_queue_full").Value(),
	}
	if wall > 0 {
		m.RPS = float64(m.Requests) / wall.Seconds()
		m.HandshakesPerSec = float64(m.HandshakesFull+m.HandshakesResumed) / wall.Seconds()
	}
	if wallHist != nil {
		pct := percentilesFrom(wallHist)
		m.WallLatency = &pct
	}
	return m, nil
}

// runFleet launches the virtual-client fleet against the service at
// 10.0.0.2 and waits it out. ks (optional) observes the node-kill
// timeline for the recovery bound.
func runFleet(cfg *Config, cli *tcpip.Stack, p *plan, ks *killState) (*fleetCounters, time.Duration, *telemetry.HDRHistogram) {
	var (
		fc       fleetCounters
		wallHist *telemetry.HDRHistogram
		wallLog2 *telemetry.Histogram
	)
	if cfg.Wall {
		wallHist = telemetry.NewHDRHistogram()
		wallLog2 = cfg.Registry.Histogram("loadgen.latency_wall_ns")
	}
	sem := make(chan struct{}, cfg.Concurrency)

	// The stampede gate: every client goroutine parks here until the
	// whole fleet is spawned, then the close releases them into their
	// first dial simultaneously. Non-stampede runs pre-close the gate so
	// clients launch as they spawn.
	gate := make(chan struct{})
	if !cfg.Stampede {
		close(gate)
	}
	start := time.Now()

	var wg sync.WaitGroup
	for ci := range p.clients {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			<-gate
			runClient(cfg, cli, &p.clients[ci], ci, sem, start, &fc, wallHist, wallLog2, ks)
		}(ci)
	}
	if cfg.Stampede {
		start = time.Now() // the measured window starts at the release
		close(gate)
	}
	wg.Wait()
	return &fc, time.Since(start), wallHist
}

// startBackend serves plaintext echo until its stack closes.
func startBackend(s *tcpip.Stack) error {
	l, err := s.Listen(backendPort, 16)
	if err != nil {
		return err
	}
	go func() {
		for {
			conn, err := l.Accept(30 * time.Second)
			if err != nil {
				return
			}
			go func(c *tcpip.TCB) {
				defer c.Close()
				buf := make([]byte, 4096)
				for {
					n, err := c.ReadDeadline(buf, time.Now().Add(30*time.Second))
					if n > 0 {
						if _, werr := c.Write(buf[:n]); werr != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return nil
}

// requestTimeout bounds one echo round trip; generous because a
// thousand clients time-share one host CPU with RSA in the middle.
const requestTimeout = 60 * time.Second

// runClient executes one client's planned request sequence.
func runClient(cfg *Config, stack *tcpip.Stack, cp *clientPlan, ci int,
	sem chan struct{}, start time.Time, fc *fleetCounters,
	wallHist *telemetry.HDRHistogram, wallLog2 *telemetry.Histogram, ks *killState) {

	d := &issl.Dialer{
		Dial: func() (io.ReadWriteCloser, error) {
			return stack.Connect(tcpip.IP4(10, 0, 0, 2), redirectorPort, 10*time.Second)
		},
		Config: issl.Config{
			Profile:          issl.ProfileUnix,
			Rand:             prng.NewXorshift(cp.seed),
			HandshakeTimeout: requestTimeout,
		},
		Policy: issl.RetryPolicy{MaxAttempts: 6, BaseDelay: 50 * time.Millisecond, MaxDelay: time.Second},
	}

	var (
		conn     *issl.Conn
		tr       io.ReadWriteCloser
		plainTCB *tcpip.TCB
	)
	closeConn := func() {
		if conn != nil {
			conn.Close()
			conn = nil
		}
		if tr != nil {
			tr.Close()
			tr = nil
		}
		if plainTCB != nil {
			plainTCB.Close()
			plainTCB = nil
		}
	}
	defer closeConn()

	for ri := range cp.reqs {
		rp := &cp.reqs[ri]

		// Open loop: hold the planned arrival schedule against the wall
		// clock (scaled 1:1; virtual ns ≈ wall ns for pacing purposes).
		if cfg.Mode == ModeOpen {
			if wait := time.Duration(rp.arrivalNs) - time.Since(start); wait > 0 {
				time.Sleep(wait)
			}
		}

		attempt := func(fresh, first bool) error {
			if fresh {
				closeConn()
				if cfg.Plain {
					tcb, err := stack.Connect(tcpip.IP4(10, 0, 0, 2), redirectorPort, 10*time.Second)
					if err != nil {
						fc.dialAttempts.Add(1)
						fc.dialFailures.Add(1)
						return err
					}
					fc.dialAttempts.Add(1)
					plainTCB = tcb
				} else {
					if rp.forget && first {
						d.ForgetSession()
					}
					before := d.Stats()
					c, t, err := d.DialWithRetry()
					after := d.Stats()
					fc.dialAttempts.Add(after.Attempts - before.Attempts)
					if err != nil {
						fc.dialFailures.Add(1)
						return err
					}
					fc.fullHandshakes.Add(after.FullHandshakes - before.FullHandshakes)
					fc.resumptions.Add(after.Resumptions - before.Resumptions)
					fc.resumeFallbacks.Add(after.ResumeFallbacks - before.ResumeFallbacks)
					conn, tr = c, t
				}
			}
			return echoOnce(conn, plainTCB, ci, ri, rp.payload)
		}

		sem <- struct{}{} // closed-loop width / open-loop safety bound
		reqStart := time.Now()
		err := attempt(rp.fresh, true)
		// A well-behaved client rides out a dying connection (a killed
		// node, a mid-transfer abort) by retrying on a fresh one — but
		// an echo MISMATCH is corruption, counted and never retried:
		// retrying it away would hide exactly the defect the byte-exact
		// check exists to catch.
		for try := 0; err != nil && !errors.Is(err, errEchoMismatch) && try < cfg.RequestRetries; try++ {
			fc.retries.Add(1)
			err = attempt(true, false)
		}
		<-sem

		if err != nil {
			if errors.Is(err, errEchoMismatch) {
				fc.mismatches.Add(1)
			}
			fc.errs.Add(1)
			closeConn() // a failed request poisons the connection
			continue
		}
		ks.noteOK()
		fc.ok.Add(1)
		fc.bytes.Add(uint64(rp.payload))
		if wallHist != nil {
			ns := uint64(time.Since(reqStart).Nanoseconds())
			wallHist.Observe(ns)
			wallLog2.Observe(ns)
		}
	}
}

// payloadByte generates the deterministic payload pattern: a function
// of client, request and offset, so the echo check detects
// cross-connection mixups, not just corruption.
func payloadByte(ci, ri, i int) byte {
	return byte(i*131 + ci*7 + ri*13 + 0x2B)
}

// echoOnce writes the request payload and verifies the byte-exact
// echo through redirector and backend.
func echoOnce(conn *issl.Conn, tcb *tcpip.TCB, ci, ri, size int) error {
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = payloadByte(ci, ri, i)
	}
	deadline := time.Now().Add(requestTimeout)
	var write func([]byte) (int, error)
	var read func([]byte) (int, error)
	if conn != nil {
		conn.SetReadDeadline(deadline)
		defer conn.SetReadDeadline(time.Time{})
		write, read = conn.Write, conn.Read
	} else {
		write = tcb.Write
		read = func(b []byte) (int, error) { return tcb.ReadDeadline(b, deadline) }
	}
	if _, err := write(payload); err != nil {
		return err
	}
	got := make([]byte, 0, size)
	buf := make([]byte, 4096)
	for len(got) < size {
		n, err := read(buf)
		got = append(got, buf[:n]...)
		if err != nil {
			return fmt.Errorf("loadgen: echo read after %d/%d bytes: %w", len(got), size, err)
		}
	}
	if !bytes.Equal(got, payload) {
		return fmt.Errorf("%w for client %d request %d (%d bytes)", errEchoMismatch, ci, ri, size)
	}
	return nil
}

// errEchoMismatch marks a byte-exactness violation: data came back,
// but wrong. Distinguished from transport failures because it is never
// retried and the chaos gates assert it stays at zero.
var errEchoMismatch = errors.New("loadgen: echo mismatch")
