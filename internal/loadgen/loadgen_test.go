package loadgen

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/telemetry"
)

// TestSmokeClosed runs a small closed-loop fleet end to end and checks
// the report's internal consistency: every planned request completed,
// byte-exact, with the handshake mix the plan called for.
func TestSmokeClosed(t *testing.T) {
	// One big cache shard: no session can be evicted, so the live
	// handshake mix must equal the planned mix exactly.
	rep, err := Run(Config{Seed: 7, Clients: 8, Requests: 2, Resume: 0.5, Concurrency: 4,
		CacheSessions: 64, CacheShards: 1})
	if err != nil {
		t.Fatal(err)
	}
	const want = 8 * 2
	if rep.Virtual.Requests != want {
		t.Errorf("virtual requests = %d, want %d", rep.Virtual.Requests, want)
	}
	if rep.Measured.Requests != want || rep.Measured.Errors != 0 {
		t.Errorf("measured = %d ok / %d errors, want %d / 0",
			rep.Measured.Requests, rep.Measured.Errors, want)
	}
	if rep.Measured.BytesEchoed == 0 {
		t.Error("no bytes echoed")
	}
	// Every connection handshakes: 16 fresh connections planned.
	if got := rep.Virtual.HandshakesFull + rep.Virtual.HandshakesResumed; got != want {
		t.Errorf("virtual handshakes = %d, want %d", got, want)
	}
	// The live server granted what the plan offered (cache is big
	// enough that no offer should miss).
	if rep.Measured.HandshakesFull != rep.Virtual.HandshakesFull ||
		rep.Measured.HandshakesResumed != rep.Virtual.HandshakesResumed {
		t.Errorf("measured handshakes full=%d resumed=%d, plan full=%d resumed=%d",
			rep.Measured.HandshakesFull, rep.Measured.HandshakesResumed,
			rep.Virtual.HandshakesFull, rep.Virtual.HandshakesResumed)
	}
	if rep.Virtual.Latency.P50 == 0 || rep.Virtual.Latency.Max < rep.Virtual.Latency.P50 {
		t.Errorf("degenerate latency table: %+v", rep.Virtual.Latency)
	}
	var txt bytes.Buffer
	if err := rep.WriteText(&txt); err != nil || txt.Len() == 0 {
		t.Errorf("WriteText: %v (%d bytes)", err, txt.Len())
	}
}

// TestDeterminism is the acceptance contract: two runs with one seed
// produce an identical Virtual section — request counts, handshake
// counts, every percentile, every histogram bucket — and identical
// measured request/error counts.
func TestDeterminism(t *testing.T) {
	run := func() *Report {
		rep, err := Run(Config{Seed: 42, Clients: 12, Requests: 3, Resume: 0.95, Concurrency: 6})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Virtual, b.Virtual) {
		t.Errorf("virtual sections differ:\n%+v\n%+v", a.Virtual, b.Virtual)
	}
	if a.Measured.Requests != b.Measured.Requests || a.Measured.Errors != b.Measured.Errors {
		t.Errorf("measured counts differ: %d/%d vs %d/%d",
			a.Measured.Requests, a.Measured.Errors, b.Measured.Requests, b.Measured.Errors)
	}
}

// TestPlainBaseline drives the plaintext redirector (no issl layer).
func TestPlainBaseline(t *testing.T) {
	rep, err := Run(Config{Seed: 3, Clients: 4, Requests: 2, Plain: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Measured.Errors != 0 || rep.Measured.Requests != 8 {
		t.Errorf("plain run: %d ok / %d errors", rep.Measured.Requests, rep.Measured.Errors)
	}
	if rep.Measured.HandshakesFull != 0 {
		t.Errorf("plaintext run performed %d handshakes", rep.Measured.HandshakesFull)
	}
}

// TestOpenLoopPlan checks the open-loop arrival schedule: per-client
// arrivals strictly increase, and the plan replays exactly.
func TestOpenLoopPlan(t *testing.T) {
	cfg, err := (&Config{Seed: 9, Clients: 4, Requests: 8, Mode: ModeOpen, RatePerSec: 1000}).withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := buildPlan(cfg), buildPlan(cfg)
	if !reflect.DeepEqual(p1, p2) {
		t.Error("plan not reproducible")
	}
	for c, cp := range p1.clients {
		var last uint64
		for r, rp := range cp.reqs {
			if rp.arrivalNs <= last {
				t.Fatalf("client %d req %d: arrival %d not after %d", c, r, rp.arrivalNs, last)
			}
			last = rp.arrivalNs
		}
	}
}

// TestOpenLoopRun exercises the open-loop path end to end (small, so
// the wall pacing stays under a second).
func TestOpenLoopRun(t *testing.T) {
	rep, err := Run(Config{Seed: 11, Clients: 4, Requests: 2, Mode: ModeOpen, RatePerSec: 500, Resume: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Measured.Errors != 0 || rep.Measured.Requests != 8 {
		t.Errorf("open-loop run: %d ok / %d errors", rep.Measured.Requests, rep.Measured.Errors)
	}
}

// TestModelQueueing pins the model's queueing behavior: with one
// server, latencies stack; with as many servers as clients, the p50
// collapses to a single service time.
func TestModelQueueing(t *testing.T) {
	mk := func(conc int) *VirtualReport {
		cfg, err := (&Config{Seed: 5, Clients: 8, Requests: 1, Concurrency: conc}).withDefaults()
		if err != nil {
			t.Fatal(err)
		}
		p := buildPlan(cfg)
		m := runModel(cfg, p, telemetry.NewRegistry())
		v := &VirtualReport{DurationNs: m.durationNs, Requests: m.requests, Latency: percentilesFrom(m.latency)}
		return v
	}
	serial, parallel := mk(1), mk(8)
	if serial.DurationNs <= parallel.DurationNs {
		t.Errorf("serial duration %d not above parallel %d", serial.DurationNs, parallel.DurationNs)
	}
	if serial.Latency.Max <= parallel.Latency.Max {
		t.Errorf("serial max latency %d not above parallel %d", serial.Latency.Max, parallel.Latency.Max)
	}
}

func TestParsePayloads(t *testing.T) {
	d, err := ParsePayloads("64:60,512:30,4096:10")
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 3 || d[0].Size != 64 || d[2].Weight != 10 {
		t.Errorf("parsed %+v", d)
	}
	for _, bad := range []string{"", "64", "x:1", "64:0", "-1:5"} {
		if _, err := ParsePayloads(bad); err == nil {
			t.Errorf("ParsePayloads(%q) accepted", bad)
		}
	}
}

// TestResumeMixShapesPlan checks that the resumption knob steers the
// planned handshake mix: at 0 every reconnect is full, at 0.95 most
// resume, and the per-client first connection is always full.
func TestResumeMixShapesPlan(t *testing.T) {
	mk := func(resume float64) *plan {
		cfg, err := (&Config{Seed: 1, Clients: 50, Requests: 4, Resume: resume}).withDefaults()
		if err != nil {
			t.Fatal(err)
		}
		return buildPlan(cfg)
	}
	if p := mk(0); p.resumed != 0 || p.full != 200 {
		t.Errorf("resume=0: full=%d resumed=%d", p.full, p.resumed)
	}
	p := mk(0.95)
	if p.full < 50 {
		t.Errorf("resume=0.95: full=%d, below the %d forced first handshakes", p.full, 50)
	}
	// 150 reconnects at 95%: expect the overwhelming majority resumed.
	if p.resumed < 120 {
		t.Errorf("resume=0.95: only %d resumed of 150 reconnects", p.resumed)
	}
}
