package loadgen

import (
	"container/heap"

	"repro/internal/telemetry"
)

// The virtual-time model. Wall-clock latencies through live goroutines
// and a simulated wire cannot replay bit-exactly, so the report's
// deterministic latency axis comes from here instead: a discrete-event
// queueing simulation of the redirector — a FIFO queue in front of a
// pool of identical servers — executed in virtual nanoseconds on a
// telemetry.ManualClock. Service times are modeled from the measured
// costs of the real vertical (EXPERIMENTS.md E9: full handshake
// ~2.6 ms, abbreviated resumption ~160 µs on the reference host), plus
// a per-byte cost and the plan's precomputed jitter. The model is a
// calibrated estimate, not a measurement — the Measured section of the
// report carries the live counters — but it is exactly reproducible,
// which is what a regression gate needs.
const (
	// modelConnectNs is TCP connect plus teardown per fresh connection.
	modelConnectNs = 300_000
	// modelFullNs / modelResumedNs are the two handshake service times.
	modelFullNs    = 2_600_000
	modelResumedNs = 160_000
	// modelRequestNs is the fixed echo round-trip cost per request.
	modelRequestNs = 80_000
	// modelPerByteNs covers encrypt + redirect + echo + decrypt per
	// payload byte (both directions folded in).
	modelPerByteNs = 30
	// modelJitterSpanNs bounds the plan's per-request service jitter.
	modelJitterSpanNs = 120_000
)

// serviceNs models one request's service time.
func serviceNs(rp *requestPlan) uint64 {
	ns := uint64(modelRequestNs) + uint64(rp.payload)*modelPerByteNs + rp.jitterNs
	if rp.fresh {
		ns += modelConnectNs
		if rp.forget {
			ns += modelFullNs
		} else {
			ns += modelResumedNs
		}
	}
	return ns
}

// candidate is a request that will become ready at ready (its planned
// arrival, or its predecessor's completion). The heap orders by
// (ready, client, idx) — a total order, so the simulation is
// deterministic regardless of map iteration or goroutine scheduling
// (there are no goroutines here at all).
type candidate struct {
	ready       uint64
	client, idx int32
}

type candidateHeap []candidate

func (h candidateHeap) Len() int { return len(h) }
func (h candidateHeap) Less(i, j int) bool {
	if h[i].ready != h[j].ready {
		return h[i].ready < h[j].ready
	}
	if h[i].client != h[j].client {
		return h[i].client < h[j].client
	}
	return h[i].idx < h[j].idx
}
func (h candidateHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *candidateHeap) Push(x any)   { *h = append(*h, x.(candidate)) }
func (h *candidateHeap) Pop() any     { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

type serverHeap []uint64

func (h serverHeap) Len() int           { return len(h) }
func (h serverHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h serverHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *serverHeap) Push(x any)        { *h = append(*h, x.(uint64)) }
func (h *serverHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// modelResult is the deterministic half of the report's raw material.
type modelResult struct {
	durationNs uint64
	requests   uint64
	latency    *telemetry.HDRHistogram
}

// runModel replays the plan through the queueing model. The server
// pool is the effective concurrency bound: the client-side closed-loop
// width, further capped by the redirector's admission bound when one
// is configured (an admitted-or-queued approximation of the live
// refuse-and-retry behavior).
func runModel(cfg *Config, p *plan, reg *telemetry.Registry) *modelResult {
	pool := cfg.Concurrency
	if cfg.MaxInflight > 0 && cfg.MaxInflight < pool {
		pool = cfg.MaxInflight
	}
	if pool < 1 {
		pool = 1
	}

	clock := telemetry.NewManualClock(0)
	res := &modelResult{latency: telemetry.NewHDRHistogram()}
	log2 := reg.Histogram("loadgen.latency_virtual_ns")

	servers := make(serverHeap, pool) // all free at t=0
	heap.Init(&servers)
	cands := make(candidateHeap, 0, len(p.clients))
	for c := range p.clients {
		if len(p.clients[c].reqs) == 0 {
			continue
		}
		cands = append(cands, candidate{ready: p.clients[c].reqs[0].arrivalNs, client: int32(c)})
	}
	heap.Init(&cands)

	for cands.Len() > 0 {
		cand := heap.Pop(&cands).(candidate)
		clock.Set(cand.ready)
		rp := &p.clients[cand.client].reqs[cand.idx]
		free := heap.Pop(&servers).(uint64)
		start := max(cand.ready, free)
		finish := start + serviceNs(rp)
		heap.Push(&servers, finish)
		lat := finish - cand.ready // queue wait + service
		res.latency.Observe(lat)
		log2.Observe(lat)
		res.requests++
		if finish > res.durationNs {
			res.durationNs = finish
		}
		if next := cand.idx + 1; int(next) < len(p.clients[cand.client].reqs) {
			ready := finish // closed loop: go again on completion
			if cfg.Mode == ModeOpen {
				// Open loop: the planned arrival fires regardless of
				// completion, except a client cannot overlap itself.
				ready = max(p.clients[cand.client].reqs[next].arrivalNs, finish)
			}
			heap.Push(&cands, candidate{ready: ready, client: cand.client, idx: next})
		}
	}
	clock.Set(res.durationNs)
	return res
}
