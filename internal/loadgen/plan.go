package loadgen

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/crypto/prng"
)

// The workload plan is the determinism anchor: every per-request
// decision — when it arrives, how many bytes it carries, whether it
// rides the existing connection or churns to a fresh one, whether a
// fresh connection offers the cached session or goes in cold — is
// drawn up front from the seed, before anything touches a socket.
// The virtual-time model replays the plan exactly; the real vertical
// executes the same plan against live stacks. Two runs with the same
// seed therefore share every scheduling decision, and the Virtual
// section of the report is bit-identical across runs.

// PayloadClass is one entry of a payload size distribution.
type PayloadClass struct {
	Size   int
	Weight int
}

// PayloadDist is a weighted payload size distribution.
type PayloadDist []PayloadClass

// DefaultPayloads mixes the paper's workload shape: mostly small
// redirected requests, some page-sized, a tail of bulk transfers.
var DefaultPayloads = PayloadDist{{64, 60}, {512, 30}, {4096, 10}}

func (d PayloadDist) total() int {
	t := 0
	for _, c := range d {
		t += c.Weight
	}
	return t
}

// pick draws a size from the distribution.
func (d PayloadDist) pick(rng *prng.Xorshift) int {
	r := rng.Intn(d.total())
	for _, c := range d {
		if r < c.Weight {
			return c.Size
		}
		r -= c.Weight
	}
	return d[len(d)-1].Size
}

// ParsePayloads parses a "size:weight,size:weight" spec, e.g.
// "64:60,512:30,4096:10".
func ParsePayloads(s string) (PayloadDist, error) {
	var d PayloadDist
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		size, weight, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("loadgen: payload class %q: want size:weight", part)
		}
		sz, err := strconv.Atoi(size)
		if err != nil || sz <= 0 {
			return nil, fmt.Errorf("loadgen: payload size %q", size)
		}
		w, err := strconv.Atoi(weight)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("loadgen: payload weight %q", weight)
		}
		d = append(d, PayloadClass{Size: sz, Weight: w})
	}
	if len(d) == 0 {
		return nil, fmt.Errorf("loadgen: empty payload distribution")
	}
	sort.SliceStable(d, func(i, j int) bool { return d[i].Size < d[j].Size })
	return d, nil
}

// requestPlan is one request's precomputed decisions.
type requestPlan struct {
	// arrivalNs is the planned virtual arrival (open loop; 0 in closed
	// loop, where arrival is the previous request's completion).
	arrivalNs uint64
	// payload is the echo payload length in bytes.
	payload int
	// fresh starts a new connection (handshake) for this request.
	fresh bool
	// forget drops the cached session first, forcing a full handshake
	// (only meaningful with fresh).
	forget bool
	// jitterNs perturbs the modeled service time so virtual latencies
	// spread like a real run's instead of collapsing to three spikes.
	jitterNs uint64
}

// clientPlan is one virtual client's request sequence.
type clientPlan struct {
	// seed feeds the client's live-run PRNG (handshake nonces, backoff
	// jitter).
	seed uint64
	reqs []requestPlan
}

// plan is a fully materialized workload.
type plan struct {
	clients []clientPlan
	// requests is the total planned request count.
	requests uint64
	// full/resumed count planned handshakes, assuming the server-side
	// session cache holds every offered session (the virtual model's
	// assumption; the measured section reports what the live cache
	// actually granted).
	full, resumed uint64
}

// expFloat turns a PRNG draw into (0,1] suitable for -ln(u). The +0.5
// keeps u strictly positive so Log never sees zero.
func expFloat(rng *prng.Xorshift) float64 {
	return (float64(rng.Next64()>>11) + 0.5) / (1 << 53)
}

// buildPlan materializes the workload from the seed. Decisions are
// drawn client by client, request by request, in one fixed order —
// the whole point is that nothing here depends on execution timing.
func buildPlan(cfg *Config) *plan {
	master := prng.NewXorshift(cfg.Seed ^ 0x10AD6E11)
	p := &plan{clients: make([]clientPlan, cfg.Clients)}
	resumeBar := int(cfg.Resume * 1e6)
	// Open loop: aggregate RatePerSec split evenly over clients, each an
	// independent Poisson process (the superposition is Poisson at the
	// aggregate rate).
	perClientRate := 0.0
	if cfg.Mode == ModeOpen && cfg.Clients > 0 {
		perClientRate = cfg.RatePerSec / float64(cfg.Clients)
	}
	for c := range p.clients {
		cp := &p.clients[c]
		cp.seed = master.Next64() | 1
		rng := prng.NewXorshift(master.Next64() | 1)
		cp.reqs = make([]requestPlan, cfg.Requests)
		var clock uint64 // virtual arrival clock, open loop only
		for r := range cp.reqs {
			rp := &cp.reqs[r]
			rp.fresh = r == 0 || (cfg.ChurnEvery > 0 && r%cfg.ChurnEvery == 0)
			if rp.fresh {
				// First connection has no session to offer; later ones
				// resume with probability cfg.Resume.
				rp.forget = r == 0 || rng.Intn(1e6) >= resumeBar
				if rp.forget {
					p.full++
				} else {
					p.resumed++
				}
			}
			rp.payload = cfg.Payloads.pick(rng)
			rp.jitterNs = uint64(rng.Intn(modelJitterSpanNs))
			if cfg.Mode == ModeOpen {
				// Exponential inter-arrival, rounded to whole nanoseconds
				// immediately so the plan replays bit-exactly.
				dt := -math.Log(expFloat(rng)) / perClientRate * 1e9
				clock += uint64(dt)
				rp.arrivalNs = clock
			}
			p.requests++
		}
	}
	return p
}
