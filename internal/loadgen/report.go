package loadgen

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/telemetry"
)

// Percentiles is an exact-percentile latency summary read out of an
// HDR histogram (values are bucket upper bounds, within 1/64 relative
// error; see telemetry.HDRHistogram).
type Percentiles struct {
	P50    uint64  `json:"p50_ns"`
	P90    uint64  `json:"p90_ns"`
	P95    uint64  `json:"p95_ns"`
	P99    uint64  `json:"p99_ns"`
	P999   uint64  `json:"p999_ns"`
	Max    uint64  `json:"max_ns"`
	MeanNs float64 `json:"mean_ns"`
}

func percentilesFrom(h *telemetry.HDRHistogram) Percentiles {
	return Percentiles{
		P50:    h.Quantile(0.50),
		P90:    h.Quantile(0.90),
		P95:    h.Quantile(0.95),
		P99:    h.Quantile(0.99),
		P999:   h.Quantile(0.999),
		Max:    h.Max(),
		MeanNs: h.Mean(),
	}
}

// VirtualReport is the deterministic section: identical across runs
// with the same configuration and seed. It is the regression-gate
// axis — diff it field by field, bucket by bucket.
type VirtualReport struct {
	DurationNs        uint64                `json:"duration_ns"`
	RPS               float64               `json:"rps"`
	Requests          uint64                `json:"requests"`
	HandshakesFull    uint64                `json:"handshakes_full"`
	HandshakesResumed uint64                `json:"handshakes_resumed"`
	Latency           Percentiles           `json:"latency"`
	Buckets           []telemetry.HDRBucket `json:"buckets"`
}

// MeasuredReport is the live section: what the real vertical did,
// counted by the telemetry registry and the fleet itself. Timing
// fields here are wall clock and vary run to run; the count fields
// (requests, errors, byte totals) are stable when the run is fault
// free.
type MeasuredReport struct {
	DurationNs        uint64  `json:"duration_ns"`
	RPS               float64 `json:"rps"`
	Requests          uint64  `json:"requests"`
	Errors            uint64  `json:"errors"`
	EchoMismatches    uint64  `json:"echo_mismatches"`
	Retries           uint64  `json:"request_retries,omitempty"`
	ResumeFallbacks   uint64  `json:"resume_fallbacks,omitempty"`
	BytesEchoed       uint64  `json:"bytes_echoed"`
	HandshakesFull    uint64  `json:"handshakes_full"`
	HandshakesResumed uint64  `json:"handshakes_resumed"`
	HandshakesFailed  uint64  `json:"handshakes_failed"`
	TicketsIssued     uint64  `json:"tickets_issued,omitempty"`
	TicketsResumed    uint64  `json:"tickets_resumed,omitempty"`
	TicketsRejected   uint64  `json:"tickets_rejected,omitempty"`
	Accepted          uint64  `json:"accepted"`
	Refused           uint64  `json:"refused"`
	AdmissionRefused  uint64  `json:"admission_refused"`
	DialAttempts      uint64  `json:"dial_attempts"`
	DialFailures      uint64  `json:"dial_failures"`
	// HandshakesPerSec is completed handshakes (full + resumed) per
	// wall-clock second — the stampede scenario's SLO axis.
	HandshakesPerSec float64 `json:"handshakes_per_sec,omitempty"`
	// SignPoolOps / SignPoolQueueFull read the server's RSA worker pool:
	// private-key operations run through it, and how many submissions
	// found the queue full and had to wait (graceful queuing — never an
	// error). Zero when no pool is configured.
	SignPoolOps       uint64       `json:"signpool_ops,omitempty"`
	SignPoolQueueFull uint64       `json:"signpool_queue_full,omitempty"`
	WallLatency       *Percentiles `json:"wall_latency,omitempty"`

	// PerInstance breaks the server-side counters down by fleet
	// instance (cluster mode only) — the per-instance SLO view.
	PerInstance []InstanceReport `json:"per_instance,omitempty"`
	// Cluster is the balancer's verdict on the run (cluster mode only).
	Cluster *ClusterReport `json:"cluster,omitempty"`
}

// InstanceReport is one fleet instance's share of the work, read from
// its private telemetry registry.
type InstanceReport struct {
	Node              int    `json:"node"`
	Up                bool   `json:"up"` // health verdict at run end
	Accepted          uint64 `json:"accepted"`
	Refused           uint64 `json:"refused"`
	AdmissionRefused  uint64 `json:"admission_refused,omitempty"`
	DrainedConns      uint64 `json:"drained_conns,omitempty"`
	HandshakesFull    uint64 `json:"handshakes_full"`
	HandshakesResumed uint64 `json:"handshakes_resumed"`
	HandshakesFailed  uint64 `json:"handshakes_failed,omitempty"`
	TicketsIssued     uint64 `json:"tickets_issued"`
	TicketsResumed    uint64 `json:"tickets_resumed"`
	TicketsRejected   uint64 `json:"tickets_rejected,omitempty"`
	BytesForward      uint64 `json:"bytes_forward"`
	BytesBackward     uint64 `json:"bytes_backward"`
}

// ClusterReport is the L4 balancer's summary: how traffic spread, what
// failed over, and — under the node-kill plan — how fast the fleet
// recovered.
type ClusterReport struct {
	Instances  int    `json:"instances"`
	Policy     string `json:"policy"`
	Balanced   uint64 `json:"balanced"`  // connections spliced to a node
	Refused    uint64 `json:"refused"`   // connections no node would take
	Failovers  uint64 `json:"failovers"` // candidates skipped on connect failure
	NodeDowns  uint64 `json:"node_downs"`
	NodeUps    uint64 `json:"node_ups"`
	NodesUpEnd int    `json:"nodes_up_end"`
	// KilledNode is the chaos plan's victim (-1 when no kill ran).
	KilledNode     int    `json:"killed_node"`
	KillAfterNs    uint64 `json:"kill_after_ns,omitempty"`
	RestartAfterNs uint64 `json:"restart_after_ns,omitempty"`
	// RecoveryNs is kill -> first subsequent successful request across
	// the fleet: the service-level recovery bound.
	RecoveryNs uint64 `json:"recovery_ns,omitempty"`
}

// Delta is one before/after pair from a baseline comparison. Pct is
// the relative change in percent: positive means New > Old.
type Delta struct {
	Old float64 `json:"old"`
	New float64 `json:"new"`
	Pct float64 `json:"pct"`
}

// keyBitsOf normalizes the server-key size for comparability: reports
// written before the KeyBits knob existed (field absent → 0) all used
// the historical 512-bit key.
func keyBitsOf(r *Report) int {
	if !r.Secure {
		return 0
	}
	if r.KeyBits == 0 {
		return 512
	}
	return r.KeyBits
}

func deltaOf(old, new float64) Delta {
	d := Delta{Old: old, New: new}
	if old != 0 {
		d.Pct = (new - old) / old * 100
	}
	return d
}

// BaselineDelta compares this run against a previously committed
// report. Comparable is false when the two runs used different
// workloads (seed, sizing, mode, or security differ), in which case
// the deltas are still filled in but mean nothing as a regression
// signal. MeasuredRPS is the wall-clock throughput axis — the one a
// host-side kernel optimization moves; VirtualRPS is deterministic per
// seed and should not move at all between runs of the same workload.
type BaselineDelta struct {
	Comparable    bool  `json:"comparable"`
	MeasuredRPS   Delta `json:"measured_rps"`
	VirtualRPS    Delta `json:"virtual_rps"`
	VirtualP50Ns  Delta `json:"virtual_p50_ns"`
	VirtualP99Ns  Delta `json:"virtual_p99_ns"`
	MeasuredReqNs Delta `json:"measured_ns_per_request"`
}

// Report is the SLO report: configuration echo, the deterministic
// virtual section, and the measured section.
type Report struct {
	Seed        uint64  `json:"seed"`
	Clients     int     `json:"clients"`
	Requests    int     `json:"requests_per_client"`
	Mode        string  `json:"mode"`
	RatePerSec  float64 `json:"rate_per_sec,omitempty"`
	Concurrency int     `json:"concurrency"`
	Resume      float64 `json:"resume"`
	ChurnEvery  int     `json:"churn_every"`
	MaxInflight int     `json:"max_inflight"`
	Secure      bool    `json:"secure"`
	Faulty      bool    `json:"faulty"`
	Stampede    bool    `json:"stampede,omitempty"`
	SignWorkers int     `json:"sign_workers,omitempty"`
	KeyBits     int     `json:"key_bits,omitempty"`
	Instances   int     `json:"instances,omitempty"`
	Policy      string  `json:"policy,omitempty"`
	// VirtualOnly marks a run whose live half was skipped
	// (Config.VirtualOnly): the measured section is all zeros by
	// construction, not a report of a zero-work run.
	VirtualOnly bool `json:"virtual_only,omitempty"`

	Virtual  VirtualReport  `json:"virtual"`
	Measured MeasuredReport `json:"measured"`

	// Baseline is filled in by AttachBaseline when a previously
	// committed report is available to diff against.
	Baseline *BaselineDelta `json:"baseline_delta,omitempty"`
}

// AttachBaseline computes the before/after section against a prior
// report (typically the committed BENCH_load.json from the last perf
// PR) and hangs it off the report as baseline_delta.
func (r *Report) AttachBaseline(old *Report) {
	nsPerReq := func(rep *Report) float64 {
		if rep.Measured.Requests == 0 {
			return 0
		}
		return float64(rep.Measured.DurationNs) / float64(rep.Measured.Requests)
	}
	r.Baseline = &BaselineDelta{
		Comparable: old.Seed == r.Seed && old.Clients == r.Clients &&
			old.Requests == r.Requests && old.Mode == r.Mode &&
			old.Resume == r.Resume && old.ChurnEvery == r.ChurnEvery &&
			old.Concurrency == r.Concurrency && old.Secure == r.Secure &&
			old.Faulty == r.Faulty && old.Stampede == r.Stampede &&
			keyBitsOf(old) == keyBitsOf(r),
		MeasuredRPS:   deltaOf(old.Measured.RPS, r.Measured.RPS),
		VirtualRPS:    deltaOf(old.Virtual.RPS, r.Virtual.RPS),
		VirtualP50Ns:  deltaOf(float64(old.Virtual.Latency.P50), float64(r.Virtual.Latency.P50)),
		VirtualP99Ns:  deltaOf(float64(old.Virtual.Latency.P99), float64(r.Virtual.Latency.P99)),
		MeasuredReqNs: deltaOf(nsPerReq(old), nsPerReq(r)),
	}
}

// WriteJSON writes the full report (BENCH_load.json).
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport parses a report previously written by WriteJSON.
func ReadReport(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("loadgen: parse baseline report: %w", err)
	}
	return &r, nil
}

// WriteText writes the human SLO report.
func (r *Report) WriteText(w io.Writer) error {
	mode := r.Mode
	if r.Mode == "open" {
		mode = fmt.Sprintf("open @ %.0f req/s offered", r.RatePerSec)
	}
	sec := "secure (issl Unix profile)"
	if !r.Secure {
		sec = "plaintext baseline"
	} else if r.KeyBits != 0 && r.KeyBits != 512 {
		sec = fmt.Sprintf("secure (issl Unix profile, %d-bit key)", r.KeyBits)
	}
	if r.Stampede {
		mode += " stampede"
	}
	fmt.Fprintf(w, "loadbench: seed=%d  %d clients x %d requests  %s  %s\n",
		r.Seed, r.Clients, r.Requests, mode, sec)
	fmt.Fprintf(w, "           resume=%.0f%%  churn-every=%d  concurrency=%d  max-inflight=%d  faults=%v\n\n",
		r.Resume*100, r.ChurnEvery, r.Concurrency, r.MaxInflight, r.Faulty)

	v := &r.Virtual
	fmt.Fprintf(w, "virtual (deterministic, replayable):\n")
	fmt.Fprintf(w, "  duration       %12.3f s\n", float64(v.DurationNs)/1e9)
	fmt.Fprintf(w, "  throughput     %12.1f req/s\n", v.RPS)
	fmt.Fprintf(w, "  requests       %12d\n", v.Requests)
	hsRate := func(n uint64) float64 {
		if v.DurationNs == 0 {
			return 0
		}
		return float64(n) / (float64(v.DurationNs) / 1e9)
	}
	fmt.Fprintf(w, "  handshakes     %12d full (%.1f/s), %d resumed (%.1f/s)\n",
		v.HandshakesFull, hsRate(v.HandshakesFull), v.HandshakesResumed, hsRate(v.HandshakesResumed))
	writePct(w, "  latency", v.Latency)

	if r.VirtualOnly {
		fmt.Fprintf(w, "\nmeasured: skipped (virtual-only run)\n")
		return nil
	}
	m := &r.Measured
	fmt.Fprintf(w, "\nmeasured (live vertical, wall clock):\n")
	fmt.Fprintf(w, "  duration       %12.3f s\n", float64(m.DurationNs)/1e9)
	fmt.Fprintf(w, "  throughput     %12.1f req/s\n", m.RPS)
	fmt.Fprintf(w, "  requests       %12d ok, %d errors\n", m.Requests, m.Errors)
	fmt.Fprintf(w, "  bytes echoed   %12d\n", m.BytesEchoed)
	fmt.Fprintf(w, "  handshakes     %12d full, %d resumed, %d failed\n",
		m.HandshakesFull, m.HandshakesResumed, m.HandshakesFailed)
	fmt.Fprintf(w, "  server         %12d accepted, %d refused (%d admission)\n",
		m.Accepted, m.Refused, m.AdmissionRefused)
	fmt.Fprintf(w, "  dials          %12d attempts, %d failures\n", m.DialAttempts, m.DialFailures)
	if m.EchoMismatches > 0 || m.Retries > 0 || m.ResumeFallbacks > 0 {
		fmt.Fprintf(w, "  degradations   %12d echo mismatches, %d request retries, %d resume fallbacks\n",
			m.EchoMismatches, m.Retries, m.ResumeFallbacks)
	}
	if m.TicketsIssued > 0 || m.TicketsResumed > 0 || m.TicketsRejected > 0 {
		fmt.Fprintf(w, "  tickets        %12d issued, %d resumed, %d rejected\n",
			m.TicketsIssued, m.TicketsResumed, m.TicketsRejected)
	}
	if m.WallLatency != nil {
		writePct(w, "  wall latency", *m.WallLatency)
	}

	if r.Stampede || m.SignPoolOps > 0 {
		fmt.Fprintf(w, "\nhandshake SLO")
		if r.Stampede {
			fmt.Fprintf(w, " (reconnect stampede: %d simultaneous dials, 0%% resumption)", r.Clients)
		}
		fmt.Fprintln(w, ":")
		fmt.Fprintf(w, "  handshakes/sec %12.1f completed per wall second\n", m.HandshakesPerSec)
		if r.SignWorkers > 0 {
			fmt.Fprintf(w, "  sign pool      %12d ops through %d worker(s), %d queue-full waits\n",
				m.SignPoolOps, r.SignWorkers, m.SignPoolQueueFull)
		} else {
			fmt.Fprintf(w, "  sign pool      %12s (RSA key ops inline per connection)\n", "disabled")
		}
	}

	if c := m.Cluster; c != nil {
		fmt.Fprintf(w, "\ncluster (%d instances, %s policy):\n", c.Instances, c.Policy)
		fmt.Fprintf(w, "  balancer       %12d balanced, %d refused, %d failovers\n",
			c.Balanced, c.Refused, c.Failovers)
		fmt.Fprintf(w, "  health         %12d downs, %d reinstatements, %d/%d up at end\n",
			c.NodeDowns, c.NodeUps, c.NodesUpEnd, c.Instances)
		if c.KilledNode >= 0 {
			fmt.Fprintf(w, "  chaos          node %d killed at %.2fs", c.KilledNode, float64(c.KillAfterNs)/1e9)
			if c.RestartAfterNs > 0 {
				fmt.Fprintf(w, ", restarted %.2fs later", float64(c.RestartAfterNs)/1e9)
			}
			if c.RecoveryNs > 0 {
				fmt.Fprintf(w, "; first post-kill success after %.1fms", float64(c.RecoveryNs)/1e6)
			}
			fmt.Fprintln(w)
		}
		for _, inst := range m.PerInstance {
			state := "up"
			if !inst.Up {
				state = "down"
			}
			fmt.Fprintf(w, "  node %-2d %-4s   %12d accepted, hs %d full / %d resumed, tickets %d issued / %d resumed / %d rejected\n",
				inst.Node, state, inst.Accepted, inst.HandshakesFull, inst.HandshakesResumed,
				inst.TicketsIssued, inst.TicketsResumed, inst.TicketsRejected)
		}
	}

	if d := r.Baseline; d != nil {
		fmt.Fprintf(w, "\nbaseline delta:")
		if !d.Comparable {
			fmt.Fprintf(w, " (workloads differ — not a regression signal)")
		}
		fmt.Fprintln(w)
		row := func(label, unit string, dl Delta, scale float64) {
			fmt.Fprintf(w, "  %-14s %12.1f -> %-12.1f %s  (%+.1f%%)\n",
				label, dl.Old/scale, dl.New/scale, unit, dl.Pct)
		}
		row("measured rps", "req/s", d.MeasuredRPS, 1)
		row("measured cost", "ms/req", d.MeasuredReqNs, 1e6)
		row("virtual rps", "req/s", d.VirtualRPS, 1)
		row("virtual p99", "ms", d.VirtualP99Ns, 1e6)
	}
	return nil
}

func writePct(w io.Writer, label string, p Percentiles) {
	ms := func(ns uint64) float64 { return float64(ns) / 1e6 }
	fmt.Fprintf(w, "%s   p50 %.3fms  p90 %.3fms  p95 %.3fms  p99 %.3fms  p999 %.3fms  max %.3fms  mean %.3fms\n",
		label, ms(p.P50), ms(p.P90), ms(p.P95), ms(p.P99), ms(p.P999), ms(p.Max), p.MeanNs/1e6)
}
