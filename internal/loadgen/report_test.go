package loadgen

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func sampleReport(measuredRPS float64, durNs, reqs uint64) *Report {
	return &Report{
		Seed: 1, Clients: 1000, Requests: 2, Mode: "closed",
		Concurrency: 32, Resume: 0.95, ChurnEvery: 1, Secure: true,
		Virtual: VirtualReport{RPS: 16520, Latency: Percentiles{P50: 54_000_000, P99: 95_000_000}},
		Measured: MeasuredReport{
			RPS: measuredRPS, DurationNs: durNs, Requests: reqs,
		},
	}
}

func TestAttachBaselineDelta(t *testing.T) {
	old := sampleReport(313, 6_388_795_114, 2000)
	cur := sampleReport(939, 2_129_598_371, 2000)
	cur.AttachBaseline(old)
	d := cur.Baseline
	if d == nil {
		t.Fatal("no baseline_delta attached")
	}
	if !d.Comparable {
		t.Error("identical workloads should be comparable")
	}
	if d.MeasuredRPS.Old != 313 || d.MeasuredRPS.New != 939 {
		t.Errorf("measured rps delta = %+v", d.MeasuredRPS)
	}
	if math.Abs(d.MeasuredRPS.Pct-200) > 0.01 {
		t.Errorf("measured rps pct = %v, want 200", d.MeasuredRPS.Pct)
	}
	// Virtual section is deterministic per seed: same workload, zero delta.
	if d.VirtualRPS.Pct != 0 || d.VirtualP99Ns.Pct != 0 {
		t.Errorf("virtual deltas should be zero: %+v %+v", d.VirtualRPS, d.VirtualP99Ns)
	}
	// Per-request wall cost should shrink by the same 3x.
	if math.Abs(d.MeasuredReqNs.Pct - -66.66) > 0.1 {
		t.Errorf("ns/request pct = %v, want about -66.7", d.MeasuredReqNs.Pct)
	}

	var buf bytes.Buffer
	if err := cur.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "baseline delta:") {
		t.Error("text report missing baseline delta section")
	}
	if strings.Contains(buf.String(), "workloads differ") {
		t.Error("comparable run flagged as differing")
	}
}

func TestAttachBaselineIncomparable(t *testing.T) {
	old := sampleReport(313, 6_388_795_114, 2000)
	old.Clients = 32 // a smoke-sized baseline against a full run
	cur := sampleReport(939, 2_129_598_371, 2000)
	cur.AttachBaseline(old)
	if cur.Baseline.Comparable {
		t.Error("different client counts must not be comparable")
	}
	var buf bytes.Buffer
	if err := cur.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "workloads differ") {
		t.Error("text report should flag incomparable workloads")
	}
}

func TestReadReportRoundTrip(t *testing.T) {
	old := sampleReport(313, 6_388_795_114, 2000)
	var buf bytes.Buffer
	if err := old.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Measured.RPS != old.Measured.RPS || back.Seed != old.Seed {
		t.Errorf("round trip mismatch: %+v", back)
	}
	if _, err := ReadReport(strings.NewReader("{not json")); err == nil {
		t.Error("garbage baseline should fail to parse")
	}
}
