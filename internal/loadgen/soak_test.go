package loadgen

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/chaos"
)

// TestSoak1kConnections is the capacity soak: a thousand connections
// (500 clients x 2 churned requests) through the full secure vertical
// over a degraded wire — the chaos harness's canonical fault schedule:
// burst loss, corruption, duplicates, reordering. Every completed
// request was verified byte-exact by the fleet; the soak asserts the
// error tail stays within the retry budget, the bounded session cache
// kept granting resumptions, and the goroutine population returns to
// baseline after the run (no leaked handlers, pumps or stacks).
func TestSoak1kConnections(t *testing.T) {
	if testing.Short() {
		t.Skip("loadgen soak skipped in -short mode")
	}
	baseline := runtime.NumGoroutine()

	rep, err := Run(Config{
		Seed:        0x50AC,
		Clients:     500,
		Requests:    2,
		Resume:      0.95,
		Concurrency: 32,
		Faults:      chaos.SoakPlan(0x50AC),
	})
	if err != nil {
		t.Fatal(err)
	}

	const planned = 500 * 2
	if got := rep.Measured.Requests + rep.Measured.Errors; got != planned {
		t.Errorf("accounted requests = %d, want %d", got, planned)
	}
	// The retry policy absorbs the wire's faults; a small residue of
	// exhausted retries is tolerated, a large one means recovery broke.
	if rep.Measured.Errors > planned/50 {
		t.Errorf("error tail too fat: %d of %d (>2%%)", rep.Measured.Errors, planned)
	}
	if rep.Measured.BytesEchoed == 0 {
		t.Error("no bytes echoed")
	}
	// The 95% resumption mix must actually reach the server: the
	// bounded sharded cache has to grant a solid majority of the ~475
	// planned resumptions even with faults forcing occasional full
	// re-handshakes.
	if rep.Measured.HandshakesResumed < rep.Virtual.HandshakesResumed/2 {
		t.Errorf("resumptions collapsed: measured %d, planned %d",
			rep.Measured.HandshakesResumed, rep.Virtual.HandshakesResumed)
	}

	// Goroutine population must return to baseline: Run tears down the
	// fleet, redirector (Close waits for handlers), stacks and hub.
	// Poll briefly — TIME_WAIT reapers and pump halves wind down
	// asynchronously after Close returns.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= baseline+3 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s", baseline, now, buf[:n])
		}
		time.Sleep(100 * time.Millisecond)
	}
}
