package loadgen

import (
	"runtime"
	"testing"
)

// runStampede executes one reconnect-stampede run and checks the
// invariants every stampede must hold regardless of pool size: zero
// errors, byte-exact echo, every handshake full (the scenario forces
// 0% resumption), and — when a pool is configured — every private-key
// operation accounted for by the pool.
func runStampede(t *testing.T, workers, keyBits int) *Report {
	t.Helper()
	rep, err := Run(Config{
		Seed:        0x57A3,
		Clients:     16, // fits the listen backlog: no dial-retry noise
		Requests:    3,
		Stampede:    true,
		SignWorkers: workers,
		KeyBits:     keyBits,
	})
	if err != nil {
		t.Fatalf("stampede run (pool=%d): %v", workers, err)
	}
	if !rep.Stampede || rep.Resume != 0 || rep.ChurnEvery != 1 || rep.Concurrency != rep.Clients {
		t.Fatalf("stampede config not forced: resume=%v churn=%d concurrency=%d",
			rep.Resume, rep.ChurnEvery, rep.Concurrency)
	}
	m := &rep.Measured
	wantHS := uint64(rep.Clients * rep.Requests)
	if m.Errors != 0 || m.EchoMismatches != 0 || m.DialFailures != 0 {
		t.Fatalf("stampede degraded (pool=%d): %d errors, %d mismatches, %d dial failures",
			workers, m.Errors, m.EchoMismatches, m.DialFailures)
	}
	if m.Requests != wantHS || m.HandshakesFull != wantHS || m.HandshakesResumed != 0 {
		t.Fatalf("stampede handshakes (pool=%d): %d ok, %d full, %d resumed; want %d all-full",
			workers, m.Requests, m.HandshakesFull, m.HandshakesResumed, wantHS)
	}
	if workers > 0 && m.SignPoolOps != wantHS {
		t.Fatalf("signpool_ops = %d, want %d (every key-exchange decrypt pooled)",
			m.SignPoolOps, wantHS)
	}
	if workers == 0 && m.SignPoolOps != 0 {
		t.Fatalf("signpool_ops = %d with no pool configured", m.SignPoolOps)
	}
	if m.HandshakesPerSec <= 0 {
		t.Fatalf("HandshakesPerSec = %v, want > 0", m.HandshakesPerSec)
	}
	return rep
}

// TestStampedeAllFresh pins the scenario semantics: 0% resumption, a
// full handshake per request, zero errors, every RSA op through the
// pool — the correctness half of the stampede acceptance.
func TestStampedeAllFresh(t *testing.T) {
	runStampede(t, 1, 1024)
	runStampede(t, 0, 512) // poolless baseline stays clean too
}

// TestStampedePoolScaling is the throughput half: with an RSA-bound
// handshake (2048-bit key) a 4-worker sign pool must complete the
// stampede at >= 2x the handshakes/sec of a 1-worker pool. RSA here is
// pure compute, so the assertion only means anything when the host can
// actually run 4 workers at once.
func TestStampedePoolScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("stampede scaling run is seconds of RSA; skipped in -short")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("sign-pool scaling needs >= 4 CPUs (have %d): pool workers serialize on one core", runtime.NumCPU())
	}
	hs1 := runStampede(t, 1, 2048).Measured.HandshakesPerSec
	hs4 := runStampede(t, 4, 2048).Measured.HandshakesPerSec
	t.Logf("stampede handshakes/sec: pool=1 %.1f, pool=4 %.1f (%.2fx)", hs1, hs4, hs4/hs1)
	if hs4 < 2*hs1 {
		t.Errorf("pool=4 %.1f hs/s < 2x pool=1 %.1f hs/s", hs4, hs1)
	}
}
