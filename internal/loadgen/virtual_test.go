package loadgen

// VirtualOnly coverage: the mode that scales the virtual-SLO model to
// populations far beyond what a live in-process fleet can carry, plus
// the -clients bounds that keep the report math inside uint64/float64
// sanity.

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestVirtualOnly10kClients is the cluster smoke at 10k virtual
// clients: virtual section fully populated and internally consistent,
// measured section skipped, fast enough for CI.
func TestVirtualOnly10kClients(t *testing.T) {
	const clients, requests = 10_000, 3
	rep, err := Run(Config{
		Seed: 0xA11, Clients: clients, Requests: requests,
		Resume: 0.95, Concurrency: 64, VirtualOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.VirtualOnly {
		t.Error("report not flagged virtual-only")
	}
	const want = clients * requests
	if rep.Virtual.Requests != want {
		t.Errorf("virtual requests = %d, want %d", rep.Virtual.Requests, want)
	}
	if got := rep.Virtual.HandshakesFull + rep.Virtual.HandshakesResumed; got != want {
		t.Errorf("virtual handshakes = %d, want %d", got, want)
	}
	// At 95% resumption over 10k clients the abbreviated handshake
	// dominates — the Goldberg et al. acceptance mix.
	if rep.Virtual.HandshakesResumed < rep.Virtual.HandshakesFull {
		t.Errorf("resumed (%d) < full (%d) at resume=0.95",
			rep.Virtual.HandshakesResumed, rep.Virtual.HandshakesFull)
	}
	if rep.Virtual.Latency.P50 == 0 || rep.Virtual.Latency.Max < rep.Virtual.Latency.P99 ||
		rep.Virtual.Latency.P99 < rep.Virtual.Latency.P50 {
		t.Errorf("degenerate latency table: %+v", rep.Virtual.Latency)
	}
	// The live fleet never ran.
	if m := rep.Measured; m.Requests != 0 || m.BytesEchoed != 0 || m.DialAttempts != 0 {
		t.Errorf("measured section populated in virtual-only mode: %+v", m)
	}
	var txt bytes.Buffer
	if err := rep.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "virtual-only") {
		t.Errorf("text report does not flag the skipped measured section:\n%s", txt.String())
	}
}

// TestVirtualOnlyDeterminism: the 10k virtual section is bit-identical
// across runs with one seed, like every other virtual run.
func TestVirtualOnlyDeterminism(t *testing.T) {
	run := func() *Report {
		rep, err := Run(Config{Seed: 99, Clients: 10_000, Requests: 2,
			Resume: 0.5, VirtualOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Virtual, b.Virtual) {
		t.Error("virtual sections differ across identically-seeded runs")
	}
}

// TestClientsBounds pins the population guard: zero, negative and
// over-MaxClients configs must be rejected before any planning work,
// and MaxClients itself must be accepted by validation.
func TestClientsBounds(t *testing.T) {
	for _, n := range []int{0, -1, MaxClients + 1} {
		if _, err := Run(Config{Seed: 1, Clients: n, VirtualOnly: true}); err == nil {
			t.Errorf("Clients=%d accepted", n)
		}
	}
	// MaxClients passes validation (not run: a 2^20-client plan is too
	// slow for a unit test) — checked via withDefaults directly.
	cfg := Config{Seed: 1, Clients: MaxClients, Requests: 1, VirtualOnly: true}
	if _, err := cfg.withDefaults(); err != nil {
		t.Errorf("Clients=MaxClients rejected: %v", err)
	}
}
