// Fault injection. The paper's wire was a real 10Base-T segment in a
// lab; the interesting failures — collision bursts, a flaky
// transceiver, someone unplugging the hub — arrive correlated, not as
// uniform coin flips. FaultPlan scripts those degradations
// deterministically: every decision comes from one seeded
// prng.Xorshift, so a chaos run is reproducible from its seed alone.
package netsim

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/crypto/prng"
	"repro/internal/telemetry"
)

// FaultPlan scripts the hub's misbehavior. All percentages are 0–100;
// a zero value disables that fault class. The zero plan is a clean
// wire.
type FaultPlan struct {
	// Seed drives every fault decision. Zero is remapped by the PRNG.
	Seed uint64

	// Burst loss, Gilbert–Elliott two-state model: the wire is either
	// Good or Bad; each frame first moves the state with the transition
	// probabilities, then is lost with the state's loss probability.
	// Uniform loss is the degenerate plan with both transitions at 0
	// and LossGoodPct set.
	LossGoodPct  int // loss % while in the Good state
	LossBadPct   int // loss % while in the Bad state (the burst)
	GoodToBadPct int // % chance per frame Good -> Bad
	BadToGoodPct int // % chance per frame Bad -> Good

	// CorruptPct flips one random payload bit in that % of frames —
	// the wire damage TCP and record-layer checksums exist to catch.
	CorruptPct int

	// DupPct delivers that % of frames twice, back to back.
	DupPct int

	// ReorderPct holds that % of frames back, releasing each after
	// 1..ReorderDepth subsequent transmissions (bounded reordering).
	ReorderPct   int
	ReorderDepth int // default 3, capped at 16
}

// Errors returned by the fault API.
var (
	ErrBadFaultPlan = errors.New("netsim: invalid fault plan")
	ErrUnknownPort  = errors.New("netsim: no port with that MAC")
)

func pctOK(p int) bool { return p >= 0 && p <= 100 }

// validate checks ranges and applies defaults.
func (p *FaultPlan) validate() error {
	for _, v := range []int{p.LossGoodPct, p.LossBadPct, p.GoodToBadPct,
		p.BadToGoodPct, p.CorruptPct, p.DupPct, p.ReorderPct} {
		if !pctOK(v) {
			return fmt.Errorf("%w: percentage %d outside 0..100", ErrBadFaultPlan, v)
		}
	}
	if p.ReorderDepth < 0 {
		return fmt.Errorf("%w: negative reorder depth", ErrBadFaultPlan)
	}
	if p.ReorderDepth == 0 {
		p.ReorderDepth = 3
	}
	if p.ReorderDepth > 16 {
		p.ReorderDepth = 16
	}
	return nil
}

// FaultStats is a point-in-time snapshot of the fault counters. The
// live counts are telemetry-registry counters updated atomically (see
// Hub.SetTelemetry); this struct is the read API tests and chaos
// harnesses consume.
type FaultStats struct {
	LostGood       uint64 // frames lost in the Good state
	LostBurst      uint64 // frames lost in the Bad state
	Corrupted      uint64
	Duplicated     uint64
	Reordered      uint64
	PartitionDrops uint64
	BadEntries     uint64 // Good -> Bad transitions taken
}

// heldFrame is a reordered frame waiting for its release countdown.
type heldFrame struct {
	frame   Frame
	release int // delivered when this many later sends have happened
}

// faultState is the hub's live fault machinery, guarded by Hub.mu.
// Counters live on the Hub (metrics) so they outlive the plan.
type faultState struct {
	plan FaultPlan
	rng  *prng.Xorshift
	bad  bool // Gilbert–Elliott state
	held []heldFrame
}

// SetFaultPlan installs (or, with nil, clears) a fault plan. The plan
// is copied; its PRNG and Gilbert–Elliott state reset, so installing
// the same plan twice replays the same fault schedule. Frames the old
// plan was holding for reordering are flushed onto the wire first —
// reordering delays frames, it never loses them.
func (h *Hub) SetFaultPlan(p *FaultPlan) error {
	var plan FaultPlan
	if p != nil {
		plan = *p
		if err := plan.validate(); err != nil {
			return err
		}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.fault != nil && len(h.fault.held) > 0 {
		now := h.nowLocked()
		var deliveries []delivery
		for _, hf := range h.fault.held {
			if targets := h.targetsLocked(hf.frame, now); len(targets) > 0 {
				deliveries = append(deliveries, delivery{hf.frame, targets})
			}
			h.metrics.framesSent.Inc()
		}
		h.deliverLocked(deliveries)
	}
	if p == nil {
		h.fault = nil
		return nil
	}
	h.fault = &faultState{plan: plan, rng: prng.NewXorshift(plan.Seed)}
	return nil
}

// FaultStats returns a snapshot of the fault counters. They accumulate
// across plans on the same hub — clearing or replacing a plan keeps
// the history, so a chaos run can install phases and audit the total.
// Each field is read atomically; no lock is taken, so it is safe to
// call mid-run (the fields may not be mutually consistent to the
// frame, which a cumulative audit does not need).
func (h *Hub) FaultStats() FaultStats {
	m := &h.metrics
	return FaultStats{
		LostGood:       m.lostGood.Value(),
		LostBurst:      m.lostBurst.Value(),
		Corrupted:      m.corrupted.Value(),
		Duplicated:     m.duplicated.Value(),
		Reordered:      m.reordered.Value(),
		PartitionDrops: m.partitionDrops.Value(),
		BadEntries:     m.badEntries.Value(),
	}
}

// PartitionPort cuts the port with the given MAC off the wire — frames
// from it and to it vanish — until heal has elapsed (heal <= 0 means
// until HealPort). Partitioning an unknown MAC is an error.
func (h *Hub) PartitionPort(mac MAC, heal time.Duration) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	known := false
	for _, p := range h.ports {
		if p.mac == mac {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("%w: %s", ErrUnknownPort, mac)
	}
	until := time.Time{} // zero: manual heal only
	if heal > 0 {
		until = h.nowLocked().Add(heal)
	}
	if h.partitions == nil {
		h.partitions = map[MAC]time.Time{}
	}
	h.partitions[mac] = until
	return nil
}

// HealPort reconnects a partitioned port immediately.
func (h *Hub) HealPort(mac MAC) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.partitions, mac)
}

// Partitioned reports whether the MAC is currently cut off.
func (h *Hub) Partitioned(mac MAC) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.partitionedLocked(mac, h.nowLocked())
}

// partitionedLocked checks (and lazily heals) a partition. h.mu held.
func (h *Hub) partitionedLocked(mac MAC, now time.Time) bool {
	until, ok := h.partitions[mac]
	if !ok {
		return false
	}
	if !until.IsZero() && now.After(until) {
		delete(h.partitions, mac)
		return false
	}
	return true
}

// applyFaults runs one frame through the fault pipeline. It returns
// the frames to put on the wire now (zero, one, or two — loss, pass,
// duplicate), any previously held frames whose countdown expired, and
// whether the input frame was lost outright (as opposed to held back).
// Called with h.mu held; every rng draw happens here, in send order,
// which is what makes a single-sender fault schedule reproducible.
// Each applied fault bumps its counter and emits a trace event (tr may
// be nil).
func (f *faultState) applyFaults(fr Frame, st *hubMetrics, tr *telemetry.Trace) (now, released []Frame, lost bool) {
	p := &f.plan

	// Countdowns first: the current send is the event held frames wait on.
	kept := f.held[:0]
	for _, hf := range f.held {
		hf.release--
		if hf.release <= 0 {
			released = append(released, hf.frame)
		} else {
			kept = append(kept, hf)
		}
	}
	f.held = kept

	// Gilbert–Elliott transition, then state-dependent loss.
	if f.bad {
		if p.BadToGoodPct > 0 && f.rng.Intn(100) < p.BadToGoodPct {
			f.bad = false
		}
	} else if p.GoodToBadPct > 0 && f.rng.Intn(100) < p.GoodToBadPct {
		f.bad = true
		st.badEntries.Inc()
		tr.Emit("netsim", "fault.burst_enter", "src", fr.Src.String())
	}
	lossPct := p.LossGoodPct
	if f.bad {
		lossPct = p.LossBadPct
	}
	if lossPct > 0 && f.rng.Intn(100) < lossPct {
		if f.bad {
			st.lostBurst.Inc()
			tr.Emit("netsim", "fault.loss", "mode", "burst", "src", fr.Src.String(), "len", len(fr.Payload))
		} else {
			st.lostGood.Inc()
			tr.Emit("netsim", "fault.loss", "mode", "good", "src", fr.Src.String(), "len", len(fr.Payload))
		}
		return nil, released, true
	}

	if p.CorruptPct > 0 && len(fr.Payload) > 0 && f.rng.Intn(100) < p.CorruptPct {
		// Flip one bit in a private copy; the sender's buffer is intact.
		cp := append([]byte(nil), fr.Payload...)
		bit := f.rng.Intn(len(cp) * 8)
		cp[bit/8] ^= 1 << (bit % 8)
		fr.Payload = cp
		st.corrupted.Inc()
		tr.Emit("netsim", "fault.corrupt", "src", fr.Src.String(), "bit", bit)
	}

	if p.ReorderPct > 0 && f.rng.Intn(100) < p.ReorderPct {
		f.held = append(f.held, heldFrame{frame: fr, release: 1 + f.rng.Intn(p.ReorderDepth)})
		st.reordered.Inc()
		tr.Emit("netsim", "fault.reorder", "src", fr.Src.String(), "len", len(fr.Payload))
		return nil, released, false
	}

	now = append(now, fr)
	if p.DupPct > 0 && f.rng.Intn(100) < p.DupPct {
		now = append(now, fr)
		st.duplicated.Inc()
		tr.Emit("netsim", "fault.dup", "src", fr.Src.String(), "len", len(fr.Payload))
	}
	return now, released, false
}
