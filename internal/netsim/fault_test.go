package netsim

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// drain collects every frame currently deliverable on p without blocking
// beyond the grace period.
func drain(p *Port, grace time.Duration) []Frame {
	var got []Frame
	for {
		select {
		case f, ok := <-p.Recv():
			if !ok {
				return got
			}
			got = append(got, f)
		case <-time.After(grace):
			return got
		}
	}
}

func TestFaultPlanValidation(t *testing.T) {
	h := NewHub()
	defer h.Close()
	if err := h.SetFaultPlan(&FaultPlan{CorruptPct: 101}); err == nil {
		t.Error("out-of-range CorruptPct accepted")
	}
	if err := h.SetFaultPlan(&FaultPlan{LossBadPct: -1}); err == nil {
		t.Error("negative LossBadPct accepted")
	}
	if err := h.SetFaultPlan(&FaultPlan{ReorderDepth: -2}); err == nil {
		t.Error("negative ReorderDepth accepted")
	}
	if err := h.SetFaultPlan(&FaultPlan{Seed: 1, DupPct: 10}); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	if err := h.SetFaultPlan(nil); err != nil {
		t.Errorf("clearing plan: %v", err)
	}
}

func TestSetLossClampsAndReports(t *testing.T) {
	h := NewHub()
	defer h.Close()
	if err := h.SetLoss(150, 1); err == nil {
		t.Error("loss 150%% accepted silently")
	}
	a, _ := h.Attach(mac(1))
	h.Attach(mac(2))
	// Clamped to 100: nothing gets through.
	a.Send(Frame{Dst: mac(2)})
	if sent, dropped := h.Stats(); sent != 0 || dropped != 1 {
		t.Errorf("after clamped-to-100 loss: sent=%d dropped=%d", sent, dropped)
	}
	if err := h.SetLoss(50, 1); err != nil {
		t.Errorf("in-range loss rejected: %v", err)
	}
}

func TestClosedPortSendTypedError(t *testing.T) {
	h := NewHub()
	defer h.Close()
	a, _ := h.Attach(mac(1))
	b, _ := h.Attach(mac(2))
	b.Close()
	if err := b.Send(Frame{Dst: mac(1)}); err != ErrPortClosed {
		t.Errorf("send on closed port = %v, want ErrPortClosed", err)
	}
	// Frames to the detached port vanish without panicking.
	if err := a.Send(Frame{Dst: mac(2), Payload: []byte("gone")}); err != nil {
		t.Errorf("send to closed port = %v", err)
	}
	if _, ok := <-b.Recv(); ok {
		t.Error("closed port's recv channel still open")
	}
	// The hub itself is still alive for other traffic.
	c, err := h.Attach(mac(3))
	if err != nil {
		t.Fatal(err)
	}
	a.Send(Frame{Dst: mac(3), Payload: []byte("alive")})
	if f := recvWithTimeout(t, c); string(f.Payload) != "alive" {
		t.Errorf("post-detach delivery got %q", f.Payload)
	}
}

func TestBurstLossGilbertElliott(t *testing.T) {
	h := NewHub()
	defer h.Close()
	// Always-Bad chain with certain loss: everything drops.
	if err := h.SetFaultPlan(&FaultPlan{Seed: 9, GoodToBadPct: 100, LossBadPct: 100}); err != nil {
		t.Fatal(err)
	}
	a, _ := h.Attach(mac(1))
	b, _ := h.Attach(mac(2))
	for i := 0; i < 20; i++ {
		a.Send(Frame{Dst: mac(2), Payload: []byte{byte(i)}})
	}
	if got := drain(b, 50*time.Millisecond); len(got) != 0 {
		t.Errorf("%d frames survived a total burst", len(got))
	}
	st := h.FaultStats()
	// Frame 1 transitions Good->Bad before its loss draw, so all 20 are
	// burst losses.
	if st.LostBurst != 20 || st.BadEntries != 1 {
		t.Errorf("stats = %+v, want 20 burst losses after 1 bad entry", st)
	}

	// Bursty pattern: long quiet spells punctuated by lossy episodes.
	h2 := NewHub()
	defer h2.Close()
	h2.SetFaultPlan(&FaultPlan{Seed: 123, GoodToBadPct: 5, BadToGoodPct: 30, LossBadPct: 90})
	a2, _ := h2.Attach(mac(1))
	b2, _ := h2.Attach(mac(2))
	// Stay under rxQueueDepth: the receiver drains only afterwards.
	const n = 250
	for i := 0; i < n; i++ {
		a2.Send(Frame{Dst: mac(2), Payload: []byte{byte(i)}})
	}
	got := drain(b2, 100*time.Millisecond)
	st2 := h2.FaultStats()
	if st2.LostBurst == 0 || st2.BadEntries == 0 {
		t.Errorf("no burst losses recorded: %+v", st2)
	}
	if st2.LostGood != 0 {
		t.Errorf("good-state losses with LossGoodPct=0: %+v", st2)
	}
	if len(got)+int(st2.LostBurst) != n {
		t.Errorf("delivered %d + lost %d != sent %d", len(got), st2.LostBurst, n)
	}
}

func TestCorruptionFlipsExactlyOneBit(t *testing.T) {
	h := NewHub()
	defer h.Close()
	h.SetFaultPlan(&FaultPlan{Seed: 7, CorruptPct: 100})
	a, _ := h.Attach(mac(1))
	b, _ := h.Attach(mac(2))
	orig := []byte("checksummed payload bytes")
	a.Send(Frame{Dst: mac(2), Payload: append([]byte(nil), orig...)})
	f := recvWithTimeout(t, b)
	diff := 0
	for i := range orig {
		x := orig[i] ^ f.Payload[i]
		for ; x != 0; x &= x - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("corruption flipped %d bits, want exactly 1", diff)
	}
	if h.FaultStats().Corrupted != 1 {
		t.Errorf("Corrupted = %d", h.FaultStats().Corrupted)
	}
}

func TestDuplicationDeliversTwice(t *testing.T) {
	h := NewHub()
	defer h.Close()
	h.SetFaultPlan(&FaultPlan{Seed: 3, DupPct: 100})
	a, _ := h.Attach(mac(1))
	b, _ := h.Attach(mac(2))
	a.Send(Frame{Dst: mac(2), Payload: []byte("twice")})
	got := drain(b, 50*time.Millisecond)
	if len(got) != 2 {
		t.Fatalf("delivered %d copies, want 2", len(got))
	}
	if !bytes.Equal(got[0].Payload, got[1].Payload) {
		t.Error("duplicate differs from original")
	}
}

func TestReorderingIsBoundedAndLossless(t *testing.T) {
	h := NewHub()
	defer h.Close()
	h.SetFaultPlan(&FaultPlan{Seed: 42, ReorderPct: 40, ReorderDepth: 4})
	a, _ := h.Attach(mac(1))
	b, _ := h.Attach(mac(2))
	const n = 200
	for i := 0; i < n; i++ {
		a.Send(Frame{Dst: mac(2), Payload: []byte{byte(i)}})
	}
	// Flush: clean tail frames release any still-held ones.
	h.SetFaultPlan(nil)
	for i := 0; i < 20; i++ {
		a.Send(Frame{Dst: mac(3), Payload: []byte{0xff}})
	}
	got := drain(b, 100*time.Millisecond)
	seen := map[byte]int{}
	outOfOrder := 0
	last := -1
	for _, f := range got {
		if f.Dst != mac(2) {
			continue
		}
		v := int(f.Payload[0])
		seen[byte(v)]++
		if v < last {
			outOfOrder++
		}
		if v > last {
			last = v
		}
	}
	if outOfOrder == 0 {
		t.Error("no reordering observed at 40%")
	}
	// Reordering must not lose or duplicate anything.
	for i := 0; i < n; i++ {
		if seen[byte(i)] != 1 {
			t.Fatalf("frame %d delivered %d times", i, seen[byte(i)])
		}
	}
}

func TestPartitionDropsBothDirectionsThenHeals(t *testing.T) {
	h := NewHub()
	defer h.Close()
	h.SetFaultPlan(&FaultPlan{Seed: 1})
	a, _ := h.Attach(mac(1))
	b, _ := h.Attach(mac(2))
	if err := h.PartitionPort(mac(9), time.Second); err == nil {
		t.Error("partitioning unknown MAC accepted")
	}
	if err := h.PartitionPort(mac(2), 0); err != nil {
		t.Fatal(err)
	}
	if !h.Partitioned(mac(2)) {
		t.Error("Partitioned() = false after PartitionPort")
	}
	a.Send(Frame{Dst: mac(2), Payload: []byte("in")})
	b.Send(Frame{Dst: mac(1), Payload: []byte("out")})
	if got := drain(a, 30*time.Millisecond); len(got) != 0 {
		t.Error("frame escaped the partition outbound")
	}
	if got := drain(b, 30*time.Millisecond); len(got) != 0 {
		t.Error("frame crossed the partition inbound")
	}
	if h.FaultStats().PartitionDrops != 2 {
		t.Errorf("PartitionDrops = %d, want 2", h.FaultStats().PartitionDrops)
	}
	h.HealPort(mac(2))
	a.Send(Frame{Dst: mac(2), Payload: []byte("healed")})
	if f := recvWithTimeout(t, b); string(f.Payload) != "healed" {
		t.Errorf("post-heal delivery got %q", f.Payload)
	}
}

func TestPartitionHealsOnSchedule(t *testing.T) {
	h := NewHub()
	defer h.Close()
	// Drive the heal schedule with a manual clock: no wall-clock sleep,
	// no timing flake — the partition heals exactly when we say time
	// has passed.
	clk := telemetry.NewManualClock(0)
	h.SetClock(clk)
	a, _ := h.Attach(mac(1))
	b, _ := h.Attach(mac(2))
	if err := h.PartitionPort(mac(2), 60*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	a.Send(Frame{Dst: mac(2), Payload: []byte("lost")})
	if !h.Partitioned(mac(2)) {
		t.Fatal("partition not active before its heal time")
	}
	clk.Advance(uint64(80 * time.Millisecond))
	a.Send(Frame{Dst: mac(2), Payload: []byte("after")})
	got := drain(b, 50*time.Millisecond)
	if len(got) != 1 || string(got[0].Payload) != "after" {
		t.Errorf("scheduled heal delivered %d frames", len(got))
	}
	if h.Partitioned(mac(2)) {
		t.Error("partition persists past its heal time")
	}
}

// TestFaultScheduleReproducible is the determinism contract: the same
// seed over the same send sequence yields bit-identical deliveries and
// identical fault counters — what makes a chaos run debuggable.
func TestFaultScheduleReproducible(t *testing.T) {
	run := func() ([]Frame, FaultStats, uint64, uint64) {
		h := NewHub()
		defer h.Close()
		h.SetFaultPlan(&FaultPlan{
			Seed:         0xC0FFEE,
			LossGoodPct:  2,
			LossBadPct:   80,
			GoodToBadPct: 10,
			BadToGoodPct: 25,
			CorruptPct:   15,
			DupPct:       10,
			ReorderPct:   20,
			ReorderDepth: 5,
		})
		a, _ := h.Attach(mac(1))
		b, _ := h.Attach(mac(2))
		for i := 0; i < 500; i++ {
			a.Send(Frame{Dst: mac(2), Payload: []byte{byte(i), byte(i >> 8), 0xAA}})
		}
		got := drain(b, 100*time.Millisecond)
		sent, dropped := h.Stats()
		return got, h.FaultStats(), sent, dropped
	}
	g1, s1, sent1, drop1 := run()
	g2, s2, sent2, drop2 := run()
	if s1 != s2 {
		t.Errorf("fault stats differ across runs:\n%+v\n%+v", s1, s2)
	}
	if sent1 != sent2 || drop1 != drop2 {
		t.Errorf("hub stats differ: %d/%d vs %d/%d", sent1, drop1, sent2, drop2)
	}
	if len(g1) != len(g2) {
		t.Fatalf("delivered %d vs %d frames", len(g1), len(g2))
	}
	for i := range g1 {
		if !bytes.Equal(g1[i].Payload, g2[i].Payload) {
			t.Fatalf("frame %d differs across runs", i)
		}
	}
}
