// Package netsim simulates the wire the RMC2000 development kit plugs
// into: a 10Base-T hub connecting the embedded board to workstation
// hosts. Frames carry Ethernet-style addressing; the hub repeats every
// frame to every other port, optionally applying latency and random
// loss so the TCP layer's retransmission machinery is actually
// exercised.
package netsim

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/crypto/prng"
	"repro/internal/telemetry"
)

// MAC is a six-byte hardware address.
type MAC [6]byte

// Broadcast is the all-ones broadcast address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// String renders the address in colon-hex.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// EtherType values used by the stack.
const (
	EtherTypeIPv4 = 0x0800
	EtherTypeARP  = 0x0806
)

// Frame is an Ethernet-style frame.
type Frame struct {
	Dst       MAC
	Src       MAC
	EtherType uint16
	Payload   []byte
}

// EthHeaderLen is the Ethernet II header size: dst(6) + src(6) +
// ethertype(2).
const EthHeaderLen = 14

// EthFrame is a view over one frame inside a receiver's drain buffer:
// a 14-byte Ethernet II header followed by the payload, laid out
// back-to-back with its neighbors. Accessors read the header in place;
// nothing is decoded into a struct and the payload is never copied.
// The view (and any slice derived from it) is valid only until the
// receiver's next DrainFrames call.
type EthFrame struct {
	b []byte
}

// Dst returns the destination MAC.
func (f EthFrame) Dst() MAC {
	var m MAC
	copy(m[:], f.b[0:6])
	return m
}

// Src returns the source MAC.
func (f EthFrame) Src() MAC {
	var m MAC
	copy(m[:], f.b[6:12])
	return m
}

// EtherType returns the 16-bit ethertype.
func (f EthFrame) EtherType() uint16 {
	return uint16(f.b[12])<<8 | uint16(f.b[13])
}

// Payload returns the frame payload as a view into the drain buffer.
// Receivers may parse it in place but must treat it as dead after the
// next DrainFrames.
func (f EthFrame) Payload() []byte { return f.b[EthHeaderLen:] }

// Bytes returns the whole frame (header + payload) as a view.
func (f EthFrame) Bytes() []byte { return f.b }

// Hub is a shared-medium repeater with optional latency, loss, and a
// scriptable FaultPlan (see fault.go). The zero value is not usable;
// call NewHub.
type Hub struct {
	mu      sync.Mutex
	ports   []*Port
	latency time.Duration
	lossPct int // 0..100 uniform loss, independent of any FaultPlan
	rng     *prng.Xorshift
	closed  bool

	fault      *faultState       // nil: clean wire
	partitions map[MAC]time.Time // MAC -> heal deadline (zero: manual)

	// clock is the hub's time axis: partition-heal deadlines are set
	// and checked against it. Defaults to wall time; SetClock swaps in
	// a telemetry.ManualClock so heal schedules run deterministically
	// without wall-clock sleeps. epoch anchors Clock's nanosecond
	// readings to the time.Time deadlines stored in partitions.
	clock telemetry.Clock
	epoch time.Time

	// Telemetry. metrics counters are cumulative across fault plans
	// (they survive SetFaultPlan(nil)); reg is kept so ports attached
	// after SetTelemetry land on the same registry.
	metrics hubMetrics
	reg     *telemetry.Registry
	trace   *telemetry.Trace
}

// NewHub creates a hub with no latency or loss. Its counters live on a
// private registry until SetTelemetry points them somewhere shared.
func NewHub() *Hub {
	reg := telemetry.NewRegistry()
	return &Hub{
		rng:     prng.NewXorshift(1),
		metrics: newHubMetrics(reg),
		reg:     reg,
		clock:   telemetry.NewWallClock(),
		epoch:   time.Now(),
	}
}

// SetClock installs c as the hub's time axis (nil restores wall time).
// Partition-heal schedules then advance only when c does, which lets
// tests drive them with a telemetry.ManualClock instead of sleeping.
// Heal deadlines already set keep their position on the new axis
// relative to the hub's epoch.
func (h *Hub) SetClock(c telemetry.Clock) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if c == nil {
		c = telemetry.NewWallClock()
		h.epoch = time.Now()
	}
	h.clock = c
}

// nowLocked reads the hub's time axis. h.mu held.
func (h *Hub) nowLocked() time.Time {
	return h.epoch.Add(time.Duration(h.clock.Now()))
}

// SetLatency sets one-way frame delivery delay.
func (h *Hub) SetLatency(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.latency = d
}

// SetLoss sets percentage frame loss (0–100), deterministic per seed.
// Out-of-range percentages are clamped and reported as an error so a
// typo'd chaos script fails loudly instead of silently running clean.
func (h *Hub) SetLoss(pct int, seed uint64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	clamped := pct
	if clamped < 0 {
		clamped = 0
	}
	if clamped > 100 {
		clamped = 100
	}
	h.lossPct = clamped
	h.rng = prng.NewXorshift(seed)
	if clamped != pct {
		return fmt.Errorf("%w: loss %d%% clamped to %d%%", ErrBadFaultPlan, pct, clamped)
	}
	return nil
}

// Stats returns total frames delivered and dropped so far.
func (h *Hub) Stats() (sent, dropped uint64) {
	return h.metrics.framesSent.Value(), h.metrics.framesDropped.Value()
}

// Close shuts down the hub and all attached ports.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.closed = true
	for _, p := range h.ports {
		p.closeLocked()
	}
	h.ports = nil
}

// ErrHubClosed is returned when transmitting through a closed hub.
var ErrHubClosed = errors.New("netsim: hub closed")

// ErrPortClosed is returned when transmitting on a detached port.
var ErrPortClosed = errors.New("netsim: port closed")

// Port is one attachment point on the hub — a NIC as seen by a host.
//
// A port runs in one of two receive modes, fixed at attach time.
// Channel mode (Attach) hands each frame over a buffered channel with
// its own heap-copied payload — simple, but one allocation+copy per
// frame per receiver. Ring mode (AttachRing) writes frames back-to-back
// into a slab the receiver drains wholesale with DrainFrames, so the
// wire boundary costs one slab copy and zero steady-state allocations.
type Port struct {
	hub     *Hub
	mac     MAC
	rx      chan Frame
	promi   bool // promiscuous: receives every frame on the wire
	closed  bool // guarded by hub.mu; rx is closed exactly once with it
	metrics portMetrics

	// Ring mode. rxBuf/rxEnds are the filling slab: frames are appended
	// as [14-byte header | payload] and rxEnds records the end offset of
	// each frame. DrainFrames swaps the filling slab with the drained
	// one (drBuf/drEnds) under hub.mu, then builds views outside the
	// lock, so senders never block on a slow receiver and the receiver
	// touches the lock once per batch. All ring state is guarded by
	// hub.mu except drBuf/drEnds/drFrames, which are owned by the
	// (single) draining goroutine between swaps.
	ring     bool
	notify   chan struct{} // cap 1: "the filling slab is non-empty"
	closedCh chan struct{} // closed with p.closed when ring-mode
	rxBuf    []byte
	rxEnds   []int
	drBuf    []byte
	drEnds   []int
	drFrames []EthFrame
}

// rxQueueDepth bounds a port's receive queue; frames beyond it are
// dropped, as a real NIC's ring buffer would.
const rxQueueDepth = 256

// Attach adds a port with the given MAC to the hub.
func (h *Hub) Attach(mac MAC) (*Port, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, ErrHubClosed
	}
	for _, p := range h.ports {
		if p.mac == mac {
			return nil, fmt.Errorf("netsim: MAC %s already attached", mac)
		}
	}
	p := &Port{hub: h, mac: mac, rx: make(chan Frame, rxQueueDepth),
		metrics: newPortMetrics(h.reg, mac)}
	h.ports = append(h.ports, p)
	return p, nil
}

// AttachRing adds a ring-mode port: received frames accumulate in a
// slab the owner drains with DrainFrames. This is the zero-copy-ingress
// attachment the TCP/IP stack uses; channel-mode Attach remains for
// receivers that want per-frame channel semantics (sniffers, test
// rigs).
func (h *Hub) AttachRing(mac MAC) (*Port, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, ErrHubClosed
	}
	for _, p := range h.ports {
		if p.mac == mac {
			return nil, fmt.Errorf("netsim: MAC %s already attached", mac)
		}
	}
	p := &Port{hub: h, mac: mac,
		ring:     true,
		notify:   make(chan struct{}, 1),
		closedCh: make(chan struct{}),
		metrics:  newPortMetrics(h.reg, mac)}
	h.ports = append(h.ports, p)
	return p, nil
}

// enqueueLocked appends one frame to a ring port's filling slab.
// hub.mu held. Overflow policy matches channel mode: at most
// rxQueueDepth undrained frames, beyond which frames drop as a real
// NIC ring would.
func (p *Port) enqueueLocked(f Frame) {
	h := p.hub
	if len(p.rxEnds) >= rxQueueDepth {
		h.metrics.framesDropped.Inc()
		p.metrics.rxDrops.Inc()
		h.trace.Emit("netsim", "rx_overflow", "dst", p.mac.String(), "len", len(f.Payload))
		return
	}
	b := p.rxBuf
	b = append(b, f.Dst[:]...)
	b = append(b, f.Src[:]...)
	b = append(b, byte(f.EtherType>>8), byte(f.EtherType))
	b = append(b, f.Payload...)
	p.rxBuf = b
	p.rxEnds = append(p.rxEnds, len(b))
	p.metrics.rxBytes.Add(uint64(len(f.Payload)))
	select {
	case p.notify <- struct{}{}:
	default:
	}
}

// DrainFrames blocks until at least one frame is pending, then returns
// views over the whole pending batch. The returned slice and every
// view in it are valid only until the next DrainFrames call. stop, if
// non-nil, aborts the wait (returning ErrPortClosed) — receivers pass
// their shutdown channel. After the port closes, any frames already
// queued are still drained; the error surfaces once the ring is empty.
func (p *Port) DrainFrames(stop <-chan struct{}) ([]EthFrame, error) {
	if !p.ring {
		return nil, errors.New("netsim: DrainFrames on channel-mode port")
	}
	h := p.hub
	for {
		h.mu.Lock()
		if len(p.rxEnds) > 0 {
			// Swap the filling slab with the drained one. The old drain
			// slab's memory becomes the next filling slab, so steady state
			// ping-pongs between two allocations.
			p.rxBuf, p.drBuf = p.drBuf[:0], p.rxBuf
			p.rxEnds, p.drEnds = p.drEnds[:0], p.rxEnds
			select {
			case <-p.notify: // clear stale wakeup for the now-empty slab
			default:
			}
			h.mu.Unlock()
			frames := p.drFrames[:0]
			start := 0
			for _, end := range p.drEnds {
				frames = append(frames, EthFrame{b: p.drBuf[start:end]})
				start = end
			}
			p.drFrames = frames
			return frames, nil
		}
		closed := p.closed
		h.mu.Unlock()
		if closed {
			return nil, ErrPortClosed
		}
		if stop == nil {
			select {
			case <-p.notify:
			case <-p.closedCh:
			}
		} else {
			select {
			case <-p.notify:
			case <-p.closedCh:
			case <-stop:
				return nil, ErrPortClosed
			}
		}
	}
}

// AttachPromiscuous adds a port that receives every frame on the wire
// regardless of destination — the hub is a shared medium, so any NIC
// in promiscuous mode (a sniffer, a protocol analyzer) sees it all.
func (h *Hub) AttachPromiscuous(mac MAC) (*Port, error) {
	p, err := h.Attach(mac)
	if err != nil {
		return nil, err
	}
	h.mu.Lock()
	p.promi = true
	h.mu.Unlock()
	return p, nil
}

// MAC returns the port's hardware address.
func (p *Port) MAC() MAC { return p.mac }

// Send transmits a frame onto the wire. The source address is forced
// to the port's own MAC. Delivery is asynchronous. Frames may be lost,
// corrupted, duplicated, reordered, or partitioned away per the hub's
// loss setting and FaultPlan; none of that is visible to the sender,
// exactly as on a real wire.
func (p *Port) Send(f Frame) error {
	f.Src = p.mac
	h := p.hub
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return ErrHubClosed
	}
	if p.closed {
		h.mu.Unlock()
		return ErrPortClosed
	}
	now := h.nowLocked()
	p.metrics.txBytes.Add(uint64(len(f.Payload)))
	if h.partitionedLocked(p.mac, now) {
		h.metrics.partitionDrops.Inc()
		h.metrics.framesDropped.Inc()
		h.trace.Emit("netsim", "fault.partition", "src", p.mac.String(), "len", len(f.Payload))
		h.mu.Unlock()
		return nil // the unplugged cable: sender cannot tell
	}
	if h.lossPct > 0 && h.rng.Intn(100) < h.lossPct {
		h.metrics.framesDropped.Inc()
		h.trace.Emit("netsim", "fault.loss", "mode", "uniform", "src", p.mac.String(), "len", len(f.Payload))
		h.mu.Unlock()
		return nil // lost on the wire; sender cannot tell
	}
	if h.fault == nil && h.latency == 0 {
		// Fast path: a clean zero-latency wire delivers inline, while
		// the sender's payload is still live — ring targets copy it
		// straight into their slab and channel targets get one shared
		// heap copy made lazily, so a ring-only topology sends with
		// zero allocations.
		h.deliverNowLocked(f, now)
		h.mu.Unlock()
		return nil
	}
	// Slow path: delivery is deferred (latency) or may be held back
	// (fault reordering), so copy the payload once at the wire
	// boundary — the sender may reuse its marshal scratch as soon as
	// Send returns. Receivers never mutate delivered payloads, so every
	// target shares this copy.
	if f.Payload != nil {
		f.Payload = append([]byte(nil), f.Payload...)
	}
	outgoing := []Frame{f}
	if h.fault != nil {
		onWire, released, lost := h.fault.applyFaults(f, &h.metrics, h.trace)
		if lost {
			h.metrics.framesDropped.Inc()
		}
		outgoing = append(onWire, released...)
	}
	var deliveries []delivery
	for _, fr := range outgoing {
		targets := h.targetsLocked(fr, now)
		h.metrics.framesSent.Inc()
		if len(targets) > 0 {
			deliveries = append(deliveries, delivery{fr, targets})
		}
	}
	latency := h.latency
	h.mu.Unlock()

	deliver := func() {
		// Re-take the hub lock: a port may have detached (closing its
		// rx channel) between scheduling and delivery.
		h.mu.Lock()
		defer h.mu.Unlock()
		h.deliverLocked(deliveries)
	}
	if latency > 0 {
		time.AfterFunc(latency, deliver)
	} else {
		deliver()
	}
	return nil
}

// delivery is one frame bound for a set of ports.
type delivery struct {
	frame   Frame
	targets []*Port
}

// targetsLocked computes the ports a frame reaches: everything but its
// own sender (matched by source MAC — hubs do not loop frames back)
// and partitioned ports. h.mu held.
func (h *Hub) targetsLocked(fr Frame, now time.Time) []*Port {
	var targets []*Port
	for _, q := range h.ports {
		if q.mac == fr.Src {
			continue
		}
		if h.partitionedLocked(q.mac, now) {
			h.metrics.partitionDrops.Inc()
			h.trace.Emit("netsim", "fault.partition", "dst", q.mac.String(), "len", len(fr.Payload))
			continue
		}
		if fr.Dst == Broadcast || fr.Dst == q.mac || q.promi {
			targets = append(targets, q)
		}
	}
	return targets
}

// deliverNowLocked fans one frame out to its targets immediately,
// while the caller's payload is still live. Ring targets copy it into
// their slab; channel targets share one lazily-made heap copy (their
// consumers hold frames past this call). h.mu held.
func (h *Hub) deliverNowLocked(f Frame, now time.Time) {
	h.metrics.framesSent.Inc()
	var shared []byte // heap copy for channel targets, made at most once
	haveShared := false
	for _, q := range h.ports {
		if q.mac == f.Src {
			continue
		}
		// Partition is checked before destination matching, exactly as
		// targetsLocked does, so partitionDrops counts identically on
		// both paths.
		if h.partitionedLocked(q.mac, now) {
			h.metrics.partitionDrops.Inc()
			h.trace.Emit("netsim", "fault.partition", "dst", q.mac.String(), "len", len(f.Payload))
			continue
		}
		if q.closed || (f.Dst != Broadcast && f.Dst != q.mac && !q.promi) {
			continue
		}
		if q.ring {
			q.enqueueLocked(f)
			continue
		}
		if !haveShared {
			haveShared = true
			if f.Payload != nil {
				shared = append([]byte(nil), f.Payload...)
			}
		}
		cp := f
		cp.Payload = shared
		select {
		case q.rx <- cp:
			q.metrics.rxBytes.Add(uint64(len(cp.Payload)))
		default:
			h.metrics.framesDropped.Inc()
			q.metrics.rxDrops.Inc()
			h.trace.Emit("netsim", "rx_overflow", "dst", q.mac.String(), "len", len(cp.Payload))
		}
	}
}

// deliverLocked pushes deliveries into receive queues. h.mu held; the
// per-port closed flag is checked under the same lock, so a detaching
// port can never see a send on its closed channel.
func (h *Hub) deliverLocked(deliveries []delivery) {
	for _, d := range deliveries {
		for _, q := range d.targets {
			if q.closed {
				continue
			}
			if q.ring {
				q.enqueueLocked(d.frame)
				continue
			}
			// The payload was already copied at the Send boundary, so the
			// frame can be fanned out to every target as-is.
			cp := d.frame
			select {
			case q.rx <- cp:
				q.metrics.rxBytes.Add(uint64(len(cp.Payload)))
			default:
				h.metrics.framesDropped.Inc()
				q.metrics.rxDrops.Inc()
				h.trace.Emit("netsim", "rx_overflow", "dst", q.mac.String(), "len", len(cp.Payload))
			}
		}
	}
}

// Recv returns the port's receive channel. The channel is closed when
// the hub shuts down or the port is detached.
func (p *Port) Recv() <-chan Frame { return p.rx }

// Close detaches the port from the hub: its receive channel closes and
// further Sends return ErrPortClosed. Frames addressed to it are
// dropped on the floor, as they would be for an unplugged NIC.
func (p *Port) Close() {
	p.hub.mu.Lock()
	defer p.hub.mu.Unlock()
	p.closeLocked()
	kept := p.hub.ports[:0]
	for _, q := range p.hub.ports {
		if q != p {
			kept = append(kept, q)
		}
	}
	p.hub.ports = kept
}

// closeLocked closes the rx channel (or ring-mode wakeup channel)
// exactly once. hub.mu held.
func (p *Port) closeLocked() {
	if !p.closed {
		p.closed = true
		if p.ring {
			close(p.closedCh)
		} else {
			close(p.rx)
		}
	}
}
