// Package netsim simulates the wire the RMC2000 development kit plugs
// into: a 10Base-T hub connecting the embedded board to workstation
// hosts. Frames carry Ethernet-style addressing; the hub repeats every
// frame to every other port, optionally applying latency and random
// loss so the TCP layer's retransmission machinery is actually
// exercised.
package netsim

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/crypto/prng"
)

// MAC is a six-byte hardware address.
type MAC [6]byte

// Broadcast is the all-ones broadcast address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// String renders the address in colon-hex.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// EtherType values used by the stack.
const (
	EtherTypeIPv4 = 0x0800
	EtherTypeARP  = 0x0806
)

// Frame is an Ethernet-style frame.
type Frame struct {
	Dst       MAC
	Src       MAC
	EtherType uint16
	Payload   []byte
}

// Hub is a shared-medium repeater with optional latency and loss.
// The zero value is not usable; call NewHub.
type Hub struct {
	mu      sync.Mutex
	ports   []*Port
	latency time.Duration
	lossPct int // 0..100
	rng     *prng.Xorshift
	closed  bool

	// Stats, observable by tests.
	framesSent    uint64
	framesDropped uint64
}

// NewHub creates a hub with no latency or loss.
func NewHub() *Hub {
	return &Hub{rng: prng.NewXorshift(1)}
}

// SetLatency sets one-way frame delivery delay.
func (h *Hub) SetLatency(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.latency = d
}

// SetLoss sets percentage frame loss (0–100), deterministic per seed.
func (h *Hub) SetLoss(pct int, seed uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if pct < 0 {
		pct = 0
	}
	if pct > 100 {
		pct = 100
	}
	h.lossPct = pct
	h.rng = prng.NewXorshift(seed)
}

// Stats returns total frames delivered and dropped so far.
func (h *Hub) Stats() (sent, dropped uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.framesSent, h.framesDropped
}

// Close shuts down the hub and all attached ports.
func (h *Hub) Close() {
	h.mu.Lock()
	ports := h.ports
	h.ports = nil
	h.closed = true
	h.mu.Unlock()
	for _, p := range ports {
		p.close()
	}
}

// ErrHubClosed is returned when transmitting through a closed hub.
var ErrHubClosed = errors.New("netsim: hub closed")

// Port is one attachment point on the hub — a NIC as seen by a host.
type Port struct {
	hub   *Hub
	mac   MAC
	rx    chan Frame
	promi bool // promiscuous: receives every frame on the wire
	once  sync.Once
}

// rxQueueDepth bounds a port's receive queue; frames beyond it are
// dropped, as a real NIC's ring buffer would.
const rxQueueDepth = 256

// Attach adds a port with the given MAC to the hub.
func (h *Hub) Attach(mac MAC) (*Port, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, ErrHubClosed
	}
	for _, p := range h.ports {
		if p.mac == mac {
			return nil, fmt.Errorf("netsim: MAC %s already attached", mac)
		}
	}
	p := &Port{hub: h, mac: mac, rx: make(chan Frame, rxQueueDepth)}
	h.ports = append(h.ports, p)
	return p, nil
}

// AttachPromiscuous adds a port that receives every frame on the wire
// regardless of destination — the hub is a shared medium, so any NIC
// in promiscuous mode (a sniffer, a protocol analyzer) sees it all.
func (h *Hub) AttachPromiscuous(mac MAC) (*Port, error) {
	p, err := h.Attach(mac)
	if err != nil {
		return nil, err
	}
	h.mu.Lock()
	p.promi = true
	h.mu.Unlock()
	return p, nil
}

// MAC returns the port's hardware address.
func (p *Port) MAC() MAC { return p.mac }

// Send transmits a frame onto the wire. The source address is forced
// to the port's own MAC. Delivery is asynchronous.
func (p *Port) Send(f Frame) error {
	f.Src = p.mac
	h := p.hub
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return ErrHubClosed
	}
	if h.lossPct > 0 && h.rng.Intn(100) < h.lossPct {
		h.framesDropped++
		h.mu.Unlock()
		return nil // lost on the wire; sender cannot tell
	}
	var targets []*Port
	for _, q := range h.ports {
		if q == p {
			continue // hubs do not loop frames back
		}
		if f.Dst == Broadcast || f.Dst == q.mac || q.promi {
			targets = append(targets, q)
		}
	}
	latency := h.latency
	h.framesSent++
	h.mu.Unlock()

	deliver := func() {
		for _, q := range targets {
			// Copy the payload so receiver and sender never alias.
			cp := f
			cp.Payload = append([]byte(nil), f.Payload...)
			select {
			case q.rx <- cp:
			default:
				h.mu.Lock()
				h.framesDropped++
				h.mu.Unlock()
			}
		}
	}
	if latency > 0 {
		time.AfterFunc(latency, deliver)
	} else {
		deliver()
	}
	return nil
}

// Recv returns the port's receive channel. The channel is closed when
// the hub shuts down.
func (p *Port) Recv() <-chan Frame { return p.rx }

func (p *Port) close() { p.once.Do(func() { close(p.rx) }) }
