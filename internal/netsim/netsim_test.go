package netsim

import (
	"testing"
	"time"
)

func mac(b byte) MAC { return MAC{0, 0, 0, 0, 0, b} }

func recvWithTimeout(t *testing.T, p *Port) Frame {
	t.Helper()
	select {
	case f := <-p.Recv():
		return f
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for frame")
		return Frame{}
	}
}

func TestUnicastDelivery(t *testing.T) {
	h := NewHub()
	defer h.Close()
	a, err := h.Attach(mac(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Attach(mac(2))
	if err != nil {
		t.Fatal(err)
	}
	c, err := h.Attach(mac(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(Frame{Dst: mac(2), EtherType: EtherTypeIPv4, Payload: []byte("hi")}); err != nil {
		t.Fatal(err)
	}
	f := recvWithTimeout(t, b)
	if string(f.Payload) != "hi" || f.Src != mac(1) || f.EtherType != EtherTypeIPv4 {
		t.Errorf("got frame %+v", f)
	}
	select {
	case f := <-c.Recv():
		t.Errorf("unicast leaked to third port: %+v", f)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestBroadcastReachesAllButSender(t *testing.T) {
	h := NewHub()
	defer h.Close()
	a, _ := h.Attach(mac(1))
	b, _ := h.Attach(mac(2))
	c, _ := h.Attach(mac(3))
	a.Send(Frame{Dst: Broadcast, Payload: []byte("arp?")})
	recvWithTimeout(t, b)
	recvWithTimeout(t, c)
	select {
	case <-a.Recv():
		t.Error("broadcast looped back to sender")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestSourceAddressForced(t *testing.T) {
	h := NewHub()
	defer h.Close()
	a, _ := h.Attach(mac(1))
	b, _ := h.Attach(mac(2))
	a.Send(Frame{Dst: mac(2), Src: mac(9) /* spoofed */})
	f := recvWithTimeout(t, b)
	if f.Src != mac(1) {
		t.Errorf("src = %s, want port MAC", f.Src)
	}
}

func TestDuplicateMACRejected(t *testing.T) {
	h := NewHub()
	defer h.Close()
	h.Attach(mac(1))
	if _, err := h.Attach(mac(1)); err == nil {
		t.Error("duplicate MAC accepted")
	}
}

func TestPayloadIsolation(t *testing.T) {
	h := NewHub()
	defer h.Close()
	a, _ := h.Attach(mac(1))
	b, _ := h.Attach(mac(2))
	buf := []byte("original")
	a.Send(Frame{Dst: mac(2), Payload: buf})
	buf[0] = 'X' // mutate after send
	f := recvWithTimeout(t, b)
	if string(f.Payload) != "original" {
		t.Errorf("receiver saw sender's mutation: %q", f.Payload)
	}
}

func TestLatency(t *testing.T) {
	h := NewHub()
	defer h.Close()
	h.SetLatency(60 * time.Millisecond)
	a, _ := h.Attach(mac(1))
	b, _ := h.Attach(mac(2))
	start := time.Now()
	a.Send(Frame{Dst: mac(2), Payload: []byte("slow")})
	recvWithTimeout(t, b)
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Errorf("frame arrived after %v, expected >=50ms", d)
	}
}

func TestTotalLoss(t *testing.T) {
	h := NewHub()
	defer h.Close()
	h.SetLoss(100, 42)
	a, _ := h.Attach(mac(1))
	b, _ := h.Attach(mac(2))
	for i := 0; i < 10; i++ {
		a.Send(Frame{Dst: mac(2), Payload: []byte{byte(i)}})
	}
	select {
	case f := <-b.Recv():
		t.Errorf("frame delivered despite 100%% loss: %+v", f)
	case <-time.After(50 * time.Millisecond):
	}
	if _, dropped := h.Stats(); dropped != 10 {
		t.Errorf("dropped = %d, want 10", dropped)
	}
}

func TestPartialLossApproximatesRate(t *testing.T) {
	h := NewHub()
	defer h.Close()
	h.SetLoss(30, 7)
	a, _ := h.Attach(mac(1))
	b, _ := h.Attach(mac(2))
	const n = 2000
	counted := make(chan int)
	go func() {
		got := 0
		for {
			select {
			case <-b.Recv():
				got++
			case <-time.After(200 * time.Millisecond):
				counted <- got
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		a.Send(Frame{Dst: mac(2)})
		if i%100 == 99 {
			time.Sleep(time.Millisecond) // let the drain goroutine run
		}
	}
	got := <-counted
	if got < n*60/100 || got > n*80/100 {
		t.Errorf("delivered %d of %d at 30%% loss", got, n)
	}
}

func TestClosedHubRejectsTraffic(t *testing.T) {
	h := NewHub()
	a, _ := h.Attach(mac(1))
	h.Close()
	if err := a.Send(Frame{Dst: mac(2)}); err != ErrHubClosed {
		t.Errorf("Send after close = %v, want ErrHubClosed", err)
	}
	if _, err := h.Attach(mac(3)); err != ErrHubClosed {
		t.Errorf("Attach after close = %v, want ErrHubClosed", err)
	}
	// Recv channel must be closed so readers unblock.
	if _, ok := <-a.Recv(); ok {
		t.Error("recv channel still open after hub close")
	}
}

func TestRxOverflowDropsNotBlocks(t *testing.T) {
	h := NewHub()
	defer h.Close()
	a, _ := h.Attach(mac(1))
	h.Attach(mac(2)) // receiver that never drains
	done := make(chan struct{})
	go func() {
		for i := 0; i < rxQueueDepth+50; i++ {
			a.Send(Frame{Dst: mac(2)})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("sender blocked on full receive queue")
	}
	_, dropped := h.Stats()
	if dropped == 0 {
		t.Error("no drops recorded despite overflow")
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}
	if m.String() != "de:ad:be:ef:00:01" {
		t.Errorf("String() = %s", m)
	}
}

func TestPromiscuousPortSeesUnicast(t *testing.T) {
	h := NewHub()
	defer h.Close()
	a, _ := h.Attach(mac(1))
	h.Attach(mac(2))
	sniffer, err := h.AttachPromiscuous(mac(9))
	if err != nil {
		t.Fatal(err)
	}
	a.Send(Frame{Dst: mac(2), Payload: []byte("private?")})
	f := recvWithTimeout(t, sniffer)
	if string(f.Payload) != "private?" {
		t.Errorf("sniffer got %q", f.Payload)
	}
	// A normal port still does not see other hosts' unicast.
	b2, _ := h.Attach(mac(3))
	a.Send(Frame{Dst: mac(2), Payload: []byte("again")})
	select {
	case f := <-b2.Recv():
		t.Errorf("non-promiscuous port saw %q", f.Payload)
	case <-time.After(50 * time.Millisecond):
	}
}
