package netsim

// Ring-mode port coverage: DrainFrames batching, overflow policy,
// close semantics, coexistence with channel-mode ports, and fault/
// latency (slow-path) delivery into rings. Plus the paired delivery
// benchmark that measures the copy the ring path removed.

import (
	"bytes"
	"testing"
	"time"
)

// drainOne blocks until the ring port yields at least one frame.
func drainOne(t *testing.T, p *Port) []EthFrame {
	t.Helper()
	done := make(chan []EthFrame, 1)
	go func() {
		frames, err := p.DrainFrames(nil)
		if err != nil {
			done <- nil
			return
		}
		done <- frames
	}()
	select {
	case frames := <-done:
		if frames == nil {
			t.Fatal("DrainFrames failed")
		}
		return frames
	case <-time.After(2 * time.Second):
		t.Fatal("timed out draining ring port")
		return nil
	}
}

func TestRingDelivery(t *testing.T) {
	h := NewHub()
	defer h.Close()
	a, _ := h.Attach(mac(1))
	b, err := h.AttachRing(mac(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(Frame{Dst: mac(2), EtherType: EtherTypeIPv4, Payload: []byte("hi")}); err != nil {
		t.Fatal(err)
	}
	frames := drainOne(t, b)
	if len(frames) != 1 {
		t.Fatalf("got %d frames, want 1", len(frames))
	}
	f := frames[0]
	if f.Dst() != mac(2) || f.Src() != mac(1) || f.EtherType() != EtherTypeIPv4 {
		t.Errorf("header mismatch: dst %s src %s type %#x", f.Dst(), f.Src(), f.EtherType())
	}
	if !bytes.Equal(f.Payload(), []byte("hi")) {
		t.Errorf("payload = %q", f.Payload())
	}
	if len(f.Bytes()) != EthHeaderLen+2 {
		t.Errorf("Bytes() length = %d", len(f.Bytes()))
	}
}

func TestRingBatchesUnderOneDrain(t *testing.T) {
	h := NewHub()
	defer h.Close()
	a, _ := h.Attach(mac(1))
	b, _ := h.AttachRing(mac(2))
	const n = 20
	for i := 0; i < n; i++ {
		a.Send(Frame{Dst: mac(2), Payload: []byte{byte(i)}})
	}
	got := 0
	for got < n {
		frames := drainOne(t, b)
		for _, f := range frames {
			if f.Payload()[0] != byte(got) {
				t.Fatalf("frame %d carries payload %d (reordered?)", got, f.Payload()[0])
			}
			got++
		}
		// All n sends completed before the first drain, so the whole
		// batch must arrive in one swap.
		if got != n {
			t.Fatalf("drain returned %d frames, want all %d in one batch", got, n)
		}
	}
}

func TestRingOverflowDropsNotBlocks(t *testing.T) {
	h := NewHub()
	defer h.Close()
	a, _ := h.Attach(mac(1))
	h.AttachRing(mac(2)) // never drained
	done := make(chan struct{})
	go func() {
		for i := 0; i < rxQueueDepth+50; i++ {
			a.Send(Frame{Dst: mac(2)})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("sender blocked on full ring")
	}
	_, dropped := h.Stats()
	if dropped == 0 {
		t.Error("no drops recorded despite ring overflow")
	}
}

func TestRingCloseDrainsLeftoversThenErrors(t *testing.T) {
	h := NewHub()
	a, _ := h.Attach(mac(1))
	b, _ := h.AttachRing(mac(2))
	a.Send(Frame{Dst: mac(2), Payload: []byte("last")})
	h.Close()
	// Frames enqueued before close must still come out...
	frames, err := b.DrainFrames(nil)
	if err != nil {
		t.Fatalf("drain after close lost buffered frame: %v", err)
	}
	if len(frames) != 1 || string(frames[0].Payload()) != "last" {
		t.Fatalf("got %d frames", len(frames))
	}
	// ...and only then does the port report closed.
	if _, err := b.DrainFrames(nil); err != ErrPortClosed {
		t.Fatalf("drain on closed empty ring: err = %v, want ErrPortClosed", err)
	}
}

func TestRingStopChannelUnblocksDrain(t *testing.T) {
	h := NewHub()
	defer h.Close()
	b, _ := h.AttachRing(mac(2))
	stop := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		_, err := b.DrainFrames(stop)
		errc <- err
	}()
	close(stop)
	select {
	case err := <-errc:
		if err != ErrPortClosed {
			t.Fatalf("err = %v, want ErrPortClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("DrainFrames ignored stop channel")
	}
}

func TestRingAndChannelPortsCoexist(t *testing.T) {
	h := NewHub()
	defer h.Close()
	a, _ := h.Attach(mac(1))
	ring, _ := h.AttachRing(mac(2))
	ch, _ := h.Attach(mac(3))
	a.Send(Frame{Dst: Broadcast, Payload: []byte("arp?")})
	frames := drainOne(t, ring)
	if len(frames) != 1 || string(frames[0].Payload()) != "arp?" {
		t.Fatalf("ring port missed broadcast")
	}
	f := recvWithTimeout(t, ch)
	if string(f.Payload) != "arp?" {
		t.Fatalf("channel port missed broadcast")
	}
}

func TestRingPayloadIsolation(t *testing.T) {
	h := NewHub()
	defer h.Close()
	a, _ := h.Attach(mac(1))
	b, _ := h.AttachRing(mac(2))
	payload := []byte("mutate-me")
	a.Send(Frame{Dst: mac(2), Payload: payload})
	// Sender scribbling on its buffer after Send must not corrupt the
	// delivered bytes — the fast path copies into the ring slab under
	// the hub lock before Send returns.
	payload[0] = 'X'
	frames := drainOne(t, b)
	if string(frames[0].Payload()) != "mutate-me" {
		t.Errorf("ring saw sender's post-Send mutation: %q", frames[0].Payload())
	}
}

func TestRingReceivesViaLatencySlowPath(t *testing.T) {
	h := NewHub()
	defer h.Close()
	h.SetLatency(5 * time.Millisecond)
	a, _ := h.Attach(mac(1))
	b, _ := h.AttachRing(mac(2))
	start := time.Now()
	a.Send(Frame{Dst: mac(2), Payload: []byte("late")})
	frames := drainOne(t, b)
	if string(frames[0].Payload()) != "late" {
		t.Fatalf("payload = %q", frames[0].Payload())
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Errorf("latency not applied to ring delivery: %v", elapsed)
	}
}

func TestRingReceivesViaFaultSlowPath(t *testing.T) {
	h := NewHub()
	defer h.Close()
	// Duplication forces the faultState path; everything must still
	// land in the ring, twice.
	if err := h.SetFaultPlan(&FaultPlan{Seed: 1, DupPct: 100}); err != nil {
		t.Fatal(err)
	}
	a, _ := h.Attach(mac(1))
	b, _ := h.AttachRing(mac(2))
	a.Send(Frame{Dst: mac(2), Payload: []byte("twin")})
	got := 0
	deadline := time.Now().Add(2 * time.Second)
	for got < 2 && time.Now().Before(deadline) {
		for _, f := range drainOne(t, b) {
			if string(f.Payload()) != "twin" {
				t.Fatalf("payload = %q", f.Payload())
			}
			got++
		}
	}
	if got != 2 {
		t.Fatalf("got %d copies, want 2", got)
	}
}

func TestRingPartitionDrops(t *testing.T) {
	h := NewHub()
	defer h.Close()
	a, _ := h.Attach(mac(1))
	b, _ := h.AttachRing(mac(2))
	if err := h.PartitionPort(mac(2), 0); err != nil {
		t.Fatal(err)
	}
	a.Send(Frame{Dst: mac(2), Payload: []byte("void")})
	h.HealPort(mac(2))
	a.Send(Frame{Dst: mac(2), Payload: []byte("ok")})
	frames := drainOne(t, b)
	if len(frames) != 1 || string(frames[0].Payload()) != "ok" {
		t.Fatalf("partitioned frame leaked through: %d frames", len(frames))
	}
}

func TestAttachRingRejectsDuplicateMAC(t *testing.T) {
	h := NewHub()
	defer h.Close()
	h.Attach(mac(1))
	if _, err := h.AttachRing(mac(1)); err == nil {
		t.Fatal("duplicate MAC accepted")
	}
	h.Close()
	if _, err := h.AttachRing(mac(9)); err != ErrHubClosed {
		t.Fatalf("attach on closed hub: err = %v, want ErrHubClosed", err)
	}
}

// BenchmarkRingDelivery vs BenchmarkChannelDelivery: the same send/
// receive round trip through both port modes. The channel path heap-
// copies every payload at Send; the ring path's only copy is into the
// receiver's slab. These are the EXPERIMENTS.md E14 ingress numbers.
func BenchmarkRingDelivery(b *testing.B) {
	h := NewHub()
	defer h.Close()
	a, _ := h.Attach(mac(1))
	r, _ := h.AttachRing(mac(2))
	payload := make([]byte, 512)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	got := 0
	for i := 0; i < b.N; i++ {
		if err := a.Send(Frame{Dst: mac(2), EtherType: EtherTypeIPv4, Payload: payload}); err != nil {
			b.Fatal(err)
		}
		if i%64 == 63 || i == b.N-1 {
			for got <= i {
				frames, err := r.DrainFrames(nil)
				if err != nil {
					b.Fatal(err)
				}
				got += len(frames)
			}
		}
	}
}

func BenchmarkChannelDelivery(b *testing.B) {
	h := NewHub()
	defer h.Close()
	a, _ := h.Attach(mac(1))
	r, _ := h.Attach(mac(2))
	payload := make([]byte, 512)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	got := 0
	for i := 0; i < b.N; i++ {
		if err := a.Send(Frame{Dst: mac(2), EtherType: EtherTypeIPv4, Payload: payload}); err != nil {
			b.Fatal(err)
		}
		if i%64 == 63 || i == b.N-1 {
			for got <= i {
				<-r.Recv()
				got++
			}
		}
	}
}
