package netsim

import (
	"fmt"

	"repro/internal/telemetry"
)

// hubMetrics holds the hub's counters, resolved once from a registry so
// the Send path updates them lock-free (beyond hub.mu, which it holds
// anyway). All fields are nil-safe telemetry handles.
type hubMetrics struct {
	framesSent     *telemetry.Counter
	framesDropped  *telemetry.Counter
	lostGood       *telemetry.Counter
	lostBurst      *telemetry.Counter
	corrupted      *telemetry.Counter
	duplicated     *telemetry.Counter
	reordered      *telemetry.Counter
	partitionDrops *telemetry.Counter
	badEntries     *telemetry.Counter
}

func newHubMetrics(reg *telemetry.Registry) hubMetrics {
	return hubMetrics{
		framesSent:     reg.Counter("netsim.frames_sent"),
		framesDropped:  reg.Counter("netsim.frames_dropped"),
		lostGood:       reg.Counter("netsim.fault.lost_good"),
		lostBurst:      reg.Counter("netsim.fault.lost_burst"),
		corrupted:      reg.Counter("netsim.fault.corrupted"),
		duplicated:     reg.Counter("netsim.fault.duplicated"),
		reordered:      reg.Counter("netsim.fault.reordered"),
		partitionDrops: reg.Counter("netsim.fault.partition_drops"),
		badEntries:     reg.Counter("netsim.fault.bad_entries"),
	}
}

// portMetrics are one port's byte/drop counters, created at Attach.
type portMetrics struct {
	txBytes *telemetry.Counter
	rxBytes *telemetry.Counter
	rxDrops *telemetry.Counter
}

func newPortMetrics(reg *telemetry.Registry, mac MAC) portMetrics {
	prefix := fmt.Sprintf("netsim.port.%s.", mac)
	return portMetrics{
		txBytes: reg.Counter(prefix + "tx_bytes"),
		rxBytes: reg.Counter(prefix + "rx_bytes"),
		rxDrops: reg.Counter(prefix + "rx_drops"),
	}
}

// SetTelemetry points the hub's counters at reg and its fault events at
// trace. Counters for the hub and for already-attached ports are
// re-created on the new registry; values accumulated on the previous
// registry stay there. Call before traffic flows — swapping registries
// mid-run splits counts across the two. Either argument may be nil
// (nil registry: counters become no-ops; nil trace: events discarded).
func (h *Hub) SetTelemetry(reg *telemetry.Registry, trace *telemetry.Trace) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.metrics = newHubMetrics(reg)
	h.reg = reg
	h.trace = trace
	for _, p := range h.ports {
		p.metrics = newPortMetrics(reg, p.mac)
	}
}
