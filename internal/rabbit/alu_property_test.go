package rabbit

// Property tests: the CPU's ALU against an independent Go model, over
// randomized operand pairs. These catch flag-computation slips that
// example-based tests miss.

import (
	"testing"
	"testing/quick"
)

// runALU executes a 2-instruction program applying op to a and v and
// returns the resulting A and F.
func runALU(t *testing.T, opcode byte, a, v uint8, carryIn bool) (uint8, uint8) {
	t.Helper()
	c := New()
	c.Mem.LoadPhysical(0, []byte{opcode, v, 0x76}) // ALU A,n; HALT
	c.A = a
	if carryIn {
		c.F = FlagC
	}
	if err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	return c.A, c.F
}

func TestQuickADD(t *testing.T) {
	f := func(a, v uint8) bool {
		got, flags := runALU(t, 0xC6, a, v, false)
		want := a + v
		if got != want {
			return false
		}
		wantC := uint16(a)+uint16(v) > 0xff
		wantZ := want == 0
		wantS := want&0x80 != 0
		wantV := (a^want)&(v^want)&0x80 != 0
		return (flags&FlagC != 0) == wantC && (flags&FlagZ != 0) == wantZ &&
			(flags&FlagS != 0) == wantS && (flags&FlagPV != 0) == wantV &&
			flags&FlagN == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickADC(t *testing.T) {
	f := func(a, v uint8, cin bool) bool {
		got, flags := runALU(t, 0xCE, a, v, cin)
		carry := uint16(0)
		if cin {
			carry = 1
		}
		r := uint16(a) + uint16(v) + carry
		if got != uint8(r) {
			return false
		}
		return (flags&FlagC != 0) == (r > 0xff)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickSUB(t *testing.T) {
	f := func(a, v uint8) bool {
		got, flags := runALU(t, 0xD6, a, v, false)
		want := a - v
		if got != want {
			return false
		}
		wantC := a < v
		wantZ := want == 0
		wantV := (a^v)&(a^want)&0x80 != 0
		return (flags&FlagC != 0) == wantC && (flags&FlagZ != 0) == wantZ &&
			(flags&FlagPV != 0) == wantV && flags&FlagN != 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickSBC(t *testing.T) {
	f := func(a, v uint8, cin bool) bool {
		got, flags := runALU(t, 0xDE, a, v, cin)
		carry := uint16(0)
		if cin {
			carry = 1
		}
		r := uint16(a) - uint16(v) - carry
		if got != uint8(r) {
			return false
		}
		return (flags&FlagC != 0) == (r > 0xff)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickLogic(t *testing.T) {
	cases := []struct {
		opcode byte
		model  func(a, v uint8) uint8
	}{
		{0xE6, func(a, v uint8) uint8 { return a & v }},
		{0xEE, func(a, v uint8) uint8 { return a ^ v }},
		{0xF6, func(a, v uint8) uint8 { return a | v }},
	}
	for _, tc := range cases {
		tc := tc
		f := func(a, v uint8) bool {
			got, flags := runALU(t, tc.opcode, a, v, false)
			want := tc.model(a, v)
			if got != want {
				return false
			}
			wantP := parity(want)
			return (flags&FlagZ != 0) == (want == 0) &&
				(flags&FlagS != 0) == (want&0x80 != 0) &&
				(flags&FlagPV != 0) == wantP &&
				flags&FlagC == 0
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
			t.Errorf("opcode %02x: %v", tc.opcode, err)
		}
	}
}

func TestQuickCPPreservesA(t *testing.T) {
	f := func(a, v uint8) bool {
		got, flags := runALU(t, 0xFE, a, v, false)
		if got != a {
			return false
		}
		return (flags&FlagZ != 0) == (a == v) && (flags&FlagC != 0) == (a < v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: signed 16-bit compare through the runtime-style SBC HL,DE
// sequence agrees with Go's < over the full signed range.
func TestQuickSBC16SignedCompare(t *testing.T) {
	f := func(x, y int16) bool {
		c := New()
		// LD HL,x; LD DE,y; OR A; SBC HL,DE; HALT
		c.Mem.LoadPhysical(0, []byte{
			0x21, byte(uint16(x)), byte(uint16(x) >> 8),
			0x11, byte(uint16(y)), byte(uint16(y) >> 8),
			0xB7,
			0xED, 0x52,
			0x76,
		})
		if err := c.Run(100); err != nil {
			return false
		}
		// signed less: S != V
		s := c.flag(FlagS)
		v := c.flag(FlagPV)
		return (s != v) == (x < y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: DAA fixes up BCD addition for all BCD digit pairs.
func TestDAAAllBCDPairs(t *testing.T) {
	toBCD := func(n int) uint8 { return uint8(n/10<<4 | n%10) }
	for x := 0; x < 100; x++ {
		for y := 0; y < 100; y += 7 { // sampled for speed
			c := New()
			c.Mem.LoadPhysical(0, []byte{0xC6, toBCD(y), 0x27, 0x76}) // ADD A,y; DAA
			c.A = toBCD(x)
			if err := c.Run(100); err != nil {
				t.Fatal(err)
			}
			sum := (x + y) % 100
			if c.A != toBCD(sum) {
				t.Fatalf("BCD %d+%d: A=%02x, want %02x", x, y, c.A, toBCD(sum))
			}
			if carry := x+y >= 100; c.flag(FlagC) != carry {
				t.Fatalf("BCD %d+%d: carry=%v", x, y, c.flag(FlagC))
			}
		}
	}
}
