package rabbit

import (
	"errors"
	"fmt"
)

// Flag bits (Z80 layout; the Rabbit keeps the same F register shape
// for the flags this simulator models).
const (
	FlagC  uint8 = 0x01
	FlagN  uint8 = 0x02
	FlagPV uint8 = 0x04
	FlagH  uint8 = 0x10
	FlagZ  uint8 = 0x40
	FlagS  uint8 = 0x80
)

// Bus is the internal I/O space (16-bit port addresses on the Rabbit).
type Bus interface {
	In(port uint16) uint8
	Out(port uint16, v uint8)
}

// NullBus ignores writes and reads 0xFF, like unpopulated I/O.
type NullBus struct{}

// In implements Bus.
func (NullBus) In(uint16) uint8 { return 0xff }

// Out implements Bus.
func (NullBus) Out(uint16, uint8) {}

// FlowKind classifies an instruction's effect on the call stack, for
// observers that reconstruct caller/callee relationships.
type FlowKind uint8

// Flow kinds reported in InstrEvent.
const (
	FlowNone FlowKind = iota // ordinary instruction (incl. jumps)
	FlowCall                 // CALL / CALL cc (taken) / RST: pushed a return address
	FlowRet                  // RET / RET cc (taken) / RETI: popped a return address
	FlowInt                  // interrupt accepted: hardware pushed PC, jumped to vector
)

// InstrEvent describes one retired instruction (or interrupt dispatch /
// halted idle step) for an attached InstrHook.
type InstrEvent struct {
	PC     uint16   // address the instruction was fetched from
	Op     uint8    // first opcode byte (0 for interrupt dispatch)
	Cycles uint64   // cycles charged for this event
	Flow   FlowKind // call-stack effect
	Target uint16   // Flow != FlowNone: the PC after the transfer
}

// InstrHook observes execution. OnInstr fires after every cycle-charging
// step — retired instructions, interrupt dispatch, and halted idle — so
// the sum of event Cycles equals the growth of CPU.Cycles while the
// hook is attached. OnReset fires from CPU.Reset so observer state
// (call stacks, accumulated totals) restarts with the CPU.
type InstrHook interface {
	OnInstr(ev InstrEvent)
	OnReset()
}

// CPU is a Rabbit 2000 processor core.
type CPU struct {
	A, F, B, C, D, E, H, L uint8
	// Alternate register set (EX AF,AF' / EXX).
	A2, F2, B2, C2, D2, E2, H2, L2 uint8
	IX, IY, SP, PC                 uint16

	Mem *Memory
	IO  Bus

	// Cycles approximates Rabbit 2000 clock counts.
	Cycles uint64
	// Instructions counts retired instructions.
	Instructions uint64

	Halted bool
	IFF    bool // interrupt enable

	// IntVector is where an accepted external interrupt jumps
	// (SetVectExtern2000 in Dynamic C terms).
	IntVector  uint16
	intPending bool

	// ioPrefix marks that the current instruction was preceded by the
	// IOI prefix: its memory operands address internal I/O.
	ioPrefix bool

	// Hook, when non-nil, observes every executed instruction. The
	// instruction hot path pays only a nil check when no hook is
	// attached (guarded by BenchmarkStepNoHookAllocs).
	Hook InstrHook

	// flow/flowTarget are scratch set by exec for the current
	// instruction's control transfer; only maintained when Hook != nil.
	flow       FlowKind
	flowTarget uint16
}

// ErrIllegalOpcode reports an unimplemented or invalid instruction.
var ErrIllegalOpcode = errors.New("rabbit: illegal opcode")

// New creates a CPU with fresh memory and a null I/O bus.
func New() *CPU {
	return &CPU{Mem: NewMemory(), IO: NullBus{}, SP: 0xDFFF}
}

// Reset returns the CPU to power-on state (memory untouched).
//
// Reset contract: Cycles and Instructions restart from zero, and any
// attached Hook is notified via OnReset before Reset returns, so
// observer state derived from the execution history (profiler call
// stacks, per-symbol totals) is discarded in the same instant the
// counters it mirrors are. The Hook itself stays attached — machines
// that Reset between runs (e.g. aesasm.EncryptChain) keep profiling
// without re-wiring.
func (c *CPU) Reset() {
	c.A, c.F, c.B, c.C, c.D, c.E, c.H, c.L = 0, 0, 0, 0, 0, 0, 0, 0
	c.IX, c.IY = 0, 0
	c.SP, c.PC = 0xDFFF, 0
	c.Halted = false
	c.IFF = false
	c.intPending = false
	c.Cycles = 0
	c.Instructions = 0
	c.flow = FlowNone
	if c.Hook != nil {
		c.Hook.OnReset()
	}
}

// RaiseInt asserts the external interrupt line.
func (c *CPU) RaiseInt() { c.intPending = true }

// --- register pair helpers ----------------------------------------------------

// BC/DE/HL accessors.
func (c *CPU) bc() uint16     { return uint16(c.B)<<8 | uint16(c.C) }
func (c *CPU) de() uint16     { return uint16(c.D)<<8 | uint16(c.E) }
func (c *CPU) hl() uint16     { return uint16(c.H)<<8 | uint16(c.L) }
func (c *CPU) setBC(v uint16) { c.B, c.C = uint8(v>>8), uint8(v) }
func (c *CPU) setDE(v uint16) { c.D, c.E = uint8(v>>8), uint8(v) }
func (c *CPU) setHL(v uint16) { c.H, c.L = uint8(v>>8), uint8(v) }
func (c *CPU) af() uint16     { return uint16(c.A)<<8 | uint16(c.F) }
func (c *CPU) setAF(v uint16) { c.A, c.F = uint8(v>>8), uint8(v) }

// getRP reads register pair p (0=BC 1=DE 2=HL 3=SP).
func (c *CPU) getRP(p int, ix *uint16) uint16 {
	switch p {
	case 0:
		return c.bc()
	case 1:
		return c.de()
	case 2:
		if ix != nil {
			return *ix
		}
		return c.hl()
	default:
		return c.SP
	}
}

func (c *CPU) setRP(p int, ix *uint16, v uint16) {
	switch p {
	case 0:
		c.setBC(v)
	case 1:
		c.setDE(v)
	case 2:
		if ix != nil {
			*ix = v
		} else {
			c.setHL(v)
		}
	default:
		c.SP = v
	}
}

// getRP2 is getRP with AF instead of SP (PUSH/POP encoding).
func (c *CPU) getRP2(p int, ix *uint16) uint16 {
	if p == 3 {
		return c.af()
	}
	return c.getRP(p, ix)
}

func (c *CPU) setRP2(p int, ix *uint16, v uint16) {
	if p == 3 {
		c.setAF(v)
		return
	}
	c.setRP(p, ix, v)
}

// memRead8 honors the IOI prefix for operand access.
func (c *CPU) memRead8(addr uint16) uint8 {
	if c.ioPrefix {
		return c.IO.In(addr)
	}
	return c.Mem.Read(addr)
}

func (c *CPU) memWrite8(addr uint16, v uint8) {
	if c.ioPrefix {
		c.IO.Out(addr, v)
		return
	}
	c.Mem.Write(addr, v)
}

// getR reads register index r (6 = (HL) or (IX+d)).
func (c *CPU) getR(r int, ix *uint16, d int8) uint8 {
	switch r {
	case 0:
		return c.B
	case 1:
		return c.C
	case 2:
		return c.D
	case 3:
		return c.E
	case 4:
		return c.H
	case 5:
		return c.L
	case 6:
		if ix != nil {
			return c.memRead8(uint16(int32(*ix) + int32(d)))
		}
		return c.memRead8(c.hl())
	default:
		return c.A
	}
}

func (c *CPU) setR(r int, ix *uint16, d int8, v uint8) {
	switch r {
	case 0:
		c.B = v
	case 1:
		c.C = v
	case 2:
		c.D = v
	case 3:
		c.E = v
	case 4:
		c.H = v
	case 5:
		c.L = v
	case 6:
		if ix != nil {
			c.memWrite8(uint16(int32(*ix)+int32(d)), v)
		} else {
			c.memWrite8(c.hl(), v)
		}
	default:
		c.A = v
	}
}

// --- fetch helpers -------------------------------------------------------------

func (c *CPU) fetch8() uint8 {
	v := c.Mem.Read(c.PC)
	c.PC++
	return v
}

func (c *CPU) fetch16() uint16 {
	lo := c.fetch8()
	hi := c.fetch8()
	return uint16(hi)<<8 | uint16(lo)
}

func (c *CPU) push16(v uint16) {
	c.SP -= 2
	c.Mem.Write16(c.SP, v)
}

func (c *CPU) pop16() uint16 {
	v := c.Mem.Read16(c.SP)
	c.SP += 2
	return v
}

// --- flags -----------------------------------------------------------------------

func parity(v uint8) bool {
	v ^= v >> 4
	v ^= v >> 2
	v ^= v >> 1
	return v&1 == 0
}

func (c *CPU) setFlag(f uint8, on bool) {
	if on {
		c.F |= f
	} else {
		c.F &^= f
	}
}

func (c *CPU) flag(f uint8) bool { return c.F&f != 0 }

// szp sets S, Z and parity-as-PV from an 8-bit result.
func (c *CPU) szp(v uint8) {
	c.setFlag(FlagS, v&0x80 != 0)
	c.setFlag(FlagZ, v == 0)
	c.setFlag(FlagPV, parity(v))
}

// cond evaluates condition code y (NZ Z NC C PO PE P M).
func (c *CPU) cond(y int) bool {
	switch y {
	case 0:
		return !c.flag(FlagZ)
	case 1:
		return c.flag(FlagZ)
	case 2:
		return !c.flag(FlagC)
	case 3:
		return c.flag(FlagC)
	case 4:
		return !c.flag(FlagPV)
	case 5:
		return c.flag(FlagPV)
	case 6:
		return !c.flag(FlagS)
	default:
		return c.flag(FlagS)
	}
}

// --- ALU -------------------------------------------------------------------------

// alu performs operation y (ADD ADC SUB SBC AND XOR OR CP) on A and v.
func (c *CPU) alu(y int, v uint8) {
	a := c.A
	switch y {
	case 0, 1: // ADD / ADC
		carry := uint16(0)
		if y == 1 && c.flag(FlagC) {
			carry = 1
		}
		r := uint16(a) + uint16(v) + carry
		res := uint8(r)
		c.setFlag(FlagC, r > 0xff)
		c.setFlag(FlagH, a&0x0f+v&0x0f+uint8(carry) > 0x0f)
		c.setFlag(FlagN, false)
		c.setFlag(FlagS, res&0x80 != 0)
		c.setFlag(FlagZ, res == 0)
		c.setFlag(FlagPV, (a^res)&(v^res)&0x80 != 0) // signed overflow
		c.A = res
	case 2, 3, 7: // SUB / SBC / CP
		carry := uint16(0)
		if y == 3 && c.flag(FlagC) {
			carry = 1
		}
		r := uint16(a) - uint16(v) - carry
		res := uint8(r)
		c.setFlag(FlagC, r > 0xff) // borrow
		c.setFlag(FlagH, uint16(a&0x0f) < uint16(v&0x0f)+carry)
		c.setFlag(FlagN, true)
		c.setFlag(FlagS, res&0x80 != 0)
		c.setFlag(FlagZ, res == 0)
		c.setFlag(FlagPV, (a^v)&(a^res)&0x80 != 0)
		if y != 7 {
			c.A = res
		}
	case 4: // AND
		c.A = a & v
		c.szp(c.A)
		c.setFlag(FlagH, true)
		c.setFlag(FlagN, false)
		c.setFlag(FlagC, false)
	case 5: // XOR
		c.A = a ^ v
		c.szp(c.A)
		c.setFlag(FlagH, false)
		c.setFlag(FlagN, false)
		c.setFlag(FlagC, false)
	case 6: // OR
		c.A = a | v
		c.szp(c.A)
		c.setFlag(FlagH, false)
		c.setFlag(FlagN, false)
		c.setFlag(FlagC, false)
	}
}

func (c *CPU) inc8(v uint8) uint8 {
	r := v + 1
	c.setFlag(FlagS, r&0x80 != 0)
	c.setFlag(FlagZ, r == 0)
	c.setFlag(FlagH, v&0x0f == 0x0f)
	c.setFlag(FlagPV, v == 0x7f)
	c.setFlag(FlagN, false)
	return r
}

func (c *CPU) dec8(v uint8) uint8 {
	r := v - 1
	c.setFlag(FlagS, r&0x80 != 0)
	c.setFlag(FlagZ, r == 0)
	c.setFlag(FlagH, v&0x0f == 0)
	c.setFlag(FlagPV, v == 0x80)
	c.setFlag(FlagN, true)
	return r
}

func (c *CPU) addHL(hl, v uint16) uint16 {
	r := uint32(hl) + uint32(v)
	c.setFlag(FlagC, r > 0xffff)
	c.setFlag(FlagH, hl&0x0fff+v&0x0fff > 0x0fff)
	c.setFlag(FlagN, false)
	return uint16(r)
}

// --- execution ---------------------------------------------------------------------

// Step executes one instruction and returns any decode error.
func (c *CPU) Step() error {
	if c.Hook != nil {
		return c.stepHooked()
	}
	if c.intPending && c.IFF && !c.ioPrefix {
		c.intPending = false
		c.IFF = false
		c.Halted = false
		c.push16(c.PC)
		c.PC = c.IntVector
		c.Cycles += 10
	}
	if c.Halted {
		c.Cycles += 2
		return nil
	}
	op := c.fetch8()
	c.Instructions++
	err := c.exec(op, nil)
	c.ioPrefix = false
	return err
}

// stepHooked is Step with instruction-event emission. Every cycle
// charge — interrupt dispatch, halted idle, and retired instructions —
// produces an OnInstr event, so the sum of event Cycles tracks
// CPU.Cycles exactly.
func (c *CPU) stepHooked() error {
	if c.intPending && c.IFF && !c.ioPrefix {
		c.intPending = false
		c.IFF = false
		c.Halted = false
		from := c.PC
		c.push16(c.PC)
		c.PC = c.IntVector
		c.Cycles += 10
		c.Hook.OnInstr(InstrEvent{PC: from, Cycles: 10, Flow: FlowInt, Target: c.IntVector})
	}
	if c.Halted {
		c.Cycles += 2
		c.Hook.OnInstr(InstrEvent{PC: c.PC, Cycles: 2})
		return nil
	}
	pc := c.PC
	startCycles := c.Cycles
	c.flow = FlowNone
	op := c.fetch8()
	c.Instructions++
	err := c.exec(op, nil)
	c.ioPrefix = false
	c.Hook.OnInstr(InstrEvent{
		PC:     pc,
		Op:     op,
		Cycles: c.Cycles - startCycles,
		Flow:   c.flow,
		Target: c.flowTarget,
	})
	return err
}

// Run executes until HALT, an error, or the cycle budget is exhausted.
// It returns the error, if any.
func (c *CPU) Run(maxCycles uint64) error {
	start := c.Cycles
	for !c.Halted && c.Cycles-start < maxCycles {
		if err := c.Step(); err != nil {
			return err
		}
	}
	if !c.Halted {
		return fmt.Errorf("rabbit: cycle budget %d exhausted at PC=%04x", maxCycles, c.PC)
	}
	return nil
}

// String renders the register file for diagnostics.
func (c *CPU) String() string {
	return fmt.Sprintf("A=%02x F=%02x BC=%04x DE=%04x HL=%04x IX=%04x IY=%04x SP=%04x PC=%04x cyc=%d",
		c.A, c.F, c.bc(), c.de(), c.hl(), c.IX, c.IY, c.SP, c.PC, c.Cycles)
}
