package rabbit

import (
	"testing"
)

// run loads code at 0 and executes until HALT (0x76), failing the test
// on decode errors or budget exhaustion.
func run(t *testing.T, code []byte) *CPU {
	t.Helper()
	c := New()
	c.Mem.LoadPhysical(0, code)
	if err := c.Run(2_000_000); err != nil {
		t.Fatalf("run: %v (%s)", err, c)
	}
	return c
}

func TestLoadImmediateAndHalt(t *testing.T) {
	c := run(t, []byte{
		0x3E, 0x42, // LD A,0x42
		0x06, 0x10, // LD B,0x10
		0x0E, 0x20, // LD C,0x20
		0x76, // HALT
	})
	if c.A != 0x42 || c.B != 0x10 || c.C != 0x20 {
		t.Errorf("A=%02x B=%02x C=%02x", c.A, c.B, c.C)
	}
	if c.Instructions != 4 {
		t.Errorf("instructions = %d", c.Instructions)
	}
}

func TestRegisterMoves(t *testing.T) {
	c := run(t, []byte{
		0x3E, 0x99, // LD A,0x99
		0x47, // LD B,A
		0x50, // LD D,B
		0x6A, // LD L,D
		0x76,
	})
	if c.B != 0x99 || c.D != 0x99 || c.L != 0x99 {
		t.Errorf("%s", c)
	}
}

func TestAddCarryAndOverflowFlags(t *testing.T) {
	// 0x7F + 1 = 0x80: overflow set, carry clear, sign set.
	c := run(t, []byte{0x3E, 0x7F, 0xC6, 0x01, 0x76}) // LD A,7F; ADD A,1
	if c.A != 0x80 || !c.flag(FlagPV) || c.flag(FlagC) || !c.flag(FlagS) {
		t.Errorf("ADD overflow: %s", c)
	}
	// 0xFF + 1 = 0x00: carry set, zero set.
	c = run(t, []byte{0x3E, 0xFF, 0xC6, 0x01, 0x76})
	if c.A != 0 || !c.flag(FlagC) || !c.flag(FlagZ) {
		t.Errorf("ADD carry: %s", c)
	}
}

func TestSubAndCompare(t *testing.T) {
	// 5 - 7 = -2: carry (borrow) set, sign set.
	c := run(t, []byte{0x3E, 0x05, 0xD6, 0x07, 0x76}) // SUB 7
	if c.A != 0xFE || !c.flag(FlagC) || !c.flag(FlagS) || !c.flag(FlagN) {
		t.Errorf("SUB: %s", c)
	}
	// CP leaves A alone but sets Z on equality.
	c = run(t, []byte{0x3E, 0x33, 0xFE, 0x33, 0x76}) // CP 0x33
	if c.A != 0x33 || !c.flag(FlagZ) {
		t.Errorf("CP: %s", c)
	}
}

func TestLogicOps(t *testing.T) {
	c := run(t, []byte{0x3E, 0xF0, 0xE6, 0x3C, 0x76}) // AND 0x3C
	if c.A != 0x30 || !c.flag(FlagH) || c.flag(FlagC) {
		t.Errorf("AND: %s", c)
	}
	c = run(t, []byte{0x3E, 0xF0, 0xEE, 0xFF, 0x76}) // XOR 0xFF
	if c.A != 0x0F {
		t.Errorf("XOR: %s", c)
	}
	c = run(t, []byte{0x3E, 0xF0, 0xF6, 0x0F, 0x76}) // OR 0x0F
	if c.A != 0xFF || c.flag(FlagZ) {
		t.Errorf("OR: %s", c)
	}
}

func TestIncDecFlags(t *testing.T) {
	c := run(t, []byte{0x3E, 0x7F, 0x3C, 0x76}) // INC A from 7F
	if c.A != 0x80 || !c.flag(FlagPV) || !c.flag(FlagS) {
		t.Errorf("INC overflow: %s", c)
	}
	c = run(t, []byte{0x3E, 0x01, 0x3D, 0x76}) // DEC A from 1
	if c.A != 0 || !c.flag(FlagZ) || !c.flag(FlagN) {
		t.Errorf("DEC to zero: %s", c)
	}
}

func TestMemoryLoadsThroughHL(t *testing.T) {
	c := New()
	c.Mem.LoadPhysical(0, []byte{
		0x21, 0x00, 0x40, // LD HL,0x4000
		0x36, 0xAB, // LD (HL),0xAB
		0x23,       // INC HL
		0x36, 0xCD, // LD (HL),0xCD
		0x2B, // DEC HL
		0x7E, // LD A,(HL)
		0x76,
	})
	if err := c.Run(1000); err != nil {
		t.Fatal(err)
	}
	if c.A != 0xAB || c.Mem.Read(0x4001) != 0xCD {
		t.Errorf("A=%02x mem=%02x", c.A, c.Mem.Read(0x4001))
	}
}

func TestSixteenBitLoadsAndAdd(t *testing.T) {
	c := run(t, []byte{
		0x21, 0x34, 0x12, // LD HL,0x1234
		0x01, 0x11, 0x11, // LD BC,0x1111
		0x09, // ADD HL,BC
		0x76,
	})
	if c.hl() != 0x2345 {
		t.Errorf("HL = %04x", c.hl())
	}
}

func TestPushPopAndExchange(t *testing.T) {
	c := run(t, []byte{
		0x21, 0x34, 0x12, // LD HL,0x1234
		0xE5,             // PUSH HL
		0x21, 0x78, 0x56, // LD HL,0x5678
		0xD1, // POP DE
		0xEB, // EX DE,HL
		0x76,
	})
	if c.hl() != 0x1234 || c.de() != 0x5678 {
		t.Errorf("HL=%04x DE=%04x", c.hl(), c.de())
	}
}

func TestAlternateRegisters(t *testing.T) {
	c := run(t, []byte{
		0x3E, 0x11, // LD A,0x11
		0x08,       // EX AF,AF'
		0x3E, 0x22, // LD A,0x22
		0x01, 0x44, 0x33, // LD BC,0x3344
		0xD9,             // EXX
		0x01, 0x66, 0x55, // LD BC,0x5566
		0x08, // EX AF,AF'  -> A=0x11 again
		0x76,
	})
	if c.A != 0x11 || c.bc() != 0x5566 || c.B2 != 0x33 {
		t.Errorf("A=%02x BC=%04x B2=%02x", c.A, c.bc(), c.B2)
	}
}

func TestJumpsAndConditions(t *testing.T) {
	// Count down from 5 using DJNZ; A accumulates iterations.
	c := run(t, []byte{
		0x06, 0x05, // LD B,5
		0x3E, 0x00, // LD A,0
		0x3C,       // loop: INC A
		0x10, 0xFD, // DJNZ loop (-3)
		0x76,
	})
	if c.A != 5 || c.B != 0 {
		t.Errorf("A=%d B=%d", c.A, c.B)
	}
}

func TestJRConditional(t *testing.T) {
	// JR NZ skips a load when Z clear.
	c := run(t, []byte{
		0x3E, 0x01, // LD A,1
		0xB7,       // OR A (clears Z)
		0x20, 0x02, // JR NZ,+2
		0x3E, 0xEE, // LD A,0xEE (skipped)
		0x76,
	})
	if c.A != 1 {
		t.Errorf("A = %02x", c.A)
	}
}

func TestCallRetStack(t *testing.T) {
	// CALL a subroutine that sets A, then RET.
	c := run(t, []byte{
		0xCD, 0x06, 0x00, // CALL 0x0006
		0x06, 0x07, // LD B,7
		0x76,       // HALT
		0x3E, 0x2A, // sub: LD A,0x2A
		0xC9, // RET
	})
	if c.A != 0x2A || c.B != 0x07 {
		t.Errorf("A=%02x B=%02x", c.A, c.B)
	}
	if c.SP != 0xDFFF {
		t.Errorf("SP = %04x, stack not balanced", c.SP)
	}
}

func TestConditionalRetAndCall(t *testing.T) {
	c := run(t, []byte{
		0xAF,             // XOR A (Z set)
		0xC4, 0x08, 0x00, // CALL NZ,sub (not taken)
		0xCC, 0x08, 0x00, // CALL Z,sub (taken)
		0x76,
		0x06, 0x99, // sub: LD B,0x99
		0xC8,       // RET Z
		0x06, 0x11, // LD B,0x11 (skipped: Z still set)
		0xC9,
	})
	if c.B != 0x99 {
		t.Errorf("B = %02x", c.B)
	}
}

func TestRotatesAndShifts(t *testing.T) {
	c := run(t, []byte{
		0x3E, 0x81, // LD A,0x81
		0x07, // RLCA -> 0x03, carry set
		0x76,
	})
	if c.A != 0x03 || !c.flag(FlagC) {
		t.Errorf("RLCA: %s", c)
	}
	c = run(t, []byte{
		0x3E, 0x02,
		0xCB, 0x27, // SLA A -> 4
		0xCB, 0x3F, // SRL A -> 2
		0xCB, 0x07, // RLC A -> 4
		0x76,
	})
	if c.A != 0x04 {
		t.Errorf("shift chain: A=%02x", c.A)
	}
}

func TestBitSetRes(t *testing.T) {
	c := run(t, []byte{
		0x3E, 0x00,
		0xCB, 0xDF, // SET 3,A
		0xCB, 0x5F, // BIT 3,A (Z clear)
		0x76,
	})
	if c.A != 0x08 || c.flag(FlagZ) {
		t.Errorf("SET/BIT: %s", c)
	}
	c = run(t, []byte{
		0x3E, 0xFF,
		0xCB, 0x87, // RES 0,A
		0x76,
	})
	if c.A != 0xFE {
		t.Errorf("RES: A=%02x", c.A)
	}
}

func TestIndexedAddressing(t *testing.T) {
	c := New()
	c.Mem.LoadPhysical(0, []byte{
		0xDD, 0x21, 0x00, 0x40, // LD IX,0x4000
		0xDD, 0x36, 0x05, 0x77, // LD (IX+5),0x77
		0xDD, 0x7E, 0x05, // LD A,(IX+5)
		0xFD, 0x21, 0x10, 0x40, // LD IY,0x4010
		0xFD, 0x70, 0xFE, // LD (IY-2),B ... B=0
		0x76,
	})
	c.B = 0x55
	if err := c.Run(1000); err != nil {
		t.Fatal(err)
	}
	if c.A != 0x77 || c.Mem.Read(0x4005) != 0x77 {
		t.Errorf("IX: A=%02x", c.A)
	}
	if c.Mem.Read(0x400E) != 0x55 {
		t.Errorf("IY-2 write = %02x", c.Mem.Read(0x400E))
	}
}

func TestLDIRBlockCopy(t *testing.T) {
	c := New()
	src := []byte("rabbit 2000 block move")
	c.Mem.LoadPhysical(0x4000, src)
	c.Mem.LoadPhysical(0, []byte{
		0x21, 0x00, 0x40, // LD HL,0x4000
		0x11, 0x00, 0x50, // LD DE,0x5000
		0x01, byte(len(src)), 0x00, // LD BC,len
		0xED, 0xB0, // LDIR
		0x76,
	})
	if err := c.Run(10000); err != nil {
		t.Fatal(err)
	}
	for i, b := range src {
		if c.Mem.Read(uint16(0x5000+i)) != b {
			t.Fatalf("byte %d = %02x, want %02x", i, c.Mem.Read(uint16(0x5000+i)), b)
		}
	}
	if c.bc() != 0 || c.flag(FlagPV) {
		t.Errorf("after LDIR: BC=%04x PV=%v", c.bc(), c.flag(FlagPV))
	}
}

func TestSBCADCHLAndNEG(t *testing.T) {
	c := run(t, []byte{
		0x21, 0x00, 0x10, // LD HL,0x1000
		0x01, 0x01, 0x00, // LD BC,1
		0xB7,       // OR A (clear carry)
		0xED, 0x42, // SBC HL,BC
		0x76,
	})
	if c.hl() != 0x0FFF {
		t.Errorf("SBC HL: %04x", c.hl())
	}
	c = run(t, []byte{0x3E, 0x01, 0xED, 0x44, 0x76}) // NEG
	if c.A != 0xFF || !c.flag(FlagC) {
		t.Errorf("NEG: %s", c)
	}
}

func TestDAA(t *testing.T) {
	// BCD 15 + 27 = 42.
	c := run(t, []byte{0x3E, 0x15, 0xC6, 0x27, 0x27, 0x76}) // ADD then DAA
	if c.A != 0x42 {
		t.Errorf("DAA: A=%02x, want 42 BCD", c.A)
	}
}

func TestEDRegisterPairLoads(t *testing.T) {
	c := run(t, []byte{
		0x01, 0x34, 0x12, // LD BC,0x1234
		0xED, 0x43, 0x00, 0x60, // LD (0x6000),BC
		0xED, 0x5B, 0x00, 0x60, // LD DE,(0x6000)
		0x76,
	})
	if c.de() != 0x1234 {
		t.Errorf("DE = %04x", c.de())
	}
}

func TestHaltStopsAndCounts(t *testing.T) {
	c := run(t, []byte{0x76})
	if !c.Halted {
		t.Error("not halted")
	}
	before := c.Cycles
	c.Step() // halted CPU burns cycles but does nothing
	if c.Cycles == before || c.PC != 1 {
		t.Errorf("halted step: %s", c)
	}
}

func TestIllegalOpcode(t *testing.T) {
	c := New()
	c.Mem.LoadPhysical(0, []byte{0xDB, 0x00}) // IOE prefix unmodeled
	if err := c.Run(100); err == nil {
		t.Error("illegal opcode not reported")
	}
}

func TestInterruptDispatch(t *testing.T) {
	c := New()
	// Main: EI, then spin incrementing B. ISR at 0x40: set A, RETI... but
	// RETI returns into the loop; we detect via A and halt from ISR.
	c.Mem.LoadPhysical(0, []byte{
		0xFB,       // EI
		0x04,       // loop: INC B
		0x18, 0xFD, // JR loop
	})
	c.Mem.LoadPhysical(0x40, []byte{
		0x3E, 0x77, // LD A,0x77
		0x76, // HALT inside ISR
	})
	c.IntVector = 0x40
	for i := 0; i < 10; i++ {
		c.Step()
	}
	c.RaiseInt()
	for i := 0; i < 10 && !c.Halted; i++ {
		c.Step()
	}
	if c.A != 0x77 {
		t.Errorf("ISR did not run: %s", c)
	}
	if c.IFF {
		t.Error("interrupts not disabled during ISR")
	}
}

func TestInterruptIgnoredWhenDisabled(t *testing.T) {
	c := New()
	c.Mem.LoadPhysical(0, []byte{0x04, 0x04, 0x04, 0x76}) // INC B x3, HALT
	c.IntVector = 0x40
	c.RaiseInt() // IFF false: must not dispatch
	if err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if c.B != 3 {
		t.Errorf("B = %d; interrupt taken while disabled?", c.B)
	}
}

func TestRST(t *testing.T) {
	c := New()
	c.Mem.LoadPhysical(0x18, []byte{0x3E, 0x66, 0xC9}) // RST 18h target
	c.Mem.LoadPhysical(0x100, []byte{0xDF, 0x76})      // RST 18h; HALT
	c.PC = 0x100
	if err := c.Run(1000); err != nil {
		t.Fatal(err)
	}
	if c.A != 0x66 {
		t.Errorf("A = %02x", c.A)
	}
}

// --- MMU tests -------------------------------------------------------------------

func TestMMURootIsIdentity(t *testing.T) {
	m := NewMemory()
	if m.Physical(0x1234) != 0x1234 {
		t.Errorf("root mapping not identity: %05x", m.Physical(0x1234))
	}
}

func TestMMUXPCWindow(t *testing.T) {
	m := NewMemory()
	m.XPC = 0x20 // window at 0xE000 maps to 0x20000+0xE000
	got := m.Physical(0xE000)
	if got != 0x20000+0xE000 {
		t.Errorf("XPC mapping = %05x", got)
	}
	// Changing XPC re-banks the same logical address.
	m.XPC = 0x21
	if m.Physical(0xE000) != 0x21000+0xE000 {
		t.Errorf("rebank = %05x", m.Physical(0xE000))
	}
}

func TestMMUStackSegment(t *testing.T) {
	m := NewMemory()
	m.StackSeg = 0x05
	if m.Physical(0xD800) != 0x5000+0xD800 {
		t.Errorf("stack seg = %05x", m.Physical(0xD800))
	}
}

func TestMMUDataSegment(t *testing.T) {
	m := NewMemory()
	m.SegSize = 0x06 // data segment starts at 0x6000
	m.DataSeg = 0x10
	if m.Physical(0x5FFF) != 0x5FFF {
		t.Error("below boundary should be root")
	}
	if m.Physical(0x6000) != 0x10000+0x6000 {
		t.Errorf("data seg = %05x", m.Physical(0x6000))
	}
}

func TestMMUWrap20Bits(t *testing.T) {
	m := NewMemory()
	m.XPC = 0xFF
	got := m.Physical(0xFFFF)
	if got >= PhysMemSize {
		t.Errorf("physical address %x exceeds 20 bits", got)
	}
}

func TestFlashWriteProtect(t *testing.T) {
	m := NewMemory()
	m.FlashEnd = 0x1000
	m.Phys[0x500] = 0xAA
	m.Write(0x500, 0x55)
	if m.Phys[0x500] != 0xAA {
		t.Error("flash was modified")
	}
	if m.IgnoredWrites != 1 {
		t.Errorf("ignored writes = %d", m.IgnoredWrites)
	}
	m.Write(0x2000, 0x55) // RAM above flash is writable
	if m.Read(0x2000) != 0x55 {
		t.Error("RAM write failed")
	}
}

func TestIOIPrefix(t *testing.T) {
	bus := &recordingBus{regs: map[uint16]uint8{0x0155: 0x5A}}
	c := New()
	c.IO = bus
	c.Mem.LoadPhysical(0, []byte{
		0x3E, 0x42, // LD A,0x42
		0xD3, 0x32, 0x20, 0x01, // IOI LD (0x0120),A
		0xD3, 0x3A, 0x55, 0x01, // IOI LD A,(0x0155)
		0x32, 0x00, 0x40, // LD (0x4000),A  (normal memory)
		0x76,
	})
	if err := c.Run(1000); err != nil {
		t.Fatal(err)
	}
	if bus.regs[0x0120] != 0x42 {
		t.Errorf("I/O write = %02x", bus.regs[0x0120])
	}
	if c.A != 0x5A {
		t.Errorf("I/O read: A=%02x", c.A)
	}
	if c.Mem.Read(0x4000) != 0x5A {
		t.Error("memory write after IOI misrouted")
	}
}

type recordingBus struct{ regs map[uint16]uint8 }

func (b *recordingBus) In(p uint16) uint8     { return b.regs[p] }
func (b *recordingBus) Out(p uint16, v uint8) { b.regs[p] = v }

func TestCyclesAccumulate(t *testing.T) {
	c := run(t, []byte{0x00, 0x00, 0x76}) // NOP NOP HALT
	if c.Cycles < 4 {
		t.Errorf("cycles = %d", c.Cycles)
	}
}

func TestRunBudgetExhaustion(t *testing.T) {
	c := New()
	c.Mem.LoadPhysical(0, []byte{0x18, 0xFE}) // JR -2 (infinite loop)
	if err := c.Run(1000); err == nil {
		t.Error("infinite loop not caught by budget")
	}
}
