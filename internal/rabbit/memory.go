// Package rabbit is an instruction-level simulator for the Rabbit 2000
// microcontroller — the Z80-derived 8-bit CPU on the RMC2000 board
// (§4): 16-bit logical addresses, 1 MB of physical memory reached
// through bank switching, and per-instruction cycle counts modeled on
// the Rabbit 2000 user's manual (approximate, but consistent — the
// asm-vs-C experiments depend on relative, not absolute, timing).
//
// The memory map follows §4.3: "The lower 50K is fixed, root memory,
// the middle 6K is I/O, and the top 8K is bank-switched access to the
// remaining memory" — concretely the Rabbit's four segments: root,
// data segment, stack segment, and the 8 KB XPC window at 0xE000
// relocated by the XPC register.
package rabbit

// PhysMemSize is the 1 MB physical address space (20-bit).
const PhysMemSize = 1 << 20

// Segment window bases in the 64 KB logical space.
const (
	// StackSegBase is the 4 KB stack segment at 0xD000.
	StackSegBase = 0xD000
	// XPCSegBase is the 8 KB bank-switched window at 0xE000.
	XPCSegBase = 0xE000
)

// Memory is the Rabbit's MMU plus physical storage.
//
// Physical address calculation (Rabbit 2000 user's manual, ch. 3):
//
//	logical in [0, dataBase)      -> physical = logical            (root)
//	logical in [dataBase, 0xD000) -> physical = logical + DATASEG<<12
//	logical in [0xD000, 0xE000)   -> physical = logical + STACKSEG<<12
//	logical in [0xE000, 0xFFFF]   -> physical = logical + XPC<<12
//
// where dataBase = (SEGSIZE & 0x0F) << 12. All physical addresses wrap
// at 20 bits.
type Memory struct {
	Phys []byte

	// MMU registers.
	SegSize  uint8 // low nibble: data segment boundary (4K units)
	StackSeg uint8
	DataSeg  uint8
	XPC      uint8

	// FlashEnd marks [0, FlashEnd) as write-protected flash; writes
	// there are ignored (and counted), like real flash without an
	// unlock sequence.
	FlashEnd      uint32
	IgnoredWrites uint64
	physReads     uint64
	physWrites    uint64
}

// NewMemory allocates the full 1 MB physical space.
func NewMemory() *Memory {
	return &Memory{Phys: make([]byte, PhysMemSize)}
}

// dataBase returns the start of the data segment window.
func (m *Memory) dataBase() uint32 {
	return uint32(m.SegSize&0x0f) << 12
}

// Physical translates a logical address through the MMU.
func (m *Memory) Physical(logical uint16) uint32 {
	l := uint32(logical)
	switch {
	case l >= XPCSegBase:
		return (l + uint32(m.XPC)<<12) & (PhysMemSize - 1)
	case l >= StackSegBase:
		return (l + uint32(m.StackSeg)<<12) & (PhysMemSize - 1)
	case l >= m.dataBase():
		return (l + uint32(m.DataSeg)<<12) & (PhysMemSize - 1)
	default:
		return l
	}
}

// Read fetches one byte through the MMU.
func (m *Memory) Read(addr uint16) byte {
	m.physReads++
	return m.Phys[m.Physical(addr)]
}

// Write stores one byte through the MMU, respecting flash protection.
func (m *Memory) Write(addr uint16, v byte) {
	p := m.Physical(addr)
	if p < m.FlashEnd {
		m.IgnoredWrites++
		return
	}
	m.physWrites++
	m.Phys[p] = v
}

// Read16 fetches a little-endian word.
func (m *Memory) Read16(addr uint16) uint16 {
	return uint16(m.Read(addr)) | uint16(m.Read(addr+1))<<8
}

// Write16 stores a little-endian word.
func (m *Memory) Write16(addr uint16, v uint16) {
	m.Write(addr, byte(v))
	m.Write(addr+1, byte(v>>8))
}

// LoadPhysical copies an image into physical memory at the given
// address, bypassing flash protection (the programming port's job).
func (m *Memory) LoadPhysical(addr uint32, img []byte) {
	copy(m.Phys[addr:], img)
}

// Stats reports MMU-mediated access counts (diagnostics).
func (m *Memory) Stats() (reads, writes uint64) { return m.physReads, m.physWrites }
