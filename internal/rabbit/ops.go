package rabbit

import "fmt"

// exec decodes and executes one primary opcode. ix is non-nil when a
// DD (IX) or FD (IY) prefix is active. Decoding follows the standard
// x/y/z scheme: x = op>>6, y = (op>>3)&7, z = op&7, p = y>>1, q = y&1.
//
// Cycle counts approximate the Rabbit 2000 user's manual; register
// operations are cheap (2 clocks), memory operands cost ~5–7,
// call/ret/push/pop ~8–12, prefixed index forms add ~4.
func (c *CPU) exec(op uint8, ix *uint16) error {
	x := int(op >> 6)
	y := int(op >> 3 & 7)
	z := int(op & 7)
	p := y >> 1
	q := y & 1

	// Displacement for (IX+d) forms is fetched lazily: only
	// instructions that actually use operand 6 with a prefix have one.
	var d int8
	fetchD := func() {
		if ix != nil {
			d = int8(c.fetch8())
		}
	}
	idxCost := uint64(0)
	if ix != nil {
		idxCost = 4
	}

	switch x {
	case 1: // LD r,r' | HALT
		if y == 6 && z == 6 {
			c.Halted = true
			c.Cycles += 2
			return nil
		}
		if y == 6 || z == 6 {
			fetchD()
			c.Cycles += 5 + idxCost
		} else {
			c.Cycles += 2
		}
		c.setR(y, ix, d, c.getR(z, ix, d))
		return nil

	case 2: // ALU A, r
		if z == 6 {
			fetchD()
			c.Cycles += 5 + idxCost
		} else {
			c.Cycles += 2
		}
		c.alu(y, c.getR(z, ix, d))
		return nil
	}

	if x == 0 {
		switch z {
		case 0:
			switch y {
			case 0: // NOP
				c.Cycles += 2
			case 1: // EX AF,AF'
				c.A, c.A2 = c.A2, c.A
				c.F, c.F2 = c.F2, c.F
				c.Cycles += 2
			case 2: // DJNZ d
				e := int8(c.fetch8())
				c.B--
				if c.B != 0 {
					c.PC = uint16(int32(c.PC) + int32(e))
					c.Cycles += 7
				} else {
					c.Cycles += 5
				}
			case 3: // JR d
				e := int8(c.fetch8())
				c.PC = uint16(int32(c.PC) + int32(e))
				c.Cycles += 5
			default: // JR cc,d
				e := int8(c.fetch8())
				if c.cond(y - 4) {
					c.PC = uint16(int32(c.PC) + int32(e))
					c.Cycles += 7
				} else {
					c.Cycles += 5
				}
			}
		case 1:
			if q == 0 { // LD rp,nn
				c.setRP(p, ix, c.fetch16())
				c.Cycles += 6 + idxCost
			} else { // ADD HL,rp
				hl := c.getRP(2, ix)
				c.setRP(2, ix, c.addHL(hl, c.getRP(p, ix)))
				c.Cycles += 2 + idxCost
			}
		case 2:
			switch y {
			case 0: // LD (BC),A
				c.memWrite8(c.bc(), c.A)
				c.Cycles += 6
			case 1: // LD A,(BC)
				c.A = c.memRead8(c.bc())
				c.Cycles += 6
			case 2: // LD (DE),A
				c.memWrite8(c.de(), c.A)
				c.Cycles += 6
			case 3: // LD A,(DE)
				c.A = c.memRead8(c.de())
				c.Cycles += 6
			case 4: // LD (nn),HL
				addr := c.fetch16()
				hl := c.getRP(2, ix)
				if c.ioPrefix {
					c.IO.Out(addr, uint8(hl))
					c.IO.Out(addr+1, uint8(hl>>8))
				} else {
					c.Mem.Write16(addr, hl)
				}
				c.Cycles += 11 + idxCost
			case 5: // LD HL,(nn)
				addr := c.fetch16()
				var v uint16
				if c.ioPrefix {
					v = uint16(c.IO.In(addr)) | uint16(c.IO.In(addr+1))<<8
				} else {
					v = c.Mem.Read16(addr)
				}
				c.setRP(2, ix, v)
				c.Cycles += 9 + idxCost
			case 6: // LD (nn),A
				c.memWrite8(c.fetch16(), c.A)
				c.Cycles += 8
			default: // LD A,(nn)
				c.A = c.memRead8(c.fetch16())
				c.Cycles += 6
			}
		case 3: // INC/DEC rp
			v := c.getRP(p, ix)
			if q == 0 {
				v++
			} else {
				v--
			}
			c.setRP(p, ix, v)
			c.Cycles += 2 + idxCost
		case 4: // INC r
			if y == 6 {
				fetchD()
				c.Cycles += 8 + idxCost
			} else {
				c.Cycles += 2
			}
			c.setR(y, ix, d, c.inc8(c.getR(y, ix, d)))
		case 5: // DEC r
			if y == 6 {
				fetchD()
				c.Cycles += 8 + idxCost
			} else {
				c.Cycles += 2
			}
			c.setR(y, ix, d, c.dec8(c.getR(y, ix, d)))
		case 6: // LD r,n
			if y == 6 {
				fetchD()
				c.setR(y, ix, d, c.fetch8())
				c.Cycles += 7 + idxCost
			} else {
				c.setR(y, ix, d, c.fetch8())
				c.Cycles += 4
			}
		case 7:
			switch y {
			case 0: // RLCA
				carry := c.A >> 7
				c.A = c.A<<1 | carry
				c.setFlag(FlagC, carry != 0)
				c.setFlag(FlagH, false)
				c.setFlag(FlagN, false)
			case 1: // RRCA
				carry := c.A & 1
				c.A = c.A>>1 | carry<<7
				c.setFlag(FlagC, carry != 0)
				c.setFlag(FlagH, false)
				c.setFlag(FlagN, false)
			case 2: // RLA
				carry := c.A >> 7
				c.A <<= 1
				if c.flag(FlagC) {
					c.A |= 1
				}
				c.setFlag(FlagC, carry != 0)
				c.setFlag(FlagH, false)
				c.setFlag(FlagN, false)
			case 3: // RRA
				carry := c.A & 1
				c.A >>= 1
				if c.flag(FlagC) {
					c.A |= 0x80
				}
				c.setFlag(FlagC, carry != 0)
				c.setFlag(FlagH, false)
				c.setFlag(FlagN, false)
			case 4: // DAA
				c.daa()
			case 5: // CPL
				c.A = ^c.A
				c.setFlag(FlagH, true)
				c.setFlag(FlagN, true)
			case 6: // SCF
				c.setFlag(FlagC, true)
				c.setFlag(FlagH, false)
				c.setFlag(FlagN, false)
			default: // CCF
				c.setFlag(FlagH, c.flag(FlagC))
				c.setFlag(FlagC, !c.flag(FlagC))
				c.setFlag(FlagN, false)
			}
			c.Cycles += 2
		}
		return nil
	}

	// x == 3
	switch z {
	case 0: // RET cc
		if c.cond(y) {
			c.PC = c.pop16()
			c.Cycles += 8
			if c.Hook != nil {
				c.flow, c.flowTarget = FlowRet, c.PC
			}
		} else {
			c.Cycles += 2
		}
	case 1:
		if q == 0 { // POP rp2
			c.setRP2(p, ix, c.pop16())
			c.Cycles += 7 + idxCost
		} else {
			switch p {
			case 0: // RET
				c.PC = c.pop16()
				c.Cycles += 8
				if c.Hook != nil {
					c.flow, c.flowTarget = FlowRet, c.PC
				}
			case 1: // EXX
				c.B, c.B2 = c.B2, c.B
				c.C, c.C2 = c.C2, c.C
				c.D, c.D2 = c.D2, c.D
				c.E, c.E2 = c.E2, c.E
				c.H, c.H2 = c.H2, c.H
				c.L, c.L2 = c.L2, c.L
				c.Cycles += 2
			case 2: // JP (HL)
				c.PC = c.getRP(2, ix)
				c.Cycles += 4
			default: // LD SP,HL
				c.SP = c.getRP(2, ix)
				c.Cycles += 2
			}
		}
	case 2: // JP cc,nn
		addr := c.fetch16()
		if c.cond(y) {
			c.PC = addr
		}
		c.Cycles += 7
	case 3:
		switch y {
		case 0: // JP nn
			c.PC = c.fetch16()
			c.Cycles += 7
		case 1: // CB prefix
			return c.execCB(ix)
		case 2: // 0xD3: IOI prefix (Rabbit; Z80 used this for OUT (n),A)
			c.ioPrefix = true
			c.Cycles += 2
			op2 := c.fetch8()
			c.Instructions++
			err := c.exec(op2, nil)
			c.ioPrefix = false
			return err
		case 3: // 0xDB: unsupported (Z80 IN A,(n); Rabbit IOE prefix)
			return fmt.Errorf("%w: %02x (IOE prefix not modeled)", ErrIllegalOpcode, op)
		case 4: // EX (SP),HL
			hl := c.getRP(2, ix)
			v := c.Mem.Read16(c.SP)
			c.Mem.Write16(c.SP, hl)
			c.setRP(2, ix, v)
			c.Cycles += 15 + idxCost
		case 5: // EX DE,HL
			de := c.de()
			c.setDE(c.hl())
			c.setHL(de)
			c.Cycles += 2
		case 6: // DI
			c.IFF = false
			c.Cycles += 4
		default: // EI
			c.IFF = true
			c.Cycles += 4
		}
	case 4: // CALL cc,nn
		addr := c.fetch16()
		if c.cond(y) {
			c.push16(c.PC)
			c.PC = addr
			c.Cycles += 12
			if c.Hook != nil {
				c.flow, c.flowTarget = FlowCall, addr
			}
		} else {
			c.Cycles += 7
		}
	case 5:
		if q == 0 { // PUSH rp2
			c.push16(c.getRP2(p, ix))
			c.Cycles += 10 + idxCost
		} else {
			switch p {
			case 0: // CALL nn
				addr := c.fetch16()
				c.push16(c.PC)
				c.PC = addr
				c.Cycles += 12
				if c.Hook != nil {
					c.flow, c.flowTarget = FlowCall, addr
				}
			case 1: // DD prefix
				return c.execPrefixed(&c.IX)
			case 2: // ED prefix
				return c.execED()
			default: // FD prefix
				return c.execPrefixed(&c.IY)
			}
		}
	case 6: // ALU A,n
		c.alu(y, c.fetch8())
		c.Cycles += 4
	case 7: // RST y*8
		c.push16(c.PC)
		c.PC = uint16(y * 8)
		c.Cycles += 8
		if c.Hook != nil {
			c.flow, c.flowTarget = FlowCall, c.PC
		}
	}
	return nil
}

// execPrefixed handles a DD/FD prefix byte.
func (c *CPU) execPrefixed(ix *uint16) error {
	op := c.fetch8()
	switch op {
	case 0xDD:
		return c.execPrefixed(&c.IX)
	case 0xFD:
		return c.execPrefixed(&c.IY)
	case 0xCB:
		return c.execDDCB(ix)
	case 0xED:
		return c.execED()
	}
	return c.exec(op, ix)
}

// daa implements decimal adjust (Z80 semantics).
func (c *CPU) daa() {
	a := c.A
	var adjust uint8
	carry := c.flag(FlagC)
	if c.flag(FlagH) || a&0x0f > 9 {
		adjust = 0x06
	}
	if carry || a > 0x99 {
		adjust |= 0x60
		carry = true
	}
	if c.flag(FlagN) {
		c.setFlag(FlagH, c.flag(FlagH) && a&0x0f < 6)
		a -= adjust
	} else {
		c.setFlag(FlagH, a&0x0f > 9)
		a += adjust
	}
	c.A = a
	c.setFlag(FlagC, carry)
	c.setFlag(FlagZ, a == 0)
	c.setFlag(FlagS, a&0x80 != 0)
	c.setFlag(FlagPV, parity(a))
}

// execCB handles the CB prefix: rotates, shifts, and bit operations.
func (c *CPU) execCB(ix *uint16) error {
	// With DD CB the displacement precedes the final opcode; handled
	// by execDDCB. Here ix is nil.
	op := c.fetch8()
	x := int(op >> 6)
	y := int(op >> 3 & 7)
	z := int(op & 7)
	cost := uint64(4)
	if z == 6 {
		cost = 10
	}
	c.Cycles += cost
	switch x {
	case 0: // rotate/shift
		v := c.getR(z, nil, 0)
		c.setR(z, nil, 0, c.rotOp(y, v))
	case 1: // BIT y,r
		v := c.getR(z, nil, 0)
		c.setFlag(FlagZ, v&(1<<uint(y)) == 0)
		c.setFlag(FlagH, true)
		c.setFlag(FlagN, false)
	case 2: // RES y,r
		v := c.getR(z, nil, 0)
		c.setR(z, nil, 0, v&^(1<<uint(y)))
	case 3: // SET y,r
		v := c.getR(z, nil, 0)
		c.setR(z, nil, 0, v|1<<uint(y))
	}
	_ = ix
	return nil
}

// execDDCB handles DD/FD CB d op — bit operations on (IX+d).
func (c *CPU) execDDCB(ix *uint16) error {
	d := int8(c.fetch8())
	op := c.fetch8()
	x := int(op >> 6)
	y := int(op >> 3 & 7)
	addr := uint16(int32(*ix) + int32(d))
	c.Cycles += 12
	v := c.Mem.Read(addr)
	switch x {
	case 0:
		c.Mem.Write(addr, c.rotOp(y, v))
	case 1:
		c.setFlag(FlagZ, v&(1<<uint(y)) == 0)
		c.setFlag(FlagH, true)
		c.setFlag(FlagN, false)
	case 2:
		c.Mem.Write(addr, v&^(1<<uint(y)))
	case 3:
		c.Mem.Write(addr, v|1<<uint(y))
	}
	return nil
}

// rotOp applies rotate/shift operation y to v, setting flags.
func (c *CPU) rotOp(y int, v uint8) uint8 {
	var r uint8
	var carry bool
	switch y {
	case 0: // RLC
		carry = v&0x80 != 0
		r = v<<1 | v>>7
	case 1: // RRC
		carry = v&1 != 0
		r = v>>1 | v<<7
	case 2: // RL
		carry = v&0x80 != 0
		r = v << 1
		if c.flag(FlagC) {
			r |= 1
		}
	case 3: // RR
		carry = v&1 != 0
		r = v >> 1
		if c.flag(FlagC) {
			r |= 0x80
		}
	case 4: // SLA
		carry = v&0x80 != 0
		r = v << 1
	case 5: // SRA
		carry = v&1 != 0
		r = v>>1 | v&0x80
	case 6: // SLL (undocumented on Z80; kept for completeness)
		carry = v&0x80 != 0
		r = v<<1 | 1
	default: // SRL
		carry = v&1 != 0
		r = v >> 1
	}
	c.szp(r)
	c.setFlag(FlagC, carry)
	c.setFlag(FlagH, false)
	c.setFlag(FlagN, false)
	return r
}

// execED handles the ED prefix subset the toolchain emits.
func (c *CPU) execED() error {
	op := c.fetch8()
	switch op {
	case 0x44: // NEG
		v := c.A
		c.A = 0
		c.alu(2, v) // SUB v from 0
		c.Cycles += 4
		return nil
	case 0x4D: // RETI
		c.PC = c.pop16()
		c.Cycles += 12
		if c.Hook != nil {
			c.flow, c.flowTarget = FlowRet, c.PC
		}
		return nil
	case 0xA0, 0xA8, 0xB0, 0xB8: // LDI / LDD / LDIR / LDDR
		step := int32(1)
		if op == 0xA8 || op == 0xB8 {
			step = -1
		}
		repeat := op == 0xB0 || op == 0xB8
		for {
			c.Mem.Write(c.de(), c.Mem.Read(c.hl()))
			c.setHL(uint16(int32(c.hl()) + step))
			c.setDE(uint16(int32(c.de()) + step))
			c.setBC(c.bc() - 1)
			c.Cycles += 7
			if !repeat || c.bc() == 0 {
				break
			}
		}
		c.setFlag(FlagPV, c.bc() != 0)
		c.setFlag(FlagH, false)
		c.setFlag(FlagN, false)
		return nil
	}
	// SBC HL,rp (01pp0010) / ADC HL,rp (01pp1010) /
	// LD (nn),rp (01pp0011) / LD rp,(nn) (01pp1011)
	if op&0xCF == 0x42 || op&0xCF == 0x4A {
		p := int(op >> 4 & 3)
		hl := c.hl()
		v := c.getRP(p, nil)
		carry := uint32(0)
		if c.flag(FlagC) {
			carry = 1
		}
		if op&0x08 == 0 { // SBC
			r := uint32(hl) - uint32(v) - carry
			res := uint16(r)
			c.setFlag(FlagC, r > 0xffff)
			c.setFlag(FlagN, true)
			c.setFlag(FlagZ, res == 0)
			c.setFlag(FlagS, res&0x8000 != 0)
			c.setFlag(FlagPV, (hl^v)&(hl^res)&0x8000 != 0)
			c.setFlag(FlagH, hl&0x0fff < v&0x0fff+uint16(carry))
			c.setHL(res)
		} else { // ADC
			r := uint32(hl) + uint32(v) + carry
			res := uint16(r)
			c.setFlag(FlagC, r > 0xffff)
			c.setFlag(FlagN, false)
			c.setFlag(FlagZ, res == 0)
			c.setFlag(FlagS, res&0x8000 != 0)
			c.setFlag(FlagPV, (hl^res)&(v^res)&0x8000 != 0)
			c.setFlag(FlagH, hl&0x0fff+v&0x0fff+uint16(carry) > 0x0fff)
			c.setHL(res)
		}
		c.Cycles += 4
		return nil
	}
	if op&0xCF == 0x43 { // LD (nn),rp
		addr := c.fetch16()
		c.Mem.Write16(addr, c.getRP(int(op>>4&3), nil))
		c.Cycles += 13
		return nil
	}
	if op&0xCF == 0x4B { // LD rp,(nn)
		addr := c.fetch16()
		c.setRP(int(op>>4&3), nil, c.Mem.Read16(addr))
		c.Cycles += 11
		return nil
	}
	return fmt.Errorf("%w: ED %02x at PC=%04x", ErrIllegalOpcode, op, c.PC-2)
}
