package rabbit

import (
	"fmt"
	"io"
	"sort"
)

// Profiler is an InstrHook that attributes executed cycles to symbols
// from an assembled program, maintaining a call stack from CALL/RET
// flow events so it can emit both a flat per-symbol report and a
// folded-stack report in the format flamegraph tools consume
// ("caller;callee cycles" lines).
//
// Attribution rules:
//   - every instruction's cycles go to the symbol containing its PC
//     (flat) and to the call stack as it stood when the instruction
//     issued (folded) — so a CALL's 12 cycles bill to the caller and a
//     RET's 8 cycles bill to the callee, matching where the PC was;
//   - a CALL (or RST, or interrupt dispatch) pushes the frame for the
//     transfer target; RET/RETI pops, but never below the root frame,
//     so push-address/ret tricks degrade gracefully instead of
//     underflowing;
//   - interrupt dispatch and halted idle cycles are events too (the
//     CPU emits them), so TotalCycles always equals the growth of
//     CPU.Cycles while attached.
//
// PC→symbol resolution uses only symbols whose value lies inside the
// program's code range [origin, origin+len(code)): rasm symbol tables
// also carry equ constants (I/O addresses, buffer sizes) whose values
// are not code addresses and must not create bogus spans. Addresses
// before the first code symbol resolve to the synthetic symbol
// "(orphan)".
type Profiler struct {
	spans []span // sorted by start address

	// per-span accumulators, parallel to spans
	cycles []uint64
	instrs []uint64

	orphanCycles uint64
	orphanInstrs uint64

	stack  []int    // span indices, bottom-first; -1 = orphan frame
	keys   []string // keys[d] = folded key for stack[:d+1]
	folded map[string]uint64

	total uint64 // cycles seen since last reset

	// lastSpan caches the most recent resolution: straight-line code
	// hits the same span for many instructions in a row.
	lastSpan int
}

type span struct {
	start uint16
	end   uint16 // exclusive
	name  string
}

const orphanName = "(orphan)"

// NewProfiler builds a profiler for a program image. Symbols outside
// the code range are ignored; symbols sharing an address are
// deduplicated keeping the lexically smallest name, so reports are
// deterministic.
func NewProfiler(origin uint16, codeLen int, symbols map[string]uint16) *Profiler {
	end := uint32(origin) + uint32(codeLen)
	type sym struct {
		addr uint16
		name string
	}
	var syms []sym
	for name, addr := range symbols {
		if uint32(addr) >= uint32(origin) && uint32(addr) < end {
			syms = append(syms, sym{addr, name})
		}
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].addr != syms[j].addr {
			return syms[i].addr < syms[j].addr
		}
		return syms[i].name < syms[j].name
	})
	p := &Profiler{folded: map[string]uint64{}, lastSpan: -1}
	for i, s := range syms {
		if i > 0 && p.spans[len(p.spans)-1].start == s.addr {
			continue // same address: keep first (lexically smallest) name
		}
		if n := len(p.spans); n > 0 {
			p.spans[n-1].end = s.addr
		}
		p.spans = append(p.spans, span{start: s.addr, end: uint16(end - 1), name: s.name})
	}
	if n := len(p.spans); n > 0 {
		// Last span runs to the end of code. end is exclusive; clamp to
		// the uint16 range (a program ending at 0x10000 wraps to 0).
		e := end
		if e > 0xFFFF {
			e = 0xFFFF // inclusive top handled in resolve
			p.spans[n-1].end = 0xFFFF
		} else {
			p.spans[n-1].end = uint16(e)
		}
	}
	p.cycles = make([]uint64, len(p.spans))
	p.instrs = make([]uint64, len(p.spans))
	return p
}

// NewProgramProfiler builds a profiler from the assembler's view of a
// program: origin, code length and symbol table.
func NewProgramProfiler(origin uint16, code []byte, symbols map[string]uint16) *Profiler {
	return NewProfiler(origin, len(code), symbols)
}

// Attach installs the profiler as the CPU's hook.
func (p *Profiler) Attach(c *CPU) { c.Hook = p }

// resolve maps a PC to a span index, -1 for addresses outside all
// spans.
func (p *Profiler) resolve(pc uint16) int {
	if p.lastSpan >= 0 {
		s := p.spans[p.lastSpan]
		if pc >= s.start && (pc < s.end || (s.end == 0xFFFF && pc == 0xFFFF)) {
			return p.lastSpan
		}
	}
	lo, hi := 0, len(p.spans)
	for lo < hi {
		mid := (lo + hi) / 2
		if p.spans[mid].start <= pc {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// lo is the first span starting after pc; candidate is lo-1.
	if lo == 0 {
		return -1
	}
	i := lo - 1
	s := p.spans[i]
	if pc < s.end || (s.end == 0xFFFF && pc == 0xFFFF) {
		p.lastSpan = i
		return i
	}
	return -1
}

func (p *Profiler) spanName(i int) string {
	if i < 0 {
		return orphanName
	}
	return p.spans[i].name
}

// OnInstr implements InstrHook.
func (p *Profiler) OnInstr(ev InstrEvent) {
	p.total += ev.Cycles

	si := p.resolve(ev.PC)
	if si < 0 {
		p.orphanCycles += ev.Cycles
		p.orphanInstrs++
	} else {
		p.cycles[si] += ev.Cycles
		p.instrs[si]++
	}

	// Seed the stack with the frame execution started in.
	if len(p.stack) == 0 {
		p.push(si)
	} else if p.stack[len(p.stack)-1] != si && ev.Flow == FlowNone {
		// Straight-line fall-through (or a jump) crossed a symbol
		// boundary: retarget the top frame rather than nesting, since
		// no return address was pushed.
		p.retarget(si)
	}

	// Bill to the stack as it stood when this instruction issued.
	p.folded[p.keys[len(p.keys)-1]] += ev.Cycles

	switch ev.Flow {
	case FlowCall, FlowInt:
		p.push(p.resolve(ev.Target))
	case FlowRet:
		if len(p.stack) > 1 {
			p.stack = p.stack[:len(p.stack)-1]
			p.keys = p.keys[:len(p.keys)-1]
		} else {
			// Returning past the root (push-address/ret trick or a
			// profiler attached mid-run): retarget rather than
			// underflow.
			p.retarget(p.resolve(ev.Target))
		}
	}
}

func (p *Profiler) push(si int) {
	name := p.spanName(si)
	var key string
	if len(p.keys) == 0 {
		key = name
	} else {
		key = p.keys[len(p.keys)-1] + ";" + name
	}
	p.stack = append(p.stack, si)
	p.keys = append(p.keys, key)
}

// retarget rewrites the top frame to span si, rebuilding its key.
func (p *Profiler) retarget(si int) {
	p.stack = p.stack[:len(p.stack)-1]
	p.keys = p.keys[:len(p.keys)-1]
	p.push(si)
}

// OnReset implements InstrHook: discards call stack and totals so a
// CPU.Reset starts profiling from a clean slate.
func (p *Profiler) OnReset() {
	for i := range p.cycles {
		p.cycles[i] = 0
		p.instrs[i] = 0
	}
	p.orphanCycles = 0
	p.orphanInstrs = 0
	p.stack = p.stack[:0]
	p.keys = p.keys[:0]
	p.folded = map[string]uint64{}
	p.total = 0
	p.lastSpan = -1
}

// TotalCycles returns the cycles observed since attach/reset. It
// equals the growth of CPU.Cycles over the same window, and the sum of
// per-symbol cycles in Flat().
func (p *Profiler) TotalCycles() uint64 { return p.total }

// FlatLine is one row of the flat profile.
type FlatLine struct {
	Symbol string
	Cycles uint64
	Instrs uint64
}

// Flat returns per-symbol totals sorted by descending cycles (ties by
// name). Symbols that never executed are omitted.
func (p *Profiler) Flat() []FlatLine {
	out := make([]FlatLine, 0, len(p.spans)+1)
	for i, s := range p.spans {
		if p.cycles[i] == 0 && p.instrs[i] == 0 {
			continue
		}
		out = append(out, FlatLine{Symbol: s.name, Cycles: p.cycles[i], Instrs: p.instrs[i]})
	}
	if p.orphanCycles != 0 || p.orphanInstrs != 0 {
		out = append(out, FlatLine{Symbol: orphanName, Cycles: p.orphanCycles, Instrs: p.orphanInstrs})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		return out[i].Symbol < out[j].Symbol
	})
	return out
}

// WriteFlat renders the flat profile as a table with percentages.
func (p *Profiler) WriteFlat(w io.Writer) error {
	total := p.total
	if _, err := fmt.Fprintf(w, "%-24s %12s %8s %12s\n", "SYMBOL", "CYCLES", "PCT", "INSTRS"); err != nil {
		return err
	}
	for _, l := range p.Flat() {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(l.Cycles) / float64(total)
		}
		if _, err := fmt.Fprintf(w, "%-24s %12d %7.2f%% %12d\n", l.Symbol, l.Cycles, pct, l.Instrs); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-24s %12d %7.2f%% %12s\n", "TOTAL", total, 100.0, "")
	return err
}

// Folded returns the folded-stack totals: map from "a;b;c" stack keys
// to cycles spent with exactly that stack.
func (p *Profiler) Folded() map[string]uint64 {
	out := make(map[string]uint64, len(p.folded))
	for k, v := range p.folded {
		out[k] = v
	}
	return out
}

// WriteFolded renders the folded stacks in the flamegraph collapsed
// format — one "stack count" line per unique stack, sorted lexically
// so output is deterministic.
func (p *Profiler) WriteFolded(w io.Writer) error {
	keys := make([]string, 0, len(p.folded))
	for k := range p.folded {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s %d\n", k, p.folded[k]); err != nil {
			return err
		}
	}
	return nil
}
