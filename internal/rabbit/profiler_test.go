package rabbit_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/rabbit"
	"repro/internal/rasm"
)

// nestedCallSrc is a tiny program with two levels of nested CALLs plus
// equ constants exercising both profiler symbol-table rules: iobase is
// outside the code range (ignored entirely), a2 aliases label a's
// address (deduped, lexically-smallest name "a" wins).
const nestedCallSrc = `
        org 0x4000
iobase  equ 0xA000   ; outside code range — must be ignored
fn2    equ 0x4004   ; aliases label fn — deduped, "fn" survives
start:  call fn
        halt
fn:     call gn
        ret
gn:     nop
        ret
`

func buildProfiled(t *testing.T, src string) (*rabbit.CPU, *rabbit.Profiler) {
	t.Helper()
	prog, err := rasm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c := rabbit.New()
	c.Mem.LoadPhysical(uint32(prog.Origin), prog.Code)
	c.PC = prog.Origin
	p := rabbit.NewProgramProfiler(prog.Origin, prog.Code, prog.Symbols)
	p.Attach(c)
	return c, p
}

// TestProfilerFoldedGolden pins the exact folded-stack output for the
// nested-call program. Cycle costs: CALL=12, RET=8, NOP=2, HALT=2, so
//
//	start        = call(12) + halt(2)      = 14
//	start;fn     = call(12) + ret(8)       = 20
//	start;fn;gn  = nop(2)   + ret(8)       = 10
//
// summing to 44 == CPU.Cycles.
func TestProfilerFoldedGolden(t *testing.T) {
	c, p := buildProfiled(t, nestedCallSrc)
	if err := c.Run(10_000); err != nil {
		t.Fatalf("run: %v", err)
	}

	var buf bytes.Buffer
	if err := p.WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "" +
		"start 14\n" +
		"start;fn 20\n" +
		"start;fn;gn 10\n"
	if got != want {
		t.Fatalf("folded output mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	if p.TotalCycles() != c.Cycles {
		t.Fatalf("TotalCycles %d != CPU.Cycles %d", p.TotalCycles(), c.Cycles)
	}
	if c.Cycles != 44 {
		t.Fatalf("CPU.Cycles = %d, want 44", c.Cycles)
	}
}

func TestProfilerFlatSumsToCycles(t *testing.T) {
	c, p := buildProfiled(t, nestedCallSrc)
	if err := c.Run(10_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	var sum uint64
	for _, l := range p.Flat() {
		sum += l.Cycles
	}
	if sum != c.Cycles {
		t.Fatalf("flat sum %d != CPU.Cycles %d", sum, c.Cycles)
	}
	flat := p.Flat()
	if len(flat) != 3 {
		t.Fatalf("flat has %d symbols, want 3: %+v", len(flat), flat)
	}
	// Descending by cycles: fn (20), start (14), gn (10).
	if flat[0].Symbol != "fn" || flat[0].Cycles != 20 ||
		flat[1].Symbol != "start" || flat[1].Cycles != 14 ||
		flat[2].Symbol != "gn" || flat[2].Cycles != 10 {
		t.Fatalf("flat profile wrong: %+v", flat)
	}
	for _, l := range flat {
		if l.Instrs != 2 {
			t.Fatalf("symbol %s instrs = %d, want 2", l.Symbol, l.Instrs)
		}
	}

	var rep bytes.Buffer
	if err := p.WriteFlat(&rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.String(), "TOTAL") || !strings.Contains(rep.String(), "fn ") {
		t.Fatalf("flat report missing content:\n%s", rep.String())
	}
}

// TestProfilerEquSymbolsIgnored checks out-of-range equ constants never
// become profile symbols.
func TestProfilerEquSymbolsIgnored(t *testing.T) {
	c, p := buildProfiled(t, nestedCallSrc)
	if err := c.Run(10_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, l := range p.Flat() {
		if l.Symbol == "iobase" {
			t.Fatalf("equ constant iobase leaked into profile: %+v", p.Flat())
		}
	}
}

// TestProfilerReset verifies the CPU.Reset contract: hook state is
// discarded with the cycle counters, and a rerun reproduces identical
// numbers.
func TestProfilerReset(t *testing.T) {
	c, p := buildProfiled(t, nestedCallSrc)
	if err := c.Run(10_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	first := p.TotalCycles()
	if first == 0 {
		t.Fatal("no cycles profiled")
	}

	c.Reset()
	if p.TotalCycles() != 0 {
		t.Fatalf("TotalCycles after Reset = %d, want 0", p.TotalCycles())
	}
	if len(p.Flat()) != 0 {
		t.Fatalf("Flat after Reset = %+v, want empty", p.Flat())
	}
	if len(p.Folded()) != 0 {
		t.Fatalf("Folded after Reset = %v, want empty", p.Folded())
	}

	c.PC = 0x4000
	if err := c.Run(10_000); err != nil {
		t.Fatalf("rerun: %v", err)
	}
	if p.TotalCycles() != first || p.TotalCycles() != c.Cycles {
		t.Fatalf("rerun TotalCycles = %d (CPU %d), want %d", p.TotalCycles(), c.Cycles, first)
	}
}

// TestProfilerInterrupt checks interrupt dispatch cycles are attributed
// (FlowInt pushes the handler frame) and RETI pops back, keeping the
// total equal to CPU.Cycles.
func TestProfilerInterrupt(t *testing.T) {
	src := `
        org 0x4000
start:  ld a, 1
loop:   dec a
        jr nz, loop
        halt
isr:    nop
        reti
`
	prog, err := rasm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c := rabbit.New()
	c.Mem.LoadPhysical(uint32(prog.Origin), prog.Code)
	c.PC = prog.Origin
	c.IFF = true
	c.IntVector = prog.Symbols["isr"]
	p := rabbit.NewProgramProfiler(prog.Origin, prog.Code, prog.Symbols)
	p.Attach(c)

	c.RaiseInt()
	if err := c.Run(10_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if p.TotalCycles() != c.Cycles {
		t.Fatalf("TotalCycles %d != CPU.Cycles %d", p.TotalCycles(), c.Cycles)
	}
	var isrSeen bool
	for _, l := range p.Flat() {
		if l.Symbol == "isr" && l.Cycles > 0 {
			isrSeen = true
		}
	}
	if !isrSeen {
		t.Fatalf("isr missing from flat profile: %+v", p.Flat())
	}
	var isrStack bool
	for k := range p.Folded() {
		if strings.Contains(k, ";isr") {
			isrStack = true
		}
	}
	if !isrStack {
		t.Fatalf("no folded stack contains ;isr: %v", p.Folded())
	}
}

// BenchmarkStepNoHookAllocs guards the acceptance criterion that a CPU
// with no hook attached pays zero allocations per instruction.
func BenchmarkStepNoHookAllocs(b *testing.B) {
	prog, err := rasm.Assemble("        org 0\nloop:   nop\n        jr loop\n")
	if err != nil {
		b.Fatal(err)
	}
	c := rabbit.New()
	c.Mem.LoadPhysical(uint32(prog.Origin), prog.Code)
	c.PC = prog.Origin

	allocs := testing.AllocsPerRun(1000, func() {
		if err := c.Step(); err != nil {
			b.Fatal(err)
		}
	})
	if allocs != 0 {
		b.Fatalf("Step with no hook allocates %.1f per op, want 0", allocs)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Step()
	}
}

// BenchmarkStepProfiled measures hook overhead for the steady state
// (straight-line code, cached symbol resolution) and guards that the
// profiler itself does not allocate per instruction once its stack is
// warm.
func BenchmarkStepProfiled(b *testing.B) {
	prog, err := rasm.Assemble("        org 0\nloop:   nop\n        jr loop\n")
	if err != nil {
		b.Fatal(err)
	}
	c := rabbit.New()
	c.Mem.LoadPhysical(uint32(prog.Origin), prog.Code)
	c.PC = prog.Origin
	p := rabbit.NewProgramProfiler(prog.Origin, prog.Code, prog.Symbols)
	p.Attach(c)
	_ = c.Step() // warm: seed root frame + folded entry

	allocs := testing.AllocsPerRun(1000, func() {
		if err := c.Step(); err != nil {
			b.Fatal(err)
		}
	})
	if allocs != 0 {
		b.Fatalf("profiled Step allocates %.1f per op in steady state, want 0", allocs)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Step()
	}
}
