//go:build race

// Package race reports whether the race detector is enabled, mirroring
// the standard library's internal/race. Zero-allocation assertions use
// it to skip under -race, where the detector's instrumentation adds
// allocations of its own.
package race

// Enabled is true when the build has the race detector on.
const Enabled = true
