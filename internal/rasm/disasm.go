package rasm

import (
	"fmt"
	"strings"
)

// Disassembler for the simulator's instruction subset — the inverse of
// the encoder, used by cmd/rmcsim to show what the Dynamic C compiler
// produced and by tests to round-trip the encoder.

// Inst is one decoded instruction.
type Inst struct {
	Addr  uint16
	Bytes []byte
	Text  string
}

var r8Names = [8]string{"b", "c", "d", "e", "h", "l", "(hl)", "a"}
var rpNames = [4]string{"bc", "de", "hl", "sp"}
var rp2Names = [4]string{"bc", "de", "hl", "af"}
var condNames = [8]string{"nz", "z", "nc", "c", "po", "pe", "p", "m"}
var aluNames = [8]string{"add a,", "adc a,", "sub", "sbc a,", "and", "xor", "or", "cp"}
var rotNames = [8]string{"rlc", "rrc", "rl", "rr", "sla", "sra", "sll", "srl"}

// Disassemble decodes the whole code image starting at origin. Data
// regions decode as (possibly nonsensical) instructions, as any linear
// disassembler would.
func Disassemble(code []byte, origin uint16) []Inst {
	var out []Inst
	pc := 0
	for pc < len(code) {
		addr := uint16(pc) + origin
		text, n := decodeOne(code[pc:], addr)
		if n == 0 {
			n = 1
			text = fmt.Sprintf("db 0x%02x", code[pc])
		}
		out = append(out, Inst{Addr: addr, Bytes: code[pc : pc+n], Text: text})
		pc += n
	}
	return out
}

// Listing renders a conventional address/bytes/mnemonic listing.
func Listing(code []byte, origin uint16) string {
	var sb strings.Builder
	for _, in := range Disassemble(code, origin) {
		hexPart := make([]string, 0, 4)
		for _, b := range in.Bytes {
			hexPart = append(hexPart, fmt.Sprintf("%02x", b))
		}
		fmt.Fprintf(&sb, "%04x  %-12s  %s\n", in.Addr, strings.Join(hexPart, " "), in.Text)
	}
	return sb.String()
}

// decodeOne decodes one instruction, returning text and length.
// Length 0 means undecodable.
func decodeOne(b []byte, addr uint16) (string, int) {
	if len(b) == 0 {
		return "", 0
	}
	op := b[0]
	switch op {
	case 0xCB:
		return decodeCB(b, "")
	case 0xDD:
		return decodeIndexed(b, "ix", addr)
	case 0xFD:
		return decodeIndexed(b, "iy", addr)
	case 0xED:
		return decodeED(b)
	case 0xD3: // IOI prefix
		inner, n := decodeOne(b[1:], addr+1)
		if n == 0 {
			return "", 0
		}
		return "ioi " + inner, 1 + n
	}
	return decodeMain(b, addr, "hl", "")
}

func imm8(b []byte, i int) (uint8, bool) {
	if i >= len(b) {
		return 0, false
	}
	return b[i], true
}

func imm16(b []byte, i int) (uint16, bool) {
	if i+1 >= len(b) {
		return 0, false
	}
	return uint16(b[i]) | uint16(b[i+1])<<8, true
}

// decodeMain decodes an unprefixed (or index-remapped) opcode.
// hlName replaces "hl", ind replaces "(hl)" (e.g. "(ix+5)").
func decodeMain(b []byte, addr uint16, hlName, ind string) (string, int) {
	op := b[0]
	x, y, z := int(op>>6), int(op>>3&7), int(op&7)
	p, q := y>>1, y&1
	rn := func(i int) string {
		if i == 6 && ind != "" {
			return ind
		}
		if (i == 4 || i == 5) && hlName != "hl" {
			// H/L halves of IX/IY are not modeled; keep plain names.
			return r8Names[i]
		}
		return r8Names[i]
	}
	rpn := func(i int) string {
		if i == 2 {
			return hlName
		}
		return rpNames[i]
	}
	rp2n := func(i int) string {
		if i == 2 {
			return hlName
		}
		return rp2Names[i]
	}
	extra := 0
	if ind != "" && strings.Contains(ind, "+") || ind != "" && strings.Contains(ind, "-") {
		extra = 1 // displacement byte already consumed by caller's accounting
	}
	_ = extra

	switch x {
	case 1:
		if y == 6 && z == 6 {
			return "halt", 1
		}
		n := 1
		if (y == 6 || z == 6) && ind != "" {
			n = 2
		}
		return fmt.Sprintf("ld %s, %s", rn(y), rn(z)), n
	case 2:
		n := 1
		if z == 6 && ind != "" {
			n = 2
		}
		return fmt.Sprintf("%s %s", aluNames[y], rn(z)), n
	}

	if x == 0 {
		switch z {
		case 0:
			switch y {
			case 0:
				return "nop", 1
			case 1:
				return "ex af, af'", 1
			case 2, 3:
				d, ok := imm8(b, 1)
				if !ok {
					return "", 0
				}
				target := addr + 2 + uint16(int16(int8(d)))
				if y == 2 {
					return fmt.Sprintf("djnz 0x%04x", target), 2
				}
				return fmt.Sprintf("jr 0x%04x", target), 2
			default:
				d, ok := imm8(b, 1)
				if !ok {
					return "", 0
				}
				target := addr + 2 + uint16(int16(int8(d)))
				return fmt.Sprintf("jr %s, 0x%04x", condNames[y-4], target), 2
			}
		case 1:
			if q == 0 {
				v, ok := imm16(b, 1)
				if !ok {
					return "", 0
				}
				return fmt.Sprintf("ld %s, 0x%04x", rpn(p), v), 3
			}
			return fmt.Sprintf("add %s, %s", hlName, rpn(p)), 1
		case 2:
			switch y {
			case 0:
				return "ld (bc), a", 1
			case 1:
				return "ld a, (bc)", 1
			case 2:
				return "ld (de), a", 1
			case 3:
				return "ld a, (de)", 1
			case 4, 5, 6, 7:
				v, ok := imm16(b, 1)
				if !ok {
					return "", 0
				}
				switch y {
				case 4:
					return fmt.Sprintf("ld (0x%04x), %s", v, hlName), 3
				case 5:
					return fmt.Sprintf("ld %s, (0x%04x)", hlName, v), 3
				case 6:
					return fmt.Sprintf("ld (0x%04x), a", v), 3
				default:
					return fmt.Sprintf("ld a, (0x%04x)", v), 3
				}
			}
		case 3:
			if q == 0 {
				return "inc " + rpn(p), 1
			}
			return "dec " + rpn(p), 1
		case 4, 5:
			mn := "inc"
			if z == 5 {
				mn = "dec"
			}
			n := 1
			if y == 6 && ind != "" {
				n = 2
			}
			return fmt.Sprintf("%s %s", mn, rn(y)), n
		case 6:
			if y == 6 && ind != "" {
				v, ok := imm8(b, 2)
				if !ok {
					return "", 0
				}
				return fmt.Sprintf("ld %s, 0x%02x", rn(y), v), 3
			}
			v, ok := imm8(b, 1)
			if !ok {
				return "", 0
			}
			return fmt.Sprintf("ld %s, 0x%02x", rn(y), v), 2
		case 7:
			names := [8]string{"rlca", "rrca", "rla", "rra", "daa", "cpl", "scf", "ccf"}
			return names[y], 1
		}
	}

	// x == 3
	switch z {
	case 0:
		return "ret " + condNames[y], 1
	case 1:
		if q == 0 {
			return "pop " + rp2n(p), 1
		}
		switch p {
		case 0:
			return "ret", 1
		case 1:
			return "exx", 1
		case 2:
			return fmt.Sprintf("jp (%s)", hlName), 1
		default:
			return fmt.Sprintf("ld sp, %s", hlName), 1
		}
	case 2:
		v, ok := imm16(b, 1)
		if !ok {
			return "", 0
		}
		return fmt.Sprintf("jp %s, 0x%04x", condNames[y], v), 3
	case 3:
		switch y {
		case 0:
			v, ok := imm16(b, 1)
			if !ok {
				return "", 0
			}
			return fmt.Sprintf("jp 0x%04x", v), 3
		case 4:
			return fmt.Sprintf("ex (sp), %s", hlName), 1
		case 5:
			return "ex de, hl", 1
		case 6:
			return "di", 1
		case 7:
			return "ei", 1
		}
		return "", 0
	case 4:
		v, ok := imm16(b, 1)
		if !ok {
			return "", 0
		}
		return fmt.Sprintf("call %s, 0x%04x", condNames[y], v), 3
	case 5:
		if q == 0 {
			return "push " + rp2n(p), 1
		}
		if p == 0 {
			v, ok := imm16(b, 1)
			if !ok {
				return "", 0
			}
			return fmt.Sprintf("call 0x%04x", v), 3
		}
		return "", 0 // DD/ED/FD handled by caller
	case 6:
		v, ok := imm8(b, 1)
		if !ok {
			return "", 0
		}
		return fmt.Sprintf("%s 0x%02x", aluNames[y], v), 2
	case 7:
		return fmt.Sprintf("rst 0x%02x", y*8), 1
	}
	return "", 0
}

func decodeCB(b []byte, ind string) (string, int) {
	if len(b) < 2 {
		return "", 0
	}
	op := b[1]
	x, y, z := int(op>>6), int(op>>3&7), int(op&7)
	operand := r8Names[z]
	if ind != "" {
		operand = ind
	}
	switch x {
	case 0:
		return fmt.Sprintf("%s %s", rotNames[y], operand), 2
	case 1:
		return fmt.Sprintf("bit %d, %s", y, operand), 2
	case 2:
		return fmt.Sprintf("res %d, %s", y, operand), 2
	default:
		return fmt.Sprintf("set %d, %s", y, operand), 2
	}
}

func decodeIndexed(b []byte, reg string, addr uint16) (string, int) {
	if len(b) < 2 {
		return "", 0
	}
	op := b[1]
	dispStr := func(d int8) string {
		if d < 0 {
			return fmt.Sprintf("(%s-%d)", reg, -int(d))
		}
		return fmt.Sprintf("(%s+%d)", reg, d)
	}
	if op == 0xCB {
		if len(b) < 4 {
			return "", 0
		}
		d := int8(b[2])
		text, _ := decodeCB([]byte{0xCB, b[3]}, dispStr(d))
		return text, 4
	}
	// Instructions with a displacement byte: any using operand 6.
	x, y, z := int(op>>6), int(op>>3&7), int(op&7)
	usesInd := (x == 1 && (y == 6 || z == 6) && !(y == 6 && z == 6)) ||
		(x == 2 && z == 6) ||
		(x == 0 && (z == 4 || z == 5) && y == 6) ||
		(x == 0 && z == 6 && y == 6)
	if usesInd {
		if len(b) < 3 {
			return "", 0
		}
		d := int8(b[2])
		text, n := decodeMain(b[1:], addr+1, reg, dispStr(d))
		if n == 0 {
			return "", 0
		}
		return text, 1 + n
	}
	text, n := decodeMain(b[1:], addr+1, reg, "")
	if n == 0 {
		return "", 0
	}
	return text, 1 + n
}

func decodeED(b []byte) (string, int) {
	if len(b) < 2 {
		return "", 0
	}
	op := b[1]
	switch op {
	case 0x44:
		return "neg", 2
	case 0x4D:
		return "reti", 2
	case 0xA0:
		return "ldi", 2
	case 0xA8:
		return "ldd", 2
	case 0xB0:
		return "ldir", 2
	case 0xB8:
		return "lddr", 2
	}
	p := int(op >> 4 & 3)
	switch op & 0xCF {
	case 0x42:
		return "sbc hl, " + rpNames[p], 2
	case 0x4A:
		return "adc hl, " + rpNames[p], 2
	case 0x43, 0x4B:
		v, ok := imm16(b, 2)
		if !ok {
			return "", 0
		}
		if op&0x08 == 0 {
			return fmt.Sprintf("ld (0x%04x), %s", v, rpNames[p]), 4
		}
		return fmt.Sprintf("ld %s, (0x%04x)", rpNames[p], v), 4
	}
	return "", 0
}
