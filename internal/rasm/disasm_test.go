package rasm

import (
	"bytes"
	"strings"
	"testing"
)

func TestDisassembleKnownBytes(t *testing.T) {
	cases := []struct {
		bytes []byte
		want  string
	}{
		{[]byte{0x00}, "nop"},
		{[]byte{0x76}, "halt"},
		{[]byte{0x3E, 0x42}, "ld a, 0x42"},
		{[]byte{0x41}, "ld b, c"},
		{[]byte{0x7E}, "ld a, (hl)"},
		{[]byte{0x36, 0x05}, "ld (hl), 0x05"},
		{[]byte{0x21, 0x34, 0x12}, "ld hl, 0x1234"},
		{[]byte{0x3A, 0x00, 0x40}, "ld a, (0x4000)"},
		{[]byte{0x80}, "add a, b"},
		{[]byte{0xC6, 0x07}, "add a, 0x07"},
		{[]byte{0xD6, 0x03}, "sub 0x03"},
		{[]byte{0xFE, 0x10}, "cp 0x10"},
		{[]byte{0x19}, "add hl, de"},
		{[]byte{0xED, 0x42}, "sbc hl, bc"},
		{[]byte{0x3C}, "inc a"},
		{[]byte{0x35}, "dec (hl)"},
		{[]byte{0xC5}, "push bc"},
		{[]byte{0xF1}, "pop af"},
		{[]byte{0xEB}, "ex de, hl"},
		{[]byte{0xD9}, "exx"},
		{[]byte{0xC3, 0x34, 0x12}, "jp 0x1234"},
		{[]byte{0xC2, 0x34, 0x12}, "jp nz, 0x1234"},
		{[]byte{0xE9}, "jp (hl)"},
		{[]byte{0xCD, 0x34, 0x12}, "call 0x1234"},
		{[]byte{0xC9}, "ret"},
		{[]byte{0xD0}, "ret nc"},
		{[]byte{0xCB, 0x3F}, "srl a"},
		{[]byte{0xCB, 0x5F}, "bit 3, a"},
		{[]byte{0xCB, 0xC6}, "set 0, (hl)"},
		{[]byte{0xED, 0xB0}, "ldir"},
		{[]byte{0xED, 0x44}, "neg"},
		{[]byte{0xED, 0x4D}, "reti"},
		{[]byte{0xDD, 0x7E, 0x05}, "ld a, (ix+5)"},
		{[]byte{0xFD, 0x70, 0xFE}, "ld (iy-2), b"},
		{[]byte{0xDD, 0x21, 0x00, 0x40}, "ld ix, 0x4000"},
		{[]byte{0xDD, 0x34, 0x03}, "inc (ix+3)"},
		{[]byte{0xDD, 0xCB, 0x02, 0x16}, "rl (ix+2)"},
		{[]byte{0xDD, 0x36, 0x01, 0x33}, "ld (ix+1), 0x33"},
		{[]byte{0xD3, 0x3A, 0x55, 0x01}, "ioi ld a, (0x0155)"},
		{[]byte{0xED, 0x4B, 0x00, 0x60}, "ld bc, (0x6000)"},
		{[]byte{0xDF}, "rst 0x18"},
	}
	for _, tc := range cases {
		insts := Disassemble(tc.bytes, 0)
		if len(insts) != 1 {
			t.Errorf("% x: decoded %d instructions", tc.bytes, len(insts))
			continue
		}
		if insts[0].Text != tc.want {
			t.Errorf("% x = %q, want %q", tc.bytes, insts[0].Text, tc.want)
		}
		if len(insts[0].Bytes) != len(tc.bytes) {
			t.Errorf("% x: length %d, want %d", tc.bytes, len(insts[0].Bytes), len(tc.bytes))
		}
	}
}

func TestRelativeJumpTargets(t *testing.T) {
	// djnz back to itself at address 0x100.
	insts := Disassemble([]byte{0x10, 0xFE}, 0x100)
	if insts[0].Text != "djnz 0x0100" {
		t.Errorf("djnz = %q", insts[0].Text)
	}
	insts = Disassemble([]byte{0x20, 0x02}, 0x200) // jr nz,+2
	if insts[0].Text != "jr nz, 0x0204" {
		t.Errorf("jr = %q", insts[0].Text)
	}
}

// TestRoundTrip: assemble a program, disassemble it, reassemble the
// listing, and require identical bytes. This cross-validates encoder
// and decoder against each other.
func TestRoundTrip(t *testing.T) {
	src := `
        org 0
        ld sp, 0xDFF0
        ld hl, 0x4000
        ld b, 16
loop:   ld a, (hl)
        xor 0x5A
        ld (hl), a
        inc hl
        djnz loop
        ld de, 0x5000
        ld hl, 0x4000
        ld bc, 16
        ldir
        call sub1
        jp nz, done
        ld a, 1
done:   halt
sub1:   push bc
        ld a, (0x4000)
        cp 0x10
        call z, sub2
        pop bc
        ret
sub2:   ioi ld (0x0120), a
        ld ix, 0x4000
        ld a, (ix+2)
        inc (ix+3)
        set 7, (hl)
        sbc hl, de
        neg
        ret
`
	p1, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	// Disassemble and rebuild a source from the listing.
	var sb strings.Builder
	sb.WriteString("        org 0\n")
	for _, inst := range Disassemble(p1.Code, p1.Origin) {
		sb.WriteString("        " + inst.Text + "\n")
	}
	p2, err := Assemble(sb.String())
	if err != nil {
		t.Fatalf("reassembly: %v\nlisting:\n%s", err, sb.String())
	}
	if !bytes.Equal(p1.Code, p2.Code) {
		t.Errorf("round trip changed bytes:\n1: % x\n2: % x", p1.Code, p2.Code)
	}
}

func TestListingFormat(t *testing.T) {
	p, err := Assemble("ld a, 1\nhalt\n")
	if err != nil {
		t.Fatal(err)
	}
	l := Listing(p.Code, 0)
	if !strings.Contains(l, "0000") || !strings.Contains(l, "ld a, 0x01") ||
		!strings.Contains(l, "halt") {
		t.Errorf("listing:\n%s", l)
	}
}

func TestDisassembleGarbageDoesNotPanic(t *testing.T) {
	// Truncated multi-byte instructions at the end of the buffer.
	for _, garbage := range [][]byte{
		{0xDD}, {0xED}, {0xCB}, {0xDD, 0xCB}, {0xDD, 0xCB, 0x01},
		{0x21}, {0x21, 0x00}, {0xC3, 0x12}, {0xD3},
		{0xED, 0xFF}, // unknown ED op
	} {
		insts := Disassemble(garbage, 0)
		total := 0
		for _, in := range insts {
			total += len(in.Bytes)
		}
		if total != len(garbage) {
			t.Errorf("% x: disassembly covered %d of %d bytes", garbage, total, len(garbage))
		}
	}
}
