package rasm

import (
	"fmt"
	"strings"
)

// Operand kinds after classification.
type opKind int

const (
	opNone   opKind = iota
	opReg8          // a b c d e h l
	opIndHL         // (hl)
	opIndBC         // (bc)
	opIndDE         // (de)
	opIndSP         // (sp)
	opIndIX         // (ix+d)
	opIndIY         // (iy+d)
	opIndImm        // (expr)
	opReg16         // bc de hl sp af ix iy
	opImm           // expression
	opCond          // nz z nc c po pe p m — contextual
)

type operand struct {
	kind opKind
	reg  int    // r8 index or rp index; for reg16: 0=bc 1=de 2=hl 3=sp 4=af 5=ix 6=iy
	expr string // for imm / indImm / index displacement
}

var r8Index = map[string]int{"b": 0, "c": 1, "d": 2, "e": 3, "h": 4, "l": 5, "a": 7}
var rpIndex = map[string]int{"bc": 0, "de": 1, "hl": 2, "sp": 3, "af": 4, "ix": 5, "iy": 6}
var condIndex = map[string]int{"nz": 0, "z": 1, "nc": 2, "c": 3, "po": 4, "pe": 5, "p": 6, "m": 7}

func classify(s string) operand {
	t := strings.ToLower(strings.TrimSpace(s))
	if t == "" {
		return operand{kind: opNone}
	}
	if i, ok := r8Index[t]; ok {
		return operand{kind: opReg8, reg: i}
	}
	if i, ok := rpIndex[t]; ok {
		return operand{kind: opReg16, reg: i}
	}
	if t == "af'" {
		return operand{kind: opReg16, reg: 4, expr: "alt"}
	}
	if strings.HasPrefix(t, "(") && strings.HasSuffix(t, ")") {
		inner := strings.TrimSpace(t[1 : len(t)-1])
		switch inner {
		case "hl":
			return operand{kind: opIndHL, reg: 6}
		case "bc":
			return operand{kind: opIndBC}
		case "de":
			return operand{kind: opIndDE}
		case "sp":
			return operand{kind: opIndSP}
		case "ix":
			return operand{kind: opIndIX, expr: "0"}
		case "iy":
			return operand{kind: opIndIY, expr: "0"}
		}
		if strings.HasPrefix(inner, "ix") {
			return operand{kind: opIndIX, expr: dispExpr(inner[2:])}
		}
		if strings.HasPrefix(inner, "iy") {
			return operand{kind: opIndIY, expr: dispExpr(inner[2:])}
		}
		// Preserve original case for symbol lookup.
		orig := strings.TrimSpace(s)
		return operand{kind: opIndImm, expr: strings.TrimSpace(orig[1 : len(orig)-1])}
	}
	return operand{kind: opImm, expr: strings.TrimSpace(s)}
}

func dispExpr(s string) string {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "+")
	if s == "" {
		return "0"
	}
	return s // a leading '-' is handled by the expression evaluator
}

// instruction encodes one mnemonic with operands.
func (a *assembler) instruction(mnem string, rawOps []string) error {
	ops := make([]operand, len(rawOps))
	for i, r := range rawOps {
		ops[i] = classify(r)
	}
	get := func(i int) operand {
		if i < len(ops) {
			return ops[i]
		}
		return operand{kind: opNone}
	}
	o1, o2 := get(0), get(1)

	// r8-or-memory source/destination index (the z80 "r" field);
	// returns index, prefix bytes for ix/iy, displacement expr, ok.
	rIdx := func(o operand) (int, byte, string, bool) {
		switch o.kind {
		case opReg8:
			return o.reg, 0, "", true
		case opIndHL:
			return 6, 0, "", true
		case opIndIX:
			return 6, 0xDD, o.expr, true
		case opIndIY:
			return 6, 0xFD, o.expr, true
		}
		return 0, 0, "", false
	}

	emitIdx := func(prefix byte, disp string, opcode ...byte) {
		if prefix != 0 {
			a.emit(prefix)
		}
		a.emit(opcode...)
		if prefix != 0 {
			a.emitExpr8(disp)
		}
	}

	switch mnem {
	case "nop":
		a.emit(0x00)
	case "halt":
		a.emit(0x76)
	case "di":
		a.emit(0xF3)
	case "ei":
		a.emit(0xFB)
	case "rlca":
		a.emit(0x07)
	case "rrca":
		a.emit(0x0F)
	case "rla":
		a.emit(0x17)
	case "rra":
		a.emit(0x1F)
	case "daa":
		a.emit(0x27)
	case "cpl":
		a.emit(0x2F)
	case "scf":
		a.emit(0x37)
	case "ccf":
		a.emit(0x3F)
	case "exx":
		a.emit(0xD9)
	case "neg":
		a.emit(0xED, 0x44)
	case "reti":
		a.emit(0xED, 0x4D)
	case "ldi":
		a.emit(0xED, 0xA0)
	case "ldd":
		a.emit(0xED, 0xA8)
	case "ldir":
		a.emit(0xED, 0xB0)
	case "lddr":
		a.emit(0xED, 0xB8)

	case "ld":
		return a.encodeLD(o1, o2, rIdx, emitIdx)

	case "push", "pop":
		if o1.kind != opReg16 {
			return fmt.Errorf("%s needs a register pair", mnem)
		}
		base := byte(0xC5) // push
		if mnem == "pop" {
			base = 0xC1
		}
		switch o1.reg {
		case 0, 1, 2:
			a.emit(base | byte(o1.reg)<<4)
		case 4: // af
			a.emit(base | 3<<4)
		case 5:
			a.emit(0xDD, base|2<<4)
		case 6:
			a.emit(0xFD, base|2<<4)
		default:
			return fmt.Errorf("cannot %s sp", mnem)
		}

	case "ex":
		switch {
		case o1.kind == opReg16 && o1.reg == 1 && o2.kind == opReg16 && o2.reg == 2: // ex de,hl
			a.emit(0xEB)
		case o1.kind == opReg16 && o1.reg == 4: // ex af,af'
			a.emit(0x08)
		case o1.kind == opIndSP && o2.kind == opReg16 && o2.reg == 2:
			a.emit(0xE3)
		case o1.kind == opIndSP && o2.kind == opReg16 && o2.reg == 5:
			a.emit(0xDD, 0xE3)
		case o1.kind == opIndSP && o2.kind == opReg16 && o2.reg == 6:
			a.emit(0xFD, 0xE3)
		default:
			return fmt.Errorf("unsupported ex form")
		}

	case "add", "adc", "sub", "sbc", "and", "xor", "or", "cp":
		return a.encodeALU(mnem, o1, o2, rIdx, emitIdx)

	case "inc", "dec":
		isInc := mnem == "inc"
		if o1.kind == opReg16 {
			switch o1.reg {
			case 0, 1, 2, 3:
				op := byte(0x03)
				if !isInc {
					op = 0x0B
				}
				a.emit(op | byte(o1.reg)<<4)
			case 5:
				if isInc {
					a.emit(0xDD, 0x23)
				} else {
					a.emit(0xDD, 0x2B)
				}
			case 6:
				if isInc {
					a.emit(0xFD, 0x23)
				} else {
					a.emit(0xFD, 0x2B)
				}
			default:
				return fmt.Errorf("cannot %s af", mnem)
			}
			return nil
		}
		if r, pfx, disp, ok := rIdx(o1); ok {
			op := byte(0x04)
			if !isInc {
				op = 0x05
			}
			emitIdx(pfx, disp, op|byte(r)<<3)
			return nil
		}
		return fmt.Errorf("bad %s operand", mnem)

	case "rlc", "rrc", "rl", "rr", "sla", "sra", "sll", "srl":
		rotMap := map[string]int{"rlc": 0, "rrc": 1, "rl": 2, "rr": 3, "sla": 4, "sra": 5, "sll": 6, "srl": 7}
		y := rotMap[mnem]
		r, pfx, disp, ok := rIdx(o1)
		if !ok {
			return fmt.Errorf("bad %s operand", mnem)
		}
		if pfx != 0 {
			a.emit(pfx, 0xCB)
			a.emitExpr8(disp)
			a.emit(byte(y<<3 | 6))
		} else {
			a.emit(0xCB, byte(y<<3|r))
		}

	case "bit", "res", "set":
		n, err := a.eval(o1.expr)
		if err != nil || n > 7 {
			return fmt.Errorf("bad bit number %q", o1.expr)
		}
		xMap := map[string]int{"bit": 1, "res": 2, "set": 3}
		x := xMap[mnem]
		r, pfx, disp, ok := rIdx(o2)
		if !ok {
			return fmt.Errorf("bad %s operand", mnem)
		}
		if pfx != 0 {
			a.emit(pfx, 0xCB)
			a.emitExpr8(disp)
			a.emit(byte(x<<6 | int(n)<<3 | 6))
		} else {
			a.emit(0xCB, byte(x<<6|int(n)<<3|r))
		}

	case "jp":
		switch {
		case o1.kind == opIndHL || (o1.kind == opIndImm && strings.EqualFold(o1.expr, "hl")):
			a.emit(0xE9)
		case o1.kind == opIndIX:
			a.emit(0xDD, 0xE9)
		case o1.kind == opIndIY:
			a.emit(0xFD, 0xE9)
		case o2.kind == opNone:
			a.emit(0xC3)
			a.emitExpr16(o1.expr)
		default:
			cc, err := condOf(o1)
			if err != nil {
				return err
			}
			a.emit(0xC2 | byte(cc)<<3)
			a.emitExpr16(o2.expr)
		}

	case "jr":
		if o2.kind == opNone {
			a.emit(0x18)
			a.emitRel(o1.expr)
		} else {
			cc, err := condOf(o1)
			if err != nil {
				return err
			}
			if cc > 3 {
				return fmt.Errorf("jr supports only nz/z/nc/c")
			}
			a.emit(0x20 | byte(cc)<<3)
			a.emitRel(o2.expr)
		}

	case "djnz":
		a.emit(0x10)
		a.emitRel(o1.expr)

	case "call":
		if o2.kind == opNone {
			a.emit(0xCD)
			a.emitExpr16(o1.expr)
		} else {
			cc, err := condOf(o1)
			if err != nil {
				return err
			}
			a.emit(0xC4 | byte(cc)<<3)
			a.emitExpr16(o2.expr)
		}

	case "ret":
		if o1.kind == opNone {
			a.emit(0xC9)
		} else {
			cc, err := condOf(o1)
			if err != nil {
				return err
			}
			a.emit(0xC0 | byte(cc)<<3)
		}

	case "rst":
		v, err := a.eval(o1.expr)
		if err != nil || v%8 != 0 || v > 0x38 {
			return fmt.Errorf("bad rst target %q", o1.expr)
		}
		a.emit(0xC7 | byte(v))

	default:
		return fmt.Errorf("unknown mnemonic %q", mnem)
	}
	return nil
}

// condOf interprets an operand as a condition code. Note "c" collides
// with register C; in jp/jr/call/ret position it is the carry condition.
func condOf(o operand) (int, error) {
	name := ""
	switch o.kind {
	case opReg8:
		// "c" classified as register; map back.
		for n, i := range r8Index {
			if i == o.reg {
				name = n
			}
		}
	case opImm:
		name = strings.ToLower(o.expr)
	}
	if cc, ok := condIndex[name]; ok {
		return cc, nil
	}
	return 0, fmt.Errorf("bad condition %q", name)
}

func (a *assembler) encodeLD(o1, o2 operand,
	rIdx func(operand) (int, byte, string, bool),
	emitIdx func(byte, string, ...byte)) error {

	// ld rp,nn / ld rp,(nn) / ld (nn),rp / ld sp,hl|ix|iy
	if o1.kind == opReg16 {
		switch {
		case o2.kind == opImm:
			switch o1.reg {
			case 0, 1, 2, 3:
				a.emit(0x01 | byte(o1.reg)<<4)
			case 5:
				a.emit(0xDD, 0x21)
			case 6:
				a.emit(0xFD, 0x21)
			default:
				return fmt.Errorf("cannot ld af,nn")
			}
			a.emitExpr16(o2.expr)
			return nil
		case o2.kind == opIndImm:
			switch o1.reg {
			case 2: // ld hl,(nn)
				a.emit(0x2A)
			case 0:
				a.emit(0xED, 0x4B)
			case 1:
				a.emit(0xED, 0x5B)
			case 3:
				a.emit(0xED, 0x7B)
			case 5:
				a.emit(0xDD, 0x2A)
			case 6:
				a.emit(0xFD, 0x2A)
			default:
				return fmt.Errorf("bad ld rp,(nn)")
			}
			a.emitExpr16(o2.expr)
			return nil
		case o1.reg == 3 && o2.kind == opReg16: // ld sp,hl/ix/iy
			switch o2.reg {
			case 2:
				a.emit(0xF9)
			case 5:
				a.emit(0xDD, 0xF9)
			case 6:
				a.emit(0xFD, 0xF9)
			default:
				return fmt.Errorf("bad ld sp,rr")
			}
			return nil
		}
		return fmt.Errorf("unsupported ld %v", o1.reg)
	}
	if o1.kind == opIndImm && o2.kind == opReg16 {
		switch o2.reg {
		case 2:
			a.emit(0x22)
		case 0:
			a.emit(0xED, 0x43)
		case 1:
			a.emit(0xED, 0x53)
		case 3:
			a.emit(0xED, 0x73)
		case 5:
			a.emit(0xDD, 0x22)
		case 6:
			a.emit(0xFD, 0x22)
		default:
			return fmt.Errorf("bad ld (nn),rp")
		}
		a.emitExpr16(o1.expr)
		return nil
	}

	// ld a,(bc)/(de)/(nn) and stores.
	if o1.kind == opReg8 && o1.reg == 7 {
		switch o2.kind {
		case opIndBC:
			a.emit(0x0A)
			return nil
		case opIndDE:
			a.emit(0x1A)
			return nil
		case opIndImm:
			a.emit(0x3A)
			a.emitExpr16(o2.expr)
			return nil
		}
	}
	if o2.kind == opReg8 && o2.reg == 7 {
		switch o1.kind {
		case opIndBC:
			a.emit(0x02)
			return nil
		case opIndDE:
			a.emit(0x12)
			return nil
		case opIndImm:
			a.emit(0x32)
			a.emitExpr16(o1.expr)
			return nil
		}
	}

	// ld r,r' / r,(hl|ix|iy) / (hl|ix|iy),r / r,n / (hl|ix|iy),n
	d1, p1, disp1, ok1 := rIdx(o1)
	d2, p2, disp2, ok2 := rIdx(o2)
	switch {
	case ok1 && ok2:
		if d1 == 6 && d2 == 6 {
			return fmt.Errorf("ld (hl),(hl) is invalid")
		}
		pfx, disp := p1, disp1
		if pfx == 0 {
			pfx, disp = p2, disp2
		}
		emitIdx(pfx, disp, 0x40|byte(d1)<<3|byte(d2))
		return nil
	case ok1 && o2.kind == opImm:
		if p1 != 0 {
			// ld (ix+d),n: prefix 36 d n
			a.emit(p1, 0x36)
			a.emitExpr8(disp1)
			a.emitExpr8(o2.expr)
			return nil
		}
		a.emit(0x06 | byte(d1)<<3)
		a.emitExpr8(o2.expr)
		return nil
	}
	return fmt.Errorf("unsupported ld form")
}

func (a *assembler) encodeALU(mnem string, o1, o2 operand,
	rIdx func(operand) (int, byte, string, bool),
	emitIdx func(byte, string, ...byte)) error {

	aluY := map[string]int{"add": 0, "adc": 1, "sub": 2, "sbc": 3, "and": 4, "xor": 5, "or": 6, "cp": 7}
	y := aluY[mnem]

	// 16-bit forms: add hl,rp / adc hl,rp / sbc hl,rp / add ix,rp
	if o1.kind == opReg16 && (o1.reg == 2 || o1.reg == 5 || o1.reg == 6) && o2.kind == opReg16 {
		rp := o2.reg
		if rp > 3 && rp != o1.reg {
			return fmt.Errorf("bad 16-bit %s operand", mnem)
		}
		if rp > 3 {
			rp = 2 // add ix,ix encodes as rp=hl slot
		}
		switch mnem {
		case "add":
			switch o1.reg {
			case 2:
				a.emit(0x09 | byte(rp)<<4)
			case 5:
				a.emit(0xDD, 0x09|byte(rp)<<4)
			case 6:
				a.emit(0xFD, 0x09|byte(rp)<<4)
			}
			return nil
		case "adc":
			if o1.reg != 2 {
				return fmt.Errorf("adc only with hl")
			}
			a.emit(0xED, 0x4A|byte(rp)<<4)
			return nil
		case "sbc":
			if o1.reg != 2 {
				return fmt.Errorf("sbc only with hl")
			}
			a.emit(0xED, 0x42|byte(rp)<<4)
			return nil
		}
		return fmt.Errorf("bad 16-bit %s", mnem)
	}

	// Normalize: "add a,x" and "add x" both accepted.
	src := o2
	if o2.kind == opNone {
		src = o1
	} else if !(o1.kind == opReg8 && o1.reg == 7) {
		return fmt.Errorf("%s destination must be a", mnem)
	}

	if r, pfx, disp, ok := rIdx(src); ok {
		emitIdx(pfx, disp, 0x80|byte(y)<<3|byte(r))
		return nil
	}
	if src.kind == opImm {
		a.emit(0xC6 | byte(y)<<3)
		a.emitExpr8(src.expr)
		return nil
	}
	return fmt.Errorf("bad %s operand", mnem)
}
