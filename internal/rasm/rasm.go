// Package rasm is a two-pass assembler for the Rabbit 2000 simulator's
// instruction set, in classic Z80/Dynamic-C-inline-assembly syntax:
//
//	        org  0x0000
//	start:  ld   hl, message      ; comment
//	        ld   b, LEN
//	loop:   ld   a, (hl)
//	        inc  hl
//	        djnz loop
//	        halt
//	message: db "hello", 0
//	LEN     equ 5
//
// It exists so the hand-written AES implementation (asm/aes128.asm) —
// the counterpart of the vendor-supplied assembly AES the paper
// benchmarked against — can be assembled and run on the CPU simulator,
// and so the Dynamic C compiler (internal/dcc) has a backend target.
package rasm

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Program is an assembled image.
type Program struct {
	// Origin is the load address of the first byte of Code.
	Origin uint16
	// Code is the image, contiguous from Origin (ds gaps are zero).
	Code []byte
	// Symbols maps labels and equ names to values.
	Symbols map[string]uint16
}

// Size returns the code size in bytes (the paper's E3 metric).
func (p *Program) Size() int { return len(p.Code) }

// ErrAssemble wraps all assembly errors.
var ErrAssemble = errors.New("rasm: assembly error")

type fixup struct {
	offset int    // position in code needing a patch
	expr   string // expression to resolve
	kind   byte   // 'w' abs16, 'b' imm8, 'r' rel8 (from following addr)
	line   int
	pcAt   uint16 // instruction start, for "$" in deferred expressions
}

type assembler struct {
	origin  uint16
	pc      uint16
	started bool
	code    []byte
	symbols map[string]uint16
	fixups  []fixup
	line    int
	// lineStart is the address of the instruction being assembled;
	// "$" evaluates to it.
	lineStart uint16
}

// Assemble translates source text into a Program.
func Assemble(src string) (*Program, error) {
	a := &assembler{symbols: map[string]uint16{}}
	for i, raw := range strings.Split(src, "\n") {
		a.line = i + 1
		if err := a.doLine(raw); err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrAssemble, a.line, err)
		}
	}
	// Pass 2: patch fixups.
	for _, f := range a.fixups {
		a.lineStart = f.pcAt
		v, err := a.eval(f.expr)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrAssemble, f.line, err)
		}
		switch f.kind {
		case 'w':
			a.code[f.offset] = byte(v)
			a.code[f.offset+1] = byte(v >> 8)
		case 'b':
			if int16(v) > 255 || int16(v) < -128 {
				return nil, fmt.Errorf("%w: line %d: value %d out of byte range", ErrAssemble, f.line, int16(v))
			}
			a.code[f.offset] = byte(v)
		case 'r':
			target := int32(v)
			from := int32(a.origin) + int32(f.offset) + 1 // PC after displacement byte
			disp := target - from
			if disp < -128 || disp > 127 {
				return nil, fmt.Errorf("%w: line %d: relative jump out of range (%d)", ErrAssemble, f.line, disp)
			}
			a.code[f.offset] = byte(disp)
		}
	}
	return &Program{Origin: a.origin, Code: a.code, Symbols: a.symbols}, nil
}

// stripComment removes a ; comment, respecting character literals.
func stripComment(s string) string {
	inChar := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'', '"':
			inChar = !inChar
		case ';':
			if !inChar {
				return s[:i]
			}
		}
	}
	return s
}

func (a *assembler) doLine(raw string) error {
	line := strings.TrimSpace(stripComment(raw))
	if line == "" {
		return nil
	}
	// label:
	if i := strings.Index(line, ":"); i >= 0 && isIdent(line[:i]) {
		name := line[:i]
		if _, dup := a.symbols[name]; dup {
			return fmt.Errorf("duplicate label %q", name)
		}
		a.symbols[name] = a.pc
		line = strings.TrimSpace(line[i+1:])
		if line == "" {
			return nil
		}
	}
	a.lineStart = a.pc
	fields := strings.Fields(line)
	mnem := strings.ToLower(fields[0])
	rest := strings.TrimSpace(line[len(fields[0]):])

	// NAME equ VALUE
	if len(fields) >= 3 && strings.ToLower(fields[1]) == "equ" {
		v, err := a.eval(strings.TrimSpace(rest[len(fields[1]):]))
		if err != nil {
			return err
		}
		if _, dup := a.symbols[fields[0]]; dup {
			return fmt.Errorf("duplicate symbol %q", fields[0])
		}
		a.symbols[fields[0]] = v
		return nil
	}

	switch mnem {
	case "org":
		v, err := a.eval(rest)
		if err != nil {
			return err
		}
		if a.started {
			if v < a.pc {
				return fmt.Errorf("org backwards (%04x < %04x)", v, a.pc)
			}
			a.pad(int(v - a.pc))
		} else {
			a.origin = v
			a.started = true
		}
		a.pc = v
		return nil
	case "db":
		return a.doDB(rest)
	case "dw":
		return a.doDW(rest)
	case "ds":
		v, err := a.eval(rest)
		if err != nil {
			return err
		}
		a.pad(int(v))
		return nil
	case "ioi":
		// Prefix: emit 0xD3, then assemble the rest of the line.
		a.emit(0xD3)
		if rest == "" {
			return errors.New("ioi prefix needs an instruction")
		}
		return a.doLine(rest)
	}
	a.started = true
	return a.instruction(mnem, splitOperands(rest))
}

func (a *assembler) pad(n int) {
	a.code = append(a.code, make([]byte, n)...)
	a.pc += uint16(n)
	a.started = true
}

func (a *assembler) emit(bs ...byte) {
	a.code = append(a.code, bs...)
	a.pc += uint16(len(bs))
	a.started = true
}

func (a *assembler) doDB(rest string) error {
	for _, part := range splitOperands(rest) {
		if len(part) >= 2 && (part[0] == '"') {
			if part[len(part)-1] != '"' {
				return fmt.Errorf("unterminated string %s", part)
			}
			a.emit([]byte(part[1 : len(part)-1])...)
			continue
		}
		a.emitExpr8(part)
	}
	return nil
}

func (a *assembler) doDW(rest string) error {
	for _, part := range splitOperands(rest) {
		a.emitExpr16(part)
	}
	return nil
}

// emitExpr8 emits one byte, deferring to pass 2 if not yet resolvable.
func (a *assembler) emitExpr8(expr string) {
	if v, err := a.eval(expr); err == nil {
		a.emit(byte(v))
		return
	}
	a.fixups = append(a.fixups, fixup{offset: len(a.code), expr: expr, kind: 'b', line: a.line, pcAt: a.lineStart})
	a.emit(0)
}

func (a *assembler) emitExpr16(expr string) {
	if v, err := a.eval(expr); err == nil {
		a.emit(byte(v), byte(v>>8))
		return
	}
	a.fixups = append(a.fixups, fixup{offset: len(a.code), expr: expr, kind: 'w', line: a.line, pcAt: a.lineStart})
	a.emit(0, 0)
}

func (a *assembler) emitRel(expr string) {
	a.fixups = append(a.fixups, fixup{offset: len(a.code), expr: expr, kind: 'r', line: a.line, pcAt: a.lineStart})
	a.emit(0)
}

// splitOperands splits on commas outside parens and quotes.
func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var out []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"', '\'':
			inStr = !inStr
		case '(':
			if !inStr {
				depth++
			}
		case ')':
			if !inStr {
				depth--
			}
		case ',':
			if depth == 0 && !inStr {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_' || r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// eval evaluates number / symbol / simple +- chains.
func (a *assembler) eval(expr string) (uint16, error) {
	expr = strings.TrimSpace(expr)
	if expr == "" {
		return 0, errors.New("empty expression")
	}
	// Split on top-level + and - (left to right).
	total := int32(0)
	sign := int32(1)
	tok := strings.Builder{}
	flush := func() error {
		t := strings.TrimSpace(tok.String())
		tok.Reset()
		if t == "" {
			return errors.New("bad expression")
		}
		v, err := a.term(t)
		if err != nil {
			return err
		}
		total += sign * int32(v)
		return nil
	}
	for i := 0; i < len(expr); i++ {
		ch := expr[i]
		if (ch == '+' || ch == '-') && tok.Len() > 0 {
			if err := flush(); err != nil {
				return 0, err
			}
			if ch == '+' {
				sign = 1
			} else {
				sign = -1
			}
			continue
		}
		tok.WriteByte(ch)
	}
	if err := flush(); err != nil {
		return 0, err
	}
	return uint16(total), nil
}

func (a *assembler) term(t string) (uint16, error) {
	// Character literal.
	if len(t) == 3 && t[0] == '\'' && t[2] == '\'' {
		return uint16(t[1]), nil
	}
	// Current location: the start of the instruction being assembled.
	if t == "$" {
		return a.lineStart, nil
	}
	// Number.
	if v, err := parseNumber(t); err == nil {
		return v, nil
	}
	// Symbol.
	if v, ok := a.symbols[t]; ok {
		return v, nil
	}
	return 0, fmt.Errorf("undefined symbol %q", t)
}

func parseNumber(t string) (uint16, error) {
	neg := false
	if strings.HasPrefix(t, "-") {
		neg = true
		t = t[1:]
	}
	var v uint64
	var err error
	switch {
	case strings.HasPrefix(t, "0x") || strings.HasPrefix(t, "0X"):
		v, err = strconv.ParseUint(t[2:], 16, 17)
	case strings.HasSuffix(t, "h") || strings.HasSuffix(t, "H"):
		v, err = strconv.ParseUint(t[:len(t)-1], 16, 17)
	case strings.HasPrefix(t, "0b"):
		v, err = strconv.ParseUint(t[2:], 2, 17)
	default:
		v, err = strconv.ParseUint(t, 10, 17)
	}
	if err != nil {
		return 0, err
	}
	if neg {
		return uint16(-int32(v)), nil
	}
	return uint16(v), nil
}
