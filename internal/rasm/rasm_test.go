package rasm

import (
	"bytes"
	"os"
	"testing"

	"repro/internal/rabbit"
)

func assemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

// execute assembles, loads at the program origin, and runs to HALT.
func execute(t *testing.T, src string) *rabbit.CPU {
	t.Helper()
	p := assemble(t, src)
	c := rabbit.New()
	c.Mem.LoadPhysical(uint32(p.Origin), p.Code)
	c.PC = p.Origin
	if err := c.Run(5_000_000); err != nil {
		t.Fatalf("run: %v (%s)", err, c)
	}
	return c
}

func TestEncodingBytes(t *testing.T) {
	cases := []struct {
		src  string
		want []byte
	}{
		{"nop", []byte{0x00}},
		{"halt", []byte{0x76}},
		{"ld a, 0x42", []byte{0x3E, 0x42}},
		{"ld b, c", []byte{0x41}},
		{"ld a, (hl)", []byte{0x7E}},
		{"ld (hl), a", []byte{0x77}},
		{"ld (hl), 5", []byte{0x36, 0x05}},
		{"ld hl, 0x1234", []byte{0x21, 0x34, 0x12}},
		{"ld sp, hl", []byte{0xF9}},
		{"ld a, (0x4000)", []byte{0x3A, 0x00, 0x40}},
		{"ld (0x4000), a", []byte{0x32, 0x00, 0x40}},
		{"ld hl, (0x4000)", []byte{0x2A, 0x00, 0x40}},
		{"ld (0x4000), hl", []byte{0x22, 0x00, 0x40}},
		{"ld bc, (0x4000)", []byte{0xED, 0x4B, 0x00, 0x40}},
		{"ld a, (bc)", []byte{0x0A}},
		{"ld (de), a", []byte{0x12}},
		{"add a, b", []byte{0x80}},
		{"add a, 7", []byte{0xC6, 0x07}},
		{"adc a, (hl)", []byte{0x8E}},
		{"sub 3", []byte{0xD6, 0x03}},
		{"xor a", []byte{0xAF}},
		{"cp 0x10", []byte{0xFE, 0x10}},
		{"add hl, de", []byte{0x19}},
		{"sbc hl, bc", []byte{0xED, 0x42}},
		{"inc a", []byte{0x3C}},
		{"dec (hl)", []byte{0x35}},
		{"inc de", []byte{0x13}},
		{"push bc", []byte{0xC5}},
		{"pop af", []byte{0xF1}},
		{"push ix", []byte{0xDD, 0xE5}},
		{"ex de, hl", []byte{0xEB}},
		{"ex af, af'", []byte{0x08}},
		{"ex (sp), hl", []byte{0xE3}},
		{"exx", []byte{0xD9}},
		{"jp 0x1234", []byte{0xC3, 0x34, 0x12}},
		{"jp nz, 0x1234", []byte{0xC2, 0x34, 0x12}},
		{"jp c, 0x1234", []byte{0xDA, 0x34, 0x12}},
		{"jp (hl)", []byte{0xE9}},
		{"call 0x1234", []byte{0xCD, 0x34, 0x12}},
		{"call z, 0x1234", []byte{0xCC, 0x34, 0x12}},
		{"ret", []byte{0xC9}},
		{"ret nc", []byte{0xD0}},
		{"rst 0x18", []byte{0xDF}},
		{"rlc b", []byte{0xCB, 0x00}},
		{"srl a", []byte{0xCB, 0x3F}},
		{"bit 3, a", []byte{0xCB, 0x5F}},
		{"set 0, (hl)", []byte{0xCB, 0xC6}},
		{"res 7, d", []byte{0xCB, 0xBA}},
		{"ldir", []byte{0xED, 0xB0}},
		{"neg", []byte{0xED, 0x44}},
		{"ld a, (ix+5)", []byte{0xDD, 0x7E, 0x05}},
		{"ld (iy-2), b", []byte{0xFD, 0x70, 0xFE}},
		{"ld (ix+1), 0x33", []byte{0xDD, 0x36, 0x01, 0x33}},
		{"ld ix, 0x4000", []byte{0xDD, 0x21, 0x00, 0x40}},
		{"add ix, bc", []byte{0xDD, 0x09}},
		{"inc (ix+3)", []byte{0xDD, 0x34, 0x03}},
		{"rl (ix+2)", []byte{0xDD, 0xCB, 0x02, 0x16}},
		{"ioi ld a, (0x0155)", []byte{0xD3, 0x3A, 0x55, 0x01}},
		{"djnz $", []byte{0x10, 0xFE}},
	}
	for _, tc := range cases {
		p := assemble(t, tc.src)
		if !bytes.Equal(p.Code, tc.want) {
			t.Errorf("%q = % x, want % x", tc.src, p.Code, tc.want)
		}
	}
}

func TestLabelsAndJumps(t *testing.T) {
	c := execute(t, `
        org 0
        ld b, 4
        ld a, 0
loop:   add a, b
        djnz loop
        halt
`)
	if c.A != 4+3+2+1 {
		t.Errorf("A = %d, want 10", c.A)
	}
}

func TestForwardReferences(t *testing.T) {
	c := execute(t, `
        jp start
junk:   db 0xFF, 0xFF
start:  ld a, 0x55
        halt
`)
	if c.A != 0x55 {
		t.Errorf("A = %02x", c.A)
	}
}

func TestEquAndExpressions(t *testing.T) {
	p := assemble(t, `
COUNT   equ 5
BASE    equ 0x4000
        ld b, COUNT
        ld hl, BASE+2
        ld a, COUNT-1
        halt
`)
	want := []byte{0x06, 0x05, 0x21, 0x02, 0x40, 0x3E, 0x04, 0x76}
	if !bytes.Equal(p.Code, want) {
		t.Errorf("code = % x, want % x", p.Code, want)
	}
}

func TestDataDirectives(t *testing.T) {
	p := assemble(t, `
        org 0x100
        db 1, 2, 0x03, 'A'
        dw 0x1234, label
        ds 3
label:  db "hi", 0
`)
	if p.Origin != 0x100 {
		t.Errorf("origin = %04x", p.Origin)
	}
	labelAddr := p.Symbols["label"]
	if labelAddr != 0x100+4+4+3 {
		t.Errorf("label = %04x", labelAddr)
	}
	want := []byte{1, 2, 3, 'A', 0x34, 0x12, byte(labelAddr), byte(labelAddr >> 8), 0, 0, 0, 'h', 'i', 0}
	if !bytes.Equal(p.Code, want) {
		t.Errorf("code = % x, want % x", p.Code, want)
	}
}

func TestCallingConvention(t *testing.T) {
	c := execute(t, `
        org 0
        ld hl, 7
        push hl
        call double
        pop bc        ; discard arg
        halt
double: push ix
        ld ix, 0
        add ix, sp
        ld l, (ix+4)  ; low byte of arg
        ld h, (ix+5)
        add hl, hl
        pop ix
        ret
`)
	if c.A != 0 { // just ensure we ran; result is in HL
		_ = c
	}
	hl := uint16(c.H)<<8 | uint16(c.L)
	if hl != 14 {
		t.Errorf("HL = %d, want 14", hl)
	}
}

func TestMemcpyProgram(t *testing.T) {
	p := assemble(t, `
        org 0
        ld hl, src
        ld de, 0x5000
        ld bc, srcend-src
        ldir
        halt
src:    db "rabbit semiconductor"
srcend:
`)
	c := rabbit.New()
	c.Mem.LoadPhysical(0, p.Code)
	if err := c.Run(10000); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 20)
	for i := range got {
		got[i] = c.Mem.Read(uint16(0x5000 + i))
	}
	if string(got) != "rabbit semiconductor" {
		t.Errorf("copied %q", got)
	}
}

func TestErrorReporting(t *testing.T) {
	bad := []string{
		"frobnicate a, b",      // unknown mnemonic
		"ld a,",                // missing operand
		"ld (hl), (hl)",        // invalid combination
		"jr pe, somewhere",     // jr with parity condition
		"label: \n label: nop", // duplicate label
		"ld a, undefined_symbol",
		"bit 9, a", // bit out of range
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%q assembled without error", src)
		}
	}
}

func TestRelativeJumpRange(t *testing.T) {
	src := "jr far\n" + " org 0x200\nfar: nop\n"
	if _, err := Assemble(src); err == nil {
		t.Error("out-of-range jr accepted")
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	p := assemble(t, `
; full-line comment
        nop        ; trailing comment

        halt
`)
	if !bytes.Equal(p.Code, []byte{0x00, 0x76}) {
		t.Errorf("code = % x", p.Code)
	}
}

func TestSymbolsExported(t *testing.T) {
	p := assemble(t, `
        org 0x80
entry:  nop
K       equ 42
`)
	if p.Symbols["entry"] != 0x80 || p.Symbols["K"] != 42 {
		t.Errorf("symbols = %v", p.Symbols)
	}
}

// TestSampleMemtest assembles and runs the testdata walking-bit RAM
// test: zero errors on good RAM, and it flags planted corruption...
// which needs a fault we cannot inject mid-run here, so the good-RAM
// pass plus pattern coverage is the assertion.
func TestSampleMemtest(t *testing.T) {
	src, err := os.ReadFile("testdata/memtest.asm")
	if err != nil {
		t.Fatal(err)
	}
	p := assemble(t, string(src))
	c := rabbit.New()
	c.Mem.LoadPhysical(uint32(p.Origin), p.Code)
	c.PC = p.Origin
	if err := c.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	if c.Mem.Read(p.Symbols["DONE"]) != 1 {
		t.Fatal("memtest did not finish")
	}
	if errs := c.Mem.Read16(p.Symbols["ERRS"]); errs != 0 {
		t.Errorf("memtest reported %d errors on good RAM", errs)
	}
	// The window holds the final pattern (0x80 after 7 rotations of 0x01
	// ... actually the 8th pattern written is 0x80).
	if got := c.Mem.Read(0x4000); got != 0x80 {
		t.Errorf("window byte = %#x, want last walking pattern 0x80", got)
	}
}
