; memtest.asm — walking-bit RAM test over a 256-byte window, the
; classic power-on check. Writes each pattern, reads it back, counts
; mismatches in ERRS, sets DONE=1 when finished.
WINDOW  equ 0x4000
ERRS    equ 0x5000
DONE    equ 0x5002

        org 0
        ld hl, 0
        ld (ERRS), hl
        ld b, 8            ; eight walking-bit patterns
        ld c, 0x01
pattern:
        ; fill the window with the pattern
        ld hl, WINDOW
        ld d, 0            ; offset counter
fill:
        ld a, c
        ld (hl), a
        inc hl
        inc d
        jr nz, fill
        ; verify
        ld hl, WINDOW
        ld d, 0
verify:
        ld a, (hl)
        cp c
        jr z, vok
        push hl
        ld hl, (ERRS)
        inc hl
        ld (ERRS), hl
        pop hl
vok:
        inc hl
        inc d
        jr nz, verify
        ; next pattern: rotate the walking bit
        ld a, c
        rlca
        ld c, a
        djnz pattern
        ld a, 1
        ld (DONE), a
        halt
