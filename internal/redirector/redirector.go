// Package redirector implements the network cryptographic service of
// the case study: a secure redirector that terminates issl-encrypted
// connections and forwards the plaintext to a backend server — the
// job a commercial SSL accelerator box does, "Because SSL forms a
// layer above TCP, it is easily moved from the server to other
// hardware" (§2).
//
// Two implementations mirror the two platforms:
//
//   - UnixServer: the original program structure — listen/accept with
//     a handler per connection (fork in the paper, a goroutine here),
//     an unbounded number of simultaneous connections, Unix-profile
//     issl with RSA key exchange.
//   - EmbeddedServer: the ported structure of Fig. 3 — a fixed set of
//     costatement-driven connection slots plus a driver costatement
//     ticking the TCP stack, each slot doing tcp_listen on the shared
//     port and *becoming* the connection. The slot count is the hard
//     concurrency limit; a fourth client is refused while three are
//     being served.
//
// Setting Config.Secure to false turns either server into a plaintext
// redirector, the baseline for the paper's §2 observation (after
// Goldberg et al.) that SSL costs around an order of magnitude of
// server throughput (experiment E4).
package redirector

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/costate"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/rsa"
	"repro/internal/dcsock"
	"repro/internal/issl"
	"repro/internal/tcpip"
	"repro/internal/telemetry"
)

// Config parameterizes a redirector of either flavor.
type Config struct {
	// ListenPort is the public (secure) port.
	ListenPort uint16
	// Target/TargetPort locate the backend the plaintext goes to.
	Target     tcpip.Addr
	TargetPort uint16
	// Secure enables the issl layer; false gives the plaintext baseline.
	Secure bool
	// ServerKey is the RSA key (Unix flavor with Secure).
	ServerKey *rsa.PrivateKey
	// PSK is the pre-shared key (Embedded flavor with Secure).
	PSK []byte
	// Slots caps simultaneous connections (Embedded flavor; default 3,
	// the paper's number).
	Slots int
	// MaxInflight caps simultaneous connections on the Unix flavor
	// (admission control): past the bound, new connections are refused
	// immediately — counted in Refused and AdmissionRefused — instead of
	// growing the handler-goroutine population without limit. 0 keeps
	// the original unbounded fork-model behavior.
	MaxInflight int
	// SessionCache enables server-side session resumption (Goldberg et
	// al. session-key caching): returning clients that offer a cached
	// session get the abbreviated handshake. Optional; nil disables
	// resumption, the pre-caching behavior.
	SessionCache *issl.SessionCache
	// TicketKeys enables sealed session tickets: every handshake
	// issues a ticket under the cluster-shared key and a client-offered
	// ticket resumes without any cache entry — the stateless form that
	// lets any instance of a multi-redirector fleet resume any client.
	// Optional; nil keeps cache-only resumption.
	TicketKeys *issl.TicketKeyStore
	// SignWorkers sizes the shared RSA sign/decrypt worker pool for the
	// secure Unix flavor: all connection handshakes funnel their
	// private-key operations through this many workers (queue depth
	// 4×workers; saturation queues gracefully, see issl.SignPool). A
	// reconnect stampede then parallelizes across exactly this many
	// cores instead of serializing wherever the scheduler lands. 0
	// keeps the inline per-connection behavior.
	SignWorkers int
	// DrainTimeout bounds the graceful phase of Close: inflight
	// connections get this long to finish on their own (counted in
	// DrainedConns) before the remainder are aborted. 0 aborts
	// immediately, the pre-drain behavior.
	DrainTimeout time.Duration
	// BackendAttempts caps backend connect attempts per client
	// connection (default 3). A backend that restarts — or sits behind
	// a flaky hub — gets a second chance before the client is refused.
	BackendAttempts int
	// BackendRetryDelay is the wait after the first failed backend
	// attempt (default 100ms); it doubles per failure.
	BackendRetryDelay time.Duration
	// Log receives service events. Optional.
	Log issl.Logger
	// RandSeed seeds the deterministic PRNG used for session crypto.
	RandSeed uint64
	// Metrics hosts the service counters (see Stats). When nil the
	// server uses a private registry, so Stats() always reads live
	// values. The registry is also handed to the issl layer.
	Metrics *telemetry.Registry
	// Trace receives per-connection events ("redirector" layer) and is
	// handed to the issl layer for handshake phases. Optional.
	Trace *telemetry.Trace
}

func (c *Config) logf(format string, args ...any) {
	if c.Log != nil {
		c.Log.Printf(format, args...)
	}
}

// Stats exposes the service counters. The fields are handles into the
// telemetry registry (Config.Metrics, or a private one), updated
// atomically; read with Value().
type Stats struct {
	Accepted         *telemetry.Counter // connections fully established
	Refused          *telemetry.Counter // all refusals: handshake, backend-down, admission
	AdmissionRefused *telemetry.Counter // refusals from the MaxInflight admission bound
	Inflight         *telemetry.Gauge   // connections currently being handled
	BytesForward     *telemetry.Counter // client -> backend plaintext bytes
	BytesBackward    *telemetry.Counter // backend -> client plaintext bytes
	BackendRetries   *telemetry.Counter // backend connect attempts beyond the first
	BackendDown      *telemetry.Counter // clients refused because the backend stayed down
	HalfCloses       *telemetry.Counter // one-directional EOFs propagated via half-close
	DrainedConns     *telemetry.Counter // inflight connections that completed during a graceful drain
}

// newStats resolves the counters. A nil registry gets a private one so
// every handle is live (Stats readers must never see absorbed writes).
func newStats(reg *telemetry.Registry) Stats {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return Stats{
		Accepted:         reg.Counter("redirector.accepted"),
		Refused:          reg.Counter("redirector.refused"),
		AdmissionRefused: reg.Counter("redirector.refused_admission"),
		Inflight:         reg.Gauge("redirector.inflight"),
		BytesForward:     reg.Counter("redirector.bytes_forward"),
		BytesBackward:    reg.Counter("redirector.bytes_backward"),
		BackendRetries:   reg.Counter("redirector.backend_retries"),
		BackendDown:      reg.Counter("redirector.backend_down"),
		HalfCloses:       reg.Counter("redirector.half_closes"),
		DrainedConns:     reg.Counter("redirector.drained_conns"),
	}
}

// closeWriter is implemented by every transport the pump handles: a
// plain TCB (FIN with the read side open), a Dynamic C socket
// (sock_close), and the issl adapters (close_notify).
type closeWriter interface{ CloseWrite() error }

// halfClose shuts down dst's write side only, so bytes still in flight
// toward us keep flowing; a transport without half-close falls back to
// a full close.
func halfClose(dst io.WriteCloser, st *Stats) {
	if cw, ok := dst.(closeWriter); ok {
		if cw.CloseWrite() == nil {
			st.HalfCloses.Inc()
			return
		}
	}
	dst.Close()
}

// pump copies a<->b until both directions end. When one direction sees
// a clean EOF it half-closes its destination (TCP shutdown(SHUT_WR)
// semantics: FIN out, reads still open; or an issl close_notify) so a
// client that finishes its request early still receives the backend's
// full response. Only an actual error tears a destination down; both
// ends are fully closed once both directions are done.
func pump(client io.ReadWriteCloser, backend io.ReadWriteCloser, st *Stats) (fwd, bwd uint64) {
	var wg sync.WaitGroup
	var fwdTotal, bwdTotal atomic.Uint64
	copyDir := func(dst io.ReadWriteCloser, src io.Reader, counter *telemetry.Counter, total *atomic.Uint64) {
		defer wg.Done()
		buf := make([]byte, 4096)
		for {
			n, err := src.Read(buf)
			if n > 0 {
				counter.Add(uint64(n))
				total.Add(uint64(n))
				if _, werr := dst.Write(buf[:n]); werr != nil {
					dst.Close()
					return
				}
			}
			if err == io.EOF {
				halfClose(dst, st)
				return
			}
			if err != nil {
				dst.Close()
				return
			}
		}
	}
	wg.Add(2)
	go copyDir(backend, client, st.BytesForward, &fwdTotal)
	go copyDir(client, backend, st.BytesBackward, &bwdTotal)
	wg.Wait()
	client.Close()
	backend.Close()
	return fwdTotal.Load(), bwdTotal.Load()
}

// dialBackend connects to the backend with capped-doubling retries.
// Counter semantics: each retry bumps BackendRetries; exhausting all
// attempts bumps BackendDown once (the caller then refuses the client
// gracefully — a secure client gets a clean close_notify, not a RST).
func dialBackend(cfg *Config, st *Stats, dial func() (*tcpip.TCB, error)) (*tcpip.TCB, error) {
	attempts := cfg.BackendAttempts
	if attempts <= 0 {
		attempts = 3
	}
	delay := cfg.BackendRetryDelay
	if delay <= 0 {
		delay = 100 * time.Millisecond
	}
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			st.BackendRetries.Inc()
			cfg.Trace.Emit("redirector", "backend.retry", "try", i+1, "delay_ms", delay.Milliseconds())
			time.Sleep(delay)
			delay *= 2
		}
		var tcb *tcpip.TCB
		if tcb, err = dial(); err == nil {
			return tcb, nil
		}
	}
	st.BackendDown.Inc()
	cfg.Trace.Emit("redirector", "backend.down", "attempts", attempts)
	return nil, err
}

// --- Unix flavor ----------------------------------------------------------------

// UnixServer is the original workstation service: accept loop plus a
// per-connection handler process (goroutine standing in for fork).
type UnixServer struct {
	cfg   Config
	stack *tcpip.Stack
	lst   *tcpip.Listener
	stats Stats
	wg    sync.WaitGroup
	stop  chan struct{}
	once  sync.Once

	mu     sync.Mutex
	active map[*tcpip.TCB]struct{}

	// Per-server handshake-plane state, built once: the RSA worker pool
	// every handler shares and the immutable ServerHello prefix.
	signPool    *issl.SignPool
	helloPrefix *issl.ServerHelloPrefix
}

// ErrBadConfig reports an unusable redirector configuration.
var ErrBadConfig = errors.New("redirector: bad configuration")

// NewUnixServer binds the listening socket.
func NewUnixServer(stack *tcpip.Stack, cfg Config) (*UnixServer, error) {
	if cfg.Secure && cfg.ServerKey == nil {
		return nil, fmt.Errorf("%w: secure Unix redirector needs ServerKey", ErrBadConfig)
	}
	lst, err := stack.Listen(cfg.ListenPort, 16)
	if err != nil {
		return nil, err
	}
	s := &UnixServer{cfg: cfg, stack: stack, lst: lst, stats: newStats(cfg.Metrics),
		stop: make(chan struct{}), active: map[*tcpip.TCB]struct{}{}}
	if cfg.Secure {
		if cfg.SignWorkers > 0 {
			s.signPool = issl.NewSignPool(cfg.SignWorkers, 4*cfg.SignWorkers, cfg.Metrics)
		}
		s.helloPrefix = issl.NewServerHelloPrefix(&issl.Config{
			Profile: issl.ProfileUnix, ServerKey: cfg.ServerKey,
		})
	}
	return s, nil
}

// Stats exposes the live counters.
func (s *UnixServer) Stats() *Stats { return &s.stats }

// Serve accepts and dispatches until Close. It blocks; run it on its
// own goroutine (the original blocked its main process the same way).
func (s *UnixServer) Serve() {
	seq := uint64(0)
	for {
		conn, err := s.lst.Accept(200 * time.Millisecond)
		if err != nil {
			select {
			case <-s.stop:
				return
			default:
				continue // accept timeout; poll the stop channel
			}
		}
		seq++
		// Admission control: the fork model's unbounded handler growth is
		// the first thing a capacity test breaks. Past MaxInflight the
		// connection is refused with a clean FIN (not a RST), so the
		// client sees a graceful refusal it can back off from. Admission
		// is decided only on this accept goroutine, so the bound is never
		// overshot; a racing handler exit can at worst refuse one
		// connection that would just have fit.
		if max := s.cfg.MaxInflight; max > 0 && s.stats.Inflight.Value() >= int64(max) {
			s.stats.Refused.Inc()
			s.stats.AdmissionRefused.Inc()
			s.cfg.Trace.Emit("redirector", "conn.refused", "conn", seq, "reason", "admission")
			conn.Close()
			continue
		}
		s.stats.Inflight.Add(1)
		s.mu.Lock()
		s.active[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func(id uint64, tcb *tcpip.TCB) { // the fork(2) analogue
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.active, tcb)
				s.mu.Unlock()
				s.stats.Inflight.Add(-1)
			}()
			s.handle(id, tcb)
		}(seq, conn)
	}
}

func (s *UnixServer) handle(id uint64, tcb *tcpip.TCB) {
	var client io.ReadWriteCloser = tcb
	if s.cfg.Secure {
		cfg := issl.Config{
			Profile:     issl.ProfileUnix,
			ServerKey:   s.cfg.ServerKey,
			Rand:        prng.NewXorshift(s.cfg.RandSeed ^ id),
			Log:         s.cfg.Log,
			Cache:       s.cfg.SessionCache,
			TicketKeys:  s.cfg.TicketKeys,
			SignPool:    s.signPool,
			HelloPrefix: s.helloPrefix,
			Metrics:     s.cfg.Metrics,
			Trace:       s.cfg.Trace,
		}
		sc, err := issl.BindServer(tcb, cfg)
		if err != nil {
			s.cfg.logf("redirector: conn %d: handshake failed: %v", id, err)
			s.stats.Refused.Inc()
			s.cfg.Trace.Emit("redirector", "conn.refused", "conn", id, "reason", "handshake")
			tcb.Close()
			return
		}
		client = connAndTransport{sc, tcb}
	}
	backend, err := dialBackend(&s.cfg, &s.stats, func() (*tcpip.TCB, error) {
		return s.stack.Connect(s.cfg.Target, s.cfg.TargetPort, 5*time.Second)
	})
	if err != nil {
		s.cfg.logf("redirector: conn %d: backend unreachable, refusing client: %v", id, err)
		s.stats.Refused.Inc()
		s.cfg.Trace.Emit("redirector", "conn.refused", "conn", id, "reason", "backend")
		client.Close()
		return
	}
	s.stats.Accepted.Inc()
	s.cfg.Trace.Emit("redirector", "conn.accept", "conn", id)
	fwd, bwd := pump(client, backend, &s.stats)
	s.cfg.Trace.Emit("redirector", "conn.done", "conn", id, "bytes_fwd", fwd, "bytes_bwd", bwd)
}

// Close shuts the server down with the configured DrainTimeout: see
// Shutdown. With DrainTimeout zero this is the original hard stop.
func (s *UnixServer) Close() { s.Shutdown(s.cfg.DrainTimeout) }

// Shutdown stops the accept loop (no new connections), then drains:
// inflight connections get up to drain to finish on their own —
// each one that does increments the drained_conns counter — before
// the stragglers are aborted. It returns once every handler goroutine
// has finished, so the half-close pump can never race the teardown
// (the pre-drain Close aborted mid-pump and the chaos harness caught
// byte-short transfers on otherwise healthy shutdowns).
func (s *UnixServer) Shutdown(drain time.Duration) {
	s.once.Do(func() {
		close(s.stop)
		s.lst.Close()
		if drain > 0 {
			start := s.stats.Inflight.Value()
			deadline := time.Now().Add(drain)
			for s.stats.Inflight.Value() > 0 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if done := start - s.stats.Inflight.Value(); done > 0 {
				s.stats.DrainedConns.Add(uint64(done))
				s.cfg.Trace.Emit("redirector", "shutdown.drained", "conns", done)
			}
			if rem := s.stats.Inflight.Value(); rem > 0 {
				s.cfg.Trace.Emit("redirector", "shutdown.aborted", "conns", rem)
			}
		}
		s.mu.Lock()
		for tcb := range s.active {
			tcb.Abort()
		}
		s.mu.Unlock()
	})
	s.wg.Wait()
	// After the last handler: release the sign-pool workers. Idempotent
	// and nil-safe; a straggler submitting after this runs inline.
	s.signPool.Close()
}

// connAndTransport closes both the secure layer and the TCP beneath it.
type connAndTransport struct {
	*issl.Conn
	tcb *tcpip.TCB
}

func (c connAndTransport) Close() error {
	c.Conn.Close()
	return c.tcb.Close()
}

// CloseWrite propagates EOF through the secure layer only: the peer's
// issl Read returns io.EOF after the close_notify, while our read side
// (and the TCP beneath) stays open for the response.
func (c connAndTransport) CloseWrite() error { return c.Conn.CloseWrite() }

// --- Embedded flavor -----------------------------------------------------------

// EmbeddedServer is the ported service with the Fig. 3 structure.
type EmbeddedServer struct {
	cfg     Config
	env     *dcsock.Env
	stats   Stats
	stop    atomic.Bool
	started atomic.Bool
	runDone chan struct{}
	wg      sync.WaitGroup // in-flight serveSlot helper goroutines
	connSeq atomic.Uint64  // per-connection PRNG diversifier

	helloPrefix *issl.ServerHelloPrefix // immutable ServerHello head, built once
}

// NewEmbeddedServer prepares the service over a Dynamic C environment.
func NewEmbeddedServer(env *dcsock.Env, cfg Config) (*EmbeddedServer, error) {
	if cfg.Secure && len(cfg.PSK) == 0 {
		return nil, fmt.Errorf("%w: secure embedded redirector needs PSK (the port dropped RSA)", ErrBadConfig)
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 3 // the paper's maximum: "at most three requests"
	}
	s := &EmbeddedServer{cfg: cfg, env: env, stats: newStats(cfg.Metrics),
		runDone: make(chan struct{})}
	if cfg.Secure {
		s.helloPrefix = issl.NewServerHelloPrefix(&issl.Config{Profile: issl.ProfileEmbedded})
	}
	return s, nil
}

// Stats exposes the live counters.
func (s *EmbeddedServer) Stats() *Stats { return &s.stats }

// Run executes the Fig. 3 main loop: Slots connection-handler
// costatements plus one TCP-driver costatement, scheduled
// cooperatively, until Close is called. It blocks.
//
// Fidelity note: the handshake and data pump run on helper goroutines
// so a slot that is mid-transfer does not stall its siblings — the
// Dynamic C original achieved the same interleaving with non-blocking
// socket calls inside each costatement. The structural property the
// paper cares about is preserved exactly: Slots listening sockets
// bound by tcp_listen, so connection Slots+1 is refused while all
// slots are busy.
func (s *EmbeddedServer) Run() {
	s.started.Store(true)
	defer close(s.runDone)
	s.env.SockInit()
	sched := costate.New()
	for i := 0; i < s.cfg.Slots; i++ {
		slot := i
		sched.Spawn(fmt.Sprintf("conn-slot-%d", slot), func(co *costate.Co) {
			s.slotBody(co, slot)
		})
	}
	// The driver: "one [process] to drive the TCP stack".
	sched.Spawn("tcp-driver", func(co *costate.Co) {
		for !s.stop.Load() {
			s.env.TcpTick(nil)
			// Pace the cooperative loop so idle slots poll at ~1ms
			// instead of spinning a host core (the 30 MHz board paced
			// itself by simply being slow).
			time.Sleep(time.Millisecond)
			co.Yield()
		}
	})
	sched.Run()
}

func (s *EmbeddedServer) slotBody(co *costate.Co, slot int) {
	for !s.stop.Load() {
		var sock dcsock.TCPSocket
		if err := s.env.TcpListen(&sock, s.cfg.ListenPort); err != nil {
			s.cfg.logf("redirector: slot %d: tcp_listen: %v", slot, err)
			return
		}
		// waitfor(sock_established(&socket))
		co.WaitFor(func() bool {
			return s.stop.Load() || sock.SockEstablished()
		})
		if s.stop.Load() {
			sock.SockAbort()
			return
		}
		done := make(chan struct{})
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer close(done)
			s.serveSlot(slot, &sock)
		}()
		co.WaitFor(func() bool {
			select {
			case <-done:
				return true
			default:
				return s.stop.Load()
			}
		})
		if s.stop.Load() {
			sock.SockAbort()
			<-done
			return
		}
	}
}

func (s *EmbeddedServer) serveSlot(slot int, sock *dcsock.TCPSocket) {
	tr := dcTransport{sock}
	var client io.ReadWriteCloser = tr
	if s.cfg.Secure {
		cfg := issl.Config{
			Profile: issl.ProfileEmbedded,
			PSK:     s.cfg.PSK,
			// Diversify per connection, not just per slot: with a session
			// cache, a slot re-running the same PRNG would reissue the
			// same session IDs.
			Rand:        prng.NewXorshift(s.cfg.RandSeed ^ uint64(slot+1)<<32 ^ s.connSeq.Add(1)),
			Log:         s.cfg.Log,
			Cache:       s.cfg.SessionCache,
			TicketKeys:  s.cfg.TicketKeys,
			HelloPrefix: s.helloPrefix,
			Metrics:     s.cfg.Metrics,
			Trace:       s.cfg.Trace,
		}
		sc, err := issl.BindServer(tr, cfg)
		if err != nil {
			s.cfg.logf("redirector: slot %d: handshake failed: %v", slot, err)
			s.stats.Refused.Inc()
			s.cfg.Trace.Emit("redirector", "conn.refused", "slot", slot, "reason", "handshake")
			tr.Close()
			return
		}
		client = connAndDC{sc, sock}
	}
	backend, err := dialBackend(&s.cfg, &s.stats, func() (*tcpip.TCB, error) {
		return s.env.Stack().Connect(s.cfg.Target, s.cfg.TargetPort, 5*time.Second)
	})
	if err != nil {
		s.cfg.logf("redirector: slot %d: backend unreachable, refusing client: %v", slot, err)
		s.stats.Refused.Inc()
		s.cfg.Trace.Emit("redirector", "conn.refused", "slot", slot, "reason", "backend")
		client.Close()
		return
	}
	s.stats.Accepted.Inc()
	s.cfg.Trace.Emit("redirector", "conn.accept", "slot", slot)
	fwd, bwd := pump(client, backend, &s.stats)
	s.cfg.Trace.Emit("redirector", "conn.done", "slot", slot, "bytes_fwd", fwd, "bytes_bwd", bwd)
}

// Close asks the scheduler loop to wind down and waits for it — and
// for every in-flight serveSlot helper goroutine — to finish, so a
// soak harness can assert the goroutine count returns to baseline
// after Close returns. (The old Close only flipped the stop flag;
// handlers mid-transfer outlived it.)
func (s *EmbeddedServer) Close() {
	s.stop.Store(true)
	if s.started.Load() {
		<-s.runDone
	}
	s.wg.Wait()
}

// dcTransport adapts a Dynamic C socket to io.ReadWriteCloser for the
// issl layer and the pump.
type dcTransport struct{ s *dcsock.TCPSocket }

func (d dcTransport) Read(p []byte) (int, error) {
	n, status := d.s.SockRead(p, time.Hour)
	switch status {
	case dcsock.StatusOK:
		return n, nil
	case dcsock.StatusClosed:
		return n, io.EOF
	default:
		return n, fmt.Errorf("redirector: sock_read status %d", status)
	}
}

func (d dcTransport) Write(p []byte) (int, error) {
	n, status := d.s.SockWrite(p)
	if status != dcsock.StatusOK {
		return n, fmt.Errorf("redirector: sock_write status %d", status)
	}
	return n, nil
}

func (d dcTransport) Close() error {
	d.s.SockClose()
	return nil
}

// CloseWrite maps to sock_close, which (like the TCB beneath it) sends
// FIN but keeps draining received data.
func (d dcTransport) CloseWrite() error {
	d.s.SockClose()
	return nil
}

// connAndDC closes both the secure layer and the DC socket under it.
type connAndDC struct {
	*issl.Conn
	sock *dcsock.TCPSocket
}

func (c connAndDC) Close() error {
	c.Conn.Close()
	c.sock.SockClose()
	return nil
}

// CloseWrite half-closes the secure layer (see connAndTransport).
func (c connAndDC) CloseWrite() error { return c.Conn.CloseWrite() }
