package redirector

import (
	"bytes"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/crypto/prng"
	"repro/internal/crypto/rsa"
	"repro/internal/dcsock"
	"repro/internal/issl"
	"repro/internal/netsim"
	"repro/internal/tcpip"
)

var (
	keyOnce sync.Once
	testKey *rsa.PrivateKey
)

func rsaKey(t testing.TB) *rsa.PrivateKey {
	keyOnce.Do(func() {
		k, err := rsa.GenerateKey(prng.NewXorshift(0xd00d), 512)
		if err != nil {
			t.Fatalf("keygen: %v", err)
		}
		testKey = k
	})
	return testKey
}

// world builds: client stack (.1), redirector stack (.2), backend
// stack (.3) with an echo server on backendPort.
func world(t *testing.T) (cli, mid, back *tcpip.Stack) {
	t.Helper()
	hub := netsim.NewHub()
	t.Cleanup(hub.Close)
	mk := func(last byte) *tcpip.Stack {
		s, err := tcpip.NewStack(hub, tcpip.IP4(10, 0, 0, last))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		return s
	}
	return mk(1), mk(2), mk(3)
}

const backendPort = 9000

// connectRetry dials until the server's listener is actually up: a SYN
// arriving before the slot reaches tcp_listen is refused, so a bounded
// retry loop replaces the old fixed "let slots start" sleep (which was
// both slower and flaky under load).
func connectRetry(t *testing.T, cli *tcpip.Stack, addr tcpip.Addr, port uint16) *tcpip.TCB {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		tcb, err := cli.Connect(addr, port, 2*time.Second)
		if err == nil {
			return tcb
		}
		if time.Now().After(deadline) {
			t.Fatalf("connect to %s:%d never succeeded: %v", addr, port, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// startEchoBackend serves echo connections until the stack closes.
func startEchoBackend(t *testing.T, s *tcpip.Stack) {
	t.Helper()
	l, err := s.Listen(backendPort, 16)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := l.Accept(30 * time.Second)
			if err != nil {
				return
			}
			go func(c *tcpip.TCB) {
				buf := make([]byte, 4096)
				for {
					n, err := c.ReadDeadline(buf, time.Now().Add(30*time.Second))
					if n > 0 {
						c.Write(buf[:n])
					}
					if err != nil {
						c.Close()
						return
					}
				}
			}(conn)
		}
	}()
}

func TestUnixSecureRedirect(t *testing.T) {
	cli, mid, back := world(t)
	startEchoBackend(t, back)
	srv, err := NewUnixServer(mid, Config{
		ListenPort: 443, Target: back.Addr(), TargetPort: backendPort,
		Secure: true, ServerKey: rsaKey(t), RandSeed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	tcb, err := cli.Connect(mid.Addr(), 443, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := issl.BindClient(tcb, issl.Config{Profile: issl.ProfileUnix, Rand: prng.NewXorshift(9)})
	if err != nil {
		t.Fatalf("client handshake: %v", err)
	}
	msg := []byte("through the accelerator")
	if _, err := sc.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	var got []byte
	for len(got) < len(msg) {
		n, err := sc.Read(buf)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		got = append(got, buf[:n]...)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("echo = %q", got)
	}
	if srv.Stats().Accepted.Value() != 1 {
		t.Errorf("accepted = %d", srv.Stats().Accepted.Value())
	}
}

func TestUnixPlainRedirect(t *testing.T) {
	cli, mid, back := world(t)
	startEchoBackend(t, back)
	srv, err := NewUnixServer(mid, Config{
		ListenPort: 8080, Target: back.Addr(), TargetPort: backendPort,
		Secure: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	tcb, err := cli.Connect(mid.Addr(), 8080, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	tcb.Write([]byte("plaintext pass-through"))
	buf := make([]byte, 64)
	n, err := tcb.ReadDeadline(buf, time.Now().Add(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "plaintext pass-through" {
		t.Errorf("got %q", buf[:n])
	}
}

func TestUnixManyConcurrentConnections(t *testing.T) {
	cli, mid, back := world(t)
	startEchoBackend(t, back)
	srv, err := NewUnixServer(mid, Config{
		ListenPort: 443, Target: back.Addr(), TargetPort: backendPort,
		Secure: true, ServerKey: rsaKey(t), RandSeed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	const n = 8 // beyond the embedded flavor's 3-slot limit
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(id uint64) {
			tcb, err := cli.Connect(mid.Addr(), 443, 10*time.Second)
			if err != nil {
				errs <- err
				return
			}
			sc, err := issl.BindClient(tcb, issl.Config{Profile: issl.ProfileUnix, Rand: prng.NewXorshift(100 + id)})
			if err != nil {
				errs <- err
				return
			}
			msg := []byte{byte(id), 1, 2, 3}
			sc.Write(msg)
			buf := make([]byte, 16)
			got := 0
			for got < len(msg) {
				r, err := sc.Read(buf[got:])
				if err != nil {
					errs <- err
					return
				}
				got += r
			}
			if !bytes.Equal(buf[:got], msg) {
				errs <- io.ErrUnexpectedEOF
				return
			}
			errs <- nil
		}(uint64(i))
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Errorf("client %d: %v", i, err)
		}
	}
	if acc := srv.Stats().Accepted.Value(); acc != n {
		t.Errorf("accepted = %d, want %d (fork model has no slot limit)", acc, n)
	}
}

func TestEmbeddedSecureRedirect(t *testing.T) {
	cli, mid, back := world(t)
	startEchoBackend(t, back)
	psk := []byte("shared-secret-on-the-board")
	srv, err := NewEmbeddedServer(dcsock.NewEnv(mid), Config{
		ListenPort: 443, Target: back.Addr(), TargetPort: backendPort,
		Secure: true, PSK: psk, RandSeed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Run()
	defer srv.Close()

	tcb := connectRetry(t, cli, mid.Addr(), 443)
	sc, err := issl.BindClient(tcb, issl.Config{Profile: issl.ProfileEmbedded, PSK: psk, Rand: prng.NewXorshift(77)})
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}
	msg := []byte("embedded path")
	sc.Write(msg)
	buf := make([]byte, 64)
	var got []byte
	for len(got) < len(msg) {
		n, err := sc.Read(buf)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		got = append(got, buf[:n]...)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("echo = %q", got)
	}
}

// TestE5ConnectionLimit is experiment E5: with the Fig. 3 structure and
// 3 slots, three clients are served simultaneously and a fourth is
// refused until a slot frees up.
func TestE5ConnectionLimit(t *testing.T) {
	cli, mid, back := world(t)
	startEchoBackend(t, back)
	psk := []byte("slots")
	srv, err := NewEmbeddedServer(dcsock.NewEnv(mid), Config{
		ListenPort: 443, Target: back.Addr(), TargetPort: backendPort,
		Secure: true, PSK: psk, Slots: 3, RandSeed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Run()
	defer srv.Close()

	// Occupy all three slots with live secure sessions. Slots reach
	// tcp_listen asynchronously, so each dial retries until its slot is
	// up instead of sleeping a fixed grace period.
	var conns []*issl.Conn
	var tcbs []*tcpip.TCB
	for i := 0; i < 3; i++ {
		tcb := connectRetry(t, cli, mid.Addr(), 443)
		sc, err := issl.BindClient(tcb, issl.Config{Profile: issl.ProfileEmbedded, PSK: psk, Rand: prng.NewXorshift(uint64(200 + i))})
		if err != nil {
			t.Fatalf("handshake %d: %v", i, err)
		}
		// Prove the slot is actually serving.
		sc.Write([]byte("x"))
		buf := make([]byte, 8)
		if _, err := sc.Read(buf); err != nil {
			t.Fatalf("slot %d echo: %v", i, err)
		}
		conns = append(conns, sc)
		tcbs = append(tcbs, tcb)
	}

	// Fourth connection: no listening socket remains; the stack
	// refuses the SYN.
	if _, err := cli.Connect(mid.Addr(), 443, 2*time.Second); err == nil {
		t.Fatal("fourth simultaneous connection succeeded; Fig. 3 limit not enforced")
	}

	// Release one slot; the slot re-listens; a new client succeeds.
	conns[0].Close()
	tcbs[0].Close()
	var late *tcpip.TCB
	deadline := time.Now().Add(10 * time.Second)
	for {
		late, err = cli.Connect(mid.Addr(), 443, 2*time.Second)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed: %v", err)
		}
	}
	sc, err := issl.BindClient(late, issl.Config{Profile: issl.ProfileEmbedded, PSK: psk, Rand: prng.NewXorshift(999)})
	if err != nil {
		t.Fatalf("late handshake: %v", err)
	}
	sc.Write([]byte("finally"))
	buf := make([]byte, 16)
	if _, err := sc.Read(buf); err != nil {
		t.Fatalf("late echo: %v", err)
	}
}

func TestEmbeddedConfigValidation(t *testing.T) {
	_, mid, _ := world(t)
	if _, err := NewEmbeddedServer(dcsock.NewEnv(mid), Config{Secure: true}); err == nil {
		t.Error("secure embedded server without PSK accepted")
	}
	srv, err := NewEmbeddedServer(dcsock.NewEnv(mid), Config{Secure: false})
	if err != nil {
		t.Fatal(err)
	}
	if srv.cfg.Slots != 3 {
		t.Errorf("default slots = %d, want 3", srv.cfg.Slots)
	}
}

func TestUnixConfigValidation(t *testing.T) {
	_, mid, _ := world(t)
	if _, err := NewUnixServer(mid, Config{ListenPort: 1, Secure: true}); err == nil {
		t.Error("secure unix server without key accepted")
	}
}

func TestBackendUnreachableCountsRefused(t *testing.T) {
	cli, mid, _ := world(t)
	// No backend started. One attempt: retry behavior has its own test,
	// and each attempt against a silent address costs a full SYN timeout.
	srv, err := NewUnixServer(mid, Config{
		ListenPort: 8080, Target: tcpip.IP4(10, 0, 0, 3), TargetPort: backendPort,
		Secure: false, BackendAttempts: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()
	tcb, err := cli.Connect(mid.Addr(), 8080, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	tcb.ReadDeadline(buf, time.Now().Add(3*time.Second)) // will EOF/reset when backend dial fails
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Refused.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if srv.Stats().Refused.Value() != 1 {
		t.Errorf("refused = %d, want 1", srv.Stats().Refused.Value())
	}
	if srv.Stats().BackendDown.Value() != 1 {
		t.Errorf("backend down = %d, want 1", srv.Stats().BackendDown.Value())
	}
}

// TestBackendReconnectWithBackoff brings the backend up only after the
// redirector's first connect attempt has failed: the retry loop must
// land the client on the late-arriving backend instead of refusing.
func TestBackendReconnectWithBackoff(t *testing.T) {
	hub := netsim.NewHub()
	t.Cleanup(hub.Close)
	mk := func(last byte) *tcpip.Stack {
		s, err := tcpip.NewStack(hub, tcpip.IP4(10, 0, 0, last))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		return s
	}
	cli, mid := mk(1), mk(2)
	backAddr := tcpip.IP4(10, 0, 0, 3)

	srv, err := NewUnixServer(mid, Config{
		ListenPort: 8080, Target: backAddr, TargetPort: backendPort,
		Secure: false, BackendAttempts: 4, BackendRetryDelay: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	// The backend stack does not exist yet; bring it up after the first
	// attempt has had time to fail (SYNs into the void time out at 5s —
	// so start it while attempt 1 is still in flight; the connect's own
	// retransmissions then reach the fresh stack).
	go func() {
		time.Sleep(500 * time.Millisecond)
		back := mk(3)
		startEchoBackend(t, back)
	}()

	tcb, err := cli.Connect(mid.Addr(), 8080, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	tcb.Write([]byte("late backend"))
	buf := make([]byte, 64)
	n, err := tcb.ReadDeadline(buf, time.Now().Add(15*time.Second))
	if err != nil {
		t.Fatalf("read through redirector: %v", err)
	}
	if string(buf[:n]) != "late backend" {
		t.Errorf("got %q", buf[:n])
	}
	if srv.Stats().Accepted.Value() != 1 {
		t.Errorf("accepted = %d, want 1", srv.Stats().Accepted.Value())
	}
	if srv.Stats().BackendDown.Value() != 0 {
		t.Errorf("backend down = %d, want 0", srv.Stats().BackendDown.Value())
	}
}

// TestHalfClosePassThrough checks shutdown(SHUT_WR) propagation: the
// client sends its whole request and FINs, and the response must still
// come back through the redirector over the half-open connection.
func TestHalfClosePassThrough(t *testing.T) {
	cli, mid, back := world(t)

	// A request/response backend: read to EOF, then reply.
	l, err := back.Listen(backendPort, 4)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		conn, err := l.Accept(30 * time.Second)
		if err != nil {
			return
		}
		var req []byte
		buf := make([]byte, 4096)
		for {
			n, err := conn.ReadDeadline(buf, time.Now().Add(30*time.Second))
			req = append(req, buf[:n]...)
			if err != nil {
				break
			}
		}
		conn.Write(append([]byte("reply:"), req...))
		conn.Close()
	}()

	srv, err := NewUnixServer(mid, Config{
		ListenPort: 8080, Target: back.Addr(), TargetPort: backendPort,
		Secure: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	tcb, err := cli.Connect(mid.Addr(), 8080, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tcb.Write([]byte("request")); err != nil {
		t.Fatal(err)
	}
	if err := tcb.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	// The old pump would have torn down both directions on the client's
	// EOF and this read would see a dead connection.
	var resp []byte
	buf := make([]byte, 64)
	for {
		n, err := tcb.ReadDeadline(buf, time.Now().Add(10*time.Second))
		resp = append(resp, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("response read: %v", err)
		}
	}
	if string(resp) != "reply:request" {
		t.Errorf("response = %q", resp)
	}
	if hc := srv.Stats().HalfCloses.Value(); hc == 0 {
		t.Error("no half-closes counted; EOF was propagated by full teardown")
	}
}

// TestSecureHalfClosePassThrough runs the same request/EOF/response
// pattern through the issl layer: the client's close_notify must reach
// the backend as EOF without killing the response path.
func TestSecureHalfClosePassThrough(t *testing.T) {
	cli, mid, back := world(t)

	l, err := back.Listen(backendPort, 4)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		conn, err := l.Accept(30 * time.Second)
		if err != nil {
			return
		}
		var req []byte
		buf := make([]byte, 4096)
		for {
			n, err := conn.ReadDeadline(buf, time.Now().Add(30*time.Second))
			req = append(req, buf[:n]...)
			if err != nil {
				break
			}
		}
		conn.Write(append([]byte("reply:"), req...))
		conn.Close()
	}()

	srv, err := NewUnixServer(mid, Config{
		ListenPort: 443, Target: back.Addr(), TargetPort: backendPort,
		Secure: true, ServerKey: rsaKey(t), RandSeed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	tcb, err := cli.Connect(mid.Addr(), 443, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := issl.BindClient(tcb, issl.Config{Profile: issl.ProfileUnix, Rand: prng.NewXorshift(31)})
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}
	if _, err := sc.Write([]byte("request")); err != nil {
		t.Fatal(err)
	}
	if err := sc.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	var resp []byte
	buf := make([]byte, 64)
	sc.SetReadDeadline(time.Now().Add(10 * time.Second))
	for {
		n, err := sc.Read(buf)
		resp = append(resp, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("response read: %v", err)
		}
	}
	if string(resp) != "reply:request" {
		t.Errorf("response = %q", resp)
	}
}

// TestUnixSessionResumption wires a SessionCache into the Unix server:
// a returning client offering its session must land the abbreviated
// handshake end to end through the redirector.
func TestUnixSessionResumption(t *testing.T) {
	cli, mid, back := world(t)
	startEchoBackend(t, back)
	cache := issl.NewSessionCache(16)
	srv, err := NewUnixServer(mid, Config{
		ListenPort: 443, Target: back.Addr(), TargetPort: backendPort,
		Secure: true, ServerKey: rsaKey(t), RandSeed: 11, SessionCache: cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	dial := func(resume *issl.Session) *issl.Conn {
		tcb, err := cli.Connect(mid.Addr(), 443, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := issl.BindClient(tcb, issl.Config{
			Profile: issl.ProfileUnix, Rand: prng.NewXorshift(41), Resume: resume})
		if err != nil {
			t.Fatalf("handshake: %v", err)
		}
		t.Cleanup(func() { sc.Close(); tcb.Close() })
		return sc
	}
	first := dial(nil)
	if first.Resumed() {
		t.Fatal("first handshake resumed")
	}
	sess := first.Session()
	if sess == nil {
		t.Fatal("server cache wired but no session issued")
	}
	if cache.Len() != 1 {
		t.Fatalf("cache len = %d", cache.Len())
	}
	second := dial(sess)
	if !second.Resumed() {
		t.Error("returning client did not get the abbreviated handshake")
	}
	second.Write([]byte("resumed through redirector"))
	buf := make([]byte, 64)
	second.SetReadDeadline(time.Now().Add(5 * time.Second))
	var got []byte
	for len(got) < 26 {
		n, err := second.Read(buf)
		if err != nil {
			t.Fatalf("echo read: %v", err)
		}
		got = append(got, buf[:n]...)
	}
	if string(got) != "resumed through redirector" {
		t.Errorf("echo = %q", got)
	}
}

// TestUnixAdmissionControl fills the server to MaxInflight and checks
// the next connection is refused gracefully (clean EOF, not a hang),
// counted in refused_admission, and that capacity freed by a closing
// connection is reusable.
func TestUnixAdmissionControl(t *testing.T) {
	cli, mid, back := world(t)
	startEchoBackend(t, back)
	srv, err := NewUnixServer(mid, Config{
		ListenPort: 8080, Target: back.Addr(), TargetPort: backendPort,
		Secure: false, MaxInflight: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	// Occupy both admission units with live, verified connections.
	var held []*tcpip.TCB
	for i := 0; i < 2; i++ {
		tcb, err := cli.Connect(mid.Addr(), 8080, 5*time.Second)
		if err != nil {
			t.Fatalf("conn %d: %v", i, err)
		}
		tcb.Write([]byte{byte(i)})
		buf := make([]byte, 4)
		if _, err := tcb.ReadDeadline(buf, time.Now().Add(5*time.Second)); err != nil {
			t.Fatalf("conn %d echo: %v", i, err)
		}
		held = append(held, tcb)
	}
	if got := srv.Stats().Inflight.Value(); got != 2 {
		t.Fatalf("inflight = %d, want 2", got)
	}

	// Third connection: TCP-accepted then immediately FIN'd by admission
	// control; a read sees clean EOF.
	over, err := cli.Connect(mid.Addr(), 8080, 5*time.Second)
	if err != nil {
		t.Fatalf("over-limit connect: %v", err)
	}
	buf := make([]byte, 4)
	if _, err := over.ReadDeadline(buf, time.Now().Add(5*time.Second)); err != io.EOF {
		t.Errorf("over-limit read err = %v, want EOF", err)
	}
	if got := srv.Stats().AdmissionRefused.Value(); got != 1 {
		t.Errorf("refused_admission = %d, want 1", got)
	}
	if got := srv.Stats().Refused.Value(); got != 1 {
		t.Errorf("refused = %d, want 1", got)
	}

	// Free one unit; a new client must get through.
	held[0].Close()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Inflight.Value() >= 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	late, err := cli.Connect(mid.Addr(), 8080, 5*time.Second)
	if err != nil {
		t.Fatalf("post-release connect: %v", err)
	}
	late.Write([]byte("ok"))
	if _, err := late.ReadDeadline(buf, time.Now().Add(5*time.Second)); err != nil {
		t.Errorf("post-release echo: %v", err)
	}
}

// TestUnixAdmissionReopensAfterDrain is the full-drain companion to
// TestUnixAdmissionControl: with MaxInflight=1 the server alternates
// saturated/empty, and admission must reopen completely every time the
// single inflight unit drains — refusal is load shedding, not a latch.
func TestUnixAdmissionReopensAfterDrain(t *testing.T) {
	cli, mid, back := world(t)
	startEchoBackend(t, back)
	srv, err := NewUnixServer(mid, Config{
		ListenPort: 8080, Target: back.Addr(), TargetPort: backendPort,
		Secure: false, MaxInflight: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	const rounds = 3
	for round := 0; round < rounds; round++ {
		// Saturate the single unit with a verified live connection.
		held, err := cli.Connect(mid.Addr(), 8080, 5*time.Second)
		if err != nil {
			t.Fatalf("round %d connect: %v", round, err)
		}
		held.Write([]byte("x"))
		buf := make([]byte, 4)
		if _, err := held.ReadDeadline(buf, time.Now().Add(5*time.Second)); err != nil {
			t.Fatalf("round %d echo: %v", round, err)
		}

		// While saturated, the next arrival is shed with a clean FIN.
		over, err := cli.Connect(mid.Addr(), 8080, 5*time.Second)
		if err != nil {
			t.Fatalf("round %d over-limit connect: %v", round, err)
		}
		if _, err := over.ReadDeadline(buf, time.Now().Add(5*time.Second)); err != io.EOF {
			t.Errorf("round %d over-limit read err = %v, want EOF", round, err)
		}
		over.Close()
		if got := srv.Stats().AdmissionRefused.Value(); got != uint64(round+1) {
			t.Errorf("round %d refused_admission = %d, want %d", round, got, round+1)
		}

		// Drain fully and wait for the server to notice (bounded poll,
		// no fixed sleep: the proxy tears down asynchronously).
		held.Close()
		deadline := time.Now().Add(5 * time.Second)
		for srv.Stats().Inflight.Value() != 0 {
			if time.Now().After(deadline) {
				t.Fatalf("round %d: inflight stuck at %d after drain",
					round, srv.Stats().Inflight.Value())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// After the last drain the door must be fully open again.
	final, err := cli.Connect(mid.Addr(), 8080, 5*time.Second)
	if err != nil {
		t.Fatalf("post-drain connect: %v", err)
	}
	final.Write([]byte("again"))
	buf := make([]byte, 8)
	if _, err := final.ReadDeadline(buf, time.Now().Add(5*time.Second)); err != nil {
		t.Errorf("post-drain echo: %v", err)
	}
	if got := srv.Stats().AdmissionRefused.Value(); got != rounds {
		t.Errorf("final refused_admission = %d, want %d (reopen must not refuse)", got, rounds)
	}
}

// TestUnixGracefulDrain: Shutdown with a drain budget must let an
// inflight connection finish on its own terms — and count it in
// drained_conns — instead of aborting it the way Close(0) does.
func TestUnixGracefulDrain(t *testing.T) {
	cli, mid, back := world(t)
	startEchoBackend(t, back)
	srv, err := NewUnixServer(mid, Config{
		ListenPort: 8080, Target: back.Addr(), TargetPort: backendPort,
		Secure: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()

	// A live connection that stays open into the shutdown.
	tcb, err := cli.Connect(mid.Addr(), 8080, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	tcb.Write([]byte("hold"))
	buf := make([]byte, 8)
	if _, err := tcb.ReadDeadline(buf, time.Now().Add(5*time.Second)); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() { srv.Shutdown(10 * time.Second); close(done) }()
	// The listener closes first: new arrivals are refused while the
	// existing connection keeps working.
	time.Sleep(20 * time.Millisecond)
	tcb.Write([]byte("mid-drain"))
	echo := make([]byte, 16)
	got := 0
	for got < 9 {
		n, err := tcb.ReadDeadline(echo[got:], time.Now().Add(5*time.Second))
		if err != nil {
			t.Fatalf("echo during drain: %v", err)
		}
		got += n
	}
	// Client finishes voluntarily; Shutdown must notice and return well
	// before its budget.
	tcb.Close()
	select {
	case <-done:
	case <-time.After(8 * time.Second):
		t.Fatal("Shutdown did not return after the last connection drained")
	}
	if v := srv.Stats().DrainedConns.Value(); v != 1 {
		t.Errorf("drained_conns = %d, want 1", v)
	}
}

// TestEmbeddedCloseWaitsForHandlers is the goroutine-accounting fix:
// Close must not return while serveSlot helper goroutines are still
// running, so soaks can assert a zero-leak baseline.
func TestEmbeddedCloseWaitsForHandlers(t *testing.T) {
	cli, mid, back := world(t)
	startEchoBackend(t, back)
	srv, err := NewEmbeddedServer(dcsock.NewEnv(mid), Config{
		ListenPort: 443, Target: back.Addr(), TargetPort: backendPort,
		Secure: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	runReturned := make(chan struct{})
	go func() { srv.Run(); close(runReturned) }()

	// Park a connection mid-transfer so a handler goroutine is live
	// (retry-dial replaces the fixed slot-startup sleep).
	tcb := connectRetry(t, cli, mid.Addr(), 443)
	tcb.Write([]byte("hold"))
	buf := make([]byte, 8)
	if _, err := tcb.ReadDeadline(buf, time.Now().Add(5*time.Second)); err != nil {
		t.Fatal(err)
	}

	closed := make(chan struct{})
	go func() { srv.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return")
	}
	// Close returning implies the scheduler loop AND all helpers exited.
	select {
	case <-runReturned:
	case <-time.After(2 * time.Second):
		t.Error("Run still live after Close returned")
	}
	// Idempotent.
	srv.Close()
}

// TestEmbeddedCloseWithoutRun: Close on a server whose Run was never
// started must not hang waiting for a scheduler that never existed.
func TestEmbeddedCloseWithoutRun(t *testing.T) {
	_, mid, _ := world(t)
	srv, err := NewEmbeddedServer(dcsock.NewEnv(mid), Config{Secure: false})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { srv.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close hung without Run")
	}
}
