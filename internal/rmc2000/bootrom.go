package rmc2000

import (
	"errors"
	"fmt"

	"repro/internal/rasm"
)

// Programming-port boot ROM. The real kit "includes a 10-pin
// programming port to interface with the development environment"
// (§4); here the same role is played by a small boot loader written in
// Rabbit assembly, resident high in root memory, that speaks a framed
// download protocol over serial port D:
//
//	'L' addrLo addrHi lenLo lenHi payload... checksum   -> ACK/NAK
//	'G' addrLo addrHi                                   -> ACK, then jump
//
// checksum is the 8-bit sum of the payload bytes. The host never
// touches memory directly — every byte of the downloaded image flows
// through the simulated CPU executing the loader, exactly like a real
// programming cable session.

// Protocol bytes.
const (
	bootCmdLoad = 'L'
	bootCmdGo   = 'G'
	BootACK     = 0x06
	BootNAK     = 0x15
)

// BootROMOrigin is where the loader lives (clear of user images at 0,
// below the stack segment).
const BootROMOrigin = 0xC000

// progPort is the serial port index used as the programming port (D).
const progPort = 3

const bootROMSource = `
SDDR equ 0xF0          ; serial port D data
SDSR equ 0xF3          ; serial port D status

        org 0xC000
boot:
        call brecv
        cp 'L'
        jp z, bload
        cp 'G'
        jp z, bgo
        ld a, 0x15      ; NAK unknown commands
        ioi ld (SDDR), a
        jp boot

bload:
        call brecv
        ld l, a
        call brecv
        ld h, a         ; HL = destination address
        call brecv
        ld c, a
        call brecv
        ld b, a         ; BC = length
        ld d, 0         ; running checksum
bload_lp:
        ld a, b
        or c
        jp z, bload_ck
        call brecv
        ld (hl), a
        ld e, a
        ld a, d
        add a, e
        ld d, a
        inc hl
        dec bc
        jp bload_lp
bload_ck:
        call brecv      ; expected checksum
        cp d
        jp nz, bnak
        ld a, 0x06      ; ACK
        ioi ld (SDDR), a
        jp boot
bnak:
        ld a, 0x15
        ioi ld (SDDR), a
        jp boot

bgo:
        call brecv
        ld l, a
        call brecv
        ld h, a
        ld a, 0x06
        ioi ld (SDDR), a
        jp (hl)

; brecv: poll until a byte arrives on the programming port, return in A.
brecv:
        ioi ld a, (SDSR)
        and 0x80
        jp z, brecv
        ioi ld a, (SDDR)
        ret
`

// Boot errors.
var (
	ErrBootNAK     = errors.New("rmc2000: boot loader NAKed the frame")
	ErrBootTimeout = errors.New("rmc2000: boot loader did not answer")
)

// InstallBootROM assembles the loader, places it at BootROMOrigin, and
// points the CPU at it.
func (b *Board) InstallBootROM() error {
	prog, err := rasm.Assemble(bootROMSource)
	if err != nil {
		return fmt.Errorf("rmc2000: boot ROM: %w", err)
	}
	b.CPU.Mem.LoadPhysical(uint32(prog.Origin), prog.Code)
	b.CPU.PC = prog.Origin
	b.CPU.SP = 0xDFF0
	return nil
}

// waitBootReply runs the CPU until the loader transmits one byte on
// the programming port.
func (b *Board) waitBootReply(budget uint64) (byte, error) {
	start := b.CPU.Cycles
	for b.CPU.Cycles-start < budget {
		for i := 0; i < 256; i++ {
			if err := b.Step(); err != nil {
				return 0, err
			}
		}
		if out := b.Serial[progPort].HostRecv(); len(out) > 0 {
			return out[len(out)-1], nil
		}
	}
	return 0, ErrBootTimeout
}

// Download sends one image chunk through the boot loader. The image
// must fit a 16-bit length.
func (b *Board) Download(addr uint16, image []byte) error {
	if len(image) > 0xffff {
		return fmt.Errorf("rmc2000: image of %d bytes exceeds one frame", len(image))
	}
	frame := []byte{bootCmdLoad, byte(addr), byte(addr >> 8),
		byte(len(image)), byte(len(image) >> 8)}
	frame = append(frame, image...)
	var sum byte
	for _, v := range image {
		sum += v
	}
	frame = append(frame, sum)
	b.Serial[progPort].HostSend(frame...)
	reply, err := b.waitBootReply(uint64(len(frame))*2000 + 1_000_000)
	if err != nil {
		return err
	}
	if reply != BootACK {
		return ErrBootNAK
	}
	return nil
}

// BootGo commands the loader to jump to the downloaded program.
func (b *Board) BootGo(entry uint16) error {
	b.Serial[progPort].HostSend(bootCmdGo, byte(entry), byte(entry>>8))
	reply, err := b.waitBootReply(1_000_000)
	if err != nil {
		return err
	}
	if reply != BootACK {
		return ErrBootNAK
	}
	return nil
}

// ErrBootOverlap reports an image span that would overwrite the
// resident boot loader mid-download.
var ErrBootOverlap = errors.New("rmc2000: image span overlaps the boot ROM")

// bootROMEnd bounds the loader's resident footprint.
const bootROMEnd = BootROMOrigin + 0x200

// Program is the whole development-kit flow: install the ROM, download
// the image, and start it. The download is sparse — zero runs in the
// image (e.g. the gap between root data and the xmem window) are
// skipped, like a real loader transferring sections rather than a flat
// file — which also keeps large images from sweeping over the resident
// loader. A non-zero span that would land on the loader is an error.
func (b *Board) Program(entry uint16, image []byte) error {
	if err := b.InstallBootROM(); err != nil {
		return err
	}
	const maxChunk = 0x4000
	i := 0
	for i < len(image) {
		// Skip zero runs of 64+ bytes; short runs ride along.
		if image[i] == 0 {
			j := i
			for j < len(image) && image[j] == 0 {
				j++
			}
			if j-i >= 64 || j == len(image) {
				i = j
				continue
			}
		}
		// Collect a span up to the next long zero run.
		j := i
		zeros := 0
		for j < len(image) && j-i < maxChunk {
			if image[j] == 0 {
				zeros++
				if zeros >= 64 {
					j -= zeros - 1
					break
				}
			} else {
				zeros = 0
			}
			j++
		}
		addr := uint16(i)
		span := image[i:j]
		if int(addr) < bootROMEnd && int(addr)+len(span) > BootROMOrigin {
			return fmt.Errorf("%w: span %04x..%04x", ErrBootOverlap, addr, int(addr)+len(span))
		}
		if err := b.Download(addr, span); err != nil {
			return fmt.Errorf("span at %04x: %w", addr, err)
		}
		i = j
	}
	return b.BootGo(entry)
}
