package rmc2000

import (
	"errors"
	"testing"

	"repro/internal/dcc"
	"repro/internal/rasm"
)

func TestBootROMDownloadsAndRuns(t *testing.T) {
	b := newBoard(t)
	// A user program that writes a signature and halts.
	prog, err := rasm.Assemble(`
        org 0
        ld a, 0xA5
        ld (0x4000), a
        ld a, 0x5A
        ld (0x4001), a
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Program(0, prog.Code); err != nil {
		t.Fatalf("program: %v", err)
	}
	if err := b.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if !b.CPU.Halted {
		t.Fatal("user program did not run to HALT")
	}
	if b.CPU.Mem.Read(0x4000) != 0xA5 || b.CPU.Mem.Read(0x4001) != 0x5A {
		t.Errorf("signature = %02x %02x", b.CPU.Mem.Read(0x4000), b.CPU.Mem.Read(0x4001))
	}
}

func TestBootROMChecksumRejectsCorruption(t *testing.T) {
	b := newBoard(t)
	if err := b.InstallBootROM(); err != nil {
		t.Fatal(err)
	}
	// Hand-build a frame with a wrong checksum.
	image := []byte{0x76} // HALT
	frame := []byte{bootCmdLoad, 0x00, 0x00, 0x01, 0x00, image[0], image[0] + 1}
	b.Serial[progPort].HostSend(frame...)
	reply, err := b.waitBootReply(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if reply != BootNAK {
		t.Errorf("reply = %#x, want NAK", reply)
	}
	// The loader survives and accepts a good frame afterward.
	if err := b.Download(0, image); err != nil {
		t.Fatalf("good frame after NAK: %v", err)
	}
}

func TestBootROMUnknownCommandNAKs(t *testing.T) {
	b := newBoard(t)
	if err := b.InstallBootROM(); err != nil {
		t.Fatal(err)
	}
	b.Serial[progPort].HostSend('Z')
	reply, err := b.waitBootReply(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if reply != BootNAK {
		t.Errorf("reply = %#x, want NAK", reply)
	}
}

func TestBootROMMultipleChunks(t *testing.T) {
	b := newBoard(t)
	if err := b.InstallBootROM(); err != nil {
		t.Fatal(err)
	}
	// Two chunks: code at 0, data at 0x4100; the code copies the data
	// byte and halts.
	code, err := rasm.Assemble(`
        org 0
        ld a, (0x4100)
        ld (0x4200), a
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Download(0, code.Code); err != nil {
		t.Fatal(err)
	}
	if err := b.Download(0x4100, []byte{0x77}); err != nil {
		t.Fatal(err)
	}
	if err := b.BootGo(0); err != nil {
		t.Fatal(err)
	}
	if err := b.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if b.CPU.Mem.Read(0x4200) != 0x77 {
		t.Errorf("copied byte = %02x", b.CPU.Mem.Read(0x4200))
	}
}

func TestBootROMTimeoutWhenNotInstalled(t *testing.T) {
	b := newBoard(t)
	// Load HALT so the CPU does nothing; no boot ROM to answer.
	b.LoadProgram(0, []byte{0x76})
	if err := b.Download(0, []byte{0x00}); !errors.Is(err, ErrBootTimeout) {
		t.Errorf("err = %v, want timeout", err)
	}
}

// TestBootROMLoadsCompiledProgram pushes a dcc-compiled image through
// the programming port — the full development-kit workflow.
func TestBootROMLoadsCompiledProgram(t *testing.T) {
	b := newBoard(t)
	// The compiled image expects to run at 0 with its own stack setup.
	progSrc := `
int out;
void main() {
    int i;
    out = 0;
    for (i = 1; i <= 10; i++) out += i;
}`
	// Compile via the dcc package through its public API — but
	// importing dcc here creates an import cycle risk (dcc -> rabbit,
	// rmc2000 -> rabbit; no cycle actually). Use it.
	comp := mustCompile(t, progSrc)
	if err := b.Program(0, comp.code); err != nil {
		t.Fatalf("program: %v", err)
	}
	if err := b.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if !b.CPU.Halted {
		t.Fatal("compiled program did not halt")
	}
	got := b.CPU.Mem.Read16(comp.outAddr)
	if got != 55 {
		t.Errorf("out = %d, want 55", got)
	}
}

// mustCompile compiles Dynamic C source and returns the image plus the
// address of the `out` global.
type compiled struct {
	code    []byte
	outAddr uint16
}

func mustCompile(t *testing.T, src string) compiled {
	t.Helper()
	comp, err := dcc.Compile(src, dcc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	addr, ok := comp.Symbol("out")
	if !ok {
		t.Fatal("no `out` global")
	}
	return compiled{code: comp.Program.Code, outAddr: addr}
}

// TestBootROMSparseXmemImage programs an image whose data section sits
// in the xmem window at 0xE000 — the gap in the middle must be skipped
// so the download does not sweep over the resident loader.
func TestBootROMSparseXmemImage(t *testing.T) {
	b := newBoard(t)
	src := `
int out;
char buf[32];
void main() {
    int i;
    for (i = 0; i < 32; i++) buf[i] = i;
    out = buf[31];
}`
	comp, err := dcc.Compile(src, dcc.Options{}) // xmem placement: big sparse image
	if err != nil {
		t.Fatal(err)
	}
	if comp.Program.Size() < 0xE000 {
		t.Fatalf("expected a sparse image spanning the xmem window, got %d bytes", comp.Program.Size())
	}
	if err := b.Program(0, comp.Program.Code); err != nil {
		t.Fatalf("program: %v", err)
	}
	if err := b.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	addr, _ := comp.Symbol("out")
	if got := b.CPU.Mem.Read16(addr); got != 31 {
		t.Errorf("out = %d, want 31", got)
	}
}

// TestBootROMRefusesOverlap: a span landing on the loader is an error,
// not a crash.
func TestBootROMRefusesOverlap(t *testing.T) {
	b := newBoard(t)
	img := make([]byte, BootROMOrigin+16)
	for i := range img {
		img[i] = 0xAA // no zero runs: forces one giant span set
	}
	err := b.Program(0, img)
	if !errors.Is(err, ErrBootOverlap) {
		t.Errorf("err = %v, want overlap", err)
	}
}
