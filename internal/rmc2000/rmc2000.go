// Package rmc2000 models the RMC2000 TCP/IP Development Kit board
// (§4): a Rabbit 2000 CPU with 512 KB flash and 128 KB SRAM, four
// serial ports (port A doubles as the programming/debug channel the
// paper used, §5.1), a timer, and a 10Base-T network interface that
// attaches to the netsim wire.
//
// I/O register map (16-bit internal I/O addresses, Rabbit-style):
//
//	0x12        XPC bank register (shared with internal/dcc)
//	0x14/0x15   timer: latched milliseconds-since-reset (lo/hi)
//	0x98        I0CR: external interrupt 0 control (0x2B enables, as
//	            in the paper's WrPortI(I0CR, NULL, 0x2B) example)
//	0xC0        SADR: serial port A data
//	0xC3        SASR: serial port A status (bit7 rx-ready, bit3 tx-busy)
//	0xC4        SACR: serial port A control (bit0 rx-interrupt enable)
//	0xD0..0xF4  serial ports B, C, D (same layout, +0x10 per port)
//	0x80        NIC data window
//	0x81        NIC command/status
package rmc2000

import (
	"sync"

	"repro/internal/netsim"
	"repro/internal/rabbit"
)

// Board memory geometry.
const (
	FlashSize = 512 * 1024
	SRAMSize  = 128 * 1024
	// SRAMBase is where the 128K SRAM sits in physical space (/CS1).
	SRAMBase = 0x80000
)

// I/O port numbers.
const (
	PortXPC     = 0x12
	PortTimerLo = 0x14
	PortTimerHi = 0x15
	PortI0CR    = 0x98
	PortSADR    = 0xC0
	PortSASR    = 0xC3
	PortSACR    = 0xC4
	PortNICData = 0x80
	PortNICCmd  = 0x81
)

// Serial status bits.
const (
	SASRRxReady = 0x80
	SASRTxBusy  = 0x08
)

// Board is one RMC2000 with its devices.
type Board struct {
	CPU *rabbit.CPU

	Serial [4]*Serial
	NIC    *NIC
	timer  *timer

	mu   sync.Mutex
	i0cr uint8 // external interrupt 0 control register
	wdt  watchdog
}

// New creates a board. If hub is non-nil the NIC attaches to it with
// the given MAC.
func New(hub *netsim.Hub, mac netsim.MAC) (*Board, error) {
	b := &Board{CPU: rabbit.New()}
	for i := range b.Serial {
		b.Serial[i] = newSerial(b, i)
	}
	b.timer = &timer{}
	if hub != nil {
		port, err := hub.Attach(mac)
		if err != nil {
			return nil, err
		}
		b.NIC = newNIC(port)
	}
	b.CPU.IO = busAdapter{b}
	return b, nil
}

// LoadProgram writes an image through the programming port (flash
// protection bypassed) and points the CPU at its origin.
func (b *Board) LoadProgram(origin uint16, image []byte) {
	b.CPU.Mem.LoadPhysical(uint32(origin), image)
	b.CPU.PC = origin
	b.CPU.SP = 0xDFF0
}

// ProtectFlash enables flash write protection over the low 512 KB.
func (b *Board) ProtectFlash(on bool) {
	if on {
		b.CPU.Mem.FlashEnd = FlashSize
	} else {
		b.CPU.Mem.FlashEnd = 0
	}
}

// Step runs one CPU instruction and services board devices.
func (b *Board) Step() error {
	b.timer.tick(b.CPU.Cycles)
	b.wdtCheck()
	return b.CPU.Step()
}

// Run executes until HALT or the cycle budget is exhausted, servicing
// devices as it goes.
func (b *Board) Run(maxCycles uint64) error {
	start := b.CPU.Cycles
	for !b.CPU.Halted && b.CPU.Cycles-start < maxCycles {
		if err := b.Step(); err != nil {
			return err
		}
	}
	return nil
}

// busAdapter routes I/O port accesses to devices.
type busAdapter struct{ b *Board }

func (a busAdapter) In(port uint16) uint8 {
	b := a.b
	switch {
	case port == PortXPC:
		return b.CPU.Mem.XPC
	case port == PortTimerLo:
		return uint8(b.timer.latched)
	case port == PortTimerHi:
		return uint8(b.timer.latched >> 8)
	case port == PortI0CR:
		return b.readI0CR()
	case port >= PortSADR && port < PortSADR+0x40:
		idx := int(port-PortSADR) / 0x10
		reg := (port - PortSADR) % 0x10
		return b.Serial[idx].in(reg)
	case port == PortNICData && b.NIC != nil:
		return b.NIC.readData()
	case port == PortNICCmd && b.NIC != nil:
		return b.NIC.status()
	}
	return 0xff
}

func (a busAdapter) Out(port uint16, v uint8) {
	b := a.b
	switch {
	case port == PortXPC:
		b.CPU.Mem.XPC = v
	case port == PortTimerLo:
		b.timer.latch()
	case port == PortI0CR:
		b.setI0CR(v)
	case port == PortWDTCR:
		b.wdtWrite(v)
	case port >= PortSADR && port < PortSADR+0x40:
		idx := int(port-PortSADR) / 0x10
		reg := (port - PortSADR) % 0x10
		b.Serial[idx].out(reg, v)
	case port == PortNICData && b.NIC != nil:
		b.NIC.writeData(v)
	case port == PortNICCmd && b.NIC != nil:
		b.NIC.command(v)
	}
}

// readI0CR/setI0CR access the external interrupt 0 control register
// (paper example: 0x2B enables, 0x00 disables).
func (b *Board) readI0CR() uint8 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.i0cr
}

func (b *Board) setI0CR(v uint8) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.i0cr = v
}

// TriggerExternalInt asserts external interrupt 0 if I0CR enables it.
func (b *Board) TriggerExternalInt() {
	if b.readI0CR() != 0 {
		b.CPU.RaiseInt()
	}
}

// SetIntVector models SetVectExtern2000: installs the ISR address.
func (b *Board) SetIntVector(addr uint16) { b.CPU.IntVector = addr }

// --- timer ---------------------------------------------------------------------

// timer converts CPU cycles to milliseconds at the 30 MHz part clock
// and latches a 16-bit snapshot when the low byte port is written.
type timer struct {
	ms      uint64
	latched uint16
}

const cyclesPerMs = 30000 // 30 MHz

func (t *timer) tick(cycles uint64) { t.ms = cycles / cyclesPerMs }
func (t *timer) latch()             { t.latched = uint16(t.ms) }

// --- serial port ------------------------------------------------------------------

// Serial is one UART. The host side (the developer's PC, or the test)
// talks through HostSend/HostRecv; the CPU side uses the SADR/SASR/
// SACR registers. With the rx interrupt enabled (SACR bit 0), an
// incoming host byte raises the external interrupt — the paper's §5.1
// debug channel configuration.
type Serial struct {
	board *Board
	index int
	mu    sync.Mutex
	rx    []byte // host -> CPU
	tx    []byte // CPU -> host
	sacr  uint8
}

func newSerial(b *Board, idx int) *Serial {
	return &Serial{board: b, index: idx}
}

// HostSend queues a byte from the host toward the CPU, raising the rx
// interrupt when enabled.
func (s *Serial) HostSend(data ...byte) {
	s.mu.Lock()
	s.rx = append(s.rx, data...)
	intOn := s.sacr&0x01 != 0
	s.mu.Unlock()
	if intOn {
		s.board.CPU.RaiseInt()
	}
}

// HostRecv drains everything the CPU transmitted.
func (s *Serial) HostRecv() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.tx
	s.tx = nil
	return out
}

func (s *Serial) in(reg uint16) uint8 {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch reg {
	case 0: // SADR: data
		if len(s.rx) == 0 {
			return 0
		}
		v := s.rx[0]
		s.rx = s.rx[1:]
		return v
	case 3: // SASR: status
		var st uint8
		if len(s.rx) > 0 {
			st |= SASRRxReady
		}
		// tx never busy in the model
		return st
	case 4:
		return s.sacr
	}
	return 0xff
}

func (s *Serial) out(reg uint16, v uint8) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch reg {
	case 0: // SADR: transmit
		s.tx = append(s.tx, v)
	case 4: // SACR: control
		s.sacr = v
	}
}

// --- NIC -----------------------------------------------------------------------------

// NIC is a minimal packet interface bridging the CPU to the netsim
// wire: the CPU stages outgoing bytes through the data window and
// issues a send command; received frames queue for window reads. The
// kit's TCP/IP stack itself ships as a host-side library (internal/
// dcsock), like the precompiled libraries of the real kit.
type NIC struct {
	port  *netsim.Port
	mu    sync.Mutex
	txBuf []byte
	rxBuf []byte
}

// NIC commands written to PortNICCmd.
const (
	NICCmdSend  = 0x01 // transmit staged bytes as one broadcast frame
	NICCmdClear = 0x02 // drop staged bytes
	NICCmdPoll  = 0x03 // pull the next received frame into the window
)

func newNIC(port *netsim.Port) *NIC {
	n := &NIC{port: port}
	return n
}

// Port exposes the underlying netsim attachment.
func (n *NIC) Port() *netsim.Port { return n.port }

func (n *NIC) writeData(v uint8) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.txBuf = append(n.txBuf, v)
}

func (n *NIC) readData() uint8 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.rxBuf) == 0 {
		return 0
	}
	v := n.rxBuf[0]
	n.rxBuf = n.rxBuf[1:]
	return v
}

func (n *NIC) status() uint8 {
	n.mu.Lock()
	defer n.mu.Unlock()
	var st uint8
	if len(n.rxBuf) > 0 {
		st |= 0x80
	}
	return st
}

func (n *NIC) command(v uint8) {
	switch v {
	case NICCmdSend:
		n.mu.Lock()
		payload := n.txBuf
		n.txBuf = nil
		n.mu.Unlock()
		n.port.Send(netsim.Frame{Dst: netsim.Broadcast, EtherType: netsim.EtherTypeIPv4, Payload: payload})
	case NICCmdClear:
		n.mu.Lock()
		n.txBuf = nil
		n.mu.Unlock()
	case NICCmdPoll:
		select {
		case f := <-n.port.Recv():
			n.mu.Lock()
			n.rxBuf = append(n.rxBuf, f.Payload...)
			n.mu.Unlock()
		default:
		}
	}
}
