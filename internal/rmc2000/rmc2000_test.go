package rmc2000

import (
	"bytes"
	"testing"

	"repro/internal/netsim"
	"repro/internal/rasm"
)

func loadAsm(t *testing.T, b *Board, src string) *rasm.Program {
	t.Helper()
	p, err := rasm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	b.LoadProgram(p.Origin, p.Code)
	return p
}

func newBoard(t *testing.T) *Board {
	t.Helper()
	b, err := New(nil, netsim.MAC{})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSerialPolledEcho(t *testing.T) {
	b := newBoard(t)
	// Poll SASR until rx-ready, read SADR, write back +1, repeat 3x.
	loadAsm(t, b, `
SADR equ 0xC0
SASR equ 0xC3
        org 0
        ld b, 3
next:   ioi ld a, (SASR)
        and 0x80
        jr z, next
        ioi ld a, (SADR)
        inc a
        ioi ld (SADR), a
        djnz next
        halt
`)
	b.Serial[0].HostSend('a', 'b', 'c')
	if err := b.Run(100000); err != nil {
		t.Fatal(err)
	}
	if got := b.Serial[0].HostRecv(); !bytes.Equal(got, []byte("bcd")) {
		t.Errorf("serial echo = %q", got)
	}
}

// TestE8SerialInterrupt reproduces §5.1: configure serial port A to
// interrupt on input, register an ISR via the vector, and have the ISR
// answer a status query — the paper's debug channel.
func TestE8SerialInterrupt(t *testing.T) {
	b := newBoard(t)
	loadAsm(t, b, `
SADR equ 0xC0
SACR equ 0xC4
I0CR equ 0x98
        org 0
        ; main(): set up the interrupt, then idle incrementing a counter
        ld a, 0x01
        ioi ld (SACR), a      ; enable serial rx interrupt
        ld a, 0x2B
        ioi ld (I0CR), a      ; WrPortI(I0CR, NULL, 0x2B)
        ei
idle:   ld hl, (counter)
        inc hl
        ld (counter), hl
        jr idle

        org 0x60
        ; my_isr: read the command byte, reply with a status message
isr:    ioi ld a, (SADR)
        cp 's'
        jr nz, isr_done
        ld a, 'O'
        ioi ld (SADR), a
        ld a, 'K'
        ioi ld (SADR), a
isr_done:
        ei
        reti

counter: ds 2
`)
	b.SetIntVector(0x60)
	// Let main configure interrupts.
	for i := 0; i < 50; i++ {
		b.Step()
	}
	b.Serial[0].HostSend('s') // status query from the host
	for i := 0; i < 200; i++ {
		b.Step()
	}
	if got := b.Serial[0].HostRecv(); string(got) != "OK" {
		t.Errorf("ISR reply = %q, want OK", got)
	}
	// A second query works too (interrupts re-enabled by the ISR).
	b.Serial[0].HostSend('s')
	for i := 0; i < 200; i++ {
		b.Step()
	}
	if got := b.Serial[0].HostRecv(); string(got) != "OK" {
		t.Errorf("second ISR reply = %q", got)
	}
	// Unknown commands are ignored.
	b.Serial[0].HostSend('x')
	for i := 0; i < 200; i++ {
		b.Step()
	}
	if got := b.Serial[0].HostRecv(); len(got) != 0 {
		t.Errorf("unexpected reply to unknown command: %q", got)
	}
}

func TestSerialInterruptDisabled(t *testing.T) {
	b := newBoard(t)
	loadAsm(t, b, `
        org 0
        ei
loop:   jr loop
`)
	b.SetIntVector(0x60)
	// SACR bit 0 never set: HostSend must not interrupt.
	for i := 0; i < 20; i++ {
		b.Step()
	}
	b.Serial[0].HostSend('s')
	for i := 0; i < 100; i++ {
		b.Step()
	}
	if b.CPU.PC >= 0x60 && b.CPU.PC < 0x70 {
		t.Error("ISR entered without rx interrupt enabled")
	}
}

func TestTimerAdvances(t *testing.T) {
	b := newBoard(t)
	prog := loadAsm(t, b, `
TLO equ 0x14
THI equ 0x15
        org 0
        ioi ld (TLO), a       ; latch (value ignored)
        ioi ld a, (TLO)
        ld (first), a
        ld bc, 40000
wait:   dec bc
        ld a, b
        or c
        jr nz, wait
        ld bc, 40000
wait2:  dec bc
        ld a, b
        or c
        jr nz, wait2
        ioi ld (TLO), a
        ioi ld a, (TLO)
        ld (second), a
        halt
first:  ds 1
second: ds 1
`)
	if err := b.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	f := b.CPU.Mem.Read(prog.Symbols["first"])
	sec := b.CPU.Mem.Read(prog.Symbols["second"])
	if sec <= f {
		t.Errorf("timer did not advance: first=%d second=%d", f, sec)
	}
}

func TestFlashProtection(t *testing.T) {
	b := newBoard(t)
	loadAsm(t, b, `
        org 0
        ld a, 0x55
        ld (0x2000), a     ; inside flash region
        halt
`)
	b.ProtectFlash(true)
	if err := b.Run(1000); err != nil {
		t.Fatal(err)
	}
	if b.CPU.Mem.Phys[0x2000] == 0x55 {
		t.Error("flash write went through")
	}
	if b.CPU.Mem.IgnoredWrites == 0 {
		t.Error("ignored write not counted")
	}
}

func TestNICSendReceive(t *testing.T) {
	hub := netsim.NewHub()
	defer hub.Close()
	b, err := New(hub, netsim.MAC{2, 0, 0, 0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	peer, err := hub.Attach(netsim.MAC{2, 0, 0, 0, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	// CPU program: stage "hi" and send; then poll for a reply and read
	// two bytes into memory.
	prog := loadAsm(t, b, `
NICD equ 0x80
NICC equ 0x81
        org 0
        ld a, 'h'
        ioi ld (NICD), a
        ld a, 'i'
        ioi ld (NICD), a
        ld a, 0x01          ; send
        ioi ld (NICC), a
poll:   ld a, 0x03          ; poll rx
        ioi ld (NICC), a
        ioi ld a, (NICC)
        and 0x80
        jr z, poll
        ioi ld a, (NICD)
        ld (got), a
        ioi ld a, (NICD)
        ld (got+1), a
        halt
got:    ds 2
`)
	done := make(chan error, 1)
	go func() { done <- b.Run(50_000_000) }()
	// Host peer: wait for "hi", answer "yo".
	f := <-peer.Recv()
	if string(f.Payload) != "hi" {
		t.Errorf("board sent %q", f.Payload)
	}
	peer.Send(netsim.Frame{Dst: netsim.Broadcast, Payload: []byte("yo")})
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	addr := prog.Symbols["got"]
	if b.CPU.Mem.Read(addr) != 'y' || b.CPU.Mem.Read(addr+1) != 'o' {
		t.Errorf("board received %c%c", b.CPU.Mem.Read(addr), b.CPU.Mem.Read(addr+1))
	}
}

// TestWatchdogResetsWhenStarved: a program that arms the watchdog and
// then spins without hitting it gets reset; the reset count climbs and
// execution restarts at the reset vector.
func TestWatchdogResetsWhenStarved(t *testing.T) {
	b := newBoard(t)
	loadAsm(t, b, `
WDTCR equ 0x08
        org 0
        ld a, (0x4000)     ; boot-count cell: RAM survives resets
        inc a
        ld (0x4000), a
        ld a, 0x51         ; arm, 250ms
        ioi ld (WDTCR), a
spin:   jr spin            ; never hits the watchdog
`)
	// 250ms at 30MHz = 7.5M cycles; run far enough for 2 resets.
	for b.WatchdogResets() < 2 && b.CPU.Cycles < 40_000_000 {
		if err := b.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if b.WatchdogResets() < 2 {
		t.Fatalf("watchdog fired %d times in %d cycles", b.WatchdogResets(), b.CPU.Cycles)
	}
	// The boot counter incremented once per reset pass (RAM persisted).
	if boots := b.CPU.Mem.Read(0x4000); boots < 2 {
		t.Errorf("boot counter = %d", boots)
	}
}

// TestWatchdogSurvivesWhenKicked: the same structure with a hit in the
// loop never resets.
func TestWatchdogSurvivesWhenKicked(t *testing.T) {
	b := newBoard(t)
	loadAsm(t, b, `
WDTCR equ 0x08
        org 0
        ld a, 0x51
        ioi ld (WDTCR), a
loop:   ld a, 0x5A
        ioi ld (WDTCR), a  ; hit
        jr loop
`)
	for b.CPU.Cycles < 20_000_000 {
		if err := b.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if b.WatchdogResets() != 0 {
		t.Errorf("watchdog fired %d times despite kicks", b.WatchdogResets())
	}
	if !b.WatchdogArmed() {
		t.Error("watchdog not armed")
	}
}

func TestWatchdogDisable(t *testing.T) {
	b := newBoard(t)
	loadAsm(t, b, `
WDTCR equ 0x08
        org 0
        ld a, 0x51
        ioi ld (WDTCR), a
        ld a, 0x00
        ioi ld (WDTCR), a  ; disable
spin:   jr spin
`)
	for b.CPU.Cycles < 10_000_000 {
		if err := b.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if b.WatchdogResets() != 0 {
		t.Error("disabled watchdog fired")
	}
}
