package rmc2000

// Watchdog timer. The Rabbit 2000's WDT resets the part unless
// software periodically writes the restart code to WDTCR — the safety
// net behind the §5.1 behavior of "reset the application, possibly
// maintaining program state": on a watchdog reset, ordinary RAM state
// is suspect, and `protected` variables (internal/embedded) are what
// survives.
//
// Model: port 0x08 (WDTCR).
//
//	write 0x5A      hit the watchdog (restart the countdown)
//	write 0x51..53  select timeout: 0x51=250ms 0x52=500ms 0x53=1s and arm
//	write 0x00      disable (the simulator allows it; real parts resist)

// PortWDTCR is the watchdog control register port.
const PortWDTCR = 0x08

// Watchdog hit and period codes.
const (
	WDTHit     = 0x5A
	WDTArm250  = 0x51
	WDTArm500  = 0x52
	WDTArm1000 = 0x53
	WDTDisable = 0x00
)

type watchdog struct {
	enabled  bool
	periodCy uint64
	lastKick uint64
	resets   uint64
}

// WatchdogResets reports how many times the watchdog has fired.
func (b *Board) WatchdogResets() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.wdt.resets
}

// WatchdogArmed reports whether the watchdog is counting.
func (b *Board) WatchdogArmed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.wdt.enabled
}

// wdtWrite handles a WDTCR store.
func (b *Board) wdtWrite(v uint8) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch v {
	case WDTHit:
		b.wdt.lastKick = b.CPU.Cycles
	case WDTArm250:
		b.wdt.enabled = true
		b.wdt.periodCy = cyclesPerMs * 250
		b.wdt.lastKick = b.CPU.Cycles
	case WDTArm500:
		b.wdt.enabled = true
		b.wdt.periodCy = cyclesPerMs * 500
		b.wdt.lastKick = b.CPU.Cycles
	case WDTArm1000:
		b.wdt.enabled = true
		b.wdt.periodCy = cyclesPerMs * 1000
		b.wdt.lastKick = b.CPU.Cycles
	case WDTDisable:
		b.wdt.enabled = false
	}
}

// wdtCheck fires the reset when the countdown lapses. Called from Step.
func (b *Board) wdtCheck() {
	b.mu.Lock()
	fire := b.wdt.enabled && b.CPU.Cycles-b.wdt.lastKick > b.wdt.periodCy
	if fire {
		b.wdt.resets++
		b.wdt.lastKick = b.CPU.Cycles
	}
	b.mu.Unlock()
	if fire {
		// Hardware reset: PC to the reset vector, interrupts off,
		// watchdog stays armed (it is a hardware timer). RAM contents
		// survive — which is exactly why protected variables matter.
		cycles := b.CPU.Cycles
		instrs := b.CPU.Instructions
		b.CPU.Reset()
		b.CPU.Cycles = cycles // wall time continues across resets
		b.CPU.Instructions = instrs
	}
}
