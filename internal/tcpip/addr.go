// Package tcpip is a from-scratch TCP/IP stack running over the
// netsim wire. It provides what the RMC2000 development kit's software
// provided — "software implementing TCP/IP, UDP and ICMP" (§4) — and
// what the Unix workstation on the other end of the case study's
// connection had natively. Both the BSD-style socket API
// (internal/bsdsock) and the Dynamic-C-style API (internal/dcsock) sit
// on top of this one stack, which is the point of Fig. 2: the same
// transport, two very different programming interfaces.
package tcpip

import "fmt"

// Addr is an IPv4 address.
type Addr [4]byte

// String renders dotted-quad notation.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// IP4 builds an address from four octets.
func IP4(a, b, c, d byte) Addr { return Addr{a, b, c, d} }

// checksum computes the RFC 1071 ones'-complement sum over data.
func checksum(data []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// pseudoChecksum computes the TCP/UDP checksum including the IPv4
// pseudo-header. The pseudo-header words are folded in directly rather
// than materializing a header+segment buffer, so the per-segment cost
// is one pass over seg with no allocation or copy.
func pseudoChecksum(proto byte, src, dst Addr, seg []byte) uint16 {
	var sum uint32
	sum += uint32(src[0])<<8 | uint32(src[1])
	sum += uint32(src[2])<<8 | uint32(src[3])
	sum += uint32(dst[0])<<8 | uint32(dst[1])
	sum += uint32(dst[2])<<8 | uint32(dst[3])
	sum += uint32(proto)
	sum += uint32(len(seg))
	for i := 0; i+1 < len(seg); i += 2 {
		sum += uint32(seg[i])<<8 | uint32(seg[i+1])
	}
	if len(seg)%2 == 1 {
		sum += uint32(seg[len(seg)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

func be16(b []byte) uint16 { return uint16(b[0])<<8 | uint16(b[1]) }
func be32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
func put16(b []byte, v uint16) { b[0], b[1] = byte(v>>8), byte(v) }
func put32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}
