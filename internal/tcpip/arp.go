package tcpip

import (
	"repro/internal/netsim"
)

// ARP resolution: before an IP packet can leave the NIC the stack must
// map the destination IP to a MAC. Requests broadcast; replies unicast.
// Packets awaiting resolution queue per destination and flush when the
// reply arrives (or drop after the pending queue fills — the sender's
// transport retransmits).

const (
	arpRequest = 1
	arpReply   = 2

	maxPendingARP = 32
)

// marshalARP builds the 28-byte Ethernet/IPv4 ARP body.
func marshalARP(op uint16, senderMAC netsim.MAC, senderIP Addr, targetMAC netsim.MAC, targetIP Addr) []byte {
	b := make([]byte, 28)
	put16(b[0:], 1)      // hardware: Ethernet
	put16(b[2:], 0x0800) // protocol: IPv4
	b[4] = 6             // MAC length
	b[5] = 4             // IP length
	put16(b[6:], op)
	copy(b[8:14], senderMAC[:])
	copy(b[14:18], senderIP[:])
	copy(b[18:24], targetMAC[:])
	copy(b[24:28], targetIP[:])
	return b
}

type arpPacket struct {
	op        uint16
	senderMAC netsim.MAC
	senderIP  Addr
	targetIP  Addr
}

func parseARP(b []byte) (arpPacket, bool) {
	if len(b) < 28 || be16(b[0:]) != 1 || be16(b[2:]) != 0x0800 || b[4] != 6 || b[5] != 4 {
		return arpPacket{}, false
	}
	var p arpPacket
	p.op = be16(b[6:])
	copy(p.senderMAC[:], b[8:14])
	copy(p.senderIP[:], b[14:18])
	copy(p.targetIP[:], b[24:28])
	return p, true
}

// handleARP processes an incoming ARP frame. Called with s.mu held.
func (s *Stack) handleARP(body []byte) {
	p, ok := parseARP(body)
	if !ok {
		return
	}
	// Learn the sender mapping regardless of operation.
	s.arpCache[p.senderIP] = p.senderMAC
	// Flush any packets that were waiting on this mapping.
	if pend := s.arpPending[p.senderIP]; len(pend) > 0 {
		delete(s.arpPending, p.senderIP)
		for _, pkt := range pend {
			s.sendFrame(p.senderMAC, netsim.EtherTypeIPv4, pkt)
		}
	}
	if p.op == arpRequest && p.targetIP == s.ip {
		reply := marshalARP(arpReply, s.mac, s.ip, p.senderMAC, p.senderIP)
		s.sendFrame(p.senderMAC, netsim.EtherTypeARP, reply)
	}
}

// sendIP routes an IP packet: resolve the destination MAC, queueing
// behind an ARP request if unknown. Called with s.mu held.
func (s *Stack) sendIP(dst Addr, proto byte, payload []byte) {
	s.sendIPRaw(dst, marshalIP(ipPacket{src: s.ip, dst: dst, proto: proto, ttl: 64, payload: payload}))
}

// sendIPRaw routes an already-marshaled IP packet. Called with s.mu
// held. raw may alias a caller's reusable scratch buffer: Port.Send
// copies payloads at the wire boundary, and a packet parked behind
// ARP resolution is copied before queueing.
func (s *Stack) sendIPRaw(dst Addr, raw []byte) {
	if mac, ok := s.arpCache[dst]; ok {
		s.sendFrame(mac, netsim.EtherTypeIPv4, raw)
		return
	}
	pend := s.arpPending[dst]
	if len(pend) >= maxPendingARP {
		return // drop; transport-level retransmission recovers
	}
	s.arpPending[dst] = append(pend, append([]byte(nil), raw...))
	req := marshalARP(arpRequest, s.mac, s.ip, netsim.MAC{}, dst)
	s.sendFrame(netsim.Broadcast, netsim.EtherTypeARP, req)
}

// sendFrame transmits one frame. Called with s.mu held.
func (s *Stack) sendFrame(dst netsim.MAC, etherType uint16, payload []byte) {
	_ = s.port.Send(netsim.Frame{Dst: dst, EtherType: etherType, Payload: payload})
}
