// Frame views: validated accessor types over caller-owned packet
// buffers. Where parseIP/parseTCP decode into structs (copying
// addresses and slicing payloads through an intermediate value), these
// types validate the header once and then read fields in place — the
// ingress path's half of the zero-copy story, mirroring appendTCPIP on
// egress. parseIP and parseTCP remain as conform oracles: frame_test.go
// diffs the views against them field-for-field, and FuzzFrameView keeps
// the two in agreement over random input.
package tcpip

import "errors"

var errBadTCPHeader = errors.New("tcpip: bad TCP header")

// IPv4Frame is a validated view over an IPv4 packet. The zero value is
// not meaningful; obtain one from ParseIPv4Frame. The view borrows the
// input buffer: it is valid only while the caller's buffer is.
type IPv4Frame struct {
	b   []byte // full input, at least total bytes
	ihl int    // header length in bytes
	end int    // total length from the header
}

// ParseIPv4Frame validates an IPv4 packet and returns a view over it.
// Validation is exactly parseIP's: minimum length, version, IHL
// bounds, header checksum, and total-length bounds. Nothing is copied.
func ParseIPv4Frame(b []byte) (IPv4Frame, error) {
	if len(b) < ipHeaderLen {
		return IPv4Frame{}, errBadIPHeader
	}
	if b[0]>>4 != 4 {
		return IPv4Frame{}, errBadIPHeader
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < ipHeaderLen || len(b) < ihl {
		return IPv4Frame{}, errBadIPHeader
	}
	if checksum(b[:ihl]) != 0 {
		return IPv4Frame{}, errBadIPHeader
	}
	total := int(be16(b[2:]))
	if total < ihl || total > len(b) {
		return IPv4Frame{}, errBadIPHeader
	}
	return IPv4Frame{b: b, ihl: ihl, end: total}, nil
}

// Src returns the source address.
func (f IPv4Frame) Src() Addr {
	var a Addr
	copy(a[:], f.b[12:16])
	return a
}

// Dst returns the destination address.
func (f IPv4Frame) Dst() Addr {
	var a Addr
	copy(a[:], f.b[16:20])
	return a
}

// Proto returns the IP protocol number.
func (f IPv4Frame) Proto() byte { return f.b[9] }

// TTL returns the time-to-live field.
func (f IPv4Frame) TTL() byte { return f.b[8] }

// Payload returns the packet body (after the header, bounded by the
// header's total length) as a view into the input buffer.
func (f IPv4Frame) Payload() []byte { return f.b[f.ihl:f.end] }

// TCPFrame is a validated view over a TCP segment. Obtain one from
// ParseTCPFrame; the view borrows the input buffer.
type TCPFrame struct {
	b   []byte
	off int // data offset in bytes
}

// ParseTCPFrame validates a TCP segment and returns a view over it.
// Validation is exactly parseTCP's: minimum length and data-offset
// bounds. Nothing is copied.
func ParseTCPFrame(b []byte) (TCPFrame, error) {
	if len(b) < tcpHeaderLen {
		return TCPFrame{}, errBadTCPHeader
	}
	off := int(b[12]>>4) * 4
	if off < tcpHeaderLen || off > len(b) {
		return TCPFrame{}, errBadTCPHeader
	}
	return TCPFrame{b: b, off: off}, nil
}

// SrcPort returns the source port.
func (f TCPFrame) SrcPort() uint16 { return be16(f.b[0:]) }

// DstPort returns the destination port.
func (f TCPFrame) DstPort() uint16 { return be16(f.b[2:]) }

// Seq returns the sequence number.
func (f TCPFrame) Seq() uint32 { return be32(f.b[4:]) }

// Ack returns the acknowledgment number.
func (f TCPFrame) Ack() uint32 { return be32(f.b[8:]) }

// Flags returns the five RFC 793 flag bits (URG is not modeled).
func (f TCPFrame) Flags() uint8 { return f.b[13] & 0x1f }

// Window returns the advertised receive window.
func (f TCPFrame) Window() uint16 { return be16(f.b[14:]) }

// Payload returns the segment body after the data offset, as a view
// into the input buffer.
func (f TCPFrame) Payload() []byte { return f.b[f.off:] }

// segment builds the oracle-equivalent tcpSegment; its payload aliases
// the view's buffer. Used by the demux path and the oracle-diff tests.
func (f TCPFrame) segment() tcpSegment {
	return tcpSegment{
		srcPort: f.SrcPort(), dstPort: f.DstPort(),
		seq: f.Seq(), ack: f.Ack(),
		flags: f.Flags(), window: f.Window(),
		payload: f.Payload(),
	}
}
