package tcpip

// Paired ingress-parse benchmarks: the accessor-view path the receive
// loop now runs vs the decode-into-struct oracle it replaced. Run both
// to reproduce the EXPERIMENTS.md E14 numbers:
//
//	go test ./internal/tcpip -bench BenchmarkIngress -benchmem
//
// Both parse paths are allocation-free (the oracles alias payloads
// too); the win here is avoiding the struct copies, and the payload
// copy elimination itself is measured by BenchmarkRingDelivery in
// internal/netsim.

import "testing"

func benchFrame() []byte {
	src, dst := Addr{10, 0, 0, 1}, Addr{10, 0, 0, 2}
	payload := make([]byte, 512)
	for i := range payload {
		payload[i] = byte(i)
	}
	return marshalIP(ipPacket{src: src, dst: dst, proto: ProtoTCP, ttl: 64,
		payload: marshalTCP(src, dst, tcpSegment{
			srcPort: 40000, dstPort: 4433, seq: 7, ack: 9,
			flags: flagACK | flagPSH, window: 32 * 1024, payload: payload,
		})})
}

func BenchmarkIngressParseView(b *testing.B) {
	frame := benchFrame()
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	var sink byte
	for i := 0; i < b.N; i++ {
		ip, err := ParseIPv4Frame(frame)
		if err != nil {
			b.Fatal(err)
		}
		tcp, err := ParseTCPFrame(ip.Payload())
		if err != nil {
			b.Fatal(err)
		}
		sink ^= tcp.Payload()[0]
	}
	_ = sink
}

func BenchmarkIngressParseDecode(b *testing.B) {
	frame := benchFrame()
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	var sink byte
	for i := 0; i < b.N; i++ {
		ip, err := parseIP(frame)
		if err != nil {
			b.Fatal(err)
		}
		seg, ok := parseTCP(ip.payload)
		if !ok {
			b.Fatal("parseTCP rejected")
		}
		sink ^= seg.payload[0]
	}
	_ = sink
}
