package tcpip

// The frame views (frame.go) must be indistinguishable from the struct
// decoders they replaced: ParseIPv4Frame accepts exactly what parseIP
// accepts and reads identical fields, likewise ParseTCPFrame against
// parseTCP. The decoders stay in the tree as conform oracles — the
// same pattern the crypto kernel rewrites used — and these tests diff
// the two over seeded storm-style frames and fuzz input.

import (
	"bytes"
	"testing"

	"repro/internal/crypto/prng"
)

// stormFrame builds one adversarial IPv4-ish buffer in the styles the
// conformance ingress sweep throws at a live stack: well-formed
// packets from the stack's own marshalers, bit-flipped variants, TCP
// header soup with random data offsets, and raw garbage.
func stormFrame(rng *prng.Xorshift, i int) []byte {
	src := Addr{10, 0, 0, byte(1 + rng.Intn(250))}
	dst := Addr{10, 0, 0, byte(1 + rng.Intn(250))}
	switch i % 5 {
	case 0: // well-formed TCP-in-IP from the oracle marshalers
		payload := make([]byte, rng.Intn(64))
		for j := range payload {
			payload[j] = byte(rng.Intn(256))
		}
		return marshalIP(ipPacket{src: src, dst: dst, proto: ProtoTCP, ttl: 64,
			payload: marshalTCP(src, dst, tcpSegment{
				srcPort: uint16(rng.Intn(1 << 16)), dstPort: uint16(rng.Intn(1 << 16)),
				seq: rng.Uint32(), ack: rng.Uint32(),
				flags: byte(rng.Intn(32)), window: uint16(rng.Intn(1 << 16)),
				payload: payload,
			})})
	case 1: // well-formed, then bit-flipped
		b := marshalIP(ipPacket{src: src, dst: dst, proto: byte(rng.Intn(256)), ttl: byte(rng.Intn(256)),
			payload: make([]byte, rng.Intn(40))})
		for k := 0; k < 1+rng.Intn(3); k++ {
			b[rng.Intn(len(b))] ^= byte(1 << rng.Intn(8))
		}
		return b
	case 2: // TCP header soup: random bytes, plausible data offset
		seg := make([]byte, 20+rng.Intn(24))
		for j := range seg {
			seg[j] = byte(rng.Intn(256))
		}
		seg[12] = byte(5+rng.Intn(11)) << 4
		return seg
	case 3: // truncations of a valid packet
		b := marshalIP(ipPacket{src: src, dst: dst, proto: ProtoUDP, ttl: 1,
			payload: make([]byte, 8+rng.Intn(32))})
		return b[:rng.Intn(len(b)+1)]
	default: // raw garbage
		b := make([]byte, rng.Intn(120))
		for j := range b {
			b[j] = byte(rng.Intn(256))
		}
		return b
	}
}

// diffIPv4Views fails unless ParseIPv4Frame and parseIP agree on b:
// same accept/reject verdict and, on accept, identical fields.
func diffIPv4Views(t *testing.T, b []byte) {
	t.Helper()
	f, verr := ParseIPv4Frame(b)
	p, oerr := parseIP(b)
	if (verr == nil) != (oerr == nil) {
		t.Fatalf("IPv4 accept disagreement on %x: view err %v, oracle err %v", b, verr, oerr)
	}
	if verr != nil {
		return
	}
	if f.Src() != p.src || f.Dst() != p.dst || f.Proto() != p.proto || f.TTL() != p.ttl {
		t.Fatalf("IPv4 field disagreement on %x: view (%v %v %d %d), oracle (%v %v %d %d)",
			b, f.Src(), f.Dst(), f.Proto(), f.TTL(), p.src, p.dst, p.proto, p.ttl)
	}
	if !bytes.Equal(f.Payload(), p.payload) {
		t.Fatalf("IPv4 payload disagreement on %x: view %x, oracle %x", b, f.Payload(), p.payload)
	}
}

// diffTCPViews is diffIPv4Views for the TCP layer.
func diffTCPViews(t *testing.T, b []byte) {
	t.Helper()
	f, verr := ParseTCPFrame(b)
	seg, ok := parseTCP(b)
	if (verr == nil) != ok {
		t.Fatalf("TCP accept disagreement on %x: view err %v, oracle ok %v", b, verr, ok)
	}
	if verr != nil {
		return
	}
	got := f.segment()
	if got.srcPort != seg.srcPort || got.dstPort != seg.dstPort ||
		got.seq != seg.seq || got.ack != seg.ack ||
		got.flags != seg.flags || got.window != seg.window {
		t.Fatalf("TCP field disagreement on %x: view %+v, oracle %+v", b, got, seg)
	}
	if !bytes.Equal(got.payload, seg.payload) {
		t.Fatalf("TCP payload disagreement on %x: view %x, oracle %x", b, got.payload, seg.payload)
	}
}

// TestFrameViewMatchesOracle diffs the views against the decode
// oracles over seeded storm frames — the receive-side mirror of
// TestAppendTCPIPMatchesMarshal.
func TestFrameViewMatchesOracle(t *testing.T) {
	rng := prng.NewXorshift(0xF7A3E)
	for i := 0; i < 4000; i++ {
		b := stormFrame(rng, i)
		diffIPv4Views(t, b)
		diffTCPViews(t, b)
		// And the nesting the receive path actually does: IP accept,
		// then TCP views over the IP payload.
		if f, err := ParseIPv4Frame(b); err == nil {
			diffTCPViews(t, f.Payload())
		}
	}
}

// TestFrameViewBounds pins the validation edges the views share with
// the oracles: short input, bad version, bad IHL, bad checksum, bad
// total length, and TCP offsets off both ends.
func TestFrameViewBounds(t *testing.T) {
	src, dst := Addr{10, 0, 0, 1}, Addr{10, 0, 0, 2}
	good := marshalIP(ipPacket{src: src, dst: dst, proto: ProtoTCP, ttl: 64,
		payload: marshalTCP(src, dst, tcpSegment{srcPort: 1, dstPort: 2, flags: flagSYN})})
	if _, err := ParseIPv4Frame(good); err != nil {
		t.Fatalf("valid packet rejected: %v", err)
	}
	mutate := func(mut func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		mut(b)
		return b
	}
	cases := map[string][]byte{
		"short":        good[:19],
		"bad version":  mutate(func(b []byte) { b[0] = 0x55 }),
		"bad IHL":      mutate(func(b []byte) { b[0] = 0x42 }),
		"bad checksum": mutate(func(b []byte) { b[10] ^= 0xff }),
		"bad total":    mutate(func(b []byte) { b[2], b[3] = 0xff, 0xff }),
	}
	for name, b := range cases {
		if _, err := ParseIPv4Frame(b); err == nil {
			t.Errorf("IPv4 %s accepted by view", name)
		}
		if _, err := parseIP(b); err == nil {
			t.Errorf("IPv4 %s accepted by oracle", name)
		}
	}
	tcp := marshalTCP(src, dst, tcpSegment{srcPort: 1, dstPort: 2, flags: flagACK, payload: []byte("x")})
	short := tcp[:19]
	offPastEnd := append([]byte(nil), tcp...)
	offPastEnd[12] = 0xf0 // 60-byte offset on a 21-byte segment
	offTooSmall := append([]byte(nil), tcp...)
	offTooSmall[12] = 0x40 // 16-byte offset, below the minimum header
	for name, b := range map[string][]byte{
		"short": short, "offset past end": offPastEnd, "offset too small": offTooSmall,
	} {
		if _, err := ParseTCPFrame(b); err == nil {
			t.Errorf("TCP %s accepted by view", name)
		}
		if _, ok := parseTCP(b); ok {
			t.Errorf("TCP %s accepted by oracle", name)
		}
	}
}

// FuzzFrameView: accessor views never panic on arbitrary bytes, and
// agree with the decode oracles field-for-field whenever the oracle
// accepts. Seeds come from the storm-frame generator plus the edge
// cases FuzzTCPSegment pinned.
func FuzzFrameView(f *testing.F) {
	rng := prng.NewXorshift(0x5EED5)
	for i := 0; i < 10; i++ {
		f.Add(stormFrame(rng, i))
	}
	f.Add([]byte{0, 80, 0, 80, 0, 0, 0, 1, 0, 0, 0, 0, 0xf0, 0x02, 1, 0, 0, 0, 0, 0}) // offset past end
	f.Add(make([]byte, 19))                                                           // one short of a header
	f.Fuzz(func(t *testing.T, data []byte) {
		diffIPv4Views(t, data)
		diffTCPViews(t, data)
		if fr, err := ParseIPv4Frame(data); err == nil {
			if len(fr.Payload()) > len(data) {
				t.Fatalf("IPv4 payload view (%d) larger than input (%d)", len(fr.Payload()), len(data))
			}
			diffTCPViews(t, fr.Payload())
		}
		if fr, err := ParseTCPFrame(data); err == nil {
			if len(fr.Payload()) > len(data) {
				t.Fatalf("TCP payload view (%d) larger than input (%d)", len(fr.Payload()), len(data))
			}
			if fr.Flags()&^0x1f != 0 {
				t.Fatalf("view leaked reserved flag bits: %#x", fr.Flags())
			}
		}
	})
}
