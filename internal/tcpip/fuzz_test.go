package tcpip

// Native fuzz targets for the wire parsers. Under plain `go test`
// these run seed-only as a regression; CI adds a short -fuzz smoke.
// Invariants: parseTCP/parseIP never panic, never return views past
// the input, and survive a marshal→parse round-trip with fields
// intact.

import (
	"bytes"
	"testing"
)

var (
	fuzzSrc = Addr{10, 0, 0, 1}
	fuzzDst = Addr{10, 0, 0, 2}
)

func FuzzTCPSegment(f *testing.F) {
	f.Add(marshalTCP(fuzzSrc, fuzzDst, tcpSegment{
		srcPort: 1234, dstPort: 80, seq: 1, flags: flagSYN, window: 512,
	}))
	f.Add(marshalTCP(fuzzSrc, fuzzDst, tcpSegment{
		srcPort: 9000, dstPort: 4000, seq: 7, ack: 3, flags: flagACK | flagPSH,
		window: 2048, payload: []byte("GET / HTTP/1.0\r\n"),
	}))
	f.Add([]byte{0, 80, 0, 80, 0, 0, 0, 1, 0, 0, 0, 0, 0xf0, 0x02, 1, 0, 0, 0, 0, 0}) // offset past end
	f.Add(make([]byte, 19))                                                           // one short of a header
	f.Add(marshalIP(ipPacket{src: fuzzSrc, dst: fuzzDst, proto: ProtoTCP, ttl: 64,
		payload: marshalTCP(fuzzSrc, fuzzDst, tcpSegment{srcPort: 1, dstPort: 2, flags: flagSYN})}))

	f.Fuzz(func(t *testing.T, data []byte) {
		if seg, ok := parseTCP(data); ok {
			if seg.flags&^0x1f != 0 {
				t.Fatalf("parseTCP leaked reserved flag bits: %#x", seg.flags)
			}
			if len(seg.payload) > len(data) {
				t.Fatalf("payload view (%d) larger than input (%d)", len(seg.payload), len(data))
			}
			out := marshalTCP(fuzzSrc, fuzzDst, seg)
			seg2, ok2 := parseTCP(out)
			if !ok2 {
				t.Fatal("marshalTCP output does not re-parse")
			}
			if seg2.srcPort != seg.srcPort || seg2.dstPort != seg.dstPort ||
				seg2.seq != seg.seq || seg2.ack != seg.ack ||
				seg2.flags != seg.flags || seg2.window != seg.window ||
				!bytes.Equal(seg2.payload, seg.payload) {
				t.Fatalf("TCP round-trip changed fields: %+v -> %+v", seg, seg2)
			}
		}

		if p, err := parseIP(data); err == nil {
			if len(p.payload) > len(data) {
				t.Fatalf("IP payload view (%d) larger than input (%d)", len(p.payload), len(data))
			}
			p2, err := parseIP(marshalIP(p))
			if err != nil {
				t.Fatalf("marshalIP output does not re-parse: %v", err)
			}
			if p2.src != p.src || p2.dst != p.dst || p2.proto != p.proto ||
				p2.ttl != p.ttl || !bytes.Equal(p2.payload, p.payload) {
				t.Fatalf("IP round-trip changed fields: %+v -> %+v", p, p2)
			}
		}
	})
}
