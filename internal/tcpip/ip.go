package tcpip

import (
	"errors"
	"fmt"
)

// IP protocol numbers carried in the header.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// MTU is the Ethernet payload limit; packets are never fragmented
// because the TCP MSS and UDP senders stay under it.
const MTU = 1500

const ipHeaderLen = 20

// ipPacket is a parsed IPv4 packet.
type ipPacket struct {
	src, dst Addr
	proto    byte
	ttl      byte
	payload  []byte
}

var errBadIPHeader = errors.New("tcpip: bad IP header")

// marshalIP builds an IPv4 header + payload.
func marshalIP(p ipPacket) []byte {
	buf := make([]byte, ipHeaderLen+len(p.payload))
	buf[0] = 0x45 // version 4, IHL 5
	total := len(buf)
	put16(buf[2:], uint16(total))
	buf[8] = p.ttl
	buf[9] = p.proto
	copy(buf[12:16], p.src[:])
	copy(buf[16:20], p.dst[:])
	put16(buf[10:], 0)
	cs := checksum(buf[:ipHeaderLen])
	put16(buf[10:], cs)
	copy(buf[ipHeaderLen:], p.payload)
	return buf
}

// parseIP validates and splits an IPv4 packet.
func parseIP(b []byte) (ipPacket, error) {
	if len(b) < ipHeaderLen {
		return ipPacket{}, fmt.Errorf("%w: %d bytes", errBadIPHeader, len(b))
	}
	if b[0]>>4 != 4 {
		return ipPacket{}, fmt.Errorf("%w: version %d", errBadIPHeader, b[0]>>4)
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < ipHeaderLen || len(b) < ihl {
		return ipPacket{}, fmt.Errorf("%w: IHL %d", errBadIPHeader, ihl)
	}
	if checksum(b[:ihl]) != 0 {
		return ipPacket{}, fmt.Errorf("%w: checksum", errBadIPHeader)
	}
	total := int(be16(b[2:]))
	if total < ihl || total > len(b) {
		return ipPacket{}, fmt.Errorf("%w: total length %d", errBadIPHeader, total)
	}
	var p ipPacket
	copy(p.src[:], b[12:16])
	copy(p.dst[:], b[16:20])
	p.proto = b[9]
	p.ttl = b[8]
	p.payload = b[ihl:total]
	return p, nil
}
