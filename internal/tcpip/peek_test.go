package tcpip

// Peek/Discard coverage: the zero-copy receive API the issl record
// layer rides on. The contract under test — a Peek view stays valid
// (the buffer is pinned, arrivals divert) until the next Peek or
// Discard; Discard consumes; views may be mutated in place; EOF
// conventions follow io.ReadFull.

import (
	"bytes"
	"io"
	"testing"
	"time"
)

// peekPair builds two connected TCBs over a quiet hub.
func peekPair(t *testing.T) (client, server *TCB) {
	t.Helper()
	_, stacks := testNet(t, 2)
	l, err := stacks[1].Listen(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	acc := make(chan *TCB, 1)
	go func() {
		conn, err := l.Accept(2 * time.Second)
		if err != nil {
			acc <- nil
			return
		}
		acc <- conn
	}()
	client, err = stacks[0].Connect(stacks[1].Addr(), 7, 2*time.Second)
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	server = <-acc
	if server == nil {
		t.Fatal("accept failed")
	}
	return client, server
}

func dl() time.Time { return time.Now().Add(2 * time.Second) }

func TestPeekWaitsForEnoughBytes(t *testing.T) {
	client, server := peekPair(t)
	defer client.Close()
	defer server.Close()
	go func() {
		client.Write([]byte("he"))
		time.Sleep(20 * time.Millisecond)
		client.Write([]byte("llo!"))
	}()
	// Peek(6) must block across the two writes and return them joined.
	view, err := server.Peek(6, dl())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(view[:6], []byte("hello!")) {
		t.Fatalf("view = %q", view)
	}
}

func TestPeekDoesNotConsume(t *testing.T) {
	client, server := peekPair(t)
	defer client.Close()
	defer server.Close()
	client.Write([]byte("abcdef"))
	if _, err := server.Peek(6, dl()); err != nil {
		t.Fatal(err)
	}
	// A second Peek sees the same bytes; Discard then Read sees the rest.
	view, err := server.Peek(6, dl())
	if err != nil {
		t.Fatal(err)
	}
	if string(view[:6]) != "abcdef" {
		t.Fatalf("second peek = %q", view)
	}
	server.Discard(2)
	buf := make([]byte, 16)
	n, err := server.ReadDeadline(buf, dl())
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "cdef" {
		t.Fatalf("read after discard = %q", buf[:n])
	}
}

func TestPeekViewSurvivesConcurrentArrivals(t *testing.T) {
	client, server := peekPair(t)
	defer client.Close()
	defer server.Close()
	client.Write([]byte("pinned"))
	view, err := server.Peek(6, dl())
	if err != nil {
		t.Fatal(err)
	}
	view = view[:6]
	// While the view is live, pour in enough data to force the receive
	// buffer to grow — were it not pinned, append could move the
	// backing array out from under the view (and race with it).
	big := bytes.Repeat([]byte("x"), 8192)
	go client.Write(big)
	deadline := time.Now().Add(2 * time.Second)
	for server.Avail() < 6+len(big) {
		if time.Now().After(deadline) {
			t.Fatal("arrivals never landed")
		}
		if string(view) != "pinned" {
			t.Fatalf("live view corrupted by concurrent arrivals: %q", view)
		}
		time.Sleep(time.Millisecond)
	}
	server.Discard(6)
	got := 0
	buf := make([]byte, 1024)
	for got < len(big) {
		n, err := server.ReadDeadline(buf, dl())
		if err != nil {
			t.Fatal(err)
		}
		got += n
	}
	if got != len(big) {
		t.Fatalf("diverted bytes lost: got %d want %d", got, len(big))
	}
}

func TestPeekViewMutableInPlace(t *testing.T) {
	client, server := peekPair(t)
	defer client.Close()
	defer server.Close()
	client.Write([]byte("SECRET"))
	view, err := server.Peek(6, dl())
	if err != nil {
		t.Fatal(err)
	}
	// The issl record layer decrypts in place inside this view; model
	// that with a byte-wise transform, then confirm the transformed
	// bytes are what a re-Peek observes.
	for i := 0; i < 6; i++ {
		view[i] |= 0x20
	}
	view2, err := server.Peek(6, dl())
	if err != nil {
		t.Fatal(err)
	}
	if string(view2[:6]) != "secret" {
		t.Fatalf("in-place mutation lost: %q", view2[:6])
	}
}

func TestPeekEOFConventions(t *testing.T) {
	client, server := peekPair(t)
	defer server.Close()
	client.Write([]byte("abc"))
	client.Close()
	// Partial data then close: io.ErrUnexpectedEOF (io.ReadFull rules).
	if _, err := server.Peek(10, dl()); err != io.ErrUnexpectedEOF {
		t.Fatalf("short peek on closed conn: err = %v, want ErrUnexpectedEOF", err)
	}
	// The 3 bytes are still there for a satisfiable Peek.
	view, err := server.Peek(3, dl())
	if err != nil {
		t.Fatal(err)
	}
	if string(view[:3]) != "abc" {
		t.Fatalf("view = %q", view)
	}
	server.Discard(3)
	// Empty and closed: clean io.EOF.
	if _, err := server.Peek(1, dl()); err != io.EOF {
		t.Fatalf("peek on drained closed conn: err = %v, want EOF", err)
	}
}

func TestPeekDeadlineExpires(t *testing.T) {
	client, server := peekPair(t)
	defer client.Close()
	defer server.Close()
	start := time.Now()
	_, err := server.Peek(1, time.Now().Add(50*time.Millisecond))
	if err == nil {
		t.Fatal("peek with no data returned a view")
	}
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		t.Fatalf("deadline expiry mislabeled as EOF: %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatalf("deadline ignored: waited %v", time.Since(start))
	}
}

func TestDiscardClampsToAvailable(t *testing.T) {
	client, server := peekPair(t)
	defer client.Close()
	defer server.Close()
	client.Write([]byte("xy"))
	if _, err := server.Peek(2, dl()); err != nil {
		t.Fatal(err)
	}
	server.Discard(100) // over-discard clamps, doesn't corrupt
	go client.Write([]byte("after"))
	view, err := server.Peek(5, dl())
	if err != nil {
		t.Fatal(err)
	}
	if string(view[:5]) != "after" {
		t.Fatalf("view after over-discard = %q", view[:5])
	}
}
