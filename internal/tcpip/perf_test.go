package tcpip

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/race"
)

// pseudoChecksumRef is the seed kernel's form: materialize the
// pseudo-header + segment, then checksum the buffer.
func pseudoChecksumRef(proto byte, src, dst Addr, seg []byte) uint16 {
	ph := make([]byte, 12+len(seg))
	copy(ph[0:4], src[:])
	copy(ph[4:8], dst[:])
	ph[9] = proto
	ph[10] = byte(len(seg) >> 8)
	ph[11] = byte(len(seg))
	copy(ph[12:], seg)
	return checksum(ph)
}

// TestPseudoChecksumEquivalence diffs the in-place pseudo-header sum
// against the buffer-materializing reference, odd and even lengths.
func TestPseudoChecksumEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	src := Addr{192, 168, 1, 10}
	dst := Addr{192, 168, 1, 20}
	for i := 0; i < 5_000; i++ {
		seg := make([]byte, rng.Intn(1500))
		rng.Read(seg)
		got := pseudoChecksum(ProtoTCP, src, dst, seg)
		want := pseudoChecksumRef(ProtoTCP, src, dst, seg)
		if got != want {
			t.Fatalf("vector %d (len %d): %#x != %#x", i, len(seg), got, want)
		}
	}
}

// TestAppendTCPIPMatchesMarshal diffs the single-pass segment marshal
// against the seed kernel's marshalTCP-then-marshalIP pair over seeded
// vectors, including scratch reuse across differently-sized payloads
// (stale bytes must never leak).
func TestAppendTCPIPMatchesMarshal(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	src := Addr{10, 0, 0, 1}
	dst := Addr{10, 0, 0, 2}
	var scratch []byte
	for i := 0; i < 2_000; i++ {
		seg := tcpSegment{
			srcPort: uint16(rng.Uint32()),
			dstPort: uint16(rng.Uint32()),
			seq:     rng.Uint32(),
			ack:     rng.Uint32(),
			flags:   uint8(rng.Intn(32)),
			window:  uint16(rng.Uint32()),
			payload: make([]byte, rng.Intn(tcpMSS)),
		}
		rng.Read(seg.payload)
		want := marshalIP(ipPacket{src: src, dst: dst, proto: ProtoTCP, ttl: 64,
			payload: marshalTCP(src, dst, seg)})
		scratch = appendTCPIP(scratch, src, dst, seg)
		if !bytes.Equal(scratch, want) {
			t.Fatalf("vector %d (payload %d): fast marshal differs from seed pair", i, len(seg.payload))
		}
		// And it must still parse back to the same segment.
		p, err := parseIP(scratch)
		if err != nil {
			t.Fatalf("vector %d: parseIP: %v", i, err)
		}
		back, ok := parseTCP(p.payload)
		if !ok {
			t.Fatalf("vector %d: parseTCP failed", i)
		}
		if back.seq != seg.seq || back.ack != seg.ack || !bytes.Equal(back.payload, seg.payload) {
			t.Fatalf("vector %d: round trip mismatch", i)
		}
	}
}

// TestSegmentMarshalParseZeroAlloc pins the per-segment allocation
// contract: marshal into a warm scratch buffer and parse are both free.
func TestSegmentMarshalParseZeroAlloc(t *testing.T) {
	if race.Enabled {
		t.Skip("AllocsPerRun is not meaningful under the race detector")
	}
	src := Addr{10, 0, 0, 1}
	dst := Addr{10, 0, 0, 2}
	seg := tcpSegment{srcPort: 1234, dstPort: 80, seq: 7, ack: 9,
		flags: flagACK | flagPSH, window: 4096, payload: make([]byte, tcpMSS)}
	scratch := appendTCPIP(nil, src, dst, seg) // warm to full size
	if n := testing.AllocsPerRun(100, func() {
		scratch = appendTCPIP(scratch, src, dst, seg)
	}); n != 0 {
		t.Errorf("appendTCPIP allocates %v per segment, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		p, err := parseIP(scratch)
		if err != nil {
			panic(err)
		}
		if _, ok := parseTCP(p.payload); !ok {
			panic("parseTCP")
		}
	}); n != 0 {
		t.Errorf("parseIP+parseTCP allocates %v per segment, want 0", n)
	}
}

func BenchmarkSegmentMarshalFast(b *testing.B) {
	src := Addr{10, 0, 0, 1}
	dst := Addr{10, 0, 0, 2}
	seg := tcpSegment{srcPort: 1234, dstPort: 80, seq: 7, ack: 9,
		flags: flagACK, window: 4096, payload: make([]byte, tcpMSS)}
	var scratch []byte
	b.SetBytes(int64(ipHeaderLen + tcpHeaderLen + tcpMSS))
	for i := 0; i < b.N; i++ {
		scratch = appendTCPIP(scratch, src, dst, seg)
	}
}

func BenchmarkSegmentMarshalSeed(b *testing.B) {
	src := Addr{10, 0, 0, 1}
	dst := Addr{10, 0, 0, 2}
	seg := tcpSegment{srcPort: 1234, dstPort: 80, seq: 7, ack: 9,
		flags: flagACK, window: 4096, payload: make([]byte, tcpMSS)}
	b.SetBytes(int64(ipHeaderLen + tcpHeaderLen + tcpMSS))
	for i := 0; i < b.N; i++ {
		marshalIP(ipPacket{src: src, dst: dst, proto: ProtoTCP, ttl: 64,
			payload: marshalTCP(src, dst, seg)})
	}
}
