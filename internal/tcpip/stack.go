package tcpip

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/crypto/prng"
	"repro/internal/netsim"
	"repro/internal/telemetry"
)

// Stack is one host's TCP/IP instance, bound to a netsim port. It runs
// a receive goroutine demultiplexing ARP/ICMP/UDP/TCP and a timer
// goroutine driving TCP retransmission. All exported methods are safe
// for concurrent use.
type Stack struct {
	mu   sync.Mutex
	port *netsim.Port
	ip   Addr
	mac  netsim.MAC

	arpCache   map[Addr]netsim.MAC
	arpPending map[Addr][][]byte

	udpConns  map[uint16]*UDPConn
	tcbs      map[tcpKey]*TCB
	listeners map[uint16]*Listener
	dcListen  map[uint16][]*TCB // Dynamic-C-style one-shot listening TCBs
	nextPort  uint16
	isn       *prng.Xorshift

	pingMu   sync.Mutex
	pingWait map[uint16]chan struct{}
	pingSeq  uint16

	closed  chan struct{}
	closing sync.Once

	// Telemetry handles, resolved once at construction (nil-safe), so
	// the segment paths never race on a registry swap.
	metrics stackMetrics
	trace   *telemetry.Trace
}

// stackMetrics are the stack's TCP counters and RTT histogram.
type stackMetrics struct {
	segsSent      *telemetry.Counter
	segsRcvd      *telemetry.Counter
	retransmits   *telemetry.Counter
	checksumDrops *telemetry.Counter
	rttUs         *telemetry.Histogram
}

func newStackMetrics(reg *telemetry.Registry) stackMetrics {
	return stackMetrics{
		segsSent:      reg.Counter("tcp.segs_sent"),
		segsRcvd:      reg.Counter("tcp.segs_rcvd"),
		retransmits:   reg.Counter("tcp.retransmits"),
		checksumDrops: reg.Counter("tcp.checksum_drops"),
		rttUs:         reg.Histogram("tcp.rtt_us"),
	}
}

// ErrStackClosed is returned by operations on a closed stack.
var ErrStackClosed = errors.New("tcpip: stack closed")

// NewStack attaches a new host to the hub with the given IP. The MAC
// is derived from the IP (locally administered). The stack's telemetry
// is inert; use NewStackWithTelemetry to observe it.
func NewStack(hub *netsim.Hub, ip Addr) (*Stack, error) {
	return NewStackWithTelemetry(hub, ip, nil, nil)
}

// NewStackWithTelemetry is NewStack with the stack's counters placed on
// reg and its retransmission/RTT events emitted to trace. Counters are
// resolved once here, so there is no registry swap to race with; either
// argument may be nil (nil registry: counters are no-ops).
func NewStackWithTelemetry(hub *netsim.Hub, ip Addr, reg *telemetry.Registry, trace *telemetry.Trace) (*Stack, error) {
	mac := netsim.MAC{0x02, 0x00, ip[0], ip[1], ip[2], ip[3]}
	port, err := hub.AttachRing(mac)
	if err != nil {
		return nil, fmt.Errorf("tcpip: attach: %w", err)
	}
	s := &Stack{
		port:       port,
		ip:         ip,
		mac:        mac,
		arpCache:   map[Addr]netsim.MAC{},
		arpPending: map[Addr][][]byte{},
		udpConns:   map[uint16]*UDPConn{},
		tcbs:       map[tcpKey]*TCB{},
		listeners:  map[uint16]*Listener{},
		dcListen:   map[uint16][]*TCB{},
		nextPort:   49152,
		isn:        prng.NewXorshift(uint64(ip[0])<<24 | uint64(ip[1])<<16 | uint64(ip[2])<<8 | uint64(ip[3]) | 1),
		pingWait:   map[uint16]chan struct{}{},
		closed:     make(chan struct{}),
		metrics:    newStackMetrics(reg),
		trace:      trace,
	}
	go s.recvLoop()
	go s.timerLoop()
	return s, nil
}

// Addr returns the stack's IP address.
func (s *Stack) Addr() Addr { return s.ip }

// MAC returns the stack's hardware address on the hub — what a chaos
// harness hands to netsim.Hub.PartitionPort to unplug this host.
func (s *Stack) MAC() netsim.MAC { return s.mac }

// Close shuts the stack down, resetting every connection.
func (s *Stack) Close() {
	s.closing.Do(func() {
		close(s.closed)
		s.mu.Lock()
		tcbs := make([]*TCB, 0, len(s.tcbs))
		for _, t := range s.tcbs {
			tcbs = append(tcbs, t)
		}
		for _, ls := range s.dcListen {
			tcbs = append(tcbs, ls...)
		}
		listeners := make([]*Listener, 0, len(s.listeners))
		for _, l := range s.listeners {
			listeners = append(listeners, l)
		}
		udps := make([]*UDPConn, 0, len(s.udpConns))
		for _, u := range s.udpConns {
			udps = append(udps, u)
		}
		s.mu.Unlock()
		for _, t := range tcbs {
			t.abort(ErrStackClosed)
		}
		for _, l := range listeners {
			l.Close()
		}
		for _, u := range udps {
			u.Close()
		}
		// Leave the fabric: detach the netsim port so the MAC (and with
		// it the IP) is free for a replacement host — a restarted node
		// re-attaches at the same address.
		s.port.Close()
	})
}

// recvLoop drains the port's receive ring one batch per hub-lock
// acquisition and demuxes each frame in place. Every frame handed to
// handleFrameView is a view into the drain slab, valid until the next
// DrainFrames call — the handlers copy only what they keep (TCP
// receive-buffer bytes, UDP datagrams, ARP cache entries).
func (s *Stack) recvLoop() {
	for {
		frames, err := s.port.DrainFrames(s.closed)
		if err != nil {
			return
		}
		for _, f := range frames {
			s.handleFrameView(f)
		}
	}
}

// handleFrameView demuxes one received frame by ethertype and IP
// protocol without decoding headers into structs: IPv4 and TCP headers
// are read through validated views over the drain slab, so the payload
// travels from the wire to the TCP receive buffer with no intermediate
// copy.
func (s *Stack) handleFrameView(f netsim.EthFrame) {
	switch f.EtherType() {
	case netsim.EtherTypeARP:
		s.mu.Lock()
		s.handleARP(f.Payload())
		s.mu.Unlock()
	case netsim.EtherTypeIPv4:
		ip, err := ParseIPv4Frame(f.Payload())
		if err != nil || ip.Dst() != s.ip {
			return
		}
		switch ip.Proto() {
		case ProtoICMP:
			s.handleICMP(ip.Src(), ip.Payload())
		case ProtoUDP:
			s.handleUDP(ip.Src(), ip.Payload())
		case ProtoTCP:
			s.handleTCPView(ip.Src(), ip.Payload())
		}
	}
}

// timerLoop drives TCP retransmission and state timeouts.
func (s *Stack) timerLoop() {
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	var scratch []*TCB // reused across ticks: the loop must not allocate at steady state
	for {
		select {
		case <-s.closed:
			return
		case now := <-tick.C:
			s.mu.Lock()
			scratch = scratch[:0]
			for _, t := range s.tcbs {
				scratch = append(scratch, t)
			}
			s.mu.Unlock()
			for _, t := range scratch {
				t.tick(now)
			}
		}
	}
}

// ephemeralPort allocates a port for outgoing connections. Called with
// s.mu held.
func (s *Stack) ephemeralPort() uint16 {
	for i := 0; i < 16384; i++ {
		p := s.nextPort
		s.nextPort++
		if s.nextPort == 0 {
			s.nextPort = 49152
		}
		if _, taken := s.listeners[p]; taken {
			continue
		}
		if _, taken := s.udpConns[p]; taken {
			continue
		}
		inUse := false
		for k := range s.tcbs {
			if k.localPort == p {
				inUse = true
				break
			}
		}
		if !inUse {
			return p
		}
	}
	return 0
}

// --- ICMP ----------------------------------------------------------------

const (
	icmpEchoReply   = 0
	icmpEchoRequest = 8
)

func (s *Stack) handleICMP(src Addr, b []byte) {
	if len(b) < 8 || checksum(b) != 0 {
		return
	}
	switch b[0] {
	case icmpEchoRequest:
		reply := append([]byte(nil), b...)
		reply[0] = icmpEchoReply
		put16(reply[2:], 0)
		put16(reply[2:], checksum(reply))
		s.mu.Lock()
		s.sendIP(src, ProtoICMP, reply)
		s.mu.Unlock()
	case icmpEchoReply:
		id := be16(b[4:])
		s.pingMu.Lock()
		if ch, ok := s.pingWait[id]; ok {
			close(ch)
			delete(s.pingWait, id)
		}
		s.pingMu.Unlock()
	}
}

// Ping sends an ICMP echo request and waits for the reply.
func (s *Stack) Ping(dst Addr, timeout time.Duration) error {
	s.pingMu.Lock()
	s.pingSeq++
	id := s.pingSeq
	ch := make(chan struct{})
	s.pingWait[id] = ch
	s.pingMu.Unlock()

	req := make([]byte, 16)
	req[0] = icmpEchoRequest
	put16(req[4:], id)
	put16(req[6:], 1)
	copy(req[8:], "rmc2000!")
	put16(req[2:], checksum(req))

	deadline := time.After(timeout)
	// Retransmit the request a few times; ARP may eat the first one.
	for {
		s.mu.Lock()
		s.sendIP(dst, ProtoICMP, req)
		s.mu.Unlock()
		select {
		case <-ch:
			return nil
		case <-deadline:
			s.pingMu.Lock()
			delete(s.pingWait, id)
			s.pingMu.Unlock()
			return fmt.Errorf("tcpip: ping %s: timeout after %v", dst, timeout)
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// --- UDP -----------------------------------------------------------------

// UDPDatagram is one received datagram with its source.
type UDPDatagram struct {
	Src     Addr
	SrcPort uint16
	Data    []byte
}

// UDPConn is a bound UDP endpoint.
type UDPConn struct {
	stack *Stack
	port  uint16
	rx    chan UDPDatagram
	once  sync.Once
}

// ErrPortInUse is returned when binding an already-bound port.
var ErrPortInUse = errors.New("tcpip: port in use")

// ListenUDP binds a UDP port. Port 0 picks an ephemeral port.
func (s *Stack) ListenUDP(port uint16) (*UDPConn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if port == 0 {
		port = s.ephemeralPort()
	}
	if _, ok := s.udpConns[port]; ok {
		return nil, fmt.Errorf("%w: udp/%d", ErrPortInUse, port)
	}
	u := &UDPConn{stack: s, port: port, rx: make(chan UDPDatagram, 64)}
	s.udpConns[port] = u
	return u, nil
}

// Port returns the bound local port.
func (u *UDPConn) Port() uint16 { return u.port }

// SendTo transmits a datagram.
func (u *UDPConn) SendTo(dst Addr, dstPort uint16, data []byte) error {
	if len(data)+8 > MTU-ipHeaderLen {
		return fmt.Errorf("tcpip: UDP payload %d exceeds MTU", len(data))
	}
	seg := make([]byte, 8+len(data))
	put16(seg[0:], u.port)
	put16(seg[2:], dstPort)
	put16(seg[4:], uint16(len(seg)))
	copy(seg[8:], data)
	put16(seg[6:], pseudoChecksum(ProtoUDP, u.stack.ip, dst, seg))
	u.stack.mu.Lock()
	defer u.stack.mu.Unlock()
	u.stack.sendIP(dst, ProtoUDP, seg)
	return nil
}

// Recv returns the receive channel; closed when the conn closes.
func (u *UDPConn) Recv() <-chan UDPDatagram { return u.rx }

// RecvTimeout waits up to d for one datagram.
func (u *UDPConn) RecvTimeout(d time.Duration) (UDPDatagram, error) {
	select {
	case dg, ok := <-u.rx:
		if !ok {
			return UDPDatagram{}, ErrStackClosed
		}
		return dg, nil
	case <-time.After(d):
		return UDPDatagram{}, errors.New("tcpip: udp receive timeout")
	}
}

// Close unbinds the port.
func (u *UDPConn) Close() {
	u.once.Do(func() {
		u.stack.mu.Lock()
		delete(u.stack.udpConns, u.port)
		u.stack.mu.Unlock()
		close(u.rx)
	})
}

func (s *Stack) handleUDP(src Addr, b []byte) {
	if len(b) < 8 {
		return
	}
	// The caller verified the packet was addressed to us, so the
	// pseudo-header destination is our own address.
	if pseudoChecksum(ProtoUDP, src, s.ip, b) != 0 {
		return
	}
	dstPort := be16(b[2:])
	s.mu.Lock()
	u, ok := s.udpConns[dstPort]
	s.mu.Unlock()
	if !ok {
		return
	}
	dg := UDPDatagram{Src: src, SrcPort: be16(b[0:]), Data: append([]byte(nil), b[8:]...)}
	select {
	case u.rx <- dg:
	default: // receiver not draining; drop like a kernel would
	}
}
